#pragma once
// gsgcn::obs structured telemetry — JSONL record stream.
//
// One line per record, each a self-contained JSON object with a "type"
// discriminator ("epoch", "run_summary", ...). The trainer emits records
// whenever the sink is open; this is a RUNTIME switch (cold path, one
// line per epoch), unlike the compile-time-gated span/counter macros, so
// `train_cli --metrics-out` works in every build flavor.
//
// Records are produced with util::JsonWriter by the instrumented code;
// the sink only appends lines, serialized by a mutex, flushing after
// each write so a killed run keeps everything emitted so far.

#include <string>

namespace gsgcn::obs {

class Telemetry {
 public:
  static Telemetry& instance();

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// Open (truncate) the JSONL sink. Returns false if the file cannot be
  /// created; an earlier sink, if any, is closed first.
  bool open(const std::string& path);

  bool enabled() const;

  /// Append one record (a complete JSON object, no trailing newline).
  /// No-op while closed.
  void emit(const std::string& json_object);

  void close();

 private:
  Telemetry();  // constructs Impl eagerly: impl_ is immutable afterwards,
                // so enabled()/emit() never race a first open() on it
  ~Telemetry();
  struct Impl;
  Impl* const impl_;
};

}  // namespace gsgcn::obs

#pragma once
// gsgcn::obs roofline attribution — work models + report emission.
//
// Pairs the phases measured by perf.hpp with analytic work models
// (flops + bytes per kernel invocation) so each pipeline phase reports
// achieved GFLOP/s, GB/s, arithmetic intensity, IPC and LLC miss rate —
// the roofline methodology (Williams et al., CACM 2009). The byte
// models count COMPULSORY traffic (each operand read once, each result
// written once): a lower bound on real traffic, so model_gbps is a
// lower bound on achieved bandwidth and arithmetic_intensity an upper
// bound on the kernel's true intensity. measured_gbps (LLC misses x
// 64B / s, PMU-capable hosts only) bounds from the other side.
//
// Work models (f32 elements = 4 bytes):
//   gemm m x k x n:  2mnk flops;  4(mk + kn + c_touch*mn) bytes,
//                    c_touch = 2 when beta != 0 (C read + written).
//   spmm n vertices, e edges, f cols (mean-aggregation propagate):
//                    f(e + n) flops; 4(2nf + e + n) bytes
//                    (X in, Y out, one u32 index per edge + offsets).
//   gather r rows x f cols: 0 flops; 8rf bytes (read rows, write out).
//   adam p params: ~10 flops/param; 28 bytes/param
//                  (read w,g,m,v; write w,m,v).
//
// MachineInfo captures the host (hostname, CPU model, cache sizes, peak
// flops/cycle) so committed baselines are attributable to hardware; the
// same struct feeds the bench emitters' JSON headers.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/perf.hpp"

namespace gsgcn::obs {

struct Work {
  double flops = 0.0;
  double bytes = 0.0;
};

Work gemm_work(std::int64_t m, std::int64_t k, std::int64_t n,
               bool c_read_and_written);
Work spmm_work(std::int64_t n_vertices, std::int64_t n_edges,
               std::int64_t cols);
Work gather_work(std::int64_t rows, std::int64_t cols);
/// Feature-store variant: the source rows are stored compressed, so a
/// gathered value reads `read_bytes_per_value` (4 fp32, 2 fp16/bf16,
/// 1 int8) and writes 4 bytes of widened fp32.
Work gather_work(std::int64_t rows, std::int64_t cols,
                 double read_bytes_per_value);
Work adam_work(std::int64_t params);

/// Host description for report headers and bench baselines.
struct MachineInfo {
  std::string hostname;
  std::string cpu_model;   ///< /proc/cpuinfo "model name" (empty if n/a)
  int num_cpus = 0;
  std::int64_t l1d_bytes = 0;  ///< 0 when sysfs is unavailable
  std::int64_t l2_bytes = 0;
  std::int64_t l3_bytes = 0;
  /// Per-core peak f32 flops/cycle; GSGCN_PEAK_FLOPS_PER_CYCLE env
  /// override, default 32 (AVX2 FMA: 2 ports x 8 lanes x 2 flops).
  double peak_flops_per_cycle = 32.0;
};

/// Probe the host once and cache the result (thread-safe).
const MachineInfo& machine_info();

/// Serialize `machine` as a JSON object ({"hostname": ..., ...}).
std::string machine_info_json(const MachineInfo& machine);

/// Full perf report: machine header + one object per phase with raw
/// counters and derived roofline metrics. Phases with pmu_samples <
/// calls report available=false and null derived counter metrics —
/// never garbage. This is the --perf-out document and the run_summary
/// "perf" value.
std::string roofline_report_json(const std::vector<PhasePerf>& phases,
                                 const MachineInfo& machine);

/// Convenience: scrape the profiler and write the report to `path`.
/// Returns false when the file cannot be written.
bool write_roofline_report(const std::string& path);

}  // namespace gsgcn::obs

#pragma once
// gsgcn::obs span tracer — Chrome trace-event JSON output.
//
// GSGCN_TRACE_SPAN("pool/refill") opens an RAII span; when the tracer is
// active, the span's [begin, end) interval is recorded as a complete
// ("ph":"X") trace event into a per-thread buffer — one relaxed atomic
// load plus two steady_clock reads per span, no locks, no allocation in
// steady state. Tracer::stop() merges every thread's buffer (including
// those of already-exited threads, which retire their events on thread
// exit) and writes a single JSON document loadable by Perfetto or
// chrome://tracing.
//
// Like the metrics macros, GSGCN_TRACE_SPAN compiles to nothing unless
// GSGCN_OBS is on (or a Debug/sanitizer build); the Span/Tracer classes
// themselves are always available, so tests and tools can drive them in
// any build flavor.
//
// Span names are slash-separated "<subsystem>/<operation>" string
// LITERALS (or pointers outliving the trace): the span stores the
// pointer, not a copy. An optional int64 id is emitted as args.v — used
// for epoch numbers, sampler instance ids, GEMM flop counts.
//
// GSGCN_TRACE_COUNTER(name, value) records a counter sample (Chrome
// "ph":"C") on the same per-thread buffers: Perfetto renders each name
// as a value-over-time track (pool occupancy, per-epoch loss, per-phase
// GFLOP/s) alongside the spans. Counter names share the literal-pointer
// contract; tracks are keyed process-wide by name, so samples from
// different threads interleave on one track in timestamp order.
//
// Concurrency contract: start()/stop() are mutex-protected against each
// other, and spans on any thread are safe while active. stop() merges
// live thread buffers without synchronizing against in-flight spans, so
// call it only after parallel work has joined (end of run) — the same
// quiescent-point discipline as Registry::scrape().

#include <cstdint>
#include <string>

namespace gsgcn::obs {

class Tracer {
 public:
  static Tracer& instance();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Begin capturing; events recorded before the next stop() are written
  /// to `path` (Chrome trace-event JSON). Discards any prior capture.
  /// Returns false if already active.
  bool start(const std::string& path);

  /// Stop capturing, merge all buffers, write the file given to start().
  /// Returns false if not active or the file could not be written.
  bool stop();

  /// Cheap capture check — the first instruction of every span.
  bool active() const;

  /// Events captured so far (merged view; quiescent points only).
  std::size_t event_count();

  /// Serialize the current capture without writing a file (tests).
  std::string dump_json();

  /// Record a counter sample ("ph":"C") at the current time. No-op when
  /// inactive. `name` follows the span literal-pointer contract.
  void counter(const char* name, double value);

  // Internal API used by Span and the per-thread buffers.
  void record(const char* name, std::uint64_t t0_ns, std::uint64_t t1_ns,
              std::int64_t arg, bool has_arg);
  std::uint64_t now_ns() const;

  struct Impl;  // public so the per-thread buffer destructor can retire

 private:
  Tracer();
  ~Tracer();
  Impl* impl_;
};

/// RAII interval span. Construction samples the clock only when the
/// tracer is active; destruction records the event.
class Span {
 public:
  explicit Span(const char* name) : Span(name, 0, false) {}
  Span(const char* name, std::int64_t arg) : Span(name, arg, true) {}
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Span(const char* name, std::int64_t arg, bool has_arg);
  const char* name_;
  std::int64_t arg_;
  std::uint64_t t0_ns_ = 0;
  bool has_arg_;
  bool armed_ = false;
};

}  // namespace gsgcn::obs

#if defined(GSGCN_OBS_ENABLED)

#define GSGCN_OBS_CONCAT_INNER(a, b) a##b
#define GSGCN_OBS_CONCAT(a, b) GSGCN_OBS_CONCAT_INNER(a, b)

#define GSGCN_TRACE_SPAN(name) \
  ::gsgcn::obs::Span GSGCN_OBS_CONCAT(gsgcn_trace_span_, __LINE__)(name)
#define GSGCN_TRACE_SPAN_ID(name, id)                            \
  ::gsgcn::obs::Span GSGCN_OBS_CONCAT(gsgcn_trace_span_,         \
                                      __LINE__)(name,            \
                                                static_cast<std::int64_t>(id))
#define GSGCN_TRACE_COUNTER(name, value)       \
  ::gsgcn::obs::Tracer::instance().counter(    \
      name, static_cast<double>(value))

#else

// Compiled out: operands are NOT evaluated.
#define GSGCN_TRACE_SPAN(name) static_cast<void>(0)
#define GSGCN_TRACE_SPAN_ID(name, id) static_cast<void>(0)
#define GSGCN_TRACE_COUNTER(name, value) static_cast<void>(0)

#endif  // GSGCN_OBS_ENABLED

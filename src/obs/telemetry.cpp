#include "obs/telemetry.hpp"

#include <atomic>
#include <cstdio>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace gsgcn::obs {

struct Telemetry::Impl {
  util::Mutex mu;
  /// The sink handle; every touch (open, write, close) is serialized.
  std::FILE* f GUARDED_BY(mu) = nullptr;
  /// Mirror of `f != nullptr` for the lock-free enabled() fast path.
  std::atomic<bool> open{false};
};

Telemetry& Telemetry::instance() {
  static Telemetry t;
  return t;
}

// Eager Impl construction: the singleton constructor runs exactly once
// (C++ magic static), so impl_ is fully published before any thread can
// call open()/emit() — the previous lazy `if (impl_ == nullptr) new`
// inside open() raced against concurrent enabled() readers.
Telemetry::Telemetry() : impl_(new Impl) {}

Telemetry::~Telemetry() {
  close();
  delete impl_;
}

bool Telemetry::open(const std::string& path) {
  util::MutexLock lock(impl_->mu);
  if (impl_->f != nullptr) {
    std::fclose(impl_->f);
    impl_->f = nullptr;
    impl_->open.store(false, std::memory_order_release);
  }
  impl_->f = std::fopen(path.c_str(), "wb");
  if (impl_->f == nullptr) {
    std::fprintf(stderr, "obs::Telemetry: cannot open '%s'\n", path.c_str());
    return false;
  }
  impl_->open.store(true, std::memory_order_release);
  return true;
}

bool Telemetry::enabled() const {
  return impl_->open.load(std::memory_order_acquire);
}

void Telemetry::emit(const std::string& json_object) {
  if (!enabled()) return;
  util::MutexLock lock(impl_->mu);
  if (impl_->f == nullptr) return;  // closed between the check and the lock
  std::fwrite(json_object.data(), 1, json_object.size(), impl_->f);
  std::fputc('\n', impl_->f);
  std::fflush(impl_->f);
}

void Telemetry::close() {
  util::MutexLock lock(impl_->mu);
  if (impl_->f != nullptr) {
    std::fclose(impl_->f);
    impl_->f = nullptr;
  }
  impl_->open.store(false, std::memory_order_release);
}

}  // namespace gsgcn::obs

#include "obs/telemetry.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace gsgcn::obs {

struct Telemetry::Impl {
  std::mutex mu;
  std::FILE* f = nullptr;
  std::atomic<bool> open{false};
};

Telemetry& Telemetry::instance() {
  static Telemetry t;
  return t;
}

Telemetry::~Telemetry() {
  close();
  delete impl_;
}

bool Telemetry::open(const std::string& path) {
  if (impl_ == nullptr) impl_ = new Impl;
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->f != nullptr) {
    std::fclose(impl_->f);
    impl_->f = nullptr;
    impl_->open.store(false, std::memory_order_release);
  }
  impl_->f = std::fopen(path.c_str(), "wb");
  if (impl_->f == nullptr) {
    std::fprintf(stderr, "obs::Telemetry: cannot open '%s'\n", path.c_str());
    return false;
  }
  impl_->open.store(true, std::memory_order_release);
  return true;
}

bool Telemetry::enabled() const {
  return impl_ != nullptr && impl_->open.load(std::memory_order_acquire);
}

void Telemetry::emit(const std::string& json_object) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->f == nullptr) return;
  std::fwrite(json_object.data(), 1, json_object.size(), impl_->f);
  std::fputc('\n', impl_->f);
  std::fflush(impl_->f);
}

void Telemetry::close() {
  if (impl_ == nullptr) return;
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->f != nullptr) {
    std::fclose(impl_->f);
    impl_->f = nullptr;
  }
  impl_->open.store(false, std::memory_order_release);
}

}  // namespace gsgcn::obs

#pragma once
// gsgcn::obs hardware-counter (PMU) profiling.
//
// Wraps perf_event_open(2) counter groups behind an RAII PerfRegion that
// composes with the GSGCN_TRACE_SPAN sites: a region names one pipeline
// phase ("sample", "gather", "propagate", "gemm", "update"), optionally
// carries a modeled work estimate (flops + bytes, see roofline.hpp), and
// on destruction folds the measured counter deltas plus wall time into a
// process-wide per-phase accumulator (PerfProfiler). A quiescent-point
// scrape() then yields per-phase cycles, instructions, LLC loads/misses,
// backend stalls and branch misses, from which roofline.hpp derives IPC,
// miss rate, GFLOP/s, GB/s and arithmetic intensity.
//
// Counter group (one group per thread, leader = cycles):
//   cycles, instructions, LLC-loads, LLC-misses,
//   stalled-cycles-backend, branch-misses
// The group is opened with PERF_FORMAT_GROUP|TOTAL_TIME_ENABLED|
// TOTAL_TIME_RUNNING so deltas can be scaled when the kernel multiplexes
// the group against other users of the PMU, and with exclude_kernel/
// exclude_hv so it works at perf_event_paranoid <= 2 (the default on
// most distros).
//
// NULL BACKEND / graceful degradation. perf_event_open is frequently
// unavailable: containers without CAP_PERFMON, perf_event_paranoid >= 3,
// VMs without a virtualized PMU, non-Linux hosts. The first failed open
// latches the process into the null backend: regions still count calls,
// wall time and modeled work (so GFLOP/s and modeled GB/s keep working),
// but every hardware counter reads 0 and PhasePerf/PerfDelta report
// available == false — never garbage. perf_set_force_null(true) (or env
// GSGCN_PERF_FORCE_NULL=1) forces this path so it is testable on PMU-
// capable hosts too.
//
// MEASUREMENT SEMANTICS. Counters are per-thread and a region measures
// only the thread that opened it. Regions around OpenMP parallel kernels
// (gemm, propagate) therefore count the calling thread's share; since
// the master thread participates in every parallel loop, ratio metrics
// (IPC, LLC miss rate, multiplex fraction) are representative of the
// whole kernel, while absolute counts cover 1/num_threads of it.
// Throughput metrics (GFLOP/s, modeled GB/s) come from wall time plus
// the work model and are exact regardless. measured GB/s (LLC misses x
// 64B / wall) inherits the per-thread caveat.
//
// Macro contract: GSGCN_PERF_REGION* compiles to nothing (operands
// unevaluated) unless GSGCN_OBS_ENABLED, like the metrics/trace macros;
// the classes themselves are always compiled so every build flavor can
// test them. Regions are additionally gated at runtime: when the
// profiler is disabled (the default) a region costs one relaxed atomic
// load.
//
// Concurrency contract: PerfRegion is safe on any thread; the per-phase
// fold takes a mutex but regions are per-iteration, not per-element, so
// the lock is cold. enable()/disable()/reset()/scrape() follow the
// Registry::scrape() quiescent-point discipline.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace gsgcn::obs {

/// Counter slots, in group order. kCycles is the group leader.
enum class PerfSlot : int {
  kCycles = 0,
  kInstructions,
  kLlcLoads,
  kLlcMisses,
  kStalledBackend,
  kBranchMisses,
};
inline constexpr int kPerfSlotCount = 6;

/// Stable snake_case name for JSON keys ("cycles", "instructions", ...).
const char* perf_slot_name(PerfSlot slot);

/// Raw snapshot of the calling thread's counter group. Obtain with
/// perf_read_thread(); subtract two snapshots with perf_delta().
struct PerfReading {
  std::array<std::uint64_t, kPerfSlotCount> value{};
  std::uint64_t time_enabled_ns = 0;
  std::uint64_t time_running_ns = 0;
  std::uint64_t wall_ns = 0;  ///< steady_clock, sampled with the counters
  bool available = false;     ///< false on the null backend
};

/// Multiplex-scaled counter deltas between two readings on one thread.
struct PerfDelta {
  std::array<double, kPerfSlotCount> value{};
  std::uint64_t wall_ns = 0;
  /// time_running / time_enabled over the interval; 1.0 means the group
  /// was never descheduled from the PMU (no multiplexing).
  double multiplex_fraction = 1.0;
  bool available = false;

  double ipc() const;            ///< instructions / cycles (0 if n/a)
  double llc_miss_rate() const;  ///< LLC misses / LLC loads (0 if n/a)
};

/// Read the calling thread's counter group, opening it on first use.
/// Always succeeds; on the null backend the reading has available=false
/// and a valid wall_ns. Direct API for benchmarks; training code should
/// use PerfRegion.
PerfReading perf_read_thread();

/// Scaled difference end - begin. Both readings must come from the same
/// thread. available is the AND of both endpoints.
PerfDelta perf_delta(const PerfReading& begin, const PerfReading& end);

/// True when the calling thread's group opened with live hardware
/// counters (probes by opening it if necessary).
bool perf_counters_available();

/// Force (or unforce) the null backend for subsequently opened thread
/// groups; existing per-thread groups are reopened on their next read.
/// Test hook — the env var GSGCN_PERF_FORCE_NULL=1 sets it at startup.
void perf_set_force_null(bool force);

/// Accumulated measurements for one named phase.
struct PhasePerf {
  std::string name;
  std::uint64_t calls = 0;
  std::uint64_t pmu_samples = 0;  ///< calls that carried live counters
  std::uint64_t wall_ns = 0;
  std::array<double, kPerfSlotCount> counters{};
  double multiplex_fraction = 1.0;  ///< call-weighted mean
  double flops = 0.0;               ///< modeled work (roofline.hpp)
  double bytes = 0.0;
  /// True iff every fold into this phase carried live hardware counters
  /// (so the counter-derived metrics below are meaningful).
  bool available = false;

  double counter(PerfSlot slot) const {
    return counters[static_cast<std::size_t>(slot)];
  }
  double seconds() const { return static_cast<double>(wall_ns) * 1e-9; }
  double ipc() const;                    ///< 0 when !available
  double llc_miss_rate() const;          ///< 0 when !available
  double gflops() const;                 ///< modeled flops / wall
  double model_gbps() const;             ///< modeled bytes / wall
  double measured_gbps() const;          ///< LLC misses * 64B / wall
  double arithmetic_intensity() const;   ///< modeled flops / bytes
};

/// Process-wide per-phase accumulator. Disabled by default; train_cli
/// enables it for --perf-out. Fold happens in ~PerfRegion under a mutex
/// (cold: once per region, not per element).
class PerfProfiler {
 public:
  static PerfProfiler& instance();

  PerfProfiler(const PerfProfiler&) = delete;
  PerfProfiler& operator=(const PerfProfiler&) = delete;

  void enable();
  void disable();
  bool enabled() const;  ///< one relaxed load — the region fast path

  /// Drop all accumulated phases (quiescent points only).
  void reset();

  /// Copy of every phase, in first-recorded order (quiescent points
  /// only — same discipline as Registry::scrape()).
  std::vector<PhasePerf> scrape();

  /// Fold one measured region. Internal API used by PerfRegion and the
  /// benchmarks; `phase` follows the literal-pointer contract.
  void record(const char* phase, const PerfDelta& delta, double flops,
              double bytes);

  struct Impl;

 private:
  PerfProfiler();
  ~PerfProfiler();
  Impl* impl_;
};

/// RAII measured region. Construction reads the thread's counter group
/// only when the profiler is enabled; destruction reads again and folds
/// the delta (plus modeled work) into the named phase.
///
/// When the tracer is also active and the region modeled flops, a
/// Chrome counter sample ("ph":"C", track = phase name) of the region's
/// achieved GFLOP/s is emitted so Perfetto shows throughput over time.
class PerfRegion {
 public:
  explicit PerfRegion(const char* phase, double flops = 0.0,
                      double bytes = 0.0);
  ~PerfRegion();
  PerfRegion(const PerfRegion&) = delete;
  PerfRegion& operator=(const PerfRegion&) = delete;

 private:
  const char* phase_;
  double flops_;
  double bytes_;
  PerfReading begin_{};
  bool armed_ = false;
};

}  // namespace gsgcn::obs

#if defined(GSGCN_OBS_ENABLED)

#if !defined(GSGCN_OBS_CONCAT)
#define GSGCN_OBS_CONCAT_INNER(a, b) a##b
#define GSGCN_OBS_CONCAT(a, b) GSGCN_OBS_CONCAT_INNER(a, b)
#endif

#define GSGCN_PERF_REGION(phase) \
  ::gsgcn::obs::PerfRegion GSGCN_OBS_CONCAT(gsgcn_perf_region_, \
                                            __LINE__)(phase)
#define GSGCN_PERF_REGION_WORK(phase, flops, bytes)             \
  ::gsgcn::obs::PerfRegion GSGCN_OBS_CONCAT(gsgcn_perf_region_, \
                                            __LINE__)(          \
      phase, static_cast<double>(flops), static_cast<double>(bytes))

#else

// Compiled out: operands are NOT evaluated.
#define GSGCN_PERF_REGION(phase) static_cast<void>(0)
#define GSGCN_PERF_REGION_WORK(phase, flops, bytes) static_cast<void>(0)

#endif  // GSGCN_OBS_ENABLED

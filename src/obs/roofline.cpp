#include "obs/roofline.hpp"

#include <cstdio>
#include <fstream>
#include <thread>

#include "util/env.hpp"
#include "util/json_writer.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace gsgcn::obs {

Work gemm_work(std::int64_t m, std::int64_t k, std::int64_t n,
               bool c_read_and_written) {
  Work w;
  const double dm = static_cast<double>(m);
  const double dk = static_cast<double>(k);
  const double dn = static_cast<double>(n);
  w.flops = 2.0 * dm * dn * dk;
  w.bytes = 4.0 * (dm * dk + dk * dn + (c_read_and_written ? 2.0 : 1.0) * dm * dn);
  return w;
}

Work spmm_work(std::int64_t n_vertices, std::int64_t n_edges,
               std::int64_t cols) {
  Work w;
  const double n = static_cast<double>(n_vertices);
  const double e = static_cast<double>(n_edges);
  const double f = static_cast<double>(cols);
  w.flops = f * (e + n);
  w.bytes = 4.0 * (2.0 * n * f + e + n);
  return w;
}

Work gather_work(std::int64_t rows, std::int64_t cols) {
  return gather_work(rows, cols, 4.0);
}

Work gather_work(std::int64_t rows, std::int64_t cols,
                 double read_bytes_per_value) {
  Work w;
  w.flops = 0.0;
  w.bytes = (read_bytes_per_value + 4.0) * static_cast<double>(rows) *
            static_cast<double>(cols);
  return w;
}

Work adam_work(std::int64_t params) {
  Work w;
  const double p = static_cast<double>(params);
  w.flops = 10.0 * p;
  w.bytes = 28.0 * p;
  return w;
}

namespace {

std::string read_hostname() {
#if defined(__unix__) || defined(__APPLE__)
  char buf[256] = {};
  if (gethostname(buf, sizeof(buf) - 1) == 0 && buf[0] != '\0') {
    return std::string(buf);
  }
#endif
  return "unknown";
}

std::string read_cpu_model() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (line.compare(0, 10, "model name") != 0) continue;
    std::size_t start = colon + 1;
    while (start < line.size() && line[start] == ' ') ++start;
    return line.substr(start);
  }
  return std::string();
}

/// Parse a sysfs cache size string ("48K", "2048K", "36M") to bytes.
std::int64_t parse_cache_size(const std::string& s) {
  if (s.empty()) return 0;
  char unit = '\0';
  long long v = 0;
  std::sscanf(s.c_str(), "%lld%c", &v, &unit);
  if (unit == 'K' || unit == 'k') return v * 1024;
  if (unit == 'M' || unit == 'm') return v * 1024 * 1024;
  if (unit == 'G' || unit == 'g') return v * 1024 * 1024 * 1024;
  return v;
}

std::string read_sysfs(const std::string& path) {
  std::ifstream in(path);
  std::string s;
  std::getline(in, s);
  return s;
}

void probe_caches(MachineInfo& m) {
  const std::string base = "/sys/devices/system/cpu/cpu0/cache/index";
  for (int i = 0; i < 8; ++i) {
    const std::string dir = base + std::to_string(i) + "/";
    const std::string level = read_sysfs(dir + "level");
    if (level.empty()) break;
    const std::string type = read_sysfs(dir + "type");
    const std::int64_t size = parse_cache_size(read_sysfs(dir + "size"));
    if (level == "1" && type == "Data") m.l1d_bytes = size;
    if (level == "2" && type != "Instruction") m.l2_bytes = size;
    if (level == "3" && type != "Instruction") m.l3_bytes = size;
  }
}

MachineInfo probe_machine() {
  MachineInfo m;
  m.hostname = read_hostname();
  m.cpu_model = read_cpu_model();
  m.num_cpus = static_cast<int>(std::thread::hardware_concurrency());
  probe_caches(m);
  m.peak_flops_per_cycle =
      util::env_double("GSGCN_PEAK_FLOPS_PER_CYCLE", 32.0);
  return m;
}

/// NaN-free derived metric emission: unavailable counter-derived values
/// are emitted as null so consumers can distinguish "not measured" from
/// a genuine zero.
void emit_metric(util::JsonWriter& w, const char* key, double v,
                 bool available) {
  w.key(key);
  if (available) {
    w.value(v);
  } else {
    w.value_null();
  }
}

}  // namespace

const MachineInfo& machine_info() {
  static const MachineInfo info = probe_machine();
  return info;
}

std::string machine_info_json(const MachineInfo& machine) {
  std::string out;
  util::JsonWriter w(&out);
  w.begin_object();
  w.key("hostname").value(machine.hostname);
  w.key("cpu_model").value(machine.cpu_model);
  w.key("num_cpus").value(machine.num_cpus);
  w.key("l1d_bytes").value(static_cast<std::int64_t>(machine.l1d_bytes));
  w.key("l2_bytes").value(static_cast<std::int64_t>(machine.l2_bytes));
  w.key("l3_bytes").value(static_cast<std::int64_t>(machine.l3_bytes));
  w.key("peak_flops_per_cycle").value(machine.peak_flops_per_cycle);
  w.end_object();
  return out;
}

std::string roofline_report_json(const std::vector<PhasePerf>& phases,
                                 const MachineInfo& machine) {
  bool any_available = false;
  for (const PhasePerf& p : phases) {
    if (p.available) any_available = true;
  }
  std::string out;
  util::JsonWriter w(&out);
  w.begin_object();
  w.key("type").value("perf_report");
  w.key("machine").value_raw(machine_info_json(machine));
  w.key("pmu_available").value(any_available);
  w.key("phases").begin_array();
  for (const PhasePerf& p : phases) {
    w.begin_object();
    w.key("name").value(p.name);
    w.key("available").value(p.available);
    w.key("calls").value(static_cast<std::int64_t>(p.calls));
    w.key("pmu_samples").value(static_cast<std::int64_t>(p.pmu_samples));
    w.key("seconds").value(p.seconds());
    w.key("flops").value(p.flops);
    w.key("bytes").value(p.bytes);
    // Wall-clock + work-model metrics work on every backend.
    w.key("gflops").value(p.gflops());
    w.key("model_gbps").value(p.model_gbps());
    w.key("arithmetic_intensity").value(p.arithmetic_intensity());
    // Counter-derived metrics only exist on live PMUs.
    for (int i = 0; i < kPerfSlotCount; ++i) {
      const auto slot = static_cast<PerfSlot>(i);
      emit_metric(w, perf_slot_name(slot), p.counter(slot), p.available);
    }
    emit_metric(w, "ipc", p.ipc(), p.available);
    emit_metric(w, "llc_miss_rate", p.llc_miss_rate(), p.available);
    emit_metric(w, "measured_gbps", p.measured_gbps(), p.available);
    emit_metric(w, "multiplex_fraction", p.multiplex_fraction, p.available);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return out;
}

bool write_roofline_report(const std::string& path) {
  const std::string json = roofline_report_json(
      PerfProfiler::instance().scrape(), machine_info());
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "obs::roofline: cannot open '%s'\n", path.c_str());
    return false;
  }
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = n == json.size() && std::fclose(f) == 0;
  if (!ok) {
    std::fprintf(stderr, "obs::roofline: short write to '%s'\n", path.c_str());
  }
  return ok;
}

}  // namespace gsgcn::obs

#include "obs/perf.hpp"

#include <atomic>
#include <chrono>
#include <cstring>

#include "obs/trace.hpp"
#include "util/env.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace gsgcn::obs {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Null-backend force flag plus a generation counter: flipping the flag
/// bumps the generation so already-open per-thread groups reopen on
/// their next read (required for the force-null test to be order-
/// independent on PMU-capable hosts).
std::atomic<bool> g_force_null{false};
std::atomic<std::uint64_t> g_backend_generation{0};

bool force_null_from_env() {
  static const bool forced = util::env_int("GSGCN_PERF_FORCE_NULL", 0) != 0;
  return forced;
}

#if defined(__linux__)

struct EventSpec {
  std::uint32_t type;
  std::uint64_t config;
};

constexpr EventSpec kEventSpecs[kPerfSlotCount] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HW_CACHE,
     PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_ACCESS << 16)},
    {PERF_TYPE_HW_CACHE,
     PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_STALLED_CYCLES_BACKEND},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
};

long perf_event_open_syscall(perf_event_attr* attr, pid_t pid, int cpu,
                             int group_fd, unsigned long flags) {
  return syscall(__NR_perf_event_open, attr, pid, cpu, group_fd, flags);
}

/// Per-thread counter group. The leader (cycles) carries the group read;
/// missing sibling events (some PMUs lack stalled-cycles-backend) leave
/// their slot at fd -1 and read as 0 — the group stays available as long
/// as the leader and the instructions counter opened.
struct ThreadGroup {
  int fd[kPerfSlotCount];
  /// Position of each slot in the group read buffer, -1 if not opened.
  int read_index[kPerfSlotCount];
  int n_open = 0;
  std::uint64_t generation = 0;
  bool open_attempted = false;
  bool available = false;

  ThreadGroup() {
    for (int i = 0; i < kPerfSlotCount; ++i) {
      fd[i] = -1;
      read_index[i] = -1;
    }
  }

  void close_all() {
    for (int i = 0; i < kPerfSlotCount; ++i) {
      if (fd[i] >= 0) ::close(fd[i]);
      fd[i] = -1;
      read_index[i] = -1;
    }
    n_open = 0;
    available = false;
  }

  void open_group() {
    open_attempted = true;
    generation = g_backend_generation.load(std::memory_order_acquire);
    if (g_force_null.load(std::memory_order_acquire)) return;
    for (int i = 0; i < kPerfSlotCount; ++i) {
      perf_event_attr attr;
      std::memset(&attr, 0, sizeof(attr));
      attr.type = kEventSpecs[i].type;
      attr.size = sizeof(attr);
      attr.config = kEventSpecs[i].config;
      attr.disabled = i == 0 ? 1 : 0;  // start the whole group at once
      attr.exclude_kernel = 1;         // works at perf_event_paranoid <= 2
      attr.exclude_hv = 1;
      attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                         PERF_FORMAT_TOTAL_TIME_RUNNING;
      const int group_fd = i == 0 ? -1 : fd[0];
#if defined(PERF_FLAG_FD_CLOEXEC)
      constexpr unsigned long kOpenFlags = PERF_FLAG_FD_CLOEXEC;
#else
      constexpr unsigned long kOpenFlags = 0;
#endif
      const long r =
          perf_event_open_syscall(&attr, 0, -1, group_fd, kOpenFlags);
      if (r >= 0) {
        fd[i] = static_cast<int>(r);
        read_index[i] = n_open++;
      } else if (i <= 1) {
        // Without cycles (the leader) or instructions there is nothing
        // worth scaling or ratioing: fall back to the null backend.
        close_all();
        return;
      }
    }
    ioctl(fd[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ioctl(fd[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
    available = true;
  }

  void read_into(PerfReading& out) {
    // Layout: nr, time_enabled, time_running, value[nr].
    std::uint64_t buf[3 + kPerfSlotCount] = {};
    const ssize_t want =
        static_cast<ssize_t>((3 + static_cast<std::size_t>(n_open)) *
                             sizeof(std::uint64_t));
    if (::read(fd[0], buf, static_cast<std::size_t>(want)) != want) {
      out.available = false;
      return;
    }
    out.time_enabled_ns = buf[1];
    out.time_running_ns = buf[2];
    for (int i = 0; i < kPerfSlotCount; ++i) {
      out.value[static_cast<std::size_t>(i)] =
          read_index[i] >= 0
              ? buf[3 + static_cast<std::size_t>(read_index[i])]
              : 0;
    }
    out.available = true;
  }

  ~ThreadGroup() { close_all(); }
};

ThreadGroup& local_group() {
  static thread_local ThreadGroup group;
  const std::uint64_t gen = g_backend_generation.load(std::memory_order_acquire);
  if (!group.open_attempted || group.generation != gen) {
    group.close_all();
    group.open_group();
  }
  return group;
}

#endif  // __linux__

struct ForceNullEnvInit {
  ForceNullEnvInit() {
    if (force_null_from_env()) g_force_null.store(true);
  }
};
ForceNullEnvInit g_force_null_env_init;

}  // namespace

const char* perf_slot_name(PerfSlot slot) {
  switch (slot) {
    case PerfSlot::kCycles: return "cycles";
    case PerfSlot::kInstructions: return "instructions";
    case PerfSlot::kLlcLoads: return "llc_loads";
    case PerfSlot::kLlcMisses: return "llc_misses";
    case PerfSlot::kStalledBackend: return "stalled_cycles_backend";
    case PerfSlot::kBranchMisses: return "branch_misses";
  }
  return "unknown";
}

void perf_set_force_null(bool force) {
  g_force_null.store(force, std::memory_order_release);
  g_backend_generation.fetch_add(1, std::memory_order_acq_rel);
}

PerfReading perf_read_thread() {
  PerfReading r;
  r.wall_ns = steady_now_ns();
#if defined(__linux__)
  ThreadGroup& group = local_group();
  if (group.available) group.read_into(r);
#endif
  return r;
}

bool perf_counters_available() { return perf_read_thread().available; }

PerfDelta perf_delta(const PerfReading& begin, const PerfReading& end) {
  PerfDelta d;
  d.wall_ns = end.wall_ns >= begin.wall_ns ? end.wall_ns - begin.wall_ns : 0;
  d.available = begin.available && end.available;
  if (!d.available) return d;
  const std::uint64_t enabled =
      end.time_enabled_ns - begin.time_enabled_ns;
  const std::uint64_t running =
      end.time_running_ns - begin.time_running_ns;
  // Multiplex scaling: if the kernel rotated the group off the PMU for
  // part of the interval, extrapolate counts by enabled/running. A group
  // that never ran yields no usable data.
  if (enabled > 0 && running == 0) {
    d.available = false;
    return d;
  }
  const double scale =
      running > 0 ? static_cast<double>(enabled) / static_cast<double>(running)
                  : 1.0;
  d.multiplex_fraction =
      enabled > 0 ? static_cast<double>(running) / static_cast<double>(enabled)
                  : 1.0;
  for (int i = 0; i < kPerfSlotCount; ++i) {
    const auto s = static_cast<std::size_t>(i);
    const std::uint64_t dv =
        end.value[s] >= begin.value[s] ? end.value[s] - begin.value[s] : 0;
    d.value[s] = static_cast<double>(dv) * scale;
  }
  return d;
}

namespace {

double safe_ratio(double num, double den) { return den > 0.0 ? num / den : 0.0; }

}  // namespace

double PerfDelta::ipc() const {
  if (!available) return 0.0;
  return safe_ratio(
      value[static_cast<std::size_t>(PerfSlot::kInstructions)],
      value[static_cast<std::size_t>(PerfSlot::kCycles)]);
}

double PerfDelta::llc_miss_rate() const {
  if (!available) return 0.0;
  return safe_ratio(value[static_cast<std::size_t>(PerfSlot::kLlcMisses)],
                    value[static_cast<std::size_t>(PerfSlot::kLlcLoads)]);
}

double PhasePerf::ipc() const {
  if (!available) return 0.0;
  return safe_ratio(counter(PerfSlot::kInstructions),
                    counter(PerfSlot::kCycles));
}

double PhasePerf::llc_miss_rate() const {
  if (!available) return 0.0;
  return safe_ratio(counter(PerfSlot::kLlcMisses),
                    counter(PerfSlot::kLlcLoads));
}

double PhasePerf::gflops() const {
  return safe_ratio(flops * 1e-9, seconds());
}

double PhasePerf::model_gbps() const {
  return safe_ratio(bytes * 1e-9, seconds());
}

double PhasePerf::measured_gbps() const {
  if (!available) return 0.0;
  return safe_ratio(counter(PerfSlot::kLlcMisses) * 64.0 * 1e-9, seconds());
}

double PhasePerf::arithmetic_intensity() const {
  return safe_ratio(flops, bytes);
}

struct PerfProfiler::Impl {
  std::atomic<bool> enabled{false};
  util::Mutex mu;
  std::vector<PhasePerf> phases GUARDED_BY(mu);

  PhasePerf& phase_locked(const char* name) REQUIRES(mu) {
    for (PhasePerf& p : phases) {
      if (p.name == name) return p;
    }
    phases.emplace_back();
    phases.back().name = name;
    return phases.back();
  }
};

PerfProfiler& PerfProfiler::instance() {
  static PerfProfiler profiler;
  return profiler;
}

PerfProfiler::PerfProfiler() : impl_(new Impl) {}
PerfProfiler::~PerfProfiler() { delete impl_; }

void PerfProfiler::enable() {
  impl_->enabled.store(true, std::memory_order_release);
}

void PerfProfiler::disable() {
  impl_->enabled.store(false, std::memory_order_release);
}

bool PerfProfiler::enabled() const {
  return impl_->enabled.load(std::memory_order_relaxed);
}

void PerfProfiler::reset() {
  util::MutexLock lock(impl_->mu);
  impl_->phases.clear();
}

std::vector<PhasePerf> PerfProfiler::scrape() {
  util::MutexLock lock(impl_->mu);
  return impl_->phases;
}

void PerfProfiler::record(const char* phase, const PerfDelta& delta,
                          double flops, double bytes) {
  util::MutexLock lock(impl_->mu);
  PhasePerf& p = impl_->phase_locked(phase);
  const double prev_calls = static_cast<double>(p.calls);
  p.calls += 1;
  p.wall_ns += delta.wall_ns;
  p.flops += flops;
  p.bytes += bytes;
  if (delta.available) {
    p.pmu_samples += 1;
    for (int i = 0; i < kPerfSlotCount; ++i) {
      const auto s = static_cast<std::size_t>(i);
      p.counters[s] += delta.value[s];
    }
  }
  // Call-weighted running mean keeps the fraction meaningful across
  // phases with different call counts.
  p.multiplex_fraction =
      (p.multiplex_fraction * prev_calls + delta.multiplex_fraction) /
      static_cast<double>(p.calls);
  p.available = p.calls > 0 && p.pmu_samples == p.calls;
}

PerfRegion::PerfRegion(const char* phase, double flops, double bytes)
    : phase_(phase), flops_(flops), bytes_(bytes) {
  if (!PerfProfiler::instance().enabled()) return;
  armed_ = true;
  begin_ = perf_read_thread();
}

PerfRegion::~PerfRegion() {
  if (!armed_) return;
  PerfProfiler& prof = PerfProfiler::instance();
  if (!prof.enabled()) return;  // disabled mid-region; drop the partial
  const PerfDelta d = perf_delta(begin_, perf_read_thread());
  prof.record(phase_, d, flops_, bytes_);
  if (flops_ > 0.0 && d.wall_ns > 0) {
    // Throughput-over-time track per phase; no-op unless tracing.
    Tracer& tracer = Tracer::instance();
    if (tracer.active()) {
      tracer.counter(phase_, flops_ * 1e-9 /
                                 (static_cast<double>(d.wall_ns) * 1e-9));
    }
  }
}

}  // namespace gsgcn::obs

#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <vector>

#include "util/json_writer.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace gsgcn::obs {

namespace {

struct Event {
  const char* name;
  std::uint64_t t0_ns;
  std::uint64_t t1_ns;       // unused for counter samples
  std::int64_t arg;
  double value;              // counter samples only
  std::uint32_t tid;
  bool has_arg;
  bool is_counter;
};

/// Per-thread event buffer; registers with the tracer on first use and
/// retires its events on thread exit. Mirrors the metrics shard design.
struct ThreadBuffer {
  std::vector<Event> events;
  std::uint32_t tid = 0;
  bool registered = false;
  ~ThreadBuffer();
};

}  // namespace

struct Tracer::Impl {
  util::Mutex mu;
  std::atomic<bool> active{false};
  std::string path GUARDED_BY(mu);
  /// Live threads' buffers. The POINTER VECTOR is guarded by mu; each
  /// buffer's event vector is owned by its thread and only read at
  /// documented quiescent points (stop()/collect — see trace.hpp).
  std::vector<ThreadBuffer*> buffers GUARDED_BY(mu);
  /// Events of exited threads.
  std::vector<Event> retired GUARDED_BY(mu);
  std::atomic<std::uint32_t> next_tid{1};
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();

  ThreadBuffer& local_buffer() EXCLUDES(mu) {
    static thread_local ThreadBuffer tb;
    if (!tb.registered) {
      util::MutexLock lock(mu);
      tb.tid = next_tid.fetch_add(1, std::memory_order_relaxed);
      buffers.push_back(&tb);
      tb.registered = true;
    }
    return tb;
  }

  void retire(ThreadBuffer* tb) EXCLUDES(mu) {
    util::MutexLock lock(mu);
    buffers.erase(std::remove(buffers.begin(), buffers.end(), tb),
                  buffers.end());
    retired.insert(retired.end(), tb->events.begin(), tb->events.end());
  }

  /// Merged copy of every buffer; caller must NOT hold mu.
  std::vector<Event> collect() EXCLUDES(mu) {
    util::MutexLock lock(mu);
    std::vector<Event> all = retired;
    for (const ThreadBuffer* tb : buffers) {
      all.insert(all.end(), tb->events.begin(), tb->events.end());
    }
    return all;
  }

  void discard() EXCLUDES(mu) {
    util::MutexLock lock(mu);
    retired.clear();
    for (ThreadBuffer* tb : buffers) tb->events.clear();
  }
};

namespace {

Tracer::Impl* g_impl = nullptr;  // set once by the singleton constructor

ThreadBuffer::~ThreadBuffer() {
  if (registered && g_impl != nullptr) g_impl->retire(this);
}

std::string serialize(const std::vector<Event>& events) {
  std::string out;
  util::JsonWriter w(&out);
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();
  w.begin_object()
      .key("name").value("process_name")
      .key("ph").value("M")
      .key("pid").value(1)
      .key("tid").value(0)
      .key("args").begin_object().key("name").value("gsgcn").end_object()
      .end_object();
  for (const Event& e : events) {
    w.begin_object();
    w.key("name").value(e.name);
    w.key("cat").value("gsgcn");
    if (e.is_counter) {
      w.key("ph").value("C");
      w.key("pid").value(1);
      w.key("tid").value(static_cast<std::int64_t>(e.tid));
      w.key("ts").value(static_cast<double>(e.t0_ns) * 1e-3);  // microseconds
      w.key("args").begin_object().key("value").value(e.value).end_object();
    } else {
      w.key("ph").value("X");
      w.key("pid").value(1);
      w.key("tid").value(static_cast<std::int64_t>(e.tid));
      w.key("ts").value(static_cast<double>(e.t0_ns) * 1e-3);  // microseconds
      w.key("dur").value(static_cast<double>(e.t1_ns - e.t0_ns) * 1e-3);
      if (e.has_arg) {
        w.key("args").begin_object().key("v").value(e.arg).end_object();
      }
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return out;
}

}  // namespace

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

Tracer::Tracer() : impl_(new Impl) { g_impl = impl_; }

Tracer::~Tracer() {
  // Best-effort flush if the process exits mid-capture (train_cli calls
  // stop() explicitly; this covers abnormal unwinds).
  if (impl_->active.load(std::memory_order_acquire)) stop();
  g_impl = nullptr;
  delete impl_;
}

bool Tracer::active() const {
  return impl_->active.load(std::memory_order_acquire);
}

std::uint64_t Tracer::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - impl_->epoch)
          .count());
}

bool Tracer::start(const std::string& path) {
  if (active()) return false;
  impl_->discard();
  {
    util::MutexLock lock(impl_->mu);
    impl_->path = path;
  }
  impl_->active.store(true, std::memory_order_release);
  return true;
}

bool Tracer::stop() {
  if (!active()) return false;
  impl_->active.store(false, std::memory_order_release);
  const std::vector<Event> events = impl_->collect();
  impl_->discard();  // the capture is consumed; event_count() drops to 0
  const std::string json = serialize(events);
  std::string path;
  {
    util::MutexLock lock(impl_->mu);
    path = impl_->path;
  }
  if (path.empty()) return true;  // test-driven capture via dump_json()
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "obs::Tracer: cannot open '%s'\n", path.c_str());
    return false;
  }
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = n == json.size() && std::fclose(f) == 0;
  if (!ok) std::fprintf(stderr, "obs::Tracer: short write to '%s'\n", path.c_str());
  return ok;
}

std::size_t Tracer::event_count() { return impl_->collect().size(); }

std::string Tracer::dump_json() { return serialize(impl_->collect()); }

void Tracer::record(const char* name, std::uint64_t t0_ns, std::uint64_t t1_ns,
                    std::int64_t arg, bool has_arg) {
  ThreadBuffer& tb = impl_->local_buffer();
  tb.events.push_back(
      Event{name, t0_ns, t1_ns, arg, 0.0, tb.tid, has_arg, false});
}

void Tracer::counter(const char* name, double value) {
  if (!active()) return;
  ThreadBuffer& tb = impl_->local_buffer();
  tb.events.push_back(
      Event{name, now_ns(), 0, 0, value, tb.tid, false, true});
}

Span::Span(const char* name, std::int64_t arg, bool has_arg)
    : name_(name), arg_(arg), has_arg_(has_arg) {
  Tracer& t = Tracer::instance();
  if (t.active()) {
    armed_ = true;
    t0_ns_ = t.now_ns();
  }
}

Span::~Span() {
  if (!armed_) return;
  Tracer& t = Tracer::instance();
  if (!t.active()) return;  // stopped mid-span; drop the partial interval
  t.record(name_, t0_ns_, t.now_ns(), arg_, has_arg_);
}

}  // namespace gsgcn::obs

#pragma once
// gsgcn::obs metrics registry — counters, gauges, fixed-bucket histograms.
//
// Design goals, in priority order:
//   1. Zero cost when observability is compiled out: the GSGCN_COUNTER_* /
//      GSGCN_GAUGE_* / GSGCN_HISTOGRAM_* macros below expand to
//      static_cast<void>(0) with UNEVALUATED operands (same contract as
//      util/check.hpp), so Release builds carry no instructions, no
//      branches, and no string literals for instrumentation sites.
//   2. No atomics or locks on the hot path when compiled in: counter adds
//      and histogram observations land in a per-thread shard; gauges
//      store a (sequence, value) pair in the same shard, stamped from one
//      relaxed atomic clock so scrape() can pick the latest write.
//      Shards are merged only at scrape time. A thread that exits (the
//      TSan std::thread backend creates fresh teams per region) retires
//      its shard into a registry-held accumulator, so nothing is lost.
//   3. Registration is name-keyed and idempotent: the macros cache the
//      handle in a function-local static, so each site resolves its name
//      exactly once per process.
//
// Scrape discipline: scrape()/reset() merge live shards without
// synchronizing against their owner threads. Call them at quiescent
// points only — after a parallel region has joined, at epoch/run
// boundaries — which is where every caller in this repo sits.
//
// Naming convention: dot-separated "<subsystem>.<metric>", e.g.
// "pool.occupancy", "dashboard.probes" (see DESIGN.md "Observability").
//
// The registry classes are always compiled (tests exercise the math in
// every build flavor); only the instrumentation macros are conditional.

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

#if defined(GSGCN_OBS_ENABLED)
#define GSGCN_OBS_COMPILED 1
#else
#define GSGCN_OBS_COMPILED 0
#endif

namespace gsgcn::obs {

/// True when instrumentation macros are live in this build
/// (-DGSGCN_OBS=ON, Debug, or any sanitizer configuration).
constexpr bool compiled_in() { return GSGCN_OBS_COMPILED != 0; }

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;          // ascending upper bounds; +inf implicit
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1 (last = overflow)
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  /// Estimate the p-th percentile (p in [0, 100]) by linear interpolation
  /// inside the bucket holding that rank; the first bucket's lower edge is
  /// the observed min and the overflow bucket's upper edge the observed
  /// max. Returns 0 for an empty histogram.
  double percentile(double p) const;
  double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
};

struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
  bool ever_set = false;
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, double>> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string to_json() const;
  /// Lookup helpers for tests; throw std::out_of_range on unknown names.
  double counter(const std::string& name) const;
  const GaugeSnapshot& gauge(const std::string& name) const;
  const HistogramSnapshot& histogram(const std::string& name) const;
};

class Registry {
 public:
  /// Process-wide instance (the macros below always target it).
  static Registry& instance();

  Registry();  // defined in metrics.cpp: Shard is incomplete here
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;
  ~Registry();

  // --- registration (mutex-protected, idempotent by name) ---
  // Re-registering a name as a different metric kind, or a histogram with
  // different bounds, throws std::logic_error.
  int counter(const std::string& name) EXCLUDES(mu_);
  int gauge(const std::string& name) EXCLUDES(mu_);
  int histogram(const std::string& name, std::vector<double> bounds)
      EXCLUDES(mu_);

  // --- hot path (per-thread shard; no locks unless the shard must grow
  //     to cover handles registered after its creation) ---
  void add(int counter_handle, double v) EXCLUDES(mu_);
  void set(int gauge_handle, double v) EXCLUDES(mu_);
  void observe(int histogram_handle, double v) EXCLUDES(mu_);

  // --- scrape-time (quiescent points only; see header note) ---
  MetricsSnapshot scrape() EXCLUDES(mu_);
  void reset() EXCLUDES(mu_);

  struct Shard;  // per-thread storage; defined in metrics.cpp

 private:
  friend struct ThreadShards;
  Shard& local_shard() EXCLUDES(mu_);
  void register_shard(Shard* s) EXCLUDES(mu_);
  void retire_shard(Shard* s) EXCLUDES(mu_);
  // Locks; aligns shard vectors with the defs.
  void grow_shard(Shard& s) EXCLUDES(mu_);

  struct HistogramDef {
    std::string name;
    std::vector<double> bounds;
  };

  mutable util::Mutex mu_;
  std::vector<std::string> counter_names_ GUARDED_BY(mu_);
  std::vector<std::string> gauge_names_ GUARDED_BY(mu_);
  std::vector<HistogramDef> histogram_defs_ GUARDED_BY(mu_);
  /// Live per-thread shards. The POINTER VECTOR is guarded by mu_; the
  /// pointed-to shard contents are owned by their writer thread and are
  /// only read cross-thread at documented quiescent points (scrape/reset
  /// — see the header note), which no lock can express.
  std::vector<Shard*> shards_ GUARDED_BY(mu_);
  /// Merged shards of exited threads.
  std::unique_ptr<Shard> retired_ GUARDED_BY(mu_);
  /// name -> (kind, handle); kind: 0 counter, 1 gauge, 2 histogram.
  std::vector<std::pair<std::string, std::pair<int, int>>> index_
      GUARDED_BY(mu_);
};

}  // namespace gsgcn::obs

#if GSGCN_OBS_COMPILED

#define GSGCN_COUNTER_ADD(name, v)                                        \
  do {                                                                    \
    static const int gsgcn_obs_handle =                                   \
        ::gsgcn::obs::Registry::instance().counter(name);                 \
    ::gsgcn::obs::Registry::instance().add(gsgcn_obs_handle,              \
                                           static_cast<double>(v));       \
  } while (false)

#define GSGCN_COUNTER_INC(name) GSGCN_COUNTER_ADD(name, 1.0)

#define GSGCN_GAUGE_SET(name, v)                                          \
  do {                                                                    \
    static const int gsgcn_obs_handle =                                   \
        ::gsgcn::obs::Registry::instance().gauge(name);                   \
    ::gsgcn::obs::Registry::instance().set(gsgcn_obs_handle,              \
                                           static_cast<double>(v));       \
  } while (false)

/// Trailing arguments are the ascending bucket upper bounds, fixed at the
/// first execution of the site.
#define GSGCN_HISTOGRAM_OBSERVE(name, v, ...)                             \
  do {                                                                    \
    static const int gsgcn_obs_handle =                                   \
        ::gsgcn::obs::Registry::instance().histogram(                     \
            name, std::vector<double>{__VA_ARGS__});                      \
    ::gsgcn::obs::Registry::instance().observe(gsgcn_obs_handle,          \
                                               static_cast<double>(v));   \
  } while (false)

#else

// Compiled out: operands are NOT evaluated (check.hpp contract).
#define GSGCN_COUNTER_ADD(name, v) static_cast<void>(0)
#define GSGCN_COUNTER_INC(name) static_cast<void>(0)
#define GSGCN_GAUGE_SET(name, v) static_cast<void>(0)
#define GSGCN_HISTOGRAM_OBSERVE(name, v, ...) static_cast<void>(0)

#endif  // GSGCN_OBS_COMPILED

#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>

#include "util/json_writer.hpp"

namespace gsgcn::obs {

namespace {

/// Global monotone stamp for gauge writes: the scrape merges per-thread
/// gauge cells by "highest stamp wins". One relaxed fetch_add per gauge
/// set — gauges are low-rate (pool refills, not inner loops), so this is
/// the only shared write on any obs hot path.
std::atomic<std::uint64_t> g_gauge_clock{0};

}  // namespace

struct Registry::Shard {
  struct Hist {
    // Private copy of the def's bounds, taken under the registry lock at
    // shard-growth time: observe() must never touch the registry's def
    // vector, whose reallocation under new registrations would race.
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;  // bounds.size() + 1
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };
  struct GaugeCell {
    std::uint64_t stamp = 0;  // 0 = never set
    double value = 0.0;
  };
  std::vector<double> counters;
  std::vector<GaugeCell> gauges;
  std::vector<Hist> hists;
  // Set by ~Registry() under its lock: the owning registry is gone, so
  // the thread-exit retire below must not touch it. Atomic because a
  // (test-local) registry may be destroyed on one thread while another
  // thread that once wrote to it exits later.
  std::atomic<bool> orphaned{false};
};

namespace {

void merge_shard_into(const Registry::Shard& from, Registry::Shard& into) {
  if (into.counters.size() < from.counters.size()) {
    into.counters.resize(from.counters.size(), 0.0);
  }
  for (std::size_t i = 0; i < from.counters.size(); ++i) {
    into.counters[i] += from.counters[i];
  }
  if (into.gauges.size() < from.gauges.size()) {
    into.gauges.resize(from.gauges.size());
  }
  for (std::size_t i = 0; i < from.gauges.size(); ++i) {
    if (from.gauges[i].stamp > into.gauges[i].stamp) {
      into.gauges[i] = from.gauges[i];
    }
  }
  if (into.hists.size() < from.hists.size()) {
    into.hists.resize(from.hists.size());
  }
  for (std::size_t i = 0; i < from.hists.size(); ++i) {
    const auto& fh = from.hists[i];
    auto& ih = into.hists[i];
    if (ih.buckets.size() < fh.buckets.size()) {
      ih.buckets.resize(fh.buckets.size(), 0);
    }
    for (std::size_t b = 0; b < fh.buckets.size(); ++b) {
      ih.buckets[b] += fh.buckets[b];
    }
    ih.count += fh.count;
    ih.sum += fh.sum;
    ih.min = std::min(ih.min, fh.min);
    ih.max = std::max(ih.max, fh.max);
  }
}

}  // namespace

/// Per-thread shard set, one shard per Registry this thread has written
/// to (in practice one: the process singleton — the vector exists so
/// test-local registries behave correctly too). Each shard registers
/// with its registry on first use and retires (merges + unlinks) on
/// thread exit, unless the registry died first and orphaned it.
struct ThreadShards {
  struct Entry {
    Registry* owner;
    std::unique_ptr<Registry::Shard> shard;
  };
  std::vector<Entry> entries;
  ~ThreadShards() {
    for (Entry& e : entries) {
      if (!e.shard->orphaned.load(std::memory_order_acquire)) {
        e.owner->retire_shard(e.shard.get());
      }
    }
  }
};

Registry& Registry::instance() {
  static Registry reg;
  return reg;
}

Registry::Registry() = default;

Registry::~Registry() {
  util::MutexLock lock(mu_);
  for (Shard* s : shards_) s->orphaned.store(true, std::memory_order_release);
}

Registry::Shard& Registry::local_shard() {
  static thread_local ThreadShards ts;
  // Drop shards whose registry died first: a new registry may reuse the
  // freed address, so an orphaned entry must never match by pointer.
  ts.entries.erase(
      std::remove_if(ts.entries.begin(), ts.entries.end(),
                     [](const ThreadShards::Entry& e) {
                       return e.shard->orphaned.load(
                           std::memory_order_acquire);
                     }),
      ts.entries.end());
  for (ThreadShards::Entry& e : ts.entries) {
    if (e.owner == this) return *e.shard;
  }
  auto shard = std::make_unique<Shard>();
  Shard* p = shard.get();
  ts.entries.push_back({this, std::move(shard)});
  register_shard(p);
  return *p;
}

void Registry::register_shard(Shard* s) {
  util::MutexLock lock(mu_);
  shards_.push_back(s);
}

void Registry::retire_shard(Shard* s) {
  util::MutexLock lock(mu_);
  shards_.erase(std::remove(shards_.begin(), shards_.end(), s), shards_.end());
  if (retired_ == nullptr) retired_ = std::make_unique<Shard>();
  merge_shard_into(*s, *retired_);
}

void Registry::grow_shard(Shard& s) {
  util::MutexLock lock(mu_);
  if (s.counters.size() < counter_names_.size()) {
    s.counters.resize(counter_names_.size(), 0.0);
  }
  if (s.gauges.size() < gauge_names_.size()) {
    s.gauges.resize(gauge_names_.size());
  }
  if (s.hists.size() < histogram_defs_.size()) {
    const std::size_t old = s.hists.size();
    s.hists.resize(histogram_defs_.size());
    for (std::size_t i = old; i < s.hists.size(); ++i) {
      s.hists[i].bounds = histogram_defs_[i].bounds;
      s.hists[i].buckets.assign(histogram_defs_[i].bounds.size() + 1, 0);
    }
  }
}

namespace {
int find_registered(
    const std::vector<std::pair<std::string, std::pair<int, int>>>& index,
    const std::string& name, int kind, const char* kind_word) {
  for (const auto& [n, kh] : index) {
    if (n != name) continue;
    if (kh.first != kind) {
      throw std::logic_error("obs::Registry: metric '" + name +
                             "' already registered as a different kind (" +
                             kind_word + " requested)");
    }
    return kh.second;
  }
  return -1;
}
}  // namespace

int Registry::counter(const std::string& name) {
  util::MutexLock lock(mu_);
  const int existing = find_registered(index_, name, 0, "counter");
  if (existing >= 0) return existing;
  const int h = static_cast<int>(counter_names_.size());
  counter_names_.push_back(name);
  index_.emplace_back(name, std::make_pair(0, h));
  return h;
}

int Registry::gauge(const std::string& name) {
  util::MutexLock lock(mu_);
  const int existing = find_registered(index_, name, 1, "gauge");
  if (existing >= 0) return existing;
  const int h = static_cast<int>(gauge_names_.size());
  gauge_names_.push_back(name);
  index_.emplace_back(name, std::make_pair(1, h));
  return h;
}

int Registry::histogram(const std::string& name, std::vector<double> bounds) {
  if (bounds.empty()) {
    throw std::invalid_argument("obs histogram '" + name + "': no buckets");
  }
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    if (!(bounds[i - 1] < bounds[i])) {
      throw std::invalid_argument("obs histogram '" + name +
                                  "': bounds must ascend strictly");
    }
  }
  util::MutexLock lock(mu_);
  const int existing = find_registered(index_, name, 2, "histogram");
  if (existing >= 0) {
    if (histogram_defs_[static_cast<std::size_t>(existing)].bounds != bounds) {
      throw std::logic_error("obs histogram '" + name +
                             "' re-registered with different bounds");
    }
    return existing;
  }
  const int h = static_cast<int>(histogram_defs_.size());
  histogram_defs_.push_back({name, std::move(bounds)});
  index_.emplace_back(name, std::make_pair(2, h));
  return h;
}

void Registry::add(int counter_handle, double v) {
  Shard& s = local_shard();
  const auto h = static_cast<std::size_t>(counter_handle);
  if (h >= s.counters.size()) grow_shard(s);
  s.counters[h] += v;
}

void Registry::set(int gauge_handle, double v) {
  Shard& s = local_shard();
  const auto h = static_cast<std::size_t>(gauge_handle);
  if (h >= s.gauges.size()) grow_shard(s);
  s.gauges[h].stamp = 1 + g_gauge_clock.fetch_add(1, std::memory_order_relaxed);
  s.gauges[h].value = v;
}

void Registry::observe(int histogram_handle, double v) {
  Shard& s = local_shard();
  const auto h = static_cast<std::size_t>(histogram_handle);
  if (h >= s.hists.size()) grow_shard(s);
  auto& hist = s.hists[h];
  // Bucket index: first bound >= v, overflow bucket otherwise.
  const std::vector<double>& bounds = hist.bounds;
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
  const auto b = static_cast<std::size_t>(it - bounds.begin());
  hist.buckets[b] += 1;
  hist.count += 1;
  hist.sum += v;
  hist.min = std::min(hist.min, v);
  hist.max = std::max(hist.max, v);
}

MetricsSnapshot Registry::scrape() {
  util::MutexLock lock(mu_);
  Shard merged;
  if (retired_ != nullptr) merge_shard_into(*retired_, merged);
  for (const Shard* s : shards_) merge_shard_into(*s, merged);

  MetricsSnapshot snap;
  snap.counters.reserve(counter_names_.size());
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    snap.counters.emplace_back(counter_names_[i],
                               i < merged.counters.size() ? merged.counters[i]
                                                          : 0.0);
  }
  snap.gauges.reserve(gauge_names_.size());
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    GaugeSnapshot g;
    g.name = gauge_names_[i];
    if (i < merged.gauges.size() && merged.gauges[i].stamp != 0) {
      g.value = merged.gauges[i].value;
      g.ever_set = true;
    }
    snap.gauges.push_back(std::move(g));
  }
  snap.histograms.reserve(histogram_defs_.size());
  for (std::size_t i = 0; i < histogram_defs_.size(); ++i) {
    HistogramSnapshot h;
    h.name = histogram_defs_[i].name;
    h.bounds = histogram_defs_[i].bounds;
    h.buckets.assign(h.bounds.size() + 1, 0);
    if (i < merged.hists.size()) {
      const auto& m = merged.hists[i];
      for (std::size_t b = 0; b < m.buckets.size() && b < h.buckets.size();
           ++b) {
        h.buckets[b] = m.buckets[b];
      }
      h.count = m.count;
      h.sum = m.sum;
      h.min = m.min;
      h.max = m.max;
    }
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

void Registry::reset() {
  util::MutexLock lock(mu_);
  retired_.reset();
  for (Shard* s : shards_) {
    std::fill(s->counters.begin(), s->counters.end(), 0.0);
    std::fill(s->gauges.begin(), s->gauges.end(), Shard::GaugeCell{});
    for (auto& h : s->hists) {
      std::fill(h.buckets.begin(), h.buckets.end(), 0);
      h.count = 0;
      h.sum = 0.0;
      h.min = std::numeric_limits<double>::infinity();
      h.max = -std::numeric_limits<double>::infinity();
    }
  }
}

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t c = buckets[i];
    if (c == 0) continue;
    if (static_cast<double>(cum + c) >= target) {
      double lo = i == 0 ? min : bounds[i - 1];
      double hi = i < bounds.size() ? bounds[i] : max;
      lo = std::max(lo, min);
      hi = std::min(hi, max);
      if (hi < lo) hi = lo;
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(c);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    cum += c;
  }
  return max;
}

std::string MetricsSnapshot::to_json() const {
  std::string out;
  util::JsonWriter w(&out);
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, v] : counters) w.key(name).value(v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& g : gauges) {
    if (g.ever_set) {
      w.key(g.name).value(g.value);
    } else {
      w.key(g.name).value_null();
    }
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& h : histograms) {
    w.key(h.name).begin_object();
    w.key("count").value(static_cast<std::int64_t>(h.count));
    w.key("sum").value(h.sum);
    w.key("min").value(h.count == 0 ? 0.0 : h.min);
    w.key("max").value(h.count == 0 ? 0.0 : h.max);
    w.key("p50").value(h.percentile(50.0));
    w.key("p90").value(h.percentile(90.0));
    w.key("bounds").begin_array();
    for (const double b : h.bounds) w.value(b);
    w.end_array();
    w.key("buckets").begin_array();
    for (const std::uint64_t c : h.buckets) {
      w.value(static_cast<std::int64_t>(c));
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return out;
}

double MetricsSnapshot::counter(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  throw std::out_of_range("MetricsSnapshot: no counter '" + name + "'");
}

const GaugeSnapshot& MetricsSnapshot::gauge(const std::string& name) const {
  for (const auto& g : gauges) {
    if (g.name == name) return g;
  }
  throw std::out_of_range("MetricsSnapshot: no gauge '" + name + "'");
}

const HistogramSnapshot& MetricsSnapshot::histogram(
    const std::string& name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return h;
  }
  throw std::out_of_range("MetricsSnapshot: no histogram '" + name + "'");
}

}  // namespace gsgcn::obs

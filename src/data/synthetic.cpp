#include "data/synthetic.hpp"

#include <cmath>
#include <stdexcept>

#include "graph/generators.hpp"
#include "tensor/ops.hpp"
#include "util/env.hpp"

namespace gsgcn::data {

namespace {

using graph::CsrGraph;
using graph::Edge;
using graph::Vid;

/// Union of two graphs on the same vertex set (SBM + hub overlay).
CsrGraph merge_graphs(const CsrGraph& a, const CsrGraph& b) {
  if (a.num_vertices() != b.num_vertices()) {
    throw std::invalid_argument("merge_graphs: vertex count mismatch");
  }
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>((a.num_edges() + b.num_edges()) / 2));
  for (const CsrGraph* g : {&a, &b}) {
    for (Vid u = 0; u < g->num_vertices(); ++u) {
      for (const Vid v : g->neighbors(u)) {
        if (u < v) edges.push_back({u, v});
      }
    }
  }
  return CsrGraph::from_edges(a.num_vertices(), edges);
}

}  // namespace

Dataset make_synthetic(const SyntheticParams& p) {
  if (p.num_classes == 0) throw std::invalid_argument("synthetic: 0 classes");
  if (p.num_vertices < p.num_classes * 4) {
    throw std::invalid_argument("synthetic: too few vertices per class");
  }
  if (p.feature_dim == 0) throw std::invalid_argument("synthetic: 0 features");

  util::Xoshiro256 rng(p.seed);

  // Equal-sized blocks (remainder spread over the first blocks).
  std::vector<Vid> blocks(p.num_classes, p.num_vertices / p.num_classes);
  for (Vid i = 0; i < p.num_vertices % p.num_classes; ++i) ++blocks[i];

  // Solve p_out so that the expected mean degree hits the target given the
  // homophily ratio r = p_in / p_out.
  const double n = p.num_vertices;
  const double nb = n / p.num_classes;
  const double p_out =
      p.avg_degree / (p.homophily * (nb - 1.0) + (n - nb));
  const double p_in = p.homophily * p_out;
  if (p_in > 1.0) {
    throw std::invalid_argument(
        "synthetic: degree/homophily target infeasible (p_in > 1)");
  }

  auto sbm = graph::stochastic_block_model(blocks, p_in, p_out, rng);

  Dataset ds;
  ds.name = p.name;
  if (p.hub_overlay) {
    auto hubs = graph::barabasi_albert(p.num_vertices,
                                       p.hub_edges_per_vertex, rng);
    ds.graph = merge_graphs(sbm.graph, hubs);
  } else {
    ds.graph = std::move(sbm.graph);
  }
  ds.mode = p.mode;

  // Labels: primary class = SBM block; multi mode adds extra labels that
  // also feed the feature mixture, keeping them learnable.
  ds.labels = tensor::Matrix(p.num_vertices, p.num_classes);
  for (Vid v = 0; v < p.num_vertices; ++v) {
    ds.labels(v, sbm.block_of[v]) = 1.0f;
    if (p.mode == LabelMode::kMulti) {
      for (std::uint32_t c = 0; c < p.num_classes; ++c) {
        if (c != sbm.block_of[v] && rng.uniform() < p.multi_extra_prob) {
          ds.labels(v, c) = 1.0f;
        }
      }
    }
  }

  // Features: sum of class means (one per held label) plus unit noise.
  tensor::Matrix class_means = tensor::Matrix::gaussian(
      p.num_classes, p.feature_dim, static_cast<float>(p.feature_signal), rng);
  ds.features = tensor::Matrix::gaussian(p.num_vertices, p.feature_dim, 1.0f, rng);
  for (Vid v = 0; v < p.num_vertices; ++v) {
    float* x = ds.features.row(v);
    for (std::uint32_t c = 0; c < p.num_classes; ++c) {
      if (ds.labels(v, c) != 0.0f) {
        const float* mu = class_means.row(c);
        for (std::size_t j = 0; j < p.feature_dim; ++j) x[j] += mu[j];
      }
    }
  }
  tensor::l2_normalize_rows(ds.features);

  make_split(p.num_vertices, p.train_frac, p.val_frac, rng, ds.train_vertices,
             ds.val_vertices, ds.test_vertices);
  return ds;
}

Dataset make_preset(const std::string& name, double scale) {
  if (scale <= 0.0) scale = util::dataset_scale();
  auto scaled = [&](double base) {
    return static_cast<Vid>(std::max(256.0, base * scale));
  };

  SyntheticParams p;
  p.name = name;
  p.seed = util::global_seed();
  if (name == "ppi-s") {
    p.num_vertices = scaled(3000);
    p.feature_dim = 50;
    p.num_classes = 12;
    p.mode = LabelMode::kMulti;
    p.avg_degree = 15.0;
    p.homophily = 10.0;
  } else if (name == "reddit-s") {
    p.num_vertices = scaled(9000);
    p.feature_dim = 96;
    p.num_classes = 16;
    p.mode = LabelMode::kSingle;
    p.avg_degree = 25.0;
    // Moderate homophily + weak features: Reddit is the hardest of the
    // paper's single-label tasks; keep the analogue from saturating at
    // F1 = 1 within an epoch, so time-to-accuracy comparisons have slope.
    p.homophily = 9.0;
    p.feature_signal = 0.55;
  } else if (name == "yelp-s") {
    p.num_vertices = scaled(14000);
    p.feature_dim = 64;
    p.num_classes = 20;
    p.mode = LabelMode::kMulti;
    p.avg_degree = 10.0;
    p.homophily = 12.0;
  } else if (name == "amazon-s") {
    p.num_vertices = scaled(20000);
    p.feature_dim = 64;
    p.num_classes = 24;
    p.mode = LabelMode::kMulti;
    p.avg_degree = 12.0;
    p.homophily = 12.0;
    p.hub_overlay = true;  // Amazon's skewed degree distribution
    p.hub_edges_per_vertex = 2;
  } else {
    throw std::invalid_argument("unknown preset: " + name);
  }
  return make_synthetic(p);
}

std::vector<std::string> preset_names() {
  return {"ppi-s", "reddit-s", "yelp-s", "amazon-s"};
}

PaperDatasetInfo paper_info(const std::string& preset_name) {
  if (preset_name == "ppi-s") {
    return {"PPI", 14755, 225270, 50, 121, LabelMode::kMulti};
  }
  if (preset_name == "reddit-s") {
    return {"Reddit", 232965, 11606919, 602, 41, LabelMode::kSingle};
  }
  if (preset_name == "yelp-s") {
    return {"Yelp", 716847, 6977410, 300, 100, LabelMode::kMulti};
  }
  if (preset_name == "amazon-s") {
    return {"Amazon", 1598960, 132169734, 200, 107, LabelMode::kMulti};
  }
  throw std::invalid_argument("unknown preset: " + preset_name);
}

}  // namespace gsgcn::data

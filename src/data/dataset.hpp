#pragma once
// Attributed, labeled graph dataset with train/val/test split — the unit
// every trainer (ours and the baselines) consumes.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "tensor/matrix.hpp"

namespace gsgcn::data {

/// Single-label (softmax/CE, like Reddit) vs multi-label (sigmoid/BCE,
/// like PPI/Yelp/Amazon) — Table I's (S)/(M) column.
enum class LabelMode { kSingle, kMulti };

struct Dataset {
  std::string name;
  graph::CsrGraph graph;
  /// |V| x f, row-normalized. May be empty (0 x 0) for out-of-core
  /// datasets whose features live in a FeatureStore file; anything that
  /// needs dense features must check before touching it.
  tensor::Matrix features;
  tensor::Matrix labels;    // |V| x C, entries in {0, 1}
  LabelMode mode = LabelMode::kSingle;

  std::vector<graph::Vid> train_vertices;
  std::vector<graph::Vid> val_vertices;
  std::vector<graph::Vid> test_vertices;

  graph::Vid num_vertices() const { return graph.num_vertices(); }
  std::size_t feature_dim() const { return features.cols(); }
  std::size_t num_classes() const { return labels.cols(); }

  /// Structural consistency (sizes line up, splits disjoint and in range,
  /// single-label rows one-hot). Empty string when valid.
  std::string validate() const;
};

/// Random disjoint split of {0..n-1} into train/val/test by the given
/// fractions (must sum to ≤ 1; remainder goes to test).
void make_split(graph::Vid n, double train_frac, double val_frac,
                util::Xoshiro256& rng, std::vector<graph::Vid>& train,
                std::vector<graph::Vid>& val, std::vector<graph::Vid>& test);

/// Binary persistence of a full dataset (graph + features + labels +
/// splits + mode). The bench harness caches generated datasets with this;
/// a downstream user ships preprocessed data in the same format.
void save_dataset(const Dataset& ds, const std::string& path);
Dataset load_dataset(const std::string& path);

}  // namespace gsgcn::data

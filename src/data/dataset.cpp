#include "data/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

#include "util/fault.hpp"
#include "util/rng.hpp"

namespace gsgcn::data {

std::string Dataset::validate() const {
  const graph::Vid n = graph.num_vertices();
  // An empty feature matrix is legal: out-of-core datasets strip the
  // dense features and carry them in a FeatureStore file instead (the
  // trainer validates the store's row count against |V| itself).
  if (!features.empty() && features.rows() != n) {
    return "features rows != |V|";
  }
  if (labels.rows() != n) return "labels rows != |V|";
  const std::string g = graph.validate();
  if (!g.empty()) return "graph: " + g;

  std::vector<std::uint8_t> seen(n, 0);
  auto check_split = [&](const std::vector<graph::Vid>& s,
                         const char* what) -> std::string {
    for (const graph::Vid v : s) {
      if (v >= n) return std::string(what) + ": vertex out of range";
      if (seen[v]) return std::string(what) + ": split overlap at vertex " +
                          std::to_string(v);
      seen[v] = 1;
    }
    return "";
  };
  for (const auto* r : {&train_vertices, &val_vertices, &test_vertices}) {
    const char* what = r == &train_vertices ? "train"
                       : r == &val_vertices ? "val"
                                            : "test";
    const std::string e = check_split(*r, what);
    if (!e.empty()) return e;
  }
  if (train_vertices.empty()) return "empty training split";

  for (graph::Vid v = 0; v < n; ++v) {
    double row_sum = 0.0;
    for (std::size_t c = 0; c < labels.cols(); ++c) {
      const float y = labels(v, c);
      if (y != 0.0f && y != 1.0f) return "labels must be 0/1";
      row_sum += y;
    }
    if (mode == LabelMode::kSingle && row_sum != 1.0) {
      return "single-label row not one-hot at vertex " + std::to_string(v);
    }
  }
  return "";
}

void make_split(graph::Vid n, double train_frac, double val_frac,
                util::Xoshiro256& rng, std::vector<graph::Vid>& train,
                std::vector<graph::Vid>& val, std::vector<graph::Vid>& test) {
  const auto perm = util::random_permutation(n, rng);
  const auto n_train = static_cast<std::size_t>(std::floor(n * train_frac));
  const auto n_val = static_cast<std::size_t>(std::floor(n * val_frac));
  train.assign(perm.begin(), perm.begin() + n_train);
  val.assign(perm.begin() + n_train, perm.begin() + n_train + n_val);
  test.assign(perm.begin() + n_train + n_val, perm.end());
}

namespace {

constexpr std::uint64_t kDatasetMagic = 0x6773676e64617431ULL;  // gsgndat1

void write_ids(std::ostream& out, const std::vector<graph::Vid>& ids) {
  const std::uint64_t n = ids.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(ids.data()),
            static_cast<std::streamsize>(n * sizeof(graph::Vid)));
}

std::vector<graph::Vid> read_ids(std::istream& in) {
  std::uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!in) throw std::runtime_error("load_dataset: truncated split header");
  if (n > 0xFFFFFFFFULL) {
    // Vertex ids are uint32, so no split can exceed this — a larger count
    // is a corrupt size field and must not drive the allocation below.
    throw std::runtime_error("load_dataset: implausible split size " +
                             std::to_string(n));
  }
  std::vector<graph::Vid> ids(n);
  in.read(reinterpret_cast<char*>(ids.data()),
          static_cast<std::streamsize>(n * sizeof(graph::Vid)));
  if (!in) throw std::runtime_error("load_dataset: truncated split");
  return ids;
}

void write_string(std::ostream& out, const std::string& s) {
  const std::uint64_t n = s.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(s.data(), static_cast<std::streamsize>(n));
}

std::string read_string(std::istream& in) {
  std::uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!in || n > (1u << 20)) throw std::runtime_error("load_dataset: bad string");
  std::string s(n, '\0');
  in.read(s.data(), static_cast<std::streamsize>(n));
  if (!in) throw std::runtime_error("load_dataset: truncated string");
  return s;
}

}  // namespace

void save_dataset(const Dataset& ds, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_dataset: cannot open " + path);
  out.write(reinterpret_cast<const char*>(&kDatasetMagic), sizeof(kDatasetMagic));
  write_string(out, ds.name);
  const std::uint8_t mode = ds.mode == LabelMode::kMulti ? 1 : 0;
  out.write(reinterpret_cast<const char*>(&mode), sizeof(mode));

  // Graph (inline CSR, same layout as graph::save_csr_binary's payload).
  const std::uint64_t n = ds.graph.num_vertices();
  const auto m = static_cast<std::uint64_t>(ds.graph.num_edges());
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));
  out.write(reinterpret_cast<const char*>(ds.graph.offsets().data()),
            static_cast<std::streamsize>(ds.graph.offsets().size() *
                                         sizeof(graph::Eid)));
  out.write(reinterpret_cast<const char*>(ds.graph.adjacency().data()),
            static_cast<std::streamsize>(ds.graph.adjacency().size() *
                                         sizeof(graph::Vid)));

  tensor::write_matrix(out, ds.features);
  tensor::write_matrix(out, ds.labels);
  write_ids(out, ds.train_vertices);
  write_ids(out, ds.val_vertices);
  write_ids(out, ds.test_vertices);
  if (!out) throw std::runtime_error("save_dataset: write failed: " + path);
}

Dataset load_dataset(const std::string& path) {
  util::fault_point("io.load_dataset");
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_dataset: cannot open " + path);
  in.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  std::uint64_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in || magic != kDatasetMagic) {
    throw std::runtime_error("load_dataset: bad file: " + path);
  }
  Dataset ds;
  ds.name = read_string(in);
  std::uint8_t mode = 0;
  in.read(reinterpret_cast<char*>(&mode), sizeof(mode));
  ds.mode = mode == 1 ? LabelMode::kMulti : LabelMode::kSingle;

  std::uint64_t n = 0, m = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&m), sizeof(m));
  if (!in) throw std::runtime_error("load_dataset: truncated graph header");
  // The graph section alone must fit in what remains of the file; a
  // corrupt (n, m) otherwise turns into a multi-gigabyte allocation
  // followed by a short read. (Full structural validation — monotonic
  // offsets, in-range adjacency — happens in ds.validate() below.)
  if (n > 0xFFFFFFFEULL) {
    throw std::runtime_error("load_dataset: vertex count " +
                             std::to_string(n) + " exceeds uint32 range");
  }
  const std::uint64_t graph_bytes =
      (n + 1) * sizeof(graph::Eid) + m * sizeof(graph::Vid);
  const auto pos = static_cast<std::uint64_t>(in.tellg());
  if (graph_bytes > file_size - pos) {
    throw std::runtime_error(
        "load_dataset: graph header (n=" + std::to_string(n) +
        ", m=" + std::to_string(m) + ") requires " +
        std::to_string(graph_bytes) + " bytes but only " +
        std::to_string(file_size - pos) + " remain in " + path);
  }
  std::vector<graph::Eid> offsets(n + 1);
  std::vector<graph::Vid> adj(m);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets.size() * sizeof(graph::Eid)));
  in.read(reinterpret_cast<char*>(adj.data()),
          static_cast<std::streamsize>(adj.size() * sizeof(graph::Vid)));
  if (!in) throw std::runtime_error("load_dataset: truncated graph");
  ds.graph = graph::CsrGraph::from_csr(std::move(offsets), std::move(adj));

  ds.features = tensor::read_matrix(in);
  ds.labels = tensor::read_matrix(in);
  ds.train_vertices = read_ids(in);
  ds.val_vertices = read_ids(in);
  ds.test_vertices = read_ids(in);

  const std::string err = ds.validate();
  if (!err.empty()) throw std::runtime_error("load_dataset: invalid: " + err);
  return ds;
}

}  // namespace gsgcn::data

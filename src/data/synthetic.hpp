#pragma once
// Synthetic dataset family standing in for PPI / Reddit / Yelp / Amazon.
//
// The accuracy experiments need *learnable* structure: labels must
// correlate with both graph topology and vertex features, because the GCN
// embeds exactly those two signals. A stochastic block model supplies the
// topology↔label link (homophily); class-mean Gaussian mixtures supply
// the feature↔label link; an optional Barabási–Albert hub overlay supplies
// the degree skew that exercises the paper's degree-cap mitigation for
// Amazon-like graphs.

#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace gsgcn::data {

struct SyntheticParams {
  std::string name = "synthetic";
  graph::Vid num_vertices = 4000;
  std::uint32_t num_classes = 8;
  std::size_t feature_dim = 64;
  double avg_degree = 15.0;    // target mean degree of the SBM part
  double homophily = 16.0;     // p_in / p_out ratio
  LabelMode mode = LabelMode::kSingle;
  double multi_extra_prob = 0.15;  // P(each extra label) in multi mode
  double feature_signal = 1.0;     // class-mean magnitude vs unit noise
  bool hub_overlay = false;        // add BA edges for degree skew
  graph::Vid hub_edges_per_vertex = 2;
  double train_frac = 0.60;
  double val_frac = 0.20;
  std::uint64_t seed = 42;
};

/// Build a dataset from the params. Throws std::invalid_argument on
/// inconsistent params (0 classes, degree target infeasible, …).
Dataset make_synthetic(const SyntheticParams& params);

/// Scaled-down analogues of the paper's four datasets (Table I). `scale`
/// multiplies vertex counts (features/classes stay fixed); the default
/// comes from GSGCN_SCALE.
/// Names: "ppi-s", "reddit-s", "yelp-s", "amazon-s".
Dataset make_preset(const std::string& name, double scale = -1.0);

/// The four preset names in Table-I order.
std::vector<std::string> preset_names();

/// The paper's reported statistics for the original dataset each preset
/// models (for the Table-I bench to print side by side).
struct PaperDatasetInfo {
  std::string name;
  std::int64_t vertices;
  std::int64_t edges;
  int attribute_dim;
  int classes;
  LabelMode mode;
};
PaperDatasetInfo paper_info(const std::string& preset_name);

}  // namespace gsgcn::data

#pragma once
// Feature preprocessing: standardization and PCA compression.
//
// Mirrors the paper's dataset pipelines — Amazon's vertex attributes are
// an SVD compression of bag-of-words text, Yelp's are Word2Vec vectors
// (Table I). A downstream user bringing raw high-dimensional attributes
// runs them through these transforms before training.

#include "data/dataset.hpp"

namespace gsgcn::data {

/// Center each column to mean 0 and scale to unit variance (columns with
/// ~zero variance are centered only). In-place.
void standardize_columns(tensor::Matrix& features);

/// PCA-compress features to `k` dimensions via the covariance
/// eigendecomposition (equivalent to truncated SVD on centered data).
/// Returns the n×k projected features; `explained` (optional out) gets
/// the fraction of variance captured. k must be ≤ current width.
tensor::Matrix pca_compress(const tensor::Matrix& features, std::size_t k,
                            double* explained = nullptr);

/// Convenience: standardize, compress to k, then L2-normalize rows —
/// the full Amazon-style attribute pipeline. Replaces ds.features.
void compress_dataset_features(Dataset& ds, std::size_t k);

}  // namespace gsgcn::data

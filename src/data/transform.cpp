#include "data/transform.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/eigen.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"

namespace gsgcn::data {

void standardize_columns(tensor::Matrix& features) {
  const std::size_t n = features.rows(), f = features.cols();
  if (n == 0 || f == 0) return;
  std::vector<double> mean(f, 0.0), var(f, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = features.row(i);
    for (std::size_t j = 0; j < f; ++j) mean[j] += row[j];
  }
  for (std::size_t j = 0; j < f; ++j) mean[j] /= static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = features.row(i);
    for (std::size_t j = 0; j < f; ++j) {
      const double d = row[j] - mean[j];
      var[j] += d * d;
    }
  }
  for (std::size_t j = 0; j < f; ++j) var[j] /= static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    float* row = features.row(i);
    for (std::size_t j = 0; j < f; ++j) {
      const double scale = var[j] > 1e-12 ? 1.0 / std::sqrt(var[j]) : 1.0;
      row[j] = static_cast<float>((row[j] - mean[j]) * scale);
    }
  }
}

tensor::Matrix pca_compress(const tensor::Matrix& features, std::size_t k,
                            double* explained) {
  const std::size_t f = features.cols();
  if (k == 0 || k > f) {
    throw std::invalid_argument("pca_compress: k must be in [1, width]");
  }
  const tensor::Matrix cov = tensor::covariance(features);
  const tensor::EigenResult eig = tensor::jacobi_eigen_symmetric(cov);

  if (explained != nullptr) {
    double total = 0.0, kept = 0.0;
    for (std::size_t j = 0; j < f; ++j) {
      const double v = std::max(0.0f, eig.values[j]);
      total += v;
      if (j < k) kept += v;
    }
    *explained = total > 0.0 ? kept / total : 0.0;
  }

  // Projection matrix: top-k eigenvector columns.
  tensor::Matrix proj(f, k);
  for (std::size_t i = 0; i < f; ++i) {
    for (std::size_t j = 0; j < k; ++j) proj(i, j) = eig.vectors(i, j);
  }
  tensor::Matrix out(features.rows(), k);
  tensor::gemm_nn(features, proj, out);
  return out;
}

void compress_dataset_features(Dataset& ds, std::size_t k) {
  tensor::Matrix features = ds.features;  // work on a copy until success
  standardize_columns(features);
  tensor::Matrix compressed = pca_compress(features, k);
  tensor::l2_normalize_rows(compressed);
  ds.features = std::move(compressed);
}

}  // namespace gsgcn::data

#include "data/feature_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/prctl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "tensor/codec.hpp"
#include "util/crc32.hpp"
#include "util/frame.hpp"
#include "util/parallel.hpp"

namespace gsgcn::data {

namespace {

// On-disk envelope: one CRC-framed metadata frame (util/frame, magic
// "gsgnfts1"), zero padding up to a 64-byte-aligned payload offset, then
// the raw row-major payload whose own CRC lives in the metadata. The
// metadata frame is always verified at open; the (potentially huge)
// payload is verified on demand (opts.verify_payload) so opening a 100 GB
// file stays O(metadata).
constexpr util::FrameSpec kFeatFrame{
    /*magic=*/0x6773676e66747331ULL,  // "gsgnfts1"
    /*version=*/1,
    /*max_payload=*/1ull << 24};  // metadata only: 40 bytes + 8*cols

constexpr std::size_t kPayloadAlign = 64;

void put_u32(std::string& s, std::uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  s.append(b, 4);
}

void put_u64(std::string& s, std::uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  s.append(b, 8);
}

std::uint32_t f32_bits_of(float x) {
  std::uint32_t u;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

class MetaReader {
 public:
  explicit MetaReader(const std::string& buf) : buf_(buf) {}
  std::uint32_t u32() { return take<std::uint32_t>(); }
  std::uint64_t u64() { return take<std::uint64_t>(); }
  float f32() { return take<float>(); }
  bool exhausted() const { return pos_ == buf_.size(); }

 private:
  template <typename T>
  T take() {
    if (pos_ + sizeof(T) > buf_.size()) {
      throw std::runtime_error("feature store: truncated metadata");
    }
    T v;
    std::memcpy(&v, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  const std::string& buf_;
  std::size_t pos_ = 0;
};

}  // namespace

const char* feature_dtype_name(FeatureDtype d) {
  switch (d) {
    case FeatureDtype::kF32:
      return "fp32";
    case FeatureDtype::kF16:
      return "fp16";
    case FeatureDtype::kBf16:
      return "bf16";
    case FeatureDtype::kI8:
      return "int8";
  }
  return "?";
}

FeatureDtype parse_feature_dtype(const std::string& name) {
  if (name == "fp32" || name == "f32") return FeatureDtype::kF32;
  if (name == "fp16" || name == "f16") return FeatureDtype::kF16;
  if (name == "bf16") return FeatureDtype::kBf16;
  if (name == "int8" || name == "i8") return FeatureDtype::kI8;
  throw std::invalid_argument("unknown feature dtype '" + name +
                              "' (expected fp32|fp16|bf16|int8)");
}

std::size_t feature_dtype_bytes(FeatureDtype d) {
  switch (d) {
    case FeatureDtype::kF32:
      return 4;
    case FeatureDtype::kF16:
    case FeatureDtype::kBf16:
      return 2;
    case FeatureDtype::kI8:
      return 1;
  }
  return 4;
}

struct FeatureStore::Mapping {
  void* base = nullptr;
  std::size_t len = 0;
  Mapping() = default;
  Mapping(const Mapping&) = delete;
  Mapping& operator=(const Mapping&) = delete;
  ~Mapping() {
    if (base != nullptr) ::munmap(base, len);
  }
};

FeatureStore::FeatureStore() : stats_(std::make_unique<StatsBlock>()) {}
FeatureStore::~FeatureStore() = default;
FeatureStore::FeatureStore(FeatureStore&&) noexcept = default;
FeatureStore& FeatureStore::operator=(FeatureStore&&) noexcept = default;

// ---------------------------------------------------------------------------
// Encoding.
// ---------------------------------------------------------------------------

FeatureStore FeatureStore::encode(const tensor::Matrix& features,
                                  FeatureDtype dtype) {
  FeatureStore fs;
  fs.dtype_ = dtype;
  fs.rows_ = features.rows();
  fs.cols_ = features.cols();
  fs.row_bytes_ = fs.cols_ * feature_dtype_bytes(dtype);
  fs.owned_.reset(fs.rows_ * fs.row_bytes_);
  fs.payload_ = fs.owned_.data();
  // Ask for transparent huge pages before the first touch: gathers hit
  // the payload at random row addresses, and with 4 KiB pages the TLB
  // walk per row costs more than the row read itself (hardware prefetch
  // hints are dropped on TLB misses, too). A hint only — ignored where
  // unsupported, and never changes results.
  {
    // Container runtimes often launch processes with PR_SET_THP_DISABLE,
    // which turns MADV_HUGEPAGE into a silent no-op. Clearing the flag
    // (once) merely restores the system `madvise` THP policy for regions
    // we explicitly advise; it grants nothing the host forbids — where
    // THP is off system-wide the madvise below stays a no-op.
    static const bool thp_unblocked = [] {
#if defined(__linux__) && defined(PR_SET_THP_DISABLE)
      (void)::prctl(PR_SET_THP_DISABLE, 0, 0, 0, 0);
#endif
      return true;
    }();
    (void)thp_unblocked;
    static const auto kPage =
        static_cast<std::uintptr_t>(::sysconf(_SC_PAGESIZE));
    const auto base = reinterpret_cast<std::uintptr_t>(fs.owned_.data());
    const std::uintptr_t lo = (base + kPage - 1) & ~(kPage - 1);
    const std::uintptr_t hi = (base + fs.rows_ * fs.row_bytes_) & ~(kPage - 1);
    if (hi > lo && hi - lo >= (std::uintptr_t{2} << 20)) {
      ::madvise(reinterpret_cast<void*>(lo), hi - lo, MADV_HUGEPAGE);
    }
  }
  const std::size_t rows = fs.rows_, cols = fs.cols_;
  if (rows * cols == 0) {
    if (dtype == FeatureDtype::kI8) {
      fs.scale_.assign(cols, 1.0f);
      fs.zp_.assign(cols, 0.0f);
      fs.bias_.assign(cols, 0.0f);
    }
    return fs;
  }

  switch (dtype) {
    case FeatureDtype::kF32:
      std::memcpy(fs.owned_.data(), features.data(), rows * cols * 4);
      break;
    case FeatureDtype::kF16: {
      auto* out = reinterpret_cast<std::uint16_t*>(fs.owned_.data());
      util::parallel_for(static_cast<std::int64_t>(rows), 0,
                         [&features, out, cols](std::int64_t i) {
                           tensor::codec::narrow_f16_row(
                               features.row(static_cast<std::size_t>(i)),
                               out + static_cast<std::size_t>(i) * cols,
                               cols);
                         });
      break;
    }
    case FeatureDtype::kBf16: {
      auto* out = reinterpret_cast<std::uint16_t*>(fs.owned_.data());
      util::parallel_for(static_cast<std::int64_t>(rows), 0,
                         [&features, out, cols](std::int64_t i) {
                           tensor::codec::narrow_bf16_row(
                               features.row(static_cast<std::size_t>(i)),
                               out + static_cast<std::size_t>(i) * cols,
                               cols);
                         });
      break;
    }
    case FeatureDtype::kI8: {
      // Column min/max over a fixed block grid so the reduction order —
      // and therefore the scales — never depends on the thread count.
      constexpr std::size_t kBlocks = 64;
      const std::size_t nblk = std::min(kBlocks, rows);
      const std::size_t per = (rows + nblk - 1) / nblk;
      std::vector<float> bmin(nblk * cols,
                              std::numeric_limits<float>::infinity());
      std::vector<float> bmax(nblk * cols,
                              -std::numeric_limits<float>::infinity());
      float* bminp = bmin.data();
      float* bmaxp = bmax.data();
      util::parallel_for(
          static_cast<std::int64_t>(nblk), 0,
          [&features, bminp, bmaxp, per, cols, rows](std::int64_t blk) {
            const std::size_t b = static_cast<std::size_t>(blk) * per;
            const std::size_t e = std::min(rows, b + per);
            float* mn = bminp + static_cast<std::size_t>(blk) * cols;
            float* mx = bmaxp + static_cast<std::size_t>(blk) * cols;
            for (std::size_t i = b; i < e; ++i) {
              const float* r = features.row(i);
              for (std::size_t j = 0; j < cols; ++j) {
                mn[j] = std::min(mn[j], r[j]);
                mx[j] = std::max(mx[j], r[j]);
              }
            }
          });
      fs.scale_.resize(cols);
      fs.zp_.resize(cols);
      fs.bias_.resize(cols);
      for (std::size_t j = 0; j < cols; ++j) {
        float mn = std::numeric_limits<float>::infinity();
        float mx = -std::numeric_limits<float>::infinity();
        for (std::size_t blk = 0; blk < nblk; ++blk) {
          mn = std::min(mn, bmin[blk * cols + j]);
          mx = std::max(mx, bmax[blk * cols + j]);
        }
        float scale, zp;
        if (mx > mn) {
          scale = (mx - mn) / 255.0f;
          zp = static_cast<float>(
              std::lrintf(-128.0f - mn / scale));
        } else if (mn != 0.0f) {
          // Constant nonzero column: q = ±127 reproduces it exactly up
          // to one rounding.
          scale = std::fabs(mn) / 127.0f;
          zp = 0.0f;
        } else {
          scale = 1.0f;
          zp = 0.0f;
        }
        fs.scale_[j] = scale;
        fs.zp_[j] = zp;
        fs.bias_[j] = -zp * scale;
      }
      auto* out = reinterpret_cast<std::int8_t*>(fs.owned_.data());
      const float* scalep = fs.scale_.data();
      const float* zpp = fs.zp_.data();
      util::parallel_for(static_cast<std::int64_t>(rows), 0,
                         [&features, out, scalep, zpp, cols](std::int64_t i) {
                           tensor::codec::quantize_i8_row(
                               features.row(static_cast<std::size_t>(i)),
                               scalep, zpp,
                               out + static_cast<std::size_t>(i) * cols,
                               cols);
                         });
      break;
    }
  }
  return fs;
}

FeatureStore FeatureStore::build(const tensor::Matrix& features,
                                 const FeatureStoreOptions& opts,
                                 std::span<const graph::Vid> hot_order) {
  FeatureStore fs = encode(features, opts.dtype);
  fs.build_cache(opts.cache_mb, hot_order);
  return fs;
}

FeatureStore FeatureStore::view(const tensor::Matrix& features) {
  FeatureStore fs;
  fs.dtype_ = FeatureDtype::kF32;
  fs.rows_ = features.rows();
  fs.cols_ = features.cols();
  fs.row_bytes_ = fs.cols_ * 4;
  fs.payload_ = reinterpret_cast<const std::uint8_t*>(features.data());
  return fs;
}

void FeatureStore::build_cache(std::size_t cache_mb,
                               std::span<const graph::Vid> hot_order) {
  if (cache_mb == 0 || rows_ == 0 || cols_ == 0) return;
  const std::size_t budget_rows = (cache_mb << 20) / (cols_ * 4);
  std::size_t want = std::min(rows_, budget_rows);
  if (want == 0) return;

  // Admission is decided here, once, from the supplied hot order — a pure
  // function of (order, cache size). Nothing about residency can depend
  // on gather timing or thread scheduling.  // det-safe: static admission
  slot_of_.assign(rows_, kNoSlot);
  std::vector<std::uint32_t> admitted;
  admitted.reserve(want);
  if (hot_order.empty()) {
    for (std::uint32_t v = 0; v < want; ++v) admitted.push_back(v);
  } else {
    for (const graph::Vid v : hot_order) {
      if (admitted.size() >= want) break;
      if (v >= rows_) {
        throw std::invalid_argument(
            "FeatureStore: hot_order id " + std::to_string(v) +
            " out of range (store has " + std::to_string(rows_) + " rows)");
      }
      if (slot_of_[v] != kNoSlot) continue;  // duplicate in the order
      slot_of_[v] = static_cast<std::uint32_t>(admitted.size());
      admitted.push_back(v);
    }
  }
  if (hot_order.empty()) {
    for (std::uint32_t v = 0; v < admitted.size(); ++v) slot_of_[v] = v;
  }

  cache_ = tensor::Matrix(admitted.size(), cols_);
  const std::uint32_t* ids = admitted.data();
  util::parallel_for(static_cast<std::int64_t>(admitted.size()), 0,
                     [this, ids](std::int64_t s) {
                       // The cache stores the exact widened row, so a hit
                       // returns the same bytes a decode would.
                       decode_row(ids[s],
                                  cache_.row(static_cast<std::size_t>(s)));
                     });
}

// ---------------------------------------------------------------------------
// Gather path.
// ---------------------------------------------------------------------------

void FeatureStore::decode_row(std::size_t r, float* out) const {
  const std::uint8_t* src = payload_ + r * row_bytes_;
  switch (dtype_) {
    case FeatureDtype::kF32:
      std::memcpy(out, src, row_bytes_);
      break;
    case FeatureDtype::kF16:
      tensor::codec::widen_f16_row(
          reinterpret_cast<const std::uint16_t*>(src), out, cols_);
      break;
    case FeatureDtype::kBf16:
      tensor::codec::widen_bf16_row(
          reinterpret_cast<const std::uint16_t*>(src), out, cols_);
      break;
    case FeatureDtype::kI8:
      tensor::codec::widen_i8_row(reinterpret_cast<const std::int8_t*>(src),
                                  scale_.data(), bias_.data(), out, cols_);
      break;
  }
}

void FeatureStore::gather(std::span<const std::uint32_t> indices,
                          tensor::Matrix& out, int threads) const {
  if (out.rows() != indices.size() || out.cols() != cols_) {
    throw std::invalid_argument("FeatureStore::gather: shape mismatch");
  }
  const std::size_t n = indices.size();
  // Serial pre-scan: bounds (throwing across a parallel region is UB) and
  // the hit tally, which is deterministic because admission is static.
  std::uint64_t hits = 0;
  const bool cached = !slot_of_.empty();
  if (cached) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t r = indices[i];
      if (r >= rows_) {
        throw std::out_of_range(
            "FeatureStore::gather: index " + std::to_string(r) +
            " at position " + std::to_string(i) + " out of range (store has " +
            std::to_string(rows_) + " rows)");
      }
      if (slot_of_[r] != kNoSlot) ++hits;
    }
  } else {
    // Branch-free max-reduce (vectorizes to vpmaxud) with one compare at
    // the end; the per-position error detail is rebuilt on the cold path.
    std::uint32_t mx = 0;
    for (std::size_t i = 0; i < n; ++i) mx = std::max(mx, indices[i]);
    if (n != 0 && mx >= rows_) {
      for (std::size_t i = 0; i < n; ++i) {
        if (indices[i] >= rows_) {
          throw std::out_of_range(
              "FeatureStore::gather: index " + std::to_string(indices[i]) +
              " at position " + std::to_string(i) +
              " out of range (store has " + std::to_string(rows_) + " rows)");
        }
      }
    }
  }

  // Uncached stores hand each thread's whole contiguous chunk to one
  // batched codec kernel (src/tensor/codec.*): the dtype switch, dequant
  // parameter loads, and software prefetch all live outside the per-row
  // path. Cached stores interleave cache hits with payload decodes, so
  // they keep a per-row loop (the hit is a straight memcpy anyway), with
  // the same row lookahead. Chunking is parallel_for_ranges' static
  // split — identical output rows for any thread count.
  if (!cached) {
    util::parallel_for_ranges(
        static_cast<std::int64_t>(n), threads,
        [this, indices, &out](std::int64_t begin, std::int64_t end) {
          const auto b = static_cast<std::size_t>(begin);
          const std::size_t len = static_cast<std::size_t>(end) - b;
          switch (dtype_) {
            case FeatureDtype::kF32:
              tensor::codec::gather_f32_rows(payload_, row_bytes_,
                                             indices.data() + b, len, cols_,
                                             out.row(b));
              break;
            case FeatureDtype::kF16:
              tensor::codec::gather_f16_rows(payload_, row_bytes_,
                                             indices.data() + b, len, cols_,
                                             out.row(b));
              break;
            case FeatureDtype::kBf16:
              tensor::codec::gather_bf16_rows(payload_, row_bytes_,
                                              indices.data() + b, len, cols_,
                                              out.row(b));
              break;
            case FeatureDtype::kI8:
              tensor::codec::gather_i8_rows(payload_, row_bytes_,
                                            indices.data() + b, len,
                                            scale_.data(), bias_.data(),
                                            cols_, out.row(b));
              break;
          }
        });
  } else {
    constexpr std::size_t kPrefetchRows = 8;
    util::parallel_for(
        static_cast<std::int64_t>(n), threads,
        [this, indices, n, &out](std::int64_t i) {
          const auto pos = static_cast<std::size_t>(i);
          const std::size_t pf = pos + kPrefetchRows;
          if (pf < n) {
            const std::uint32_t pr = indices[pf];
            const std::uint32_t pslot = slot_of_[pr];
            const std::uint8_t* src =
                pslot != kNoSlot
                    ? reinterpret_cast<const std::uint8_t*>(cache_.row(pslot))
                    : payload_ + static_cast<std::size_t>(pr) * row_bytes_;
            const std::size_t len = pslot != kNoSlot ? cols_ * 4 : row_bytes_;
            for (std::size_t b = 0; b < len; b += 64) {
              __builtin_prefetch(src + b, 0, 0);
            }
          }
          const std::uint32_t r = indices[pos];
          float* dst = out.row(pos);
          const std::uint32_t slot = slot_of_[r];
          if (slot != kNoSlot) {
            std::memcpy(dst, cache_.row(slot), cols_ * sizeof(float));
          } else {
            decode_row(r, dst);
          }
        });
  }

  const std::uint64_t misses = n - hits;
  const std::uint64_t bytes =
      hits * cols_ * 8 + misses * (row_bytes_ + cols_ * 4);
  {
    util::MutexLock lock(stats_->mu);
    stats_->s.gathered_rows += n;
    stats_->s.cache_hits += hits;
    stats_->s.cache_misses += misses;
    stats_->s.bytes_moved += bytes;
  }
  GSGCN_COUNTER_ADD("featstore.rows", static_cast<double>(n));
  GSGCN_COUNTER_ADD("featstore.cache_hits", static_cast<double>(hits));
  GSGCN_COUNTER_ADD("featstore.cache_misses", static_cast<double>(misses));
  GSGCN_COUNTER_ADD("featstore.bytes_moved", static_cast<double>(bytes));
}

void FeatureStore::prefetch(std::span<const std::uint32_t> indices) const {
  if (map_ == nullptr || indices.empty() || row_bytes_ == 0) return;
  static const std::size_t kPage =
      static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));

  // Coalesce the rows into page-aligned ranges so one madvise covers a
  // run of neighboring hot rows instead of one syscall per row.
  std::vector<std::uint32_t> ids(indices.begin(), indices.end());
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());

  std::uint64_t advised = 0;
  std::uintptr_t run_lo = 0, run_hi = 0;
  auto flush = [&] {
    if (run_hi > run_lo) {
      ::madvise(reinterpret_cast<void*>(run_lo), run_hi - run_lo,
                MADV_WILLNEED);
      advised += run_hi - run_lo;
    }
  };
  for (const std::uint32_t r : ids) {
    if (r >= rows_) continue;  // a hint, not a validator
    const auto lo =
        (reinterpret_cast<std::uintptr_t>(payload_) + r * row_bytes_) &
        ~(kPage - 1);
    const auto hi =
        (reinterpret_cast<std::uintptr_t>(payload_) + (r + 1) * row_bytes_ +
         kPage - 1) &
        ~(kPage - 1);
    if (lo <= run_hi && run_hi != 0) {
      run_hi = std::max(run_hi, hi);
    } else {
      flush();
      run_lo = lo;
      run_hi = hi;
    }
  }
  flush();

  {
    util::MutexLock lock(stats_->mu);
    stats_->s.prefetch_calls += 1;
    stats_->s.prefetch_bytes += advised;
  }
  GSGCN_COUNTER_ADD("featstore.prefetch_bytes", static_cast<double>(advised));
}

tensor::Matrix FeatureStore::to_dense(int threads) const {
  tensor::Matrix dense(rows_, cols_);
  util::parallel_for(static_cast<std::int64_t>(rows_), threads,
                     [this, &dense](std::int64_t i) {
                       decode_row(static_cast<std::size_t>(i),
                                  dense.row(static_cast<std::size_t>(i)));
                     });
  return dense;
}

FeatureStoreStats FeatureStore::stats() const {
  util::MutexLock lock(stats_->mu);
  return stats_->s;
}

void FeatureStore::reset_stats() {
  util::MutexLock lock(stats_->mu);
  stats_->s = FeatureStoreStats{};
}

// ---------------------------------------------------------------------------
// On-disk layout.
// ---------------------------------------------------------------------------

void FeatureStore::write_file(const std::string& path,
                              const tensor::Matrix& features,
                              FeatureDtype dtype) {
  FeatureStore fs = encode(features, dtype);
  const std::uint64_t payload_bytes = fs.rows_ * fs.row_bytes_;
  const std::uint32_t payload_crc =
      util::crc32(fs.payload_, static_cast<std::size_t>(payload_bytes));

  std::string meta;
  meta.reserve(40 + 8 * fs.cols_);
  put_u32(meta, static_cast<std::uint32_t>(dtype));
  put_u64(meta, fs.rows_);
  put_u64(meta, fs.cols_);
  const std::size_t meta_bytes =
      40 + (dtype == FeatureDtype::kI8 ? 8 * fs.cols_ : 0);
  const std::uint64_t payload_offset =
      (util::kFrameHeaderBytes + meta_bytes + kPayloadAlign - 1) /
      kPayloadAlign * kPayloadAlign;
  put_u64(meta, payload_offset);
  put_u64(meta, payload_bytes);
  put_u32(meta, payload_crc);
  if (dtype == FeatureDtype::kI8) {
    for (const float s : fs.scale_) put_u32(meta, f32_bits_of(s));
    for (const float z : fs.zp_) put_u32(meta, f32_bits_of(z));
  }
  const std::string frame = util::frame_encode(kFeatFrame, meta);

  // Atomic publish: write to a sibling tmp file, rename over the target.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("feature store: cannot open " + tmp);
    }
    out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
    const std::string pad(payload_offset - frame.size(), '\0');
    out.write(pad.data(), static_cast<std::streamsize>(pad.size()));
    if (payload_bytes > 0) {
      out.write(reinterpret_cast<const char*>(fs.payload_),
                static_cast<std::streamsize>(payload_bytes));
    }
    out.flush();
    if (!out.good()) {
      throw std::runtime_error("feature store: short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("feature store: rename " + tmp + " -> " + path +
                             " failed: " + std::strerror(errno));
  }
}

FeatureStore FeatureStore::open_mmap(const std::string& path,
                                     const FeatureStoreOptions& opts,
                                     std::span<const graph::Vid> hot_order) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw std::runtime_error("feature store: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("feature store: fstat " + path + ": " +
                             std::strerror(err));
  }
  const auto len = static_cast<std::size_t>(st.st_size);
  auto map = std::make_unique<Mapping>();
  if (len > 0) {
    map->base = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map->base == MAP_FAILED) {
      const int err = errno;
      map->base = nullptr;
      ::close(fd);
      throw std::runtime_error("feature store: mmap " + path + ": " +
                               std::strerror(err));
    }
    map->len = len;
  }
  ::close(fd);  // the mapping keeps the file alive

  std::string meta;
  const util::FrameStatus status = util::frame_decode_buffer(
      kFeatFrame,
      std::string_view(static_cast<const char*>(map->base), len), meta);
  if (status != util::FrameStatus::kOk) {
    throw std::runtime_error("feature store: " + path + ": " +
                             util::frame_status_name(status));
  }

  MetaReader rd(meta);
  const std::uint32_t dtype_raw = rd.u32();
  if (dtype_raw > static_cast<std::uint32_t>(FeatureDtype::kI8)) {
    throw std::runtime_error("feature store: " + path +
                             ": unknown dtype tag " +
                             std::to_string(dtype_raw));
  }
  FeatureStore fs;
  fs.dtype_ = static_cast<FeatureDtype>(dtype_raw);
  fs.rows_ = rd.u64();
  fs.cols_ = rd.u64();
  const std::uint64_t payload_offset = rd.u64();
  const std::uint64_t payload_bytes = rd.u64();
  const std::uint32_t payload_crc = rd.u32();
  fs.row_bytes_ = fs.cols_ * feature_dtype_bytes(fs.dtype_);
  if (payload_bytes != fs.rows_ * fs.row_bytes_ ||
      payload_offset < util::kFrameHeaderBytes ||
      payload_offset + payload_bytes > len) {
    throw std::runtime_error("feature store: " + path +
                             ": inconsistent geometry (truncated file?)");
  }
  if (fs.dtype_ == FeatureDtype::kI8) {
    fs.scale_.resize(fs.cols_);
    fs.zp_.resize(fs.cols_);
    fs.bias_.resize(fs.cols_);
    for (std::size_t j = 0; j < fs.cols_; ++j) fs.scale_[j] = rd.f32();
    for (std::size_t j = 0; j < fs.cols_; ++j) fs.zp_[j] = rd.f32();
    for (std::size_t j = 0; j < fs.cols_; ++j) {
      fs.bias_[j] = -fs.zp_[j] * fs.scale_[j];
    }
  }
  if (!rd.exhausted()) {
    throw std::runtime_error("feature store: " + path +
                             ": trailing metadata bytes");
  }
  fs.payload_ =
      static_cast<const std::uint8_t*>(map->base) + payload_offset;
  if (opts.verify_payload) {
    const std::uint32_t got =
        util::crc32(fs.payload_, static_cast<std::size_t>(payload_bytes));
    if (got != payload_crc) {
      throw std::runtime_error("feature store: " + path +
                               ": payload CRC mismatch");
    }
  }
  // Gathers are random-access by nature; the pool-lookahead prefetch()
  // upgrades the pages we know are coming.
  if (payload_bytes > 0) {
    ::madvise(const_cast<std::uint8_t*>(fs.payload_),
              static_cast<std::size_t>(payload_bytes), MADV_RANDOM);
  }
  fs.map_ = std::move(map);
  fs.build_cache(opts.cache_mb, hot_order);
  return fs;
}

}  // namespace gsgcn::data

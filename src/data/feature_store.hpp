#pragma once
// Compressed vertex-feature store with a hot-vertex fp32 cache and an
// optional mmap-backed on-disk layout.
//
// Sampled-GCN training is gather-bound: every subgraph pulls a few
// thousand feature rows out of a |V|×f matrix, and at fp32 that traffic
// dwarfs the GEMMs (Serafini & Guan, PAPERS.md). The store attacks the
// bytes three ways, all behind one `gather(rows, out)` call so the
// trainer and the serving engine stay codec-agnostic:
//
//   1. Codecs — fp32 passthrough, fp16, bf16, int8 (per-column affine
//      scale/zero-point). Rows are widened to fp32 *during* the gather
//      (src/tensor/codec.*); a decompressed matrix never exists.
//   2. Hot-vertex cache — the first K vertices of a caller-supplied hot
//      order (typically graph::degree_order) are kept as exact fp32
//      widened rows; a cache hit is a straight memcpy, no decode. K is
//      sized by cache_mb at construction and never changes, so cache
//      contents are a pure function of (payload, order, size): residency
//      cannot depend on thread scheduling, and gathers stay bit-identical
//      for ANY cache size and thread count.
//   3. mmap backing — `write_file` emits a CRC-framed header (util/frame)
//      + per-column scales + row-major payload; `open_mmap` maps it
//      read-only so feature files larger than RAM train out-of-core,
//      with `prefetch()` issuing madvise(WILLNEED) hints from the async
//      pool's lookahead.
//
// Thread safety: gather/prefetch/to_dense are const and safe to call
// concurrently; the only mutable state is the stats block, guarded by its
// own mutex (hit/miss tallies are computed per call and folded once).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "tensor/matrix.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace gsgcn::data {

/// On-disk / in-RAM element encoding of the feature payload.
enum class FeatureDtype : std::uint8_t {
  kF32 = 0,
  kF16 = 1,
  kBf16 = 2,
  kI8 = 3,
};

/// "fp32" / "fp16" / "bf16" / "int8".
const char* feature_dtype_name(FeatureDtype d);
/// Inverse of feature_dtype_name; throws std::invalid_argument on junk.
FeatureDtype parse_feature_dtype(const std::string& name);
/// Payload bytes per value (4 / 2 / 2 / 1).
std::size_t feature_dtype_bytes(FeatureDtype d);

struct FeatureStoreOptions {
  FeatureDtype dtype = FeatureDtype::kF32;
  /// Hot-vertex fp32 cache budget; 0 disables the cache.
  std::size_t cache_mb = 0;
  /// open_mmap only: CRC-check the full payload at open (one sequential
  /// read of the file). The framed header is always verified.
  bool verify_payload = false;
};

/// Monotonic counters since construction / reset_stats().
struct FeatureStoreStats {
  std::uint64_t gathered_rows = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// Payload bytes read + fp32 bytes written by gathers (hits read fp32
  /// from the cache instead of payload).
  std::uint64_t bytes_moved = 0;
  std::uint64_t prefetch_calls = 0;
  std::uint64_t prefetch_bytes = 0;
};

class FeatureStore {
 public:
  // Special members live in the .cpp: the Mapping member is an
  // incomplete type here.
  FeatureStore();
  ~FeatureStore();
  FeatureStore(FeatureStore&&) noexcept;
  FeatureStore& operator=(FeatureStore&&) noexcept;
  FeatureStore(const FeatureStore&) = delete;
  FeatureStore& operator=(const FeatureStore&) = delete;

  /// Quantize `features` into an owned payload. `hot_order` ranks
  /// vertices for cache residency (e.g. graph::degree_order); the first
  /// rows that fit in opts.cache_mb are admitted. Empty order = row ids
  /// ascending.
  static FeatureStore build(const tensor::Matrix& features,
                            const FeatureStoreOptions& opts,
                            std::span<const graph::Vid> hot_order = {});

  /// Zero-copy fp32 passthrough over an existing matrix, which must
  /// outlive the store. gather() matches tensor::gather_rows exactly.
  static FeatureStore view(const tensor::Matrix& features);

  /// Quantize and write the on-disk layout (atomic: tmp file + rename).
  static void write_file(const std::string& path,
                         const tensor::Matrix& features, FeatureDtype dtype);

  /// Map a write_file product read-only. opts.dtype is ignored (the file
  /// header decides); cache/verify options apply. Throws
  /// std::runtime_error on truncation/corruption.
  static FeatureStore open_mmap(const std::string& path,
                                const FeatureStoreOptions& opts,
                                std::span<const graph::Vid> hot_order = {});

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  FeatureDtype dtype() const { return dtype_; }
  /// Payload bytes per value for the roofline gather work model.
  std::size_t value_bytes() const { return feature_dtype_bytes(dtype_); }
  bool mmapped() const { return map_ != nullptr; }
  std::size_t cache_rows() const { return cache_.rows(); }

  /// out[i] = widen(payload row indices[i]); out must be indices.size()
  /// × cols(). Bit-identical for any thread count / cache size. Throws
  /// std::out_of_range (naming the index) before touching out.
  void gather(std::span<const std::uint32_t> indices, tensor::Matrix& out,
              int threads = 0) const;

  /// madvise(WILLNEED) the payload pages behind these rows (mmap stores
  /// only; no-op otherwise). Purely a hint — never changes results.
  void prefetch(std::span<const std::uint32_t> indices) const;

  /// Widen the whole store (tests / small-graph serving fallback).
  tensor::Matrix to_dense(int threads = 0) const;

  FeatureStoreStats stats() const;
  void reset_stats();

 private:
  struct Mapping;  // owns the fd + mapped range
  struct StatsBlock {
    mutable util::Mutex mu;
    FeatureStoreStats s GUARDED_BY(mu);
  };

  /// Decode payload row r (no cache consultation) into out[0, cols_).
  void decode_row(std::size_t r, float* out) const;
  void build_cache(std::size_t cache_mb, std::span<const graph::Vid> order);
  static FeatureStore encode(const tensor::Matrix& features,
                             FeatureDtype dtype);

  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  FeatureDtype dtype_ = FeatureDtype::kF32;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t row_bytes_ = 0;

  // Payload: exactly one of owned_ (build), view-backed (view), or map_
  // (open_mmap) provides the bytes behind payload_.
  util::AlignedBuffer<std::uint8_t> owned_;
  const std::uint8_t* payload_ = nullptr;
  std::unique_ptr<Mapping> map_;

  // int8 per-column dequant parameters; bias_[j] = -zp_[j] * scale_[j].
  std::vector<float> scale_;
  std::vector<float> zp_;
  std::vector<float> bias_;

  // Hot cache: cache_.row(slot_of_[v]) is the exact widened row v.
  tensor::Matrix cache_;
  std::vector<std::uint32_t> slot_of_;

  // Stats live behind a pointer so the store stays movable (util::Mutex
  // is not). This is the "FeatureStore cache mutex" the analyzer sweeps.
  std::unique_ptr<StatsBlock> stats_;
};

}  // namespace gsgcn::data

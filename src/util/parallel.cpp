#include "util/parallel.hpp"

#include <omp.h>
#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include <cstring>
#include <fstream>
#include <string>

namespace gsgcn::util {

namespace {
std::size_t read_l2_bytes() {
  // sysfs reports e.g. "2048K"; index2 is conventionally the unified L2.
  std::ifstream in("/sys/devices/system/cpu/cpu0/cache/index2/size");
  std::string s;
  if (in >> s && !s.empty()) {
    const char suffix = s.back();
    const std::size_t value = std::strtoull(s.c_str(), nullptr, 10);
    if (value > 0) {
      if (suffix == 'K') return value * 1024;
      if (suffix == 'M') return value * 1024 * 1024;
      return value;
    }
  }
  return 256 * 1024;  // the paper's assumption
}
}  // namespace

std::size_t private_cache_bytes() {
  static const std::size_t bytes = read_l2_bytes();
  return bytes;
}

bool pin_current_thread_to_cpu(int cpu) {
#ifdef __linux__
  const int n = omp_get_num_procs();
  if (n <= 0 || cpu < 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % n, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

ScopedAffinity::ScopedAffinity() {
#ifdef __linux__
  static_assert(sizeof(cpu_set_t) <= sizeof(mask_),
                "ScopedAffinity mask buffer too small for cpu_set_t");
  cpu_set_t set;
  CPU_ZERO(&set);
  if (pthread_getaffinity_np(pthread_self(), sizeof(set), &set) == 0) {
    std::memcpy(mask_, &set, sizeof(set));
    saved_ = true;
  }
#endif
}

bool ScopedAffinity::pin(int cpu) {
  if (!saved_) return false;  // nothing to restore from — do not pin
  pinned_ = pin_current_thread_to_cpu(cpu);
  return pinned_;
}

ScopedAffinity::~ScopedAffinity() {
#ifdef __linux__
  if (saved_ && pinned_) {
    cpu_set_t set;
    std::memcpy(&set, mask_, sizeof(set));
    (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
  }
#endif
}

int max_threads() { return omp_get_max_threads(); }
int num_procs() { return omp_get_num_procs(); }
int thread_id() { return omp_get_thread_num(); }
bool in_parallel() { return omp_in_parallel() != 0; }
int resolve_threads(int threads) {
  return threads > 0 ? threads : omp_get_max_threads();
}

ScopedNumThreads::ScopedNumThreads(int n) : previous_(omp_get_max_threads()) {
  omp_set_num_threads(n > 0 ? n : previous_);
}

ScopedNumThreads::~ScopedNumThreads() { omp_set_num_threads(previous_); }

Range split_range(std::int64_t n, int p, int i) {
  const std::int64_t base = n / p;
  const std::int64_t rem = n % p;
  const std::int64_t begin = i * base + (i < rem ? i : rem);
  const std::int64_t len = base + (i < rem ? 1 : 0);
  return {begin, begin + len};
}

}  // namespace gsgcn::util

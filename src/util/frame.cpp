#include "util/frame.hpp"

#include <cstring>
#include <stdexcept>

#include "util/crc32.hpp"

namespace gsgcn::util {

namespace {

template <class T>
void put_le(std::string& out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

template <class T>
T get_le(const char* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

}  // namespace

const char* frame_status_name(FrameStatus s) {
  switch (s) {
    case FrameStatus::kOk: return "ok";
    case FrameStatus::kNeedMore: return "need_more";
    case FrameStatus::kBadMagic: return "bad_magic";
    case FrameStatus::kBadVersion: return "bad_version";
    case FrameStatus::kTooLarge: return "too_large";
    case FrameStatus::kBadCrc: return "bad_crc";
  }
  return "unknown";
}

std::string frame_encode(const FrameSpec& spec, std::string_view payload) {
  if (payload.size() > spec.max_payload) {
    throw std::invalid_argument("frame_encode: payload " +
                                std::to_string(payload.size()) +
                                " bytes exceeds max " +
                                std::to_string(spec.max_payload));
  }
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  put_le(out, spec.magic);
  put_le(out, spec.version);
  put_le(out, static_cast<std::uint64_t>(payload.size()));
  put_le(out, crc32(payload.data(), payload.size()));
  out.append(payload);
  return out;
}

FrameStatus frame_try_decode(const FrameSpec& spec, const char* data,
                             std::size_t n, std::string& payload,
                             std::size_t& consumed) {
  // Reject garbage as early as possible: magic mismatches on the first 8
  // bytes even when fewer than 8 have arrived would mean waiting forever
  // on a connection that will never become valid, so compare the prefix
  // byte-for-byte as it trickles in.
  std::uint64_t magic_le = spec.magic;
  char magic_bytes[8];
  std::memcpy(magic_bytes, &magic_le, 8);
  const std::size_t magic_avail = n < 8 ? n : 8;
  if (std::memcmp(data, magic_bytes, magic_avail) != 0) {
    return FrameStatus::kBadMagic;
  }
  if (n < kFrameHeaderBytes) return FrameStatus::kNeedMore;

  const std::uint32_t version = get_le<std::uint32_t>(data + 8);
  if (version != spec.version) return FrameStatus::kBadVersion;
  const std::uint64_t size = get_le<std::uint64_t>(data + 12);
  if (size > spec.max_payload) return FrameStatus::kTooLarge;
  if (n < kFrameHeaderBytes + size) return FrameStatus::kNeedMore;

  const std::uint32_t crc = get_le<std::uint32_t>(data + 20);
  if (crc32(data + kFrameHeaderBytes, size) != crc) {
    return FrameStatus::kBadCrc;
  }
  payload.assign(data + kFrameHeaderBytes, size);
  consumed = kFrameHeaderBytes + static_cast<std::size_t>(size);
  return FrameStatus::kOk;
}

FrameStatus frame_decode_buffer(const FrameSpec& spec, std::string_view buf,
                                std::string& payload) {
  std::size_t consumed = 0;
  return frame_try_decode(spec, buf.data(), buf.size(), payload, consumed);
}

}  // namespace gsgcn::util

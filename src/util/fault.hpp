#pragma once
// Deterministic fault injection — the test harness for the fault-tolerance
// layer. Production code marks recoverable failure sites with a named
// fault point:
//
//   util::fault_point("pool.sample");            // throw/abort sites
//   if (util::fault_point("ckpt.torn_write")) {  // caller-handled sites
//     /* simulate the torn write */
//   }
//
// When the injector is disabled (the default) a fault point costs one
// relaxed atomic load. Tests (or the GSGCN_FAULTS environment variable)
// arm sites to fire deterministically:
//
//   - count trigger: fire exactly once, on the nth hit of the site;
//   - probability trigger: fire each hit with probability p, drawn from a
//     site-keyed RNG stream (seed, hash(site)) so the firing pattern is a
//     pure function of the seed — reruns inject the same faults.
//
// What firing does is the arm's kind:
//   kThrow  — throw util::InjectedFault (default; exercises exception
//             recovery, e.g. the async pool's producer error path)
//   kAbort  — std::_Exit(kFaultExitCode): a crash-stop with no unwinding,
//             destructors, or atexit flushing — the closest in-process
//             stand-in for kill -9 (used by the kill/resume CI test)
//   kReport — return true and let the call site implement the fault
//             (torn checkpoint writes, poisoned losses)
//   kDelay  — sleep the armed number of milliseconds at the fault point,
//             then return false (the call proceeds normally, late). The
//             deadline/timeout paths in the serving layer are tested with
//             this: WHEN latency strikes is a pure function of the seed
//             and site, so an "expired deadline" test never depends on
//             scheduler luck to make a request slow.
//
// Env grammar: GSGCN_FAULTS="site:trigger[:kind][,site:trigger[:kind]]..."
// where trigger is an integer n >= 1 or "p<prob>", and kind is
// throw|abort|report|delay:<ms>. GSGCN_FAULT_SEED seeds the probability
// streams.

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/mutex.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"

namespace gsgcn::util {

/// Distinguishable from organic failures so tests can assert the recovery
/// path was exercised by the injector, not by a real bug.
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class FaultKind { kThrow, kAbort, kReport, kDelay };

/// Exit code of kAbort sites; asserted by death tests and the CI kill job.
inline constexpr int kFaultExitCode = 117;

class FaultInjector {
 public:
  /// Process-wide instance. The first call reads GSGCN_FAULTS /
  /// GSGCN_FAULT_SEED so every binary is injectable without wiring.
  static FaultInjector& instance();

  /// Arm `site` to fire once, on its nth hit (1-based). `delay_ms` is
  /// consulted only for kDelay arms.
  void arm(const std::string& site, std::uint64_t nth,
           FaultKind kind = FaultKind::kThrow, std::uint64_t delay_ms = 0)
      EXCLUDES(mu_);
  /// Arm `site` to fire each hit with probability p from the site-keyed
  /// stream (seed, splitmix64(hash(site))).
  void arm_probability(const std::string& site, double p,
                       FaultKind kind = FaultKind::kThrow,
                       std::uint64_t delay_ms = 0) EXCLUDES(mu_);

  /// Parse and apply the env grammar above. Throws std::invalid_argument
  /// on malformed specs (a typo'd site name firing never is a silent test
  /// pass; a typo'd trigger must be loud).
  void configure(const std::string& spec) EXCLUDES(mu_);

  /// Disarm everything and reset hit/fired counts.
  void clear() EXCLUDES(mu_);

  void set_seed(std::uint64_t seed) EXCLUDES(mu_);

  /// True iff any site is armed (relaxed load — the only cost on the hot
  /// path while disabled).
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Record a hit of `site` and fire if armed for this hit. kThrow arms
  /// throw InjectedFault, kAbort arms _Exit; kReport arms return true.
  bool hit(const char* site) EXCLUDES(mu_);

  /// Total faults fired since the last clear().
  std::uint64_t fired_total() const EXCLUDES(mu_);
  /// Hits recorded for one site (armed or not counts only armed sites —
  /// unarmed sites are never tracked, they cost one atomic load).
  std::uint64_t hits(const std::string& site) const EXCLUDES(mu_);

 private:
  FaultInjector();

  struct Arm {
    std::uint64_t nth = 0;  // 0 = probability trigger
    double probability = 0.0;
    FaultKind kind = FaultKind::kThrow;
    std::uint64_t delay_ms = 0;  // kDelay only
    std::uint64_t hit_count = 0;
    std::uint64_t fired = 0;
    Xoshiro256 rng;
  };

  std::atomic<bool> enabled_{false};
  mutable util::Mutex mu_;
  std::uint64_t seed_ GUARDED_BY(mu_) = 1;
  std::unordered_map<std::string, Arm> arms_ GUARDED_BY(mu_);
};

/// The production-code hook. Disabled: one relaxed atomic load, no lock.
inline bool fault_point(const char* site) {
  FaultInjector& f = FaultInjector::instance();
  return f.enabled() && f.hit(site);
}

}  // namespace gsgcn::util

#pragma once
// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) — integrity check for the
// checkpoint and cache file formats. Table-driven, one byte per step;
// checkpoint payloads are a few MB at most, so throughput is a non-issue
// next to the disk write they protect.

#include <array>
#include <cstddef>
#include <cstdint>

namespace gsgcn::util {

namespace detail {
constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}
}  // namespace detail

/// CRC-32 of `n` bytes. Pass a previous result as `seed` to checksum a
/// buffer in chunks; the default matches the standard one-shot value.
inline std::uint32_t crc32(const void* data, std::size_t n,
                           std::uint32_t seed = 0) {
  static constexpr std::array<std::uint32_t, 256> kTable =
      detail::make_crc32_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = kTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace gsgcn::util

#include "util/rng.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace gsgcn::util {

std::vector<std::uint32_t> random_permutation(std::uint32_t n,
                                              Xoshiro256& rng) {
  std::vector<std::uint32_t> perm(n);
  for (std::uint32_t i = 0; i < n; ++i) perm[i] = i;
  for (std::uint32_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.below(i)]);
  }
  return perm;
}

std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n,
                                                      std::uint32_t k,
                                                      Xoshiro256& rng) {
  assert(k <= n);
  // Floyd's algorithm: for j in [n-k, n), draw t in [0, j]; insert t unless
  // already present, in which case insert j. Every k-subset equally likely.
  std::unordered_set<std::uint32_t> chosen;
  chosen.reserve(k * 2);
  std::vector<std::uint32_t> out;
  out.reserve(k);
  for (std::uint32_t j = n - k; j < n; ++j) {
    const std::uint32_t t = rng.below(j + 1);
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace gsgcn::util

#pragma once
// Environment-variable knobs.
//
// The bench harness honours:
//   GSGCN_SCALE        — multiplier on synthetic dataset sizes (default 1.0,
//                        set <1 on slow machines, >1 to stress)
//   GSGCN_MAX_THREADS  — cap on the thread sweep in the scaling benches
//   GSGCN_SEED         — global base seed for reproducible runs

#include <cstdint>
#include <string>

namespace gsgcn::util {

/// Strict whole-string numeric parsing: the entire token must be one
/// finite, in-range number — trailing garbage ("12x"), empty strings, and
/// overflow all return false instead of a silently truncated value.
/// These back every numeric env/CLI knob; unchecked strtoll turning a
/// typo'd "1O0" into 1 has mis-sized experiments before.
bool parse_int64(const std::string& s, std::int64_t& out);
bool parse_double(const std::string& s, double& out);

std::string env_string(const char* name, const std::string& fallback);
/// Numeric env knobs throw std::runtime_error (naming the variable and
/// the offending text) when the variable is set but not a valid number.
std::int64_t env_int(const char* name, std::int64_t fallback);
double env_double(const char* name, double fallback);

/// Dataset scale factor (GSGCN_SCALE, default 1.0, clamped to [0.01, 100]).
double dataset_scale();

/// Max threads to sweep in scaling benches
/// (GSGCN_MAX_THREADS, default: omp num procs).
int bench_max_threads();

/// Global base seed (GSGCN_SEED, default 42).
std::uint64_t global_seed();

}  // namespace gsgcn::util

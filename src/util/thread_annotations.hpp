#pragma once
// Clang thread-safety analysis annotations (no-ops on other compilers).
//
// These macros wrap Clang's `-Wthread-safety` attribute set so lock
// discipline is checked at COMPILE TIME: a shared member is declared
// GUARDED_BY its mutex, internal-locking methods EXCLUDE it, caller-locks
// methods REQUIRE it, and any access that violates the declared protocol
// is a build error under the `tsafety` preset (`-Werror=thread-safety`,
// Clang only — see CMakeLists GSGCN_TSAFETY). GCC and MSVC see empty
// token soup, so every other preset is unaffected.
//
// Conventions (see DESIGN.md "Static verification"):
//  - every mutex-protected member of a concurrent class carries
//    GUARDED_BY(mu_); a member intentionally outside the lock's footprint
//    gets a comment explaining why instead;
//  - `_locked` methods (callee assumes the lock) carry REQUIRES(mu_);
//  - public methods that take the lock themselves carry EXCLUDES(mu_) so
//    self-deadlock via re-entry is a compile error;
//  - condition-variable wait predicates run with the lock held but inside
//    a lambda the analysis cannot see through: call `mu.AssertHeld()` as
//    the predicate's first statement (util/mutex.hpp);
//  - NO_THREAD_SAFETY_ANALYSIS is the audited escape hatch of last
//    resort; every use must carry a justifying comment.
//
// The attribute names mirror the canonical clang.llvm.org/docs/
// ThreadSafetyAnalysis.html reference macros.

#if defined(__clang__) && defined(__has_attribute)
#define GSGCN_TSA_HAS(x) __has_attribute(x)
#else
#define GSGCN_TSA_HAS(x) 0
#endif

#if GSGCN_TSA_HAS(guarded_by)
#define GSGCN_TSA(x) __attribute__((x))
#else
#define GSGCN_TSA(x)  // no-op off Clang
#endif

/// Class attribute: this type is a lockable capability ("mutex").
#define CAPABILITY(x) GSGCN_TSA(capability(x))

/// Class attribute: RAII type that acquires in its constructor and
/// releases in its destructor (util::MutexLock).
#define SCOPED_CAPABILITY GSGCN_TSA(scoped_lockable)

/// Data member is protected by the given mutex.
#define GUARDED_BY(x) GSGCN_TSA(guarded_by(x))

/// Pointed-to data (not the pointer itself) is protected by the mutex.
#define PT_GUARDED_BY(x) GSGCN_TSA(pt_guarded_by(x))

/// Caller must hold the mutex(es) when calling.
#define REQUIRES(...) GSGCN_TSA(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) GSGCN_TSA(requires_shared_capability(__VA_ARGS__))

/// Function acquires the mutex(es) and does not release before returning.
#define ACQUIRE(...) GSGCN_TSA(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) GSGCN_TSA(acquire_shared_capability(__VA_ARGS__))

/// Function releases mutex(es) the caller held on entry.
#define RELEASE(...) GSGCN_TSA(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) GSGCN_TSA(release_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the mutex(es): the function takes them itself.
/// Makes self-deadlocking re-entry a compile error.
#define EXCLUDES(...) GSGCN_TSA(locks_excluded(__VA_ARGS__))

/// Acquisition-order edge between two mutexes (deadlock-order checking).
#define ACQUIRED_BEFORE(...) GSGCN_TSA(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) GSGCN_TSA(acquired_after(__VA_ARGS__))

/// Try-lock: returns `success` iff the mutex was acquired.
#define TRY_ACQUIRE(...) GSGCN_TSA(try_acquire_capability(__VA_ARGS__))

/// Returns a reference to the mutex guarding this function's result.
#define RETURN_CAPABILITY(x) GSGCN_TSA(lock_returned(x))

/// Runtime assertion that the capability is held; teaches the analysis a
/// fact it cannot derive (cv wait predicates, callbacks).
#define ASSERT_CAPABILITY(x) GSGCN_TSA(assert_capability(x))

/// Audited opt-out; every use carries a justification comment.
#define NO_THREAD_SAFETY_ANALYSIS GSGCN_TSA(no_thread_safety_analysis)

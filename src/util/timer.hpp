#pragma once
// Wall-clock timing for benchmarks and the trainer's phase breakdown.

#include <chrono>

#include "util/check.hpp"

namespace gsgcn::util {

/// Monotonic wall timer. start() on construction; seconds()/ms() read the
/// elapsed time without stopping; restart() resets the origin.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ms() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time across many start/stop intervals — used for the
/// per-phase (sampling / feature propagation / weight application)
/// execution-time breakdown of Figure 3D.
class PhaseTimer {
 public:
  void start() {
    t_.restart();
#if GSGCN_CHECKS_ENABLED
    running_ = true;
#endif
  }
  void stop() {
    GSGCN_ASSERT(running_, "PhaseTimer::stop() without a matching start()");
#if GSGCN_CHECKS_ENABLED
    running_ = false;
#endif
    total_ += t_.seconds();
  }
  double total_seconds() const { return total_; }
  void reset() { total_ = 0.0; }

 private:
  Timer t_;
  double total_ = 0.0;
#if GSGCN_CHECKS_ENABLED
  bool running_ = false;
#endif
};

/// RAII guard adding an interval to a PhaseTimer.
class ScopedPhase {
 public:
  explicit ScopedPhase(PhaseTimer& t) : t_(t) { t_.start(); }
  ~ScopedPhase() { t_.stop(); }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimer& t_;
};

}  // namespace gsgcn::util

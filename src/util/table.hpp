#pragma once
// ASCII table printer used by every bench binary to emit the paper's
// tables/figures as aligned rows on stdout.

#include <string>
#include <vector>

namespace gsgcn::util {

/// Column-aligned ASCII table. Add a header then rows of cells; print()
/// pads every column to its widest cell. Numeric helpers format with a
/// fixed precision so benchmark output diffs cleanly between runs.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Begin a new row; returns *this for chaining cell() calls.
  Table& row();

  Table& cell(const std::string& s);
  Table& cell(const char* s);
  Table& cell(double v, int precision = 3);
  Table& cell(std::int64_t v);
  Table& cell(int v) { return cell(static_cast<std::int64_t>(v)); }
  Table& cell(std::size_t v) { return cell(static_cast<std::int64_t>(v)); }

  /// Render to a string (also used by tests).
  std::string str() const;

  /// Print to stdout with a title line.
  void print(const std::string& title) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// "12.3x"-style speedup formatting used in the paper's tables.
std::string speedup_str(double x, int precision = 2);

}  // namespace gsgcn::util

#include "util/fault.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <thread>

#include "util/env.hpp"

namespace gsgcn::util {

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

FaultInjector::FaultInjector() {
  seed_ = static_cast<std::uint64_t>(env_int("GSGCN_FAULT_SEED", 1));
  const std::string spec = env_string("GSGCN_FAULTS", "");
  if (!spec.empty()) configure(spec);
}

void FaultInjector::arm(const std::string& site, std::uint64_t nth,
                        FaultKind kind, std::uint64_t delay_ms) {
  if (site.empty() || nth == 0) {
    throw std::invalid_argument("FaultInjector::arm: empty site or nth == 0");
  }
  Arm a;
  a.nth = nth;
  a.kind = kind;
  a.delay_ms = delay_ms;
  util::MutexLock lock(mu_);
  arms_[site] = a;
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultInjector::arm_probability(const std::string& site, double p,
                                    FaultKind kind, std::uint64_t delay_ms) {
  if (site.empty() || p < 0.0 || p > 1.0) {
    throw std::invalid_argument(
        "FaultInjector::arm_probability: bad site or p outside [0, 1]");
  }
  Arm a;
  a.probability = p;
  a.kind = kind;
  a.delay_ms = delay_ms;
  util::MutexLock lock(mu_);
  // Site-keyed stream: the firing pattern depends only on (seed, site),
  // never on how many other sites are armed or hit.
  std::uint64_t h = std::hash<std::string>{}(site);
  a.rng = Xoshiro256::stream(seed_, splitmix64(h));
  arms_[site] = a;
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultInjector::configure(const std::string& spec) {
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;

    const std::size_t c1 = entry.find(':');
    if (c1 == std::string::npos || c1 == 0) {
      throw std::invalid_argument("GSGCN_FAULTS: expected site:trigger in '" +
                                  entry + "'");
    }
    const std::string site = entry.substr(0, c1);
    const std::size_t c2 = entry.find(':', c1 + 1);
    const std::string trigger =
        entry.substr(c1 + 1, c2 == std::string::npos ? std::string::npos
                                                     : c2 - c1 - 1);
    FaultKind kind = FaultKind::kThrow;
    std::uint64_t delay_ms = 0;
    if (c2 != std::string::npos) {
      const std::string k = entry.substr(c2 + 1);
      if (k == "throw") {
        kind = FaultKind::kThrow;
      } else if (k == "abort") {
        kind = FaultKind::kAbort;
      } else if (k == "report") {
        kind = FaultKind::kReport;
      } else if (k.rfind("delay:", 0) == 0) {
        std::int64_t ms = 0;
        if (!parse_int64(k.substr(6), ms) || ms < 0) {
          throw std::invalid_argument("GSGCN_FAULTS: bad delay ms in '" +
                                      entry + "'");
        }
        kind = FaultKind::kDelay;
        delay_ms = static_cast<std::uint64_t>(ms);
      } else {
        throw std::invalid_argument("GSGCN_FAULTS: unknown kind '" + k +
                                    "' in '" + entry + "'");
      }
    }
    if (trigger.empty()) {
      throw std::invalid_argument("GSGCN_FAULTS: empty trigger in '" + entry +
                                  "'");
    }
    if (trigger[0] == 'p') {
      double p = 0.0;
      if (!parse_double(trigger.substr(1), p)) {
        throw std::invalid_argument("GSGCN_FAULTS: bad probability in '" +
                                    entry + "'");
      }
      arm_probability(site, p, kind, delay_ms);
    } else {
      std::int64_t nth = 0;
      if (!parse_int64(trigger, nth) || nth <= 0) {
        throw std::invalid_argument("GSGCN_FAULTS: bad hit count in '" + entry +
                                    "'");
      }
      arm(site, static_cast<std::uint64_t>(nth), kind, delay_ms);
    }
  }
}

void FaultInjector::clear() {
  util::MutexLock lock(mu_);
  arms_.clear();
  enabled_.store(false, std::memory_order_relaxed);
}

void FaultInjector::set_seed(std::uint64_t seed) {
  util::MutexLock lock(mu_);
  seed_ = seed;
}

bool FaultInjector::hit(const char* site) {
  FaultKind kind;
  std::uint64_t delay_ms = 0;
  {
    util::MutexLock lock(mu_);
    const auto it = arms_.find(site);
    if (it == arms_.end()) return false;
    Arm& a = it->second;
    ++a.hit_count;
    const bool fire = a.nth != 0 ? a.hit_count == a.nth
                                 : a.rng.uniform() < a.probability;
    if (!fire) return false;
    ++a.fired;
    kind = a.kind;
    delay_ms = a.delay_ms;
  }
  switch (kind) {
    case FaultKind::kThrow:
      throw InjectedFault(std::string("injected fault at ") + site);
    case FaultKind::kAbort:
      // Crash-stop: no unwinding, no destructors, no atexit flushing — the
      // in-process equivalent of kill -9 for resume tests.
      std::fprintf(stderr, "injected crash at %s\n", site);
      std::fflush(stderr);
      std::_Exit(kFaultExitCode);
    case FaultKind::kReport:
      return true;
    case FaultKind::kDelay:
      // Injected latency, outside the lock: other sites (and other hits
      // of this site) stay live while this call sleeps. The call then
      // proceeds normally — a slow operation, not a failed one.
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      return false;
  }
  return true;  // unreachable for in-range enum values
}

std::uint64_t FaultInjector::fired_total() const {
  util::MutexLock lock(mu_);
  std::uint64_t total = 0;
  // det-safe: commutative integer sum — iteration order cannot change it
  for (const auto& [site, a] : arms_) {
    (void)site;
    total += a.fired;
  }
  return total;
}

std::uint64_t FaultInjector::hits(const std::string& site) const {
  util::MutexLock lock(mu_);
  const auto it = arms_.find(site);
  return it == arms_.end() ? 0 : it->second.hit_count;
}

}  // namespace gsgcn::util

#pragma once
// The library's single parallelism choke point.
//
// All data parallelism goes through parallel_for / parallel_for_dynamic /
// parallel_region below. Two interchangeable backends implement them:
//
//  - OpenMP (default): each helper lowers onto the corresponding
//    `#pragma omp` construct, so codegen and scheduling are identical to
//    writing the pragma at the call site.
//  - Plain std::thread teams (GSGCN_THREAD_BACKEND, selected by
//    -DGSGCN_SANITIZE=thread): one fresh thread per team member per
//    region. GCC's libgomp synchronizes its thread pool with futexes that
//    ThreadSanitizer cannot observe, so under TSan every pooled fork/join
//    edge looks like a data race (hundreds of false positives on correct
//    code, and no suppression can restore the missing happens-before
//    edges without also masking real races). Fresh pthread_create/join
//    pairs ARE intercepted by TSan, which restores exact fork/join
//    ordering while leaving every intra-region access pattern — the thing
//    we actually want race-checked — unchanged. Thread startup cost makes
//    this backend slower; it exists for correctness runs, not production.
//
// Chunking note: the static split is contiguous blocks (split_range), the
// same shape libgomp uses for schedule(static); results never depend on
// which thread runs which chunk, only on chunk-disjointness — which is
// exactly what TSan verifies.

#include <cstddef>
#include <cstdint>
#include <exception>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

#ifdef GSGCN_THREAD_BACKEND
#include <atomic>
#include <thread>
#include <vector>
#else
#include <omp.h>
#endif

namespace gsgcn::util {

/// Max threads OpenMP would give a parallel region right now.
int max_threads();

/// Hardware concurrency as OpenMP sees it (omp_get_num_procs).
int num_procs();

/// Current thread id inside a parallel region (0 outside).
int thread_id();

/// True if called from inside an active parallel region.
bool in_parallel();

/// threads > 0 ? threads : max_threads() — the convention every public
/// `int threads` parameter in the library follows.
int resolve_threads(int threads);

/// RAII override of the OpenMP thread count: regions opened while this is
/// alive use `n` threads; the previous max is restored on destruction.
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(int n);
  ~ScopedNumThreads();
  ScopedNumThreads(const ScopedNumThreads&) = delete;
  ScopedNumThreads& operator=(const ScopedNumThreads&) = delete;

 private:
  int previous_;
};

/// Pin the calling thread to logical CPU `cpu % num_procs()`. Returns
/// false when unsupported or denied (containerized/cgroup setups); never
/// throws — pinning is an optimization, not a correctness requirement.
/// The paper binds one sampler to one core so its Dashboard stays in that
/// core's private cache.
bool pin_current_thread_to_cpu(int cpu);

/// RAII affinity guard: captures the calling thread's CPU mask, then
/// restores it on destruction if pin() was called. Parallel regions that
/// pin worker threads MUST use this — OpenMP reuses its workers across
/// regions, so a leaked single-CPU mask would serialize every subsequent
/// parallel region on that worker (the sampler pool's original
/// pinned-startup bug).
class ScopedAffinity {
 public:
  ScopedAffinity();
  ~ScopedAffinity();
  ScopedAffinity(const ScopedAffinity&) = delete;
  ScopedAffinity& operator=(const ScopedAffinity&) = delete;

  /// pin_current_thread_to_cpu + arm the destructor's restore.
  bool pin(int cpu);

 private:
  bool saved_ = false;
  bool pinned_ = false;
#ifdef __linux__
  unsigned char mask_[128];  // large enough for cpu_set_t
#endif
};

/// Per-core private (L2) data-cache size in bytes, read from sysfs at
/// first call; falls back to the paper's 256 KiB when undetectable. The
/// feature-partitioned propagation sizes Q against this (Theorem 2's
/// S_cache).
std::size_t private_cache_bytes();

/// Static range split: chunk `i` of `p` over [0, n) → [begin, end).
/// Distributes the remainder over the first (n % p) chunks.
struct Range {
  std::int64_t begin;
  std::int64_t end;
};
Range split_range(std::int64_t n, int p, int i);

/// Collects the first exception thrown inside a parallel team so it can
/// be rethrown on the launching thread. An exception escaping an OpenMP
/// region body terminates the process (and escaping a plain std::thread
/// calls std::terminate), so team members wrap their body in run() and
/// the launcher calls rethrow_if_any() after the join:
///
///   ExceptionCollector errors;
///   parallel_for(n, p, [&](std::int64_t i) { errors.run([&] { work(i); }); });
///   errors.rethrow_if_any();
class ExceptionCollector {
 public:
  template <class F>
  void run(F&& body) noexcept EXCLUDES(mu_) {
    try {
      body();
    } catch (...) {
      MutexLock lock(mu_);
      if (!first_) first_ = std::current_exception();
    }
  }

  bool failed() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return static_cast<bool>(first_);
  }

  /// Rethrow the first captured exception, if any (call after the join).
  void rethrow_if_any() EXCLUDES(mu_) {
    std::exception_ptr e;
    {
      MutexLock lock(mu_);
      e = first_;
    }
    if (e) std::rethrow_exception(e);
  }

 private:
  mutable Mutex mu_;
  std::exception_ptr first_ GUARDED_BY(mu_);
};

/// SPMD region: body(tid, num_threads) runs once on each of `threads`
/// team members (threads <= 0 → max_threads()).
template <class F>
void parallel_region(int threads, F&& body) {
  const int p = resolve_threads(threads);
  if (p <= 1) {  // skip fork/join entirely — a 1-thread region is overhead
    body(0, 1);
    return;
  }
#ifdef GSGCN_THREAD_BACKEND
  std::vector<std::thread> team;
  team.reserve(static_cast<std::size_t>(p) - 1);
  for (int t = 1; t < p; ++t) {
    team.emplace_back([&body, t, p] { body(t, p); });
  }
  body(0, p);
  for (auto& th : team) th.join();
#else
#pragma omp parallel num_threads(p)
  { body(omp_get_thread_num(), omp_get_num_threads()); }
#endif
}

/// Statically-scheduled loop: body(i) for i in [0, n), contiguous chunks.
template <class F>
void parallel_for(std::int64_t n, int threads, F&& body) {
  if (n <= 0) return;
  int p = resolve_threads(threads);
  if (static_cast<std::int64_t>(p) > n) p = static_cast<int>(n);
  if (p <= 1) {
    for (std::int64_t i = 0; i < n; ++i) body(i);
    return;
  }
#ifdef GSGCN_THREAD_BACKEND
  parallel_region(p, [&body, n](int tid, int nt) {
    const Range r = split_range(n, nt, tid);
    for (std::int64_t i = r.begin; i < r.end; ++i) body(i);
  });
#else
#pragma omp parallel for num_threads(p) schedule(static)
  for (std::int64_t i = 0; i < n; ++i) body(i);
#endif
}

/// Statically-scheduled loop over contiguous ranges: body(begin, end)
/// runs once per team member on its split_range chunk. Use instead of
/// parallel_for when the body is a dense inner loop the compiler should
/// vectorize — handing it the whole [begin, end) range keeps the SIMD
/// loop intact instead of re-entering a per-index callback. The chunking
/// is identical to parallel_for's schedule(static), so any computation
/// that is chunk-order-independent gives bit-identical results under
/// either helper and any thread count.
template <class F>
void parallel_for_ranges(std::int64_t n, int threads, F&& body) {
  if (n <= 0) return;
  int p = resolve_threads(threads);
  if (static_cast<std::int64_t>(p) > n) p = static_cast<int>(n);
  parallel_region(p, [&body, n](int tid, int nt) {
    const Range r = split_range(n, nt, tid);
    if (r.begin < r.end) body(r.begin, r.end);
  });
}

/// Dynamically-scheduled loop for irregular per-iteration cost: body(i)
/// for i in [0, n), iterations handed out one at a time.
template <class F>
void parallel_for_dynamic(std::int64_t n, int threads, F&& body) {
  if (n <= 0) return;
  int p = resolve_threads(threads);
  if (static_cast<std::int64_t>(p) > n) p = static_cast<int>(n);
  if (p <= 1) {
    for (std::int64_t i = 0; i < n; ++i) body(i);
    return;
  }
#ifdef GSGCN_THREAD_BACKEND
  std::atomic<std::int64_t> next{0};
  parallel_region(p, [&body, &next, n](int, int) {
    for (std::int64_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      body(i);
    }
  });
#else
#pragma omp parallel for num_threads(p) schedule(dynamic)
  for (std::int64_t i = 0; i < n; ++i) body(i);
#endif
}

}  // namespace gsgcn::util

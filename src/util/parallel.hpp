#pragma once
// Thin OpenMP helpers.
//
// All parallelism in the library goes through OpenMP; these helpers keep
// the call sites tidy and make thread counts controllable per-region
// (the scaling benches sweep thread counts without touching the global
// OMP_NUM_THREADS environment).

#include <cstddef>
#include <cstdint>

namespace gsgcn::util {

/// Max threads OpenMP would give a parallel region right now.
int max_threads();

/// Hardware concurrency as OpenMP sees it (omp_get_num_procs).
int num_procs();

/// Current thread id inside a parallel region (0 outside).
int thread_id();

/// True if called from inside an active parallel region.
bool in_parallel();

/// RAII override of the OpenMP thread count: regions opened while this is
/// alive use `n` threads; the previous max is restored on destruction.
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(int n);
  ~ScopedNumThreads();
  ScopedNumThreads(const ScopedNumThreads&) = delete;
  ScopedNumThreads& operator=(const ScopedNumThreads&) = delete;

 private:
  int previous_;
};

/// Pin the calling thread to logical CPU `cpu % num_procs()`. Returns
/// false when unsupported or denied (containerized/cgroup setups); never
/// throws — pinning is an optimization, not a correctness requirement.
/// The paper binds one sampler to one core so its Dashboard stays in that
/// core's private cache.
bool pin_current_thread_to_cpu(int cpu);

/// Per-core private (L2) data-cache size in bytes, read from sysfs at
/// first call; falls back to the paper's 256 KiB when undetectable. The
/// feature-partitioned propagation sizes Q against this (Theorem 2's
/// S_cache).
std::size_t private_cache_bytes();

/// Static range split: chunk `i` of `p` over [0, n) → [begin, end).
/// Distributes the remainder over the first (n % p) chunks.
struct Range {
  std::int64_t begin;
  std::int64_t end;
};
Range split_range(std::int64_t n, int p, int i);

}  // namespace gsgcn::util

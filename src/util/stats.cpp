#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace gsgcn::util {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double median(std::vector<double> xs) { return percentile(std::move(xs), 50.0); }

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double chi_square_statistic(const std::vector<double>& observed,
                            const std::vector<double>& expected) {
  assert(observed.size() == expected.size());
  double stat = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    if (expected[i] < 1e-12) continue;
    const double d = observed[i] - expected[i];
    stat += d * d / expected[i];
  }
  return stat;
}

double chi_square_critical(std::size_t df, double alpha) {
  // Wilson–Hilferty: chi2_df ≈ df * (1 - 2/(9df) + z*sqrt(2/(9df)))^3,
  // where z is the standard-normal quantile at 1-alpha, computed with the
  // Beasley–Springer–Moro rational approximation (central branch plus the
  // log-log tail; covers the alpha range the tests use, [1e-4, 0.1]).
  if (df == 0) return 0.0;  // chi-square with 0 dof is a point mass at 0
  const double p = 1.0 - alpha;
  static const double a[] = {2.50662823884, -18.61500062529, 41.39119773534,
                             -25.44106049637};
  static const double b[] = {-8.47351093090, 23.08336743743, -21.06224101826,
                             3.13082909833};
  static const double c[] = {0.3374754822726147, 0.9761690190917186,
                             0.1607979714918209, 0.0276438810333863,
                             0.0038405729373609, 0.0003951896511919,
                             0.0000321767881768, 0.0000002888167364,
                             0.0000003960315187};
  double z;
  const double y = p - 0.5;
  if (std::abs(y) < 0.42) {
    const double r = y * y;
    z = y * (((a[3] * r + a[2]) * r + a[1]) * r + a[0]) /
        ((((b[3] * r + b[2]) * r + b[1]) * r + b[0]) * r + 1.0);
  } else {
    double r = p > 0.5 ? 1.0 - p : p;
    r = std::log(-std::log(r));
    double t = c[0];
    double rp = 1.0;
    for (int i = 1; i < 9; ++i) {
      rp *= r;
      t += c[i] * rp;
    }
    z = p > 0.5 ? t : -t;
  }
  const double d = static_cast<double>(df);
  const double term = 1.0 - 2.0 / (9.0 * d) + z * std::sqrt(2.0 / (9.0 * d));
  return d * term * term * term;
}

}  // namespace gsgcn::util

#include "util/env.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "util/parallel.hpp"

namespace gsgcn::util {

bool parse_int64(const std::string& s, std::int64_t& out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno == ERANGE) return false;               // over/underflow
  if (end != s.c_str() + s.size()) return false;   // trailing garbage
  if (end == s.c_str()) return false;              // nothing consumed
  out = static_cast<std::int64_t>(v);
  return true;
}

bool parse_double(const std::string& s, double& out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno == ERANGE) return false;
  if (end != s.c_str() + s.size()) return false;
  if (end == s.c_str()) return false;
  if (!std::isfinite(v)) return false;  // reject "inf"/"nan" knob values
  out = v;
  return true;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::string(v) : fallback;
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  std::int64_t out = 0;
  if (!parse_int64(v, out)) {
    throw std::runtime_error(std::string(name) + ": invalid integer '" + v +
                             "'");
  }
  return out;
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  double out = 0.0;
  if (!parse_double(v, out)) {
    throw std::runtime_error(std::string(name) + ": invalid number '" + v +
                             "'");
  }
  return out;
}

double dataset_scale() {
  return std::clamp(env_double("GSGCN_SCALE", 1.0), 0.01, 100.0);
}

int bench_max_threads() {
  return static_cast<int>(
      env_int("GSGCN_MAX_THREADS", static_cast<std::int64_t>(num_procs())));
}

std::uint64_t global_seed() {
  return static_cast<std::uint64_t>(env_int("GSGCN_SEED", 42));
}

}  // namespace gsgcn::util

#include "util/env.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/parallel.hpp"

namespace gsgcn::util {

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::string(v) : fallback;
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoll(v, nullptr, 10) : fallback;
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtod(v, nullptr) : fallback;
}

double dataset_scale() {
  return std::clamp(env_double("GSGCN_SCALE", 1.0), 0.01, 100.0);
}

int bench_max_threads() {
  return static_cast<int>(
      env_int("GSGCN_MAX_THREADS", static_cast<std::int64_t>(num_procs())));
}

std::uint64_t global_seed() {
  return static_cast<std::uint64_t>(env_int("GSGCN_SEED", 42));
}

}  // namespace gsgcn::util

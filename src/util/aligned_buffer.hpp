#pragma once
// Cache-line / SIMD aligned owning buffer.
//
// The sampler Dashboard and the tensor library both want 64-byte aligned
// storage so AVX2 loads never split cache lines. std::vector cannot
// guarantee alignment beyond alignof(std::max_align_t), hence this tiny
// RAII wrapper around ::operator new(std::align_val_t).

#include <cstddef>
#include <new>
#include <utility>

namespace gsgcn::util {

inline constexpr std::size_t kCacheLine = 64;

/// Owning, 64-byte aligned, uninitialized buffer of trivially-copyable T.
/// Move-only. size() is in elements, not bytes.
template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t n) { reset(n); }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      destroy();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  ~AlignedBuffer() { destroy(); }

  /// Discard contents and reallocate to n elements (uninitialized).
  void reset(std::size_t n) {
    destroy();
    if (n > 0) {
      data_ = static_cast<T*>(
          ::operator new(n * sizeof(T), std::align_val_t{kCacheLine}));
    }
    size_ = n;
  }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  T* begin() noexcept { return data_; }
  T* end() noexcept { return data_ + size_; }
  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + size_; }

 private:
  void destroy() noexcept {
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t{kCacheLine});
      data_ = nullptr;
    }
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace gsgcn::util

#pragma once
// Shared CRC-32 frame codec — one hardened parser for every length-prefixed
// binary envelope in the repo.
//
// A frame is a fixed 24-byte little-endian header followed by the payload:
//
//   offset  size  field
//   0       8     magic    (format discriminator, e.g. "gsgnckp1")
//   8       4     version  (format revision; readers reject unknown)
//   12      8     size     (payload byte count)
//   20      4     crc      (CRC-32/IEEE of the payload bytes)
//
// The layout is byte-identical to the PR-4 checkpoint header, so existing
// checkpoint files remain readable; the online serving protocol reuses the
// same codec with its own magic, which means the torn-write / bad-magic /
// bad-CRC handling that the checkpoint corruption tests hardened is
// exactly the code parsing untrusted bytes off the network.
//
// Decoding is incremental: try_decode never consumes bytes on kNeedMore,
// so a socket read loop can append chunks of any size and re-poll. Every
// reject reason is a distinct status — a parser that collapses "garbage"
// and "keep reading" into one code either stalls or kills good
// connections.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace gsgcn::util {

/// Per-format parameters. `max_payload` bounds the size field before any
/// allocation happens: a corrupt/hostile length can never OOM the reader.
struct FrameSpec {
  std::uint64_t magic = 0;
  std::uint32_t version = 1;
  std::uint64_t max_payload = 1ull << 34;
};

inline constexpr std::size_t kFrameHeaderBytes = 24;

enum class FrameStatus {
  kOk,          // one complete valid frame decoded
  kNeedMore,    // prefix is consistent so far; read more bytes
  kBadMagic,    // first 8 bytes are not this format
  kBadVersion,  // right format, unknown revision
  kTooLarge,    // size field exceeds spec.max_payload
  kBadCrc,      // payload present but checksum mismatch
};

const char* frame_status_name(FrameStatus s);

/// Header + payload as one contiguous buffer (appends to nothing; returns
/// the framed bytes). Throws std::invalid_argument if payload exceeds
/// spec.max_payload.
std::string frame_encode(const FrameSpec& spec, std::string_view payload);

/// Try to decode one frame from the front of [data, data+n). On kOk,
/// `payload` receives the payload bytes and `consumed` the total frame
/// size (header + payload); both are untouched otherwise. kNeedMore means
/// the bytes so far are a valid prefix — append and retry. Any other
/// status is a permanent reject of this buffer.
FrameStatus frame_try_decode(const FrameSpec& spec, const char* data,
                             std::size_t n, std::string& payload,
                             std::size_t& consumed);

/// Whole-buffer variant for file formats: exactly one frame, trailing
/// bytes after the frame are tolerated (a torn rewrite may leave them).
/// Returns kNeedMore when the buffer ends mid-frame (i.e. truncated).
FrameStatus frame_decode_buffer(const FrameSpec& spec, std::string_view buf,
                                std::string& payload);

}  // namespace gsgcn::util

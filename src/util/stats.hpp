#pragma once
// Descriptive statistics + the chi-square goodness-of-fit statistic used
// by the sampler-distribution property tests.

#include <cstddef>
#include <vector>

namespace gsgcn::util {

double mean(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);  // sample stddev (n-1)
double median(std::vector<double> xs);         // by copy: partial_sort
double percentile(std::vector<double> xs, double p);  // p in [0,100]

/// Pearson chi-square statistic: sum over bins of (obs-exp)^2 / exp.
/// Bins with expected < 1e-12 are skipped (they carry no information).
double chi_square_statistic(const std::vector<double>& observed,
                            const std::vector<double>& expected);

/// Upper critical value of the chi-square distribution at significance
/// alpha via the Wilson–Hilferty normal approximation — accurate enough
/// for df >= 5, which is all the tests need.
double chi_square_critical(std::size_t degrees_of_freedom, double alpha);

}  // namespace gsgcn::util

#pragma once
// Machine-checked invariants — the library's correctness floor.
//
// Every module states its structural invariants through these macros:
// CSR well-formedness, Dashboard slot bookkeeping, pool queue state,
// feature-partition coverage, NaN/Inf-free activations. In checked
// builds (Debug, any GSGCN_SANITIZE configuration, or -DGSGCN_CHECKS=ON)
// a violation prints the failing expression with file:line and aborts,
// so sanitizer CI catches logic errors in the same run that catches
// memory errors and races. In Release the macros compile to nothing —
// the condition expression is NOT evaluated, so checks may be as
// expensive as a full O(n+m) structure validation without taxing the
// hot path.
//
// Macro summary:
//   GSGCN_ASSERT(cond, msg)               general invariant
//   GSGCN_CHECK_BOUNDS(idx, size)         0 <= idx < size (any int types)
//   GSGCN_CHECK_FINITE(x)                 scalar is neither NaN nor Inf
//   GSGCN_CHECK_FINITE_RANGE(ptr, n, what) float range is NaN/Inf-free
//
// `gsgcn::util::checks_enabled()` reports the compiled-in mode so tests
// can branch on it (see tests/test_check.cpp).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <type_traits>

#if defined(GSGCN_ENABLE_CHECKS)
#define GSGCN_CHECKS_ENABLED 1
#else
#define GSGCN_CHECKS_ENABLED 0
#endif

namespace gsgcn::util {

constexpr bool checks_enabled() { return GSGCN_CHECKS_ENABLED != 0; }

[[noreturn]] inline void check_fail(const char* file, int line,
                                    const char* kind, const char* expr,
                                    const char* msg) {
  std::fprintf(stderr, "%s:%d: %s(%s) failed%s%s\n", file, line, kind, expr,
               (msg != nullptr && msg[0] != '\0') ? ": " : "",
               msg != nullptr ? msg : "");
  std::fflush(stderr);
  std::abort();
}

template <class I, class S>
inline void check_bounds(I idx, S size, const char* file, int line,
                         const char* expr) {
  bool ok;
  if constexpr (std::is_signed_v<I>) {
    ok = idx >= 0 && static_cast<unsigned long long>(idx) <
                         static_cast<unsigned long long>(size);
  } else {
    ok = static_cast<unsigned long long>(idx) <
         static_cast<unsigned long long>(size);
  }
  if (!ok) {
    std::fprintf(stderr,
                 "%s:%d: GSGCN_CHECK_BOUNDS(%s) failed: index %lld, size "
                 "%llu\n",
                 file, line, expr, static_cast<long long>(idx),
                 static_cast<unsigned long long>(size));
    std::fflush(stderr);
    std::abort();
  }
}

template <class T>
inline void check_finite_value(T x, const char* file, int line,
                               const char* expr) {
  if (!std::isfinite(static_cast<double>(x))) {
    std::fprintf(stderr, "%s:%d: GSGCN_CHECK_FINITE(%s) failed: value %g\n",
                 file, line, expr, static_cast<double>(x));
    std::fflush(stderr);
    std::abort();
  }
}

inline void check_finite_range(const float* p, std::size_t n, const char* file,
                               int line, const char* what) {
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(p[i])) {
      std::fprintf(
          stderr,
          "%s:%d: GSGCN_CHECK_FINITE_RANGE(%s) failed: entry %zu is %g\n",
          file, line, what, i, static_cast<double>(p[i]));
      std::fflush(stderr);
      std::abort();
    }
  }
}

}  // namespace gsgcn::util

#if GSGCN_CHECKS_ENABLED

#define GSGCN_ASSERT(cond, msg)                                             \
  ((cond) ? static_cast<void>(0)                                            \
          : ::gsgcn::util::check_fail(__FILE__, __LINE__, "GSGCN_ASSERT",   \
                                      #cond, (msg)))
#define GSGCN_CHECK_BOUNDS(idx, size) \
  ::gsgcn::util::check_bounds((idx), (size), __FILE__, __LINE__, #idx "," #size)
#define GSGCN_CHECK_FINITE(x) \
  ::gsgcn::util::check_finite_value((x), __FILE__, __LINE__, #x)
#define GSGCN_CHECK_FINITE_RANGE(ptr, n, what) \
  ::gsgcn::util::check_finite_range((ptr), (n), __FILE__, __LINE__, (what))

#else

// Release: expand to nothing; operands are NOT evaluated.
#define GSGCN_ASSERT(cond, msg) static_cast<void>(0)
#define GSGCN_CHECK_BOUNDS(idx, size) static_cast<void>(0)
#define GSGCN_CHECK_FINITE(x) static_cast<void>(0)
#define GSGCN_CHECK_FINITE_RANGE(ptr, n, what) static_cast<void>(0)

#endif  // GSGCN_CHECKS_ENABLED

#pragma once
// Fast, reproducible pseudo-random number generation.
//
// The frontier sampler spends a large fraction of its time drawing random
// indices (the paper's COST_rand term), so the generator must be cheap:
// xoshiro256** produces 64 random bits in a handful of ALU ops, far cheaper
// than std::mt19937_64, while passing BigCrush. splitmix64 is used to seed
// it (and to derive decorrelated per-thread streams from a single seed).

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace gsgcn::util {

/// splitmix64: used for seeding and stream derivation.
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna). Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
  }

  /// Derive the i-th decorrelated stream from a base seed. Each sampler
  /// thread gets its own stream so parallel runs are reproducible.
  static Xoshiro256 stream(std::uint64_t seed, std::uint64_t i) noexcept {
    std::uint64_t sm = seed ^ (0x9e3779b97f4a7c15ULL * (i + 1));
    Xoshiro256 g(splitmix64(sm));
    return g;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound), bound > 0. Lemire's multiply-shift
  /// (biased by < 2^-32 for bound < 2^32; fine for sampling work).
  std::uint32_t below(std::uint32_t bound) noexcept {
    const std::uint64_t x = (*this)() >> 32;
    return static_cast<std::uint32_t>((x * bound) >> 32);
  }

  /// Raw engine state for checkpointing. Restoring drops any cached
  /// normal() spare, so save/restore is exact for the uniform draws the
  /// training paths use (dropout masks, samplers); a stream interrupted
  /// between the two halves of a normal() pair re-derives both halves.
  std::array<std::uint64_t, 4> state() const noexcept { return s_; }
  void set_state(const std::array<std::uint64_t, 4>& s) noexcept {
    s_ = s;
    has_spare_ = false;
    spare_ = 0.0;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float uniformf() noexcept {
    return static_cast<float>((*this)() >> 40) * 0x1.0p-24f;
  }

  /// Standard normal via Marsaglia polar method.
  double normal() noexcept {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * uniform() - 1.0;
      v = 2.0 * uniform() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    has_spare_ = true;
    return u * mul;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

/// Fisher–Yates permutation of {0, …, n−1}.
std::vector<std::uint32_t> random_permutation(std::uint32_t n, Xoshiro256& rng);

/// k distinct values drawn uniformly from {0, …, n−1} (k ≤ n).
/// Uses Floyd's algorithm: O(k) expected time, no O(n) scratch.
std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n,
                                                      std::uint32_t k,
                                                      Xoshiro256& rng);

}  // namespace gsgcn::util

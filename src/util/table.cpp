#include "util/table.hpp"

#include <cstdio>
#include <iostream>
#include <sstream>

namespace gsgcn::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& s) {
  rows_.back().push_back(s);
  return *this;
}

Table& Table::cell(const char* s) { return cell(std::string(s)); }

Table& Table::cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return cell(std::string(buf));
}

Table& Table::cell(std::int64_t v) {
  return cell(std::to_string(v));
}

std::string Table::str() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string();
      os << "| " << s << std::string(width[c] - s.size() + 1, ' ');
    }
    os << "|\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < width.size(); ++c) {
    os << "|" << std::string(width[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void Table::print(const std::string& title) const {
  std::cout << "\n== " << title << " ==\n" << str() << std::flush;
}

std::string speedup_str(double x, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*fx", precision, x);
  return std::string(buf);
}

}  // namespace gsgcn::util

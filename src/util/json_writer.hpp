#pragma once
// Minimal streaming JSON emission (and a validator for tests/CI).
//
// Everything machine-readable this library writes — Chrome trace files,
// JSONL telemetry records, the benches' BENCH_*.json artifacts — goes
// through JsonWriter so escaping and number formatting are correct in
// exactly one place. The writer appends to a caller-owned std::string;
// comma placement is tracked with a small nesting stack, so call order is
// the only contract: key() before every value inside an object, values
// back-to-back inside an array.
//
// Doubles are emitted shortest-round-trip (std::to_chars); NaN/Inf have
// no JSON encoding and are written as null.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gsgcn::util {

/// Escape for use inside a JSON string literal (quotes not included).
std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  /// Appends to *out; the caller keeps ownership and may interleave
  /// multiple writers only sequentially.
  explicit JsonWriter(std::string* out);

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  JsonWriter& key(std::string_view k);

  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value_null();
  /// Splice an already-encoded JSON value verbatim (e.g. a nested
  /// document produced by another writer).
  JsonWriter& value_raw(std::string_view json);

 private:
  void before_value();
  std::string* out_;
  // One entry per open container: whether a comma is due before the next
  // element at that depth.
  std::vector<bool> comma_due_;
  bool key_pending_ = false;
};

/// True iff `text` is exactly one syntactically valid JSON value
/// (surrounding whitespace allowed). Recursive descent with a depth cap;
/// no allocation. Used by the obs tests and available to tooling.
bool json_valid(std::string_view text);

}  // namespace gsgcn::util

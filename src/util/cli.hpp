#pragma once
// Minimal command-line flag parsing for the examples and bench binaries.
// Flags are --name=value or --name value; unknown flags are an error so
// typos surface immediately.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gsgcn::util {

/// Parsed --key=value flags with typed, defaulted accessors.
class Cli {
 public:
  /// Parse argv. Throws std::invalid_argument on malformed input.
  Cli(int argc, char** argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  /// Numeric getters are strict: trailing garbage or out-of-range values
  /// throw std::invalid_argument naming the flag, never truncate.
  std::int64_t get(const std::string& key, std::int64_t fallback) const;
  int get(const std::string& key, int fallback) const;
  double get(const std::string& key, double fallback) const;
  bool get(const std::string& key, bool fallback) const;

  /// Duration flag in milliseconds. Accepts `500us`, `50ms`, `2s`, `1.5s`,
  /// or a bare non-negative number (already milliseconds). Same strict
  /// whole-token contract as the numeric getters: trailing garbage,
  /// negative values, and unknown suffixes throw std::invalid_argument
  /// naming the flag.
  double get_duration_ms(const std::string& key, double fallback_ms) const;

  /// Keys the caller never read — used to reject typo'd flags.
  std::vector<std::string> unused() const;

  /// The parser behind get_duration_ms, exposed for tests and env knobs:
  /// returns false on anything but one whole token of
  /// <non-negative finite number>[us|ms|s].
  static bool parse_duration_ms(const std::string& text, double& out_ms);

  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> kv_;
  mutable std::map<std::string, bool> used_;
};

}  // namespace gsgcn::util

#pragma once
// Annotated synchronization primitives for Clang thread-safety analysis.
//
// std::mutex / std::condition_variable / std::lock_guard carry no
// capability attributes, so code built on them is invisible to
// `-Wthread-safety`. These thin wrappers are drop-in functional
// equivalents (same underlying primitives, zero added state) whose
// methods declare their lock effects, making GUARDED_BY declarations on
// shared members enforceable at compile time under the `tsafety` preset.
//
// Usage map from the std idioms this repo used before:
//
//   std::mutex mu_;                      →  util::Mutex mu_;
//   std::lock_guard<std::mutex> lk(mu_)  →  util::MutexLock lock(mu_);
//   std::unique_lock + manual un/relock  →  MutexLock + Unlock()/Lock()
//   cv.wait(unique_lock, pred)           →  cv_.wait(mu_, pred)   // holding mu_
//
// CondVar waits take the Mutex directly (REQUIRES(mu)): internally the
// wait adopts the already-held std::mutex into a std::unique_lock for the
// duration of the block and releases ownership back on wake, so from the
// caller's (and the analysis') perspective the lock is held continuously
// across the wait, exactly like the std idiom. Wait predicates execute
// with the lock held but inside a lambda the analysis treats as an
// unrelated function — start each predicate with `mu_.AssertHeld();` to
// re-teach it that fact (see thread_annotations.hpp conventions).

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace gsgcn::util {

class CondVar;

/// Annotated exclusive mutex (wraps std::mutex).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Analysis-only assertion that the calling context holds this mutex;
  /// generates no code. Required as the first statement of every CondVar
  /// wait predicate (the analysis cannot see a lambda's calling context).
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Annotated RAII lock (wraps lock/unlock of util::Mutex). Supports the
/// std::unique_lock unlock-relock idiom via Unlock()/Lock() so hot paths
/// can drop the lock around expensive work without losing analysis
/// coverage of the re-acquired region.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() {
    if (held_) mu_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily release the lock (must currently be held).
  void Unlock() RELEASE() {
    held_ = false;
    mu_.unlock();
  }
  /// Re-acquire after Unlock().
  void Lock() ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_ = true;
};

/// Annotated condition variable paired with util::Mutex.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Block until `pred()` holds; the caller holds `mu`, which is released
  /// while blocked and held again both when `pred` runs and on return.
  template <class Pred>
  void wait(Mutex& mu, Pred pred) REQUIRES(mu) {
    // Adopt the caller's held lock for the wait, then release ownership
    // back without unlocking: the capability never actually lapses.
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    try {
      cv_.wait(lk, std::move(pred));
    } catch (...) {
      // The standard re-acquires the lock before a predicate exception
      // propagates; hand ownership back so it is not unlocked twice.
      lk.release();
      throw;
    }
    lk.release();
  }

  /// Timed variant: block until `pred()` holds or `deadline` passes.
  /// Returns pred()'s value at wake (false means the deadline expired
  /// with the predicate still false). Same adopt/release discipline as
  /// wait() — the capability never lapses from the caller's view. The
  /// admission queue's batch-window collection is built on this.
  template <class Clock, class Duration, class Pred>
  bool wait_until(Mutex& mu,
                  const std::chrono::time_point<Clock, Duration>& deadline,
                  Pred pred) REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    bool satisfied = false;
    try {
      satisfied = cv_.wait_until(lk, deadline, std::move(pred));
    } catch (...) {
      lk.release();
      throw;
    }
    lk.release();
    return satisfied;
  }

  template <class Rep, class Period, class Pred>
  bool wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& dur,
                Pred pred) REQUIRES(mu) {
    return wait_until(mu, std::chrono::steady_clock::now() + dur,
                      std::move(pred));
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace gsgcn::util

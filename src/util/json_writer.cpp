#include "util/json_writer.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace gsgcn::util {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through untouched
        }
    }
  }
  return out;
}

JsonWriter::JsonWriter(std::string* out) : out_(out) {}

void JsonWriter::before_value() {
  if (key_pending_) {
    key_pending_ = false;
    return;  // the key already placed the comma
  }
  if (!comma_due_.empty()) {
    if (comma_due_.back()) out_->push_back(',');
    comma_due_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_->push_back('{');
  comma_due_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  comma_due_.pop_back();
  out_->push_back('}');
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_->push_back('[');
  comma_due_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  comma_due_.pop_back();
  out_->push_back(']');
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (!comma_due_.empty()) {
    if (comma_due_.back()) out_->push_back(',');
    comma_due_.back() = true;
  }
  out_->push_back('"');
  *out_ += json_escape(k);
  out_->push_back('"');
  out_->push_back(':');
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return value_null();  // JSON has no NaN/Inf
  before_value();
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out_->append(buf, res.ptr);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out_->append(buf, res.ptr);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  *out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_->push_back('"');
  *out_ += json_escape(v);
  out_->push_back('"');
  return *this;
}

JsonWriter& JsonWriter::value_null() {
  before_value();
  *out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::value_raw(std::string_view json) {
  before_value();
  *out_ += json;
  return *this;
}

// ---------------------------------------------------------------------------
// Validator: recursive descent over the grammar of RFC 8259, depth-capped.
// ---------------------------------------------------------------------------

namespace {

struct Parser {
  std::string_view s;
  std::size_t i = 0;
  int depth = 0;
  static constexpr int kMaxDepth = 256;

  bool eof() const { return i >= s.size(); }
  char peek() const { return s[i]; }

  void skip_ws() {
    while (!eof() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                      s[i] == '\r')) {
      ++i;
    }
  }

  bool literal(std::string_view word) {
    if (s.substr(i, word.size()) != word) return false;
    i += word.size();
    return true;
  }

  bool string() {
    if (eof() || s[i] != '"') return false;
    ++i;
    while (!eof()) {
      const char c = s[i];
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '"') {
        ++i;
        return true;
      }
      if (c == '\\') {
        ++i;
        if (eof()) return false;
        const char e = s[i];
        if (e == 'u') {
          for (int k = 1; k <= 4; ++k) {
            if (i + static_cast<std::size_t>(k) >= s.size() ||
                !std::isxdigit(static_cast<unsigned char>(
                    s[i + static_cast<std::size_t>(k)]))) {
              return false;
            }
          }
          i += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++i;
    }
    return false;  // unterminated
  }

  bool digits() {
    if (eof() || !std::isdigit(static_cast<unsigned char>(s[i]))) return false;
    while (!eof() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
    return true;
  }

  bool number() {
    if (!eof() && s[i] == '-') ++i;
    if (eof()) return false;
    if (s[i] == '0') {
      ++i;
    } else if (!digits()) {
      return false;
    }
    if (!eof() && s[i] == '.') {
      ++i;
      if (!digits()) return false;
    }
    if (!eof() && (s[i] == 'e' || s[i] == 'E')) {
      ++i;
      if (!eof() && (s[i] == '+' || s[i] == '-')) ++i;
      if (!digits()) return false;
    }
    return true;
  }

  bool value() {
    if (++depth > kMaxDepth) return false;
    skip_ws();
    if (eof()) return false;
    bool ok = false;
    switch (peek()) {
      case '{': ok = object(); break;
      case '[': ok = array(); break;
      case '"': ok = string(); break;
      case 't': ok = literal("true"); break;
      case 'f': ok = literal("false"); break;
      case 'n': ok = literal("null"); break;
      default: ok = number(); break;
    }
    --depth;
    return ok;
  }

  bool object() {
    ++i;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++i;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (eof() || s[i] != ':') return false;
      ++i;
      if (!value()) return false;
      skip_ws();
      if (eof()) return false;
      if (s[i] == ',') {
        ++i;
        continue;
      }
      if (s[i] == '}') {
        ++i;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++i;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++i;
      return true;
    }
    for (;;) {
      if (!value()) return false;
      skip_ws();
      if (eof()) return false;
      if (s[i] == ',') {
        ++i;
        continue;
      }
      if (s[i] == ']') {
        ++i;
        return true;
      }
      return false;
    }
  }
};

}  // namespace

bool json_valid(std::string_view text) {
  Parser p{text};
  if (!p.value()) return false;
  p.skip_ws();
  return p.eof();
}

}  // namespace gsgcn::util

#include "util/cli.hpp"

#include <cctype>
#include <limits>
#include <stdexcept>

#include "util/env.hpp"

namespace gsgcn::util {

Cli::Cli(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("expected --flag, got: " + arg);
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      kv_[arg] = argv[++i];
    } else {
      kv_[arg] = "true";  // bare flag
    }
  }
}

bool Cli::has(const std::string& key) const {
  used_[key] = true;
  return kv_.count(key) > 0;
}

std::string Cli::get(const std::string& key, const std::string& fallback) const {
  used_[key] = true;
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : it->second;
}

std::int64_t Cli::get(const std::string& key, std::int64_t fallback) const {
  used_[key] = true;
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  std::int64_t out = 0;
  if (!parse_int64(it->second, out)) {
    throw std::invalid_argument("--" + key + ": invalid integer '" +
                                it->second + "'");
  }
  return out;
}

int Cli::get(const std::string& key, int fallback) const {
  const std::int64_t v = get(key, static_cast<std::int64_t>(fallback));
  if (v < std::numeric_limits<int>::min() ||
      v > std::numeric_limits<int>::max()) {
    throw std::invalid_argument("--" + key + ": value " + std::to_string(v) +
                                " out of int range");
  }
  return static_cast<int>(v);
}

double Cli::get(const std::string& key, double fallback) const {
  used_[key] = true;
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  double out = 0.0;
  if (!parse_double(it->second, out)) {
    throw std::invalid_argument("--" + key + ": invalid number '" +
                                it->second + "'");
  }
  return out;
}

bool Cli::get(const std::string& key, bool fallback) const {
  used_[key] = true;
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

bool Cli::parse_duration_ms(const std::string& text, double& out_ms) {
  if (text.empty()) return false;
  // Split off a letter suffix; the numeric part reuses the strict
  // whole-token parser so "1e3ms", "  2s", and "2 s" behave exactly like
  // every other numeric flag (the first accepted, the others rejected).
  std::size_t num_end = text.size();
  while (num_end > 0 && (std::isalpha(static_cast<unsigned char>(
                            text[num_end - 1])) != 0)) {
    --num_end;
  }
  const std::string suffix = text.substr(num_end);
  double scale_to_ms = 1.0;  // bare number = milliseconds
  if (suffix == "us") {
    scale_to_ms = 1e-3;
  } else if (suffix == "ms" || suffix.empty()) {
    scale_to_ms = 1.0;
  } else if (suffix == "s") {
    scale_to_ms = 1e3;
  } else {
    return false;
  }
  double value = 0.0;
  if (!parse_double(text.substr(0, num_end), value)) return false;
  if (value < 0.0) return false;
  out_ms = value * scale_to_ms;
  return true;
}

double Cli::get_duration_ms(const std::string& key, double fallback_ms) const {
  used_[key] = true;
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback_ms;
  double ms = 0.0;
  if (!parse_duration_ms(it->second, ms)) {
    throw std::invalid_argument("--" + key + ": invalid duration '" +
                                it->second +
                                "' (want e.g. 500us, 50ms, 2s, or a plain "
                                "number of milliseconds)");
  }
  return ms;
}

std::vector<std::string> Cli::unused() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : kv_) {
    (void)v;
    if (used_.count(k) == 0) out.push_back(k);
  }
  return out;
}

}  // namespace gsgcn::util

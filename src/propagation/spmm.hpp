#pragma once
// Intra-subgraph feature propagation kernels ((A^(ℓ))ᵀ · H of Algorithm 1).
//
// The aggregator is the neighbor MEAN (paper Section II-A step 1): for
// every subgraph vertex v,  out[v] = (1/deg v) Σ_{u ∈ N(v)} in[u].
// The backward operator propagates gradients the opposite way:
// dIn[u] = Σ_{v ∈ N(u)} dOut[v] / deg(v). Both stream CSR rows and do
// random reads on the dense operand, exactly the access pattern Section V
// models. Degree-0 vertices aggregate to zero.
//
// Every gather-style entry point below bottoms out in the tiled::
// row-block kernel: per destination row, 32-float column chunks are
// accumulated in four ymm registers across the whole neighbor list and
// stored once, with the degree normalization fused into the store (the
// way ReLU was fused into the GEMM epilogue). One store pass instead of
// the old memset + per-neighbor read-modify-write + scale passes — the
// kernel is bandwidth-bound, so that is where the speedup lives.

#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "tensor/matrix.hpp"

namespace gsgcn::propagation {

/// Neighbor-aggregation semantics.
///   kMean:      out[v] = (1/deg v) Σ in[u]          (the paper's choice)
///   kSum:       out[v] = Σ in[u]
///   kSymmetric: out[v] = Σ in[u] / √(deg v · deg u)  (Kipf-GCN norm,
///               self-adjoint: forward and backward are the same operator)
enum class AggregatorKind { kMean, kSum, kSymmetric };

const char* aggregator_name(AggregatorKind kind);

/// Generic forward aggregation, parallel over destination vertices.
/// in and out must both be |V| x f and must not alias.
void aggregate_forward(const graph::CsrGraph& g, AggregatorKind kind,
                       const tensor::Matrix& in, tensor::Matrix& out,
                       int threads = 0);

/// Gradient (transpose operator) of aggregate_forward.
void aggregate_backward(const graph::CsrGraph& g, AggregatorKind kind,
                        const tensor::Matrix& d_out, tensor::Matrix& d_in,
                        int threads = 0);

/// Forward mean aggregation, parallel over destination vertices.
/// in and out must both be |V| x f and must not alias.
void aggregate_mean_forward(const graph::CsrGraph& g,
                            const tensor::Matrix& in, tensor::Matrix& out,
                            int threads = 0);

/// Gradient of aggregate_mean_forward. d_in and d_out are |V| x f.
void aggregate_mean_backward(const graph::CsrGraph& g,
                             const tensor::Matrix& d_out,
                             tensor::Matrix& d_in, int threads = 0);

/// Edge-centric forward aggregation (the X-Stream paradigm of the paper's
/// related work [8]): streams the edge list once and scatters
/// contributions to destination rows, instead of gathering per
/// destination. Races are avoided by giving each thread a contiguous
/// destination range and streaming only the edges that land in it —
/// which is exactly why the paper prefers gather-style kernels for
/// *small* sampled graphs: the per-thread edge scan is redundant work.
/// Included as the paradigm comparator for the propagation ablation.
void aggregate_forward_edge_centric(const graph::CsrGraph& g,
                                    AggregatorKind kind,
                                    const tensor::Matrix& in,
                                    tensor::Matrix& out, int threads = 0);

/// The row-block tiled kernel underneath every gather-style path above
/// (and the partitioned/2-D schemes in feature_partitioned.hpp). All
/// aggregators reduce to one form:
///   out[v][j] = s_v · Σ_{u ∈ N(v)} w[u] · in[u][j]
/// with a per-SOURCE weight table w (nullptr ⇒ w ≡ 1) and a per-DEST
/// epilogue scale s_v fused into the store:
///   sum (fwd = bwd):   w ≡ 1,          s_v = 1
///   mean forward:      w ≡ 1,          s_v = 1/deg v
///   mean backward:     w[u] = 1/deg u, s_v = 1
///   symmetric (= bwd): w[u] = 1/√deg u, s_v = 1/√deg v
/// Accumulation order is always CSR neighbor order and every column sees
/// the identical FMA/add chain regardless of which chunk width (32-wide,
/// 8-wide, scalar tail) or slice computed it, so results are bit-identical
/// for any Q, any row block, and any thread count — which is what lets
/// the measured-Q autotuner vary Q without touching numerics.
namespace tiled {

/// Row-block granularity the aggregate_* wrappers parallelize over.
inline constexpr std::int64_t kRowBlock = 64;

/// Per-source weight table for (kind, backward), or empty when the path
/// needs none (sum always; mean forward, whose 1/deg is the epilogue).
std::vector<float> source_weights(const graph::CsrGraph& g,
                                  AggregatorKind kind, bool backward,
                                  int threads = 0);

/// Aggregate rows [row_begin, row_end) × columns [col_begin, col_end).
/// src_weights must be source_weights(g, kind, backward).data() when that
/// table is non-empty and nullptr otherwise.
void aggregate_rows(const graph::CsrGraph& g, AggregatorKind kind,
                    bool backward, const tensor::Matrix& in,
                    tensor::Matrix& out, graph::Vid row_begin,
                    graph::Vid row_end, std::size_t col_begin,
                    std::size_t col_end, const float* src_weights);

/// Same kernel over an explicit vertex list (propagate_2d's tiles).
void aggregate_rows(const graph::CsrGraph& g, AggregatorKind kind,
                    bool backward, const tensor::Matrix& in,
                    tensor::Matrix& out, std::span<const graph::Vid> rows,
                    std::size_t col_begin, std::size_t col_end,
                    const float* src_weights);

}  // namespace tiled

/// Serial, double-accumulated references for tests.
namespace reference {
void aggregate_mean_forward(const graph::CsrGraph& g,
                            const tensor::Matrix& in, tensor::Matrix& out);
void aggregate_mean_backward(const graph::CsrGraph& g,
                             const tensor::Matrix& d_out,
                             tensor::Matrix& d_in);
void aggregate_forward(const graph::CsrGraph& g, AggregatorKind kind,
                       const tensor::Matrix& in, tensor::Matrix& out);
void aggregate_backward(const graph::CsrGraph& g, AggregatorKind kind,
                        const tensor::Matrix& d_out, tensor::Matrix& d_in);
}  // namespace reference

}  // namespace gsgcn::propagation

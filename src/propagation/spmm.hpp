#pragma once
// Intra-subgraph feature propagation kernels ((A^(ℓ))ᵀ · H of Algorithm 1).
//
// The aggregator is the neighbor MEAN (paper Section II-A step 1): for
// every subgraph vertex v,  out[v] = (1/deg v) Σ_{u ∈ N(v)} in[u].
// The backward operator propagates gradients the opposite way:
// dIn[u] = Σ_{v ∈ N(u)} dOut[v] / deg(v). Both stream CSR rows and do
// random reads on the dense operand, exactly the access pattern Section V
// models. Degree-0 vertices aggregate to zero.

#include "graph/csr.hpp"
#include "tensor/matrix.hpp"

namespace gsgcn::propagation {

/// Neighbor-aggregation semantics.
///   kMean:      out[v] = (1/deg v) Σ in[u]          (the paper's choice)
///   kSum:       out[v] = Σ in[u]
///   kSymmetric: out[v] = Σ in[u] / √(deg v · deg u)  (Kipf-GCN norm,
///               self-adjoint: forward and backward are the same operator)
enum class AggregatorKind { kMean, kSum, kSymmetric };

const char* aggregator_name(AggregatorKind kind);

/// Generic forward aggregation, parallel over destination vertices.
/// in and out must both be |V| x f and must not alias.
void aggregate_forward(const graph::CsrGraph& g, AggregatorKind kind,
                       const tensor::Matrix& in, tensor::Matrix& out,
                       int threads = 0);

/// Gradient (transpose operator) of aggregate_forward.
void aggregate_backward(const graph::CsrGraph& g, AggregatorKind kind,
                        const tensor::Matrix& d_out, tensor::Matrix& d_in,
                        int threads = 0);

/// Forward mean aggregation, parallel over destination vertices.
/// in and out must both be |V| x f and must not alias.
void aggregate_mean_forward(const graph::CsrGraph& g,
                            const tensor::Matrix& in, tensor::Matrix& out,
                            int threads = 0);

/// Gradient of aggregate_mean_forward. d_in and d_out are |V| x f.
void aggregate_mean_backward(const graph::CsrGraph& g,
                             const tensor::Matrix& d_out,
                             tensor::Matrix& d_in, int threads = 0);

/// Edge-centric forward aggregation (the X-Stream paradigm of the paper's
/// related work [8]): streams the edge list once and scatters
/// contributions to destination rows, instead of gathering per
/// destination. Races are avoided by giving each thread a contiguous
/// destination range and streaming only the edges that land in it —
/// which is exactly why the paper prefers gather-style kernels for
/// *small* sampled graphs: the per-thread edge scan is redundant work.
/// Included as the paradigm comparator for the propagation ablation.
void aggregate_forward_edge_centric(const graph::CsrGraph& g,
                                    AggregatorKind kind,
                                    const tensor::Matrix& in,
                                    tensor::Matrix& out, int threads = 0);

/// Serial, double-accumulated references for tests.
namespace reference {
void aggregate_mean_forward(const graph::CsrGraph& g,
                            const tensor::Matrix& in, tensor::Matrix& out);
void aggregate_mean_backward(const graph::CsrGraph& g,
                             const tensor::Matrix& d_out,
                             tensor::Matrix& d_in);
void aggregate_forward(const graph::CsrGraph& g, AggregatorKind kind,
                       const tensor::Matrix& in, tensor::Matrix& out);
void aggregate_backward(const graph::CsrGraph& g, AggregatorKind kind,
                        const tensor::Matrix& d_out, tensor::Matrix& d_in);
}  // namespace reference

}  // namespace gsgcn::propagation

#pragma once
// Communication-cost model of paper Section V-B / Theorem 2.
//
// After partitioning the subgraph into P vertex parts and each feature
// vector into Q slices, one propagation pass moves
//   g_comm(P, Q) = idx_bytes·Q·n·d  +  elem_bytes·P·n·f·γ_P   bytes
// between DRAM and cache (first term: the CSR neighbor lists streamed once
// per feature slice; second term: the source-feature working sets loaded
// once per vertex part). Theorem 2: with P = 1 and
// Q* = max{C, elem_bytes·n·f / S_cache}, g_comm ≤ 2 · min g_comm whenever
// C ≤ (elem_bytes/idx_bytes)·f/d and idx_bytes·n·d ≤ S_cache.

#include <cstddef>
#include <cstdint>

namespace gsgcn::propagation {

struct CommModelParams {
  std::int64_t n = 0;          // subgraph vertices
  double d = 0.0;              // subgraph average degree
  std::int64_t f = 0;          // feature length
  std::size_t elem_bytes = 8;  // paper: DOUBLE features
  std::size_t idx_bytes = 2;   // paper: INT16 subgraph vertex indices
  std::size_t cache_bytes = 256 * 1024;  // private L2 per core
  int processors = 1;          // C
};

/// Total compute work n·d·f (independent of the partitioning — the model's
/// g_comp).
double g_comp(const CommModelParams& m);

/// Modeled communication volume in bytes for a (P, Q) partitioning with
/// source-set expansion ratio gamma_p (γ_P ∈ [1/P, 1]).
double g_comm(const CommModelParams& m, int p, int q, double gamma_p);

/// The paper's feature-only choice Q* = max{C, ⌈elem_bytes·n·f/S_cache⌉},
/// clamped to at most f (never more slices than features). Deliberately
/// NOT rounded up to a multiple of C — that can break the 2-approximation.
/// Throws if cache_bytes is 0 or processors < 1.
int choose_feature_partitions(const CommModelParams& m);

/// Lower bound elem_bytes·n·f on g_comm over all (P, Q, γ) — the quantity
/// Theorem 2's 2-approximation is measured against.
double g_comm_lower_bound(const CommModelParams& m);

/// True iff Theorem 2's preconditions hold: C ≤ (elem/idx)·f/(2d)·…  —
/// in the paper's constants (elem=8, idx=2): C ≤ 4f/d and 2nd ≤ S_cache.
bool theorem2_preconditions(const CommModelParams& m);

}  // namespace gsgcn::propagation

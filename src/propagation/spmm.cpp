#include "propagation/spmm.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "util/check.hpp"
#include "util/parallel.hpp"

#ifdef GSGCN_AVX2
#include <immintrin.h>
#endif

namespace gsgcn::propagation {

namespace {

void check_shapes(const graph::CsrGraph& g, const tensor::Matrix& a,
                  const tensor::Matrix& b, const char* what) {
  if (a.rows() != g.num_vertices() || b.rows() != g.num_vertices() ||
      a.cols() != b.cols()) {
    throw std::invalid_argument(std::string(what) + ": shape mismatch");
  }
  if (a.data() == b.data()) {
    throw std::invalid_argument(std::string(what) + ": in/out must not alias");
  }
}

/// dst[0..f) += s * src[0..f)
inline void axpy_row(float* dst, const float* src, std::size_t f, float s) {
#ifdef GSGCN_AVX2
  const __m256 vs = _mm256_set1_ps(s);
  std::size_t j = 0;
  for (; j + 8 <= f; j += 8) {
    _mm256_storeu_ps(dst + j, _mm256_fmadd_ps(vs, _mm256_loadu_ps(src + j),
                                              _mm256_loadu_ps(dst + j)));
  }
  for (; j < f; ++j) dst[j] += s * src[j];
#else
  for (std::size_t j = 0; j < f; ++j) dst[j] += s * src[j];
#endif
}

inline void add_row(float* dst, const float* src, std::size_t f) {
#ifdef GSGCN_AVX2
  std::size_t j = 0;
  for (; j + 8 <= f; j += 8) {
    _mm256_storeu_ps(dst + j, _mm256_add_ps(_mm256_loadu_ps(dst + j),
                                            _mm256_loadu_ps(src + j)));
  }
  for (; j < f; ++j) dst[j] += src[j];
#else
  for (std::size_t j = 0; j < f; ++j) dst[j] += src[j];
#endif
}

inline void scale_row(float* dst, std::size_t f, float s) {
  for (std::size_t j = 0; j < f; ++j) dst[j] *= s;
}

}  // namespace

const char* aggregator_name(AggregatorKind kind) {
  switch (kind) {
    case AggregatorKind::kMean: return "mean";
    case AggregatorKind::kSum: return "sum";
    case AggregatorKind::kSymmetric: return "symmetric";
  }
  return "?";
}

void aggregate_forward(const graph::CsrGraph& g, AggregatorKind kind,
                       const tensor::Matrix& in, tensor::Matrix& out,
                       int threads) {
  if (kind == AggregatorKind::kMean) {
    aggregate_mean_forward(g, in, out, threads);
    return;
  }
  check_shapes(g, in, out, "aggregate_forward");
  const graph::Vid n = g.num_vertices();
  const std::size_t f = in.cols();
  const bool symmetric = kind == AggregatorKind::kSymmetric;
  util::parallel_for(static_cast<std::int64_t>(n), threads, [&](std::int64_t i) {
    const auto v = static_cast<graph::Vid>(i);
    float* dst = out.row(v);
    std::memset(dst, 0, f * sizeof(float));
    const auto nbrs = g.neighbors(v);
    if (nbrs.empty()) return;
    if (symmetric) {
      const float inv_sqrt_dv =
          1.0f / std::sqrt(static_cast<float>(nbrs.size()));
      for (const graph::Vid u : nbrs) {
        GSGCN_CHECK_BOUNDS(u, n);
        const float w =
            inv_sqrt_dv / std::sqrt(static_cast<float>(g.degree(u)));
        axpy_row(dst, in.row(u), f, w);
      }
    } else {  // kSum
      for (const graph::Vid u : nbrs) {
        GSGCN_CHECK_BOUNDS(u, n);
        add_row(dst, in.row(u), f);
      }
    }
  });
}

void aggregate_backward(const graph::CsrGraph& g, AggregatorKind kind,
                        const tensor::Matrix& d_out, tensor::Matrix& d_in,
                        int threads) {
  switch (kind) {
    case AggregatorKind::kMean:
      aggregate_mean_backward(g, d_out, d_in, threads);
      return;
    case AggregatorKind::kSum:
      // Sum over an undirected graph is self-adjoint.
      aggregate_forward(g, AggregatorKind::kSum, d_out, d_in, threads);
      return;
    case AggregatorKind::kSymmetric:
      // Symmetric normalization is self-adjoint by construction.
      aggregate_forward(g, AggregatorKind::kSymmetric, d_out, d_in, threads);
      return;
  }
}

void aggregate_forward_edge_centric(const graph::CsrGraph& g,
                                    AggregatorKind kind,
                                    const tensor::Matrix& in,
                                    tensor::Matrix& out, int threads) {
  check_shapes(g, in, out, "aggregate_forward_edge_centric");
  const graph::Vid n = g.num_vertices();
  const std::size_t f = in.cols();
  out.set_zero();
  util::parallel_region(threads, [&](int tid, int nt) {
    const auto range = util::split_range(n, nt, tid);
    // Stream all edges; scatter only those whose destination falls in
    // this thread's range (no write races, full edge scan per thread).
    for (graph::Vid src = 0; src < n; ++src) {
      const float* src_row = in.row(src);
      for (const graph::Vid dst : g.neighbors(src)) {
        GSGCN_CHECK_BOUNDS(dst, n);
        if (dst < range.begin || dst >= static_cast<graph::Vid>(range.end)) {
          continue;
        }
        float w = 1.0f;
        if (kind == AggregatorKind::kMean) {
          w = 1.0f / static_cast<float>(g.degree(dst));
        } else if (kind == AggregatorKind::kSymmetric) {
          w = 1.0f / std::sqrt(static_cast<float>(g.degree(dst)) *
                               static_cast<float>(g.degree(src)));
        }
        axpy_row(out.row(dst), src_row, f, w);
      }
    }
  });
}

void aggregate_mean_forward(const graph::CsrGraph& g, const tensor::Matrix& in,
                            tensor::Matrix& out, int threads) {
  check_shapes(g, in, out, "aggregate_mean_forward");
  const graph::Vid n = g.num_vertices();
  const std::size_t f = in.cols();
  util::parallel_for(static_cast<std::int64_t>(n), threads, [&](std::int64_t i) {
    const auto v = static_cast<graph::Vid>(i);
    float* dst = out.row(v);
    std::memset(dst, 0, f * sizeof(float));
    const auto nbrs = g.neighbors(v);
    if (nbrs.empty()) return;
    for (const graph::Vid u : nbrs) {
      GSGCN_CHECK_BOUNDS(u, n);
      add_row(dst, in.row(u), f);
    }
    scale_row(dst, f, 1.0f / static_cast<float>(nbrs.size()));
  });
}

void aggregate_mean_backward(const graph::CsrGraph& g,
                             const tensor::Matrix& d_out, tensor::Matrix& d_in,
                             int threads) {
  check_shapes(g, d_out, d_in, "aggregate_mean_backward");
  const graph::Vid n = g.num_vertices();
  const std::size_t f = d_out.cols();
  // Parallel over u (gradient destinations): the graph is undirected, so
  // N(u) gives exactly the v's whose forward aggregation read u.
  util::parallel_for(static_cast<std::int64_t>(n), threads, [&](std::int64_t i) {
    const auto u = static_cast<graph::Vid>(i);
    float* dst = d_in.row(u);
    std::memset(dst, 0, f * sizeof(float));
    for (const graph::Vid v : g.neighbors(u)) {
      GSGCN_CHECK_BOUNDS(v, n);
      const float s = 1.0f / static_cast<float>(g.degree(v));
      axpy_row(dst, d_out.row(v), f, s);
    }
  });
}

namespace reference {

void aggregate_mean_forward(const graph::CsrGraph& g, const tensor::Matrix& in,
                            tensor::Matrix& out) {
  check_shapes(g, in, out, "reference::aggregate_mean_forward");
  const std::size_t f = in.cols();
  for (graph::Vid v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    for (std::size_t j = 0; j < f; ++j) {
      double s = 0.0;
      for (const graph::Vid u : nbrs) s += in(u, j);
      out(v, j) = nbrs.empty()
                      ? 0.0f
                      : static_cast<float>(s / static_cast<double>(nbrs.size()));
    }
  }
}

void aggregate_mean_backward(const graph::CsrGraph& g,
                             const tensor::Matrix& d_out,
                             tensor::Matrix& d_in) {
  check_shapes(g, d_out, d_in, "reference::aggregate_mean_backward");
  const std::size_t f = d_out.cols();
  for (graph::Vid u = 0; u < g.num_vertices(); ++u) {
    for (std::size_t j = 0; j < f; ++j) {
      double s = 0.0;
      for (const graph::Vid v : g.neighbors(u)) {
        s += static_cast<double>(d_out(v, j)) / static_cast<double>(g.degree(v));
      }
      d_in(u, j) = static_cast<float>(s);
    }
  }
}

void aggregate_forward(const graph::CsrGraph& g, AggregatorKind kind,
                       const tensor::Matrix& in, tensor::Matrix& out) {
  check_shapes(g, in, out, "reference::aggregate_forward");
  const std::size_t f = in.cols();
  for (graph::Vid v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    for (std::size_t j = 0; j < f; ++j) {
      double s = 0.0;
      for (const graph::Vid u : nbrs) {
        double w = 1.0;
        if (kind == AggregatorKind::kMean) {
          w = 1.0 / static_cast<double>(nbrs.size());
        } else if (kind == AggregatorKind::kSymmetric) {
          w = 1.0 / std::sqrt(static_cast<double>(nbrs.size()) *
                              static_cast<double>(g.degree(u)));
        }
        s += w * in(u, j);
      }
      out(v, j) = static_cast<float>(s);
    }
  }
}

void aggregate_backward(const graph::CsrGraph& g, AggregatorKind kind,
                        const tensor::Matrix& d_out, tensor::Matrix& d_in) {
  check_shapes(g, d_out, d_in, "reference::aggregate_backward");
  const std::size_t f = d_out.cols();
  for (graph::Vid u = 0; u < g.num_vertices(); ++u) {
    for (std::size_t j = 0; j < f; ++j) {
      double s = 0.0;
      for (const graph::Vid v : g.neighbors(u)) {
        double w = 1.0;
        if (kind == AggregatorKind::kMean) {
          w = 1.0 / static_cast<double>(g.degree(v));
        } else if (kind == AggregatorKind::kSymmetric) {
          w = 1.0 / std::sqrt(static_cast<double>(g.degree(v)) *
                              static_cast<double>(g.degree(u)));
        }
        s += w * d_out(v, j);
      }
      d_in(u, j) = static_cast<float>(s);
    }
  }
}

}  // namespace reference

}  // namespace gsgcn::propagation

#include "propagation/spmm.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "util/check.hpp"
#include "util/parallel.hpp"

#ifdef GSGCN_AVX2
#include <immintrin.h>
#endif

namespace gsgcn::propagation {

namespace {

void check_shapes(const graph::CsrGraph& g, const tensor::Matrix& a,
                  const tensor::Matrix& b, const char* what) {
  if (a.rows() != g.num_vertices() || b.rows() != g.num_vertices() ||
      a.cols() != b.cols()) {
    throw std::invalid_argument(std::string(what) + ": shape mismatch");
  }
  // Zero-sized matrices may legitimately share a null data pointer.
  if (a.size() != 0 && a.data() == b.data()) {
    throw std::invalid_argument(std::string(what) + ": in/out must not alias");
  }
}

/// dst[0..f) += s * src[0..f)
inline void axpy_row(float* dst, const float* src, std::size_t f, float s) {
#ifdef GSGCN_AVX2
  const __m256 vs = _mm256_set1_ps(s);
  std::size_t j = 0;
  for (; j + 8 <= f; j += 8) {
    _mm256_storeu_ps(dst + j, _mm256_fmadd_ps(vs, _mm256_loadu_ps(src + j),
                                              _mm256_loadu_ps(dst + j)));
  }
  for (; j < f; ++j) dst[j] += s * src[j];
#else
  for (std::size_t j = 0; j < f; ++j) dst[j] += s * src[j];
#endif
}

// ---- tiled row-block kernel ----------------------------------------------

/// Epilogue scale fused into the store of each output chunk.
enum class RowScale { kNone, kInvDegree, kRsqrtDegree };

RowScale row_scale(AggregatorKind kind, bool backward) {
  if (kind == AggregatorKind::kSymmetric) return RowScale::kRsqrtDegree;
  if (kind == AggregatorKind::kMean && !backward) return RowScale::kInvDegree;
  return RowScale::kNone;
}

bool needs_weights(AggregatorKind kind, bool backward) {
  return kind == AggregatorKind::kSymmetric ||
         (kind == AggregatorKind::kMean && backward);
}

/// One destination row over columns [c0, c1):
///   dst[j] = s_v · Σ_{u ∈ N(v)} w[u] · in[u][j]
/// Column chunks accumulate in registers across the whole neighbor list
/// and store once — no memset pass, no read-modify-write per neighbor, no
/// separate scale pass. Bit-identity contract (see spmm.hpp): the 32-wide,
/// 8-wide and scalar paths all apply the same per-element chain — FMA per
/// neighbor when weighted, plain add when not, one multiply at the end —
/// so slice boundaries cannot change any element's value.
void tiled_row(const graph::CsrGraph& g, graph::Vid v,
               const tensor::Matrix& in, tensor::Matrix& out, std::size_t c0,
               std::size_t c1, const float* w, RowScale scale) {
  float* dst = out.row(v) + c0;
  const std::size_t len = c1 - c0;
  const auto nbrs = g.neighbors(v);
  if (nbrs.empty()) {
    std::memset(dst, 0, len * sizeof(float));
    return;
  }
  float s = 1.0f;
  if (scale == RowScale::kInvDegree) {
    s = 1.0f / static_cast<float>(nbrs.size());
  } else if (scale == RowScale::kRsqrtDegree) {
    s = 1.0f / std::sqrt(static_cast<float>(nbrs.size()));
  }
  const bool scaled = scale != RowScale::kNone;
  const graph::Vid n [[maybe_unused]] = g.num_vertices();
  std::size_t j = 0;
#ifdef GSGCN_AVX2
  const __m256 vs = _mm256_set1_ps(s);
  for (; j + 32 <= len; j += 32) {
    __m256 a0 = _mm256_setzero_ps();
    __m256 a1 = _mm256_setzero_ps();
    __m256 a2 = _mm256_setzero_ps();
    __m256 a3 = _mm256_setzero_ps();
    if (w != nullptr) {
      for (const graph::Vid u : nbrs) {
        GSGCN_CHECK_BOUNDS(u, n);
        const float* src = in.row(u) + c0 + j;
        const __m256 vw = _mm256_set1_ps(w[u]);
        a0 = _mm256_fmadd_ps(vw, _mm256_loadu_ps(src), a0);
        a1 = _mm256_fmadd_ps(vw, _mm256_loadu_ps(src + 8), a1);
        a2 = _mm256_fmadd_ps(vw, _mm256_loadu_ps(src + 16), a2);
        a3 = _mm256_fmadd_ps(vw, _mm256_loadu_ps(src + 24), a3);
      }
    } else {
      for (const graph::Vid u : nbrs) {
        GSGCN_CHECK_BOUNDS(u, n);
        const float* src = in.row(u) + c0 + j;
        a0 = _mm256_add_ps(a0, _mm256_loadu_ps(src));
        a1 = _mm256_add_ps(a1, _mm256_loadu_ps(src + 8));
        a2 = _mm256_add_ps(a2, _mm256_loadu_ps(src + 16));
        a3 = _mm256_add_ps(a3, _mm256_loadu_ps(src + 24));
      }
    }
    if (scaled) {
      a0 = _mm256_mul_ps(a0, vs);
      a1 = _mm256_mul_ps(a1, vs);
      a2 = _mm256_mul_ps(a2, vs);
      a3 = _mm256_mul_ps(a3, vs);
    }
    _mm256_storeu_ps(dst + j, a0);
    _mm256_storeu_ps(dst + j + 8, a1);
    _mm256_storeu_ps(dst + j + 16, a2);
    _mm256_storeu_ps(dst + j + 24, a3);
  }
  for (; j + 8 <= len; j += 8) {
    __m256 a = _mm256_setzero_ps();
    if (w != nullptr) {
      for (const graph::Vid u : nbrs) {
        GSGCN_CHECK_BOUNDS(u, n);
        a = _mm256_fmadd_ps(_mm256_set1_ps(w[u]),
                            _mm256_loadu_ps(in.row(u) + c0 + j), a);
      }
    } else {
      for (const graph::Vid u : nbrs) {
        GSGCN_CHECK_BOUNDS(u, n);
        a = _mm256_add_ps(a, _mm256_loadu_ps(in.row(u) + c0 + j));
      }
    }
    if (scaled) a = _mm256_mul_ps(a, vs);
    _mm256_storeu_ps(dst + j, a);
  }
#endif
  // Scalar tail (and the whole row when AVX2 is off). std::fma compiles to
  // vfmadd under -mfma and mirrors the vector lanes exactly.
  for (; j < len; ++j) {
    float a = 0.0f;
    if (w != nullptr) {
      for (const graph::Vid u : nbrs) {
        GSGCN_CHECK_BOUNDS(u, n);
        a = std::fma(w[u], in.row(u)[c0 + j], a);
      }
    } else {
      for (const graph::Vid u : nbrs) {
        GSGCN_CHECK_BOUNDS(u, n);
        a += in.row(u)[c0 + j];
      }
    }
    dst[j] = scaled ? a * s : a;
  }
}

/// Row-block dispatch shared by the aggregate_* entry points: full feature
/// width, parallel over blocks of kRowBlock destination rows.
void aggregate_tiled(const graph::CsrGraph& g, AggregatorKind kind,
                     bool backward, const tensor::Matrix& in,
                     tensor::Matrix& out, int threads) {
  const auto n = static_cast<std::int64_t>(g.num_vertices());
  const std::size_t f = in.cols();
  const std::vector<float> w = tiled::source_weights(g, kind, backward, threads);
  const float* wp = w.empty() ? nullptr : w.data();
  const std::int64_t blocks = (n + tiled::kRowBlock - 1) / tiled::kRowBlock;
  util::parallel_for(blocks, threads, [&](std::int64_t b) {
    const auto r0 = static_cast<graph::Vid>(b * tiled::kRowBlock);
    const auto r1 = static_cast<graph::Vid>(
        std::min<std::int64_t>(n, (b + 1) * tiled::kRowBlock));
    tiled::aggregate_rows(g, kind, backward, in, out, r0, r1, 0, f, wp);
  });
}

}  // namespace

namespace tiled {

std::vector<float> source_weights(const graph::CsrGraph& g,
                                  AggregatorKind kind, bool backward,
                                  int threads) {
  std::vector<float> w;
  if (!needs_weights(kind, backward)) return w;
  const auto n = static_cast<std::int64_t>(g.num_vertices());
  const bool symmetric = kind == AggregatorKind::kSymmetric;
  w.resize(static_cast<std::size_t>(n));
  util::parallel_for(n, threads, [&](std::int64_t i) {
    const auto d = static_cast<float>(g.degree(static_cast<graph::Vid>(i)));
    // Isolated vertices never appear as a neighbor, so their entry is moot;
    // 0 keeps the table finite either way.
    if (d == 0.0f) {
      w[static_cast<std::size_t>(i)] = 0.0f;
    } else {
      w[static_cast<std::size_t>(i)] = symmetric ? 1.0f / std::sqrt(d)
                                                 : 1.0f / d;
    }
  });
  return w;
}

void aggregate_rows(const graph::CsrGraph& g, AggregatorKind kind,
                    bool backward, const tensor::Matrix& in,
                    tensor::Matrix& out, graph::Vid row_begin,
                    graph::Vid row_end, std::size_t col_begin,
                    std::size_t col_end, const float* src_weights) {
  GSGCN_ASSERT((src_weights != nullptr) == needs_weights(kind, backward),
               "tiled::aggregate_rows: weight table does not match path");
  const RowScale scale = row_scale(kind, backward);
  for (graph::Vid v = row_begin; v < row_end; ++v) {
    tiled_row(g, v, in, out, col_begin, col_end, src_weights, scale);
  }
}

void aggregate_rows(const graph::CsrGraph& g, AggregatorKind kind,
                    bool backward, const tensor::Matrix& in,
                    tensor::Matrix& out, std::span<const graph::Vid> rows,
                    std::size_t col_begin, std::size_t col_end,
                    const float* src_weights) {
  GSGCN_ASSERT((src_weights != nullptr) == needs_weights(kind, backward),
               "tiled::aggregate_rows: weight table does not match path");
  const RowScale scale = row_scale(kind, backward);
  for (const graph::Vid v : rows) {
    tiled_row(g, v, in, out, col_begin, col_end, src_weights, scale);
  }
}

}  // namespace tiled

const char* aggregator_name(AggregatorKind kind) {
  switch (kind) {
    case AggregatorKind::kMean: return "mean";
    case AggregatorKind::kSum: return "sum";
    case AggregatorKind::kSymmetric: return "symmetric";
  }
  return "?";
}

void aggregate_forward(const graph::CsrGraph& g, AggregatorKind kind,
                       const tensor::Matrix& in, tensor::Matrix& out,
                       int threads) {
  check_shapes(g, in, out, "aggregate_forward");
  aggregate_tiled(g, kind, /*backward=*/false, in, out, threads);
}

void aggregate_backward(const graph::CsrGraph& g, AggregatorKind kind,
                        const tensor::Matrix& d_out, tensor::Matrix& d_in,
                        int threads) {
  // Sum and symmetric normalization are self-adjoint on an undirected
  // graph; mean flips the 1/deg from the destination to the source, which
  // the weight table expresses — all three are one tiled call.
  check_shapes(g, d_out, d_in, "aggregate_backward");
  aggregate_tiled(g, kind, /*backward=*/true, d_out, d_in, threads);
}

void aggregate_forward_edge_centric(const graph::CsrGraph& g,
                                    AggregatorKind kind,
                                    const tensor::Matrix& in,
                                    tensor::Matrix& out, int threads) {
  check_shapes(g, in, out, "aggregate_forward_edge_centric");
  const graph::Vid n = g.num_vertices();
  const std::size_t f = in.cols();
  out.set_zero();
  util::parallel_region(threads, [&](int tid, int nt) {
    const auto range = util::split_range(n, nt, tid);
    // Stream all edges; scatter only those whose destination falls in
    // this thread's range (no write races, full edge scan per thread).
    for (graph::Vid src = 0; src < n; ++src) {
      const float* src_row = in.row(src);
      for (const graph::Vid dst : g.neighbors(src)) {
        GSGCN_CHECK_BOUNDS(dst, n);
        if (dst < range.begin || dst >= static_cast<graph::Vid>(range.end)) {
          continue;
        }
        float w = 1.0f;
        if (kind == AggregatorKind::kMean) {
          w = 1.0f / static_cast<float>(g.degree(dst));
        } else if (kind == AggregatorKind::kSymmetric) {
          w = 1.0f / std::sqrt(static_cast<float>(g.degree(dst)) *
                               static_cast<float>(g.degree(src)));
        }
        axpy_row(out.row(dst), src_row, f, w);
      }
    }
  });
}

void aggregate_mean_forward(const graph::CsrGraph& g, const tensor::Matrix& in,
                            tensor::Matrix& out, int threads) {
  check_shapes(g, in, out, "aggregate_mean_forward");
  aggregate_tiled(g, AggregatorKind::kMean, /*backward=*/false, in, out,
                  threads);
}

void aggregate_mean_backward(const graph::CsrGraph& g,
                             const tensor::Matrix& d_out, tensor::Matrix& d_in,
                             int threads) {
  // Parallel over u (gradient destinations): the graph is undirected, so
  // N(u) gives exactly the v's whose forward aggregation read u.
  check_shapes(g, d_out, d_in, "aggregate_mean_backward");
  aggregate_tiled(g, AggregatorKind::kMean, /*backward=*/true, d_out, d_in,
                  threads);
}

namespace reference {

void aggregate_mean_forward(const graph::CsrGraph& g, const tensor::Matrix& in,
                            tensor::Matrix& out) {
  check_shapes(g, in, out, "reference::aggregate_mean_forward");
  const std::size_t f = in.cols();
  for (graph::Vid v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    for (std::size_t j = 0; j < f; ++j) {
      double s = 0.0;
      for (const graph::Vid u : nbrs) s += in(u, j);
      out(v, j) = nbrs.empty()
                      ? 0.0f
                      : static_cast<float>(s / static_cast<double>(nbrs.size()));
    }
  }
}

void aggregate_mean_backward(const graph::CsrGraph& g,
                             const tensor::Matrix& d_out,
                             tensor::Matrix& d_in) {
  check_shapes(g, d_out, d_in, "reference::aggregate_mean_backward");
  const std::size_t f = d_out.cols();
  for (graph::Vid u = 0; u < g.num_vertices(); ++u) {
    for (std::size_t j = 0; j < f; ++j) {
      double s = 0.0;
      for (const graph::Vid v : g.neighbors(u)) {
        s += static_cast<double>(d_out(v, j)) / static_cast<double>(g.degree(v));
      }
      d_in(u, j) = static_cast<float>(s);
    }
  }
}

void aggregate_forward(const graph::CsrGraph& g, AggregatorKind kind,
                       const tensor::Matrix& in, tensor::Matrix& out) {
  check_shapes(g, in, out, "reference::aggregate_forward");
  const std::size_t f = in.cols();
  for (graph::Vid v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    for (std::size_t j = 0; j < f; ++j) {
      double s = 0.0;
      for (const graph::Vid u : nbrs) {
        double w = 1.0;
        if (kind == AggregatorKind::kMean) {
          w = 1.0 / static_cast<double>(nbrs.size());
        } else if (kind == AggregatorKind::kSymmetric) {
          w = 1.0 / std::sqrt(static_cast<double>(nbrs.size()) *
                              static_cast<double>(g.degree(u)));
        }
        s += w * in(u, j);
      }
      out(v, j) = static_cast<float>(s);
    }
  }
}

void aggregate_backward(const graph::CsrGraph& g, AggregatorKind kind,
                        const tensor::Matrix& d_out, tensor::Matrix& d_in) {
  check_shapes(g, d_out, d_in, "reference::aggregate_backward");
  const std::size_t f = d_out.cols();
  for (graph::Vid u = 0; u < g.num_vertices(); ++u) {
    for (std::size_t j = 0; j < f; ++j) {
      double s = 0.0;
      for (const graph::Vid v : g.neighbors(u)) {
        double w = 1.0;
        if (kind == AggregatorKind::kMean) {
          w = 1.0 / static_cast<double>(g.degree(v));
        } else if (kind == AggregatorKind::kSymmetric) {
          w = 1.0 / std::sqrt(static_cast<double>(g.degree(v)) *
                              static_cast<double>(g.degree(u)));
        }
        s += w * d_out(v, j);
      }
      d_in(u, j) = static_cast<float>(s);
    }
  }
}

}  // namespace reference

}  // namespace gsgcn::propagation

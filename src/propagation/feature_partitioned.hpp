#pragma once
// Partitioned feature-propagation schemes.
//
// The paper's scheme (Algorithm 6): keep the graph whole (P = 1), split
// the feature dimension into Q = max{C, elem·n·f/S_cache} slices, and
// propagate Q/C rounds of C slices in parallel. Each processor's working
// set (one feature slice of all vertices) fits in its private cache, load
// balance is perfect (all processors do identical work per round), and
// there is no pre-processing.
//
// The 2-D scheme (P vertex parts × Q feature slices) is what the label-
// propagation literature would do; it is implemented here as the
// Theorem-2 ablation's comparator.

#include "graph/csr.hpp"
#include "graph/partition.hpp"
#include "propagation/comm_model.hpp"
#include "propagation/spmm.hpp"
#include "tensor/matrix.hpp"

namespace gsgcn::propagation {

struct FeaturePartitionOptions {
  int threads = 0;     // C (0 = OpenMP max)
  std::size_t cache_bytes = 0;  // per-core private cache; 0 = detect (L2)
  int force_q = 0;     // 0 = use choose_feature_partitions
  AggregatorKind aggregator = AggregatorKind::kMean;
  // Time a few Q candidates around the analytic Q* and keep the fastest,
  // cached per (n, e, f, threads) shape. Only engages when neither force_q
  // nor cache_bytes pins the choice. The tiled kernel is bit-identical for
  // every Q, so the measured pick never changes numerics.
  bool autotune = true;
};

/// Mean aggregation via Algorithm 6 (P = 1, feature-only partitioning).
/// Result identical to aggregate_mean_forward; performance differs.
/// Returns the Q actually used.
int propagate_feature_partitioned(const graph::CsrGraph& g,
                                  const tensor::Matrix& in,
                                  tensor::Matrix& out,
                                  const FeaturePartitionOptions& opts = {});

/// Backward (gradient) pass under the same partitioning.
int propagate_feature_partitioned_backward(
    const graph::CsrGraph& g, const tensor::Matrix& d_out,
    tensor::Matrix& d_in, const FeaturePartitionOptions& opts = {});

/// 2-D partitioned aggregation: vertex partition `parts` × q feature
/// slices, parallel over (part, slice) pairs. Same numerical result as
/// aggregate_forward(kind).
void propagate_2d(const graph::CsrGraph& g, const graph::Partition& parts,
                  int q, AggregatorKind kind, const tensor::Matrix& in,
                  tensor::Matrix& out, int threads = 0);

/// The pre-tiling scalar slice kernels, kept as the measured baseline for
/// bench_propagation (the tiled-vs-legacy CI gate). Always uses the
/// analytic Q — no autotuning.
namespace legacy {
int propagate_feature_partitioned(const graph::CsrGraph& g,
                                  const tensor::Matrix& in,
                                  tensor::Matrix& out,
                                  const FeaturePartitionOptions& opts = {});
int propagate_feature_partitioned_backward(
    const graph::CsrGraph& g, const tensor::Matrix& d_out,
    tensor::Matrix& d_in, const FeaturePartitionOptions& opts = {});
}  // namespace legacy

}  // namespace gsgcn::propagation

#include "propagation/comm_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gsgcn::propagation {

double g_comp(const CommModelParams& m) {
  return static_cast<double>(m.n) * m.d * static_cast<double>(m.f);
}

double g_comm(const CommModelParams& m, int p, int q, double gamma_p) {
  if (p < 1 || q < 1) throw std::invalid_argument("g_comm: P, Q >= 1");
  if (gamma_p < 0.0 || gamma_p > 1.0) {
    throw std::invalid_argument("g_comm: gamma out of [0,1]");
  }
  const double index_traffic = static_cast<double>(m.idx_bytes) * q *
                               static_cast<double>(m.n) * m.d;
  const double feature_traffic = static_cast<double>(m.elem_bytes) * p *
                                 static_cast<double>(m.n) *
                                 static_cast<double>(m.f) * gamma_p;
  return index_traffic + feature_traffic;
}

int choose_feature_partitions(const CommModelParams& m) {
  if (m.processors < 1) throw std::invalid_argument("choose_q: C >= 1");
  if (m.cache_bytes == 0) {
    throw std::invalid_argument("choose_q: S_cache must be positive");
  }
  const double bytes = static_cast<double>(m.elem_bytes) *
                       static_cast<double>(m.n) * static_cast<double>(m.f);
  const int q_cache = static_cast<int>(
      std::ceil(bytes / static_cast<double>(m.cache_bytes)));
  // Q* = max{C, ⌈elem·n·f / S_cache⌉} exactly as in Theorem 2 — rounding Q
  // up further (e.g. to a multiple of C) can break the 2-approximation.
  int q = std::max(m.processors, std::max(1, q_cache));
  // Never more slices than features.
  q = std::min<int>(q, static_cast<int>(std::max<std::int64_t>(1, m.f)));
  return q;
}

double g_comm_lower_bound(const CommModelParams& m) {
  return static_cast<double>(m.elem_bytes) * static_cast<double>(m.n) *
         static_cast<double>(m.f);
}

bool theorem2_preconditions(const CommModelParams& m) {
  // C ≤ 4f/d (paper's constants give the factor elem/(2·idx) = 4/2 → the
  // published form C ≤ 4f/d assumes elem=8, idx=2; generalized:
  // C·idx·d ≤ elem·f/2) and the index stream fits the FULL private cache:
  // idx·n·d ≤ S_cache — the paper's 2nd ≤ S_cache with idx = 2 bytes.
  // (Only the C-bound carries a 1/2; the feature slices are already sized
  // to the cache by Q*, the index stream is what must additionally fit.)
  const double lhs_c = static_cast<double>(m.processors) *
                       static_cast<double>(m.idx_bytes) * m.d;
  const double rhs_c = 0.5 * static_cast<double>(m.elem_bytes) *
                       static_cast<double>(m.f);
  const double idx_stream = static_cast<double>(m.idx_bytes) *
                            static_cast<double>(m.n) * m.d;
  return lhs_c <= rhs_c && idx_stream <= static_cast<double>(m.cache_bytes);
}

}  // namespace gsgcn::propagation

#include "propagation/feature_partitioned.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "obs/perf.hpp"
#include "obs/roofline.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace gsgcn::propagation {

namespace {

struct Slice {
  std::size_t begin;
  std::size_t end;
};

Slice feature_slice(std::size_t f, int q, int i) {
  const std::size_t base = f / static_cast<std::size_t>(q);
  const std::size_t rem = f % static_cast<std::size_t>(q);
  const std::size_t b = static_cast<std::size_t>(i) * base +
                        std::min<std::size_t>(static_cast<std::size_t>(i), rem);
  const std::size_t len = base + (static_cast<std::size_t>(i) < rem ? 1 : 0);
  return {b, b + len};
}

int pick_q(const graph::CsrGraph& g, std::size_t f,
           const FeaturePartitionOptions& opts, int threads) {
  if (opts.force_q > 0) return std::min<int>(opts.force_q, static_cast<int>(f));
  CommModelParams m;
  m.n = g.num_vertices();
  m.d = g.average_degree();
  m.f = static_cast<std::int64_t>(f);
  m.elem_bytes = sizeof(float);
  m.idx_bytes = sizeof(graph::Vid);
  m.cache_bytes =
      opts.cache_bytes != 0 ? opts.cache_bytes : util::private_cache_bytes();
  m.processors = threads;
  return choose_feature_partitions(m);
}

/// Forward aggregation over one feature slice for all vertices.
void forward_slice(const graph::CsrGraph& g, AggregatorKind kind,
                   const tensor::Matrix& in, tensor::Matrix& out, Slice s) {
  const std::size_t len = s.end - s.begin;
  for (graph::Vid v = 0; v < g.num_vertices(); ++v) {
    float* dst = out.row(v) + s.begin;
    std::memset(dst, 0, len * sizeof(float));
    const auto nbrs = g.neighbors(v);
    if (nbrs.empty()) continue;
    if (kind == AggregatorKind::kSymmetric) {
      const float inv_sqrt_dv =
          1.0f / std::sqrt(static_cast<float>(nbrs.size()));
      for (const graph::Vid u : nbrs) {
        const float w =
            inv_sqrt_dv / std::sqrt(static_cast<float>(g.degree(u)));
        const float* src = in.row(u) + s.begin;
        for (std::size_t j = 0; j < len; ++j) dst[j] += w * src[j];
      }
    } else {
      for (const graph::Vid u : nbrs) {
        const float* src = in.row(u) + s.begin;
        for (std::size_t j = 0; j < len; ++j) dst[j] += src[j];
      }
      if (kind == AggregatorKind::kMean) {
        const float inv = 1.0f / static_cast<float>(nbrs.size());
        for (std::size_t j = 0; j < len; ++j) dst[j] *= inv;
      }
    }
  }
}

void backward_slice(const graph::CsrGraph& g, AggregatorKind kind,
                    const tensor::Matrix& d_out, tensor::Matrix& d_in,
                    Slice s) {
  if (kind != AggregatorKind::kMean) {
    // Sum and symmetric normalization are self-adjoint on an undirected
    // graph: the gradient is the forward operator applied to d_out.
    forward_slice(g, kind, d_out, d_in, s);
    return;
  }
  const std::size_t len = s.end - s.begin;
  for (graph::Vid u = 0; u < g.num_vertices(); ++u) {
    float* dst = d_in.row(u) + s.begin;
    std::memset(dst, 0, len * sizeof(float));
    for (const graph::Vid v : g.neighbors(u)) {
      const float w = 1.0f / static_cast<float>(g.degree(v));
      const float* src = d_out.row(v) + s.begin;
      for (std::size_t j = 0; j < len; ++j) dst[j] += w * src[j];
    }
  }
}

void check(const graph::CsrGraph& g, const tensor::Matrix& a,
           const tensor::Matrix& b) {
  if (a.rows() != g.num_vertices() || b.rows() != g.num_vertices() ||
      a.cols() != b.cols() || a.data() == b.data()) {
    throw std::invalid_argument("feature_partitioned: bad shapes/aliasing");
  }
}

}  // namespace

int propagate_feature_partitioned(const graph::CsrGraph& g,
                                  const tensor::Matrix& in, tensor::Matrix& out,
                                  const FeaturePartitionOptions& opts) {
  check(g, in, out);
  const int c = util::resolve_threads(opts.threads);
  const int q = pick_q(g, in.cols(), opts, c);
  GSGCN_ASSERT(q >= 1 && static_cast<std::size_t>(q) <= std::max<std::size_t>(
                                                           in.cols(), 1),
               "feature partition count out of range");
  GSGCN_TRACE_SPAN_ID("featprop/forward", q);
  const obs::Work work [[maybe_unused]] = obs::spmm_work(
      static_cast<std::int64_t>(g.num_vertices()),
      static_cast<std::int64_t>(g.num_edges()),
      static_cast<std::int64_t>(in.cols()));
  GSGCN_PERF_REGION_WORK("propagate", work.flops, work.bytes);
  // Q/C rounds of C concurrent slices (Algorithm 6 lines 4-6). A single
  // collapsed parallel-for gives the same schedule with less fork/join.
  util::parallel_for(q, c, [&](std::int64_t i) {
    forward_slice(g, opts.aggregator, in, out,
                  feature_slice(in.cols(), q, static_cast<int>(i)));
  });
  return q;
}

int propagate_feature_partitioned_backward(const graph::CsrGraph& g,
                                           const tensor::Matrix& d_out,
                                           tensor::Matrix& d_in,
                                           const FeaturePartitionOptions& opts) {
  check(g, d_out, d_in);
  const int c = util::resolve_threads(opts.threads);
  const int q = pick_q(g, d_out.cols(), opts, c);
  GSGCN_TRACE_SPAN_ID("featprop/backward", q);
  const obs::Work work [[maybe_unused]] = obs::spmm_work(
      static_cast<std::int64_t>(g.num_vertices()),
      static_cast<std::int64_t>(g.num_edges()),
      static_cast<std::int64_t>(d_out.cols()));
  GSGCN_PERF_REGION_WORK("propagate", work.flops, work.bytes);
  util::parallel_for(q, c, [&](std::int64_t i) {
    backward_slice(g, opts.aggregator, d_out, d_in,
                   feature_slice(d_out.cols(), q, static_cast<int>(i)));
  });
  return q;
}

void propagate_2d(const graph::CsrGraph& g, const graph::Partition& parts,
                  int q, const tensor::Matrix& in, tensor::Matrix& out,
                  int threads) {
  check(g, in, out);
  if (q < 1) throw std::invalid_argument("propagate_2d: q >= 1");
  const int p = static_cast<int>(parts.num_parts());
#if GSGCN_CHECKS_ENABLED
  {
    // Partition coverage: every vertex appears in exactly one part, so
    // every output row is written by exactly one (pi, qi) tile owner.
    std::size_t covered = 0;
    for (const auto& part : parts.parts) {
      covered += part.size();
      for (const graph::Vid v : part) GSGCN_CHECK_BOUNDS(v, g.num_vertices());
    }
    GSGCN_ASSERT(covered == g.num_vertices(),
                 "propagate_2d: partition does not cover the vertex set");
  }
#endif
  const int total = p * q;
  GSGCN_TRACE_SPAN_ID("propagate_2d", total);
  // Tiles are irregular (part sizes vary): hand them out dynamically.
  util::parallel_for_dynamic(total, threads, [&](std::int64_t t) {
    const int pi = static_cast<int>(t) / q;
    const int qi = static_cast<int>(t) % q;
    const Slice s = feature_slice(in.cols(), q, qi);
    const std::size_t len = s.end - s.begin;
    for (const graph::Vid v : parts.parts[static_cast<std::size_t>(pi)]) {
      float* dst = out.row(v) + s.begin;
      std::memset(dst, 0, len * sizeof(float));
      const auto nbrs = g.neighbors(v);
      if (nbrs.empty()) continue;
      for (const graph::Vid u : nbrs) {
        const float* src = in.row(u) + s.begin;
        for (std::size_t j = 0; j < len; ++j) dst[j] += src[j];
      }
      const float inv = 1.0f / static_cast<float>(nbrs.size());
      for (std::size_t j = 0; j < len; ++j) dst[j] *= inv;
    }
  });
}

}  // namespace gsgcn::propagation

#include "propagation/feature_partitioned.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "obs/perf.hpp"
#include "obs/roofline.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/mutex.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace gsgcn::propagation {

namespace {

struct Slice {
  std::size_t begin;
  std::size_t end;
};

Slice feature_slice(std::size_t f, int q, int i) {
  const std::size_t base = f / static_cast<std::size_t>(q);
  const std::size_t rem = f % static_cast<std::size_t>(q);
  const std::size_t b = static_cast<std::size_t>(i) * base +
                        std::min<std::size_t>(static_cast<std::size_t>(i), rem);
  const std::size_t len = base + (static_cast<std::size_t>(i) < rem ? 1 : 0);
  return {b, b + len};
}

int analytic_q(const graph::CsrGraph& g, std::size_t f,
               const FeaturePartitionOptions& opts, int threads) {
  CommModelParams m;
  m.n = g.num_vertices();
  m.d = g.average_degree();
  m.f = static_cast<std::int64_t>(f);
  m.elem_bytes = sizeof(float);
  m.idx_bytes = sizeof(graph::Vid);
  m.cache_bytes =
      opts.cache_bytes != 0 ? opts.cache_bytes : util::private_cache_bytes();
  m.processors = threads;
  return choose_feature_partitions(m);
}

int pick_q(const graph::CsrGraph& g, std::size_t f,
           const FeaturePartitionOptions& opts, int threads) {
  // f == 0 still needs q >= 1 so the slice loop and its assert stay sane.
  const int fmax = static_cast<int>(std::max<std::size_t>(f, 1));
  if (opts.force_q > 0) return std::min(opts.force_q, fmax);
  return analytic_q(g, f, opts, threads);
}

// ---- measured-Q autotuner ------------------------------------------------
// Theorem 2's Q* = max{C, ⌈elem·n·f/S_cache⌉} trusts the cache model; the
// autotuner treats it as a seed, times a few candidates around it, and
// caches the winner per subgraph shape. The tiled kernel is bit-identical
// for every Q (see spmm.hpp), so a measured pick never changes numerics —
// resume and thread-count determinism are unaffected.

struct QKey {
  std::uint64_t n = 0;
  std::uint64_t e = 0;
  std::uint64_t f = 0;
  int threads = 0;
  bool backward = false;
  bool operator==(const QKey&) const = default;
};

struct QKeyHash {
  std::size_t operator()(const QKey& k) const {
    std::size_t h = 0;
    const auto mix = [&h](std::uint64_t v) {
      h ^= std::hash<std::uint64_t>{}(v) + 0x9e3779b97f4a7c15ULL + (h << 6) +
           (h >> 2);
    };
    mix(k.n);
    mix(k.e);
    mix(k.f);
    mix(static_cast<std::uint64_t>(k.threads));
    mix(k.backward ? 1 : 0);
    return h;
  }
};

class QCache {
 public:
  bool lookup(const QKey& k, int* q) EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    const auto it = map_.find(k);
    if (it == map_.end()) return false;
    *q = it->second;
    return true;
  }

  void store(const QKey& k, int q) EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    map_.emplace(k, q);
  }

 private:
  util::Mutex mu_;
  std::unordered_map<QKey, int, QKeyHash> map_ GUARDED_BY(mu_);
};

QCache& q_cache() {
  static QCache cache;
  return cache;
}

/// Q* has no edge-count term, and sampled subgraphs jitter in |E| from one
/// draw to the next; quantizing e to <= 16 buckets per octave (~6% bins)
/// keeps that jitter from defeating the cache.
std::uint64_t quantize_edges(std::uint64_t e) {
  std::uint64_t step = 1;
  while ((e >> 4) >= step) step <<= 1;
  return e - e % step;
}

std::vector<int> q_candidates(int q_star, int c, int fmax) {
  const int lo = std::min(std::max(c, 1), fmax);
  std::vector<int> out;
  const auto push = [&](int q) {
    q = std::clamp(q, lo, fmax);
    if (std::find(out.begin(), out.end(), q) == out.end()) out.push_back(q);
  };
  push(q_star);      // analytic seed first: exact ties keep Theorem 2's pick
  push(q_star / 2);  // fatter slices (model overestimated the working set)
  push(q_star * 2);  // thinner slices (model underestimated it)
  push(lo);          // floor: C slices, the fattest that still feeds C cores
  return out;
}

template <typename RunFn>
int measured_q(const graph::CsrGraph& g, std::size_t f, int threads,
               bool backward, int q_star, const RunFn& run) {
  const QKey key{g.num_vertices(),
                 quantize_edges(static_cast<std::uint64_t>(g.num_edges())),
                 static_cast<std::uint64_t>(f), threads, backward};
  int q = 0;
  if (q_cache().lookup(key, &q)) return q;
  const int fmax = static_cast<int>(std::max<std::size_t>(f, 1));
  const std::vector<int> cands = q_candidates(q_star, threads, fmax);
  q = cands.front();
  if (cands.size() > 1) {
    double best = std::numeric_limits<double>::infinity();
    for (const int cand : cands) {
      double t = std::numeric_limits<double>::infinity();
      for (int rep = 0; rep < 2; ++rep) {
        const util::Timer timer;
        run(cand);
        t = std::min(t, timer.seconds());
      }
      if (t < best) {  // strict <: ties keep the earlier (analytic) entry
        best = t;
        q = cand;
      }
    }
  }
  q_cache().store(key, q);
  return q;
}

bool use_autotune(const FeaturePartitionOptions& opts) {
  // force_q pins Q outright; a caller-supplied cache_bytes pins the model
  // (callers set it precisely to observe the analytic response), so either
  // bypasses measurement.
  return opts.autotune && opts.force_q == 0 && opts.cache_bytes == 0;
}

/// Forward aggregation over one feature slice for all vertices — the
/// pre-tiling scalar kernel, kept verbatim as the legacy:: baseline.
void forward_slice(const graph::CsrGraph& g, AggregatorKind kind,
                   const tensor::Matrix& in, tensor::Matrix& out, Slice s) {
  const std::size_t len = s.end - s.begin;
  for (graph::Vid v = 0; v < g.num_vertices(); ++v) {
    float* dst = out.row(v) + s.begin;
    std::memset(dst, 0, len * sizeof(float));
    const auto nbrs = g.neighbors(v);
    if (nbrs.empty()) continue;
    if (kind == AggregatorKind::kSymmetric) {
      const float inv_sqrt_dv =
          1.0f / std::sqrt(static_cast<float>(nbrs.size()));
      for (const graph::Vid u : nbrs) {
        const float w =
            inv_sqrt_dv / std::sqrt(static_cast<float>(g.degree(u)));
        const float* src = in.row(u) + s.begin;
        for (std::size_t j = 0; j < len; ++j) dst[j] += w * src[j];
      }
    } else {
      for (const graph::Vid u : nbrs) {
        const float* src = in.row(u) + s.begin;
        for (std::size_t j = 0; j < len; ++j) dst[j] += src[j];
      }
      if (kind == AggregatorKind::kMean) {
        const float inv = 1.0f / static_cast<float>(nbrs.size());
        for (std::size_t j = 0; j < len; ++j) dst[j] *= inv;
      }
    }
  }
}

void backward_slice(const graph::CsrGraph& g, AggregatorKind kind,
                    const tensor::Matrix& d_out, tensor::Matrix& d_in,
                    Slice s) {
  if (kind != AggregatorKind::kMean) {
    // Sum and symmetric normalization are self-adjoint on an undirected
    // graph: the gradient is the forward operator applied to d_out.
    forward_slice(g, kind, d_out, d_in, s);
    return;
  }
  const std::size_t len = s.end - s.begin;
  for (graph::Vid u = 0; u < g.num_vertices(); ++u) {
    float* dst = d_in.row(u) + s.begin;
    std::memset(dst, 0, len * sizeof(float));
    for (const graph::Vid v : g.neighbors(u)) {
      const float w = 1.0f / static_cast<float>(g.degree(v));
      const float* src = d_out.row(v) + s.begin;
      for (std::size_t j = 0; j < len; ++j) dst[j] += w * src[j];
    }
  }
}

void check(const graph::CsrGraph& g, const tensor::Matrix& a,
           const tensor::Matrix& b) {
  if (a.rows() != g.num_vertices() || b.rows() != g.num_vertices() ||
      a.cols() != b.cols()) {
    throw std::invalid_argument("feature_partitioned: bad shapes");
  }
  // Zero-sized matrices may legitimately share a null data pointer.
  if (a.size() != 0 && a.data() == b.data()) {
    throw std::invalid_argument("feature_partitioned: in/out must not alias");
  }
}

}  // namespace

int propagate_feature_partitioned(const graph::CsrGraph& g,
                                  const tensor::Matrix& in, tensor::Matrix& out,
                                  const FeaturePartitionOptions& opts) {
  check(g, in, out);
  const int c = util::resolve_threads(opts.threads);
  const std::size_t f = in.cols();
  const graph::Vid n = g.num_vertices();
  const std::vector<float> w =
      tiled::source_weights(g, opts.aggregator, /*backward=*/false, c);
  const float* wp = w.empty() ? nullptr : w.data();
  // Q/C rounds of C concurrent slices (Algorithm 6 lines 4-6). A single
  // collapsed parallel-for gives the same schedule with less fork/join.
  const auto run = [&](int slices) {
    util::parallel_for(slices, c, [&](std::int64_t i) {
      const Slice s = feature_slice(f, slices, static_cast<int>(i));
      tiled::aggregate_rows(g, opts.aggregator, /*backward=*/false, in, out, 0,
                            n, s.begin, s.end, wp);
    });
  };
  int q = pick_q(g, f, opts, c);
  if (use_autotune(opts)) q = measured_q(g, f, c, /*backward=*/false, q, run);
  GSGCN_ASSERT(
      q >= 1 && static_cast<std::size_t>(q) <= std::max<std::size_t>(f, 1),
      "feature partition count out of range");
  GSGCN_TRACE_SPAN_ID("featprop/forward", q);
  const obs::Work work [[maybe_unused]] = obs::spmm_work(
      static_cast<std::int64_t>(g.num_vertices()),
      static_cast<std::int64_t>(g.num_edges()),
      static_cast<std::int64_t>(f));
  GSGCN_PERF_REGION_WORK("propagate", work.flops, work.bytes);
  run(q);
  return q;
}

int propagate_feature_partitioned_backward(const graph::CsrGraph& g,
                                           const tensor::Matrix& d_out,
                                           tensor::Matrix& d_in,
                                           const FeaturePartitionOptions& opts) {
  check(g, d_out, d_in);
  const int c = util::resolve_threads(opts.threads);
  const std::size_t f = d_out.cols();
  const graph::Vid n = g.num_vertices();
  const std::vector<float> w =
      tiled::source_weights(g, opts.aggregator, /*backward=*/true, c);
  const float* wp = w.empty() ? nullptr : w.data();
  const auto run = [&](int slices) {
    util::parallel_for(slices, c, [&](std::int64_t i) {
      const Slice s = feature_slice(f, slices, static_cast<int>(i));
      tiled::aggregate_rows(g, opts.aggregator, /*backward=*/true, d_out, d_in,
                            0, n, s.begin, s.end, wp);
    });
  };
  int q = pick_q(g, f, opts, c);
  if (use_autotune(opts)) q = measured_q(g, f, c, /*backward=*/true, q, run);
  GSGCN_ASSERT(
      q >= 1 && static_cast<std::size_t>(q) <= std::max<std::size_t>(f, 1),
      "feature partition count out of range");
  GSGCN_TRACE_SPAN_ID("featprop/backward", q);
  const obs::Work work [[maybe_unused]] = obs::spmm_work(
      static_cast<std::int64_t>(g.num_vertices()),
      static_cast<std::int64_t>(g.num_edges()),
      static_cast<std::int64_t>(f));
  GSGCN_PERF_REGION_WORK("propagate", work.flops, work.bytes);
  run(q);
  return q;
}

void propagate_2d(const graph::CsrGraph& g, const graph::Partition& parts,
                  int q, AggregatorKind kind, const tensor::Matrix& in,
                  tensor::Matrix& out, int threads) {
  check(g, in, out);
  if (q < 1) throw std::invalid_argument("propagate_2d: q >= 1");
  const int p = static_cast<int>(parts.num_parts());
#if GSGCN_CHECKS_ENABLED
  {
    // Partition coverage: every vertex appears in exactly one part, so
    // every output row is written by exactly one (pi, qi) tile owner.
    std::size_t covered = 0;
    for (const auto& part : parts.parts) {
      covered += part.size();
      for (const graph::Vid v : part) GSGCN_CHECK_BOUNDS(v, g.num_vertices());
    }
    GSGCN_ASSERT(covered == g.num_vertices(),
                 "propagate_2d: partition does not cover the vertex set");
  }
#endif
  const std::vector<float> w =
      tiled::source_weights(g, kind, /*backward=*/false, threads);
  const float* wp = w.empty() ? nullptr : w.data();
  const int total = p * q;
  GSGCN_TRACE_SPAN_ID("propagate_2d", total);
  // Tiles are irregular (part sizes vary): hand them out dynamically.
  util::parallel_for_dynamic(total, threads, [&](std::int64_t t) {
    const int pi = static_cast<int>(t) / q;
    const int qi = static_cast<int>(t) % q;
    const Slice s = feature_slice(in.cols(), q, qi);
    const auto& rows = parts.parts[static_cast<std::size_t>(pi)];
    tiled::aggregate_rows(g, kind, /*backward=*/false, in, out,
                          std::span<const graph::Vid>(rows.data(), rows.size()),
                          s.begin, s.end, wp);
  });
}

namespace legacy {

int propagate_feature_partitioned(const graph::CsrGraph& g,
                                  const tensor::Matrix& in, tensor::Matrix& out,
                                  const FeaturePartitionOptions& opts) {
  check(g, in, out);
  const int c = util::resolve_threads(opts.threads);
  const int q = pick_q(g, in.cols(), opts, c);
  util::parallel_for(q, c, [&](std::int64_t i) {
    forward_slice(g, opts.aggregator, in, out,
                  feature_slice(in.cols(), q, static_cast<int>(i)));
  });
  return q;
}

int propagate_feature_partitioned_backward(const graph::CsrGraph& g,
                                           const tensor::Matrix& d_out,
                                           tensor::Matrix& d_in,
                                           const FeaturePartitionOptions& opts) {
  check(g, d_out, d_in);
  const int c = util::resolve_threads(opts.threads);
  const int q = pick_q(g, d_out.cols(), opts, c);
  util::parallel_for(q, c, [&](std::int64_t i) {
    backward_slice(g, opts.aggregator, d_out, d_in,
                   feature_slice(d_out.cols(), q, static_cast<int>(i)));
  });
  return q;
}

}  // namespace legacy

}  // namespace gsgcn::propagation

#include "sampling/frontier_naive.hpp"

#include <stdexcept>

namespace gsgcn::sampling {

NaiveFrontierSampler::NaiveFrontierSampler(const graph::CsrGraph& g,
                                           const FrontierParams& params)
    : g_(g), p_(params) {
  if (p_.frontier_size == 0 || p_.budget <= p_.frontier_size) {
    throw std::invalid_argument("frontier sampler: need budget > m > 0");
  }
  if (g_.num_vertices() < p_.frontier_size) {
    throw std::invalid_argument("frontier sampler: m exceeds |V|");
  }
}

graph::Eid NaiveFrontierSampler::weight(graph::Vid v) const {
  const graph::Eid d = g_.degree(v);
  return p_.degree_cap > 0 ? std::min(d, p_.degree_cap) : d;
}

std::vector<graph::Vid> NaiveFrontierSampler::sample_vertices(
    util::Xoshiro256& rng) {
  const graph::Vid m = p_.frontier_size;
  std::vector<graph::Vid> frontier =
      util::sample_without_replacement(g_.num_vertices(), m, rng);
  std::vector<graph::Vid> sampled(frontier);  // line 2: Vsub ← FS
  sampled.reserve(p_.budget);

  graph::Eid total = 0;
  for (const graph::Vid v : frontier) total += weight(v);

  for (graph::Vid i = m; i < p_.budget; ++i) {
    if (total <= 0) {
      // Degenerate all-degree-0 frontier: reseed uniformly (keeps the
      // sampler total; only reachable on graphs with isolated vertices).
      frontier = util::sample_without_replacement(g_.num_vertices(), m, rng);
      total = 0;
      for (const graph::Vid v : frontier) total += weight(v);
      if (total <= 0) break;  // graph has no edges at all
    }
    // Linear cumulative scan — the O(m) pop.
    const double r = rng.uniform() * static_cast<double>(total);
    double acc = 0.0;
    std::size_t pos = frontier.size() - 1;
    for (std::size_t j = 0; j < frontier.size(); ++j) {
      acc += static_cast<double>(weight(frontier[j]));
      if (r < acc) {
        pos = j;
        break;
      }
    }
    const graph::Vid vpop = frontier[pos];
    const auto nbrs = g_.neighbors(vpop);
    const graph::Vid vnew =
        nbrs[rng.below(static_cast<std::uint32_t>(nbrs.size()))];

    total += weight(vnew) - weight(vpop);
    frontier[pos] = vnew;       // line 6: FS ← (FS \ {u}) ∪ {u'}
    sampled.push_back(vpop);    // line 7: Vsub ← Vsub ∪ {u}
  }
  return sampled;
}

}  // namespace gsgcn::sampling

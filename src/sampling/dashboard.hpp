#pragma once
// The Dashboard data structure (paper Section IV-B).
//
// Frontier sampling pops vertices with probability proportional to their
// degree from a set whose membership changes every step. The Dashboard
// turns that dynamic weighted draw into uniform probing: each frontier
// vertex v owns deg(v) consecutive entries, so a uniformly random *entry*
// lands on v with probability deg(v)/Σdeg. Pops invalidate entries in
// place and adds append at the tail; an enlargement factor η > 1 bounds
// how often the table fills and must be compacted (the "cleanup" whose
// amortized cost Section IV-C analyzes).
//
// Layout (structure-of-arrays; paper packs slots 2/3 as INT16, we keep
// int32 so graphs beyond 65k vertices work — the capacity formula is
// unchanged):
//   vertex_[e]  id of the frontier vertex owning entry e, or kInvalid
//   offset_[e]  -count at a vertex's first entry, +distance otherwise
//               (lets a probe find the first entry and the entry count)
//   order_[e]   insertion index of the owner (position in the IA arrays)
// Index array (paper's IA):
//   ia_start_[k] first DB entry of the k-th vertex added since cleanup
//   ia_vertex_[k] its id          ia_alive_[k] popped yet?
//
// Degree cap: for heavily skewed graphs the paper limits any vertex to at
// most 30 entries so hubs cannot dominate every subgraph (Section VI-C2);
// `degree_cap` generalizes that constant (0 = uncapped).

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "util/rng.hpp"

namespace gsgcn::sampling {

/// How a single sampler parallelizes its inner loops (the paper's
/// p_intra): AVX2 batch probing + vectorized entry writes, or scalar.
enum class IntraMode { kAuto, kScalar, kAvx2 };

class Dashboard {
 public:
  static constexpr std::int32_t kInvalid = -1;

  /// capacity_entries = η·m·d̄ in the paper; the caller computes it.
  Dashboard(std::size_t capacity_entries, IntraMode mode = IntraMode::kAuto);

  /// Empty the table (start of a new subgraph sample).
  void clear();

  /// Number of entries a vertex of this degree occupies:
  /// min(deg, degree_cap) (uncapped when degree_cap == 0). A degree-0
  /// vertex occupies no entries — its selection probability is zero.
  std::size_t entries_for_degree(graph::Eid degree) const;

  /// True if adding a vertex with this degree would overflow — caller
  /// must cleanup() first (paper Algorithm 3 line 20).
  bool needs_cleanup(graph::Eid degree) const;

  /// Append a frontier vertex occupying entries_for_degree(degree) slots.
  /// Pre: !needs_cleanup(degree). A degree-0 vertex is recorded in the IA
  /// but owns no entries (it can never be popped, matching its zero
  /// selection probability).
  void add(graph::Vid v, graph::Eid degree);

  /// Pop one vertex with probability ∝ its entry count: probe uniformly
  /// random entries until one is valid, then invalidate all of the owner's
  /// entries (paper's para_POP_FRONTIER). Returns kNoVertex if no valid
  /// entries exist (all-degree-0 frontier) — caller reseeds.
  static constexpr graph::Vid kNoVertex = 0xFFFFFFFFu;
  graph::Vid pop(util::Xoshiro256& rng);

  /// Compact live vertices to the front (paper's para_CLEANUP).
  void cleanup();

  /// Enlarge capacity (doubling) until a vertex of `degree` fits. Only
  /// needed when η·m·d̄ was undersized for a skewed, uncapped graph; the
  /// paper avoids this case with the degree cap, but the library must not
  /// crash without one.
  void grow_to_fit(graph::Eid degree);

  // --- introspection (tests + the ablation bench) ---
  std::size_t capacity() const { return capacity_; }
  std::size_t used_entries() const { return used_; }       // incl. dead
  std::size_t valid_entries() const { return valid_; }     // live only
  std::size_t live_vertices() const { return live_vertices_; }
  std::size_t cleanups() const { return cleanup_count_; }
  std::size_t probes() const { return probe_count_; }      // total probes
  void set_degree_cap(graph::Eid cap) { degree_cap_ = cap; }
  graph::Eid degree_cap() const { return degree_cap_; }
  bool using_avx() const;

  /// Invariant check for tests: entry bookkeeping consistent with IA.
  /// Empty string when consistent.
  std::string check_invariants() const;

 private:
  graph::Vid pop_at(std::size_t entry_idx);
  std::size_t probe_scalar(util::Xoshiro256& rng);
  std::size_t probe_avx2(util::Xoshiro256& rng);
  void write_entries(graph::Vid v, std::size_t start, std::size_t count,
                     std::int32_t order);
  void invalidate_entries(std::size_t start, std::size_t count);

  std::size_t capacity_;
  IntraMode mode_;
  graph::Eid degree_cap_ = 0;

  // Lane states for the SIMD xorshift32 used by AVX2 probing (one PRNG
  // step yields 8 candidate indices). Lazily seeded from the caller's RNG
  // on first use so runs stay reproducible per (seed, mode).
  alignas(32) std::uint32_t lane_state_[8] = {};
  bool lanes_seeded_ = false;

  // DB slots (SoA).
  std::vector<std::int32_t> vertex_;
  std::vector<std::int32_t> offset_;
  std::vector<std::int32_t> order_;

  // IA.
  std::vector<std::int32_t> ia_start_;
  std::vector<std::int32_t> ia_count_;
  std::vector<graph::Vid> ia_vertex_;
  std::vector<std::uint8_t> ia_alive_;

  std::size_t used_ = 0;           // tail position in DB
  std::size_t valid_ = 0;          // live entries
  std::size_t live_vertices_ = 0;  // live IA records
  std::size_t cleanup_count_ = 0;
  std::size_t probe_count_ = 0;
};

}  // namespace gsgcn::sampling

#include "sampling/samplers.hpp"

#include <algorithm>
#include <stdexcept>

namespace gsgcn::sampling {

UniformNodeSampler::UniformNodeSampler(const graph::CsrGraph& g,
                                       graph::Vid budget)
    : g_(g), budget_(budget) {
  if (budget == 0 || budget > g.num_vertices()) {
    throw std::invalid_argument("uniform-node: bad budget");
  }
}

std::vector<graph::Vid> UniformNodeSampler::sample_vertices(
    util::Xoshiro256& rng) {
  return util::sample_without_replacement(g_.num_vertices(), budget_, rng);
}

RandomEdgeSampler::RandomEdgeSampler(const graph::CsrGraph& g,
                                     graph::Vid budget)
    : g_(g), budget_(budget) {
  if (budget < 2) throw std::invalid_argument("random-edge: bad budget");
  if (g.num_edges() == 0) throw std::invalid_argument("random-edge: empty graph");
}

std::vector<graph::Vid> RandomEdgeSampler::sample_vertices(
    util::Xoshiro256& rng) {
  std::vector<graph::Vid> out;
  out.reserve(budget_);
  const auto& adj = g_.adjacency();
  const auto& offsets = g_.offsets();
  while (out.size() + 1 < budget_) {
    // Uniform directed edge = uniform adjacency slot; recover the source
    // by binary search over offsets.
    const auto slot = static_cast<graph::Eid>(
        rng.below(static_cast<std::uint32_t>(adj.size())));
    const auto it =
        std::upper_bound(offsets.begin(), offsets.end(), slot) - 1;
    const auto src = static_cast<graph::Vid>(it - offsets.begin());
    out.push_back(src);
    out.push_back(adj[static_cast<std::size_t>(slot)]);
  }
  return out;
}

RandomWalkSampler::RandomWalkSampler(const graph::CsrGraph& g,
                                     graph::Vid num_roots,
                                     graph::Vid walk_length)
    : g_(g), num_roots_(num_roots), walk_length_(walk_length) {
  if (num_roots == 0 || num_roots > g.num_vertices() || walk_length == 0) {
    throw std::invalid_argument("random-walk: bad params");
  }
}

std::vector<graph::Vid> RandomWalkSampler::sample_vertices(
    util::Xoshiro256& rng) {
  std::vector<graph::Vid> out;
  out.reserve(static_cast<std::size_t>(num_roots_) * (walk_length_ + 1));
  const auto roots =
      util::sample_without_replacement(g_.num_vertices(), num_roots_, rng);
  for (graph::Vid root : roots) {
    out.push_back(root);
    graph::Vid cur = root;
    for (graph::Vid step = 0; step < walk_length_; ++step) {
      const auto nbrs = g_.neighbors(cur);
      if (nbrs.empty()) break;  // dead end: truncate this walk
      cur = nbrs[rng.below(static_cast<std::uint32_t>(nbrs.size()))];
      out.push_back(cur);
    }
  }
  return out;
}

ForestFireSampler::ForestFireSampler(const graph::CsrGraph& g,
                                     graph::Vid budget, double forward_prob)
    : g_(g),
      budget_(budget),
      p_(forward_prob),
      burned_stamp_(g.num_vertices(), 0) {
  if (budget == 0 || budget > g.num_vertices()) {
    throw std::invalid_argument("forest-fire: bad budget");
  }
  if (forward_prob <= 0.0 || forward_prob >= 1.0) {
    throw std::invalid_argument("forest-fire: forward_prob must be in (0,1)");
  }
}

std::vector<graph::Vid> ForestFireSampler::sample_vertices(
    util::Xoshiro256& rng) {
  ++epoch_;
  if (epoch_ == 0) {
    std::fill(burned_stamp_.begin(), burned_stamp_.end(), 0);
    epoch_ = 1;
  }
  std::vector<graph::Vid> burned;
  burned.reserve(budget_);
  std::vector<graph::Vid> frontier;
  auto burn = [&](graph::Vid v) {
    if (burned_stamp_[v] == epoch_) return false;
    burned_stamp_[v] = epoch_;
    burned.push_back(v);
    frontier.push_back(v);
    return true;
  };
  while (burned.size() < budget_) {
    if (frontier.empty()) {
      // (Re)ignite at an unburned random vertex.
      graph::Vid seed;
      do {
        seed = rng.below(g_.num_vertices());
      } while (burned_stamp_[seed] == epoch_);
      burn(seed);
    }
    const graph::Vid u = frontier.back();
    frontier.pop_back();
    // Geometric(1-p) burn count: number of successes before failure.
    graph::Vid want = 0;
    while (rng.uniform() < p_) ++want;
    if (want == 0) continue;
    // Burn up to `want` unburned neighbors, chosen from a random rotation
    // of the neighbor list so selection is unbiased without a shuffle.
    const auto nbrs = g_.neighbors(u);
    if (nbrs.empty()) continue;
    const std::size_t start = rng.below(static_cast<std::uint32_t>(nbrs.size()));
    graph::Vid lit = 0;
    for (std::size_t i = 0; i < nbrs.size() && lit < want &&
                            burned.size() < budget_;
         ++i) {
      const graph::Vid v = nbrs[(start + i) % nbrs.size()];
      if (burn(v)) ++lit;
    }
  }
  return burned;
}

Node2VecSampler::Node2VecSampler(const graph::CsrGraph& g,
                                 graph::Vid num_roots, graph::Vid walk_length,
                                 double return_p, double in_out_q)
    : g_(g),
      num_roots_(num_roots),
      walk_length_(walk_length),
      p_(return_p),
      q_(in_out_q) {
  if (num_roots == 0 || num_roots > g.num_vertices() || walk_length == 0) {
    throw std::invalid_argument("node2vec: bad params");
  }
  if (return_p <= 0.0 || in_out_q <= 0.0) {
    throw std::invalid_argument("node2vec: p, q must be positive");
  }
}

std::vector<graph::Vid> Node2VecSampler::sample_vertices(
    util::Xoshiro256& rng) {
  std::vector<graph::Vid> out;
  out.reserve(static_cast<std::size_t>(num_roots_) * (walk_length_ + 1));
  // Rejection sampling: propose a uniform neighbor of cur, accept with
  // probability w/w_max where w ∈ {1/p (back to prev), 1 (neighbor of
  // prev), 1/q (explore)} — unbiased without per-vertex alias tables.
  const double w_max = std::max({1.0 / p_, 1.0, 1.0 / q_});
  const auto roots =
      util::sample_without_replacement(g_.num_vertices(), num_roots_, rng);
  for (const graph::Vid root : roots) {
    out.push_back(root);
    graph::Vid prev = root;
    graph::Vid cur = root;
    for (graph::Vid step = 0; step < walk_length_; ++step) {
      const auto nbrs = g_.neighbors(cur);
      if (nbrs.empty()) break;
      graph::Vid next = cur;
      for (int attempt = 0; attempt < 64; ++attempt) {  // bounded rejection
        const graph::Vid cand =
            nbrs[rng.below(static_cast<std::uint32_t>(nbrs.size()))];
        double w;
        if (cand == prev) {
          w = 1.0 / p_;
        } else {
          const auto prev_nbrs = g_.neighbors(prev);
          const bool local = std::binary_search(prev_nbrs.begin(),
                                                prev_nbrs.end(), cand);
          w = local ? 1.0 : 1.0 / q_;
        }
        if (rng.uniform() * w_max < w) {
          next = cand;
          break;
        }
      }
      if (next == cur) break;  // rejection budget exhausted: truncate walk
      prev = cur;
      cur = next;
      out.push_back(cur);
    }
  }
  return out;
}

SnowballSampler::SnowballSampler(const graph::CsrGraph& g, graph::Vid budget,
                                 graph::Vid num_seeds,
                                 graph::Vid max_per_vertex)
    : g_(g),
      budget_(budget),
      num_seeds_(num_seeds),
      max_per_vertex_(max_per_vertex),
      seen_stamp_(g.num_vertices(), 0) {
  if (budget == 0 || budget > g.num_vertices() || num_seeds == 0 ||
      num_seeds > budget || max_per_vertex == 0) {
    throw std::invalid_argument("snowball: bad params");
  }
}

std::vector<graph::Vid> SnowballSampler::sample_vertices(
    util::Xoshiro256& rng) {
  ++epoch_;
  if (epoch_ == 0) {
    std::fill(seen_stamp_.begin(), seen_stamp_.end(), 0);
    epoch_ = 1;
  }
  std::vector<graph::Vid> sampled;
  sampled.reserve(budget_);
  std::vector<graph::Vid> frontier, next;
  for (const graph::Vid s :
       util::sample_without_replacement(g_.num_vertices(), num_seeds_, rng)) {
    seen_stamp_[s] = epoch_;
    sampled.push_back(s);
    frontier.push_back(s);
  }
  while (sampled.size() < budget_ && !frontier.empty()) {
    next.clear();
    for (const graph::Vid u : frontier) {
      const auto nbrs = g_.neighbors(u);
      if (nbrs.empty()) continue;
      const std::size_t start =
          rng.below(static_cast<std::uint32_t>(nbrs.size()));
      graph::Vid taken = 0;
      for (std::size_t i = 0;
           i < nbrs.size() && taken < max_per_vertex_ &&
           sampled.size() < budget_;
           ++i) {
        const graph::Vid v = nbrs[(start + i) % nbrs.size()];
        if (seen_stamp_[v] == epoch_) continue;
        seen_stamp_[v] = epoch_;
        sampled.push_back(v);
        next.push_back(v);
        ++taken;
      }
      if (sampled.size() >= budget_) break;
    }
    frontier.swap(next);
  }
  // If BFS exhausted its components short of budget, top up with fresh
  // uniform vertices so the batch size stays predictable.
  while (sampled.size() < budget_) {
    const graph::Vid v = rng.below(g_.num_vertices());
    if (seen_stamp_[v] == epoch_) continue;
    seen_stamp_[v] = epoch_;
    sampled.push_back(v);
  }
  return sampled;
}

}  // namespace gsgcn::sampling

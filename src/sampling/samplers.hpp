#pragma once
// The "wider class of sampling algorithms" the paper's conclusion promises
// to support: uniform node, random edge, and multi-start random walk
// samplers. All satisfy the graph-sampling GCN's requirement #2 (every
// vertex has non-negligible sampling probability); frontier sampling
// remains the default because it additionally preserves connectivity
// (requirement #1), which the accuracy comparison bench demonstrates.

#include "sampling/sampler.hpp"

namespace gsgcn::sampling {

/// Uniform vertex draws without replacement.
class UniformNodeSampler final : public VertexSampler {
 public:
  UniformNodeSampler(const graph::CsrGraph& g, graph::Vid budget);
  std::vector<graph::Vid> sample_vertices(util::Xoshiro256& rng) override;
  std::string name() const override { return "uniform-node"; }

 private:
  const graph::CsrGraph& g_;
  graph::Vid budget_;
};

/// Uniform edge draws; both endpoints join the sample. Biases the sample
/// toward high-degree vertices (∝ degree), like frontier sampling, but
/// with no connectivity preservation between draws.
class RandomEdgeSampler final : public VertexSampler {
 public:
  RandomEdgeSampler(const graph::CsrGraph& g, graph::Vid budget);
  std::vector<graph::Vid> sample_vertices(util::Xoshiro256& rng) override;
  std::string name() const override { return "random-edge"; }

 private:
  const graph::CsrGraph& g_;
  graph::Vid budget_;
};

/// `num_roots` uniform roots, each walked `walk_length` steps; every
/// visited vertex joins the sample. GraphSAINT's RW sampler is this.
class RandomWalkSampler final : public VertexSampler {
 public:
  RandomWalkSampler(const graph::CsrGraph& g, graph::Vid num_roots,
                    graph::Vid walk_length);
  std::vector<graph::Vid> sample_vertices(util::Xoshiro256& rng) override;
  std::string name() const override { return "random-walk"; }

 private:
  const graph::CsrGraph& g_;
  graph::Vid num_roots_;
  graph::Vid walk_length_;
};

/// Forest-fire sampling (Leskovec & Faloutsos): from a random seed,
/// recursively "burn" a geometrically-distributed number of unburned
/// neighbors (mean p/(1-p)); reignite at a fresh seed when the fire dies
/// out, until `budget` vertices burned. Preserves community structure and
/// degree skew — a middle ground between frontier and random walks.
class ForestFireSampler final : public VertexSampler {
 public:
  ForestFireSampler(const graph::CsrGraph& g, graph::Vid budget,
                    double forward_prob = 0.7);
  std::vector<graph::Vid> sample_vertices(util::Xoshiro256& rng) override;
  std::string name() const override { return "forest-fire"; }

 private:
  const graph::CsrGraph& g_;
  graph::Vid budget_;
  double p_;
  std::vector<std::uint32_t> burned_stamp_;  // epoch-stamped visited set
  std::uint32_t epoch_ = 0;
};

/// node2vec-style second-order random walk: the next step is biased by
/// the previous vertex — return (back to prev) weight 1/p, stay-local
/// (neighbor of prev) weight 1, explore (distance-2) weight 1/q. Low q
/// approximates DFS (community-spanning), high q approximates BFS. Uses
/// rejection sampling (Knightking-style) so no alias tables are needed.
class Node2VecSampler final : public VertexSampler {
 public:
  Node2VecSampler(const graph::CsrGraph& g, graph::Vid num_roots,
                  graph::Vid walk_length, double return_p = 1.0,
                  double in_out_q = 1.0);
  std::vector<graph::Vid> sample_vertices(util::Xoshiro256& rng) override;
  std::string name() const override { return "node2vec"; }

 private:
  const graph::CsrGraph& g_;
  graph::Vid num_roots_;
  graph::Vid walk_length_;
  double p_;
  double q_;
};

/// Snowball (bounded-BFS) sampling: BFS from `num_seeds` random roots,
/// taking at most `max_per_level` per expansion, until `budget` vertices.
/// The classic network-crawling sampler; included for the sampler-quality
/// comparison (it over-represents the seeds' neighborhoods).
class SnowballSampler final : public VertexSampler {
 public:
  SnowballSampler(const graph::CsrGraph& g, graph::Vid budget,
                  graph::Vid num_seeds = 8, graph::Vid max_per_vertex = 16);
  std::vector<graph::Vid> sample_vertices(util::Xoshiro256& rng) override;
  std::string name() const override { return "snowball"; }

 private:
  const graph::CsrGraph& g_;
  graph::Vid budget_;
  graph::Vid num_seeds_;
  graph::Vid max_per_vertex_;
  std::vector<std::uint32_t> seen_stamp_;
  std::uint32_t epoch_ = 0;
};

}  // namespace gsgcn::sampling

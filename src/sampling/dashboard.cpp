#include "sampling/dashboard.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/check.hpp"

#ifdef GSGCN_AVX2
#include <immintrin.h>
#endif

namespace gsgcn::sampling {

namespace {
bool avx_enabled(IntraMode mode) {
#ifdef GSGCN_AVX2
  return mode != IntraMode::kScalar;
#else
  (void)mode;
  return false;
#endif
}

// The kScalar mode exists to measure the paper's Figure-4B "AVX vs
// otherwise" comparison, i.e. a build without vector instructions. At -O3
// GCC auto-vectorizes trivial fill loops, which would make the comparison
// meaningless — so the scalar reference kernels explicitly opt out.
#if defined(__GNUC__) && !defined(__clang__)
#define GSGCN_NOVEC \
  __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#else
#define GSGCN_NOVEC
#endif

GSGCN_NOVEC void scalar_write_entries(std::int32_t* vertex, std::int32_t* offset,
                                      std::int32_t* order, std::size_t start,
                                      std::size_t count, std::int32_t v,
                                      std::int32_t ord) {
  for (std::size_t i = 0; i < count; ++i) {
    vertex[start + i] = v;
    order[start + i] = ord;
    if (i != 0) offset[start + i] = static_cast<std::int32_t>(i);
  }
}

GSGCN_NOVEC void scalar_invalidate(std::int32_t* vertex, std::size_t start,
                                   std::size_t count, std::int32_t inv) {
  for (std::size_t i = 0; i < count; ++i) vertex[start + i] = inv;
}

#undef GSGCN_NOVEC
}  // namespace

Dashboard::Dashboard(std::size_t capacity_entries, IntraMode mode)
    : capacity_(std::max<std::size_t>(capacity_entries, 8)), mode_(mode) {
  vertex_.assign(capacity_, kInvalid);
  offset_.assign(capacity_, 0);
  order_.assign(capacity_, 0);
  // The IA can hold at most one record per DB entry plus one (paper sizes
  // it η·m·d̄ + 1).
  ia_start_.reserve(64);
  ia_count_.reserve(64);
  ia_vertex_.reserve(64);
  ia_alive_.reserve(64);
}

bool Dashboard::using_avx() const { return avx_enabled(mode_); }

void Dashboard::clear() {
  std::fill(vertex_.begin(), vertex_.begin() + static_cast<std::ptrdiff_t>(used_),
            kInvalid);
  ia_start_.clear();
  ia_count_.clear();
  ia_vertex_.clear();
  ia_alive_.clear();
  used_ = valid_ = live_vertices_ = 0;
  // Drop the SIMD probe lanes too: the next sample reseeds them from its
  // caller's RNG, so a sample's output is a pure function of that RNG
  // stream (not of which Dashboard instance happened to run it). The
  // pool's cross-p_inter determinism guarantee depends on this.
  lanes_seeded_ = false;
}

std::size_t Dashboard::entries_for_degree(graph::Eid degree) const {
  if (degree <= 0) return 0;
  if (degree_cap_ > 0 && degree > degree_cap_) degree = degree_cap_;
  return static_cast<std::size_t>(degree);
}

bool Dashboard::needs_cleanup(graph::Eid degree) const {
  return entries_for_degree(degree) > capacity_ - used_;
}

void Dashboard::add(graph::Vid v, graph::Eid degree) {
  const std::size_t count = entries_for_degree(degree);
  if (count > capacity_ - used_) {
    throw std::logic_error("Dashboard::add without cleanup — caller bug");
  }
  const auto order = static_cast<std::int32_t>(ia_vertex_.size());
  ia_start_.push_back(static_cast<std::int32_t>(used_));
  ia_count_.push_back(static_cast<std::int32_t>(count));
  ia_vertex_.push_back(v);
  ia_alive_.push_back(1);
  if (count > 0) {
    write_entries(v, used_, count, order);
    used_ += count;
    valid_ += count;
  }
  ++live_vertices_;
}

graph::Vid Dashboard::pop(util::Xoshiro256& rng) {
  if (valid_ == 0) return kNoVertex;
  const std::size_t idx =
      avx_enabled(mode_) ? probe_avx2(rng) : probe_scalar(rng);
  return pop_at(idx);
}

graph::Vid Dashboard::pop_at(std::size_t e) {
  GSGCN_CHECK_BOUNDS(e, used_);
  GSGCN_ASSERT(vertex_[e] != kInvalid, "probe returned a dead entry");
  // offset slot: negative count at the first entry, +distance otherwise.
  const std::int32_t off = offset_[e];
  const std::size_t start = off >= 0 ? e - static_cast<std::size_t>(off) : e;
  GSGCN_ASSERT(offset_[start] < 0,
               "first entry of a vertex block must hold -count");
  const auto count = static_cast<std::size_t>(-offset_[start]);
  const auto v = static_cast<graph::Vid>(vertex_[e]);
  const std::int32_t k = order_[e];
  GSGCN_CHECK_BOUNDS(k, ia_alive_.size());
  GSGCN_ASSERT(ia_alive_[static_cast<std::size_t>(k)] != 0,
               "popping a vertex whose IA record is already dead");
  GSGCN_ASSERT(count <= valid_, "block count exceeds valid entries");

  invalidate_entries(start, count);
  valid_ -= count;
  ia_alive_[static_cast<std::size_t>(k)] = 0;
  --live_vertices_;
  return v;
}

std::size_t Dashboard::probe_scalar(util::Xoshiro256& rng) {
  for (;;) {
    ++probe_count_;
    const std::size_t e = rng.below(static_cast<std::uint32_t>(used_));
    if (vertex_[e] != kInvalid) return e;
  }
}

std::size_t Dashboard::probe_avx2(util::Xoshiro256& rng) {
#ifdef GSGCN_AVX2
  // 8 probes per round, mirroring the paper's p_intra = 8 AVX2 lanes: one
  // SIMD xorshift32 step produces 8 candidate entries, a gather reads
  // their vertex slots, and the first valid lane wins. The whole round is
  // a handful of vector ops — this is where the AVX probing gain over the
  // scalar path comes from.
  // Hybrid probing: when the table is mostly valid (fresh entries at the
  // tail keep the hit rate near 1/η ≥ 1/2), a couple of scalar probes are
  // cheaper than a gather; fall through to SIMD batch rounds only when
  // they miss (sparse table after many pops before a cleanup).
  for (int attempt = 0; attempt < 3; ++attempt) {
    ++probe_count_;
    const std::size_t e = rng.below(static_cast<std::uint32_t>(used_));
    if (vertex_[e] != kInvalid) return e;
  }
  if (!lanes_seeded_) {
    for (auto& s : lane_state_) {
      std::uint64_t seed = rng();
      std::uint32_t v = static_cast<std::uint32_t>(util::splitmix64(seed));
      s = v != 0 ? v : 0x9e3779b9u;  // xorshift32 must not start at 0
    }
    lanes_seeded_ = true;
  }
  __m256i state =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(lane_state_));
  const __m256i inv = _mm256_set1_epi32(kInvalid);
  const __m256i bound = _mm256_set1_epi32(static_cast<int>(used_));
  alignas(32) std::int32_t idx[8];
  for (;;) {
    probe_count_ += 8;
    // xorshift32 per lane: x ^= x<<13; x ^= x>>17; x ^= x<<5.
    state = _mm256_xor_si256(state, _mm256_slli_epi32(state, 13));
    state = _mm256_xor_si256(state, _mm256_srli_epi32(state, 17));
    state = _mm256_xor_si256(state, _mm256_slli_epi32(state, 5));
    // Map to [0, used): (uint64(x) * used) >> 32, done on even/odd lanes.
    const __m256i even = _mm256_srli_epi64(
        _mm256_mul_epu32(state, bound), 32);  // results in even 32-bit lanes
    const __m256i odd = _mm256_mul_epu32(_mm256_srli_epi64(state, 32), bound);
    // even: value in lanes {0,2,4,6}; odd: value<<32 in 64-bit lanes →
    // blend odd's high halves into the odd 32-bit lanes.
    const __m256i vidx = _mm256_blend_epi16(
        even, _mm256_and_si256(odd, _mm256_set1_epi64x(~0xFFFFFFFFll)), 0xCC);
    _mm256_store_si256(reinterpret_cast<__m256i*>(idx), vidx);
    const __m256i slots =
        _mm256_i32gather_epi32(vertex_.data(), vidx, sizeof(std::int32_t));
    const int miss = _mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(slots, inv)));
    const int hit = (~miss) & 0xFF;
    if (hit != 0) {
      _mm256_store_si256(reinterpret_cast<__m256i*>(lane_state_), state);
      return static_cast<std::size_t>(
          idx[__builtin_ctz(static_cast<unsigned>(hit))]);
    }
  }
#else
  return probe_scalar(rng);
#endif
}

void Dashboard::write_entries(graph::Vid v, std::size_t start,
                              std::size_t count, std::int32_t order) {
  const auto vi = static_cast<std::int32_t>(v);
  offset_[start] = -static_cast<std::int32_t>(count);
#ifdef GSGCN_AVX2
  if (avx_enabled(mode_)) {
    const __m256i vv = _mm256_set1_epi32(vi);
    const __m256i vo = _mm256_set1_epi32(order);
    const __m256i ramp = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    std::size_t i = 0;
    for (; i + 8 <= count; i += 8) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(vertex_.data() + start + i), vv);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(order_.data() + start + i), vo);
      if (i != 0) {
        const __m256i offs = _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(i)), ramp);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(offset_.data() + start + i), offs);
      } else {
        // First lane of the first block holds -count; lanes 1..7 hold 1..7.
        for (std::size_t j = 1; j < 8 && j < count; ++j) {
          offset_[start + j] = static_cast<std::int32_t>(j);
        }
      }
    }
    for (; i < count; ++i) {
      vertex_[start + i] = vi;
      order_[start + i] = order;
      if (i != 0) offset_[start + i] = static_cast<std::int32_t>(i);
    }
    return;
  }
#endif
  scalar_write_entries(vertex_.data(), offset_.data(), order_.data(), start,
                       count, vi, order);
}

void Dashboard::invalidate_entries(std::size_t start, std::size_t count) {
#ifdef GSGCN_AVX2
  if (avx_enabled(mode_)) {
    const __m256i inv = _mm256_set1_epi32(kInvalid);
    std::size_t i = 0;
    for (; i + 8 <= count; i += 8) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(vertex_.data() + start + i), inv);
    }
    for (; i < count; ++i) vertex_[start + i] = kInvalid;
    return;
  }
#endif
  scalar_invalidate(vertex_.data(), start, count, kInvalid);
}

void Dashboard::cleanup() {
  ++cleanup_count_;
  // Compact live vertices to the front, preserving insertion order —
  // the paper's cumulative-sum-over-IA relocation, done in one pass.
  std::size_t write = 0;
  std::size_t ia_write = 0;
  const std::size_t ia_n = ia_vertex_.size();
  for (std::size_t k = 0; k < ia_n; ++k) {
    if (!ia_alive_[k]) continue;
    const auto start = static_cast<std::size_t>(ia_start_[k]);
    const auto count = static_cast<std::size_t>(ia_count_[k]);
    if (count > 0 && start != write) {
      write_entries(ia_vertex_[k], write, count,
                    static_cast<std::int32_t>(ia_write));
    } else if (count > 0) {
      // Already in place; only the order slot may need updating.
      for (std::size_t i = 0; i < count; ++i) {
        order_[write + i] = static_cast<std::int32_t>(ia_write);
      }
    }
    ia_start_[ia_write] = static_cast<std::int32_t>(write);
    ia_count_[ia_write] = static_cast<std::int32_t>(count);
    ia_vertex_[ia_write] = ia_vertex_[k];
    ia_alive_[ia_write] = 1;
    write += count;
    ++ia_write;
  }
  // Invalidate the tail left behind by compaction.
  if (write < used_) invalidate_entries(write, used_ - write);
  ia_start_.resize(ia_write);
  ia_count_.resize(ia_write);
  ia_vertex_.resize(ia_write);
  ia_alive_.resize(ia_write);
  used_ = write;
  valid_ = write;
  live_vertices_ = ia_write;
  // `write` is the number of entries relocated/kept — the paper's cleanup
  // copy cost (Section IV-B amortization argument).
  GSGCN_COUNTER_INC("dashboard.cleanups");
  GSGCN_COUNTER_ADD("dashboard.cleanup_copied_entries", write);
}

void Dashboard::grow_to_fit(graph::Eid degree) {
  const std::size_t need = entries_for_degree(degree);
  std::size_t cap = capacity_;
  while (need > cap - used_) cap *= 2;
  if (cap == capacity_) return;
  vertex_.resize(cap, kInvalid);
  offset_.resize(cap, 0);
  order_.resize(cap, 0);
  capacity_ = cap;
}

std::string Dashboard::check_invariants() const {
  std::size_t live_count = 0, live_entries = 0;
  for (std::size_t k = 0; k < ia_vertex_.size(); ++k) {
    if (!ia_alive_[k]) continue;
    ++live_count;
    const auto start = static_cast<std::size_t>(ia_start_[k]);
    const auto count = static_cast<std::size_t>(ia_count_[k]);
    live_entries += count;
    if (start + count > used_) return "IA range exceeds used region";
    for (std::size_t i = 0; i < count; ++i) {
      if (vertex_[start + i] != static_cast<std::int32_t>(ia_vertex_[k])) {
        return "live entry does not match IA vertex";
      }
      const std::int32_t expect =
          i == 0 ? -static_cast<std::int32_t>(count)
                 : static_cast<std::int32_t>(i);
      if (offset_[start + i] != expect) return "offset slot corrupt";
    }
  }
  if (live_count != live_vertices_) return "live vertex count mismatch";
  if (live_entries != valid_) return "valid entry count mismatch";
  std::size_t scan_valid = 0;
  for (std::size_t e = 0; e < used_; ++e) {
    if (vertex_[e] != kInvalid) ++scan_valid;
  }
  if (scan_valid != valid_) return "DB scan disagrees with valid counter";
  for (std::size_t e = used_; e < capacity_; ++e) {
    if (vertex_[e] != kInvalid) return "entry beyond used region";
  }
  return "";
}

}  // namespace gsgcn::sampling

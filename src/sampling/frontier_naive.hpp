#pragma once
// Straightforward frontier sampler (paper Algorithm 2, implemented the
// obvious way): the frontier is an array of m vertices; each pop draws a
// threshold in [0, Σdeg) and linearly scans the cumulative degrees.
// O(m) per pop ⇒ O(m·n) per subgraph — the serial baseline the Dashboard
// is measured against (with m = 1000 this is the "expensive" cost the
// paper quotes in Section IV-A).

#include "sampling/sampler.hpp"

namespace gsgcn::sampling {

struct FrontierParams {
  graph::Vid frontier_size = 1000;  // m
  graph::Vid budget = 8000;         // n (sampled vertex draws incl. frontier)
  double eta = 2.0;                 // dashboard enlargement factor (unused here)
  graph::Eid degree_cap = 0;        // cap on selection weight (0 = none)
};

class NaiveFrontierSampler final : public VertexSampler {
 public:
  NaiveFrontierSampler(const graph::CsrGraph& g, const FrontierParams& params);

  std::vector<graph::Vid> sample_vertices(util::Xoshiro256& rng) override;

  std::string name() const override { return "frontier-naive"; }

 private:
  graph::Eid weight(graph::Vid v) const;

  const graph::CsrGraph& g_;
  FrontierParams p_;
};

}  // namespace gsgcn::sampling

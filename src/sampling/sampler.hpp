#pragma once
// Vertex-sampler interface.
//
// A sampler draws a multiset of vertices from the fixed training graph;
// the caller (SubgraphPool / Trainer) induces the subgraph. Samplers are
// stateful scratch-holders but logically pure given the RNG: two calls
// with equal RNG state produce equal output — the reproducibility tests
// rely on this.

#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "util/rng.hpp"

namespace gsgcn::sampling {

class VertexSampler {
 public:
  virtual ~VertexSampler() = default;

  /// Draw one batch of vertex ids (may contain duplicates; the inducer
  /// dedups). Size is governed by the sampler's own budget parameter.
  virtual std::vector<graph::Vid> sample_vertices(util::Xoshiro256& rng) = 0;

  virtual std::string name() const = 0;
};

}  // namespace gsgcn::sampling

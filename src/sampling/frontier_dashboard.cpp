#include "sampling/frontier_dashboard.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace gsgcn::sampling {

namespace {
/// Paper's DB sizing: η · m · d̄ entries, where d̄ is the mean degree of
/// the training graph (capped degrees when a cap is set).
std::size_t dashboard_capacity(const graph::CsrGraph& g,
                               const FrontierParams& p) {
  double dbar = g.average_degree();
  if (p.degree_cap > 0) dbar = std::min(dbar, static_cast<double>(p.degree_cap));
  dbar = std::max(dbar, 1.0);
  return static_cast<std::size_t>(
      std::ceil(p.eta * static_cast<double>(p.frontier_size) * dbar));
}
}  // namespace

DashboardFrontierSampler::DashboardFrontierSampler(const graph::CsrGraph& g,
                                                   const FrontierParams& params,
                                                   IntraMode intra)
    : g_(g), p_(params), db_(dashboard_capacity(g, params), intra) {
  if (p_.frontier_size == 0 || p_.budget <= p_.frontier_size) {
    throw std::invalid_argument("frontier sampler: need budget > m > 0");
  }
  if (g_.num_vertices() < p_.frontier_size) {
    throw std::invalid_argument("frontier sampler: m exceeds |V|");
  }
  if (p_.eta <= 1.0) {
    throw std::invalid_argument("frontier sampler: eta must exceed 1");
  }
  db_.set_degree_cap(p_.degree_cap);
}

std::vector<graph::Vid> DashboardFrontierSampler::sample_vertices(
    util::Xoshiro256& rng) {
  const graph::Vid m = p_.frontier_size;
  const std::size_t probes0 = db_.probes();
  const std::size_t cleanups0 = db_.cleanups();

  db_.clear();
  std::vector<graph::Vid> seed =
      util::sample_without_replacement(g_.num_vertices(), m, rng);
  std::vector<graph::Vid> sampled(seed);
  sampled.reserve(p_.budget);

  // Initialize DB + IA from the seed frontier (Algorithm 3, lines 7-15).
  for (const graph::Vid v : seed) {
    const graph::Eid d = g_.degree(v);
    if (db_.needs_cleanup(d)) {
      db_.cleanup();
      if (db_.needs_cleanup(d)) db_.grow_to_fit(d);
    }
    db_.add(v, d);
  }

  // Main loop (Algorithm 3, lines 17-25).
  for (graph::Vid i = m; i < p_.budget; ++i) {
    graph::Vid vpop = db_.pop(rng);
    if (vpop == Dashboard::kNoVertex) {
      // All frontier vertices have degree 0 — reseed (mirrors the naive
      // sampler's degenerate-case handling).
      GSGCN_COUNTER_INC("sampler.frontier_restarts");
      db_.clear();
      seed = util::sample_without_replacement(g_.num_vertices(), m, rng);
      bool any_edges = false;
      for (const graph::Vid v : seed) {
        const graph::Eid d = g_.degree(v);
        if (d > 0) any_edges = true;
        if (db_.needs_cleanup(d)) db_.cleanup();
        db_.add(v, d);
      }
      if (!any_edges) break;  // edgeless graph
      vpop = db_.pop(rng);
    }
    const auto nbrs = g_.neighbors(vpop);
    const graph::Vid vnew =
        nbrs[rng.below(static_cast<std::uint32_t>(nbrs.size()))];

    const graph::Eid d = g_.degree(vnew);
    if (db_.needs_cleanup(d)) {  // line 20
      db_.cleanup();
      if (db_.needs_cleanup(d)) db_.grow_to_fit(d);
    }
    db_.add(vnew, d);
    sampled.push_back(vpop);  // Algorithm 2 line 7: Vsub ← Vsub ∪ {u}
  }

  last_probes_ = db_.probes() - probes0;
  last_cleanups_ = db_.cleanups() - cleanups0;
  GSGCN_COUNTER_INC("sampler.samples");
  GSGCN_COUNTER_ADD("dashboard.probes", last_probes_);
  // Theorem 1 bounds the expected probes per pop by η/(η−1); the
  // histogram makes the bound observable. Pops ≈ budget − m (one per
  // main-loop iteration; reseeds add at most one more each).
  if (p_.budget > m) {
    GSGCN_HISTOGRAM_OBSERVE(
        "sampler.probes_per_pop",
        static_cast<double>(last_probes_) / static_cast<double>(p_.budget - m),
        1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 16.0, 32.0);
  }
  return sampled;
}

}  // namespace gsgcn::sampling

#include "sampling/pool.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace gsgcn::sampling {

SubgraphPool::SubgraphPool(const graph::CsrGraph& g, SamplerFactory factory,
                           int p_inter, std::uint64_t seed, bool pin_threads)
    : g_(g), seed_(seed), pin_threads_(pin_threads) {
  if (p_inter <= 0) throw std::invalid_argument("SubgraphPool: p_inter <= 0");
  samplers_.reserve(static_cast<std::size_t>(p_inter));
  inducers_.reserve(static_cast<std::size_t>(p_inter));
  for (int i = 0; i < p_inter; ++i) {
    samplers_.push_back(factory(i));
    inducers_.push_back(std::make_unique<graph::Inducer>(g_));
  }
}

void SubgraphPool::refill() {
  GSGCN_TRACE_SPAN("pool/refill");
  [[maybe_unused]] const util::Timer refill_timer;
  util::ScopedPhase phase(sample_time_);
  const int p = p_inter();
  const std::size_t base = queue_.size();
  queue_.resize(base + static_cast<std::size_t>(p));
  const std::uint64_t slot_base = next_slot_;
  util::parallel_for(p, p, [&](std::int64_t i) {
    // Pin for the duration of this sample only; the guard restores the
    // thread's previous mask so pooled worker threads are not left
    // confined to one CPU after refill returns.
    util::ScopedAffinity affinity;
    if (pin_threads_) (void)affinity.pin(static_cast<int>(i));
    // The RNG is derived from the global slot index, not the instance
    // index: slot k produces the same subgraph no matter which instance
    // (or p_inter configuration) executes it.
    auto rng = util::Xoshiro256::stream(seed_, slot_base + static_cast<std::uint64_t>(i));
    std::vector<graph::Vid> vertices;
    {
      GSGCN_TRACE_SPAN_ID("pool/sample", slot_base + static_cast<std::uint64_t>(i));
      vertices = samplers_[static_cast<std::size_t>(i)]->sample_vertices(rng);
    }
    GSGCN_ASSERT(!vertices.empty(), "sampler returned an empty vertex set");
    // Induction stays single-threaded here: the parallelism budget is
    // already spent across instances (paper: p_intra is vector lanes).
    GSGCN_TRACE_SPAN_ID("pool/induce", slot_base + static_cast<std::uint64_t>(i));
    queue_[base + static_cast<std::size_t>(i)] =
        inducers_[static_cast<std::size_t>(i)]->induce(vertices, 1);
  });
  next_slot_ += static_cast<std::uint64_t>(p);
  GSGCN_COUNTER_INC("pool.refills");
  GSGCN_HISTOGRAM_OBSERVE("pool.refill_seconds", refill_timer.seconds(), 0.001,
                          0.005, 0.02, 0.1, 0.5, 2.0);
  GSGCN_GAUGE_SET("pool.occupancy", queue_.size());
}

graph::Subgraph SubgraphPool::pop() {
  if (queue_.empty()) {
    // A pop hitting an empty queue means the consumer outran the pool and
    // must wait for a full refill — the stall the pool exists to hide.
    GSGCN_COUNTER_INC("pool.stalls");
    refill();
  }
  GSGCN_ASSERT(!queue_.empty(), "refill produced no subgraphs");
  graph::Subgraph out = std::move(queue_.front());
  queue_.pop_front();
  GSGCN_GAUGE_SET("pool.occupancy", queue_.size());
  return out;
}

}  // namespace gsgcn::sampling

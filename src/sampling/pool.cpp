#include "sampling/pool.hpp"

#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/perf.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/fault.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace gsgcn::sampling {

SubgraphPool::SubgraphPool(const graph::CsrGraph& g, SamplerFactory factory,
                           PoolOptions options)
    : g_(g),
      seed_(options.seed),
      pin_threads_(options.pin_threads),
      async_(options.async) {
  if (options.p_inter <= 0) {
    throw std::invalid_argument("SubgraphPool: p_inter <= 0");
  }
  const auto p = static_cast<std::size_t>(options.p_inter);
  capacity_ = options.capacity == 0 ? 2 * p : std::max(options.capacity, p);
  samplers_.reserve(p);
  inducers_.reserve(p);
  for (int i = 0; i < options.p_inter; ++i) {
    samplers_.push_back(factory(i));
    inducers_.push_back(std::make_unique<graph::Inducer>(g_));
  }
  if (async_) start_async();
}

SubgraphPool::SubgraphPool(const graph::CsrGraph& g, SamplerFactory factory,
                           int p_inter, std::uint64_t seed, bool pin_threads)
    : SubgraphPool(g, std::move(factory), [&] {
        PoolOptions o;
        o.p_inter = p_inter;
        o.seed = seed;
        o.pin_threads = pin_threads;
        return o;
      }()) {}

SubgraphPool::~SubgraphPool() { stop_async(); }

std::vector<graph::Subgraph> SubgraphPool::produce_batch(
    std::uint64_t slot_base) {
  GSGCN_TRACE_SPAN("pool/refill");
  // No work model: sampling is control-flow-bound, so only wall time and
  // counter ratios (IPC, miss rate) are meaningful for this phase.
  GSGCN_PERF_REGION("sample");
  const util::Timer batch_timer;
  const int p = p_inter();
  std::vector<graph::Subgraph> batch(static_cast<std::size_t>(p));
  // An exception escaping an OpenMP region body would terminate the
  // process; collect the first one and rethrow it on this thread instead.
  // Batch-level fault site: fires on the producer thread in async mode,
  // on the consumer during inline refills — both rethrow through pop().
  util::fault_point("pool.produce");
  util::ExceptionCollector errors;
  util::parallel_for(p, p, [&](std::int64_t i) {
    errors.run([&] {
      // Per-slot fault site inside the worker body: exercises the
      // ExceptionCollector path an organic sampler failure would take.
      util::fault_point("pool.sample");
      // Pin for the duration of this sample only; the guard restores the
      // thread's previous mask so pooled worker threads are not left
      // confined to one CPU after the batch completes.
      util::ScopedAffinity affinity;
      if (pin_threads_) (void)affinity.pin(static_cast<int>(i));
      // The RNG is derived from the global slot index, not the instance
      // index: slot k produces the same subgraph no matter which instance
      // (or p_inter / sync vs async configuration) executes it.
      auto rng = util::Xoshiro256::stream(
          seed_, slot_base + static_cast<std::uint64_t>(i));
      std::vector<graph::Vid> vertices;
      {
        GSGCN_TRACE_SPAN_ID("pool/sample",
                            slot_base + static_cast<std::uint64_t>(i));
        vertices = samplers_[static_cast<std::size_t>(i)]->sample_vertices(rng);
      }
      GSGCN_ASSERT(!vertices.empty(), "sampler returned an empty vertex set");
      // Induction stays single-threaded here: the parallelism budget is
      // already spent across instances (paper: p_intra is vector lanes).
      GSGCN_TRACE_SPAN_ID("pool/induce",
                          slot_base + static_cast<std::uint64_t>(i));
      batch[static_cast<std::size_t>(i)] =
          inducers_[static_cast<std::size_t>(i)]->induce(vertices, 1);
    });
  });
  errors.rethrow_if_any();
  const double elapsed = batch_timer.seconds();
  {
    util::MutexLock lock(mu_);
    sample_seconds_ += elapsed;
  }
  GSGCN_COUNTER_INC("pool.refills");
  GSGCN_HISTOGRAM_OBSERVE("pool.refill_seconds", elapsed, 0.001, 0.005, 0.02,
                          0.1, 0.5, 2.0);
  return batch;
}

void SubgraphPool::push_batch_locked(std::vector<graph::Subgraph>&& batch) {
  for (graph::Subgraph& s : batch) queue_.push_back(std::move(s));
  cold_ = false;
  GSGCN_GAUGE_SET("pool.occupancy", queue_.size());
  GSGCN_TRACE_COUNTER("pool/occupancy", queue_.size());
  not_empty_.notify_all();
}

void SubgraphPool::refill() {
  std::uint64_t slot_base;
  {
    util::MutexLock lock(mu_);
    GSGCN_ASSERT(!producer_live_,
                 "refill() while the async producer is live would race on "
                 "the sampler instances");
    slot_base = next_slot_;
    next_slot_ += static_cast<std::uint64_t>(p_inter());
  }
  std::vector<graph::Subgraph> batch = produce_batch(slot_base);
  util::MutexLock lock(mu_);
  push_batch_locked(std::move(batch));
}

void SubgraphPool::producer_main() {
  const auto p = static_cast<std::uint64_t>(p_inter());
  for (;;) {
    std::uint64_t slot_base;
    {
      util::MutexLock lock(mu_);
      const util::Timer idle_timer;
      space_.wait(mu_, [&] {
        mu_.AssertHeld();  // wait predicates run with the lock held
        return stop_ ||
               queue_.size() + static_cast<std::size_t>(p) <= capacity_;
      });
      producer_idle_seconds_ += idle_timer.seconds();
      if (stop_) {
        producer_live_ = false;
        not_empty_.notify_all();
        return;
      }
      slot_base = next_slot_;
      next_slot_ += p;
    }
    std::vector<graph::Subgraph> batch;
    try {
      batch = produce_batch(slot_base);
    } catch (...) {
      util::MutexLock lock(mu_);
      if (!error_) error_ = std::current_exception();
      producer_live_ = false;
      not_empty_.notify_all();
      return;
    }
    util::MutexLock lock(mu_);
    // Push even when a stop raced in: the slots were already claimed, and
    // dropping them would put a hole in the deterministic sequence. The
    // queue may briefly exceed capacity by at most one batch.
    push_batch_locked(std::move(batch));
    if (stop_) {
      producer_live_ = false;
      not_empty_.notify_all();
      return;
    }
  }
}

void SubgraphPool::start_async() {
  if (!async_) return;
  util::MutexLock lifecycle(lifecycle_mu_);
  {
    util::MutexLock lock(mu_);
    if (producer_live_) return;
  }
  if (producer_.joinable()) {
    producer_.join();  // reap a previously stopped producer
  }
  util::MutexLock lock(mu_);
  stop_ = false;
  producer_live_ = true;
  producer_ = std::thread([this] { producer_main(); });
}

void SubgraphPool::stop_async() {
  util::MutexLock lifecycle(lifecycle_mu_);
  {
    util::MutexLock lock(mu_);
    stop_ = true;
  }
  space_.notify_all();
  // Join outside mu_ (the producer needs it to finish) but under
  // lifecycle_mu_, so concurrent stop_async/start_async calls cannot both
  // operate on the handle.
  if (producer_.joinable()) producer_.join();
  util::MutexLock lock(mu_);
  producer_live_ = false;
}

bool SubgraphPool::async_running() const {
  util::MutexLock lock(mu_);
  return producer_live_;
}

void SubgraphPool::prefill() {
  util::MutexLock lock(mu_);
  if (!queue_.empty()) return;
  ++cold_start_count_;
  GSGCN_COUNTER_INC("pool.cold_start");
  if (producer_live_) {
    GSGCN_TRACE_SPAN("pool/prefill_wait");
    not_empty_.wait(mu_, [&] {
      mu_.AssertHeld();  // wait predicates run with the lock held
      return !queue_.empty() || error_ || !producer_live_;
    });
  }
  if (queue_.empty()) {
    if (error_) std::rethrow_exception(error_);
    const std::uint64_t slot_base = next_slot_;
    next_slot_ += static_cast<std::uint64_t>(p_inter());
    lock.Unlock();
    std::vector<graph::Subgraph> batch = produce_batch(slot_base);
    lock.Lock();
    push_batch_locked(std::move(batch));
  }
}

graph::Subgraph SubgraphPool::pop() {
  util::MutexLock lock(mu_);
  if (queue_.empty()) {
    // Classify the wait: the first-ever fill is a cold start (the pool
    // could not have kept up with anything yet); afterwards an empty
    // queue means the consumer genuinely outran the producer — the stall
    // the async pipeline exists to hide.
    if (cold_) {
      ++cold_start_count_;
      GSGCN_COUNTER_INC("pool.cold_start");
    } else {
      ++stall_count_;
      GSGCN_COUNTER_INC("pool.stalls");
    }
    const util::Timer wait_timer;
    if (producer_live_) {
      GSGCN_TRACE_SPAN("pool/pop_wait");
      not_empty_.wait(mu_, [&] {
        mu_.AssertHeld();  // wait predicates run with the lock held
        return !queue_.empty() || error_ || !producer_live_;
      });
    }
    if (queue_.empty()) {
      // No producer to wait on (sync mode, stopped, or failed): rethrow a
      // producer error once its surviving output has drained, otherwise
      // continue the slot sequence with an inline refill.
      if (error_) std::rethrow_exception(error_);
      const std::uint64_t slot_base = next_slot_;
      next_slot_ += static_cast<std::uint64_t>(p_inter());
      lock.Unlock();
      std::vector<graph::Subgraph> batch = produce_batch(slot_base);
      lock.Lock();
      push_batch_locked(std::move(batch));
    }
    pop_wait_seconds_ += wait_timer.seconds();
  }
  GSGCN_ASSERT(!queue_.empty(), "refill produced no subgraphs");
  graph::Subgraph out = std::move(queue_.front());
  queue_.pop_front();
  ++popped_;
  GSGCN_GAUGE_SET("pool.occupancy", queue_.size());
  GSGCN_TRACE_COUNTER("pool/occupancy", queue_.size());
  space_.notify_one();
  return out;
}

std::size_t SubgraphPool::available() const {
  util::MutexLock lock(mu_);
  return queue_.size();
}

std::vector<graph::Vid> SubgraphPool::peek_next_orig_ids() const {
  util::MutexLock lock(mu_);
  if (queue_.empty()) return {};
  return queue_.front().orig_ids;
}

std::uint64_t SubgraphPool::consumed() const {
  util::MutexLock lock(mu_);
  return popped_;
}

void SubgraphPool::seek(std::uint64_t slot) {
  stop_async();  // joins the producer; an in-flight batch lands first
  util::MutexLock lock(mu_);
  queue_.clear();
  next_slot_ = slot;
  popped_ = slot;
  error_ = nullptr;
  cold_ = true;  // the next fill is a warmup, not a starvation stall
  GSGCN_GAUGE_SET("pool.occupancy", queue_.size());
}

double SubgraphPool::sampling_seconds() const {
  util::MutexLock lock(mu_);
  return sample_seconds_;
}

double SubgraphPool::pop_wait_seconds() const {
  util::MutexLock lock(mu_);
  return pop_wait_seconds_;
}

double SubgraphPool::producer_idle_seconds() const {
  util::MutexLock lock(mu_);
  return producer_idle_seconds_;
}

std::uint64_t SubgraphPool::stalls() const {
  util::MutexLock lock(mu_);
  return stall_count_;
}

std::uint64_t SubgraphPool::cold_starts() const {
  util::MutexLock lock(mu_);
  return cold_start_count_;
}

void SubgraphPool::reset_accounting() {
  util::MutexLock lock(mu_);
  sample_seconds_ = 0.0;
  pop_wait_seconds_ = 0.0;
  producer_idle_seconds_ = 0.0;
  stall_count_ = 0;
  cold_start_count_ = 0;
}

}  // namespace gsgcn::sampling

#include "sampling/pool.hpp"

#include <omp.h>

#include <stdexcept>

#include "util/parallel.hpp"

namespace gsgcn::sampling {

SubgraphPool::SubgraphPool(const graph::CsrGraph& g, SamplerFactory factory,
                           int p_inter, std::uint64_t seed, bool pin_threads)
    : g_(g), pin_threads_(pin_threads) {
  if (p_inter <= 0) throw std::invalid_argument("SubgraphPool: p_inter <= 0");
  samplers_.reserve(static_cast<std::size_t>(p_inter));
  inducers_.reserve(static_cast<std::size_t>(p_inter));
  rngs_.reserve(static_cast<std::size_t>(p_inter));
  for (int i = 0; i < p_inter; ++i) {
    samplers_.push_back(factory(i));
    inducers_.push_back(std::make_unique<graph::Inducer>(g_));
    rngs_.push_back(util::Xoshiro256::stream(seed, static_cast<std::uint64_t>(i)));
  }
}

void SubgraphPool::refill() {
  util::ScopedPhase phase(sample_time_);
  const int p = p_inter();
  const std::size_t base = queue_.size();
  queue_.resize(base + static_cast<std::size_t>(p));
#pragma omp parallel for num_threads(p) schedule(static)
  for (int i = 0; i < p; ++i) {
    if (pin_threads_) (void)util::pin_current_thread_to_cpu(i);
    const auto vertices = samplers_[static_cast<std::size_t>(i)]->sample_vertices(
        rngs_[static_cast<std::size_t>(i)]);
    // Induction stays single-threaded here: the parallelism budget is
    // already spent across instances (paper: p_intra is vector lanes).
    queue_[base + static_cast<std::size_t>(i)] =
        inducers_[static_cast<std::size_t>(i)]->induce(vertices, 1);
  }
}

graph::Subgraph SubgraphPool::pop() {
  if (queue_.empty()) refill();
  graph::Subgraph out = std::move(queue_.back());
  queue_.pop_back();
  return out;
}

}  // namespace gsgcn::sampling

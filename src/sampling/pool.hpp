#pragma once
// Subgraph pool — the training scheduler of paper Algorithm 5.
//
// Sampling and GCN computation have no dependency across iterations (the
// training graph is fixed), so the scheduler keeps a pool { G_i } of
// pre-sampled subgraphs: p_inter sampler instances run in parallel
// (inter-subgraph parallelism), each of which parallelizes internally
// with AVX2 (intra-subgraph parallelism). The trainer pops one subgraph
// per weight update.
//
// Two operating modes share one FIFO queue:
//
//  - Synchronous (default): pop() on an empty queue produces a batch of
//    p_inter subgraphs inline — the consumer pays the full sampling
//    latency every p_inter iterations.
//  - Asynchronous (`PoolOptions::async`): a background producer thread
//    continuously refills the queue up to `capacity` while the trainer
//    consumes, so sampling overlaps with training and the consumer only
//    blocks when it genuinely outruns the producer. The producer claims
//    slot ranges under the queue mutex, samples outside it, and appends
//    whole batches in slot order; a stop request lets an in-flight batch
//    land (briefly exceeding capacity by at most one batch) so no claimed
//    slot is ever dropped. Sampler exceptions are captured on the
//    producer and rethrown from pop() once the queue drains.
//
// Determinism contract: the k-th subgraph ever popped is drawn from RNG
// stream (seed, k), where k is a global slot counter that advances with
// every sample produced — NOT from a per-instance stream. Combined with
// FIFO pop order, the popped sequence is a pure function of `seed`:
// identical for p_inter = 1, 2, 4, ..., identical between sync and async
// mode, regardless of OS scheduling. This is what makes sanitizer/debug/
// release and sync/async runs comparable bit-for-bit and is asserted by
// tests/test_pool.cpp.
//
// Stall accounting: the unavoidable first fill of an empty pool is a
// cold start (`pool.cold_start`), not a stall — call prefill() before a
// timed loop to take it off the critical path. `pool.stalls` counts only
// genuine starvation: a pop that found the queue empty after the pool
// had already been filled once.

#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "graph/subgraph.hpp"
#include "sampling/sampler.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace gsgcn::sampling {

/// Builds the sampler for instance i (each parallel instance owns its own
/// sampler so there is no shared mutable state between them).
using SamplerFactory =
    std::function<std::unique_ptr<VertexSampler>(int instance)>;

struct PoolOptions {
  /// Number of concurrent sampler instances (paper's p_inter); also the
  /// batch size of every refill.
  int p_inter = 1;
  std::uint64_t seed = 1;
  /// With `pin_threads` (default on), each sampler thread is bound to a
  /// core for the duration of its sample — as the paper prescribes, so
  /// its Dashboard stays resident in that core's private cache — and its
  /// previous affinity mask is restored afterwards (OpenMP reuses worker
  /// threads across regions; leaking a one-CPU mask would serialize every
  /// later parallel region). Pinning failures (e.g. inside restrictive
  /// containers) are silently tolerated.
  bool pin_threads = true;
  /// Run a background producer thread (see header note).
  bool async = false;
  /// Queue bound for async mode: the producer sleeps while fewer than
  /// p_inter free slots remain. 0 → 2·p_inter; values below p_inter are
  /// raised to p_inter (a batch must fit).
  std::size_t capacity = 0;
};

class SubgraphPool {
 public:
  SubgraphPool(const graph::CsrGraph& g, SamplerFactory factory,
               PoolOptions options);

  /// Legacy synchronous constructor (p_inter samplers, inline refills).
  SubgraphPool(const graph::CsrGraph& g, SamplerFactory factory, int p_inter,
               std::uint64_t seed, bool pin_threads = true);

  /// Stops and joins the producer; subgraphs still queued are discarded.
  ~SubgraphPool();

  /// Pop the oldest pooled subgraph. Blocks on the producer in async
  /// mode; refills inline otherwise. Rethrows a producer-side sampler
  /// exception once the already-produced subgraphs have drained.
  graph::Subgraph pop() EXCLUDES(mu_);

  /// Synchronously produce one batch of p_inter subgraphs and append
  /// them. Invalid while the async producer is live (checked build
  /// assert): both sides would mutate the shared sampler instances.
  void refill() EXCLUDES(mu_);

  /// Warm the pool before a timed loop: ensures at least one batch is
  /// queued, tagging the fill as `pool.cold_start` rather than a stall.
  /// In async mode this waits for the producer's first batch.
  void prefill() EXCLUDES(mu_);

  /// Start the background producer (no-op unless constructed with
  /// `async`, idempotent). The async constructor starts it already; this
  /// restarts production after stop_async(). Lifecycle calls
  /// (start_async/stop_async/seek) may race freely with pop(); they are
  /// serialized against EACH OTHER by lifecycle_mu_.
  void start_async() EXCLUDES(lifecycle_mu_, mu_);

  /// Stop and join the producer. An in-flight batch is appended first,
  /// so the slot sequence has no holes; queued subgraphs stay poppable
  /// and later pops continue the sequence with inline refills. Called by
  /// the trainer before scraping metrics (obs quiescent-point contract)
  /// and by the destructor.
  void stop_async() EXCLUDES(lifecycle_mu_, mu_);

  /// True while the producer thread is accepting work.
  bool async_running() const EXCLUDES(mu_);

  /// Original-graph vertex ids of the oldest queued subgraph (the one the
  /// next pop() returns), or empty when nothing is queued. This is the
  /// lookahead hook for the feature store's mmap prefetch: the trainer
  /// peeks the upcoming gather set and issues madvise hints while the
  /// current subgraph trains. Purely advisory — peeking never consumes.
  std::vector<graph::Vid> peek_next_orig_ids() const EXCLUDES(mu_);

  std::size_t available() const EXCLUDES(mu_);
  std::size_t capacity() const { return capacity_; }
  int p_inter() const { return static_cast<int>(samplers_.size()); }

  /// Number of subgraphs popped so far. Because pops are FIFO and slot k
  /// is drawn from RNG stream (seed, k), this single cursor IS the full
  /// sampler state: checkpointing it (and later seek()ing to it) replays
  /// the byte-identical subgraph sequence.
  std::uint64_t consumed() const EXCLUDES(mu_);

  /// Rewind/fast-forward the slot cursor to `slot`: stops the producer,
  /// discards queued-but-unpopped subgraphs (they are regenerated
  /// deterministically), clears any sticky producer error, and marks the
  /// pool cold so the next fill counts as a cold start. The caller
  /// restarts the pipeline with start_async()/prefill(). This is the
  /// checkpoint-restore and divergence-rollback primitive.
  void seek(std::uint64_t slot) EXCLUDES(lifecycle_mu_, mu_);

  /// Total wall time spent producing batches — the "Sampling" slice of
  /// the Figure-3D execution breakdown. In async mode this overlaps with
  /// training, so it is *not* consumer critical-path time (that is
  /// pop_wait_seconds()).
  double sampling_seconds() const EXCLUDES(mu_);
  /// Consumer time blocked inside pop(): cv waits in async mode, inline
  /// refills in sync mode. This is the sampler's true contribution to the
  /// training critical path.
  double pop_wait_seconds() const EXCLUDES(mu_);
  /// Producer time spent waiting for queue space (async only) — high
  /// values mean the pool is over-provisioned, zero means it can barely
  /// keep up.
  double producer_idle_seconds() const EXCLUDES(mu_);

  /// Pops that found the queue empty after the pool had been filled once
  /// (genuine starvation; excludes the cold start).
  std::uint64_t stalls() const EXCLUDES(mu_);
  /// Cold-start fills: first refill of an empty pool, incl. prefill().
  std::uint64_t cold_starts() const EXCLUDES(mu_);

  /// Reset all timing and stall accounting (queue and slot counter keep
  /// their state — the popped sequence is unaffected).
  void reset_accounting() EXCLUDES(mu_);

 private:
  /// Sample the batch for slots [slot_base, slot_base + p_inter) outside
  /// the queue lock; worker exceptions are collected and rethrown here.
  std::vector<graph::Subgraph> produce_batch(std::uint64_t slot_base)
      EXCLUDES(mu_);
  void producer_main() EXCLUDES(mu_);
  void push_batch_locked(std::vector<graph::Subgraph>&& batch) REQUIRES(mu_);

  const graph::CsrGraph& g_;
  // Sampler/inducer instances are mutated only by whoever produces a
  // batch; the producer_live_ handshake (asserted in refill()) guarantees
  // a single producer at a time, so they need no mutex of their own.
  std::vector<std::unique_ptr<VertexSampler>> samplers_;
  std::vector<std::unique_ptr<graph::Inducer>> inducers_;
  std::uint64_t seed_;
  bool pin_threads_;
  bool async_;
  std::size_t capacity_;

  /// Serializes producer lifecycle transitions (start_async, stop_async,
  /// seek) against each other — two concurrent stop_async calls would
  /// otherwise both join() producer_. Always acquired before mu_; never
  /// held while producing, so pop()/refill() proceed untouched.
  mutable util::Mutex lifecycle_mu_ ACQUIRED_BEFORE(mu_);
  mutable util::Mutex mu_;
  util::CondVar not_empty_;  // producer → consumer
  util::CondVar space_;      // consumer → producer
  std::deque<graph::Subgraph> queue_ GUARDED_BY(mu_);
  /// Global sample counter; see header note.
  std::uint64_t next_slot_ GUARDED_BY(mu_) = 0;
  /// Subgraphs consumed; see consumed().
  std::uint64_t popped_ GUARDED_BY(mu_) = 0;
  /// True until the first batch lands in the queue.
  bool cold_ GUARDED_BY(mu_) = true;
  /// Producer shutdown request.
  bool stop_ GUARDED_BY(mu_) = false;
  /// Producer thread is producing.
  bool producer_live_ GUARDED_BY(mu_) = false;
  /// First producer-side exception (sticky).
  std::exception_ptr error_ GUARDED_BY(mu_);
  double sample_seconds_ GUARDED_BY(mu_) = 0.0;
  double pop_wait_seconds_ GUARDED_BY(mu_) = 0.0;
  double producer_idle_seconds_ GUARDED_BY(mu_) = 0.0;
  std::uint64_t stall_count_ GUARDED_BY(mu_) = 0;
  std::uint64_t cold_start_count_ GUARDED_BY(mu_) = 0;
  /// The producer thread handle. Guarded by lifecycle_mu_, NOT mu_: a
  /// join() must not block other threads out of the queue lock, and the
  /// producer itself never touches the handle.
  std::thread producer_ GUARDED_BY(lifecycle_mu_);
};

}  // namespace gsgcn::sampling

#pragma once
// Subgraph pool — the training scheduler of paper Algorithm 5.
//
// Sampling and GCN computation have no dependency across iterations (the
// training graph is fixed), so the scheduler keeps a pool { G_i } of
// pre-sampled subgraphs: when the pool runs dry it launches p_inter
// sampler instances in parallel (inter-subgraph parallelism), each of
// which parallelizes internally with AVX2 (intra-subgraph parallelism).
// The trainer pops one subgraph per weight update.
//
// Determinism contract: the k-th subgraph ever popped is drawn from RNG
// stream (seed, k), where k is a global slot counter that advances with
// every sample produced — NOT from a per-instance stream. Combined with
// FIFO pop order, the popped sequence is a pure function of `seed`:
// identical for p_inter = 1, 2, 4, ... regardless of OS scheduling. This
// is what makes sanitizer/debug/release runs comparable bit-for-bit and
// is asserted by tests/test_pool.cpp.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "graph/subgraph.hpp"
#include "sampling/sampler.hpp"
#include "util/timer.hpp"

namespace gsgcn::sampling {

/// Builds the sampler for instance i (each parallel instance owns its own
/// sampler so there is no shared mutable state between them).
using SamplerFactory =
    std::function<std::unique_ptr<VertexSampler>(int instance)>;

class SubgraphPool {
 public:
  /// p_inter = number of concurrent sampler instances (paper's p_inter).
  /// With `pin_threads` (default on), each sampler thread is bound to a
  /// core for the duration of refill — as the paper prescribes, so its
  /// Dashboard stays resident in that core's private cache — and its
  /// previous affinity mask is restored afterwards (OpenMP reuses worker
  /// threads across regions; leaking a one-CPU mask would serialize every
  /// later parallel region). Pinning failures (e.g. inside restrictive
  /// containers) are silently tolerated.
  SubgraphPool(const graph::CsrGraph& g, SamplerFactory factory, int p_inter,
               std::uint64_t seed, bool pin_threads = true);

  /// Pop the oldest pooled subgraph, refilling first if the pool is empty.
  graph::Subgraph pop();

  /// Sample p_inter subgraphs in parallel and append them to the pool.
  void refill();

  std::size_t available() const { return queue_.size(); }
  int p_inter() const { return static_cast<int>(samplers_.size()); }

  /// Total wall time spent inside refill() — the "Sampling" slice of the
  /// Figure-3D execution breakdown.
  double sampling_seconds() const { return sample_time_.total_seconds(); }
  void reset_timer() { sample_time_.reset(); }

 private:
  const graph::CsrGraph& g_;
  std::vector<std::unique_ptr<VertexSampler>> samplers_;
  std::vector<std::unique_ptr<graph::Inducer>> inducers_;
  std::deque<graph::Subgraph> queue_;
  util::PhaseTimer sample_time_;
  std::uint64_t seed_;
  std::uint64_t next_slot_ = 0;  // global sample counter; see header note
  bool pin_threads_;
};

}  // namespace gsgcn::sampling

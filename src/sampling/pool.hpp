#pragma once
// Subgraph pool — the training scheduler of paper Algorithm 5.
//
// Sampling and GCN computation have no dependency across iterations (the
// training graph is fixed), so the scheduler keeps a pool { G_i } of
// pre-sampled subgraphs: when the pool runs dry it launches p_inter
// sampler instances in parallel (inter-subgraph parallelism), each of
// which parallelizes internally with AVX2 (intra-subgraph parallelism).
// The trainer pops one subgraph per weight update.

#include <functional>
#include <memory>
#include <vector>

#include "graph/subgraph.hpp"
#include "sampling/sampler.hpp"
#include "util/timer.hpp"

namespace gsgcn::sampling {

/// Builds the sampler for instance i (each parallel instance owns its own
/// sampler so there is no shared mutable state between them).
using SamplerFactory =
    std::function<std::unique_ptr<VertexSampler>(int instance)>;

class SubgraphPool {
 public:
  /// p_inter = number of concurrent sampler instances (paper's p_inter).
  /// Each instance i gets RNG stream (seed, i) — runs are reproducible for
  /// a fixed (seed, p_inter) regardless of OS scheduling.
  /// With `pin_threads` (default on), each sampler thread is bound to a
  /// core during refill, as the paper prescribes, so its Dashboard stays
  /// resident in that core's private cache. Pinning failures (e.g. inside
  /// restrictive containers) are silently tolerated.
  SubgraphPool(const graph::CsrGraph& g, SamplerFactory factory, int p_inter,
               std::uint64_t seed, bool pin_threads = true);

  /// Pop one subgraph, refilling the pool first if it is empty.
  graph::Subgraph pop();

  /// Sample p_inter subgraphs in parallel and append them to the pool.
  void refill();

  std::size_t available() const { return queue_.size(); }
  int p_inter() const { return static_cast<int>(samplers_.size()); }

  /// Total wall time spent inside refill() — the "Sampling" slice of the
  /// Figure-3D execution breakdown.
  double sampling_seconds() const { return sample_time_.total_seconds(); }
  void reset_timer() { sample_time_.reset(); }

 private:
  const graph::CsrGraph& g_;
  std::vector<std::unique_ptr<VertexSampler>> samplers_;
  std::vector<std::unique_ptr<graph::Inducer>> inducers_;
  std::vector<util::Xoshiro256> rngs_;
  std::vector<graph::Subgraph> queue_;
  util::PhaseTimer sample_time_;
  bool pin_threads_;
};

}  // namespace gsgcn::sampling

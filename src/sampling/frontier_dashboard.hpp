#pragma once
// Dashboard-based frontier sampler (paper Algorithm 3).
//
// Same sampling process as NaiveFrontierSampler — identical distribution
// over subgraphs for the same parameters — but each pop is O(η) expected
// probes plus O(deg) vectorizable memory writes instead of an O(m) scan,
// and the memory ops use AVX2 when available (the paper's p_intra
// parallelism). The enlargement factor η trades table size against
// cleanup frequency exactly as in Section IV-C's cost model.

#include "sampling/dashboard.hpp"
#include "sampling/frontier_naive.hpp"  // FrontierParams

namespace gsgcn::sampling {

class DashboardFrontierSampler final : public VertexSampler {
 public:
  DashboardFrontierSampler(const graph::CsrGraph& g,
                           const FrontierParams& params,
                           IntraMode intra = IntraMode::kAuto);

  std::vector<graph::Vid> sample_vertices(util::Xoshiro256& rng) override;

  std::string name() const override { return "frontier-dashboard"; }

  /// Cost counters for the Theorem-1 ablation (reset per sample call).
  std::size_t last_probes() const { return last_probes_; }
  std::size_t last_cleanups() const { return last_cleanups_; }

  const Dashboard& dashboard() const { return db_; }

 private:
  const graph::CsrGraph& g_;
  FrontierParams p_;
  Dashboard db_;
  std::size_t last_probes_ = 0;
  std::size_t last_cleanups_ = 0;
};

}  // namespace gsgcn::sampling

#include "gcn/adam.hpp"

#include <cmath>
#include <stdexcept>

namespace gsgcn::gcn {

std::size_t Adam::add_param(std::size_t rows, std::size_t cols) {
  m_.emplace_back(rows, cols);
  v_.emplace_back(rows, cols);
  return m_.size() - 1;
}

void Adam::begin_step() { ++t_; }

void Adam::update(std::size_t slot, tensor::Matrix& param,
                  const tensor::Matrix& grad) {
  if (slot >= m_.size()) throw std::out_of_range("Adam: unknown slot");
  if (t_ == 0) throw std::logic_error("Adam: update before begin_step");
  tensor::Matrix& m = m_[slot];
  tensor::Matrix& v = v_[slot];
  if (param.rows() != m.rows() || param.cols() != m.cols() ||
      grad.rows() != m.rows() || grad.cols() != m.cols()) {
    throw std::invalid_argument("Adam: shape mismatch for slot");
  }
  const float b1 = cfg_.beta1, b2 = cfg_.beta2;
  const double bc1 = 1.0 - std::pow(static_cast<double>(b1), static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(static_cast<double>(b2), static_cast<double>(t_));
  const float step = static_cast<float>(cfg_.lr / bc1);
  const float inv_bc2 = static_cast<float>(1.0 / bc2);

  float* p = param.data();
  float* mp = m.data();
  float* vp = v.data();
  const float* g = grad.data();
  const std::size_t sz = param.size();
  // Per-tensor gradient clipping by L2 norm.
  float clip_scale = 1.0f;
  if (cfg_.grad_clip > 0.0f) {
    double norm_sq = 0.0;
    for (std::size_t i = 0; i < sz; ++i) {
      norm_sq += static_cast<double>(g[i]) * g[i];
    }
    const double norm = std::sqrt(norm_sq);
    if (norm > cfg_.grad_clip) {
      clip_scale = static_cast<float>(cfg_.grad_clip / norm);
    }
  }
  for (std::size_t i = 0; i < sz; ++i) {
    const float gi = clip_scale * g[i] + cfg_.weight_decay * p[i];
    mp[i] = b1 * mp[i] + (1.0f - b1) * gi;
    vp[i] = b2 * vp[i] + (1.0f - b2) * gi * gi;
    p[i] -= step * mp[i] / (std::sqrt(vp[i] * inv_bc2) + cfg_.epsilon);
  }
}

}  // namespace gsgcn::gcn

#include "gcn/adam.hpp"

#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace gsgcn::gcn {

std::size_t Adam::add_param(std::size_t rows, std::size_t cols) {
  m_.emplace_back(rows, cols);
  v_.emplace_back(rows, cols);
  return m_.size() - 1;
}

void Adam::begin_step() { ++t_; }

void Adam::update(std::size_t slot, tensor::Matrix& param,
                  const tensor::Matrix& grad) {
  if (slot >= m_.size()) throw std::out_of_range("Adam: unknown slot");
  if (t_ == 0) throw std::logic_error("Adam: update before begin_step");
  tensor::Matrix& m = m_[slot];
  tensor::Matrix& v = v_[slot];
  if (param.rows() != m.rows() || param.cols() != m.cols() ||
      grad.rows() != m.rows() || grad.cols() != m.cols()) {
    throw std::invalid_argument("Adam: shape mismatch for slot");
  }
  const float b1 = cfg_.beta1, b2 = cfg_.beta2;
  const double bc1 = 1.0 - std::pow(static_cast<double>(b1), static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(static_cast<double>(b2), static_cast<double>(t_));
  const float step = static_cast<float>(cfg_.lr / bc1);
  const float inv_bc2 = static_cast<float>(1.0 / bc2);

  float* p = param.data();
  float* mp = m.data();
  float* vp = v.data();
  const float* g = grad.data();
  const std::size_t sz = param.size();
  // Per-tensor gradient clipping by L2 norm.
  float clip_scale = 1.0f;
  if (cfg_.grad_clip > 0.0f) {
    double norm_sq = 0.0;
    for (std::size_t i = 0; i < sz; ++i) {
      norm_sq += static_cast<double>(g[i]) * g[i];
    }
    const double norm = std::sqrt(norm_sq);
    if (norm > cfg_.grad_clip) {
      clip_scale = static_cast<float>(cfg_.grad_clip / norm);
    }
  }
  for (std::size_t i = 0; i < sz; ++i) {
    const float gi = clip_scale * g[i] + cfg_.weight_decay * p[i];
    mp[i] = b1 * mp[i] + (1.0f - b1) * gi;
    vp[i] = b2 * vp[i] + (1.0f - b2) * gi * gi;
    p[i] -= step * mp[i] / (std::sqrt(vp[i] * inv_bc2) + cfg_.epsilon);
  }
}

void Adam::save_state(std::ostream& out) const {
  const std::int64_t t = t_;
  const std::uint64_t slots = m_.size();
  out.write(reinterpret_cast<const char*>(&t), sizeof(t));
  out.write(reinterpret_cast<const char*>(&slots), sizeof(slots));
  for (std::size_t s = 0; s < m_.size(); ++s) {
    tensor::write_matrix(out, m_[s]);
    tensor::write_matrix(out, v_[s]);
  }
  if (!out) throw std::runtime_error("Adam::save_state: write failed");
}

void Adam::load_state(std::istream& in) {
  std::int64_t t = 0;
  std::uint64_t slots = 0;
  in.read(reinterpret_cast<char*>(&t), sizeof(t));
  in.read(reinterpret_cast<char*>(&slots), sizeof(slots));
  if (!in || t < 0) throw std::runtime_error("Adam::load_state: bad header");
  if (slots != m_.size()) {
    throw std::runtime_error("Adam::load_state: slot count mismatch: file has " +
                             std::to_string(slots) + ", optimizer has " +
                             std::to_string(m_.size()));
  }
  // Parse and validate everything before mutating, so a bad stream leaves
  // the optimizer exactly as it was.
  std::vector<tensor::Matrix> m_in, v_in;
  m_in.reserve(m_.size());
  v_in.reserve(v_.size());
  for (std::size_t s = 0; s < m_.size(); ++s) {
    tensor::Matrix m = tensor::read_matrix(in);
    tensor::Matrix v = tensor::read_matrix(in);
    if (m.rows() != m_[s].rows() || m.cols() != m_[s].cols() ||
        v.rows() != v_[s].rows() || v.cols() != v_[s].cols()) {
      throw std::runtime_error("Adam::load_state: shape mismatch at slot " +
                               std::to_string(s));
    }
    m_in.push_back(std::move(m));
    v_in.push_back(std::move(v));
  }
  m_ = std::move(m_in);
  v_ = std::move(v_in);
  t_ = t;
}

}  // namespace gsgcn::gcn

#pragma once
// One GCN layer (paper Algorithm 1, lines 7-9):
//
//   H_neigh = (A_GS)ᵀ · H_in · W_neigh      (mean aggregation + weights)
//   H_self  = H_in · W_self
//   H_out   = σ( H_self ‖ H_neigh )          (concat, then ReLU)
//
// Output width is therefore 2·out_dim. The feature aggregation runs
// through the feature-partitioned propagation kernel (Section V-B); the
// weight applications are GEMMs (Section V-A). Backward is hand-derived
// and validated against numerical differentiation in the tests.

#include "graph/csr.hpp"
#include "propagation/feature_partitioned.hpp"
#include "tensor/gemm.hpp"
#include "tensor/matrix.hpp"
#include "util/timer.hpp"

namespace gsgcn::gcn {

/// Per-phase timing shared by layers of one model — the Figure-3D
/// breakdown (feature propagation vs. weight application).
struct PhaseClock {
  util::PhaseTimer feature_prop;
  util::PhaseTimer weight_apply;
  void reset() {
    feature_prop.reset();
    weight_apply.reset();
  }
};

class GraphConvLayer {
 public:
  /// in_dim → 2·out_dim (self ‖ neigh). `relu` is off for pre-logit use.
  /// `aggregator` selects the neighbor-aggregation semantics (the paper
  /// uses the mean; sum and symmetric-GCN normalization are provided for
  /// the aggregator ablation).
  GraphConvLayer(std::size_t in_dim, std::size_t out_dim, bool relu,
                 util::Xoshiro256& rng,
                 propagation::AggregatorKind aggregator =
                     propagation::AggregatorKind::kMean);

  /// Inverted dropout on the layer input while training (0 = disabled).
  void set_dropout(float rate);
  float dropout() const { return dropout_rate_; }

  /// The dropout mask stream. Checkpointing saves/restores its state so a
  /// resumed run draws the same masks the uninterrupted run would have.
  util::Xoshiro256& dropout_rng() { return dropout_rng_; }
  const util::Xoshiro256& dropout_rng() const { return dropout_rng_; }

  /// Forward over the (sub)graph g. Keeps the activations needed by
  /// backward. `h_in` must stay alive until backward() returns. With
  /// `training` set, input dropout is applied (if configured).
  const tensor::Matrix& forward(const graph::CsrGraph& g,
                                const tensor::Matrix& h_in, int threads,
                                PhaseClock* clock = nullptr,
                                bool training = false);

  /// Backward: consumes d(H_out), fills the weight gradients and returns
  /// d(H_in). Must follow a forward() on the same graph/input.
  const tensor::Matrix& backward(const graph::CsrGraph& g,
                                 const tensor::Matrix& d_out, int threads,
                                 PhaseClock* clock = nullptr);

  std::size_t in_dim() const { return w_self_.rows(); }
  std::size_t out_dim() const { return w_self_.cols(); }     // per branch
  std::size_t output_width() const { return 2 * out_dim(); }  // concat

  tensor::Matrix& w_self() { return w_self_; }
  tensor::Matrix& w_neigh() { return w_neigh_; }
  tensor::Matrix& grad_w_self() { return d_w_self_; }
  tensor::Matrix& grad_w_neigh() { return d_w_neigh_; }
  const tensor::Matrix& w_self() const { return w_self_; }
  const tensor::Matrix& w_neigh() const { return w_neigh_; }

  bool has_relu() const { return relu_; }
  propagation::AggregatorKind aggregator() const { return aggregator_; }

 private:
  bool relu_;
  propagation::AggregatorKind aggregator_;
  float dropout_rate_ = 0.0f;
  util::Xoshiro256 dropout_rng_{0x5eedu};
  tensor::Matrix dropout_mask_;  // scaled keep-mask of the last forward
  tensor::Matrix h_dropped_;     // input after dropout (training only)
  bool used_dropout_ = false;
  tensor::Matrix w_self_;    // in_dim x out_dim
  tensor::Matrix w_neigh_;   // in_dim x out_dim
  tensor::Matrix d_w_self_;
  tensor::Matrix d_w_neigh_;

  // Cached activations (batch-sized; resized on demand). The self/neigh
  // GEMMs write straight into the two column halves of act_ (strided
  // views), and the ReLU is fused into their store epilogue — so act_
  // holds σ([H_self | H_neigh]) and IS the layer output; there is no
  // separate concat buffer, post-activation copy, or per-branch scratch.
  const tensor::Matrix* h_in_ = nullptr;
  tensor::Matrix h_agg_;  // A·H_in
  tensor::Matrix act_;    // σ([H_self | H_neigh]) — the layer output

  // Backward scratch. The concat gradient is consumed through strided
  // column views, so no split buffers exist; d_pre_ is only materialized
  // on the ReLU path (without ReLU, d_out is used in place).
  tensor::Matrix d_pre_;
  tensor::Matrix d_agg_;
  tensor::Matrix d_in_;
};

/// Resize helper: (re)allocate only when the shape changes, so steady-state
/// training does no allocation.
void ensure_shape(tensor::Matrix& m, std::size_t rows, std::size_t cols);

}  // namespace gsgcn::gcn

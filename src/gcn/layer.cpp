#include "gcn/layer.hpp"

#include <memory>
#include <stdexcept>

#include "obs/trace.hpp"
#include "tensor/ops.hpp"

namespace gsgcn::gcn {

void ensure_shape(tensor::Matrix& m, std::size_t rows, std::size_t cols) {
  if (m.rows() != rows || m.cols() != cols) {
    m = tensor::Matrix(rows, cols);
  }
}

GraphConvLayer::GraphConvLayer(std::size_t in_dim, std::size_t out_dim,
                               bool relu, util::Xoshiro256& rng,
                               propagation::AggregatorKind aggregator)
    : relu_(relu),
      aggregator_(aggregator),
      dropout_rng_(rng()),
      w_self_(tensor::Matrix::glorot(in_dim, out_dim, rng)),
      w_neigh_(tensor::Matrix::glorot(in_dim, out_dim, rng)),
      d_w_self_(in_dim, out_dim),
      d_w_neigh_(in_dim, out_dim) {
  if (in_dim == 0 || out_dim == 0) {
    throw std::invalid_argument("GraphConvLayer: zero dimension");
  }
}

void GraphConvLayer::set_dropout(float rate) {
  if (rate < 0.0f || rate >= 1.0f) {
    throw std::invalid_argument("set_dropout: rate must be in [0, 1)");
  }
  dropout_rate_ = rate;
}

const tensor::Matrix& GraphConvLayer::forward(const graph::CsrGraph& g,
                                              const tensor::Matrix& h_in_raw,
                                              int threads, PhaseClock* clock,
                                              bool training) {
  if (h_in_raw.cols() != in_dim() || h_in_raw.rows() != g.num_vertices()) {
    throw std::invalid_argument("GraphConvLayer::forward: input shape " +
                                h_in_raw.shape_str());
  }
  const std::size_t n = h_in_raw.rows();
  const std::size_t fo = out_dim();
  GSGCN_TRACE_SPAN_ID("layer/forward", n);

  // Inverted dropout on the input: keep with probability 1-p, scale by
  // 1/(1-p) so eval needs no rescaling.
  used_dropout_ = training && dropout_rate_ > 0.0f;
  if (used_dropout_) {
    ensure_shape(dropout_mask_, n, in_dim());
    ensure_shape(h_dropped_, n, in_dim());
    const float keep = 1.0f - dropout_rate_;
    const float scale = 1.0f / keep;
    for (std::size_t i = 0; i < dropout_mask_.size(); ++i) {
      dropout_mask_.data()[i] = dropout_rng_.uniformf() < keep ? scale : 0.0f;
      h_dropped_.data()[i] = dropout_mask_.data()[i] * h_in_raw.data()[i];
    }
  }
  const tensor::Matrix& h_in = used_dropout_ ? h_dropped_ : h_in_raw;
  h_in_ = &h_in;
  ensure_shape(h_agg_, n, in_dim());
  ensure_shape(pre_act_, n, 2 * fo);
  ensure_shape(h_out_, n, 2 * fo);

  // Feature aggregation — the paper's partitioned kernel (Section V-B).
  {
    propagation::FeaturePartitionOptions opts;
    opts.threads = threads;
    opts.aggregator = aggregator_;
    if (clock != nullptr) {
      util::ScopedPhase p(clock->feature_prop);
      propagation::propagate_feature_partitioned(g, h_in, h_agg_, opts);
    } else {
      propagation::propagate_feature_partitioned(g, h_in, h_agg_, opts);
    }
  }

  // Weight application — dense GEMMs into the two concat halves.
  {
    std::unique_ptr<util::ScopedPhase> p;
    if (clock != nullptr) p = std::make_unique<util::ScopedPhase>(clock->weight_apply);
    ensure_shape(d_self_, n, fo);   // reuse scratch as GEMM outputs
    ensure_shape(d_neigh_, n, fo);
    tensor::gemm_nn(h_in, w_self_, d_self_, 1.0f, 0.0f, threads);
    tensor::gemm_nn(h_agg_, w_neigh_, d_neigh_, 1.0f, 0.0f, threads);
    tensor::concat_cols(d_self_, d_neigh_, pre_act_, threads);
  }

  if (relu_) {
    tensor::relu_forward(pre_act_, h_out_, threads);
  } else {
    h_out_ = pre_act_;
  }
  return h_out_;
}

const tensor::Matrix& GraphConvLayer::backward(const graph::CsrGraph& g,
                                               const tensor::Matrix& d_out,
                                               int threads, PhaseClock* clock) {
  if (h_in_ == nullptr) {
    throw std::logic_error("GraphConvLayer::backward before forward");
  }
  const tensor::Matrix& h_in = *h_in_;
  const std::size_t n = h_in.rows();
  const std::size_t fo = out_dim();
  if (d_out.rows() != n || d_out.cols() != 2 * fo) {
    throw std::invalid_argument("GraphConvLayer::backward: grad shape " +
                                d_out.shape_str());
  }
  GSGCN_TRACE_SPAN_ID("layer/backward", n);
  ensure_shape(d_pre_, n, 2 * fo);
  ensure_shape(d_self_, n, fo);
  ensure_shape(d_neigh_, n, fo);
  ensure_shape(d_agg_, n, in_dim());
  ensure_shape(d_in_, n, in_dim());

  if (relu_) {
    tensor::relu_backward(pre_act_, d_out, d_pre_, threads);
  } else {
    d_pre_ = d_out;
  }
  tensor::split_cols(d_pre_, d_self_, d_neigh_, threads);

  {
    std::unique_ptr<util::ScopedPhase> p;
    if (clock != nullptr) p = std::make_unique<util::ScopedPhase>(clock->weight_apply);
    // Weight gradients.
    tensor::gemm_tn(h_in, d_self_, d_w_self_, 1.0f, 0.0f, threads);
    tensor::gemm_tn(h_agg_, d_neigh_, d_w_neigh_, 1.0f, 0.0f, threads);
    // Input gradient, dense parts: d_in = d_self·W_selfᵀ; d_agg = d_neigh·W_neighᵀ.
    tensor::gemm_nt(d_self_, w_self_, d_in_, 1.0f, 0.0f, threads);
    tensor::gemm_nt(d_neigh_, w_neigh_, d_agg_, 1.0f, 0.0f, threads);
  }

  // Sparse part: push d_agg back through the mean aggregation.
  {
    propagation::FeaturePartitionOptions opts;
    opts.threads = threads;
    opts.aggregator = aggregator_;
    std::unique_ptr<util::ScopedPhase> p;
    if (clock != nullptr) p = std::make_unique<util::ScopedPhase>(clock->feature_prop);
    // Reuse h_agg_ as scratch for the propagated gradient, then add.
    propagation::propagate_feature_partitioned_backward(g, d_agg_, h_agg_, opts);
  }
  tensor::add_scaled(d_in_, h_agg_, 1.0f, threads);
  // Undo the input dropout: gradients flow only through kept entries.
  if (used_dropout_) {
    for (std::size_t i = 0; i < d_in_.size(); ++i) {
      d_in_.data()[i] *= dropout_mask_.data()[i];
    }
  }
  return d_in_;
}

}  // namespace gsgcn::gcn

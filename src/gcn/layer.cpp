#include "gcn/layer.hpp"

#include <memory>
#include <stdexcept>

#include "obs/trace.hpp"
#include "tensor/ops.hpp"

namespace gsgcn::gcn {

void ensure_shape(tensor::Matrix& m, std::size_t rows, std::size_t cols) {
  if (m.rows() != rows || m.cols() != cols) {
    m = tensor::Matrix(rows, cols);
  }
}

GraphConvLayer::GraphConvLayer(std::size_t in_dim, std::size_t out_dim,
                               bool relu, util::Xoshiro256& rng,
                               propagation::AggregatorKind aggregator)
    : relu_(relu),
      aggregator_(aggregator),
      dropout_rng_(rng()),
      w_self_(tensor::Matrix::glorot(in_dim, out_dim, rng)),
      w_neigh_(tensor::Matrix::glorot(in_dim, out_dim, rng)),
      d_w_self_(in_dim, out_dim),
      d_w_neigh_(in_dim, out_dim) {
  if (in_dim == 0 || out_dim == 0) {
    throw std::invalid_argument("GraphConvLayer: zero dimension");
  }
}

void GraphConvLayer::set_dropout(float rate) {
  if (rate < 0.0f || rate >= 1.0f) {
    throw std::invalid_argument("set_dropout: rate must be in [0, 1)");
  }
  dropout_rate_ = rate;
}

const tensor::Matrix& GraphConvLayer::forward(const graph::CsrGraph& g,
                                              const tensor::Matrix& h_in_raw,
                                              int threads, PhaseClock* clock,
                                              bool training) {
  if (h_in_raw.cols() != in_dim() || h_in_raw.rows() != g.num_vertices()) {
    throw std::invalid_argument("GraphConvLayer::forward: input shape " +
                                h_in_raw.shape_str());
  }
  const std::size_t n = h_in_raw.rows();
  const std::size_t fo = out_dim();
  GSGCN_TRACE_SPAN_ID("layer/forward", n);

  // Inverted dropout on the input: keep with probability 1-p, scale by
  // 1/(1-p) so eval needs no rescaling. The mask is drawn from per-row
  // counter-based streams keyed by one draw from dropout_rng_ — the same
  // masks for any thread count, and the single checkpointed draw keeps
  // resumed runs bit-identical.
  used_dropout_ = training && dropout_rate_ > 0.0f;
  if (used_dropout_) {
    ensure_shape(dropout_mask_, n, in_dim());
    ensure_shape(h_dropped_, n, in_dim());
    tensor::dropout_forward(h_in_raw, dropout_mask_, h_dropped_,
                            dropout_rate_, dropout_rng_(), threads);
  }
  const tensor::Matrix& h_in = used_dropout_ ? h_dropped_ : h_in_raw;
  h_in_ = &h_in;
  ensure_shape(h_agg_, n, in_dim());
  ensure_shape(act_, n, 2 * fo);

  // Feature aggregation — the paper's partitioned kernel (Section V-B).
  {
    propagation::FeaturePartitionOptions opts;
    opts.threads = threads;
    opts.aggregator = aggregator_;
    if (clock != nullptr) {
      util::ScopedPhase p(clock->feature_prop);
      propagation::propagate_feature_partitioned(g, h_in, h_agg_, opts);
    } else {
      propagation::propagate_feature_partitioned(g, h_in, h_agg_, opts);
    }
  }

  // Weight application — dense GEMMs writing straight into the two concat
  // halves of act_ (strided views; no concat copy), with the ReLU fused
  // into the GEMM's store epilogue. Without ReLU the result is already
  // the output — no copy on that path either.
  {
    std::unique_ptr<util::ScopedPhase> p;
    if (clock != nullptr) p = std::make_unique<util::ScopedPhase>(clock->weight_apply);
    const auto epilogue =
        relu_ ? tensor::Epilogue::kRelu : tensor::Epilogue::kNone;
    tensor::gemm_nn(h_in, w_self_,
                    tensor::MatrixView::cols_slice(act_, 0, fo), 1.0f, 0.0f,
                    threads, epilogue);
    tensor::gemm_nn(h_agg_, w_neigh_,
                    tensor::MatrixView::cols_slice(act_, fo, fo), 1.0f, 0.0f,
                    threads, epilogue);
  }
  return act_;
}

const tensor::Matrix& GraphConvLayer::backward(const graph::CsrGraph& g,
                                               const tensor::Matrix& d_out,
                                               int threads, PhaseClock* clock) {
  if (h_in_ == nullptr) {
    throw std::logic_error("GraphConvLayer::backward before forward");
  }
  const tensor::Matrix& h_in = *h_in_;
  const std::size_t n = h_in.rows();
  const std::size_t fo = out_dim();
  if (d_out.rows() != n || d_out.cols() != 2 * fo) {
    throw std::invalid_argument("GraphConvLayer::backward: grad shape " +
                                d_out.shape_str());
  }
  GSGCN_TRACE_SPAN_ID("layer/backward", n);
  ensure_shape(d_agg_, n, in_dim());
  ensure_shape(d_in_, n, in_dim());

  // act_ holds the post-ReLU output, which carries the same x > 0 mask as
  // the pre-activation (relu(x) > 0 ⇔ x > 0). Without ReLU, d_out is the
  // concat gradient already — alias it instead of copying.
  if (relu_) {
    ensure_shape(d_pre_, n, 2 * fo);
    tensor::relu_backward(act_, d_out, d_pre_, threads);
  }
  const tensor::Matrix& d_pre = relu_ ? d_pre_ : d_out;
  // The two halves of the concat gradient, consumed in place as strided
  // views — no split copy, no per-branch scratch.
  const auto d_self = tensor::ConstMatrixView::cols_slice(d_pre, 0, fo);
  const auto d_neigh = tensor::ConstMatrixView::cols_slice(d_pre, fo, fo);

  {
    std::unique_ptr<util::ScopedPhase> p;
    if (clock != nullptr) p = std::make_unique<util::ScopedPhase>(clock->weight_apply);
    // Weight gradients.
    tensor::gemm_tn(h_in, d_self, d_w_self_, 1.0f, 0.0f, threads);
    tensor::gemm_tn(h_agg_, d_neigh, d_w_neigh_, 1.0f, 0.0f, threads);
    // Input gradient, dense parts: d_in = d_self·W_selfᵀ; d_agg = d_neigh·W_neighᵀ.
    tensor::gemm_nt(d_self, w_self_, d_in_, 1.0f, 0.0f, threads);
    tensor::gemm_nt(d_neigh, w_neigh_, d_agg_, 1.0f, 0.0f, threads);
  }

  // Sparse part: push d_agg back through the mean aggregation.
  {
    propagation::FeaturePartitionOptions opts;
    opts.threads = threads;
    opts.aggregator = aggregator_;
    std::unique_ptr<util::ScopedPhase> p;
    if (clock != nullptr) p = std::make_unique<util::ScopedPhase>(clock->feature_prop);
    // Reuse h_agg_ as scratch for the propagated gradient, then add.
    propagation::propagate_feature_partitioned_backward(g, d_agg_, h_agg_, opts);
  }
  tensor::add_scaled(d_in_, h_agg_, 1.0f, threads);
  // Undo the input dropout: gradients flow only through kept entries.
  if (used_dropout_) {
    tensor::hadamard_inplace(d_in_, dropout_mask_, threads);
  }
  return d_in_;
}

}  // namespace gsgcn::gcn

#pragma once
// The complete GCN of Algorithm 1: L GraphConv layers + a dense
// classification head (the paper's PREDICT step).
//
// Width bookkeeping: a GraphConv layer maps width w → 2·hidden (self ‖
// neigh concat), so with hidden = h the layer widths run
// in_dim → 2h → 2h → … → num_classes.

#include <iosfwd>
#include <vector>

#include "gcn/adam.hpp"
#include "gcn/layer.hpp"

namespace gsgcn::gcn {

struct ModelConfig {
  std::size_t in_dim = 0;
  std::size_t hidden_dim = 128;  // per concat-branch width
  std::size_t num_classes = 0;
  int num_layers = 2;            // GraphConv layers (paper: 1-3)
  std::uint64_t seed = 1;
  propagation::AggregatorKind aggregator =
      propagation::AggregatorKind::kMean;
  float dropout = 0.0f;          // input dropout per GraphConv layer
};

class GcnModel {
 public:
  explicit GcnModel(const ModelConfig& config);

  /// Forward over a (sub)graph; x is |V| x in_dim. Returns logits
  /// (|V| x num_classes), cached internally for backward. `training`
  /// enables dropout.
  const tensor::Matrix& forward(const graph::CsrGraph& g,
                                const tensor::Matrix& x, int threads = 0,
                                PhaseClock* clock = nullptr,
                                bool training = false);

  /// Backward from dL/dlogits; fills all parameter gradients.
  void backward(const graph::CsrGraph& g, const tensor::Matrix& d_logits,
                int threads = 0, PhaseClock* clock = nullptr);

  /// Register every parameter with `opt` (once) …
  void attach(Adam& opt);
  /// … then apply the most recent gradients (one optimizer step).
  void apply_gradients(Adam& opt);

  const ModelConfig& config() const { return cfg_; }
  std::vector<GraphConvLayer>& layers() { return layers_; }
  const std::vector<GraphConvLayer>& layers() const { return layers_; }
  tensor::Matrix& w_cls() { return w_cls_; }
  const tensor::Matrix& w_cls() const { return w_cls_; }
  tensor::Matrix& bias_cls() { return b_cls_; }
  const tensor::Matrix& bias_cls() const { return b_cls_; }
  tensor::Matrix& grad_w_cls() { return d_w_cls_; }
  tensor::Matrix& grad_bias_cls() { return d_b_cls_; }

  /// Total trainable parameter count.
  std::size_t num_parameters() const;

  /// Weights-only persistence: binary dump of the config and every weight
  /// tensor; load() reconstructs an identical model for inference. For
  /// resuming *training* use gcn/checkpoint.hpp, which additionally
  /// carries the Adam moments/step, the sampler slot cursor, and the
  /// dropout RNG streams (this format alone would restart the optimizer
  /// cold). The stream overloads serialize into an open binary stream so
  /// composite formats (checkpoints) can embed a model section.
  void save(const std::string& path) const;
  void save(std::ostream& out) const;
  static GcnModel load(const std::string& path);
  static GcnModel load(std::istream& in);

  /// In-memory weight snapshot (layers then classifier then bias) and its
  /// inverse — the trainer's restore-best-epoch mechanism.
  std::vector<tensor::Matrix> snapshot_weights() const;
  void restore_weights(const std::vector<tensor::Matrix>& snapshot);

 private:
  ModelConfig cfg_;
  std::vector<GraphConvLayer> layers_;
  tensor::Matrix w_cls_;   // last width x classes
  tensor::Matrix b_cls_;   // 1 x classes
  tensor::Matrix d_w_cls_;
  tensor::Matrix d_b_cls_;

  const tensor::Matrix* last_hidden_ = nullptr;
  tensor::Matrix logits_;
  tensor::Matrix d_hidden_;

  std::vector<std::size_t> slots_;
  bool attached_ = false;
};

}  // namespace gsgcn::gcn

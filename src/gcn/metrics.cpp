#include "gcn/metrics.hpp"

#include <cstdio>
#include <stdexcept>
#include <vector>

namespace gsgcn::gcn {

namespace {
void check(const tensor::Matrix& a, const tensor::Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols() || a.rows() == 0) {
    throw std::invalid_argument("metrics: shape mismatch or empty");
  }
}
}  // namespace

double f1_micro(const tensor::Matrix& pred, const tensor::Matrix& truth) {
  check(pred, truth);
  std::int64_t tp = 0, fp = 0, fn = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const bool p = pred.data()[i] != 0.0f;
    const bool t = truth.data()[i] != 0.0f;
    tp += (p && t);
    fp += (p && !t);
    fn += (!p && t);
  }
  const double denom = 2.0 * tp + fp + fn;
  return denom == 0.0 ? 1.0 : 2.0 * tp / denom;
}

double f1_macro(const tensor::Matrix& pred, const tensor::Matrix& truth) {
  check(pred, truth);
  const std::size_t c = pred.cols();
  std::vector<std::int64_t> tp(c, 0), fp(c, 0), fn(c, 0);
  for (std::size_t i = 0; i < pred.rows(); ++i) {
    const float* p = pred.row(i);
    const float* t = truth.row(i);
    for (std::size_t j = 0; j < c; ++j) {
      const bool pj = p[j] != 0.0f;
      const bool tj = t[j] != 0.0f;
      tp[j] += (pj && tj);
      fp[j] += (pj && !tj);
      fn[j] += (!pj && tj);
    }
  }
  double total = 0.0;
  for (std::size_t j = 0; j < c; ++j) {
    const double denom = 2.0 * tp[j] + fp[j] + fn[j];
    total += denom == 0.0 ? 0.0 : 2.0 * tp[j] / denom;
  }
  return total / static_cast<double>(c);
}

double subset_accuracy(const tensor::Matrix& pred, const tensor::Matrix& truth) {
  check(pred, truth);
  std::int64_t exact = 0;
  for (std::size_t i = 0; i < pred.rows(); ++i) {
    const float* p = pred.row(i);
    const float* t = truth.row(i);
    bool ok = true;
    for (std::size_t j = 0; j < pred.cols(); ++j) {
      if ((p[j] != 0.0f) != (t[j] != 0.0f)) {
        ok = false;
        break;
      }
    }
    exact += ok;
  }
  return static_cast<double>(exact) / static_cast<double>(pred.rows());
}

ClassificationReport classification_report(const tensor::Matrix& pred,
                                           const tensor::Matrix& truth) {
  check(pred, truth);
  const std::size_t c = pred.cols();
  std::vector<std::int64_t> tp(c, 0), fp(c, 0), fn(c, 0);
  for (std::size_t i = 0; i < pred.rows(); ++i) {
    const float* p = pred.row(i);
    const float* t = truth.row(i);
    for (std::size_t j = 0; j < c; ++j) {
      const bool pj = p[j] != 0.0f;
      const bool tj = t[j] != 0.0f;
      tp[j] += (pj && tj);
      fp[j] += (pj && !tj);
      fn[j] += (!pj && tj);
    }
  }
  ClassificationReport report;
  report.per_class.resize(c);
  for (std::size_t j = 0; j < c; ++j) {
    ClassMetrics& m = report.per_class[j];
    const double pd = tp[j] + fp[j];
    const double td = tp[j] + fn[j];
    m.precision = pd == 0.0 ? 0.0 : tp[j] / pd;
    m.recall = td == 0.0 ? 0.0 : tp[j] / td;
    const double denom = m.precision + m.recall;
    m.f1 = denom == 0.0 ? 0.0 : 2.0 * m.precision * m.recall / denom;
    m.support = tp[j] + fn[j];
  }
  report.micro_f1 = f1_micro(pred, truth);
  report.macro_f1 = f1_macro(pred, truth);
  report.subset_accuracy = subset_accuracy(pred, truth);
  return report;
}

std::string format_report(const ClassificationReport& report) {
  std::string out =
      "class  precision  recall  f1      support\n";
  char buf[96];
  for (std::size_t j = 0; j < report.per_class.size(); ++j) {
    const ClassMetrics& m = report.per_class[j];
    std::snprintf(buf, sizeof(buf), "%-5zu  %-9.4f  %-6.4f  %-6.4f  %lld\n", j,
                  m.precision, m.recall, m.f1,
                  static_cast<long long>(m.support));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "micro-F1 %.4f  macro-F1 %.4f  subset-acc %.4f\n",
                report.micro_f1, report.macro_f1, report.subset_accuracy);
  out += buf;
  return out;
}

}  // namespace gsgcn::gcn

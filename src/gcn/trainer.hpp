#pragma once
// Minibatch trainer implementing the paper's Algorithm 5:
//
//   while not done:
//     if pool empty: sample p_inter subgraphs in parallel
//     G_sub ← pool.pop()
//     complete-GCN forward/backward on G_sub; Adam step
//
// Training happens on the *training graph* (the subgraph of the dataset
// induced on the training split, as in GraphSAGE's inductive setup), so
// every sampled vertex carries a supervised label. Validation/test use
// full-graph inference.

#include <memory>
#include <vector>

#include "data/dataset.hpp"
#include "data/feature_store.hpp"
#include "gcn/model.hpp"
#include "gcn/inference.hpp"
#include "gcn/saint_norm.hpp"
#include "sampling/dashboard.hpp"
#include "sampling/frontier_naive.hpp"
#include "sampling/pool.hpp"

namespace gsgcn::gcn {

enum class SamplerKind {
  kFrontierDashboard,  // the paper's sampler
  kFrontierNaive,      // O(m·n) baseline, same distribution
  kUniformNode,
  kRandomEdge,
  kRandomWalk,
  kForestFire,
  kSnowball,
};

const char* sampler_kind_name(SamplerKind kind);

struct TrainerConfig {
  // Model.
  std::size_t hidden_dim = 128;
  int num_layers = 2;
  float lr = 0.01f;
  propagation::AggregatorKind aggregator =
      propagation::AggregatorKind::kMean;
  float dropout = 0.0f;
  float grad_clip = 0.0f;  // per-tensor L2 gradient clip (0 = off)

  // Schedule.
  int epochs = 10;
  float lr_decay = 1.0f;          // multiplicative per epoch
  int early_stop_patience = 0;    // epochs without val-F1 improvement
                                  // before stopping (0 = off; forces
                                  // per-epoch evaluation)
  bool restore_best = false;      // keep the best-val-F1 weights (forces
                                  // per-epoch evaluation)

  // Sampler (paper defaults m=1000, n=8000 scaled to dataset size at
  // construction: both are clamped against the training-graph size).
  SamplerKind sampler = SamplerKind::kFrontierDashboard;
  graph::Vid frontier_size = 1000;
  graph::Vid budget = 8000;
  double eta = 2.0;
  graph::Eid degree_cap = 0;
  sampling::IntraMode intra = sampling::IntraMode::kAuto;

  // Parallelism (paper's p_inter; `threads` drives propagation + GEMM).
  int p_inter = 1;
  int threads = 1;

  // Async pipeline: sample on a background producer thread so the
  // trainer never waits for a refill (Algorithm 5's inter-subgraph
  // overlap taken across the sampler/trainer boundary). The subgraph
  // sequence is identical to sync mode — the pool draws slot k from RNG
  // stream (seed, k) in both — so this is a pure throughput knob.
  bool async_sampling = false;
  std::size_t pool_capacity = 0;  // subgraph queue bound; 0 → 2·p_inter

  // Feature storage (data/feature_store.hpp): codec for the training
  // gather path and the hot-vertex fp32 cache budget. fp32 with no cache
  // is a zero-copy view — byte-identical to the legacy dense path. All
  // codecs keep gathers bit-identical across thread counts/cache sizes.
  data::FeatureDtype feature_dtype = data::FeatureDtype::kF32;
  std::size_t feature_cache_mb = 0;

  std::uint64_t seed = 1;
  bool eval_every_epoch = true;
  // Run the final val/test full-graph evaluation after the loop. Needs
  // dense ds.features; out-of-core runs (stripped dataset + external
  // FeatureStore) turn it off along with eval_every_epoch.
  bool final_eval = true;

  // Scrape + emit the metrics registry (telemetry record type "metrics")
  // at every epoch boundary instead of only in the final run_summary, so
  // long runs are inspectable mid-flight. In async mode the producer is
  // briefly quiesced around the scrape (the obs quiescent-point
  // contract); queued subgraphs stay FIFO so the subgraph sequence — and
  // therefore the loss sequence — is unchanged.
  bool metrics_every_epoch = false;

  // Fault tolerance (gcn/checkpoint.hpp; DESIGN.md "Fault tolerance").
  // With a checkpoint_dir set, a versioned CRC-protected checkpoint is
  // written atomically every `checkpoint_every` healthy epochs; `resume`
  // restores the newest valid one and continues the byte-identical
  // subgraph/loss sequence the uninterrupted run would have produced.
  std::string checkpoint_dir;  // empty = no on-disk checkpoints
  int checkpoint_every = 1;    // epoch cadence (<= 0 disables writes)
  bool resume = false;         // load newest valid checkpoint before training

  // Divergence guard — active in every build, *including* Release, where
  // the GSGCN_CHECK_* invariants compile out: long training campaigns
  // need cheap always-on detection, not just debug aborts. A non-finite
  // iteration loss / logits / loss gradient, or an epoch loss beyond
  // guard_loss_limit, trips the guard: the trainer rolls back to the last
  // good state (on-disk checkpoint payload or the in-memory anchor),
  // applies multiplicative learning-rate backoff, and retries, up to
  // guard_max_retries restores per run. Transient sampler/pool faults
  // (exceptions out of pop()) take the same rollback path but skip the
  // backoff — the learning rate was not at fault.
  bool guard = true;
  double guard_loss_limit = 1e8;  // |epoch mean loss| beyond this trips
  int guard_max_retries = 3;      // total rollbacks before giving up
  float guard_lr_backoff = 0.5f;  // lr multiplier per divergence rollback

  // GraphSAINT-style loss normalization (the paper's future-work
  // direction): pre-sample `saint_presamples` subgraphs to estimate each
  // vertex's inclusion probability, then weight minibatch losses by its
  // inverse so the sampled loss is unbiased despite the sampler's degree
  // bias.
  bool saint_loss_norm = false;
  int saint_presamples = 64;
};

struct EpochRecord {
  int epoch = 0;
  double train_loss = 0.0;
  double val_f1 = 0.0;
  // Compute time only: eval and sampler wait (blocked in pool pop, incl.
  // inline refills) are both excluded, so the phase breakdown sums
  // correctly instead of double-counting refill time into training.
  double epoch_seconds = 0.0;       // this epoch
  double cumulative_seconds = 0.0;  // running sum over epochs so far
};

struct TrainResult {
  std::vector<EpochRecord> history;
  bool early_stopped = false;
  double train_seconds = 0.0;        // total compute time (no eval, no
                                     // sampler wait)
  double sampler_wait_seconds = 0.0; // trainer time blocked in pool pop
                                     // (train_seconds + this = loop wall)
  double sample_seconds = 0.0;       // Figure-3D "Sampling"; producer-side
                                     // time, overlapped in async mode
  double featprop_seconds = 0.0;     // Figure-3D "Feat Propagation"
  double weight_seconds = 0.0;       // Figure-3D "Weight Application"
  double final_val_f1 = 0.0;
  double final_test_f1 = 0.0;
  std::int64_t iterations = 0;
  std::int64_t pool_stalls = 0;       // pops that hit an empty pool after
                                      // warmup (0 = pipeline kept up)
  std::int64_t pool_cold_starts = 0;  // warmup fills (prefill; expect 1)

  // Fault-tolerance accounting (all zero on a clean, fresh run).
  std::int64_t checkpoints_written = 0;
  std::int64_t guard_trips = 0;      // divergence detections
  std::int64_t rollbacks = 0;        // state restores (divergence + transient)
  int resumed_from_epoch = -1;       // epoch a --resume continued from; -1 = fresh
  double recovery_seconds = 0.0;     // wall time burnt in discarded epochs
};

class Trainer {
 public:
  /// `dataset_features`, when given, replaces `dataset.features` on the
  /// training gather path: a FeatureStore over *dataset* vertex ids
  /// (rows() must equal |V|), e.g. an mmap-opened feature file. It must
  /// outlive the trainer. The dataset's dense features may then be empty,
  /// in which case every evaluation flag must be off (full-graph
  /// inference needs dense features).
  Trainer(const data::Dataset& dataset, const TrainerConfig& config,
          const data::FeatureStore* dataset_features = nullptr);

  TrainResult train();

  /// F1-micro of full-graph inference restricted to `subset` rows.
  double evaluate(const std::vector<graph::Vid>& subset);

  GcnModel& model() { return *model_; }
  const TrainerConfig& config() const { return cfg_; }

  /// Effective (clamped) sampler parameters — exposed for the benches.
  graph::Vid effective_budget() const { return budget_; }
  graph::Vid effective_frontier() const { return frontier_; }
  graph::Vid train_graph_size() const { return train_graph_.num_vertices(); }

  /// The store feeding training gathers: the external store when one was
  /// passed, else the internal per-split store. Null only before train().
  const data::FeatureStore* feature_store() const {
    return ext_features_ != nullptr ? ext_features_ : feat_store_.get();
  }

 private:
  std::unique_ptr<sampling::VertexSampler> make_sampler(int instance) const;

  // Structured telemetry (obs::Telemetry JSONL); no-ops when no sink is open.
  void emit_epoch_record(const EpochRecord& rec) const;
  void emit_epoch_metrics(int epoch);
  void emit_run_summary(const TrainResult& result) const;

  const data::Dataset& ds_;
  TrainerConfig cfg_;
  graph::Vid frontier_ = 0;
  graph::Vid budget_ = 0;

  graph::CsrGraph train_graph_;          // induced on the training split
  std::vector<graph::Vid> train_orig_;   // train-graph local → dataset id
  tensor::Matrix train_features_;        // kept only for the fp32 view path
  tensor::Matrix train_labels_;

  // Training-gather feature source: exactly one of these is active.
  // ext_features_ is indexed by dataset ids (batch ids are translated
  // through train_orig_); feat_store_ is indexed by train-local ids.
  const data::FeatureStore* ext_features_ = nullptr;
  std::unique_ptr<data::FeatureStore> feat_store_;
  std::size_t in_dim_ = 0;
  std::vector<std::uint32_t> batch_ids_;     // external-mode id scratch
  std::vector<std::uint32_t> prefetch_ids_;  // mmap lookahead scratch

  std::unique_ptr<GcnModel> model_;
  std::unique_ptr<Adam> opt_;
  std::unique_ptr<sampling::SubgraphPool> pool_;
  std::unique_ptr<SaintNormalizer> saint_;

  // Batch scratch.
  tensor::Matrix batch_features_;
  tensor::Matrix batch_labels_;
  tensor::Matrix d_logits_;
  tensor::Matrix eval_pred_;
  tensor::Matrix subset_pred_;
  tensor::Matrix subset_truth_;
  // Hoisted evaluate() truth rows: the val/test label subsets are
  // loop-invariant, so they are gathered once at construction instead of
  // on every eval.
  tensor::Matrix val_truth_;
  tensor::Matrix test_truth_;
  InferenceScratch infer_scratch_;
};

}  // namespace gsgcn::gcn

#include "gcn/loss.hpp"

#include <cmath>
#include <stdexcept>

namespace gsgcn::gcn {

namespace {
void check_shapes(const tensor::Matrix& a, const tensor::Matrix& b,
                  const tensor::Matrix& c, const char* what) {
  if (a.rows() != b.rows() || a.cols() != b.cols() || a.rows() != c.rows() ||
      a.cols() != c.cols()) {
    throw std::invalid_argument(std::string(what) + ": shape mismatch");
  }
  if (a.rows() == 0 || a.cols() == 0) {
    throw std::invalid_argument(std::string(what) + ": empty input");
  }
}
}  // namespace

float sigmoid_bce_loss(const tensor::Matrix& logits,
                       const tensor::Matrix& labels,
                       tensor::Matrix& d_logits) {
  check_shapes(logits, labels, d_logits, "sigmoid_bce_loss");
  const std::size_t n = logits.rows(), c = logits.cols();
  const double inv = 1.0 / static_cast<double>(n * c);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const float* z = logits.row(i);
    const float* y = labels.row(i);
    float* dz = d_logits.row(i);
    for (std::size_t j = 0; j < c; ++j) {
      // Stable BCE-with-logits: max(z,0) - z·y + log(1 + e^{-|z|}).
      const double zj = z[j];
      const double yj = y[j];
      total += std::max(zj, 0.0) - zj * yj + std::log1p(std::exp(-std::abs(zj)));
      const double sig = 1.0 / (1.0 + std::exp(-zj));
      dz[j] = static_cast<float>((sig - yj) * inv);
    }
  }
  return static_cast<float>(total * inv);
}

float softmax_ce_loss(const tensor::Matrix& logits,
                      const tensor::Matrix& labels, tensor::Matrix& d_logits) {
  check_shapes(logits, labels, d_logits, "softmax_ce_loss");
  const std::size_t n = logits.rows(), c = logits.cols();
  const double inv = 1.0 / static_cast<double>(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const float* z = logits.row(i);
    const float* y = labels.row(i);
    float* dz = d_logits.row(i);
    double zmax = z[0];
    for (std::size_t j = 1; j < c; ++j) zmax = std::max(zmax, static_cast<double>(z[j]));
    double sum = 0.0;
    for (std::size_t j = 0; j < c; ++j) sum += std::exp(z[j] - zmax);
    const double log_sum = std::log(sum) + zmax;
    for (std::size_t j = 0; j < c; ++j) {
      const double p = std::exp(z[j] - log_sum);
      dz[j] = static_cast<float>((p - y[j]) * inv);
      if (y[j] != 0.0f) total += y[j] * (log_sum - z[j]);
    }
  }
  return static_cast<float>(total * inv);
}

float classification_loss(data::LabelMode mode, const tensor::Matrix& logits,
                          const tensor::Matrix& labels,
                          tensor::Matrix& d_logits) {
  return mode == data::LabelMode::kMulti
             ? sigmoid_bce_loss(logits, labels, d_logits)
             : softmax_ce_loss(logits, labels, d_logits);
}

float sigmoid_bce_loss_weighted(const tensor::Matrix& logits,
                                const tensor::Matrix& labels,
                                std::span<const float> row_weights,
                                tensor::Matrix& d_logits) {
  check_shapes(logits, labels, d_logits, "sigmoid_bce_loss_weighted");
  if (row_weights.size() != logits.rows()) {
    throw std::invalid_argument("sigmoid_bce_loss_weighted: weights length");
  }
  const std::size_t n = logits.rows(), c = logits.cols();
  const double inv = 1.0 / static_cast<double>(n * c);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const float* z = logits.row(i);
    const float* y = labels.row(i);
    float* dz = d_logits.row(i);
    const double wi = row_weights[i];
    for (std::size_t j = 0; j < c; ++j) {
      const double zj = z[j];
      const double yj = y[j];
      total += wi * (std::max(zj, 0.0) - zj * yj +
                     std::log1p(std::exp(-std::abs(zj))));
      const double sig = 1.0 / (1.0 + std::exp(-zj));
      dz[j] = static_cast<float>(wi * (sig - yj) * inv);
    }
  }
  return static_cast<float>(total * inv);
}

float softmax_ce_loss_weighted(const tensor::Matrix& logits,
                               const tensor::Matrix& labels,
                               std::span<const float> row_weights,
                               tensor::Matrix& d_logits) {
  check_shapes(logits, labels, d_logits, "softmax_ce_loss_weighted");
  if (row_weights.size() != logits.rows()) {
    throw std::invalid_argument("softmax_ce_loss_weighted: weights length");
  }
  const std::size_t n = logits.rows(), c = logits.cols();
  const double inv = 1.0 / static_cast<double>(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const float* z = logits.row(i);
    const float* y = labels.row(i);
    float* dz = d_logits.row(i);
    const double wi = row_weights[i];
    double zmax = z[0];
    for (std::size_t j = 1; j < c; ++j) zmax = std::max(zmax, static_cast<double>(z[j]));
    double sum = 0.0;
    for (std::size_t j = 0; j < c; ++j) sum += std::exp(z[j] - zmax);
    const double log_sum = std::log(sum) + zmax;
    for (std::size_t j = 0; j < c; ++j) {
      const double p = std::exp(z[j] - log_sum);
      dz[j] = static_cast<float>(wi * (p - y[j]) * inv);
      if (y[j] != 0.0f) total += wi * y[j] * (log_sum - z[j]);
    }
  }
  return static_cast<float>(total * inv);
}

float classification_loss_weighted(data::LabelMode mode,
                                   const tensor::Matrix& logits,
                                   const tensor::Matrix& labels,
                                   std::span<const float> row_weights,
                                   tensor::Matrix& d_logits) {
  return mode == data::LabelMode::kMulti
             ? sigmoid_bce_loss_weighted(logits, labels, row_weights, d_logits)
             : softmax_ce_loss_weighted(logits, labels, row_weights, d_logits);
}

void predict(data::LabelMode mode, const tensor::Matrix& logits,
             tensor::Matrix& pred) {
  if (pred.rows() != logits.rows() || pred.cols() != logits.cols()) {
    throw std::invalid_argument("predict: shape mismatch");
  }
  const std::size_t n = logits.rows(), c = logits.cols();
  for (std::size_t i = 0; i < n; ++i) {
    const float* z = logits.row(i);
    float* p = pred.row(i);
    if (mode == data::LabelMode::kMulti) {
      for (std::size_t j = 0; j < c; ++j) p[j] = z[j] > 0.0f ? 1.0f : 0.0f;
    } else {
      std::size_t best = 0;
      for (std::size_t j = 1; j < c; ++j) {
        if (z[j] > z[best]) best = j;
      }
      for (std::size_t j = 0; j < c; ++j) p[j] = j == best ? 1.0f : 0.0f;
    }
  }
}

}  // namespace gsgcn::gcn

#pragma once
// Evaluation metrics. The paper reports F1-micro ("Accuracy (F1 Mic)" in
// Figure 2); F1-macro and subset accuracy are included for completeness.

#include <string>
#include <vector>

#include "tensor/matrix.hpp"

namespace gsgcn::gcn {

/// Micro-averaged F1 over all (row, class) cells of two 0/1 matrices.
/// For single-label one-hot predictions this equals plain accuracy.
double f1_micro(const tensor::Matrix& pred, const tensor::Matrix& truth);

/// Macro-averaged F1 (mean of per-class F1; classes with no positives in
/// either matrix contribute 0 and are counted, matching sklearn).
double f1_macro(const tensor::Matrix& pred, const tensor::Matrix& truth);

/// Fraction of rows predicted exactly (subset accuracy).
double subset_accuracy(const tensor::Matrix& pred, const tensor::Matrix& truth);

/// Per-class precision/recall/F1 with supports, plus the aggregates —
/// what a downstream user prints after training.
struct ClassMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  std::int64_t support = 0;  // positives in truth
};

struct ClassificationReport {
  std::vector<ClassMetrics> per_class;
  double micro_f1 = 0.0;
  double macro_f1 = 0.0;
  double subset_accuracy = 0.0;
};

ClassificationReport classification_report(const tensor::Matrix& pred,
                                           const tensor::Matrix& truth);

/// Render the report as an aligned text table (one row per class).
std::string format_report(const ClassificationReport& report);

}  // namespace gsgcn::gcn

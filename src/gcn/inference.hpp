#pragma once
// Full-graph inference without training caches.
//
// GcnModel::forward keeps per-layer activations for backward — at
// |V|·2·hidden floats per layer that is fine for sampled subgraphs but
// wasteful for full-graph evaluation on large inputs. This path computes
// layers with two ping-pong buffers and no cached state, using the same
// weights, and is what the Trainer's evaluate() runs.

#include "gcn/model.hpp"

namespace gsgcn::gcn {

/// Scratch buffers reusable across inference calls (avoids reallocating
/// |V|-sized matrices every evaluation epoch).
struct InferenceScratch {
  tensor::Matrix h_a;
  tensor::Matrix h_b;
  tensor::Matrix agg;
  tensor::Matrix logits;
};

/// Logits for every vertex of g. Numerically identical to
/// model.forward(g, x) in eval mode (no dropout), but leaves the model's
/// training caches untouched and allocates only the scratch.
const tensor::Matrix& infer_logits(const GcnModel& model,
                                   const graph::CsrGraph& g,
                                   const tensor::Matrix& x,
                                   InferenceScratch& scratch,
                                   int threads = 0);

}  // namespace gsgcn::gcn

#include "gcn/checkpoint.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/fault.hpp"
#include "util/frame.hpp"

namespace gsgcn::gcn {

namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kPayloadVersion = 1;
// Magic/version/size-cap of the on-disk envelope. The header layout lives
// in util/frame.hpp (shared with the serving wire protocol); this spec
// keeps the exact bytes PR 4 wrote, so old checkpoints remain readable.
// A checkpoint larger than max_payload is a corrupt size field, not a
// model.
constexpr util::FrameSpec kCkptFrame{
    /*magic=*/0x6773676e636b7031ULL,  // "gsgnckp1"
    /*version=*/1,
    /*max_payload=*/1ull << 34};

template <class T>
void put(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <class T>
void take(std::istream& in, T& v, const char* what) {
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) {
    throw std::runtime_error(std::string("checkpoint: truncated at ") + what);
  }
}

}  // namespace

std::string encode_checkpoint(const CheckpointCursors& c,
                              const GcnModel& model, const Adam& opt) {
  std::ostringstream out(std::ios::binary);
  put(out, kPayloadVersion);
  put(out, c.next_epoch);
  put(out, c.iterations);
  put(out, c.lr);
  put(out, c.best_val);
  put(out, c.stale_epochs);
  put(out, c.pool_slot);

  const std::uint64_t n_hist = c.history.size();
  put(out, n_hist);
  for (const EpochRecord& r : c.history) {
    put(out, static_cast<std::int32_t>(r.epoch));
    put(out, r.train_loss);
    put(out, r.val_f1);
    put(out, r.epoch_seconds);
    put(out, r.cumulative_seconds);
  }

  const std::uint64_t n_layers = model.layers().size();
  put(out, n_layers);
  for (const GraphConvLayer& layer : model.layers()) {
    for (const std::uint64_t word : layer.dropout_rng().state()) {
      put(out, word);
    }
  }

  const std::vector<tensor::Matrix> weights = model.snapshot_weights();
  const std::uint64_t n_weights = weights.size();
  put(out, n_weights);
  for (const tensor::Matrix& w : weights) tensor::write_matrix(out, w);

  opt.save_state(out);
  if (!out) throw std::runtime_error("encode_checkpoint: stream failure");
  return std::move(out).str();
}

CheckpointCursors decode_checkpoint(const std::string& payload,
                                    GcnModel& model, Adam& opt) {
  std::istringstream in(payload, std::ios::binary);
  std::uint32_t version = 0;
  take(in, version, "version");
  if (version != kPayloadVersion) {
    throw std::runtime_error("checkpoint: unsupported payload version " +
                             std::to_string(version));
  }
  CheckpointCursors c;
  take(in, c.next_epoch, "next_epoch");
  take(in, c.iterations, "iterations");
  take(in, c.lr, "lr");
  take(in, c.best_val, "best_val");
  take(in, c.stale_epochs, "stale_epochs");
  take(in, c.pool_slot, "pool_slot");

  std::uint64_t n_hist = 0;
  take(in, n_hist, "history count");
  if (n_hist > (1u << 24)) {
    throw std::runtime_error("checkpoint: implausible history count");
  }
  c.history.resize(n_hist);
  for (EpochRecord& r : c.history) {
    std::int32_t epoch = 0;
    take(in, epoch, "history epoch");
    r.epoch = epoch;
    take(in, r.train_loss, "history loss");
    take(in, r.val_f1, "history val_f1");
    take(in, r.epoch_seconds, "history epoch_seconds");
    take(in, r.cumulative_seconds, "history cumulative_seconds");
  }

  std::uint64_t n_layers = 0;
  take(in, n_layers, "layer count");
  if (n_layers != model.layers().size()) {
    throw std::runtime_error("checkpoint: layer count mismatch: file has " +
                             std::to_string(n_layers) + ", model has " +
                             std::to_string(model.layers().size()));
  }
  std::vector<std::array<std::uint64_t, 4>> rng_states(n_layers);
  for (auto& state : rng_states) {
    for (std::uint64_t& word : state) take(in, word, "dropout rng");
  }

  std::uint64_t n_weights = 0;
  take(in, n_weights, "weight count");
  const std::vector<tensor::Matrix> expected = model.snapshot_weights();
  if (n_weights != expected.size()) {
    throw std::runtime_error("checkpoint: weight count mismatch");
  }
  std::vector<tensor::Matrix> weights;
  weights.reserve(n_weights);
  for (std::size_t i = 0; i < n_weights; ++i) {
    tensor::Matrix w = tensor::read_matrix(in);
    if (w.rows() != expected[i].rows() || w.cols() != expected[i].cols()) {
      throw std::runtime_error("checkpoint: weight shape mismatch at tensor " +
                               std::to_string(i) + ": file " + w.shape_str() +
                               " vs model " + expected[i].shape_str());
    }
    weights.push_back(std::move(w));
  }

  // Everything parsed and shape-checked — only now mutate model/opt, so a
  // corrupt payload can never leave them half-restored.
  opt.load_state(in);  // validates its own slot shapes before mutating
  model.restore_weights(weights);
  for (std::size_t l = 0; l < rng_states.size(); ++l) {
    model.layers()[l].dropout_rng().set_state(rng_states[l]);
  }
  return c;
}

CheckpointManager::CheckpointManager(std::string dir, int keep)
    : dir_(std::move(dir)), keep_(std::max(keep, 2)) {
  if (dir_.empty()) {
    throw std::invalid_argument("CheckpointManager: empty directory");
  }
  fs::create_directories(dir_);
}

void CheckpointManager::write_file(const std::string& path,
                                   const std::string& payload) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("checkpoint: cannot open " + path + " for write");
  }
  const std::string framed = util::frame_encode(kCkptFrame, payload);
  if (util::fault_point("ckpt.torn_write")) {
    // Simulated crash mid-write: the header and half the payload land,
    // then the writer "dies". The temp file is left behind exactly as a
    // real torn write would leave it; the rename never happens.
    const std::size_t torn = util::kFrameHeaderBytes + payload.size() / 2;
    out.write(framed.data(), static_cast<std::streamsize>(torn));
    out.flush();
    throw util::InjectedFault("torn checkpoint write: " + path);
  }
  out.write(framed.data(), static_cast<std::streamsize>(framed.size()));
  out.flush();
  if (!out) throw std::runtime_error("checkpoint: write failed: " + path);
}

bool CheckpointManager::read_file(const std::string& path,
                                  std::string& payload) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return false;
  const std::string bytes = std::move(buf).str();
  // One shared parser for every reject class (util/frame.hpp): bad magic,
  // unknown version, implausible size, truncation, and CRC mismatch all
  // make load_latest fall back to the previous checkpoint.
  return util::frame_decode_buffer(kCkptFrame, bytes, payload) ==
         util::FrameStatus::kOk;
}

std::string CheckpointManager::write(int epoch, const std::string& payload) {
  char name[32];
  std::snprintf(name, sizeof(name), "ckpt_%06d.bin", epoch);
  const std::string final_path = dir_ + "/" + name;
  const std::string tmp_path = final_path + ".tmp";
  write_file(tmp_path, payload);
  // Crash window between a complete temp file and the publish rename —
  // armed by tests to prove the previous checkpoint stays authoritative.
  util::fault_point("ckpt.pre_rename");
  fs::rename(tmp_path, final_path);

  // Bounded retention: newest `keep_` survive.
  const std::vector<std::string> all = list();
  for (std::size_t i = static_cast<std::size_t>(keep_); i < all.size(); ++i) {
    std::error_code ec;
    fs::remove(all[i], ec);  // best-effort; a leftover file is harmless
  }
  return final_path;
}

std::vector<std::string> CheckpointManager::list() const {
  std::vector<std::pair<int, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    int epoch = 0;
    if (std::sscanf(name.c_str(), "ckpt_%d.bin", &epoch) == 1 &&
        name.size() > 4 && name.compare(name.size() - 4, 4, ".bin") == 0) {
      found.emplace_back(epoch, entry.path().string());
    }
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (auto& [epoch, path] : found) {
    (void)epoch;
    paths.push_back(std::move(path));
  }
  return paths;
}

bool CheckpointManager::load_latest(std::string& payload, int* epoch) {
  for (const std::string& path : list()) {
    if (read_file(path, payload)) {
      if (epoch != nullptr) {
        int e = 0;
        const std::string name = fs::path(path).filename().string();
        std::sscanf(name.c_str(), "ckpt_%d.bin", &e);
        *epoch = e;
      }
      return true;
    }
    ++fallbacks_;  // corrupt/torn/truncated — skip to the previous one
  }
  return false;
}

}  // namespace gsgcn::gcn

#pragma once
// Fault-tolerant training checkpoints.
//
// A checkpoint is everything the trainer needs to continue the
// *byte-identical* run the uninterrupted process would have produced:
//
//   - cursors: next epoch, iteration count, current learning rate,
//     early-stopping state, and the pool's consumed-slot cursor (slot k is
//     drawn from RNG stream (seed, k), so one integer checkpoints every
//     per-slot sampler RNG stream at once — see sampling/pool.hpp);
//   - the full epoch history so a resumed run reports the complete loss
//     sequence, not just its own epochs;
//   - model weights (every layer + classifier head);
//   - Adam state (step counter + both moment tensors per slot), fixing
//     the "optimizer state excluded" gap of GcnModel::save;
//   - each layer's dropout-mask RNG stream.
//
// The payload is plain binary (encode/decode below). On disk the manager
// wraps it in a magic + version + size + CRC-32 header and writes it via
// temp-file-then-rename, so a crash mid-write can never replace a good
// checkpoint with a torn one; load_latest() walks checkpoints newest
// first and falls back past any file that fails the magic/size/CRC gate.
// The same payload doubles as the in-memory rollback anchor the
// divergence guard restores from (see gcn/trainer.cpp).

#include <cstdint>
#include <string>
#include <vector>

#include "gcn/model.hpp"
#include "gcn/trainer.hpp"

namespace gsgcn::gcn {

/// Scalar training cursors carried alongside the tensors.
///
/// Every data member must round-trip through encode_checkpoint AND
/// decode_checkpoint — a field that is saved but not loaded (or vice
/// versa) silently breaks bit-identical resume. scripts/analyze.py
/// enforces this via the marker below; mark genuinely derived fields
/// `// ckpt-transient: <reason>` instead of serializing them.
// analyze:checkpoint-state save=encode_checkpoint load=decode_checkpoint
struct CheckpointCursors {
  std::int32_t next_epoch = 0;     // first epoch the resumed run executes
  std::int64_t iterations = 0;     // optimizer steps taken so far
  float lr = 0.01f;                // current (possibly decayed) rate
  double best_val = -1.0;          // early-stopping bookkeeping
  std::int32_t stale_epochs = 0;
  std::uint64_t pool_slot = 0;     // SubgraphPool::consumed() at the boundary
  std::vector<EpochRecord> history;
};

/// Serialize cursors + model weights + Adam state + per-layer dropout RNG
/// streams into a self-contained payload (header/CRC are the manager's
/// job, so the same bytes serve as the in-memory rollback anchor).
std::string encode_checkpoint(const CheckpointCursors& cursors,
                              const GcnModel& model, const Adam& opt);

/// Restore `payload` into model/opt in place (every tensor shape is
/// validated first — a mismatched payload throws std::runtime_error and
/// leaves both untouched) and return the cursors.
CheckpointCursors decode_checkpoint(const std::string& payload,
                                    GcnModel& model, Adam& opt);

/// On-disk checkpoint directory: versioned files `ckpt_<epoch>.bin`,
/// atomic writes, bounded retention, corruption-tolerant loads.
class CheckpointManager {
 public:
  /// `keep` >= 2 so one corrupt newest file still leaves a fallback.
  explicit CheckpointManager(std::string dir, int keep = 2);

  /// Write `payload` for `epoch` atomically (temp file + rename), then
  /// prune to the `keep` newest. Returns the final path. Fault sites:
  /// "ckpt.torn_write" (report-kind) truncates the temp mid-payload and
  /// throws as a simulated crash; "ckpt.pre_rename" fires between the
  /// completed temp write and the rename.
  std::string write(int epoch, const std::string& payload);

  /// Newest-first scan for the first checkpoint passing the
  /// magic/version/size/CRC gate. Invalid files are skipped (counted in
  /// fallbacks()), never deleted — they are evidence. Returns false when
  /// no valid checkpoint exists.
  bool load_latest(std::string& payload, int* epoch = nullptr);

  /// Checkpoint files, newest epoch first.
  std::vector<std::string> list() const;

  const std::string& dir() const { return dir_; }
  std::uint64_t fallbacks() const { return fallbacks_; }

  /// Single-file header+CRC validation/IO, exposed for tests.
  static void write_file(const std::string& path, const std::string& payload);
  static bool read_file(const std::string& path, std::string& payload);

 private:
  std::string dir_;
  int keep_;
  std::uint64_t fallbacks_ = 0;
};

}  // namespace gsgcn::gcn

#pragma once
// Classification losses with fused gradients.
//
// Multi-label datasets (PPI/Yelp/Amazon) use per-class sigmoid + binary
// cross-entropy; single-label (Reddit) uses row softmax + cross-entropy.
// Both return the mean loss and write dL/dlogits in one pass (numerically
// stabilized: log-sum-exp for softmax, |z|-folded form for sigmoid BCE).

#include <span>

#include "data/dataset.hpp"
#include "tensor/matrix.hpp"

namespace gsgcn::gcn {

/// Mean sigmoid binary cross-entropy over all (row, class) cells.
/// d_logits gets dL/dz (already divided by rows*cols). Shapes must match.
float sigmoid_bce_loss(const tensor::Matrix& logits,
                       const tensor::Matrix& labels, tensor::Matrix& d_logits);

/// Mean softmax cross-entropy over rows; labels one-hot.
/// d_logits gets (softmax - y)/rows.
float softmax_ce_loss(const tensor::Matrix& logits,
                      const tensor::Matrix& labels, tensor::Matrix& d_logits);

/// Dispatch on label mode.
float classification_loss(data::LabelMode mode, const tensor::Matrix& logits,
                          const tensor::Matrix& labels,
                          tensor::Matrix& d_logits);

/// Row-weighted variants: row i's contribution (loss and gradient) is
/// scaled by row_weights[i]. With GraphSAINT-style weights 1/p_v the
/// minibatch loss becomes an unbiased estimator of the full training
/// loss despite the sampler's degree bias (see gcn/saint_norm.hpp).
float sigmoid_bce_loss_weighted(const tensor::Matrix& logits,
                                const tensor::Matrix& labels,
                                std::span<const float> row_weights,
                                tensor::Matrix& d_logits);
float softmax_ce_loss_weighted(const tensor::Matrix& logits,
                               const tensor::Matrix& labels,
                               std::span<const float> row_weights,
                               tensor::Matrix& d_logits);
float classification_loss_weighted(data::LabelMode mode,
                                   const tensor::Matrix& logits,
                                   const tensor::Matrix& labels,
                                   std::span<const float> row_weights,
                                   tensor::Matrix& d_logits);

/// Row-wise predictions for metric computation: multi → sigmoid(z) > 0.5
/// per class; single → one-hot argmax. Writes 0/1 into `pred`.
void predict(data::LabelMode mode, const tensor::Matrix& logits,
             tensor::Matrix& pred);

}  // namespace gsgcn::gcn

#include "gcn/inference.hpp"

#include <stdexcept>

#include "propagation/feature_partitioned.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"

namespace gsgcn::gcn {

const tensor::Matrix& infer_logits(const GcnModel& model,
                                   const graph::CsrGraph& g,
                                   const tensor::Matrix& x,
                                   InferenceScratch& scratch, int threads) {
  const auto& layers = model.layers();
  if (layers.empty()) throw std::invalid_argument("infer_logits: no layers");
  if (x.rows() != g.num_vertices() || x.cols() != layers.front().in_dim()) {
    throw std::invalid_argument("infer_logits: input shape " + x.shape_str());
  }
  const std::size_t n = x.rows();

  const tensor::Matrix* h = &x;
  tensor::Matrix* next = &scratch.h_a;
  tensor::Matrix* spare = &scratch.h_b;
  for (const auto& layer : layers) {
    const std::size_t fo = layer.out_dim();
    ensure_shape(scratch.agg, n, layer.in_dim());
    ensure_shape(*next, n, 2 * fo);

    propagation::FeaturePartitionOptions opts;
    opts.threads = threads;
    opts.aggregator = layer.aggregator();
    propagation::propagate_feature_partitioned(g, *h, scratch.agg, opts);

    // Same zero-copy shape as GraphConvLayer::forward: GEMMs write the
    // two concat halves in place, ReLU fused into the store.
    const auto epilogue = layer.has_relu() ? tensor::Epilogue::kRelu
                                           : tensor::Epilogue::kNone;
    tensor::gemm_nn(*h, layer.w_self(),
                    tensor::MatrixView::cols_slice(*next, 0, fo), 1.0f, 0.0f,
                    threads, epilogue);
    tensor::gemm_nn(scratch.agg, layer.w_neigh(),
                    tensor::MatrixView::cols_slice(*next, fo, fo), 1.0f, 0.0f,
                    threads, epilogue);

    h = next;
    std::swap(next, spare);
  }

  ensure_shape(scratch.logits, n, model.w_cls().cols());
  tensor::gemm_nn(*h, model.w_cls(), scratch.logits, 1.0f, 0.0f, threads);
  tensor::add_bias_rows(scratch.logits,
                        {model.bias_cls().data(), model.bias_cls().cols()},
                        threads);
  return scratch.logits;
}

}  // namespace gsgcn::gcn

#include "gcn/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>

#include "gcn/checkpoint.hpp"
#include "gcn/inference.hpp"
#include "gcn/loss.hpp"
#include "gcn/metrics.hpp"
#include "graph/reorder.hpp"
#include "graph/subgraph.hpp"
#include "obs/metrics.hpp"
#include "obs/perf.hpp"
#include "obs/roofline.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "sampling/frontier_dashboard.hpp"
#include "sampling/samplers.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "util/fault.hpp"
#include "util/json_writer.hpp"
#include "util/timer.hpp"

namespace gsgcn::gcn {

const char* sampler_kind_name(SamplerKind kind) {
  // Exhaustive: -Wswitch flags any SamplerKind added without a name here.
  switch (kind) {
    case SamplerKind::kFrontierDashboard: return "frontier-dashboard";
    case SamplerKind::kFrontierNaive: return "frontier-naive";
    case SamplerKind::kUniformNode: return "uniform-node";
    case SamplerKind::kRandomEdge: return "random-edge";
    case SamplerKind::kRandomWalk: return "random-walk";
    case SamplerKind::kForestFire: return "forest-fire";
    case SamplerKind::kSnowball: return "snowball";
  }
  std::abort();  // unreachable for in-range enum values
}

namespace {

// Divergence-guard scan. The GSGCN_CHECK_* invariants compile out of
// Release builds, so the guard carries its own check: one linear pass per
// tensor per iteration, trivial next to the layer GEMMs that produced it.
bool all_finite(const float* data, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(data[i])) return false;
  }
  return true;
}

}  // namespace

Trainer::Trainer(const data::Dataset& dataset, const TrainerConfig& config,
                 const data::FeatureStore* dataset_features)
    : ds_(dataset), cfg_(config), ext_features_(dataset_features) {
  const std::string err = ds_.validate();
  if (!err.empty()) throw std::invalid_argument("Trainer: bad dataset: " + err);

  const bool external = ext_features_ != nullptr;
  if (external) {
    if (ext_features_->rows() != ds_.graph.num_vertices()) {
      throw std::invalid_argument(
          "Trainer: feature store has " +
          std::to_string(ext_features_->rows()) + " rows but the graph has " +
          std::to_string(ds_.graph.num_vertices()) + " vertices");
    }
    if (!ds_.features.empty() &&
        ds_.features.cols() != ext_features_->cols()) {
      throw std::invalid_argument(
          "Trainer: feature store width disagrees with dataset features");
    }
    in_dim_ = ext_features_->cols();
  } else {
    if (ds_.features.empty()) {
      throw std::invalid_argument(
          "Trainer: dataset has no dense features; pass a FeatureStore");
    }
    in_dim_ = ds_.feature_dim();
  }
  // Full-graph inference (every evaluation flavor) reads dense features.
  if (ds_.features.empty() &&
      (cfg_.eval_every_epoch || cfg_.early_stop_patience > 0 ||
       cfg_.restore_best || cfg_.final_eval)) {
    throw std::invalid_argument(
        "Trainer: evaluation needs dense dataset features; disable "
        "eval_every_epoch/early_stop/restore_best/final_eval for "
        "out-of-core runs");
  }

  // Build the training graph once (inductive setup).
  graph::Inducer inducer(ds_.graph);
  auto sub = inducer.induce(ds_.train_vertices, std::max(1, cfg_.threads));
  train_graph_ = std::move(sub.graph);
  train_orig_ = std::move(sub.orig_ids);

  train_labels_ = tensor::Matrix(train_orig_.size(), ds_.num_classes());
  tensor::gather_rows(ds_.labels, train_orig_, train_labels_);

  if (!external) {
    // Gather the training-split features once, then hand them to the
    // feature store. fp32 with no cache stays a zero-copy view (the
    // legacy dense path, byte for byte); any codec or cache budget
    // builds a compressed store keyed by train-local ids, with cache
    // residency ranked by training-graph degree, and the dense copy is
    // freed — the decompressed matrix never outlives construction.
    train_features_ = tensor::Matrix(train_orig_.size(), in_dim_);
    tensor::gather_rows(ds_.features, train_orig_, train_features_);
    if (cfg_.feature_dtype == data::FeatureDtype::kF32 &&
        cfg_.feature_cache_mb == 0) {
      feat_store_ = std::make_unique<data::FeatureStore>(
          data::FeatureStore::view(train_features_));
    } else {
      data::FeatureStoreOptions fo;
      fo.dtype = cfg_.feature_dtype;
      fo.cache_mb = cfg_.feature_cache_mb;
      const std::vector<graph::Vid> hot = graph::degree_order(train_graph_);
      feat_store_ = std::make_unique<data::FeatureStore>(
          data::FeatureStore::build(train_features_, fo, hot));
      train_features_ = tensor::Matrix();
    }
  }

  // Loop-invariant truth rows for evaluate() (satellite of the gather
  // overhaul: these were re-gathered from ds_.labels on every eval).
  if (!ds_.val_vertices.empty()) {
    val_truth_ = tensor::Matrix(ds_.val_vertices.size(), ds_.num_classes());
    tensor::gather_rows(ds_.labels, ds_.val_vertices, val_truth_);
  }
  if (!ds_.test_vertices.empty()) {
    test_truth_ = tensor::Matrix(ds_.test_vertices.size(), ds_.num_classes());
    tensor::gather_rows(ds_.labels, ds_.test_vertices, test_truth_);
  }

  // Clamp sampler parameters to the training-graph size: budget at most
  // |V_train|, frontier below budget.
  const graph::Vid n_train = train_graph_.num_vertices();
  budget_ = std::min<graph::Vid>(cfg_.budget, std::max<graph::Vid>(n_train / 2, 2));
  frontier_ = std::min<graph::Vid>(cfg_.frontier_size,
                                   std::max<graph::Vid>(budget_ / 4, 1));
  if (frontier_ >= budget_) frontier_ = budget_ - 1;

  ModelConfig mc;
  mc.in_dim = in_dim_;
  mc.hidden_dim = cfg_.hidden_dim;
  mc.num_classes = ds_.num_classes();
  mc.num_layers = cfg_.num_layers;
  mc.seed = cfg_.seed;
  mc.aggregator = cfg_.aggregator;
  mc.dropout = cfg_.dropout;
  model_ = std::make_unique<GcnModel>(mc);

  AdamConfig ac;
  ac.lr = cfg_.lr;
  ac.grad_clip = cfg_.grad_clip;
  opt_ = std::make_unique<Adam>(ac);
  model_->attach(*opt_);

  sampling::PoolOptions pool_opt;
  pool_opt.p_inter = std::max(1, cfg_.p_inter);
  pool_opt.seed = cfg_.seed;
  pool_opt.async = cfg_.async_sampling;
  pool_opt.capacity = cfg_.pool_capacity;
  pool_ = std::make_unique<sampling::SubgraphPool>(
      train_graph_, [this](int i) { return make_sampler(i); }, pool_opt);

  if (cfg_.saint_loss_norm) {
    saint_ = std::make_unique<SaintNormalizer>(train_graph_.num_vertices());
    // A dedicated sampler instance + RNG stream keeps the training-time
    // sample sequence identical with/without normalization.
    auto probe = make_sampler(-1);
    util::Xoshiro256 rng = util::Xoshiro256::stream(cfg_.seed, 0x5a17);
    saint_->estimate(*probe, rng, cfg_.saint_presamples);
  }
}

std::unique_ptr<sampling::VertexSampler> Trainer::make_sampler(
    int /*instance*/) const {
  sampling::FrontierParams fp;
  fp.frontier_size = frontier_;
  fp.budget = budget_;
  fp.eta = cfg_.eta;
  fp.degree_cap = cfg_.degree_cap;
  switch (cfg_.sampler) {
    case SamplerKind::kFrontierDashboard:
      return std::make_unique<sampling::DashboardFrontierSampler>(train_graph_,
                                                                  fp, cfg_.intra);
    case SamplerKind::kFrontierNaive:
      return std::make_unique<sampling::NaiveFrontierSampler>(train_graph_, fp);
    case SamplerKind::kUniformNode:
      return std::make_unique<sampling::UniformNodeSampler>(train_graph_, budget_);
    case SamplerKind::kRandomEdge:
      return std::make_unique<sampling::RandomEdgeSampler>(train_graph_, budget_);
    case SamplerKind::kRandomWalk: {
      // roots·(len+1) ≈ budget with GraphSAINT-ish walk length 4.
      const graph::Vid len = 4;
      const graph::Vid roots = std::max<graph::Vid>(1, budget_ / (len + 1));
      return std::make_unique<sampling::RandomWalkSampler>(train_graph_, roots, len);
    }
    case SamplerKind::kForestFire:
      return std::make_unique<sampling::ForestFireSampler>(train_graph_, budget_);
    case SamplerKind::kSnowball:
      return std::make_unique<sampling::SnowballSampler>(train_graph_, budget_);
  }
  throw std::logic_error("unknown sampler kind");
}

TrainResult Trainer::train() {
  TrainResult result;
  PhaseClock clock;
  pool_->reset_accounting();

  std::unique_ptr<CheckpointManager> mgr;
  if (!cfg_.checkpoint_dir.empty()) {
    mgr = std::make_unique<CheckpointManager>(cfg_.checkpoint_dir);
  }

  const std::int64_t iters_per_epoch = std::max<std::int64_t>(
      1, train_graph_.num_vertices() / std::max<graph::Vid>(budget_, 1));

  const bool eval_epochs = cfg_.eval_every_epoch ||
                           cfg_.early_stop_patience > 0 || cfg_.restore_best;
  double best_val = -1.0;
  std::vector<tensor::Matrix> best_weights;
  int stale_epochs = 0;
  double train_time = 0.0;
  double sampler_wait = 0.0;
  float lr = cfg_.lr;
  int epoch = 0;
  int retries_used = 0;         // shared rollback budget, whole run
  int divergence_backoffs = 0;  // lr-backoff exponent since the last anchor

  // Resume: restore the newest valid checkpoint, then seek the pool to the
  // consumed-slot cursor so the subgraph sequence continues exactly where
  // the checkpointed run left off (slot k always draws from RNG stream
  // (seed, k), independent of p_inter or sync/async mode).
  if (cfg_.resume && mgr != nullptr) {
    std::string payload;
    int ck_epoch = -1;
    if (mgr->load_latest(payload, &ck_epoch)) {
      const CheckpointCursors c = decode_checkpoint(payload, *model_, *opt_);
      epoch = c.next_epoch;
      result.iterations = c.iterations;
      lr = c.lr;
      opt_->set_lr(lr);
      best_val = c.best_val;
      stale_epochs = c.stale_epochs;
      result.history = c.history;
      if (!result.history.empty()) {
        train_time = result.history.back().cumulative_seconds;
      }
      pool_->seek(c.pool_slot);
      result.resumed_from_epoch = epoch;
      GSGCN_COUNTER_INC("ckpt.restored");
      // Re-emit the restored records so the telemetry stream carries the
      // complete per-epoch sequence, not just the post-resume suffix —
      // downstream consumers can diff a resumed run against an
      // uninterrupted one line by line.
      for (const EpochRecord& rec : result.history) emit_epoch_record(rec);
    }
  }

  // Start (or restart, on a repeated train() call) the producer and take
  // the unavoidable first fill off the timed path: it is a cold start,
  // not a starvation stall, so `pool.stalls` measures only genuine
  // starvation during training.
  pool_->start_async();
  pool_->prefill();

  // The encoded checkpoint payload doubles as the guard's in-memory
  // rollback anchor, refreshed after every healthy epoch. Taking it before
  // epoch 0 (or right after a resume) means recovery works even with no
  // checkpoint_dir at all. Encoding is one serialization of the model +
  // optimizer per epoch — small next to an epoch of GEMMs.
  auto snapshot = [&]() {
    CheckpointCursors c;
    c.next_epoch = epoch;
    c.iterations = result.iterations;
    c.lr = lr;
    c.best_val = best_val;
    c.stale_epochs = stale_epochs;
    c.pool_slot = pool_->consumed();
    c.history = result.history;
    return encode_checkpoint(c, *model_, *opt_);
  };
  std::string last_good = snapshot();

  // Restore the anchor. For numeric divergence the learning rate is the
  // prime suspect, so it is backed off multiplicatively — compounding
  // across consecutive failed retries of the same epoch. Transient
  // sampler/pool faults skip the backoff: replaying the epoch with the
  // anchor's lr keeps the run bit-identical to an uninterrupted one.
  auto rollback = [&](bool lr_at_fault) {
    ++result.rollbacks;
    GSGCN_COUNTER_INC("guard.rollbacks");
    const CheckpointCursors c = decode_checkpoint(last_good, *model_, *opt_);
    epoch = c.next_epoch;
    result.iterations = c.iterations;
    best_val = c.best_val;
    stale_epochs = c.stale_epochs;
    result.history = c.history;
    lr = c.lr;
    if (lr_at_fault) {
      ++divergence_backoffs;
      for (int i = 0; i < divergence_backoffs; ++i) {
        lr *= cfg_.guard_lr_backoff;
      }
    }
    opt_->set_lr(lr);
    pool_->seek(c.pool_slot);
    pool_->start_async();
    pool_->prefill();
  };

  while (epoch < cfg_.epochs) {
    GSGCN_TRACE_SPAN_ID("train/epoch", epoch);
    util::Timer epoch_timer;
    // Pop wait (cv blocks in async mode, inline refills in sync mode) is
    // accounted by the pool; the delta over this epoch is subtracted from
    // the epoch wall time so train_seconds is pure compute — previously
    // inline refill time was double-counted into both train_seconds and
    // sample_seconds.
    const double wait_before = pool_->pop_wait_seconds();
    double loss_sum = 0.0;
    const char* trip = nullptr;  // non-null: this epoch must be discarded
    bool lr_at_fault = false;    // divergence vs transient infra fault
    std::string trip_what;
    try {
      for (std::int64_t it = 0; it < iters_per_epoch; ++it) {
        GSGCN_TRACE_SPAN("train/iteration");
        graph::Subgraph sub = pool_->pop();
        const graph::Vid n_sub = sub.num_vertices();
        GSGCN_ASSERT(n_sub > 0, "pool produced an empty subgraph");
        GSGCN_ASSERT(sub.orig_ids.size() == n_sub,
                     "subgraph id map size disagrees with its CSR");

        {
          GSGCN_TRACE_SPAN_ID("train/gather", n_sub);
          const data::FeatureStore& fstore =
              ext_features_ != nullptr ? *ext_features_ : *feat_store_;
          // The roofline work model learns the codec: a compressed row
          // reads value_bytes() per value, and every gather writes fp32.
          const obs::Work fwork [[maybe_unused]] = obs::gather_work(
              static_cast<std::int64_t>(n_sub),
              static_cast<std::int64_t>(in_dim_),
              static_cast<double>(fstore.value_bytes()));
          const obs::Work lwork [[maybe_unused]] = obs::gather_work(
              static_cast<std::int64_t>(n_sub),
              static_cast<std::int64_t>(ds_.num_classes()));
          GSGCN_PERF_REGION_WORK("gather", fwork.flops + lwork.flops,
                                 fwork.bytes + lwork.bytes);
          ensure_shape(batch_features_, n_sub, in_dim_);
          ensure_shape(batch_labels_, n_sub, ds_.num_classes());
          if (ext_features_ != nullptr) {
            // External stores are keyed by dataset ids; translate the
            // train-local subgraph ids through train_orig_.
            batch_ids_.resize(n_sub);
            for (graph::Vid i = 0; i < n_sub; ++i) {
              batch_ids_[i] = train_orig_[sub.orig_ids[i]];
            }
            fstore.gather(batch_ids_, batch_features_, cfg_.threads);
          } else {
            fstore.gather(sub.orig_ids, batch_features_, cfg_.threads);
          }
          tensor::gather_rows(train_labels_, sub.orig_ids, batch_labels_,
                              cfg_.threads);
          if (ext_features_ != nullptr && ext_features_->mmapped()) {
            // Out-of-core lookahead: hint the pages behind the subgraph
            // the pool will hand us next, so the page cache fills while
            // this iteration computes.
            const std::vector<graph::Vid> next = pool_->peek_next_orig_ids();
            if (!next.empty()) {
              prefetch_ids_.resize(next.size());
              for (std::size_t i = 0; i < next.size(); ++i) {
                prefetch_ids_[i] = train_orig_[next[i]];
              }
              ext_features_->prefetch(prefetch_ids_);
            }
          }
        }

        const tensor::Matrix& logits = model_->forward(
            sub.graph, batch_features_, cfg_.threads, &clock,
            /*training=*/true);
        GSGCN_CHECK_FINITE_RANGE(logits.data(), logits.size(),
                                 "training logits");
        ensure_shape(d_logits_, n_sub, ds_.num_classes());
        double iter_loss = 0.0;
        {
          GSGCN_TRACE_SPAN("train/loss");
          if (saint_ != nullptr) {
            const std::vector<float> w = saint_->batch_weights(sub.orig_ids);
            iter_loss = classification_loss_weighted(
                ds_.mode, logits, batch_labels_, w, d_logits_);
          } else {
            iter_loss =
                classification_loss(ds_.mode, logits, batch_labels_, d_logits_);
          }
        }
        // Report-kind fault site: poisons the observed loss so tests and
        // CI can trip the guard on demand without real numeric blowup.
        if (util::fault_point("trainer.poison_loss")) {
          iter_loss = std::numeric_limits<double>::quiet_NaN();
        }
        loss_sum += iter_loss;
        GSGCN_CHECK_FINITE_RANGE(d_logits_.data(), d_logits_.size(),
                                 "loss gradient");
        if (cfg_.guard &&
            (!std::isfinite(iter_loss) ||
             !all_finite(logits.data(), logits.size()) ||
             !all_finite(d_logits_.data(), d_logits_.size()))) {
          // Stop before backward/apply: the optimizer must not step on
          // poisoned gradients.
          trip = "non-finite loss/logits/gradient";
          lr_at_fault = true;
          break;
        }
        model_->backward(sub.graph, d_logits_, cfg_.threads, &clock);
        {
          GSGCN_TRACE_SPAN("train/adam");
          const obs::Work work [[maybe_unused]] = obs::adam_work(
              static_cast<std::int64_t>(model_->num_parameters()));
          GSGCN_PERF_REGION_WORK("update", work.flops, work.bytes);
          model_->apply_gradients(*opt_);
        }
        GSGCN_COUNTER_INC("train.iterations");
        ++result.iterations;
      }
    } catch (const std::exception& e) {
      // Transient infra fault (sampler/pool exceptions surface here via
      // pop()). With the guard off the old contract holds: it propagates.
      if (!cfg_.guard) throw;
      trip = "sampler/pool exception";
      trip_what = e.what();
    }

    if (trip == nullptr && cfg_.guard) {
      const double mean_loss =
          loss_sum / static_cast<double>(iters_per_epoch);
      if (!std::isfinite(mean_loss) ||
          std::abs(mean_loss) > cfg_.guard_loss_limit) {
        trip = "epoch loss beyond guard_loss_limit";
        lr_at_fault = true;
      }
    }

    if (trip != nullptr) {
      result.recovery_seconds += epoch_timer.seconds();
      if (lr_at_fault) {
        ++result.guard_trips;
        GSGCN_COUNTER_INC("guard.trips");
      }
      if (retries_used >= cfg_.guard_max_retries) {
        pool_->stop_async();
        throw std::runtime_error(
            "trainer: rollback budget exhausted (" +
            std::to_string(cfg_.guard_max_retries) + " retries) at epoch " +
            std::to_string(epoch) + "; last trip: " + trip +
            (trip_what.empty() ? std::string() : ": " + trip_what));
      }
      ++retries_used;
      rollback(lr_at_fault);
      continue;  // replay the rolled-back epoch
    }

    const double epoch_wall = epoch_timer.seconds();
    const double epoch_wait = pool_->pop_wait_seconds() - wait_before;
    const double epoch_compute = std::max(0.0, epoch_wall - epoch_wait);
    train_time += epoch_compute;
    sampler_wait += epoch_wait;

    EpochRecord rec;
    rec.epoch = epoch;
    rec.train_loss = loss_sum / static_cast<double>(iters_per_epoch);
    rec.epoch_seconds = epoch_compute;
    rec.cumulative_seconds = train_time;
    if (eval_epochs) rec.val_f1 = evaluate(ds_.val_vertices);
    result.history.push_back(rec);
    emit_epoch_record(rec);
    // Loss-over-time counter track next to the epoch spans in Perfetto.
    GSGCN_TRACE_COUNTER("train/loss", rec.train_loss);
    if (cfg_.metrics_every_epoch) emit_epoch_metrics(epoch);

    // Per-epoch learning-rate decay.
    if (cfg_.lr_decay != 1.0f) {
      lr *= cfg_.lr_decay;
      opt_->set_lr(lr);
    }
    // Early stopping / best-weights tracking on validation F1.
    if (cfg_.early_stop_patience > 0 || cfg_.restore_best) {
      if (rec.val_f1 > best_val + 1e-9) {
        best_val = rec.val_f1;
        stale_epochs = 0;
        if (cfg_.restore_best) best_weights = model_->snapshot_weights();
      } else if (cfg_.early_stop_patience > 0 &&
                 ++stale_epochs >= cfg_.early_stop_patience) {
        result.early_stopped = true;
      }
    }
    ++epoch;

    // Healthy epoch: refresh the rollback anchor (its lr now includes any
    // backoff, so the exponent resets) and, on cadence, publish it to disk.
    last_good = snapshot();
    divergence_backoffs = 0;
    if (mgr != nullptr && cfg_.checkpoint_every > 0 &&
        (epoch % cfg_.checkpoint_every == 0 || epoch == cfg_.epochs ||
         result.early_stopped)) {
      try {
        mgr->write(epoch, last_good);
        ++result.checkpoints_written;
        GSGCN_COUNTER_INC("ckpt.written");
      } catch (const std::exception&) {
        // A failed write must not kill training: the temp-file publish
        // protocol leaves the previous checkpoint authoritative.
        GSGCN_COUNTER_INC("ckpt.write_failures");
      }
    }
    // Post-checkpoint crash window: CI arms this site abort-kind to kill
    // the process here and prove --resume reproduces the uninterrupted
    // run's loss sequence byte for byte.
    util::fault_point("trainer.epoch_end");
    if (result.early_stopped) break;
  }
  if (cfg_.restore_best && !best_weights.empty()) {
    model_->restore_weights(best_weights);
  }

  // Quiesce the producer before scraping metrics (obs scrape contract);
  // a later train() call restarts it. Any queued subgraphs stay FIFO.
  pool_->stop_async();

  result.train_seconds = train_time;
  result.sampler_wait_seconds = sampler_wait;
  result.sample_seconds = pool_->sampling_seconds();
  result.pool_stalls = static_cast<std::int64_t>(pool_->stalls());
  result.pool_cold_starts = static_cast<std::int64_t>(pool_->cold_starts());
  result.featprop_seconds = clock.feature_prop.total_seconds();
  result.weight_seconds = clock.weight_apply.total_seconds();
  if (cfg_.final_eval) {
    result.final_val_f1 = evaluate(ds_.val_vertices);
    result.final_test_f1 = evaluate(ds_.test_vertices);
  }
  if (mgr != nullptr && mgr->fallbacks() > 0) {
    GSGCN_COUNTER_ADD("ckpt.fallbacks",
                      static_cast<double>(mgr->fallbacks()));
  }
  emit_run_summary(result);
  return result;
}

void Trainer::emit_epoch_record(const EpochRecord& rec) const {
  obs::Telemetry& sink = obs::Telemetry::instance();
  if (!sink.enabled()) return;
  std::string line;
  util::JsonWriter w(&line);
  w.begin_object();
  w.key("type").value("epoch");
  w.key("epoch").value(rec.epoch);
  w.key("train_loss").value(rec.train_loss);
  w.key("val_f1").value(rec.val_f1);
  // Both granularities, explicitly named: the old record emitted the
  // cumulative value under "train_seconds", which read as per-epoch.
  w.key("epoch_seconds").value(rec.epoch_seconds);
  w.key("cumulative_seconds").value(rec.cumulative_seconds);
  w.end_object();
  sink.emit(line);
}

void Trainer::emit_epoch_metrics(int epoch) {
  obs::Telemetry& sink = obs::Telemetry::instance();
  if (!sink.enabled()) return;
  // Registry::scrape() merges live per-thread shards, so it needs a
  // quiescent point; in async mode the producer thread is still writing
  // pool metrics. Pause it around the scrape — queued subgraphs stay
  // FIFO and slot k always draws from RNG stream (seed, k), so the
  // subgraph (and loss) sequence is unchanged.
  const bool was_async = pool_->async_running();
  if (was_async) pool_->stop_async();
  std::string line;
  util::JsonWriter w(&line);
  w.begin_object();
  w.key("type").value("metrics");
  w.key("epoch").value(epoch);
  w.key("metrics").value_raw(obs::Registry::instance().scrape().to_json());
  w.end_object();
  sink.emit(line);
  if (was_async) pool_->start_async();
}

void Trainer::emit_run_summary(const TrainResult& result) const {
  obs::Telemetry& sink = obs::Telemetry::instance();
  if (!sink.enabled()) return;
  std::string line;
  util::JsonWriter w(&line);
  w.begin_object();
  w.key("type").value("run_summary");
  w.key("sampler").value(sampler_kind_name(cfg_.sampler));
  // Requested vs. effective sampler parameters: the constructor clamps
  // budget/frontier against the training-graph size, and a silent clamp
  // has bitten small-dataset experiments before — make it visible.
  w.key("requested_budget").value(static_cast<std::int64_t>(cfg_.budget));
  w.key("effective_budget").value(static_cast<std::int64_t>(budget_));
  w.key("requested_frontier")
      .value(static_cast<std::int64_t>(cfg_.frontier_size));
  w.key("effective_frontier").value(static_cast<std::int64_t>(frontier_));
  w.key("params_clamped")
      .value(budget_ != cfg_.budget || frontier_ != cfg_.frontier_size);
  w.key("train_graph_vertices")
      .value(static_cast<std::int64_t>(train_graph_.num_vertices()));
  w.key("epochs_run").value(static_cast<std::int64_t>(result.history.size()));
  w.key("iterations").value(result.iterations);
  w.key("early_stopped").value(result.early_stopped);
  // Pipeline configuration + health: stall-free async runs report
  // pool_stalls == 0 (asserted by the CI obs smoke job).
  w.key("async_sampling").value(cfg_.async_sampling);
  w.key("pool_capacity")
      .value(static_cast<std::int64_t>(pool_->capacity()));
  w.key("pool_stalls").value(result.pool_stalls);
  w.key("pool_cold_starts").value(result.pool_cold_starts);
  w.key("train_seconds").value(result.train_seconds);
  w.key("sampler_wait_seconds").value(result.sampler_wait_seconds);
  w.key("sample_seconds").value(result.sample_seconds);
  w.key("featprop_seconds").value(result.featprop_seconds);
  w.key("weight_seconds").value(result.weight_seconds);
  w.key("final_val_f1").value(result.final_val_f1);
  w.key("final_test_f1").value(result.final_test_f1);
  // Fault-tolerance accounting: all zero / -1 on a clean fresh run. The
  // CI recovery job asserts on these (rollbacks after an injected poison,
  // resumed_from_epoch after a kill + --resume).
  w.key("checkpoints_written").value(result.checkpoints_written);
  w.key("guard_trips").value(result.guard_trips);
  w.key("rollbacks").value(result.rollbacks);
  w.key("resumed_from_epoch")
      .value(static_cast<std::int64_t>(result.resumed_from_epoch));
  w.key("recovery_seconds").value(result.recovery_seconds);
  w.key("faults_injected")
      .value(static_cast<std::int64_t>(
          util::FaultInjector::instance().fired_total()));
  // Full metrics scrape (counters/gauges/histograms) — empty collections
  // in builds where the instrumentation macros compile out.
  w.key("metrics").value_raw(obs::Registry::instance().scrape().to_json());
  // Per-phase roofline attribution (see obs/roofline.hpp) when the PMU
  // profiler was enabled for this run. The producer is already quiesced
  // (stop_async above), so the scrape is at a quiescent point.
  obs::PerfProfiler& prof = obs::PerfProfiler::instance();
  if (prof.enabled()) {
    w.key("perf").value_raw(
        obs::roofline_report_json(prof.scrape(), obs::machine_info()));
  }
  w.end_object();
  sink.emit(line);
}

double Trainer::evaluate(const std::vector<graph::Vid>& subset) {
  if (subset.empty()) return 0.0;
  GSGCN_TRACE_SPAN_ID("train/evaluate", subset.size());
  // Cache-free full-graph inference: identical numerics to model forward
  // in eval mode, but it does not disturb the training buffers.
  const tensor::Matrix& logits =
      infer_logits(*model_, ds_.graph, ds_.features, infer_scratch_,
                   cfg_.threads);
  ensure_shape(eval_pred_, logits.rows(), logits.cols());
  predict(ds_.mode, logits, eval_pred_);
  ensure_shape(subset_pred_, subset.size(), logits.cols());
  tensor::gather_rows(eval_pred_, subset, subset_pred_, cfg_.threads);
  // The val/test truth subsets were gathered once at construction; any
  // other subset (callers may evaluate arbitrary vertex sets) falls back
  // to a per-call gather.
  const tensor::Matrix* truth = nullptr;
  if (&subset == &ds_.val_vertices && val_truth_.rows() == subset.size()) {
    truth = &val_truth_;
  } else if (&subset == &ds_.test_vertices &&
             test_truth_.rows() == subset.size()) {
    truth = &test_truth_;
  } else {
    ensure_shape(subset_truth_, subset.size(), logits.cols());
    tensor::gather_rows(ds_.labels, subset, subset_truth_, cfg_.threads);
    truth = &subset_truth_;
  }
  return f1_micro(subset_pred_, *truth);
}

}  // namespace gsgcn::gcn

#include "gcn/model.hpp"

#include <fstream>
#include <memory>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace gsgcn::gcn {

GcnModel::GcnModel(const ModelConfig& config) : cfg_(config) {
  if (cfg_.in_dim == 0 || cfg_.num_classes == 0 || cfg_.hidden_dim == 0 ||
      cfg_.num_layers < 1) {
    throw std::invalid_argument("GcnModel: bad config");
  }
  util::Xoshiro256 rng(cfg_.seed);
  std::size_t width = cfg_.in_dim;
  for (int l = 0; l < cfg_.num_layers; ++l) {
    layers_.emplace_back(width, cfg_.hidden_dim, /*relu=*/true, rng,
                         cfg_.aggregator);
    layers_.back().set_dropout(cfg_.dropout);
    width = layers_.back().output_width();
  }
  w_cls_ = tensor::Matrix::glorot(width, cfg_.num_classes, rng);
  b_cls_ = tensor::Matrix(1, cfg_.num_classes);
  d_w_cls_ = tensor::Matrix(width, cfg_.num_classes);
  d_b_cls_ = tensor::Matrix(1, cfg_.num_classes);
}

const tensor::Matrix& GcnModel::forward(const graph::CsrGraph& g,
                                        const tensor::Matrix& x, int threads,
                                        PhaseClock* clock, bool training) {
  const tensor::Matrix* h = &x;
  for (auto& layer : layers_) {
    h = &layer.forward(g, *h, threads, clock, training);
  }
  last_hidden_ = h;
  ensure_shape(logits_, h->rows(), cfg_.num_classes);
  {
    std::unique_ptr<util::ScopedPhase> p;
    if (clock != nullptr) p = std::make_unique<util::ScopedPhase>(clock->weight_apply);
    tensor::gemm_nn(*h, w_cls_, logits_, 1.0f, 0.0f, threads);
    tensor::add_bias_rows(logits_, {b_cls_.data(), b_cls_.cols()}, threads);
  }
  return logits_;
}

void GcnModel::backward(const graph::CsrGraph& g,
                        const tensor::Matrix& d_logits, int threads,
                        PhaseClock* clock) {
  if (last_hidden_ == nullptr) {
    throw std::logic_error("GcnModel::backward before forward");
  }
  ensure_shape(d_hidden_, last_hidden_->rows(), last_hidden_->cols());
  {
    std::unique_ptr<util::ScopedPhase> p;
    if (clock != nullptr) p = std::make_unique<util::ScopedPhase>(clock->weight_apply);
    tensor::gemm_tn(*last_hidden_, d_logits, d_w_cls_, 1.0f, 0.0f, threads);
    tensor::bias_grad(d_logits, {d_b_cls_.data(), d_b_cls_.cols()});
    tensor::gemm_nt(d_logits, w_cls_, d_hidden_, 1.0f, 0.0f, threads);
  }
  const tensor::Matrix* d = &d_hidden_;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    d = &it->backward(g, *d, threads, clock);
  }
  last_hidden_ = nullptr;
}

void GcnModel::attach(Adam& opt) {
  if (attached_) throw std::logic_error("GcnModel: already attached");
  for (auto& layer : layers_) {
    slots_.push_back(opt.add_param(layer.w_self().rows(), layer.w_self().cols()));
    slots_.push_back(opt.add_param(layer.w_neigh().rows(), layer.w_neigh().cols()));
  }
  slots_.push_back(opt.add_param(w_cls_.rows(), w_cls_.cols()));
  slots_.push_back(opt.add_param(b_cls_.rows(), b_cls_.cols()));
  attached_ = true;
}

void GcnModel::apply_gradients(Adam& opt) {
  if (!attached_) throw std::logic_error("GcnModel: attach before stepping");
  opt.begin_step();
  std::size_t s = 0;
  for (auto& layer : layers_) {
    opt.update(slots_[s++], layer.w_self(), layer.grad_w_self());
    opt.update(slots_[s++], layer.w_neigh(), layer.grad_w_neigh());
  }
  opt.update(slots_[s++], w_cls_, d_w_cls_);
  opt.update(slots_[s++], b_cls_, d_b_cls_);
}

namespace {
constexpr std::uint64_t kCheckpointMagic = 0x6773676e6d646c31ULL;  // gsgnmdl1
}  // namespace

void GcnModel::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("GcnModel::save: cannot open " + path);
  save(out);
  if (!out) throw std::runtime_error("GcnModel::save: write failed: " + path);
}

void GcnModel::save(std::ostream& out) const {
  out.write(reinterpret_cast<const char*>(&kCheckpointMagic),
            sizeof(kCheckpointMagic));
  const std::uint64_t fields[] = {
      cfg_.in_dim, cfg_.hidden_dim, cfg_.num_classes,
      static_cast<std::uint64_t>(cfg_.num_layers), cfg_.seed,
      static_cast<std::uint64_t>(cfg_.aggregator)};
  out.write(reinterpret_cast<const char*>(fields), sizeof(fields));
  out.write(reinterpret_cast<const char*>(&cfg_.dropout), sizeof(cfg_.dropout));
  for (const auto& layer : layers_) {
    tensor::write_matrix(out, layer.w_self());
    tensor::write_matrix(out, layer.w_neigh());
  }
  tensor::write_matrix(out, w_cls_);
  tensor::write_matrix(out, b_cls_);
  if (!out) throw std::runtime_error("GcnModel::save: write failed");
}

GcnModel GcnModel::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("GcnModel::load: cannot open " + path);
  try {
    return load(in);
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string(e.what()) + ": " + path);
  }
}

GcnModel GcnModel::load(std::istream& in) {
  std::uint64_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in || magic != kCheckpointMagic) {
    throw std::runtime_error("GcnModel::load: bad checkpoint");
  }
  std::uint64_t fields[6] = {};
  float dropout = 0.0f;
  in.read(reinterpret_cast<char*>(fields), sizeof(fields));
  in.read(reinterpret_cast<char*>(&dropout), sizeof(dropout));
  if (!in) throw std::runtime_error("GcnModel::load: truncated");
  // Plausibility caps before constructing: a corrupt header must throw,
  // not drive a multi-terabyte allocation.
  if (fields[0] > (1ull << 24) || fields[1] > (1ull << 24) ||
      fields[2] > (1ull << 24) || fields[3] > 1024) {
    throw std::runtime_error("GcnModel::load: implausible header dims");
  }
  ModelConfig cfg;
  cfg.in_dim = fields[0];
  cfg.hidden_dim = fields[1];
  cfg.num_classes = fields[2];
  cfg.num_layers = static_cast<int>(fields[3]);
  cfg.seed = fields[4];
  cfg.aggregator = static_cast<propagation::AggregatorKind>(fields[5]);
  cfg.dropout = dropout;
  GcnModel model(cfg);
  for (auto& layer : model.layers_) {
    layer.w_self() = tensor::read_matrix(in);
    layer.w_neigh() = tensor::read_matrix(in);
    if (layer.w_self().rows() != layer.in_dim() ||
        layer.w_self().cols() != layer.out_dim() ||
        layer.w_neigh().rows() != layer.in_dim() ||
        layer.w_neigh().cols() != layer.out_dim()) {
      throw std::runtime_error("GcnModel::load: weight shape mismatch");
    }
  }
  model.w_cls_ = tensor::read_matrix(in);
  model.b_cls_ = tensor::read_matrix(in);
  if (model.w_cls_.cols() != cfg.num_classes ||
      model.b_cls_.cols() != cfg.num_classes) {
    throw std::runtime_error("GcnModel::load: classifier shape mismatch");
  }
  return model;
}

std::vector<tensor::Matrix> GcnModel::snapshot_weights() const {
  std::vector<tensor::Matrix> snap;
  snap.reserve(layers_.size() * 2 + 2);
  for (const auto& layer : layers_) {
    snap.push_back(layer.w_self());
    snap.push_back(layer.w_neigh());
  }
  snap.push_back(w_cls_);
  snap.push_back(b_cls_);
  return snap;
}

void GcnModel::restore_weights(const std::vector<tensor::Matrix>& snapshot) {
  if (snapshot.size() != layers_.size() * 2 + 2) {
    throw std::invalid_argument("restore_weights: snapshot size mismatch");
  }
  std::size_t s = 0;
  for (auto& layer : layers_) {
    layer.w_self() = snapshot[s++];
    layer.w_neigh() = snapshot[s++];
  }
  w_cls_ = snapshot[s++];
  b_cls_ = snapshot[s++];
}

std::size_t GcnModel::num_parameters() const {
  std::size_t total = w_cls_.size() + b_cls_.size();
  for (const auto& layer : layers_) {
    total += layer.w_self().size() + layer.w_neigh().size();
  }
  return total;
}

}  // namespace gsgcn::gcn

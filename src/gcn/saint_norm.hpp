#pragma once
// Sampling-bias normalization (the paper's future work — "theoretical
// foundation of the graph sampling-based GCN" — which its authors later
// published as GraphSAINT).
//
// Frontier sampling visits high-degree vertices more often than uniform
// ones, so the naive minibatch loss Σ_{v∈G_s} ℓ_v is a *biased* estimate
// of the full training loss. GraphSAINT's fix: estimate each vertex's
// inclusion probability p_v by pre-sampling S subgraphs and counting
// occurrences (λ_v = C_v / S), then weight each sampled vertex's loss by
// 1/λ_v, making the minibatch loss an unbiased estimator of Σ_v ℓ_v up
// to the Monte-Carlo error of the estimate.

#include <vector>

#include "graph/csr.hpp"
#include "sampling/sampler.hpp"

namespace gsgcn::gcn {

class SaintNormalizer {
 public:
  explicit SaintNormalizer(graph::Vid num_vertices);

  /// Pre-sample `num_samples` subgraphs and count vertex occurrences.
  /// Duplicates within one sample count once (inclusion probability).
  void estimate(sampling::VertexSampler& sampler, util::Xoshiro256& rng,
                int num_samples);

  bool estimated() const { return samples_ > 0; }
  int samples() const { return samples_; }

  /// Estimated inclusion probability of vertex v, with add-half smoothing
  /// (never 0, so weights stay finite): (C_v + 0.5) / (S + 1).
  double inclusion_probability(graph::Vid v) const;

  /// Loss weight ∝ 1/p_v, rescaled so the *mean weight over all vertices*
  /// is 1 (keeps the effective learning rate comparable to the
  /// unnormalized loss). Requires estimate() first.
  float loss_weight(graph::Vid v) const;

  /// Gather weights for a batch of (train-graph) vertex ids.
  std::vector<float> batch_weights(const std::vector<graph::Vid>& vertices) const;

 private:
  graph::Vid num_vertices_;
  std::vector<std::int32_t> counts_;
  std::vector<float> weights_;  // precomputed normalized 1/p
  int samples_ = 0;
};

}  // namespace gsgcn::gcn

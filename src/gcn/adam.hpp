#pragma once
// Adam optimizer (paper Algorithm 1, line 13). One AdamState per weight
// tensor; the shared step counter lives in the Adam object so bias
// correction is consistent across parameters.

#include <iosfwd>
#include <vector>

#include "tensor/matrix.hpp"

namespace gsgcn::gcn {

struct AdamConfig {
  float lr = 0.01f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
  float weight_decay = 0.0f;  // L2 coefficient added to gradients
  float grad_clip = 0.0f;     // per-tensor L2 clip (0 = off)
};

class Adam {
 public:
  explicit Adam(AdamConfig config = {}) : cfg_(config) {}

  /// Register a parameter; returns its slot id. Shapes are fixed from
  /// registration on.
  std::size_t add_param(std::size_t rows, std::size_t cols);

  /// Begin an update step (advances the bias-correction counter).
  void begin_step();

  /// Apply grad to param for a registered slot. Must be called between
  /// begin_step() boundaries, once per slot per step.
  void update(std::size_t slot, tensor::Matrix& param,
              const tensor::Matrix& grad);

  const AdamConfig& config() const { return cfg_; }
  std::int64_t steps() const { return t_; }

  /// Adjust the learning rate between steps (LR schedules).
  void set_lr(float lr) { cfg_.lr = lr; }

  /// Serialize the full optimizer state (step counter + both moment
  /// tensors per slot) to a binary stream; load_state restores it into an
  /// optimizer with the same registered slots, so a checkpointed training
  /// run continues bit-identically instead of restarting the moment
  /// estimates from zero. load_state throws std::runtime_error on slot
  /// count or shape mismatch and on truncation.
  void save_state(std::ostream& out) const;
  void load_state(std::istream& in);

 private:
  AdamConfig cfg_;
  std::int64_t t_ = 0;
  std::vector<tensor::Matrix> m_;  // first moments
  std::vector<tensor::Matrix> v_;  // second moments
};

}  // namespace gsgcn::gcn

#include "gcn/saint_norm.hpp"

#include <stdexcept>
#include <unordered_set>

namespace gsgcn::gcn {

SaintNormalizer::SaintNormalizer(graph::Vid num_vertices)
    : num_vertices_(num_vertices), counts_(num_vertices, 0) {}

void SaintNormalizer::estimate(sampling::VertexSampler& sampler,
                               util::Xoshiro256& rng, int num_samples) {
  if (num_samples <= 0) {
    throw std::invalid_argument("SaintNormalizer: num_samples must be > 0");
  }
  std::unordered_set<graph::Vid> seen;
  for (int s = 0; s < num_samples; ++s) {
    seen.clear();
    for (const graph::Vid v : sampler.sample_vertices(rng)) {
      if (v >= num_vertices_) {
        throw std::out_of_range("SaintNormalizer: sampled vertex out of range");
      }
      if (seen.insert(v).second) ++counts_[v];
    }
  }
  samples_ += num_samples;

  // Precompute normalized weights: w_v ∝ 1/p_v, mean over vertices = 1.
  weights_.assign(num_vertices_, 0.0f);
  double total = 0.0;
  for (graph::Vid v = 0; v < num_vertices_; ++v) {
    const double w = 1.0 / inclusion_probability(v);
    weights_[v] = static_cast<float>(w);
    total += w;
  }
  const double mean = total / static_cast<double>(num_vertices_);
  for (auto& w : weights_) w = static_cast<float>(w / mean);
}

double SaintNormalizer::inclusion_probability(graph::Vid v) const {
  if (v >= num_vertices_) {
    throw std::out_of_range("SaintNormalizer: vertex out of range");
  }
  return (static_cast<double>(counts_[v]) + 0.5) /
         (static_cast<double>(samples_) + 1.0);
}

float SaintNormalizer::loss_weight(graph::Vid v) const {
  if (!estimated()) {
    throw std::logic_error("SaintNormalizer: estimate() not called");
  }
  if (v >= num_vertices_) {
    throw std::out_of_range("SaintNormalizer: vertex out of range");
  }
  return weights_[v];
}

std::vector<float> SaintNormalizer::batch_weights(
    const std::vector<graph::Vid>& vertices) const {
  std::vector<float> out;
  out.reserve(vertices.size());
  for (const graph::Vid v : vertices) out.push_back(loss_weight(v));
  return out;
}

}  // namespace gsgcn::gcn

#include "graph/subgraph.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/parallel.hpp"

namespace gsgcn::graph {

Inducer::Inducer(const CsrGraph& graph)
    : g_(graph),
      stamp_(graph.num_vertices(), 0),
      local_of_(graph.num_vertices(), 0) {}

Subgraph Inducer::induce(const std::vector<Vid>& vertices, int threads) {
  ++epoch_;
  if (epoch_ == 0) {  // stamp wraparound: invalidate everything once
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 1;
  }

  // Map original → local, first occurrence wins.
  Subgraph out;
  out.orig_ids.reserve(vertices.size());
  for (const Vid v : vertices) {
    GSGCN_CHECK_BOUNDS(v, g_.num_vertices());
    if (stamp_[v] == epoch_) continue;
    stamp_[v] = epoch_;
    local_of_[v] = static_cast<Vid>(out.orig_ids.size());
    out.orig_ids.push_back(v);
  }
  const Vid n_sub = static_cast<Vid>(out.orig_ids.size());

  // Pass 1: per-vertex induced degree.
  std::vector<Eid> offsets(static_cast<std::size_t>(n_sub) + 1, 0);
  util::parallel_for(n_sub, threads, [&](std::int64_t i) {
    const auto lv = static_cast<Vid>(i);
    Eid deg = 0;
    for (const Vid nb : g_.neighbors(out.orig_ids[lv])) {
      if (stamp_[nb] == epoch_) ++deg;
    }
    offsets[lv + 1] = deg;
  });
  for (Vid lv = 0; lv < n_sub; ++lv) offsets[lv + 1] += offsets[lv];

  // Pass 2: fill rows. Original rows are sorted by original id, which is
  // not local order, so each induced row is sorted afterwards.
  std::vector<Vid> adj(static_cast<std::size_t>(offsets[n_sub]));
  util::parallel_for(n_sub, threads, [&](std::int64_t i) {
    const auto lv = static_cast<Vid>(i);
    Eid w = offsets[lv];
    for (const Vid nb : g_.neighbors(out.orig_ids[lv])) {
      if (stamp_[nb] == epoch_) adj[static_cast<std::size_t>(w++)] = local_of_[nb];
    }
    GSGCN_ASSERT(w == offsets[lv + 1],
                 "induced row length disagrees with pass-1 degree");
    std::sort(adj.begin() + offsets[lv], adj.begin() + w);
  });

  out.graph = CsrGraph::from_csr(std::move(offsets), std::move(adj));
  return out;
}

}  // namespace gsgcn::graph

#include "graph/reorder.hpp"

#include <algorithm>
#include <numeric>

namespace gsgcn::graph {

namespace {

Reordering relabel(const CsrGraph& g, std::vector<Vid> new_to_old) {
  const Vid n = g.num_vertices();
  Reordering r;
  r.new_to_old = std::move(new_to_old);
  r.old_to_new.resize(n);
  for (Vid new_id = 0; new_id < n; ++new_id) {
    r.old_to_new[r.new_to_old[new_id]] = new_id;
  }
  std::vector<Eid> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (Vid new_id = 0; new_id < n; ++new_id) {
    offsets[new_id + 1] =
        offsets[new_id] + g.degree(r.new_to_old[new_id]);
  }
  std::vector<Vid> adj(static_cast<std::size_t>(offsets[n]));
  for (Vid new_id = 0; new_id < n; ++new_id) {
    Eid w = offsets[new_id];
    for (const Vid old_nb : g.neighbors(r.new_to_old[new_id])) {
      adj[static_cast<std::size_t>(w++)] = r.old_to_new[old_nb];
    }
    std::sort(adj.begin() + offsets[new_id], adj.begin() + w);
  }
  r.graph = CsrGraph::from_csr(std::move(offsets), std::move(adj));
  return r;
}

}  // namespace

std::vector<Vid> degree_order(const CsrGraph& g) {
  const Vid n = g.num_vertices();
  std::vector<Vid> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](Vid a, Vid b) {
    return g.degree(a) > g.degree(b);
  });
  return order;
}

std::vector<Vid> bfs_order(const CsrGraph& g, Vid root) {
  const Vid n = g.num_vertices();
  std::vector<Vid> order;
  order.reserve(n);
  std::vector<bool> seen(n, false);
  auto bfs_from = [&](Vid start) {
    seen[start] = true;
    order.push_back(start);
    std::size_t head = order.size() - 1;
    while (head < order.size()) {
      const Vid u = order[head++];
      for (const Vid v : g.neighbors(u)) {
        if (!seen[v]) {
          seen[v] = true;
          order.push_back(v);
        }
      }
    }
  };
  if (n > 0) bfs_from(root < n ? root : 0);
  for (Vid v = 0; v < n; ++v) {
    if (!seen[v]) bfs_from(v);
  }
  return order;
}

Reordering reorder_by_degree(const CsrGraph& g) {
  return relabel(g, degree_order(g));
}

Reordering reorder_by_bfs(const CsrGraph& g, Vid root) {
  return relabel(g, bfs_order(g, root));
}

}  // namespace gsgcn::graph

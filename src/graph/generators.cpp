#include "graph/generators.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace gsgcn::graph {

CsrGraph erdos_renyi(Vid n, Eid m, util::Xoshiro256& rng) {
  if (n < 2) throw std::invalid_argument("erdos_renyi: need n >= 2");
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(m));
  for (Eid i = 0; i < m; ++i) {
    const Vid u = rng.below(n);
    Vid v = rng.below(n - 1);
    if (v >= u) ++v;  // uniform over pairs u != v
    edges.push_back({u, v});
  }
  return CsrGraph::from_edges(n, edges);
}

CsrGraph barabasi_albert(Vid n, Vid epv, util::Xoshiro256& rng) {
  if (epv == 0 || n <= epv) {
    throw std::invalid_argument("barabasi_albert: need n > edges_per_vertex > 0");
  }
  // Repeated-endpoints trick: sampling uniformly from the list of all edge
  // endpoints so far is equivalent to degree-proportional selection.
  std::vector<Vid> endpoints;
  endpoints.reserve(static_cast<std::size_t>(2) * n * epv);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * epv);

  // Seed clique over the first epv+1 vertices keeps early degrees nonzero.
  for (Vid u = 0; u <= epv; ++u) {
    for (Vid v = u + 1; v <= epv; ++v) {
      edges.push_back({u, v});
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (Vid u = epv + 1; u < n; ++u) {
    for (Vid j = 0; j < epv; ++j) {
      const Vid target =
          endpoints[rng.below(static_cast<std::uint32_t>(endpoints.size()))];
      edges.push_back({u, target});
      endpoints.push_back(u);
      endpoints.push_back(target);
    }
  }
  return CsrGraph::from_edges(n, edges);
}

CsrGraph rmat(const RmatParams& p, util::Xoshiro256& rng) {
  if (p.scale < 1 || p.scale > 30) throw std::invalid_argument("rmat: bad scale");
  const double d = 1.0 - p.a - p.b - p.c;
  if (d < 0.0) throw std::invalid_argument("rmat: a+b+c > 1");
  const Vid n = Vid{1} << p.scale;
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(p.edges));
  for (Eid i = 0; i < p.edges; ++i) {
    Vid u = 0, v = 0;
    for (int bit = 0; bit < p.scale; ++bit) {
      const double r = rng.uniform();
      u <<= 1;
      v <<= 1;
      if (r < p.a) {
        // top-left quadrant: no bits set
      } else if (r < p.a + p.b) {
        v |= 1;
      } else if (r < p.a + p.b + p.c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    edges.push_back({u, v});
  }
  return CsrGraph::from_edges(n, edges);
}

CsrGraph watts_strogatz(Vid n, Vid k, double beta, util::Xoshiro256& rng) {
  if (n < 2 * k + 2 || k == 0) {
    throw std::invalid_argument("watts_strogatz: need n > 2k + 1, k > 0");
  }
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * k);
  for (Vid u = 0; u < n; ++u) {
    for (Vid j = 1; j <= k; ++j) {
      Vid v = (u + j) % n;
      if (rng.uniform() < beta) {
        // Rewire to a uniform random non-self target.
        v = rng.below(n - 1);
        if (v >= u) ++v;
      }
      edges.push_back({u, v});
    }
  }
  return CsrGraph::from_edges(n, edges);
}

SbmResult stochastic_block_model(const std::vector<Vid>& blocks, double p_in,
                                 double p_out, util::Xoshiro256& rng) {
  if (blocks.empty()) throw std::invalid_argument("sbm: no blocks");
  if (p_in < 0 || p_in > 1 || p_out < 0 || p_out > 1) {
    throw std::invalid_argument("sbm: probabilities must be in [0,1]");
  }
  const std::size_t k = blocks.size();
  std::vector<Vid> start(k + 1, 0);
  for (std::size_t i = 0; i < k; ++i) start[i + 1] = start[i] + blocks[i];
  const Vid n = start[k];

  std::vector<Edge> edges;
  for (std::size_t bi = 0; bi < k; ++bi) {
    for (std::size_t bj = bi; bj < k; ++bj) {
      const double p = bi == bj ? p_in : p_out;
      if (p <= 0.0) continue;
      const double pairs =
          bi == bj ? 0.5 * static_cast<double>(blocks[bi]) * (blocks[bi] - 1)
                   : static_cast<double>(blocks[bi]) * blocks[bj];
      // Expected-count ball dropping: draw ~Binomial(pairs, p) edges with
      // uniformly random endpoints inside the block pair. A Poisson draw
      // approximates the binomial for the sparse regimes used here; for
      // small means we round the expectation stochastically.
      const double lambda = pairs * p;
      std::int64_t count;
      if (lambda < 32.0) {
        // Knuth Poisson sampling.
        const double limit = std::exp(-lambda);
        double prod = rng.uniform();
        count = 0;
        while (prod > limit) {
          prod *= rng.uniform();
          ++count;
        }
      } else {
        // Normal approximation, clamped at 0.
        const double draw = lambda + std::sqrt(lambda) * rng.normal();
        count = std::max<std::int64_t>(0, std::llround(draw));
      }
      for (std::int64_t e = 0; e < count; ++e) {
        const Vid u = start[bi] + rng.below(blocks[bi]);
        const Vid v = start[bj] + rng.below(blocks[bj]);
        edges.push_back({u, v});
      }
    }
  }

  SbmResult out;
  out.graph = CsrGraph::from_edges(n, edges);
  out.block_of.resize(n);
  for (std::size_t i = 0; i < k; ++i) {
    for (Vid v = start[i]; v < start[i + 1]; ++v) {
      out.block_of[v] = static_cast<std::uint32_t>(i);
    }
  }
  return out;
}

}  // namespace gsgcn::graph

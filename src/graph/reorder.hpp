#pragma once
// Vertex relabeling for memory locality.
//
// Feature propagation reads source-vertex rows in neighbor order; placing
// high-degree vertices (the ones most frequently read) at low ids packs
// the hot rows into a small, cache-resident region. This is the classic
// degree-ordering optimization from the PageRank/propagation-blocking
// literature the paper builds on ([7], [9]).

#include <vector>

#include "graph/csr.hpp"

namespace gsgcn::graph {

/// A relabeled copy of a graph with both direction maps.
struct Reordering {
  CsrGraph graph;                 // isomorphic to the input
  std::vector<Vid> new_to_old;    // new id → original id
  std::vector<Vid> old_to_new;    // original id → new id
};

/// Vertex ids by descending degree (ties by original id, so
/// deterministic). This is both the relabeling order below and the
/// hot-vertex priority the feature store uses for cache residency: the
/// highest-degree vertices are the rows a sampled gather touches most.
std::vector<Vid> degree_order(const CsrGraph& g);

/// Vertex ids in BFS order from `root` (RCM-lite); unreached components
/// appended in id order. Same dual use as degree_order.
std::vector<Vid> bfs_order(const CsrGraph& g, Vid root = 0);

/// Relabel by descending degree (ties by original id, so deterministic).
Reordering reorder_by_degree(const CsrGraph& g);

/// Relabel by BFS order from the given root (RCM-lite): neighbors get
/// nearby ids, shrinking the propagation working set for mesh-like
/// graphs. Unreached components are appended in id order.
Reordering reorder_by_bfs(const CsrGraph& g, Vid root = 0);

/// Apply a relabeling to per-vertex data rows: out[new_id] = in[old_id].
template <typename T>
std::vector<T> apply_reordering(const std::vector<T>& per_vertex,
                                const std::vector<Vid>& new_to_old) {
  std::vector<T> out;
  out.reserve(per_vertex.size());
  for (const Vid old_id : new_to_old) out.push_back(per_vertex[old_id]);
  return out;
}

}  // namespace gsgcn::graph

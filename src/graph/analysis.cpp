#include "graph/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

namespace gsgcn::graph {

std::vector<Vid> connected_components(const CsrGraph& g) {
  const Vid n = g.num_vertices();
  constexpr Vid kUnseen = 0xFFFFFFFFu;
  std::vector<Vid> comp(n, kUnseen);
  std::vector<Vid> stack;
  Vid next_id = 0;
  for (Vid root = 0; root < n; ++root) {
    if (comp[root] != kUnseen) continue;
    comp[root] = next_id;
    stack.push_back(root);
    while (!stack.empty()) {
      const Vid u = stack.back();
      stack.pop_back();
      for (const Vid v : g.neighbors(u)) {
        if (comp[v] == kUnseen) {
          comp[v] = next_id;
          stack.push_back(v);
        }
      }
    }
    ++next_id;
  }
  return comp;
}

Vid num_components(const CsrGraph& g) {
  const auto comp = connected_components(g);
  Vid best = 0;
  for (const Vid c : comp) best = std::max(best, c + 1);
  return g.num_vertices() == 0 ? 0 : best;
}

Vid largest_component_size(const CsrGraph& g) {
  const auto comp = connected_components(g);
  if (comp.empty()) return 0;
  std::vector<Vid> sizes;
  for (const Vid c : comp) {
    if (c >= sizes.size()) sizes.resize(c + 1, 0);
    ++sizes[c];
  }
  return *std::max_element(sizes.begin(), sizes.end());
}

namespace {

/// Counts triangles and wedges. Triangle counting via sorted-adjacency
/// intersection of the two lower-id endpoints of each edge.
void count_triangles_wedges(const CsrGraph& g, double& triangles,
                            double& wedges) {
  triangles = 0.0;
  wedges = 0.0;
  const Vid n = g.num_vertices();
  for (Vid u = 0; u < n; ++u) {
    const double d = static_cast<double>(g.degree(u));
    wedges += d * (d - 1.0) / 2.0;
    const auto nu = g.neighbors(u);
    for (const Vid v : nu) {
      if (v <= u) continue;  // each edge once
      const auto nv = g.neighbors(v);
      // Count common neighbors w > v to get each triangle exactly once.
      std::size_t i = 0, j = 0;
      while (i < nu.size() && j < nv.size()) {
        if (nu[i] < nv[j]) {
          ++i;
        } else if (nu[i] > nv[j]) {
          ++j;
        } else {
          if (nu[i] > v) triangles += 1.0;
          ++i;
          ++j;
        }
      }
    }
  }
}

}  // namespace

double global_clustering_coefficient(const CsrGraph& g) {
  double triangles = 0.0, wedges = 0.0;
  count_triangles_wedges(g, triangles, wedges);
  return wedges == 0.0 ? 0.0 : 3.0 * triangles / wedges;
}

double average_local_clustering(const CsrGraph& g) {
  const Vid n = g.num_vertices();
  double total = 0.0;
  Vid counted = 0;
  for (Vid u = 0; u < n; ++u) {
    const auto nu = g.neighbors(u);
    if (nu.size() < 2) continue;
    // Count edges among neighbors.
    double links = 0.0;
    for (std::size_t a = 0; a < nu.size(); ++a) {
      const auto na = g.neighbors(nu[a]);
      for (std::size_t b = a + 1; b < nu.size(); ++b) {
        if (std::binary_search(na.begin(), na.end(), nu[b])) links += 1.0;
      }
    }
    const double d = static_cast<double>(nu.size());
    total += 2.0 * links / (d * (d - 1.0));
    ++counted;
  }
  return counted == 0 ? 0.0 : total / counted;
}

std::vector<double> degree_histogram_log2(const CsrGraph& g) {
  std::vector<double> hist;
  const Vid n = g.num_vertices();
  if (n == 0) return hist;
  for (Vid v = 0; v < n; ++v) {
    const auto d = static_cast<std::uint64_t>(g.degree(v));
    std::size_t bucket = 0;
    for (std::uint64_t x = d; x > 1; x >>= 1) ++bucket;
    if (bucket >= hist.size()) hist.resize(bucket + 1, 0.0);
    hist[bucket] += 1.0;
  }
  for (double& h : hist) h /= static_cast<double>(n);
  return hist;
}

double degree_distribution_distance(const CsrGraph& a, const CsrGraph& b) {
  auto ha = degree_histogram_log2(a);
  auto hb = degree_histogram_log2(b);
  const std::size_t buckets = std::max(ha.size(), hb.size());
  ha.resize(buckets, 0.0);
  hb.resize(buckets, 0.0);
  double tv = 0.0;
  for (std::size_t i = 0; i < buckets; ++i) tv += std::abs(ha[i] - hb[i]);
  return 0.5 * tv;
}

double degree_assortativity(const CsrGraph& g) {
  // Pearson correlation of (deg(u), deg(v)) over directed edges.
  double sx = 0.0, sy = 0.0, sxx = 0.0, syy = 0.0, sxy = 0.0;
  double count = 0.0;
  for (Vid u = 0; u < g.num_vertices(); ++u) {
    const double du = static_cast<double>(g.degree(u));
    for (const Vid v : g.neighbors(u)) {
      const double dv = static_cast<double>(g.degree(v));
      sx += du;
      sy += dv;
      sxx += du * du;
      syy += dv * dv;
      sxy += du * dv;
      count += 1.0;
    }
  }
  if (count == 0.0) return 0.0;
  const double cov = sxy / count - (sx / count) * (sy / count);
  const double vx = sxx / count - (sx / count) * (sx / count);
  const double vy = syy / count - (sy / count) * (sy / count);
  const double denom = std::sqrt(vx * vy);
  return denom < 1e-12 ? 0.0 : cov / denom;
}

double estimated_average_distance(const CsrGraph& g, int samples,
                                  util::Xoshiro256& rng) {
  const Vid n = g.num_vertices();
  if (n < 2 || samples <= 0) return 0.0;
  constexpr Vid kUnseen = 0xFFFFFFFFu;
  std::vector<Vid> dist(n);
  double total = 0.0;
  double pairs = 0.0;
  std::vector<Vid> frontier, next;
  for (int s = 0; s < samples; ++s) {
    const Vid root = rng.below(n);
    std::fill(dist.begin(), dist.end(), kUnseen);
    dist[root] = 0;
    frontier.assign(1, root);
    Vid level = 0;
    while (!frontier.empty()) {
      ++level;
      next.clear();
      for (const Vid u : frontier) {
        for (const Vid v : g.neighbors(u)) {
          if (dist[v] == kUnseen) {
            dist[v] = level;
            next.push_back(v);
            total += level;
            pairs += 1.0;
          }
        }
      }
      frontier.swap(next);
    }
  }
  return pairs == 0.0 ? 0.0 : total / pairs;
}

}  // namespace gsgcn::graph

#pragma once
// Induced subgraph extraction (line 8 of the paper's Algorithm 2:
// "Gsub ← Subgraph of G induced by Vsub").
//
// Runs once per minibatch, so it must be cheap: the Inducer keeps an
// epoch-stamped original→local id map that is reused across calls without
// O(|V|) clearing, and the fill pass parallelizes over subgraph vertices.

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace gsgcn::graph {

/// A sampled subgraph: local CSR plus the mapping back to original ids.
/// orig_ids[local] = original vertex id. Local ids are dense [0, n_sub).
struct Subgraph {
  CsrGraph graph;
  std::vector<Vid> orig_ids;

  Vid num_vertices() const { return graph.num_vertices(); }
};

/// Reusable induced-subgraph extractor over a fixed original graph.
/// Thread-safe only across *distinct* Inducer instances (each sampler
/// thread owns one); a single induce() call parallelizes internally when
/// invoked with threads > 1.
class Inducer {
 public:
  explicit Inducer(const CsrGraph& graph);

  /// Induce the subgraph on `vertices` (original ids; duplicates ignored).
  /// Vertex order in the result follows first occurrence in `vertices`.
  Subgraph induce(const std::vector<Vid>& vertices, int threads = 1);

 private:
  const CsrGraph& g_;
  std::vector<std::uint32_t> stamp_;  // epoch when orig id was last mapped
  std::vector<Vid> local_of_;         // valid iff stamp matches epoch
  std::uint32_t epoch_ = 0;
};

}  // namespace gsgcn::graph

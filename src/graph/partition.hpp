#pragma once
// Vertex partitioners for the Theorem-2 ablation.
//
// The paper's propagation scheme deliberately does NOT partition the graph
// (P = 1); these partitioners exist so the ablation bench can measure what
// 2-D (graph × feature) partitioning would cost: γ_P = |V_src^(i)| / |V|
// depends on the partitioner, and the comm model consumes it.

#include <vector>

#include "graph/csr.hpp"

namespace gsgcn::graph {

/// part_of[v] in [0, P); parts are the inverse lists.
struct Partition {
  std::vector<std::uint32_t> part_of;
  std::vector<std::vector<Vid>> parts;

  std::uint32_t num_parts() const {
    return static_cast<std::uint32_t>(parts.size());
  }
};

/// Contiguous ranges of vertex ids (good locality when ids are clustered,
/// e.g. the SBM generator emits blocks contiguously).
Partition partition_range(Vid n, std::uint32_t num_parts);

/// Multiplicative-hash scatter (worst-case locality baseline).
Partition partition_hash(Vid n, std::uint32_t num_parts);

/// γ_P of the paper's model for partition i: the fraction of all vertices
/// that send features into part i, i.e. |{u : (u,v) ∈ E, v ∈ V_i} ∪ V_i|/|V|
/// (self connections included, as in the paper).
double gamma_of_part(const CsrGraph& g, const Partition& p, std::uint32_t i);

/// Mean γ_P over parts — the value plugged into g_comm(P, Q).
double gamma_mean(const CsrGraph& g, const Partition& p);

}  // namespace gsgcn::graph

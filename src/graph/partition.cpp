#include "graph/partition.hpp"

#include <stdexcept>

#include "util/parallel.hpp"

namespace gsgcn::graph {

Partition partition_range(Vid n, std::uint32_t num_parts) {
  if (num_parts == 0) throw std::invalid_argument("partition: num_parts == 0");
  Partition p;
  p.part_of.resize(n);
  p.parts.resize(num_parts);
  for (std::uint32_t i = 0; i < num_parts; ++i) {
    const auto r = util::split_range(n, static_cast<int>(num_parts),
                                     static_cast<int>(i));
    p.parts[i].reserve(static_cast<std::size_t>(r.end - r.begin));
    for (auto v = r.begin; v < r.end; ++v) {
      p.part_of[static_cast<std::size_t>(v)] = i;
      p.parts[i].push_back(static_cast<Vid>(v));
    }
  }
  return p;
}

Partition partition_hash(Vid n, std::uint32_t num_parts) {
  if (num_parts == 0) throw std::invalid_argument("partition: num_parts == 0");
  Partition p;
  p.part_of.resize(n);
  p.parts.resize(num_parts);
  for (Vid v = 0; v < n; ++v) {
    const std::uint64_t h = (static_cast<std::uint64_t>(v) * 0x9e3779b97f4a7c15ULL) >> 32;
    const std::uint32_t i = static_cast<std::uint32_t>(h % num_parts);
    p.part_of[v] = i;
    p.parts[i].push_back(v);
  }
  return p;
}

double gamma_of_part(const CsrGraph& g, const Partition& p, std::uint32_t i) {
  const Vid n = g.num_vertices();
  if (n == 0) return 0.0;
  std::vector<bool> is_src(n, false);
  std::size_t count = 0;
  for (const Vid v : p.parts[i]) {
    if (!is_src[v]) {  // self connection
      is_src[v] = true;
      ++count;
    }
    for (const Vid u : g.neighbors(v)) {
      if (!is_src[u]) {
        is_src[u] = true;
        ++count;
      }
    }
  }
  return static_cast<double>(count) / static_cast<double>(n);
}

double gamma_mean(const CsrGraph& g, const Partition& p) {
  double s = 0.0;
  for (std::uint32_t i = 0; i < p.num_parts(); ++i) {
    s += gamma_of_part(g, p, i);
  }
  return p.num_parts() == 0 ? 0.0 : s / p.num_parts();
}

}  // namespace gsgcn::graph

#include "graph/io.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/fault.hpp"

namespace gsgcn::graph {

namespace {
constexpr std::uint64_t kMagic = 0x6773676e63737231ULL;  // "gsgncsr1"
}  // namespace

CsrGraph load_edgelist_text(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::vector<Edge> edges;
  Vid max_id = 0;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    std::uint64_t u, v;
    if (!(ls >> u >> v)) {
      throw std::runtime_error(path + ":" + std::to_string(lineno) +
                               ": expected 'src dst'");
    }
    if (u > 0xFFFFFFFEULL || v > 0xFFFFFFFEULL) {
      throw std::runtime_error(path + ":" + std::to_string(lineno) +
                               ": vertex id exceeds uint32 range");
    }
    edges.push_back({static_cast<Vid>(u), static_cast<Vid>(v)});
    max_id = std::max({max_id, static_cast<Vid>(u), static_cast<Vid>(v)});
  }
  const Vid n = edges.empty() ? 0 : max_id + 1;
  return CsrGraph::from_edges(n, edges);
}

void save_edgelist_text(const CsrGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for write");
  out << "# gsgcn edge list: " << g.num_vertices() << " vertices, "
      << g.num_edges() / 2 << " undirected edges\n";
  for (Vid u = 0; u < g.num_vertices(); ++u) {
    for (const Vid v : g.neighbors(u)) {
      if (u < v) out << u << ' ' << v << '\n';
    }
  }
  if (!out) throw std::runtime_error("write failed: " + path);
}

void save_csr_binary(const CsrGraph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path + " for write");
  const std::uint64_t n = g.num_vertices();
  const std::uint64_t m = static_cast<std::uint64_t>(g.num_edges());
  out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));
  out.write(reinterpret_cast<const char*>(g.offsets().data()),
            static_cast<std::streamsize>(g.offsets().size() * sizeof(Eid)));
  out.write(reinterpret_cast<const char*>(g.adjacency().data()),
            static_cast<std::streamsize>(g.adjacency().size() * sizeof(Vid)));
  if (!out) throw std::runtime_error("write failed: " + path);
}

CsrGraph load_csr_binary(const std::string& path) {
  util::fault_point("io.load_csr");
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::uint64_t magic = 0, n = 0, m = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&m), sizeof(m));
  if (!in || magic != kMagic) throw std::runtime_error("bad csr binary: " + path);
  // Header sanity before any allocation: ids are uint32 (n + 1 must fit),
  // and the declared sizes must agree exactly with the bytes on disk — a
  // flipped size field must fail here, not as a giant allocation or a
  // silent short read.
  if (n > 0xFFFFFFFEULL) {
    throw std::runtime_error(path + ": vertex count " + std::to_string(n) +
                             " exceeds uint32 range");
  }
  in.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(in.tellg());
  const std::uint64_t expect =
      3 * sizeof(std::uint64_t) + (n + 1) * sizeof(Eid) + m * sizeof(Vid);
  if (file_size != expect) {
    throw std::runtime_error(
        path + ": file is " + std::to_string(file_size) + " bytes, header (n=" +
        std::to_string(n) + ", m=" + std::to_string(m) + ") requires " +
        std::to_string(expect));
  }
  in.seekg(3 * sizeof(std::uint64_t), std::ios::beg);
  std::vector<Eid> offsets(n + 1);
  std::vector<Vid> adj(m);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets.size() * sizeof(Eid)));
  in.read(reinterpret_cast<char*>(adj.data()),
          static_cast<std::streamsize>(adj.size() * sizeof(Vid)));
  if (!in) throw std::runtime_error("truncated csr binary: " + path);
  // Structural invariants, with the offending element named: a corrupt
  // graph must never reach the samplers, where an out-of-range neighbor
  // id is a heap overread.
  if (offsets[0] != 0) {
    throw std::runtime_error(path + ": offsets[0] = " +
                             std::to_string(offsets[0]) + ", expected 0");
  }
  for (std::uint64_t v = 0; v < n; ++v) {
    if (offsets[v + 1] < offsets[v]) {
      throw std::runtime_error(
          path + ": non-monotonic offsets at vertex " + std::to_string(v) +
          ": offsets[" + std::to_string(v + 1) + "] = " +
          std::to_string(offsets[v + 1]) + " < " + std::to_string(offsets[v]));
    }
  }
  if (static_cast<std::uint64_t>(offsets[n]) != m) {
    throw std::runtime_error(path + ": offsets[" + std::to_string(n) + "] = " +
                             std::to_string(offsets[n]) +
                             " disagrees with edge count " + std::to_string(m));
  }
  for (std::uint64_t e = 0; e < m; ++e) {
    if (adj[e] >= n) {
      throw std::runtime_error(path + ": adjacency[" + std::to_string(e) +
                               "] = " + std::to_string(adj[e]) +
                               " out of range (n = " + std::to_string(n) + ")");
    }
  }
  return CsrGraph::from_csr(std::move(offsets), std::move(adj));
}

}  // namespace gsgcn::graph

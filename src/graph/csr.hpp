#pragma once
// Immutable CSR (compressed sparse row) graph.
//
// This is the substrate every other subsystem builds on: the frontier
// sampler reads degrees and neighbor lists, the inducer builds per-batch
// subgraph CSRs, and feature propagation streams CSR rows (the paper's
// Section V performance model assumes exactly this streaming access).
//
// Vertex ids are uint32 (the paper's graphs top out at 1.6M vertices);
// edge offsets are int64 so edge counts past 2^31 are representable.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace gsgcn::graph {

using Vid = std::uint32_t;   // vertex id
using Eid = std::int64_t;    // edge offset / count

struct Edge {
  Vid src;
  Vid dst;
};

/// Immutable undirected graph in CSR form. Neighbor lists are sorted and
/// deduplicated; self-loops are dropped at construction (the GCN adds its
/// own self-connection explicitly, per GraphSAGE's design which the paper
/// follows).
class CsrGraph {
 public:
  CsrGraph() = default;

  /// Build from an edge list. Edges are treated as undirected: each {u,v}
  /// contributes to both adjacency rows. Duplicate edges and self-loops
  /// are removed. Vertex ids must be < num_vertices.
  static CsrGraph from_edges(Vid num_vertices, std::span<const Edge> edges);

  /// Convenience overload so call sites can pass a braced edge list.
  static CsrGraph from_edges(Vid num_vertices,
                             std::initializer_list<Edge> edges) {
    return from_edges(num_vertices,
                      std::span<const Edge>(edges.begin(), edges.size()));
  }

  /// Build directly from pre-validated CSR arrays (used by the subgraph
  /// inducer which constructs rows in place). offsets.size() must equal
  /// num_vertices + 1 and adjacency rows must be sorted.
  static CsrGraph from_csr(std::vector<Eid> offsets, std::vector<Vid> adj);

  Vid num_vertices() const { return static_cast<Vid>(offsets_.empty() ? 0 : offsets_.size() - 1); }
  Eid num_edges() const { return adj_.empty() ? 0 : static_cast<Eid>(adj_.size()); }  // directed count (2x undirected)

  Eid degree(Vid v) const {
    GSGCN_CHECK_BOUNDS(v, num_vertices());
    return offsets_[v + 1] - offsets_[v];
  }

  std::span<const Vid> neighbors(Vid v) const {
    GSGCN_CHECK_BOUNDS(v, num_vertices());
    return {adj_.data() + offsets_[v],
            static_cast<std::size_t>(degree(v))};
  }

  const std::vector<Eid>& offsets() const { return offsets_; }
  const std::vector<Vid>& adjacency() const { return adj_; }

  double average_degree() const {
    const Vid n = num_vertices();
    return n == 0 ? 0.0 : static_cast<double>(num_edges()) / n;
  }

  Eid max_degree() const;

  /// Structural invariants: monotone offsets, sorted+deduped rows,
  /// neighbor ids in range, no self loops. Returns an empty string when
  /// valid, else a description of the first violation (used by tests and
  /// by the generators' own self-checks).
  std::string validate() const;

 private:
  std::vector<Eid> offsets_;  // size n+1
  std::vector<Vid> adj_;      // size num_edges (directed)
};

/// Degree distribution summary, printed by the Table-I bench.
struct DegreeStats {
  Eid min_degree = 0;
  Eid max_degree = 0;
  double mean_degree = 0.0;
  double median_degree = 0.0;
  Vid isolated_vertices = 0;  // degree-0 count
};
DegreeStats degree_stats(const CsrGraph& g);

}  // namespace gsgcn::graph

#pragma once
// Graph connectivity / similarity measures.
//
// Section III-C of the paper argues the frontier sampler is the right
// choice because (citing Ribeiro & Towsley) its subgraphs "approximate the
// original graph with respect to multiple connectivity measures". These
// are those measures, used by the sampler-quality bench and tests:
// component structure, clustering coefficient, degree-distribution
// distance, and assortativity.

#include <vector>

#include "graph/csr.hpp"
#include "util/rng.hpp"

namespace gsgcn::graph {

/// Connected components via BFS. Returns component id per vertex
/// (ids are dense, ordered by first-seen vertex).
std::vector<Vid> connected_components(const CsrGraph& g);

/// Number of connected components (0 for the empty graph).
Vid num_components(const CsrGraph& g);

/// Size of the largest connected component.
Vid largest_component_size(const CsrGraph& g);

/// Global clustering coefficient: 3·triangles / open wedges, exact.
/// O(Σ deg²) — fine at sampled-subgraph scale.
double global_clustering_coefficient(const CsrGraph& g);

/// Average local clustering coefficient over vertices with degree ≥ 2.
double average_local_clustering(const CsrGraph& g);

/// Normalized degree histogram: bucket `i` holds the fraction of vertices
/// with degree in [2^i, 2^{i+1}) (bucket 0 holds degree 0 and 1).
std::vector<double> degree_histogram_log2(const CsrGraph& g);

/// Total-variation distance between two graphs' log2 degree histograms
/// (in [0, 1]; 0 = identical shape). The sampler-quality metric.
double degree_distribution_distance(const CsrGraph& a, const CsrGraph& b);

/// Pearson degree assortativity over edges (in [-1, 1]; NaN-free: returns
/// 0 for degenerate graphs).
double degree_assortativity(const CsrGraph& g);

/// Harmonic-mean estimate of characteristic path length from `samples`
/// BFS sources (∞ distances between components are skipped). Returns 0
/// for graphs with < 2 vertices.
double estimated_average_distance(const CsrGraph& g, int samples,
                                  util::Xoshiro256& rng);

}  // namespace gsgcn::graph

#pragma once
// Synthetic graph generators.
//
// The paper evaluates on PPI / Reddit / Yelp / Amazon, which are not
// redistributable here; these generators produce graphs with the
// *properties the experiments depend on*: community structure for the
// accuracy experiments (SBM), heavy-tailed degree skew for the sampler's
// degree-cap path (Barabási–Albert, R-MAT), and tunable size/density for
// the scaling sweeps (all of them).

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "util/rng.hpp"

namespace gsgcn::graph {

/// Erdős–Rényi G(n, m): m undirected edges drawn uniformly (duplicates and
/// self loops removed by CSR construction, so the realized edge count can
/// be slightly below m).
CsrGraph erdos_renyi(Vid n, Eid m, util::Xoshiro256& rng);

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `edges_per_vertex` existing vertices chosen ∝ degree. Produces the
/// power-law skew that triggers the paper's degree-cap mitigation.
CsrGraph barabasi_albert(Vid n, Vid edges_per_vertex, util::Xoshiro256& rng);

/// R-MAT (recursive matrix) generator with quadrant probabilities
/// (a, b, c, d), a+b+c+d = 1. scale = log2(#vertices). Skewed, scale-free
/// like the Amazon co-purchase graph.
struct RmatParams {
  int scale = 14;         // n = 2^scale
  Eid edges = 1 << 18;    // undirected edge draws
  double a = 0.57, b = 0.19, c = 0.19;  // d = 1 - a - b - c
};
CsrGraph rmat(const RmatParams& params, util::Xoshiro256& rng);

/// Watts–Strogatz small world: ring lattice with k neighbors per side,
/// each edge rewired with probability beta.
CsrGraph watts_strogatz(Vid n, Vid k, double beta, util::Xoshiro256& rng);

/// Stochastic block model: `blocks[i]` vertices in community i; an edge
/// between u, v exists with probability p_in (same block) or p_out
/// (different blocks). Sampled by expected-count "ball dropping" per block
/// pair so the cost is O(edges), not O(n^2). Returns the graph and the
/// block assignment of each vertex (the data layer turns these into
/// labels).
struct SbmResult {
  CsrGraph graph;
  std::vector<std::uint32_t> block_of;  // size n
};
SbmResult stochastic_block_model(const std::vector<Vid>& blocks, double p_in,
                                 double p_out, util::Xoshiro256& rng);

}  // namespace gsgcn::graph

#pragma once
// Edge-list persistence: plain text ("u v" per line, '#' comments, the
// SNAP convention the paper's datasets ship in) and a compact binary form
// for the bench harness to cache generated graphs across runs.

#include <string>

#include "graph/csr.hpp"

namespace gsgcn::graph {

/// Parse a SNAP-style text edge list. Lines starting with '#' or '%' are
/// comments; each data line is "src dst" with arbitrary whitespace.
/// num_vertices is 1 + max id seen. Throws std::runtime_error on parse
/// failure or unopenable file.
CsrGraph load_edgelist_text(const std::string& path);

/// Write "src dst" per undirected edge (each edge once, src < dst).
void save_edgelist_text(const CsrGraph& g, const std::string& path);

/// Binary CSR round trip (little-endian host format, magic-checked).
/// load_csr_binary fully validates the structure before returning: the
/// file size must match the header's (n, m) exactly, offsets must start at
/// 0, be monotonic, and end at m, and every adjacency id must be < n.
/// Violations throw std::runtime_error naming the offending element.
/// Fault site: "io.load_csr".
void save_csr_binary(const CsrGraph& g, const std::string& path);
CsrGraph load_csr_binary(const std::string& path);

}  // namespace gsgcn::graph

#include "graph/csr.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/stats.hpp"

namespace gsgcn::graph {

CsrGraph CsrGraph::from_edges(Vid num_vertices, std::span<const Edge> edges) {
  // Pass 1: count per-vertex degree (both directions), skipping self loops.
  std::vector<Eid> counts(static_cast<std::size_t>(num_vertices) + 1, 0);
  for (const Edge& e : edges) {
    if (e.src >= num_vertices || e.dst >= num_vertices) {
      throw std::out_of_range("edge endpoint out of range");
    }
    if (e.src == e.dst) continue;
    ++counts[e.src + 1];
    ++counts[e.dst + 1];
  }
  for (Vid v = 0; v < num_vertices; ++v) counts[v + 1] += counts[v];

  // Pass 2: scatter.
  std::vector<Vid> adj(static_cast<std::size_t>(counts[num_vertices]));
  std::vector<Eid> cursor(counts.begin(), counts.end() - 1);
  for (const Edge& e : edges) {
    if (e.src == e.dst) continue;
    adj[static_cast<std::size_t>(cursor[e.src]++)] = e.dst;
    adj[static_cast<std::size_t>(cursor[e.dst]++)] = e.src;
  }

  // Pass 3: sort rows and dedup in place, then compact.
  std::vector<Eid> offsets(static_cast<std::size_t>(num_vertices) + 1, 0);
  std::size_t write = 0;
  for (Vid v = 0; v < num_vertices; ++v) {
    auto* begin = adj.data() + counts[v];
    auto* end = adj.data() + counts[v + 1];
    std::sort(begin, end);
    auto* last = std::unique(begin, end);
    offsets[v] = static_cast<Eid>(write);
    for (auto* p = begin; p != last; ++p) adj[write++] = *p;
  }
  offsets[num_vertices] = static_cast<Eid>(write);
  adj.resize(write);
  adj.shrink_to_fit();

  CsrGraph g;
  g.offsets_ = std::move(offsets);
  g.adj_ = std::move(adj);
#if GSGCN_CHECKS_ENABLED
  {
    const std::string err = g.validate();
    GSGCN_ASSERT(err.empty(), err.c_str());
  }
#endif
  return g;
}

CsrGraph CsrGraph::from_csr(std::vector<Eid> offsets, std::vector<Vid> adj) {
  if (offsets.empty() || offsets.front() != 0 ||
      offsets.back() != static_cast<Eid>(adj.size())) {
    throw std::invalid_argument("from_csr: malformed offsets");
  }
  // No full validate() here: from_csr is the documented escape hatch for
  // hand-built structures, and tests use it to feed deliberately invalid
  // CSRs to validate(). Callers that need the O(n+m) structure check run
  // validate() themselves.
  CsrGraph g;
  g.offsets_ = std::move(offsets);
  g.adj_ = std::move(adj);
  return g;
}

Eid CsrGraph::max_degree() const {
  Eid best = 0;
  for (Vid v = 0; v < num_vertices(); ++v) best = std::max(best, degree(v));
  return best;
}

std::string CsrGraph::validate() const {
  if (offsets_.empty()) return adj_.empty() ? "" : "adjacency without offsets";
  if (offsets_.front() != 0) return "offsets[0] != 0";
  if (offsets_.back() != static_cast<Eid>(adj_.size())) {
    return "offsets back mismatch with adjacency size";
  }
  const Vid n = num_vertices();
  for (Vid v = 0; v < n; ++v) {
    if (offsets_[v + 1] < offsets_[v]) {
      return "non-monotone offsets at vertex " + std::to_string(v);
    }
    auto row = neighbors(v);
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (row[i] >= n) return "neighbor id out of range at vertex " + std::to_string(v);
      if (row[i] == v) return "self loop at vertex " + std::to_string(v);
      if (i > 0 && row[i] <= row[i - 1]) {
        return "row not sorted/deduped at vertex " + std::to_string(v);
      }
    }
  }
  return "";
}

DegreeStats degree_stats(const CsrGraph& g) {
  DegreeStats s;
  const Vid n = g.num_vertices();
  if (n == 0) return s;
  std::vector<double> degs(n);
  s.min_degree = g.degree(0);
  for (Vid v = 0; v < n; ++v) {
    const Eid d = g.degree(v);
    degs[v] = static_cast<double>(d);
    s.min_degree = std::min(s.min_degree, d);
    s.max_degree = std::max(s.max_degree, d);
    if (d == 0) ++s.isolated_vertices;
  }
  s.mean_degree = util::mean(degs);
  s.median_degree = util::median(std::move(degs));
  return s;
}

}  // namespace gsgcn::graph

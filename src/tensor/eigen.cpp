#include "tensor/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace gsgcn::tensor {

EigenResult jacobi_eigen_symmetric(const Matrix& input, int max_sweeps,
                                   float tolerance) {
  const std::size_t n = input.rows();
  if (n != input.cols()) {
    throw std::invalid_argument("jacobi: matrix must be square");
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (std::abs(input(i, j) - input(j, i)) > 1e-3f) {
        throw std::invalid_argument("jacobi: matrix is not symmetric");
      }
    }
  }

  Matrix a = input;  // working copy, driven to diagonal form
  Matrix v(n, n);    // accumulated rotations
  for (std::size_t i = 0; i < n; ++i) v(i, i) = 1.0f;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    // Off-diagonal Frobenius mass — the convergence criterion.
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        off += 2.0 * static_cast<double>(a(i, j)) * a(i, j);
      }
    }
    if (std::sqrt(off) <= tolerance) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const float apq = a(p, q);
        if (std::abs(apq) < tolerance * 1e-2f) continue;
        const float app = a(p, p), aqq = a(q, q);
        // Stable rotation angle (Golub & Van Loan 8.4).
        const float theta = (aqq - app) / (2.0f * apq);
        const float t = std::copysign(1.0f, theta) /
                        (std::abs(theta) + std::sqrt(1.0f + theta * theta));
        const float c = 1.0f / std::sqrt(1.0f + t * t);
        const float s = t * c;
        // A ← JᵀAJ applied to rows/cols p and q.
        for (std::size_t k = 0; k < n; ++k) {
          const float akp = a(k, p), akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const float apk = a(p, k), aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        // V ← VJ.
        for (std::size_t k = 0; k < n; ++k) {
          const float vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return a(x, x) > a(y, y);
  });
  EigenResult result;
  result.values.resize(n);
  result.vectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    result.values[j] = a(order[j], order[j]);
    for (std::size_t i = 0; i < n; ++i) {
      result.vectors(i, j) = v(i, order[j]);
    }
  }
  return result;
}

Matrix covariance(const Matrix& x) {
  const std::size_t n = x.rows(), f = x.cols();
  if (n == 0) throw std::invalid_argument("covariance: empty matrix");
  Matrix c(f, f);
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = x.row(i);
    for (std::size_t a = 0; a < f; ++a) {
      const float ra = row[a];
      if (ra == 0.0f) continue;
      float* crow = c.row(a);
      for (std::size_t b = 0; b < f; ++b) crow[b] += ra * row[b];
    }
  }
  const float inv = 1.0f / static_cast<float>(n);
  for (std::size_t i = 0; i < c.size(); ++i) c.data()[i] *= inv;
  return c;
}

}  // namespace gsgcn::tensor

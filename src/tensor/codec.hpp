#pragma once
// Compressed feature codecs: fp16 / bf16 / int8 ⇄ fp32 row kernels.
//
// The feature store (src/data/feature_store.*) keeps vertex features in a
// narrow on-disk/in-RAM encoding and widens rows to fp32 *inside* the
// gather pass — the decompressed matrix never exists. These kernels are
// the per-row building blocks:
//
//   fp16  IEEE 754 binary16. Widening is exact; narrowing rounds to
//         nearest-even, matching F16C `vcvtps2ph` with MXCSR defaults.
//         The vector path uses F16C (`vcvtph2ps`) behind a runtime
//         `__builtin_cpu_supports("f16c")` check; the scalar fallback is
//         bit-identical, so results never depend on the dispatch.
//   bf16  Top 16 bits of a float, round-to-nearest-even on narrowing.
//         Widening is a 16-bit shift — exact on every path.
//   int8  Affine per-column quantization q = round(x/scale) + zp with
//         dequant out = fma(float(q), scale, bias), bias = -zp*scale.
//         Both the AVX2 path (vfmadd) and the scalar path (std::fma)
//         round once, so they agree bit-for-bit.
//
// Determinism contract: for a fixed encoded payload, every widen_* kernel
// produces identical bytes regardless of ISA path, thread count, or call
// slicing. The *_scalar variants are exposed so tests can assert the
// SIMD paths match on hardware that has them.

#include <cstddef>
#include <cstdint>

namespace gsgcn::tensor::codec {

/// True when the CPU (and build) support F16C half↔float conversion.
/// Cheap after the first call; safe to call from any thread.
bool f16c_available();

// --- scalar element conversions (exact / RNE; reference semantics) ------
float f16_to_f32(std::uint16_t h);
std::uint16_t f32_to_f16(float x);
float bf16_to_f32(std::uint16_t b);
std::uint16_t f32_to_bf16(float x);

// --- row widen kernels (decode: narrow payload → fp32 out) --------------
void widen_f16_row(const std::uint16_t* in, float* out, std::size_t n);
void widen_bf16_row(const std::uint16_t* in, float* out, std::size_t n);
/// out[j] = fma(float(in[j]), scale[j], bias[j]); scale/bias are
/// per-column arrays of length n (the caller passes the column slice that
/// matches this row's columns).
void widen_i8_row(const std::int8_t* in, const float* scale,
                  const float* bias, float* out, std::size_t n);

// --- batched gather-decode kernels --------------------------------------
// Decode payload rows idx[0..nrows) into consecutive fp32 output rows:
//   out + i*cols  =  widen(payload + idx[i]*stride)   (stride in bytes)
// One call per gather chunk keeps the codec switch, the dequant-parameter
// loads, and the software prefetch (rows idx[i+k] are pulled toward the
// core while row idx[i] decodes — gathered rows land at uncorrelated
// addresses, so without the hint every row stalls on a fresh DRAM miss)
// out of the per-row path. Elementwise conversions only — results are
// bit-identical to calling the matching widen_*_row per row.
void gather_f32_rows(const std::uint8_t* payload, std::size_t stride,
                     const std::uint32_t* idx, std::size_t nrows,
                     std::size_t cols, float* out);
void gather_f16_rows(const std::uint8_t* payload, std::size_t stride,
                     const std::uint32_t* idx, std::size_t nrows,
                     std::size_t cols, float* out);
void gather_bf16_rows(const std::uint8_t* payload, std::size_t stride,
                      const std::uint32_t* idx, std::size_t nrows,
                      std::size_t cols, float* out);
void gather_i8_rows(const std::uint8_t* payload, std::size_t stride,
                    const std::uint32_t* idx, std::size_t nrows,
                    const float* scale, const float* bias, std::size_t cols,
                    float* out);

// --- row narrow kernels (encode: fp32 → payload) ------------------------
void narrow_f16_row(const float* in, std::uint16_t* out, std::size_t n);
void narrow_bf16_row(const float* in, std::uint16_t* out, std::size_t n);
/// out[j] = clamp(round(in[j] / scale[j]) + zp[j], -128, 127). zp is
/// carried as float (always an integral value) so dequant can fuse it
/// into a single fma bias.
void quantize_i8_row(const float* in, const float* scale, const float* zp,
                     std::int8_t* out, std::size_t n);

// --- scalar reference paths ---------------------------------------------
// Same contracts as above, forced onto the scalar implementation. Tests
// compare these against the dispatched kernels to prove bit-identity.
void widen_f16_row_scalar(const std::uint16_t* in, float* out, std::size_t n);
void widen_bf16_row_scalar(const std::uint16_t* in, float* out, std::size_t n);
void widen_i8_row_scalar(const std::int8_t* in, const float* scale,
                         const float* bias, float* out, std::size_t n);
void narrow_f16_row_scalar(const float* in, std::uint16_t* out, std::size_t n);

}  // namespace gsgcn::tensor::codec

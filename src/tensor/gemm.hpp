#pragma once
// Dense matrix multiplication — the "weight application" kernel.
//
// The paper offloads this to MKL cblas_dgemm; here it is implemented
// directly: OpenMP parallel over row blocks, AVX2+FMA inner kernels, and
// K-blocking so the streamed operand stays in L2. Three orientations cover
// everything the GCN's forward/backward needs:
//
//   NN:  C = A·B        (forward weight application, H · W)
//   TN:  C = Aᵀ·B       (weight gradients, Hᵀ · dOut)
//   NT:  C = A·Bᵀ       (input gradients, dOut · Wᵀ)
//
// All kernels compute C = alpha·op(A)op(B) + beta·C. `threads` ≤ 0 means
// "use the current OpenMP max" (so callers can sweep thread counts for the
// Figure-3C bench without global state).

#include "tensor/matrix.hpp"

namespace gsgcn::tensor {

void gemm_nn(const Matrix& a, const Matrix& b, Matrix& c, float alpha = 1.0f,
             float beta = 0.0f, int threads = 0);

void gemm_tn(const Matrix& a, const Matrix& b, Matrix& c, float alpha = 1.0f,
             float beta = 0.0f, int threads = 0);

void gemm_nt(const Matrix& a, const Matrix& b, Matrix& c, float alpha = 1.0f,
             float beta = 0.0f, int threads = 0);

/// Triple-loop reference implementations (no SIMD, no threading) used by
/// the tests to validate the optimized kernels bit-for-bit-ish (tolerance
/// covers FMA contraction differences).
namespace reference {
void gemm_nn(const Matrix& a, const Matrix& b, Matrix& c, float alpha = 1.0f,
             float beta = 0.0f);
void gemm_tn(const Matrix& a, const Matrix& b, Matrix& c, float alpha = 1.0f,
             float beta = 0.0f);
void gemm_nt(const Matrix& a, const Matrix& b, Matrix& c, float alpha = 1.0f,
             float beta = 0.0f);
}  // namespace reference

}  // namespace gsgcn::tensor

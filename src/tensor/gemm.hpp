#pragma once
// Dense matrix multiplication — the "weight application" kernel.
//
// The paper offloads this to MKL cblas_dgemm; here it is implemented
// directly as a cache-blocked, packed GEMM in the BLIS mold: a register
// micro-kernel computes an Mr×Nr tile of C entirely in FMA accumulators,
// operands are repacked into contiguous micro-panels (per-thread reusable
// workspaces) so the inner loop streams packed memory only, and Mc/Kc/Nc
// blocking keeps the A block and the active B panel cache-resident. Three
// orientations cover everything the GCN's forward/backward needs:
//
//   NN:  C = A·B        (forward weight application, H · W)
//   TN:  C = Aᵀ·B       (weight gradients, Hᵀ · dOut)
//   NT:  C = A·Bᵀ       (input gradients, dOut · Wᵀ)
//
// All kernels compute C = alpha·op(A)op(B) + beta·C, optionally fusing a
// ReLU into the final store (Epilogue::kRelu) so the GCN layer never
// re-streams its activations just to clamp them. Operands are strided
// views: the layer points the self/neigh GEMMs at the two halves of its
// concat buffer, which deletes the concat/split copies entirely.
// `threads` ≤ 0 means "use the current OpenMP max" (so callers can sweep
// thread counts for the Figure-3C bench without global state).

#include "tensor/matrix.hpp"

namespace gsgcn::tensor {

/// Operation fused into the GEMM's C-store. kRelu applies
/// max(0, alpha·op(A)op(B) + beta·C) on the final K-block's store — the
/// activations never make a second trip through memory.
enum class Epilogue { kNone, kRelu };

void gemm_nn(ConstMatrixView a, ConstMatrixView b, MatrixView c,
             float alpha = 1.0f, float beta = 0.0f, int threads = 0,
             Epilogue epilogue = Epilogue::kNone);

void gemm_tn(ConstMatrixView a, ConstMatrixView b, MatrixView c,
             float alpha = 1.0f, float beta = 0.0f, int threads = 0,
             Epilogue epilogue = Epilogue::kNone);

void gemm_nt(ConstMatrixView a, ConstMatrixView b, MatrixView c,
             float alpha = 1.0f, float beta = 0.0f, int threads = 0,
             Epilogue epilogue = Epilogue::kNone);

/// The pre-packing rank-1-update/dot kernels the packed GEMM replaced.
/// Kept as the baseline side of the bench_kernels packed-vs-legacy
/// comparison (and as an independent implementation for property tests);
/// not used on any hot path.
namespace legacy {
void gemm_nn(const Matrix& a, const Matrix& b, Matrix& c, float alpha = 1.0f,
             float beta = 0.0f, int threads = 0);
void gemm_tn(const Matrix& a, const Matrix& b, Matrix& c, float alpha = 1.0f,
             float beta = 0.0f, int threads = 0);
void gemm_nt(const Matrix& a, const Matrix& b, Matrix& c, float alpha = 1.0f,
             float beta = 0.0f, int threads = 0);
}  // namespace legacy

/// Triple-loop reference implementations (no SIMD, no threading) used by
/// the tests to validate the optimized kernels bit-for-bit-ish (tolerance
/// covers FMA contraction differences).
namespace reference {
void gemm_nn(const Matrix& a, const Matrix& b, Matrix& c, float alpha = 1.0f,
             float beta = 0.0f);
void gemm_tn(const Matrix& a, const Matrix& b, Matrix& c, float alpha = 1.0f,
             float beta = 0.0f);
void gemm_nt(const Matrix& a, const Matrix& b, Matrix& c, float alpha = 1.0f,
             float beta = 0.0f);
}  // namespace reference

}  // namespace gsgcn::tensor

#pragma once
// Symmetric eigendecomposition (cyclic Jacobi).
//
// The dataset pipeline mirrors the paper's feature provenance: Amazon's
// attributes are SVD-compressed bag-of-words and Yelp's are Word2Vec
// embeddings (Table I). PCA compression of raw features needs the top
// eigenpairs of the f×f covariance — small enough (f ≤ ~1000) that the
// always-convergent cyclic Jacobi method is the right tool.

#include <vector>

#include "tensor/matrix.hpp"

namespace gsgcn::tensor {

struct EigenResult {
  std::vector<float> values;  // descending
  Matrix vectors;             // column j ↔ values[j]; orthonormal
};

/// Full eigendecomposition of a symmetric matrix (upper triangle is
/// trusted; asymmetry beyond tolerance throws). O(f³) per sweep, a few
/// sweeps to machine precision.
EigenResult jacobi_eigen_symmetric(const Matrix& a, int max_sweeps = 32,
                                   float tolerance = 1e-7f);

/// X → covariance XᵀX / n (f×f, symmetric), the PCA input. Columns of X
/// are assumed pre-centered (see data::standardize_columns).
Matrix covariance(const Matrix& x);

}  // namespace gsgcn::tensor

#include "tensor/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace gsgcn::tensor {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols) {
  set_zero();
}

Matrix::Matrix(const Matrix& other)
    : rows_(other.rows_), cols_(other.cols_), data_(other.size()) {
  std::memcpy(data_.data(), other.data_.data(), size() * sizeof(float));
}

Matrix& Matrix::operator=(const Matrix& other) {
  if (this != &other) {
    rows_ = other.rows_;
    cols_ = other.cols_;
    data_.reset(other.size());
    std::memcpy(data_.data(), other.data_.data(), size() * sizeof(float));
  }
  return *this;
}

Matrix Matrix::glorot(std::size_t rows, std::size_t cols,
                      util::Xoshiro256& rng) {
  Matrix m(rows, cols);
  const float s = std::sqrt(6.0f / static_cast<float>(rows + cols));
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = (2.0f * rng.uniformf() - 1.0f) * s;
  }
  return m;
}

Matrix Matrix::gaussian(std::size_t rows, std::size_t cols, float stddev,
                        util::Xoshiro256& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.normal()) * stddev;
  }
  return m;
}

void Matrix::fill(float v) {
  std::fill(data_.begin(), data_.end(), v);
}

float Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return std::numeric_limits<float>::infinity();
  }
  float best = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    best = std::max(best, std::abs(a.data()[i] - b.data()[i]));
  }
  return best;
}

float Matrix::frobenius_norm() const {
  double s = 0.0;
  for (std::size_t i = 0; i < size(); ++i) {
    s += static_cast<double>(data_[i]) * data_[i];
  }
  return static_cast<float>(std::sqrt(s));
}

void write_matrix(std::ostream& out, const Matrix& m) {
  const std::uint64_t rows = m.rows(), cols = m.cols();
  out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  out.write(reinterpret_cast<const char*>(m.data()),
            static_cast<std::streamsize>(m.size() * sizeof(float)));
}

Matrix read_matrix(std::istream& in) {
  std::uint64_t rows = 0, cols = 0;
  in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
  in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
  if (!in) throw std::runtime_error("read_matrix: truncated header");
  Matrix m(rows, cols);
  in.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(m.size() * sizeof(float)));
  if (!in) throw std::runtime_error("read_matrix: truncated payload");
  return m;
}

std::string Matrix::shape_str() const {
  // Built by appending rather than a `"literal" + ...` chain: GCC 12's
  // -Wrestrict misfires on the inlined operator+ at -O3.
  std::string s = "[";
  s += std::to_string(rows_);
  s += " x ";
  s += std::to_string(cols_);
  s += "]";
  return s;
}

namespace {
std::string view_shape_str(std::size_t rows, std::size_t cols,
                           std::size_t ld) {
  std::string s = "[";
  s += std::to_string(rows);
  s += " x ";
  s += std::to_string(cols);
  s += " ld=";
  s += std::to_string(ld);
  s += "]";
  return s;
}
}  // namespace

std::string MatrixView::shape_str() const {
  return view_shape_str(rows_, cols_, ld_);
}

std::string ConstMatrixView::shape_str() const {
  return view_shape_str(rows_, cols_, ld_);
}

}  // namespace gsgcn::tensor

#include "tensor/codec.hpp"

#include <cmath>
#include <cstring>

#if defined(GSGCN_AVX2)
#include <immintrin.h>
#endif

namespace gsgcn::tensor::codec {

bool f16c_available() {
#if defined(GSGCN_F16C)
  static const bool ok = __builtin_cpu_supports("f16c");
  return ok;
#else
  return false;
#endif
}

namespace {

inline std::uint32_t f32_bits(float x) {
  std::uint32_t u;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

inline float bits_f32(std::uint32_t u) {
  float x;
  std::memcpy(&x, &u, sizeof(x));
  return x;
}

}  // namespace

// ---------------------------------------------------------------------------
// Scalar element conversions.
// ---------------------------------------------------------------------------

float f16_to_f32(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1Fu;
  const std::uint32_t man = h & 0x03FFu;
  if (exp == 31u) {  // inf / NaN
    // NaN payloads carry over shifted, and the quiet bit is forced on:
    // F16C's vcvtph2ps silences signaling NaNs, and the scalar path must
    // produce the same bits (caught by the exhaustive codec test).
    const std::uint32_t quiet = man != 0u ? 0x00400000u : 0u;
    return bits_f32(sign | 0x7F800000u | quiet | (man << 13));
  }
  if (exp != 0u) {  // normal: rebias 15 → 127
    return bits_f32(sign | ((exp + 112u) << 23) | (man << 13));
  }
  if (man == 0u) {  // ±0
    return bits_f32(sign);
  }
  // Subnormal half: renormalize the mantissa into an f32 normal. Every
  // half subnormal is exactly representable in f32, so this is lossless.
  std::uint32_t m = man << 13;
  std::uint32_t e = 113u;  // exponent of the smallest normal half, biased
  while ((m & 0x00800000u) == 0u) {
    m <<= 1;
    --e;
  }
  return bits_f32(sign | (e << 23) | (m & 0x007FFFFFu));
}

std::uint16_t f32_to_f16(float x) {
  const std::uint32_t u = f32_bits(x);
  const std::uint32_t sign = (u >> 16) & 0x8000u;
  std::uint32_t abs = u & 0x7FFFFFFFu;
  if (abs >= 0x7F800000u) {  // inf / NaN (quiet the NaN, keep payload bits)
    const std::uint32_t nan =
        abs > 0x7F800000u ? (0x0200u | ((abs >> 13) & 0x03FFu)) : 0u;
    return static_cast<std::uint16_t>(sign | 0x7C00u | nan);
  }
  if (abs >= 0x38800000u) {  // maps to a normal half (before rounding)
    // Round-to-nearest-even on the 13 bits being dropped; a mantissa
    // carry propagates into the exponent by ordinary integer overflow.
    abs += 0x00000FFFu + ((abs >> 13) & 1u);
    const std::int32_t e = static_cast<std::int32_t>(abs >> 23) - 112;
    if (e >= 31) return static_cast<std::uint16_t>(sign | 0x7C00u);  // → inf
    return static_cast<std::uint16_t>(sign | (static_cast<std::uint32_t>(e)
                                              << 10) |
                                      ((abs >> 13) & 0x03FFu));
  }
  if (abs <= 0x33000000u) {  // ≤ 2^-25: underflows to ±0 (tie-to-even at =)
    return static_cast<std::uint16_t>(sign);
  }
  // Subnormal half: shift the 24-bit significand down to the 2^-24 grid
  // with round-to-nearest-even. A round-up out of the top is exactly the
  // smallest normal half and the carry lands in the exponent field.
  const std::uint32_t sig = (abs & 0x007FFFFFu) | 0x00800000u;
  const std::uint32_t shift = 126u - (abs >> 23);  // in [14, 24]
  const std::uint32_t half = 1u << (shift - 1);
  const std::uint32_t rem = sig & ((1u << shift) - 1u);
  std::uint32_t q = sig >> shift;
  if (rem > half || (rem == half && (q & 1u) != 0u)) ++q;
  return static_cast<std::uint16_t>(sign | q);
}

float bf16_to_f32(std::uint16_t b) {
  return bits_f32(static_cast<std::uint32_t>(b) << 16);
}

std::uint16_t f32_to_bf16(float x) {
  const std::uint32_t u = f32_bits(x);
  if ((u & 0x7FFFFFFFu) > 0x7F800000u) {  // NaN: keep it a NaN after truncation
    return static_cast<std::uint16_t>((u >> 16) | 0x0040u);
  }
  // Round-to-nearest-even into the top 16 bits; carry may bump the
  // exponent (overflow to inf is the correct RNE result there).
  const std::uint32_t rounded = u + 0x7FFFu + ((u >> 16) & 1u);
  return static_cast<std::uint16_t>(rounded >> 16);
}

// ---------------------------------------------------------------------------
// Row kernels. Each has one scalar body; the dispatched entry points add
// the SIMD fast path where the ISA allows and fall through to the scalar
// body for the tail and on older hardware.
// ---------------------------------------------------------------------------

void widen_f16_row_scalar(const std::uint16_t* in, float* out,
                          std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) out[j] = f16_to_f32(in[j]);
}

void widen_f16_row(const std::uint16_t* in, float* out, std::size_t n) {
#if defined(GSGCN_F16C)
  if (f16c_available()) {
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m128i h =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + j));
      _mm256_storeu_ps(out + j, _mm256_cvtph_ps(h));
    }
    widen_f16_row_scalar(in + j, out + j, n - j);
    return;
  }
#endif
  widen_f16_row_scalar(in, out, n);
}

void widen_bf16_row_scalar(const std::uint16_t* in, float* out,
                           std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) out[j] = bf16_to_f32(in[j]);
}

void widen_bf16_row(const std::uint16_t* in, float* out, std::size_t n) {
#if defined(GSGCN_AVX2)
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + j));
    const __m256i w = _mm256_slli_epi32(_mm256_cvtepu16_epi32(h), 16);
    _mm256_storeu_ps(out + j, _mm256_castsi256_ps(w));
  }
  widen_bf16_row_scalar(in + j, out + j, n - j);
#else
  widen_bf16_row_scalar(in, out, n);
#endif
}

void widen_i8_row_scalar(const std::int8_t* in, const float* scale,
                         const float* bias, float* out, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    // std::fma rounds once, exactly like the AVX2 vfmadd lane below.
    out[j] = std::fma(static_cast<float>(in[j]), scale[j], bias[j]);
  }
}

void widen_i8_row(const std::int8_t* in, const float* scale,
                  const float* bias, float* out, std::size_t n) {
#if defined(GSGCN_AVX2)
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m128i q8 =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(in + j));
    const __m256 q = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(q8));
    const __m256 s = _mm256_loadu_ps(scale + j);
    const __m256 b = _mm256_loadu_ps(bias + j);
    _mm256_storeu_ps(out + j, _mm256_fmadd_ps(q, s, b));
  }
  widen_i8_row_scalar(in + j, scale + j, bias + j, out + j, n - j);
#else
  widen_i8_row_scalar(in, scale, bias, out, n);
#endif
}

// ---------------------------------------------------------------------------
// Batched gather-decode kernels. The prefetch lookahead is a pure hint —
// any distance (or none) produces the same bytes; kPrefetchRows trades
// DRAM-latency overlap against cache pressure from rows not yet needed.
// ---------------------------------------------------------------------------

namespace {

// Lookahead targets a constant number of cache lines in flight rather
// than a constant number of rows: the core only sustains ~10-16
// outstanding line fills, so a narrow int8 row (1 line) wants a deeper
// row lookahead than a wide fp32 row (4 lines) to fill the same window.
constexpr std::size_t kPrefetchLines = 64;

inline std::size_t prefetch_distance(std::size_t stride) {
  const std::size_t lines = (stride + 63) / 64;
  const std::size_t rows = kPrefetchLines / (lines == 0 ? 1 : lines);
  return rows < 8 ? 8 : rows > 32 ? 32 : rows;
}

inline void prefetch_row(const std::uint8_t* payload, std::size_t stride,
                         const std::uint32_t* idx, std::size_t nrows,
                         std::size_t i, std::size_t dist) {
  const std::size_t pf = i + dist;
  if (pf >= nrows) return;
  const std::uint8_t* src = payload + static_cast<std::size_t>(idx[pf]) * stride;
  for (std::size_t b = 0; b < stride; b += 64) {
    __builtin_prefetch(src + b, 0, 3);
  }
}

}  // namespace

void gather_f32_rows(const std::uint8_t* payload, std::size_t stride,
                     const std::uint32_t* idx, std::size_t nrows,
                     std::size_t cols, float* out) {
  const std::size_t dist = prefetch_distance(stride);
  for (std::size_t i = 0; i < nrows; ++i) {
    prefetch_row(payload, stride, idx, nrows, i, dist);
    const auto* src = reinterpret_cast<const float*>(
        payload + static_cast<std::size_t>(idx[i]) * stride);
    float* dst = out + i * cols;
#if defined(GSGCN_AVX2)
    // Inline wide copy: libc memcpy's size dispatch costs real time at
    // a few hundred bytes per row.
    std::size_t j = 0;
    for (; j + 8 <= cols; j += 8) {
      _mm256_storeu_ps(dst + j, _mm256_loadu_ps(src + j));
    }
    for (; j < cols; ++j) dst[j] = src[j];
#else
    std::memcpy(dst, src, cols * sizeof(float));
#endif
  }
}

void gather_f16_rows(const std::uint8_t* payload, std::size_t stride,
                     const std::uint32_t* idx, std::size_t nrows,
                     std::size_t cols, float* out) {
  const std::size_t dist = prefetch_distance(stride);
#if defined(GSGCN_F16C)
  // Hoist the f16c dispatch check and the per-row call out of the loop
  // for the common 64-wide rows; vcvtph2ps lane-for-lane matches the
  // widen_f16_row vector body, so the bits are identical.
  if (cols == 64 && f16c_available()) {
    for (std::size_t i = 0; i < nrows; ++i) {
      prefetch_row(payload, stride, idx, nrows, i, dist);
      const auto* src = reinterpret_cast<const std::uint16_t*>(
          payload + static_cast<std::size_t>(idx[i]) * stride);
      float* dst = out + i * 64;
      for (int k = 0; k < 8; ++k) {
        const __m128i h =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + 8 * k));
        _mm256_storeu_ps(dst + 8 * k, _mm256_cvtph_ps(h));
      }
    }
    return;
  }
#endif
  for (std::size_t i = 0; i < nrows; ++i) {
    prefetch_row(payload, stride, idx, nrows, i, dist);
    widen_f16_row(reinterpret_cast<const std::uint16_t*>(
                      payload + static_cast<std::size_t>(idx[i]) * stride),
                  out + i * cols, cols);
  }
}

void gather_bf16_rows(const std::uint8_t* payload, std::size_t stride,
                      const std::uint32_t* idx, std::size_t nrows,
                      std::size_t cols, float* out) {
  const std::size_t dist = prefetch_distance(stride);
#if defined(GSGCN_AVX2)
  if (cols == 64) {  // same shift-widen as widen_bf16_row, call hoisted
    for (std::size_t i = 0; i < nrows; ++i) {
      prefetch_row(payload, stride, idx, nrows, i, dist);
      const auto* src = reinterpret_cast<const std::uint16_t*>(
          payload + static_cast<std::size_t>(idx[i]) * stride);
      float* dst = out + i * 64;
      for (int k = 0; k < 8; ++k) {
        const __m128i h =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + 8 * k));
        const __m256i w = _mm256_slli_epi32(_mm256_cvtepu16_epi32(h), 16);
        _mm256_storeu_ps(dst + 8 * k, _mm256_castsi256_ps(w));
      }
    }
    return;
  }
#endif
  for (std::size_t i = 0; i < nrows; ++i) {
    prefetch_row(payload, stride, idx, nrows, i, dist);
    widen_bf16_row(reinterpret_cast<const std::uint16_t*>(
                       payload + static_cast<std::size_t>(idx[i]) * stride),
                   out + i * cols, cols);
  }
}

void gather_i8_rows(const std::uint8_t* payload, std::size_t stride,
                    const std::uint32_t* idx, std::size_t nrows,
                    const float* scale, const float* bias, std::size_t cols,
                    float* out) {
  const std::size_t dist = prefetch_distance(stride);
#if defined(GSGCN_AVX2)
  if (cols == 64) {
    // Register-hoisted fast path for the common 64-wide feature rows:
    // the eight scale and eight bias vectors live in YMM registers for
    // the whole batch instead of being reloaded per row. Same fma per
    // element as the generic path, so the bits are identical.
    __m256 s[8], b[8];
    for (int k = 0; k < 8; ++k) {
      s[k] = _mm256_loadu_ps(scale + 8 * k);
      b[k] = _mm256_loadu_ps(bias + 8 * k);
    }
    for (std::size_t i = 0; i < nrows; ++i) {
      prefetch_row(payload, stride, idx, nrows, i, dist);
      const auto* src = reinterpret_cast<const std::int8_t*>(
          payload + static_cast<std::size_t>(idx[i]) * stride);
      float* dst = out + i * 64;
      for (int k = 0; k < 8; ++k) {
        const __m128i q8 =
            _mm_loadl_epi64(reinterpret_cast<const __m128i*>(src + 8 * k));
        const __m256 q = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(q8));
        _mm256_storeu_ps(dst + 8 * k, _mm256_fmadd_ps(q, s[k], b[k]));
      }
    }
    return;
  }
#endif
  for (std::size_t i = 0; i < nrows; ++i) {
    prefetch_row(payload, stride, idx, nrows, i, dist);
    widen_i8_row(reinterpret_cast<const std::int8_t*>(
                     payload + static_cast<std::size_t>(idx[i]) * stride),
                 scale, bias, out + i * cols, cols);
  }
}

void narrow_f16_row_scalar(const float* in, std::uint16_t* out,
                           std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) out[j] = f32_to_f16(in[j]);
}

void narrow_f16_row(const float* in, std::uint16_t* out, std::size_t n) {
#if defined(GSGCN_F16C)
  if (f16c_available()) {
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m128i h = _mm256_cvtps_ph(_mm256_loadu_ps(in + j),
                                        _MM_FROUND_TO_NEAREST_INT |
                                            _MM_FROUND_NO_EXC);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + j), h);
    }
    narrow_f16_row_scalar(in + j, out + j, n - j);
    return;
  }
#endif
  narrow_f16_row_scalar(in, out, n);
}

void narrow_bf16_row(const float* in, std::uint16_t* out, std::size_t n) {
  // Encode runs once per dataset build — the scalar RNE body is plenty.
  for (std::size_t j = 0; j < n; ++j) out[j] = f32_to_bf16(in[j]);
}

void quantize_i8_row(const float* in, const float* scale, const float* zp,
                     std::int8_t* out, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    // lrintf honors the default FP environment (round-to-nearest-even),
    // so quantization is deterministic across hosts/threading.
    long q = std::lrintf(in[j] / scale[j]) + static_cast<long>(zp[j]);
    if (q < -128) q = -128;
    if (q > 127) q = 127;
    out[j] = static_cast<std::int8_t>(q);
  }
}

}  // namespace gsgcn::tensor::codec

#include "tensor/ops.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace gsgcn::tensor {

namespace {

void check_same_shape(const Matrix& a, const Matrix& b, const char* what) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument(std::string(what) + ": shape mismatch " +
                                a.shape_str() + " vs " + b.shape_str());
  }
}
}  // namespace

void relu_forward(const Matrix& x, Matrix& y, int threads) {
  check_same_shape(x, y, "relu_forward");
  const std::size_t n = x.size();
  const float* xp = x.data();
  float* yp = y.data();
  util::parallel_for_ranges(static_cast<std::int64_t>(n), threads,
                            [xp, yp](std::int64_t b, std::int64_t e) {
                              for (std::int64_t i = b; i < e; ++i) {
                                yp[i] = xp[i] > 0.0f ? xp[i] : 0.0f;
                              }
                            });
}

void relu_backward(const Matrix& x, const Matrix& dy, Matrix& dx,
                   int threads) {
  check_same_shape(x, dy, "relu_backward");
  check_same_shape(x, dx, "relu_backward");
  const std::size_t n = x.size();
  const float* xp = x.data();
  const float* dyp = dy.data();
  float* dxp = dx.data();
  util::parallel_for_ranges(static_cast<std::int64_t>(n), threads,
                            [xp, dyp, dxp](std::int64_t b, std::int64_t e) {
                              for (std::int64_t i = b; i < e; ++i) {
                                dxp[i] = xp[i] > 0.0f ? dyp[i] : 0.0f;
                              }
                            });
}

void concat_cols(const Matrix& a, const Matrix& b, Matrix& out, int threads) {
  if (a.rows() != b.rows() || out.rows() != a.rows() ||
      out.cols() != a.cols() + b.cols()) {
    throw std::invalid_argument("concat_cols: shape mismatch");
  }
  const std::size_t rows = a.rows();
  util::parallel_for(static_cast<std::int64_t>(rows), threads,
                     [&a, &b, &out](std::int64_t i) {
                       const auto r = static_cast<std::size_t>(i);
                       std::memcpy(out.row(r), a.row(r),
                                   a.cols() * sizeof(float));
                       std::memcpy(out.row(r) + a.cols(), b.row(r),
                                   b.cols() * sizeof(float));
                     });
}

void split_cols(const Matrix& src, Matrix& a, Matrix& b, int threads) {
  if (a.rows() != src.rows() || b.rows() != src.rows() ||
      src.cols() != a.cols() + b.cols()) {
    throw std::invalid_argument("split_cols: shape mismatch");
  }
  const std::size_t rows = src.rows();
  util::parallel_for(static_cast<std::int64_t>(rows), threads,
                     [&src, &a, &b](std::int64_t i) {
                       const auto r = static_cast<std::size_t>(i);
                       std::memcpy(a.row(r), src.row(r),
                                   a.cols() * sizeof(float));
                       std::memcpy(b.row(r), src.row(r) + a.cols(),
                                   b.cols() * sizeof(float));
                     });
}

void add_scaled(Matrix& x, const Matrix& y, float alpha, int threads) {
  check_same_shape(x, y, "add_scaled");
  const std::size_t n = x.size();
  float* xp = x.data();
  const float* yp = y.data();
  util::parallel_for_ranges(static_cast<std::int64_t>(n), threads,
                            [xp, yp, alpha](std::int64_t b, std::int64_t e) {
                              for (std::int64_t i = b; i < e; ++i) {
                                xp[i] += alpha * yp[i];
                              }
                            });
}

void scale_inplace(Matrix& x, float alpha, int threads) {
  const std::size_t n = x.size();
  float* xp = x.data();
  util::parallel_for_ranges(static_cast<std::int64_t>(n), threads,
                            [xp, alpha](std::int64_t b, std::int64_t e) {
                              for (std::int64_t i = b; i < e; ++i) {
                                xp[i] *= alpha;
                              }
                            });
}

void gather_rows(const Matrix& src, std::span<const std::uint32_t> indices,
                 Matrix& out, int threads) {
  if (out.rows() != indices.size() || out.cols() != src.cols()) {
    throw std::invalid_argument("gather_rows: shape mismatch");
  }
  const std::size_t n = indices.size();
  // Validate before entering the parallel region — a throw cannot cross
  // that boundary, and the serial pre-scan costs one cached pass over the
  // index list next to n full row copies.
  for (std::size_t r = 0; r < n; ++r) {
    if (indices[r] >= src.rows()) {
      throw std::out_of_range(
          "gather_rows: index " + std::to_string(indices[r]) +
          " at position " + std::to_string(r) + " out of range (src has " +
          std::to_string(src.rows()) + " rows)");
    }
  }
  util::parallel_for(static_cast<std::int64_t>(n), threads,
                     [&src, indices, &out](std::int64_t i) {
                       const auto r = static_cast<std::size_t>(i);
                       std::memcpy(out.row(r), src.row(indices[r]),
                                   src.cols() * sizeof(float));
                     });
}

void add_bias_rows(Matrix& x, std::span<const float> bias, int threads) {
  if (bias.size() != x.cols()) {
    throw std::invalid_argument("add_bias_rows: bias length mismatch");
  }
  const std::size_t rows = x.rows(), cols = x.cols();
  util::parallel_for(static_cast<std::int64_t>(rows), threads,
                     [&x, bias, cols](std::int64_t i) {
                       float* r = x.row(static_cast<std::size_t>(i));
                       for (std::size_t j = 0; j < cols; ++j) r[j] += bias[j];
                     });
}

void bias_grad(const Matrix& dy, std::span<float> dbias) {
  if (dbias.size() != dy.cols()) {
    throw std::invalid_argument("bias_grad: length mismatch");
  }
  // Serial on purpose: dbias is a shared accumulator over all rows; the
  // bias is a single row so this is never a bottleneck.
  std::fill(dbias.begin(), dbias.end(), 0.0f);
  for (std::size_t i = 0; i < dy.rows(); ++i) {
    const float* r = dy.row(i);
    for (std::size_t j = 0; j < dy.cols(); ++j) dbias[j] += r[j];
  }
}

void hadamard_inplace(Matrix& x, const Matrix& y, int threads) {
  check_same_shape(x, y, "hadamard_inplace");
  const std::size_t n = x.size();
  float* xp = x.data();
  const float* yp = y.data();
  util::parallel_for_ranges(static_cast<std::int64_t>(n), threads,
                            [xp, yp](std::int64_t b, std::int64_t e) {
                              for (std::int64_t i = b; i < e; ++i) {
                                xp[i] *= yp[i];
                              }
                            });
}

void dropout_forward(const Matrix& x, Matrix& mask, Matrix& out, float rate,
                     std::uint64_t seed, int threads) {
  check_same_shape(x, mask, "dropout_forward");
  check_same_shape(x, out, "dropout_forward");
  if (rate < 0.0f || rate >= 1.0f) {
    throw std::invalid_argument("dropout_forward: rate must be in [0, 1)");
  }
  const float keep = 1.0f - rate;
  const float scale = 1.0f / keep;
  const std::size_t cols = x.cols();
  util::parallel_for(
      static_cast<std::int64_t>(x.rows()), threads, [&](std::int64_t ii) {
        const auto i = static_cast<std::size_t>(ii);
        // One decorrelated stream per row, derived purely from (seed, i):
        // any thread that processes row i draws the identical mask.
        util::Xoshiro256 rng = util::Xoshiro256::stream(seed, i);
        const float* xr = x.row(i);
        float* mr = mask.row(i);
        float* outr = out.row(i);
        for (std::size_t j = 0; j < cols; ++j) {
          mr[j] = rng.uniformf() < keep ? scale : 0.0f;
          outr[j] = mr[j] * xr[j];
        }
      });
}

void l2_normalize_rows(Matrix& x, int threads) {
  const std::size_t rows = x.rows(), cols = x.cols();
  util::parallel_for(
      static_cast<std::int64_t>(rows), threads, [&x, cols](std::int64_t i) {
        float* r = x.row(static_cast<std::size_t>(i));
        double s = 0.0;
        for (std::size_t j = 0; j < cols; ++j) {
          s += static_cast<double>(r[j]) * r[j];
        }
        if (s > 0.0) {
          const float inv = static_cast<float>(1.0 / std::sqrt(s));
          for (std::size_t j = 0; j < cols; ++j) r[j] *= inv;
        }
      });
}

}  // namespace gsgcn::tensor

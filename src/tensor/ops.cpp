#include "tensor/ops.hpp"

#include <omp.h>

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace gsgcn::tensor {

namespace {
int resolve(int threads) { return threads > 0 ? threads : omp_get_max_threads(); }

void check_same_shape(const Matrix& a, const Matrix& b, const char* what) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument(std::string(what) + ": shape mismatch " +
                                a.shape_str() + " vs " + b.shape_str());
  }
}
}  // namespace

void relu_forward(const Matrix& x, Matrix& y, int threads) {
  check_same_shape(x, y, "relu_forward");
  const std::size_t n = x.size();
  const float* xp = x.data();
  float* yp = y.data();
#pragma omp parallel for num_threads(resolve(threads)) schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    yp[i] = xp[i] > 0.0f ? xp[i] : 0.0f;
  }
}

void relu_backward(const Matrix& x, const Matrix& dy, Matrix& dx,
                   int threads) {
  check_same_shape(x, dy, "relu_backward");
  check_same_shape(x, dx, "relu_backward");
  const std::size_t n = x.size();
  const float* xp = x.data();
  const float* dyp = dy.data();
  float* dxp = dx.data();
#pragma omp parallel for num_threads(resolve(threads)) schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    dxp[i] = xp[i] > 0.0f ? dyp[i] : 0.0f;
  }
}

void concat_cols(const Matrix& a, const Matrix& b, Matrix& out, int threads) {
  if (a.rows() != b.rows() || out.rows() != a.rows() ||
      out.cols() != a.cols() + b.cols()) {
    throw std::invalid_argument("concat_cols: shape mismatch");
  }
  const std::size_t rows = a.rows();
#pragma omp parallel for num_threads(resolve(threads)) schedule(static)
  for (std::size_t i = 0; i < rows; ++i) {
    std::memcpy(out.row(i), a.row(i), a.cols() * sizeof(float));
    std::memcpy(out.row(i) + a.cols(), b.row(i), b.cols() * sizeof(float));
  }
}

void split_cols(const Matrix& src, Matrix& a, Matrix& b, int threads) {
  if (a.rows() != src.rows() || b.rows() != src.rows() ||
      src.cols() != a.cols() + b.cols()) {
    throw std::invalid_argument("split_cols: shape mismatch");
  }
  const std::size_t rows = src.rows();
#pragma omp parallel for num_threads(resolve(threads)) schedule(static)
  for (std::size_t i = 0; i < rows; ++i) {
    std::memcpy(a.row(i), src.row(i), a.cols() * sizeof(float));
    std::memcpy(b.row(i), src.row(i) + a.cols(), b.cols() * sizeof(float));
  }
}

void add_scaled(Matrix& x, const Matrix& y, float alpha, int threads) {
  check_same_shape(x, y, "add_scaled");
  const std::size_t n = x.size();
  float* xp = x.data();
  const float* yp = y.data();
#pragma omp parallel for num_threads(resolve(threads)) schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    xp[i] += alpha * yp[i];
  }
}

void scale_inplace(Matrix& x, float alpha, int threads) {
  const std::size_t n = x.size();
  float* xp = x.data();
#pragma omp parallel for num_threads(resolve(threads)) schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    xp[i] *= alpha;
  }
}

void gather_rows(const Matrix& src, std::span<const std::uint32_t> indices,
                 Matrix& out, int threads) {
  if (out.rows() != indices.size() || out.cols() != src.cols()) {
    throw std::invalid_argument("gather_rows: shape mismatch");
  }
  const std::size_t n = indices.size();
#pragma omp parallel for num_threads(resolve(threads)) schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    if (indices[i] >= src.rows()) {
      // Inside an OMP region we cannot throw across the boundary; abort
      // via a trap — this indicates a programming error upstream.
      std::abort();
    }
    std::memcpy(out.row(i), src.row(indices[i]), src.cols() * sizeof(float));
  }
}

void add_bias_rows(Matrix& x, std::span<const float> bias, int threads) {
  if (bias.size() != x.cols()) {
    throw std::invalid_argument("add_bias_rows: bias length mismatch");
  }
  const std::size_t rows = x.rows(), cols = x.cols();
#pragma omp parallel for num_threads(resolve(threads)) schedule(static)
  for (std::size_t i = 0; i < rows; ++i) {
    float* r = x.row(i);
    for (std::size_t j = 0; j < cols; ++j) r[j] += bias[j];
  }
}

void bias_grad(const Matrix& dy, std::span<float> dbias) {
  if (dbias.size() != dy.cols()) {
    throw std::invalid_argument("bias_grad: length mismatch");
  }
  std::fill(dbias.begin(), dbias.end(), 0.0f);
  for (std::size_t i = 0; i < dy.rows(); ++i) {
    const float* r = dy.row(i);
    for (std::size_t j = 0; j < dy.cols(); ++j) dbias[j] += r[j];
  }
}

void l2_normalize_rows(Matrix& x, int threads) {
  const std::size_t rows = x.rows(), cols = x.cols();
#pragma omp parallel for num_threads(resolve(threads)) schedule(static)
  for (std::size_t i = 0; i < rows; ++i) {
    float* r = x.row(i);
    double s = 0.0;
    for (std::size_t j = 0; j < cols; ++j) s += static_cast<double>(r[j]) * r[j];
    if (s > 0.0) {
      const float inv = static_cast<float>(1.0 / std::sqrt(s));
      for (std::size_t j = 0; j < cols; ++j) r[j] *= inv;
    }
  }
}

}  // namespace gsgcn::tensor

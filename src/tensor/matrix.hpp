#pragma once
// Dense row-major float matrix, 64-byte aligned.
//
// Everything the GCN touches — features H^(ℓ), weights W_self/W_neigh,
// gradients — is one of these. float32 keeps twice the SIMD lanes of the
// paper's DOUBLE features; the propagation comm model keeps the element
// size as a parameter so the Theorem-2 numbers stay faithful.

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <utility>

#include "util/aligned_buffer.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace gsgcn::tensor {

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);

  /// Deep copy (weights are checkpointed in tests and the trainer).
  Matrix(const Matrix&);
  Matrix& operator=(const Matrix&);
  Matrix(Matrix&& other) noexcept
      : rows_(std::exchange(other.rows_, 0)),
        cols_(std::exchange(other.cols_, 0)),
        data_(std::move(other.data_)) {}
  Matrix& operator=(Matrix&& other) noexcept {
    if (this != &other) {
      rows_ = std::exchange(other.rows_, 0);
      cols_ = std::exchange(other.cols_, 0);
      data_ = std::move(other.data_);
    }
    return *this;
  }

  static Matrix zeros(std::size_t rows, std::size_t cols) {
    return Matrix(rows, cols);
  }

  /// Glorot/Xavier uniform init: U(-s, s), s = sqrt(6 / (rows + cols)).
  /// The standard GCN weight init (used by the paper's TF reference too).
  static Matrix glorot(std::size_t rows, std::size_t cols,
                       util::Xoshiro256& rng);

  /// i.i.d. N(0, stddev^2) entries — feature generation and tests.
  static Matrix gaussian(std::size_t rows, std::size_t cols, float stddev,
                         util::Xoshiro256& rng);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float* row(std::size_t i) {
    GSGCN_CHECK_BOUNDS(i, rows_);
    return data_.data() + i * cols_;
  }
  const float* row(std::size_t i) const {
    GSGCN_CHECK_BOUNDS(i, rows_);
    return data_.data() + i * cols_;
  }

  std::span<float> row_span(std::size_t i) { return {row(i), cols_}; }
  std::span<const float> row_span(std::size_t i) const { return {row(i), cols_}; }

  float& operator()(std::size_t i, std::size_t j) {
    GSGCN_CHECK_BOUNDS(j, cols_);
    return row(i)[j];
  }
  float operator()(std::size_t i, std::size_t j) const {
    GSGCN_CHECK_BOUNDS(j, cols_);
    return row(i)[j];
  }

  void fill(float v);
  void set_zero() { fill(0.0f); }

  /// Max |a - b| over entries; shape mismatch returns +inf. Test helper.
  static float max_abs_diff(const Matrix& a, const Matrix& b);

  /// Frobenius norm.
  float frobenius_norm() const;

  std::string shape_str() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  util::AlignedBuffer<float> data_;
};

/// Non-owning strided view of a row-major block: element (i, j) lives at
/// data[i * ld + j] with ld >= cols. A whole Matrix converts implicitly
/// (ld == cols), and cols_slice() carves out a column range of a wider
/// matrix — that is how the GCN layer writes the self/neigh GEMM outputs
/// straight into the two halves of its concat buffer without a copy.
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(float* data, std::size_t rows, std::size_t cols, std::size_t ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    GSGCN_ASSERT(ld >= cols, "view ld must cover cols");
  }
  MatrixView(Matrix& m)  // NOLINT(google-explicit-constructor)
      : MatrixView(m.data(), m.rows(), m.cols(), m.cols()) {}

  /// Columns [col0, col0 + ncols) of m, all rows, stride m.cols().
  static MatrixView cols_slice(Matrix& m, std::size_t col0,
                               std::size_t ncols) {
    GSGCN_ASSERT(col0 + ncols <= m.cols(), "cols_slice out of range");
    return {m.data() + col0, m.rows(), ncols, m.cols()};
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t ld() const { return ld_; }
  float* data() const { return data_; }
  float* row(std::size_t i) const {
    GSGCN_CHECK_BOUNDS(i, rows_);
    return data_ + i * ld_;
  }
  float& operator()(std::size_t i, std::size_t j) const {
    GSGCN_CHECK_BOUNDS(j, cols_);
    return row(i)[j];
  }
  std::string shape_str() const;

 private:
  float* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t ld_ = 0;
};

/// Read-only counterpart of MatrixView (GEMM A/B operands).
class ConstMatrixView {
 public:
  ConstMatrixView() = default;
  ConstMatrixView(const float* data, std::size_t rows, std::size_t cols,
                  std::size_t ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    GSGCN_ASSERT(ld >= cols, "view ld must cover cols");
  }
  ConstMatrixView(const Matrix& m)  // NOLINT(google-explicit-constructor)
      : ConstMatrixView(m.data(), m.rows(), m.cols(), m.cols()) {}
  ConstMatrixView(MatrixView v)  // NOLINT(google-explicit-constructor)
      : ConstMatrixView(v.data(), v.rows(), v.cols(), v.ld()) {}

  static ConstMatrixView cols_slice(const Matrix& m, std::size_t col0,
                                    std::size_t ncols) {
    GSGCN_ASSERT(col0 + ncols <= m.cols(), "cols_slice out of range");
    return {m.data() + col0, m.rows(), ncols, m.cols()};
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t ld() const { return ld_; }
  const float* data() const { return data_; }
  const float* row(std::size_t i) const {
    GSGCN_CHECK_BOUNDS(i, rows_);
    return data_ + i * ld_;
  }
  float operator()(std::size_t i, std::size_t j) const {
    GSGCN_CHECK_BOUNDS(j, cols_);
    return row(i)[j];
  }
  std::string shape_str() const;

 private:
  const float* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t ld_ = 0;
};

/// Binary (de)serialization: rows, cols (u64 each) then row-major float
/// payload. Streams must be opened in binary mode; read_matrix throws
/// std::runtime_error on truncation.
void write_matrix(std::ostream& out, const Matrix& m);
Matrix read_matrix(std::istream& in);

}  // namespace gsgcn::tensor

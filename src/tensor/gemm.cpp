#include "tensor/gemm.hpp"

#include <cassert>
#include <stdexcept>

#include "obs/trace.hpp"
#include "util/parallel.hpp"

#ifdef GSGCN_AVX2
#include <immintrin.h>
#endif

namespace gsgcn::tensor {

namespace {

constexpr std::size_t kBlockK = 256;  // K-tile: keeps ~kBlockK B-rows warm

void check_nn(const Matrix& a, const Matrix& b, const Matrix& c) {
  if (a.cols() != b.rows() || c.rows() != a.rows() || c.cols() != b.cols()) {
    throw std::invalid_argument("gemm_nn: shape mismatch " + a.shape_str() +
                                " * " + b.shape_str() + " -> " + c.shape_str());
  }
}

void check_tn(const Matrix& a, const Matrix& b, const Matrix& c) {
  if (a.rows() != b.rows() || c.rows() != a.cols() || c.cols() != b.cols()) {
    throw std::invalid_argument("gemm_tn: shape mismatch " + a.shape_str() +
                                "^T * " + b.shape_str() + " -> " + c.shape_str());
  }
}

void check_nt(const Matrix& a, const Matrix& b, const Matrix& c) {
  if (a.cols() != b.cols() || c.rows() != a.rows() || c.cols() != b.rows()) {
    throw std::invalid_argument("gemm_nt: shape mismatch " + a.shape_str() +
                                " * " + b.shape_str() + "^T -> " + c.shape_str());
  }
}

inline void scale_row(float* c, std::size_t n, float beta) {
  if (beta == 0.0f) {
    for (std::size_t j = 0; j < n; ++j) c[j] = 0.0f;
  } else if (beta != 1.0f) {
    for (std::size_t j = 0; j < n; ++j) c[j] *= beta;
  }
}

/// c[0..n) += s * b[0..n)   (axpy — the inner kernel of NN and TN)
inline void axpy(float* c, const float* b, std::size_t n, float s) {
#ifdef GSGCN_AVX2
  const __m256 vs = _mm256_set1_ps(s);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 vb = _mm256_loadu_ps(b + j);
    const __m256 vc = _mm256_loadu_ps(c + j);
    _mm256_storeu_ps(c + j, _mm256_fmadd_ps(vs, vb, vc));
  }
  for (; j < n; ++j) c[j] += s * b[j];
#else
  for (std::size_t j = 0; j < n; ++j) c[j] += s * b[j];
#endif
}

/// dot(a[0..n), b[0..n))   (the inner kernel of NT)
inline float dot(const float* a, const float* b, std::size_t n) {
#ifdef GSGCN_AVX2
  __m256 acc = _mm256_setzero_ps();
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + j), _mm256_loadu_ps(b + j), acc);
  }
  // Horizontal sum of acc.
  __m128 lo = _mm256_castps256_ps128(acc);
  __m128 hi = _mm256_extractf128_ps(acc, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_hadd_ps(lo, lo);
  lo = _mm_hadd_ps(lo, lo);
  float s = _mm_cvtss_f32(lo);
  for (; j < n; ++j) s += a[j] * b[j];
  return s;
#else
  float s = 0.0f;
  for (std::size_t j = 0; j < n; ++j) s += a[j] * b[j];
  return s;
#endif
}

}  // namespace

void gemm_nn(const Matrix& a, const Matrix& b, Matrix& c, float alpha,
             float beta, int threads) {
  check_nn(a, b, c);
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  GSGCN_TRACE_SPAN_ID("gemm/nn", 2 * m * n * k);  // args.v = flops
  util::parallel_for(
      static_cast<std::int64_t>(m), threads, [&](std::int64_t ii) {
        const auto i = static_cast<std::size_t>(ii);
        float* ci = c.row(i);
        scale_row(ci, n, beta);
        for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
          const std::size_t k1 = std::min(k, k0 + kBlockK);
          const float* ai = a.row(i);
          for (std::size_t kk = k0; kk < k1; ++kk) {
            const float s = alpha * ai[kk];
            if (s != 0.0f) axpy(ci, b.row(kk), n, s);
          }
        }
      });
}

void gemm_tn(const Matrix& a, const Matrix& b, Matrix& c, float alpha,
             float beta, int threads) {
  check_tn(a, b, c);
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  GSGCN_TRACE_SPAN_ID("gemm/tn", 2 * m * n * k);
  util::parallel_for(
      static_cast<std::int64_t>(m), threads, [&](std::int64_t ii) {
        const auto i = static_cast<std::size_t>(ii);
        float* ci = c.row(i);
        scale_row(ci, n, beta);
        for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
          const std::size_t k1 = std::min(k, k0 + kBlockK);
          for (std::size_t kk = k0; kk < k1; ++kk) {
            const float s = alpha * a(kk, i);
            if (s != 0.0f) axpy(ci, b.row(kk), n, s);
          }
        }
      });
}

void gemm_nt(const Matrix& a, const Matrix& b, Matrix& c, float alpha,
             float beta, int threads) {
  check_nt(a, b, c);
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  GSGCN_TRACE_SPAN_ID("gemm/nt", 2 * m * n * k);
  util::parallel_for(
      static_cast<std::int64_t>(m), threads, [&](std::int64_t ii) {
        const auto i = static_cast<std::size_t>(ii);
        float* ci = c.row(i);
        const float* ai = a.row(i);
        for (std::size_t j = 0; j < n; ++j) {
          const float d = alpha * dot(ai, b.row(j), k);
          ci[j] = beta == 0.0f ? d : beta * ci[j] + d;
        }
      });
}

namespace reference {

void gemm_nn(const Matrix& a, const Matrix& b, Matrix& c, float alpha,
             float beta) {
  check_nn(a, b, c);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double s = 0.0;
      for (std::size_t kk = 0; kk < a.cols(); ++kk) {
        s += static_cast<double>(a(i, kk)) * b(kk, j);
      }
      c(i, j) = alpha * static_cast<float>(s) + beta * (beta == 0.0f ? 0.0f : c(i, j));
    }
  }
}

void gemm_tn(const Matrix& a, const Matrix& b, Matrix& c, float alpha,
             float beta) {
  check_tn(a, b, c);
  for (std::size_t i = 0; i < a.cols(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double s = 0.0;
      for (std::size_t kk = 0; kk < a.rows(); ++kk) {
        s += static_cast<double>(a(kk, i)) * b(kk, j);
      }
      c(i, j) = alpha * static_cast<float>(s) + beta * (beta == 0.0f ? 0.0f : c(i, j));
    }
  }
}

void gemm_nt(const Matrix& a, const Matrix& b, Matrix& c, float alpha,
             float beta) {
  check_nt(a, b, c);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.rows(); ++j) {
      double s = 0.0;
      for (std::size_t kk = 0; kk < a.cols(); ++kk) {
        s += static_cast<double>(a(i, kk)) * b(j, kk);
      }
      c(i, j) = alpha * static_cast<float>(s) + beta * (beta == 0.0f ? 0.0f : c(i, j));
    }
  }
}

}  // namespace reference

}  // namespace gsgcn::tensor

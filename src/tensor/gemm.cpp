#include "tensor/gemm.hpp"

#include <algorithm>
#include <cstddef>
#include <stdexcept>

#include "obs/perf.hpp"
#include "obs/roofline.hpp"
#include "obs/trace.hpp"
#include "util/aligned_buffer.hpp"
#include "util/parallel.hpp"

#ifdef GSGCN_AVX2
#include <immintrin.h>
#endif

namespace gsgcn::tensor {

namespace {

// ---------------------------------------------------------------------------
// Blocking parameters (floats).
//
//   Mr×Nr   register tile: 6×16 = twelve 8-lane FMA accumulators, plus two
//           B loads and one A broadcast — 15 of the 16 AVX2 ymm registers.
//   Kc      K-block: one packed B strip (Nr·Kc·4 = 16 KiB) plus one packed
//           A strip (Mr·Kc·4 = 6 KiB) stay L1-resident under the kernel.
//   Mc      M-block: the packed A block (Mc·Kc·4 = 96 KiB) targets L2, and
//           Mc is the parallel work unit — each thread packs and owns whole
//           Mc row blocks, so results are bit-identical for every thread
//           count (only the block→thread assignment changes).
//   Nc      N-block: bounds the shared packed B panel (Kc·Nc·4 = 1 MiB).
// ---------------------------------------------------------------------------
constexpr std::size_t kMr = 6;
constexpr std::size_t kNr = 16;
constexpr std::size_t kKc = 256;
constexpr std::size_t kMc = 96;    // multiple of kMr
constexpr std::size_t kNc = 1024;  // multiple of kNr

static_assert(kMc % kMr == 0, "Mc must hold whole register-tile rows");
static_assert(kNc % kNr == 0, "Nc must hold whole register-tile columns");

/// A GEMM operand as the kernel sees it: op(X)(r, c) with op ∈ {id, ᵀ}
/// folded into the index map. Strided views fall out for free — ld is the
/// distance between stored rows of the *underlying* buffer.
struct Operand {
  const float* p;
  std::size_t ld;
  bool trans;
};

void check_nn(ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  if (a.cols() != b.rows() || c.rows() != a.rows() || c.cols() != b.cols()) {
    throw std::invalid_argument("gemm_nn: shape mismatch " + a.shape_str() +
                                " * " + b.shape_str() + " -> " + c.shape_str());
  }
}

void check_tn(ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  if (a.rows() != b.rows() || c.rows() != a.cols() || c.cols() != b.cols()) {
    throw std::invalid_argument("gemm_tn: shape mismatch " + a.shape_str() +
                                "^T * " + b.shape_str() + " -> " + c.shape_str());
  }
}

void check_nt(ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  if (a.cols() != b.cols() || c.rows() != a.rows() || c.cols() != b.rows()) {
    throw std::invalid_argument("gemm_nt: shape mismatch " + a.shape_str() +
                                " * " + b.shape_str() + "^T -> " + c.shape_str());
  }
}

/// Per-thread packing workspaces. thread_local so steady-state training
/// does no allocation (OpenMP reuses its workers); under the TSan
/// std::thread backend each fresh team member allocates once per region,
/// which is the price of exact fork/join visibility, not a correctness
/// issue.
float* thread_a_panel() {
  static thread_local util::AlignedBuffer<float> buf;
  if (buf.size() < kMc * kKc) buf.reset(kMc * kKc);
  return buf.data();
}

float* thread_b_panel() {
  static thread_local util::AlignedBuffer<float> buf;
  if (buf.size() < kKc * kNc) buf.reset(kKc * kNc);
  return buf.data();
}

/// Pack op(A)[i0 .. i0+mc, k0 .. k0+kc) into Mr-row strips, k-major inside
/// each strip: ap[strip][kk*Mr + r]. Rows past mc are zero-padded so the
/// micro-kernel always runs full Mr tiles (the pad rows compute zeros that
/// are never stored).
void pack_a(float* ap, Operand a, std::size_t i0, std::size_t k0,
            std::size_t mc, std::size_t kc) {
  for (std::size_t s = 0; s < mc; s += kMr) {
    const std::size_t mr = std::min(kMr, mc - s);
    if (!a.trans) {
      for (std::size_t r = 0; r < mr; ++r) {
        const float* src = a.p + (i0 + s + r) * a.ld + k0;
        for (std::size_t kk = 0; kk < kc; ++kk) ap[kk * kMr + r] = src[kk];
      }
    } else {
      // op(A)(i, kk) = A(kk, i): walk source rows so reads stay contiguous.
      for (std::size_t kk = 0; kk < kc; ++kk) {
        const float* src = a.p + (k0 + kk) * a.ld + i0 + s;
        float* dst = ap + kk * kMr;
        for (std::size_t r = 0; r < mr; ++r) dst[r] = src[r];
      }
    }
    if (mr < kMr) {
      for (std::size_t kk = 0; kk < kc; ++kk) {
        for (std::size_t r = mr; r < kMr; ++r) ap[kk * kMr + r] = 0.0f;
      }
    }
    ap += kMr * kc;
  }
}

/// Pack op(B)[k0 .. k0+kc, j0 .. j0+nc) into Nr-column strips, k-major:
/// bp[strip][kk*Nr + c], columns past nc zero-padded.
void pack_b(float* bp, Operand b, std::size_t k0, std::size_t j0,
            std::size_t kc, std::size_t nc) {
  for (std::size_t s = 0; s < nc; s += kNr) {
    const std::size_t nr = std::min(kNr, nc - s);
    if (!b.trans) {
      for (std::size_t kk = 0; kk < kc; ++kk) {
        const float* src = b.p + (k0 + kk) * b.ld + j0 + s;
        float* dst = bp + kk * kNr;
        for (std::size_t c = 0; c < nr; ++c) dst[c] = src[c];
        for (std::size_t c = nr; c < kNr; ++c) dst[c] = 0.0f;
      }
    } else {
      // op(B)(kk, j) = B(j, kk): each packed column is a contiguous B row.
      for (std::size_t c = 0; c < nr; ++c) {
        const float* src = b.p + (j0 + s + c) * b.ld + k0;
        for (std::size_t kk = 0; kk < kc; ++kk) bp[kk * kNr + c] = src[kk];
      }
      for (std::size_t c = nr; c < kNr; ++c) {
        for (std::size_t kk = 0; kk < kc; ++kk) bp[kk * kNr + c] = 0.0f;
      }
    }
    bp += kNr * kc;
  }
}

#ifdef GSGCN_AVX2

/// The register tile: C[0..mr, 0..nr) (+)= alpha · Ap·Bp over kc terms,
/// with Bp/Ap packed as above. Full tiles store straight from the
/// accumulators (fusing beta and the optional ReLU); edge tiles spill
/// through a stack tile and store scalar, so C rows/columns outside the
/// matrix are never touched (beta == 0 never reads C at all).
inline void micro_kernel(const float* ap, const float* bp, std::size_t kc,
                         float* c, std::size_t ldc, std::size_t mr,
                         std::size_t nr, float alpha, float beta, bool relu) {
  // Twelve named accumulators (not arrays): GCC keeps an indexed __m256
  // array on the stack and spills every FMA result, which costs more than
  // half the kernel's throughput. Named locals register-allocate cleanly.
  __m256 c00 = _mm256_setzero_ps(), c01 = _mm256_setzero_ps();
  __m256 c10 = _mm256_setzero_ps(), c11 = _mm256_setzero_ps();
  __m256 c20 = _mm256_setzero_ps(), c21 = _mm256_setzero_ps();
  __m256 c30 = _mm256_setzero_ps(), c31 = _mm256_setzero_ps();
  __m256 c40 = _mm256_setzero_ps(), c41 = _mm256_setzero_ps();
  __m256 c50 = _mm256_setzero_ps(), c51 = _mm256_setzero_ps();
  for (std::size_t kk = 0; kk < kc; ++kk) {
    const __m256 b0 = _mm256_load_ps(bp + kk * kNr);
    const __m256 b1 = _mm256_load_ps(bp + kk * kNr + 8);
    const float* arow = ap + kk * kMr;
    __m256 av = _mm256_broadcast_ss(arow + 0);
    c00 = _mm256_fmadd_ps(av, b0, c00);
    c01 = _mm256_fmadd_ps(av, b1, c01);
    av = _mm256_broadcast_ss(arow + 1);
    c10 = _mm256_fmadd_ps(av, b0, c10);
    c11 = _mm256_fmadd_ps(av, b1, c11);
    av = _mm256_broadcast_ss(arow + 2);
    c20 = _mm256_fmadd_ps(av, b0, c20);
    c21 = _mm256_fmadd_ps(av, b1, c21);
    av = _mm256_broadcast_ss(arow + 3);
    c30 = _mm256_fmadd_ps(av, b0, c30);
    c31 = _mm256_fmadd_ps(av, b1, c31);
    av = _mm256_broadcast_ss(arow + 4);
    c40 = _mm256_fmadd_ps(av, b0, c40);
    c41 = _mm256_fmadd_ps(av, b1, c41);
    av = _mm256_broadcast_ss(arow + 5);
    c50 = _mm256_fmadd_ps(av, b0, c50);
    c51 = _mm256_fmadd_ps(av, b1, c51);
  }
  const __m256 acc0[kMr] = {c00, c10, c20, c30, c40, c50};
  const __m256 acc1[kMr] = {c01, c11, c21, c31, c41, c51};
  const __m256 valpha = _mm256_set1_ps(alpha);
  const __m256 vzero = _mm256_setzero_ps();
  if (mr == kMr && nr == kNr) {
    const __m256 vbeta = _mm256_set1_ps(beta);
    for (std::size_t r = 0; r < kMr; ++r) {
      float* cr = c + r * ldc;
      __m256 v0 = _mm256_mul_ps(acc0[r], valpha);
      __m256 v1 = _mm256_mul_ps(acc1[r], valpha);
      if (beta != 0.0f) {
        v0 = _mm256_fmadd_ps(vbeta, _mm256_loadu_ps(cr), v0);
        v1 = _mm256_fmadd_ps(vbeta, _mm256_loadu_ps(cr + 8), v1);
      }
      if (relu) {
        v0 = _mm256_max_ps(v0, vzero);
        v1 = _mm256_max_ps(v1, vzero);
      }
      _mm256_storeu_ps(cr, v0);
      _mm256_storeu_ps(cr + 8, v1);
    }
  } else {
    alignas(32) float tile[kMr * kNr];
    for (std::size_t r = 0; r < kMr; ++r) {
      _mm256_store_ps(tile + r * kNr, _mm256_mul_ps(acc0[r], valpha));
      _mm256_store_ps(tile + r * kNr + 8, _mm256_mul_ps(acc1[r], valpha));
    }
    for (std::size_t r = 0; r < mr; ++r) {
      float* cr = c + r * ldc;
      for (std::size_t j = 0; j < nr; ++j) {
        float v = tile[r * kNr + j];
        if (beta != 0.0f) v += beta * cr[j];
        if (relu) v = v > 0.0f ? v : 0.0f;
        cr[j] = v;
      }
    }
  }
}

#else  // !GSGCN_AVX2

/// Scalar fallback with the same packing, blocking, and accumulation
/// order; results differ from the AVX2 path only by FMA contraction.
inline void micro_kernel(const float* ap, const float* bp, std::size_t kc,
                         float* c, std::size_t ldc, std::size_t mr,
                         std::size_t nr, float alpha, float beta, bool relu) {
  float acc[kMr][kNr] = {};
  for (std::size_t kk = 0; kk < kc; ++kk) {
    const float* arow = ap + kk * kMr;
    const float* brow = bp + kk * kNr;
    for (std::size_t r = 0; r < kMr; ++r) {
      const float av = arow[r];
      for (std::size_t j = 0; j < kNr; ++j) acc[r][j] += av * brow[j];
    }
  }
  for (std::size_t r = 0; r < mr; ++r) {
    float* cr = c + r * ldc;
    for (std::size_t j = 0; j < nr; ++j) {
      float v = alpha * acc[r][j];
      if (beta != 0.0f) v += beta * cr[j];
      if (relu) v = v > 0.0f ? v : 0.0f;
      cr[j] = v;
    }
  }
}

#endif  // GSGCN_AVX2

/// beta/epilogue-only path for k == 0 (C = beta·C, optionally clamped).
void scale_epilogue_only(MatrixView c, float beta, Epilogue epilogue,
                         int threads) {
  const std::size_t n = c.cols();
  util::parallel_for(
      static_cast<std::int64_t>(c.rows()), threads, [&](std::int64_t ii) {
        float* cr = c.row(static_cast<std::size_t>(ii));
        for (std::size_t j = 0; j < n; ++j) {
          float v = beta == 0.0f ? 0.0f : beta * cr[j];
          if (epilogue == Epilogue::kRelu) v = v > 0.0f ? v : 0.0f;
          cr[j] = v;
        }
      });
}

/// Shared driver: C = alpha·op(A)·op(B) + beta·C over the blocked loop
/// nest. B panels are packed once per (jc, kc) block by the calling
/// thread; Mc row blocks then fan out across the team, each packing its
/// own A block into a thread-local panel. The per-tile accumulation order
/// never depends on the thread count, so results are bit-identical from
/// 1 thread to N.
void gemm_core(Operand a, Operand b, MatrixView c, std::size_t m,
               std::size_t n, std::size_t k, float alpha, float beta,
               Epilogue epilogue, int threads) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    scale_epilogue_only(c, beta, epilogue, threads);
    return;
  }
  float* const bp = thread_b_panel();
  float* const cdata = c.data();
  const std::size_t ldc = c.ld();
  const auto num_mblocks = static_cast<std::int64_t>((m + kMc - 1) / kMc);
  for (std::size_t jc = 0; jc < n; jc += kNc) {
    const std::size_t nc = std::min(kNc, n - jc);
    for (std::size_t kc0 = 0; kc0 < k; kc0 += kKc) {
      const std::size_t kc = std::min(kKc, k - kc0);
      pack_b(bp, b, kc0, jc, kc, nc);
      // First K-block applies the caller's beta; later blocks accumulate.
      const float beta_eff = kc0 == 0 ? beta : 1.0f;
      // The ReLU clamp is only valid once the sum over K is complete.
      const bool relu = (kc0 + kKc >= k) && epilogue == Epilogue::kRelu;
      util::parallel_for(num_mblocks, threads, [&](std::int64_t blk) {
        const std::size_t i0 = static_cast<std::size_t>(blk) * kMc;
        const std::size_t mc = std::min(kMc, m - i0);
        float* ap = thread_a_panel();
        pack_a(ap, a, i0, kc0, mc, kc);
        for (std::size_t jr = 0; jr < nc; jr += kNr) {
          const float* bps = bp + (jr / kNr) * (kNr * kc);
          const std::size_t nr = std::min(kNr, nc - jr);
          for (std::size_t ir = 0; ir < mc; ir += kMr) {
            const std::size_t mr = std::min(kMr, mc - ir);
            micro_kernel(ap + (ir / kMr) * (kMr * kc), bps, kc,
                         cdata + (i0 + ir) * ldc + jc + jr, ldc, mr, nr,
                         alpha, beta_eff, relu);
          }
        }
      });
    }
  }
}

}  // namespace

void gemm_nn(ConstMatrixView a, ConstMatrixView b, MatrixView c, float alpha,
             float beta, int threads, Epilogue epilogue) {
  check_nn(a, b, c);
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  GSGCN_TRACE_SPAN_ID("gemm/nn", 2 * m * n * k);  // args.v = flops
  const obs::Work work [[maybe_unused]] = obs::gemm_work(
      static_cast<std::int64_t>(m), static_cast<std::int64_t>(k),
      static_cast<std::int64_t>(n), beta != 0.0f);
  GSGCN_PERF_REGION_WORK("gemm", work.flops, work.bytes);
  gemm_core({a.data(), a.ld(), false}, {b.data(), b.ld(), false}, c, m, n, k,
            alpha, beta, epilogue, threads);
}

void gemm_tn(ConstMatrixView a, ConstMatrixView b, MatrixView c, float alpha,
             float beta, int threads, Epilogue epilogue) {
  check_tn(a, b, c);
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  GSGCN_TRACE_SPAN_ID("gemm/tn", 2 * m * n * k);
  const obs::Work work [[maybe_unused]] = obs::gemm_work(
      static_cast<std::int64_t>(m), static_cast<std::int64_t>(k),
      static_cast<std::int64_t>(n), beta != 0.0f);
  GSGCN_PERF_REGION_WORK("gemm", work.flops, work.bytes);
  gemm_core({a.data(), a.ld(), true}, {b.data(), b.ld(), false}, c, m, n, k,
            alpha, beta, epilogue, threads);
}

void gemm_nt(ConstMatrixView a, ConstMatrixView b, MatrixView c, float alpha,
             float beta, int threads, Epilogue epilogue) {
  check_nt(a, b, c);
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  GSGCN_TRACE_SPAN_ID("gemm/nt", 2 * m * n * k);
  const obs::Work work [[maybe_unused]] = obs::gemm_work(
      static_cast<std::int64_t>(m), static_cast<std::int64_t>(k),
      static_cast<std::int64_t>(n), beta != 0.0f);
  GSGCN_PERF_REGION_WORK("gemm", work.flops, work.bytes);
  gemm_core({a.data(), a.ld(), false}, {b.data(), b.ld(), true}, c, m, n, k,
            alpha, beta, epilogue, threads);
}

// ---------------------------------------------------------------------------
// Legacy kernels: the pre-packing implementation (rank-1 axpy updates for
// NN/TN, dot products for NT). Retained verbatim as the measured baseline
// of the packed-vs-legacy bench comparison.
// ---------------------------------------------------------------------------

namespace legacy {

namespace {

constexpr std::size_t kBlockK = 256;  // K-tile: keeps ~kBlockK B-rows warm

inline void scale_row(float* c, std::size_t n, float beta) {
  if (beta == 0.0f) {
    for (std::size_t j = 0; j < n; ++j) c[j] = 0.0f;
  } else if (beta != 1.0f) {
    for (std::size_t j = 0; j < n; ++j) c[j] *= beta;
  }
}

/// c[0..n) += s * b[0..n)   (axpy — the inner kernel of NN and TN)
inline void axpy(float* c, const float* b, std::size_t n, float s) {
#ifdef GSGCN_AVX2
  const __m256 vs = _mm256_set1_ps(s);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 vb = _mm256_loadu_ps(b + j);
    const __m256 vc = _mm256_loadu_ps(c + j);
    _mm256_storeu_ps(c + j, _mm256_fmadd_ps(vs, vb, vc));
  }
  for (; j < n; ++j) c[j] += s * b[j];
#else
  for (std::size_t j = 0; j < n; ++j) c[j] += s * b[j];
#endif
}

/// dot(a[0..n), b[0..n))   (the inner kernel of NT)
inline float dot(const float* a, const float* b, std::size_t n) {
#ifdef GSGCN_AVX2
  __m256 acc = _mm256_setzero_ps();
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + j), _mm256_loadu_ps(b + j), acc);
  }
  // Horizontal sum of acc.
  __m128 lo = _mm256_castps256_ps128(acc);
  __m128 hi = _mm256_extractf128_ps(acc, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_hadd_ps(lo, lo);
  lo = _mm_hadd_ps(lo, lo);
  float s = _mm_cvtss_f32(lo);
  for (; j < n; ++j) s += a[j] * b[j];
  return s;
#else
  float s = 0.0f;
  for (std::size_t j = 0; j < n; ++j) s += a[j] * b[j];
  return s;
#endif
}

}  // namespace

void gemm_nn(const Matrix& a, const Matrix& b, Matrix& c, float alpha,
             float beta, int threads) {
  check_nn(a, b, c);
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  util::parallel_for(
      static_cast<std::int64_t>(m), threads, [&](std::int64_t ii) {
        const auto i = static_cast<std::size_t>(ii);
        float* ci = c.row(i);
        scale_row(ci, n, beta);
        for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
          const std::size_t k1 = std::min(k, k0 + kBlockK);
          const float* ai = a.row(i);
          for (std::size_t kk = k0; kk < k1; ++kk) {
            const float s = alpha * ai[kk];
            if (s != 0.0f) axpy(ci, b.row(kk), n, s);
          }
        }
      });
}

void gemm_tn(const Matrix& a, const Matrix& b, Matrix& c, float alpha,
             float beta, int threads) {
  check_tn(a, b, c);
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  util::parallel_for(
      static_cast<std::int64_t>(m), threads, [&](std::int64_t ii) {
        const auto i = static_cast<std::size_t>(ii);
        float* ci = c.row(i);
        scale_row(ci, n, beta);
        for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
          const std::size_t k1 = std::min(k, k0 + kBlockK);
          for (std::size_t kk = k0; kk < k1; ++kk) {
            const float s = alpha * a(kk, i);
            if (s != 0.0f) axpy(ci, b.row(kk), n, s);
          }
        }
      });
}

void gemm_nt(const Matrix& a, const Matrix& b, Matrix& c, float alpha,
             float beta, int threads) {
  check_nt(a, b, c);
  const std::size_t k = a.cols(), n = b.rows();
  (void)n;
  util::parallel_for(
      static_cast<std::int64_t>(a.rows()), threads, [&](std::int64_t ii) {
        const auto i = static_cast<std::size_t>(ii);
        float* ci = c.row(i);
        const float* ai = a.row(i);
        for (std::size_t j = 0; j < b.rows(); ++j) {
          const float d = alpha * dot(ai, b.row(j), k);
          ci[j] = beta == 0.0f ? d : beta * ci[j] + d;
        }
      });
}

}  // namespace legacy

namespace reference {

void gemm_nn(const Matrix& a, const Matrix& b, Matrix& c, float alpha,
             float beta) {
  check_nn(a, b, c);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double s = 0.0;
      for (std::size_t kk = 0; kk < a.cols(); ++kk) {
        s += static_cast<double>(a(i, kk)) * b(kk, j);
      }
      // beta == 0 must never read C: the destination may be uninitialized
      // (freshly reset buffers), which sanitizers rightly flag.
      const float scaled = alpha * static_cast<float>(s);
      c(i, j) = beta == 0.0f ? scaled : scaled + beta * c(i, j);
    }
  }
}

void gemm_tn(const Matrix& a, const Matrix& b, Matrix& c, float alpha,
             float beta) {
  check_tn(a, b, c);
  for (std::size_t i = 0; i < a.cols(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double s = 0.0;
      for (std::size_t kk = 0; kk < a.rows(); ++kk) {
        s += static_cast<double>(a(kk, i)) * b(kk, j);
      }
      const float scaled = alpha * static_cast<float>(s);
      c(i, j) = beta == 0.0f ? scaled : scaled + beta * c(i, j);
    }
  }
}

void gemm_nt(const Matrix& a, const Matrix& b, Matrix& c, float alpha,
             float beta) {
  check_nt(a, b, c);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.rows(); ++j) {
      double s = 0.0;
      for (std::size_t kk = 0; kk < a.cols(); ++kk) {
        s += static_cast<double>(a(i, kk)) * b(j, kk);
      }
      const float scaled = alpha * static_cast<float>(s);
      c(i, j) = beta == 0.0f ? scaled : scaled + beta * c(i, j);
    }
  }
}

}  // namespace reference

}  // namespace gsgcn::tensor

#pragma once
// Elementwise / structural matrix operations used by the GCN layers.
// All take explicit outputs so buffers can be reused across iterations
// (no per-minibatch allocation in the training hot loop).

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/matrix.hpp"

namespace gsgcn::tensor {

/// y = max(0, x), elementwise. y must be same shape as x (may alias x).
void relu_forward(const Matrix& x, Matrix& y, int threads = 0);

/// dx = dy ⊙ 1[x > 0]. dx may alias dy. x may be either the
/// pre-activation input or the ReLU output: relu(x) > 0 ⇔ x > 0, so
/// callers that fused the ReLU into a GEMM epilogue (and therefore only
/// kept the post-activation values) pass those directly.
void relu_backward(const Matrix& x, const Matrix& dy, Matrix& dx,
                   int threads = 0);

/// out = [a | b] column-wise concat (the paper's "Concat" in line 9 of
/// Algorithm 1). a.rows() == b.rows(); out is (rows, a.cols + b.cols).
void concat_cols(const Matrix& a, const Matrix& b, Matrix& out,
                 int threads = 0);

/// Inverse of concat_cols: copies src's first a.cols() columns into a and
/// the rest into b (used to split the concat gradient).
void split_cols(const Matrix& src, Matrix& a, Matrix& b, int threads = 0);

/// x += alpha * y, elementwise. Shapes must match.
void add_scaled(Matrix& x, const Matrix& y, float alpha = 1.0f,
                int threads = 0);

/// x *= alpha.
void scale_inplace(Matrix& x, float alpha, int threads = 0);

/// out.row(i) = src.row(indices[i]) — gathers H^(0)[V_sub] for a sampled
/// batch (line 5 of Algorithm 1) and scatter-free label gathers.
void gather_rows(const Matrix& src, std::span<const std::uint32_t> indices,
                 Matrix& out, int threads = 0);

/// Adds `bias` (length == x.cols()) to every row of x.
void add_bias_rows(Matrix& x, std::span<const float> bias, int threads = 0);

/// dbias[j] = sum_i dy(i, j) — bias gradient reduction.
void bias_grad(const Matrix& dy, std::span<float> dbias);

/// Row-wise L2 normalization: each nonzero row scaled to unit norm.
/// GraphSAGE applies this to embeddings between layers; exposed for parity.
void l2_normalize_rows(Matrix& x, int threads = 0);

/// x ⊙= y elementwise (the dropout-mask multiply in the backward pass).
void hadamard_inplace(Matrix& x, const Matrix& y, int threads = 0);

/// Inverted dropout with per-row counter-based RNG streams: row i's mask
/// is drawn from util::Xoshiro256::stream(seed, i), so the result depends
/// only on (seed, shape) — never on the thread count or iteration order.
/// mask(i,j) ∈ {0, 1/(1-rate)} with P[keep] = 1-rate; out = mask ⊙ x.
/// mask and out must match x's shape (out may alias x).
void dropout_forward(const Matrix& x, Matrix& mask, Matrix& out, float rate,
                     std::uint64_t seed, int threads = 0);

}  // namespace gsgcn::tensor

#pragma once
// FastGCN-style node-based layer-sampling baseline ([3] in the paper).
//
// Instead of per-node neighbor fan-out, each layer draws an independent
// pool of `layer_samples` nodes from a precomputed degree-proportional
// importance distribution q (the "potentially expensive pre-processing"
// the paper mentions); inter-layer edges are reconstructed between
// consecutive pools with importance-corrected weights
// w(v,u) = 1 / (deg(v) · t · q(u)), the unbiased estimator of the mean
// aggregator. As in LADIES, the destination nodes are appended to each
// pool so the self path stays defined — this keeps the architecture
// identical to the other trainers (shared GcnModel, shared evaluation).

#include <memory>

#include "baselines/block.hpp"
#include "data/dataset.hpp"
#include "gcn/trainer.hpp"

namespace gsgcn::baselines {

struct FastGcnConfig {
  std::size_t hidden_dim = 128;
  int num_layers = 2;
  float lr = 0.01f;
  int epochs = 10;
  graph::Vid batch_size = 512;
  graph::Vid layer_samples = 512;  // t: nodes drawn per layer
  int threads = 1;
  std::uint64_t seed = 1;
  bool eval_every_epoch = true;
};

/// A FastGCN minibatch shares SageBatch's shape: per-layer node lists and
/// weighted blocks. nodes[ℓ] = dst nodes of layer ℓ+1 (prefix) + pool.
struct FastGcnBatch {
  std::vector<std::vector<graph::Vid>> nodes;
  std::vector<BipartiteBlock> blocks;
};

class FastGcnTrainer {
 public:
  FastGcnTrainer(const data::Dataset& dataset, const FastGcnConfig& config);

  gcn::TrainResult train();
  double evaluate(const std::vector<graph::Vid>& subset);

  FastGcnBatch sample_batch(const std::vector<graph::Vid>& batch_vertices,
                            util::Xoshiro256& rng) const;
  float train_step(const FastGcnBatch& batch);

  gcn::GcnModel& model() { return *model_; }

  /// The preprocessing product: q over train-graph vertices (∝ degree).
  const std::vector<double>& importance() const { return q_; }

 private:
  const data::Dataset& ds_;
  FastGcnConfig cfg_;

  graph::CsrGraph train_graph_;
  std::vector<graph::Vid> train_orig_;
  tensor::Matrix train_features_;
  tensor::Matrix train_labels_;
  std::vector<double> q_;          // importance distribution
  std::vector<double> q_cumsum_;   // for O(log n) inverse-CDF draws

  std::unique_ptr<gcn::GcnModel> model_;
  std::unique_ptr<gcn::Adam> opt_;
  util::Xoshiro256 rng_;

  tensor::Matrix eval_pred_;
  tensor::Matrix subset_pred_;
  tensor::Matrix subset_truth_;
};

}  // namespace gsgcn::baselines

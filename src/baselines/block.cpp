#include "baselines/block.hpp"

#include <cstring>
#include <stdexcept>

#include "util/parallel.hpp"

namespace gsgcn::baselines {

BipartiteBlock::BipartiteBlock(std::size_t num_src,
                               std::vector<std::int64_t> offsets,
                               std::vector<std::uint32_t> indices,
                               std::vector<float> weights)
    : num_src_(num_src),
      offsets_(std::move(offsets)),
      indices_(std::move(indices)),
      weights_(std::move(weights)) {
  const std::string err = validate();
  if (!err.empty()) throw std::invalid_argument("BipartiteBlock: " + err);
}

std::string BipartiteBlock::validate() const {
  if (offsets_.empty() || offsets_.front() != 0) return "bad offsets head";
  if (offsets_.back() != static_cast<std::int64_t>(indices_.size())) {
    return "offsets tail mismatch";
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) {
    if (offsets_[i] < offsets_[i - 1]) return "non-monotone offsets";
  }
  for (const std::uint32_t idx : indices_) {
    if (idx >= num_src_) return "source index out of range";
  }
  if (!weights_.empty() && weights_.size() != indices_.size()) {
    return "weights length mismatch";
  }
  return "";
}

void BipartiteBlock::forward(const tensor::Matrix& in, tensor::Matrix& out,
                             int threads) const {
  if (in.rows() != num_src_ || out.rows() != num_dst() ||
      in.cols() != out.cols()) {
    throw std::invalid_argument("BipartiteBlock::forward: shape mismatch");
  }
  const std::size_t f = in.cols();
  const std::size_t nd = num_dst();
  util::parallel_for(
      static_cast<std::int64_t>(nd), threads, [&](std::int64_t i) {
        const auto v = static_cast<std::size_t>(i);
        float* dst = out.row(v);
        std::memset(dst, 0, f * sizeof(float));
        const std::int64_t begin = offsets_[v], end = offsets_[v + 1];
        if (begin == end) return;
        for (std::int64_t e = begin; e < end; ++e) {
          const float* src = in.row(indices_[static_cast<std::size_t>(e)]);
          const float w =
              weighted() ? weights_[static_cast<std::size_t>(e)] : 1.0f;
          for (std::size_t j = 0; j < f; ++j) dst[j] += w * src[j];
        }
        if (!weighted()) {
          const float inv = 1.0f / static_cast<float>(end - begin);
          for (std::size_t j = 0; j < f; ++j) dst[j] *= inv;
        }
      });
}

void BipartiteBlock::backward(const tensor::Matrix& d_out,
                              tensor::Matrix& d_in, int threads) const {
  if (d_in.rows() != num_src_ || d_out.rows() != num_dst() ||
      d_in.cols() != d_out.cols()) {
    throw std::invalid_argument("BipartiteBlock::backward: shape mismatch");
  }
  const std::size_t f = d_out.cols();
  const std::size_t nd = num_dst();
  d_in.set_zero();
  // Scatter with destination-row races avoided by slicing the *feature*
  // dimension across threads: each thread owns a column range of d_in.
  util::parallel_region(threads, [&](int tid, int nt) {
    const std::size_t j0 =
        f * static_cast<std::size_t>(tid) / static_cast<std::size_t>(nt);
    const std::size_t j1 =
        f * static_cast<std::size_t>(tid + 1) / static_cast<std::size_t>(nt);
    if (j1 <= j0) return;
    for (std::size_t v = 0; v < nd; ++v) {
      const std::int64_t begin = offsets_[v], end = offsets_[v + 1];
      if (begin == end) continue;
      const float* src = d_out.row(v);
      const float mean_w =
          weighted() ? 1.0f : 1.0f / static_cast<float>(end - begin);
      for (std::int64_t e = begin; e < end; ++e) {
        float* dst = d_in.row(indices_[static_cast<std::size_t>(e)]);
        const float w =
            weighted() ? weights_[static_cast<std::size_t>(e)] : mean_w;
        for (std::size_t j = j0; j < j1; ++j) dst[j] += w * src[j];
      }
    }
  });
}

}  // namespace gsgcn::baselines

#include "baselines/graphsage.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <unordered_map>

#include "gcn/loss.hpp"
#include "gcn/metrics.hpp"
#include "graph/subgraph.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "util/timer.hpp"

namespace gsgcn::baselines {

std::size_t SageBatch::total_nodes() const {
  std::size_t total = 0;
  for (const auto& layer : nodes) total += layer.size();
  return total;
}

GraphSageTrainer::GraphSageTrainer(const data::Dataset& dataset,
                                   const SageConfig& config)
    : ds_(dataset), cfg_(config), rng_(config.seed) {
  const std::string err = ds_.validate();
  if (!err.empty()) throw std::invalid_argument("GraphSage: bad dataset: " + err);
  if (cfg_.fanout == 0 || cfg_.batch_size == 0 || cfg_.num_layers < 1) {
    throw std::invalid_argument("GraphSage: bad config");
  }

  graph::Inducer inducer(ds_.graph);
  auto sub = inducer.induce(ds_.train_vertices, std::max(1, cfg_.threads));
  train_graph_ = std::move(sub.graph);
  train_orig_ = std::move(sub.orig_ids);
  train_features_ = tensor::Matrix(train_orig_.size(), ds_.feature_dim());
  train_labels_ = tensor::Matrix(train_orig_.size(), ds_.num_classes());
  tensor::gather_rows(ds_.features, train_orig_, train_features_);
  tensor::gather_rows(ds_.labels, train_orig_, train_labels_);

  gcn::ModelConfig mc;
  mc.in_dim = ds_.feature_dim();
  mc.hidden_dim = cfg_.hidden_dim;
  mc.num_classes = ds_.num_classes();
  mc.num_layers = cfg_.num_layers;
  mc.seed = cfg_.seed;
  model_ = std::make_unique<gcn::GcnModel>(mc);
  opt_ = std::make_unique<gcn::Adam>(gcn::AdamConfig{.lr = cfg_.lr});
  model_->attach(*opt_);
}

SageBatch GraphSageTrainer::sample_batch(
    const std::vector<graph::Vid>& batch_vertices,
    util::Xoshiro256& rng) const {
  const int layers = cfg_.num_layers;
  SageBatch batch;
  batch.nodes.resize(static_cast<std::size_t>(layers) + 1);
  batch.nodes[static_cast<std::size_t>(layers)] = batch_vertices;

  // Top-down: nodes[ℓ-1] = nodes[ℓ] ++ sampled neighbors (deduped).
  for (int l = layers; l >= 1; --l) {
    const auto& dst = batch.nodes[static_cast<std::size_t>(l)];
    std::vector<graph::Vid> prev(dst);  // prefix property
    std::unordered_map<graph::Vid, std::uint32_t> pos;
    pos.reserve(prev.size() * (cfg_.fanout + 1));
    for (std::size_t i = 0; i < prev.size(); ++i) {
      pos.emplace(prev[i], static_cast<std::uint32_t>(i));
    }

    std::vector<std::int64_t> offsets(dst.size() + 1, 0);
    std::vector<std::uint32_t> indices;
    indices.reserve(dst.size() * cfg_.fanout);
    for (std::size_t i = 0; i < dst.size(); ++i) {
      const auto nbrs = train_graph_.neighbors(dst[i]);
      if (!nbrs.empty()) {
        for (graph::Vid k = 0; k < cfg_.fanout; ++k) {
          const graph::Vid u =
              nbrs[rng.below(static_cast<std::uint32_t>(nbrs.size()))];
          auto [it, inserted] =
              pos.emplace(u, static_cast<std::uint32_t>(prev.size()));
          if (inserted) prev.push_back(u);
          indices.push_back(it->second);
        }
      }
      offsets[i + 1] = static_cast<std::int64_t>(indices.size());
    }
    batch.blocks.emplace(batch.blocks.begin(),
                         BipartiteBlock(prev.size(), std::move(offsets),
                                        std::move(indices)));
    batch.nodes[static_cast<std::size_t>(l) - 1] = std::move(prev);
  }
  return batch;
}

float GraphSageTrainer::train_step(const SageBatch& batch) {
  const int layers = cfg_.num_layers;
  const int threads = cfg_.threads;
  auto& convs = model_->layers();

  // ---- forward ----
  std::vector<tensor::Matrix> h(static_cast<std::size_t>(layers) + 1);
  std::vector<tensor::Matrix> agg(static_cast<std::size_t>(layers));
  std::vector<tensor::Matrix> pre(static_cast<std::size_t>(layers));
  h[0] = tensor::Matrix(batch.nodes[0].size(), ds_.feature_dim());
  tensor::gather_rows(train_features_, batch.nodes[0], h[0], threads);

  for (int l = 0; l < layers; ++l) {
    auto& conv = convs[static_cast<std::size_t>(l)];
    const auto lu = static_cast<std::size_t>(l);
    const std::size_t n_dst = batch.nodes[lu + 1].size();
    const std::size_t fo = conv.out_dim();

    agg[lu] = tensor::Matrix(n_dst, conv.in_dim());
    batch.blocks[lu].forward(h[lu], agg[lu], threads);

    // Self features: prefix rows of h[l].
    tensor::Matrix h_self_in(n_dst, conv.in_dim());
    std::memcpy(h_self_in.data(), h[lu].data(),
                n_dst * conv.in_dim() * sizeof(float));

    tensor::Matrix self_out(n_dst, fo), neigh_out(n_dst, fo);
    tensor::gemm_nn(h_self_in, conv.w_self(), self_out, 1.0f, 0.0f, threads);
    tensor::gemm_nn(agg[lu], conv.w_neigh(), neigh_out, 1.0f, 0.0f, threads);
    pre[lu] = tensor::Matrix(n_dst, 2 * fo);
    tensor::concat_cols(self_out, neigh_out, pre[lu], threads);
    h[lu + 1] = tensor::Matrix(n_dst, 2 * fo);
    tensor::relu_forward(pre[lu], h[lu + 1], threads);
  }

  const std::size_t n_batch = batch.nodes.back().size();
  tensor::Matrix logits(n_batch, ds_.num_classes());
  tensor::gemm_nn(h[static_cast<std::size_t>(layers)], model_->w_cls(), logits,
                  1.0f, 0.0f, threads);
  tensor::add_bias_rows(logits,
                        {model_->bias_cls().data(), model_->bias_cls().cols()},
                        threads);

  tensor::Matrix labels(n_batch, ds_.num_classes());
  tensor::gather_rows(train_labels_, batch.nodes.back(), labels, threads);
  tensor::Matrix d_logits(n_batch, ds_.num_classes());
  const float loss = gcn::classification_loss(ds_.mode, logits, labels, d_logits);

  // ---- backward ----
  tensor::gemm_tn(h[static_cast<std::size_t>(layers)], d_logits,
                  model_->grad_w_cls(), 1.0f, 0.0f, threads);
  tensor::bias_grad(d_logits, {model_->grad_bias_cls().data(),
                               model_->grad_bias_cls().cols()});
  tensor::Matrix d_h(n_batch, h[static_cast<std::size_t>(layers)].cols());
  tensor::gemm_nt(d_logits, model_->w_cls(), d_h, 1.0f, 0.0f, threads);

  for (int l = layers - 1; l >= 0; --l) {
    auto& conv = convs[static_cast<std::size_t>(l)];
    const auto lu = static_cast<std::size_t>(l);
    const std::size_t n_dst = batch.nodes[lu + 1].size();
    const std::size_t fo = conv.out_dim();

    tensor::Matrix d_pre(n_dst, 2 * fo);
    tensor::relu_backward(pre[lu], d_h, d_pre, threads);
    tensor::Matrix d_self(n_dst, fo), d_neigh(n_dst, fo);
    tensor::split_cols(d_pre, d_self, d_neigh, threads);

    // Weight grads. Self input = prefix rows of h[l].
    tensor::Matrix h_self_in(n_dst, conv.in_dim());
    std::memcpy(h_self_in.data(), h[lu].data(),
                n_dst * conv.in_dim() * sizeof(float));
    tensor::gemm_tn(h_self_in, d_self, conv.grad_w_self(), 1.0f, 0.0f, threads);
    tensor::gemm_tn(agg[lu], d_neigh, conv.grad_w_neigh(), 1.0f, 0.0f, threads);

    // Input grads: through the block, plus the self path into the prefix.
    tensor::Matrix d_agg(n_dst, conv.in_dim());
    tensor::gemm_nt(d_neigh, conv.w_neigh(), d_agg, 1.0f, 0.0f, threads);
    tensor::Matrix d_prev(batch.nodes[lu].size(), conv.in_dim());
    batch.blocks[lu].backward(d_agg, d_prev, threads);

    tensor::Matrix d_self_in(n_dst, conv.in_dim());
    tensor::gemm_nt(d_self, conv.w_self(), d_self_in, 1.0f, 0.0f, threads);
    for (std::size_t i = 0; i < n_dst; ++i) {
      float* dst = d_prev.row(i);
      const float* src = d_self_in.row(i);
      for (std::size_t j = 0; j < conv.in_dim(); ++j) dst[j] += src[j];
    }
    d_h = std::move(d_prev);
  }

  model_->apply_gradients(*opt_);
  return loss;
}

gcn::TrainResult GraphSageTrainer::train() {
  gcn::TrainResult result;
  const graph::Vid n_train = train_graph_.num_vertices();
  std::vector<graph::Vid> order(n_train);
  for (graph::Vid v = 0; v < n_train; ++v) order[v] = v;

  double train_time = 0.0;
  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    util::Timer timer;
    // Shuffle and iterate batches.
    for (graph::Vid i = n_train; i > 1; --i) {
      std::swap(order[i - 1], order[rng_.below(i)]);
    }
    double loss_sum = 0.0;
    std::int64_t batches = 0;
    for (graph::Vid start = 0; start < n_train; start += cfg_.batch_size) {
      const graph::Vid end = std::min<graph::Vid>(start + cfg_.batch_size, n_train);
      std::vector<graph::Vid> verts(order.begin() + start, order.begin() + end);
      util::Timer sample_timer;
      SageBatch batch = sample_batch(verts, rng_);
      result.sample_seconds += sample_timer.seconds();
      loss_sum += train_step(batch);
      ++batches;
      ++result.iterations;
    }
    const double epoch_seconds = timer.seconds();
    train_time += epoch_seconds;

    gcn::EpochRecord rec;
    rec.epoch = epoch;
    rec.train_loss = loss_sum / std::max<std::int64_t>(1, batches);
    rec.epoch_seconds = epoch_seconds;
    rec.cumulative_seconds = train_time;
    if (cfg_.eval_every_epoch) rec.val_f1 = evaluate(ds_.val_vertices);
    result.history.push_back(rec);
  }
  result.train_seconds = train_time;
  result.final_val_f1 = evaluate(ds_.val_vertices);
  result.final_test_f1 = evaluate(ds_.test_vertices);
  return result;
}

double GraphSageTrainer::evaluate(const std::vector<graph::Vid>& subset) {
  if (subset.empty()) return 0.0;
  const tensor::Matrix& logits =
      model_->forward(ds_.graph, ds_.features, cfg_.threads);
  gcn::ensure_shape(eval_pred_, logits.rows(), logits.cols());
  gcn::predict(ds_.mode, logits, eval_pred_);
  gcn::ensure_shape(subset_pred_, subset.size(), logits.cols());
  gcn::ensure_shape(subset_truth_, subset.size(), logits.cols());
  tensor::gather_rows(eval_pred_, subset, subset_pred_, cfg_.threads);
  tensor::gather_rows(ds_.labels, subset, subset_truth_, cfg_.threads);
  return gcn::f1_micro(subset_pred_, subset_truth_);
}

}  // namespace gsgcn::baselines

#pragma once
// Bipartite propagation block for layer-sampling baselines.
//
// Layer sampling (GraphSAGE, FastGCN) gives each GCN layer its own node
// set, so feature aggregation runs over a *bipartite* graph from layer
// ℓ−1's nodes to layer ℓ's nodes — this block is its CSR. Edges may carry
// weights (FastGCN's importance correction); unweighted blocks aggregate
// the mean (GraphSAGE).

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "tensor/matrix.hpp"

namespace gsgcn::baselines {

class BipartiteBlock {
 public:
  /// offsets.size() == num_dst + 1; indices are positions in the source
  /// layer's node list (0 ≤ idx < num_src). weights empty = mean
  /// aggregation; else weighted sum with the given per-edge weights.
  BipartiteBlock(std::size_t num_src, std::vector<std::int64_t> offsets,
                 std::vector<std::uint32_t> indices,
                 std::vector<float> weights = {});

  std::size_t num_src() const { return num_src_; }
  std::size_t num_dst() const { return offsets_.size() - 1; }
  std::int64_t num_edges() const {
    return static_cast<std::int64_t>(indices_.size());
  }
  bool weighted() const { return !weights_.empty(); }

  /// out[v] = mean_{u ∈ N(v)} in[u]          (unweighted)
  /// out[v] = Σ_{u ∈ N(v)} w(v,u) · in[u]    (weighted)
  /// in: num_src x f, out: num_dst x f.
  void forward(const tensor::Matrix& in, tensor::Matrix& out,
               int threads = 0) const;

  /// Transposed operator for gradients: d_in: num_src x f (overwritten),
  /// d_out: num_dst x f.
  void backward(const tensor::Matrix& d_out, tensor::Matrix& d_in,
                int threads = 0) const;

  /// Consistency: monotone offsets, indices in range. Empty when valid.
  std::string validate() const;

 private:
  std::size_t num_src_;
  std::vector<std::int64_t> offsets_;
  std::vector<std::uint32_t> indices_;
  std::vector<float> weights_;
};

}  // namespace gsgcn::baselines

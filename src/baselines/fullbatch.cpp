#include "baselines/fullbatch.hpp"

#include <stdexcept>

#include "gcn/loss.hpp"
#include "gcn/metrics.hpp"
#include "graph/subgraph.hpp"
#include "tensor/ops.hpp"
#include "util/timer.hpp"

namespace gsgcn::baselines {

FullBatchTrainer::FullBatchTrainer(const data::Dataset& dataset,
                                   const FullBatchConfig& config)
    : ds_(dataset), cfg_(config) {
  const std::string err = ds_.validate();
  if (!err.empty()) throw std::invalid_argument("FullBatch: bad dataset: " + err);

  graph::Inducer inducer(ds_.graph);
  auto sub = inducer.induce(ds_.train_vertices, std::max(1, cfg_.threads));
  train_graph_ = std::move(sub.graph);
  train_orig_ = std::move(sub.orig_ids);
  train_features_ = tensor::Matrix(train_orig_.size(), ds_.feature_dim());
  train_labels_ = tensor::Matrix(train_orig_.size(), ds_.num_classes());
  tensor::gather_rows(ds_.features, train_orig_, train_features_);
  tensor::gather_rows(ds_.labels, train_orig_, train_labels_);

  gcn::ModelConfig mc;
  mc.in_dim = ds_.feature_dim();
  mc.hidden_dim = cfg_.hidden_dim;
  mc.num_classes = ds_.num_classes();
  mc.num_layers = cfg_.num_layers;
  mc.seed = cfg_.seed;
  model_ = std::make_unique<gcn::GcnModel>(mc);
  opt_ = std::make_unique<gcn::Adam>(gcn::AdamConfig{.lr = cfg_.lr});
  model_->attach(*opt_);
}

gcn::TrainResult FullBatchTrainer::train() {
  gcn::TrainResult result;
  gcn::PhaseClock clock;
  double train_time = 0.0;
  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    util::Timer timer;
    const tensor::Matrix& logits =
        model_->forward(train_graph_, train_features_, cfg_.threads, &clock);
    gcn::ensure_shape(d_logits_, logits.rows(), logits.cols());
    const float loss =
        gcn::classification_loss(ds_.mode, logits, train_labels_, d_logits_);
    model_->backward(train_graph_, d_logits_, cfg_.threads, &clock);
    model_->apply_gradients(*opt_);
    ++result.iterations;
    const double epoch_seconds = timer.seconds();
    train_time += epoch_seconds;

    gcn::EpochRecord rec;
    rec.epoch = epoch;
    rec.train_loss = loss;
    rec.epoch_seconds = epoch_seconds;
    rec.cumulative_seconds = train_time;
    if (cfg_.eval_every_epoch) rec.val_f1 = evaluate(ds_.val_vertices);
    result.history.push_back(rec);
  }
  result.train_seconds = train_time;
  result.featprop_seconds = clock.feature_prop.total_seconds();
  result.weight_seconds = clock.weight_apply.total_seconds();
  result.final_val_f1 = evaluate(ds_.val_vertices);
  result.final_test_f1 = evaluate(ds_.test_vertices);
  return result;
}

double FullBatchTrainer::evaluate(const std::vector<graph::Vid>& subset) {
  if (subset.empty()) return 0.0;
  const tensor::Matrix& logits =
      model_->forward(ds_.graph, ds_.features, cfg_.threads);
  gcn::ensure_shape(eval_pred_, logits.rows(), logits.cols());
  gcn::predict(ds_.mode, logits, eval_pred_);
  gcn::ensure_shape(subset_pred_, subset.size(), logits.cols());
  gcn::ensure_shape(subset_truth_, subset.size(), logits.cols());
  tensor::gather_rows(eval_pred_, subset, subset_pred_, cfg_.threads);
  tensor::gather_rows(ds_.labels, subset, subset_truth_, cfg_.threads);
  return gcn::f1_micro(subset_pred_, subset_truth_);
}

}  // namespace gsgcn::baselines

#pragma once
// GraphSAGE-style layer-sampling baseline ([2] in the paper).
//
// Minibatch construction samples `fanout` neighbors (with replacement)
// per node per layer, top-down: layer L holds the batch, layer ℓ−1 holds
// layer ℓ's nodes plus their sampled neighbors. Node-set growth per layer
// is the "neighbor explosion" the paper's complexity analysis targets —
// O(fanout^L) work per batch vertex versus our O(L).
//
// The architecture (W_self ‖ W_neigh concat + ReLU + dense head) is
// identical to the graph-sampling GCN, so weights live in a GcnModel and
// full-graph inference/evaluation is shared; only the minibatch
// forward/backward runs over bipartite blocks.

#include <memory>

#include "baselines/block.hpp"
#include "data/dataset.hpp"
#include "gcn/trainer.hpp"

namespace gsgcn::baselines {

struct SageConfig {
  std::size_t hidden_dim = 128;
  int num_layers = 2;
  float lr = 0.01f;
  int epochs = 10;
  graph::Vid batch_size = 512;
  graph::Vid fanout = 10;  // the paper's d_LS
  int threads = 1;
  std::uint64_t seed = 1;
  bool eval_every_epoch = true;
};

/// One sampled minibatch: per-layer node lists (positions are into the
/// *training graph*) and the blocks between them. nodes[L] is the batch;
/// nodes[ℓ] is a prefix of nodes[ℓ-1].
struct SageBatch {
  std::vector<std::vector<graph::Vid>> nodes;  // size L+1, [0]=input layer
  std::vector<BipartiteBlock> blocks;          // size L, [ℓ] maps ℓ→ℓ+1

  /// Total nodes over all layers — the neighbor-explosion measurement the
  /// complexity bench reports.
  std::size_t total_nodes() const;
};

class GraphSageTrainer {
 public:
  GraphSageTrainer(const data::Dataset& dataset, const SageConfig& config);

  gcn::TrainResult train();
  double evaluate(const std::vector<graph::Vid>& subset);

  /// Sample one minibatch rooted at `batch_vertices` (train-graph ids).
  /// Exposed for the complexity bench and tests.
  SageBatch sample_batch(const std::vector<graph::Vid>& batch_vertices,
                         util::Xoshiro256& rng) const;

  /// Minibatch forward+backward+step on a sampled batch; returns loss.
  float train_step(const SageBatch& batch);

  gcn::GcnModel& model() { return *model_; }
  graph::Vid train_graph_size() const { return train_graph_.num_vertices(); }

 private:
  const data::Dataset& ds_;
  SageConfig cfg_;

  graph::CsrGraph train_graph_;
  std::vector<graph::Vid> train_orig_;
  tensor::Matrix train_features_;
  tensor::Matrix train_labels_;

  std::unique_ptr<gcn::GcnModel> model_;
  std::unique_ptr<gcn::Adam> opt_;
  util::Xoshiro256 rng_;

  // Evaluation scratch (shared logic with gcn::Trainer::evaluate).
  tensor::Matrix eval_pred_;
  tensor::Matrix subset_pred_;
  tensor::Matrix subset_truth_;
};

}  // namespace gsgcn::baselines

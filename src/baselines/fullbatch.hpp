#pragma once
// Full-batch GCN baseline (batched GCN of Kipf & Welling, [1] in the
// paper, run at batch size = |V_train|): every iteration does one
// forward/backward over the whole training graph. No sampling, no
// neighbor explosion — but each gradient step costs a full epoch, which
// is the slow-convergence regime Figure 2 demonstrates.

#include <memory>

#include "data/dataset.hpp"
#include "gcn/trainer.hpp"

namespace gsgcn::baselines {

struct FullBatchConfig {
  std::size_t hidden_dim = 128;
  int num_layers = 2;
  float lr = 0.01f;
  int epochs = 50;  // one weight update per epoch, so more epochs
  int threads = 1;
  std::uint64_t seed = 1;
  bool eval_every_epoch = true;
};

class FullBatchTrainer {
 public:
  FullBatchTrainer(const data::Dataset& dataset, const FullBatchConfig& config);

  gcn::TrainResult train();
  double evaluate(const std::vector<graph::Vid>& subset);

  gcn::GcnModel& model() { return *model_; }

 private:
  const data::Dataset& ds_;
  FullBatchConfig cfg_;

  graph::CsrGraph train_graph_;
  std::vector<graph::Vid> train_orig_;
  tensor::Matrix train_features_;
  tensor::Matrix train_labels_;

  std::unique_ptr<gcn::GcnModel> model_;
  std::unique_ptr<gcn::Adam> opt_;

  tensor::Matrix d_logits_;
  tensor::Matrix eval_pred_;
  tensor::Matrix subset_pred_;
  tensor::Matrix subset_truth_;
};

}  // namespace gsgcn::baselines

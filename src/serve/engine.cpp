#include "serve/engine.hpp"

#include <algorithm>
#include <cstring>
#include <span>
#include <string>

#include "obs/metrics.hpp"
#include "tensor/ops.hpp"
#include "util/fault.hpp"

namespace gsgcn::serve {

InferenceEngine::InferenceEngine(const graph::CsrGraph& graph,
                                 const data::FeatureStore& features)
    : g_(graph),
      features_(features),
      inducer_(graph),
      stamp_(graph.num_vertices(), 0),
      local_of_(graph.num_vertices(), 0) {}

graph::Vid InferenceEngine::closure_add(graph::Vid v) {
  if (stamp_[v] == epoch_) return local_of_[v];
  stamp_[v] = epoch_;
  const auto local = static_cast<graph::Vid>(closure_.size());
  local_of_[v] = local;
  closure_.push_back(v);
  return local;
}

void InferenceEngine::run_batch(const ModelSnapshot& snap,
                                const std::vector<Ticket>& batch,
                                std::vector<Response>& out, int threads) {
  util::fault_point("serve.infer");

  const gcn::ModelConfig& cfg = snap.model.config();
  const graph::Vid n = g_.num_vertices();

  // Pass 1: seed the closure with every valid root, remembering each
  // ticket's local rows. Invalid tickets are answered without compute.
  ++epoch_;
  if (epoch_ == 0) {  // stamp wrap: force a full clear once per 2^32 batches
    std::fill(stamp_.begin(), stamp_.end(), 0u);
    epoch_ = 1;
  }
  closure_.clear();

  const std::size_t first_out = out.size();
  std::vector<std::vector<graph::Vid>> local_rows(batch.size());
  bool any_compute = false;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Ticket& t = batch[i];
    Response resp;
    resp.request_id = t.request.request_id;
    resp.snapshot_seq = snap.seq;
    if (t.request.op == Op::kPing) {
      out.push_back(std::move(resp));
      continue;
    }
    bool ok = !t.request.vertices.empty();
    if (!ok) resp.message = "empty vertex list";
    for (const graph::Vid v : t.request.vertices) {
      if (v >= n) {
        ok = false;
        resp.message = "vertex id " + std::to_string(v) +
                       " out of range (num_vertices=" + std::to_string(n) +
                       ")";
        break;
      }
    }
    if (!ok) {
      resp.status = Status::kBadRequest;
      out.push_back(std::move(resp));
      continue;
    }
    local_rows[i].reserve(t.request.vertices.size());
    for (const graph::Vid v : t.request.vertices) {
      local_rows[i].push_back(closure_add(v));
    }
    any_compute = true;
    out.push_back(std::move(resp));  // filled with logits below
  }
  if (!any_compute) return;

  // Pass 2: expand L hops. Frontier slices of closure_ double as the BFS
  // queue — closure_[lo, hi) is exactly the hop-(k) frontier.
  std::size_t lo = 0;
  for (int hop = 0; hop < cfg.num_layers; ++hop) {
    const std::size_t hi = closure_.size();
    for (std::size_t i = lo; i < hi; ++i) {
      for (const graph::Vid u : g_.neighbors(closure_[i])) {
        closure_add(u);
      }
    }
    lo = hi;
    if (closure_.size() == hi) break;  // already closed
  }
  GSGCN_GAUGE_SET("serve.closure_size",
                  static_cast<std::int64_t>(closure_.size()));

  // Pass 3: induce + gather + infer on the closure only.
  graph::Subgraph sub = inducer_.induce(closure_, threads <= 0 ? 1 : threads);
  if (batch_x_.rows() != closure_.size() ||
      batch_x_.cols() != features_.cols()) {
    batch_x_ = tensor::Matrix(closure_.size(), features_.cols());
  }
  features_.gather(std::span<const std::uint32_t>(closure_), batch_x_,
                   threads);
  const tensor::Matrix& logits =
      gcn::infer_logits(snap.model, sub.graph, batch_x_, scratch_, threads);

  // Pass 4: scatter root rows into each ticket's response.
  const std::size_t cols = logits.cols();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (local_rows[i].empty()) continue;  // ping or rejected above
    Response& resp = out[first_out + i];
    resp.rows = static_cast<std::uint32_t>(local_rows[i].size());
    resp.cols = static_cast<std::uint32_t>(cols);
    resp.logits.resize(local_rows[i].size() * cols);
    float* dst = resp.logits.data();
    for (const graph::Vid local : local_rows[i]) {
      std::memcpy(dst, logits.row(local), cols * sizeof(float));
      dst += cols;
    }
  }
}

}  // namespace gsgcn::serve

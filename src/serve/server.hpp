#pragma once
// Fault-tolerant online inference server.
//
// Thread model — single-writer discipline end to end:
//
//   IO thread   owns every fd, every connection buffer, and the epoll set.
//               It accepts, reads, frames, decodes, admits, and writes.
//               Nothing else ever touches a socket, so there are no
//               fd-lifetime races and no per-connection locks.
//   workers     own nothing but the admission queue's output: they pop
//               ticket batches, run the engine on an immutable snapshot,
//               and hand framed response bytes back through a mutex-guarded
//               completion queue + eventfd wakeup.
//   watcher     (owned by the caller) publishes snapshots into the
//               SnapshotStore; workers pick up the new pointer on their
//               next batch, in-flight batches finish on the old one.
//
// Overload behavior, in order of the defenses hit as load rises:
//   1. batching amortizes forward-pass cost (queue coalesces a window);
//   2. the bounded queue rejects with OVERLOADED once full;
//   3. tickets whose deadline lapsed while queued are shed pre-compute;
//   4. above a queue high-watermark the listener leaves the epoll set, so
//      new connections back up in the kernel accept queue (bounded by
//      listen backlog) instead of growing server-side state.
//
// Failure behavior: malformed, truncated, oversized, or CRC-failing
// frames get a BAD_REQUEST error frame and a close — never a crash, never
// a hang. Idle or stuck-writing connections are reaped on a timeout.
// SIGTERM (request_shutdown — async-signal-safe) drains: admitted work is
// answered, new work gets SHUTTING_DOWN, then the loop exits cleanly.

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "data/feature_store.hpp"
#include "graph/csr.hpp"
#include "serve/admission.hpp"
#include "serve/protocol.hpp"
#include "serve/snapshot.hpp"
#include "serve/socket.hpp"
#include "tensor/matrix.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace gsgcn::serve {

struct ServerOptions {
  std::uint16_t port = 0;        // 0 = kernel-assigned (read back via port())
  int listen_backlog = 64;
  int num_workers = 1;
  int infer_threads = 1;         // threads per engine forward pass
  std::size_t queue_capacity = 64;
  std::size_t max_batch = 8;
  double batch_window_ms = 2.0;
  double idle_timeout_ms = 30000.0;    // reap conns with no IO progress
  std::uint32_t default_deadline_ms = 1000;  // 0 = requests never expire
};

/// Always-live counters (plain atomics — the obs macros compile out in
/// Release, but CI smoke checks and tests need these unconditionally).
struct ServerStats {
  std::atomic<std::uint64_t> accepted{0};        // connections accepted
  std::atomic<std::uint64_t> requests{0};        // well-formed requests
  std::atomic<std::uint64_t> ok_replies{0};
  std::atomic<std::uint64_t> pings{0};
  std::atomic<std::uint64_t> shed_queue_full{0};
  std::atomic<std::uint64_t> shed_deadline{0};
  std::atomic<std::uint64_t> bad_requests{0};    // decode ok, content bad
  std::atomic<std::uint64_t> protocol_errors{0}; // frame/payload rejects
  std::atomic<std::uint64_t> internal_errors{0};
  std::atomic<std::uint64_t> rejected_shutdown{0};
  std::atomic<std::uint64_t> idle_reaped{0};
  std::atomic<std::uint64_t> batches{0};

  std::uint64_t shed_total() const {
    return shed_queue_full.load() + shed_deadline.load();
  }
};

class Server {
 public:
  /// `store` must outlive the server; `graph`/`features` are the serving
  /// graph (requests address its vertex ids). This overload wraps the
  /// matrix in a zero-copy fp32 FeatureStore view.
  Server(SnapshotStore& store, const graph::CsrGraph& graph,
         const tensor::Matrix& features, ServerOptions options);

  /// Serve from a compressed / mmap-backed feature store (must outlive
  /// the server). Worker engines widen rows on the fly during gathers.
  Server(SnapshotStore& store, const graph::CsrGraph& graph,
         const data::FeatureStore& features, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and spawn the IO thread + workers. Throws on bind
  /// failure. Idempotence is not supported: one start per Server.
  void start();

  /// Begin graceful drain. Async-signal-safe (one write(2) to an eventfd):
  /// call it straight from a SIGTERM handler.
  void request_shutdown();

  /// request_shutdown() + join everything. Safe to call twice.
  void stop();

  /// Block until the IO loop has exited (drain complete). start() must
  /// have been called.
  void wait();

  std::uint16_t port() const { return port_; }
  const ServerStats& stats() const { return stats_; }
  std::size_t queue_depth() const { return queue_.depth(); }

 private:
  struct Conn {
    Fd fd;
    std::string inbuf;
    std::string outbuf;
    std::size_t out_pos = 0;
    std::chrono::steady_clock::time_point last_activity{};
    std::uint64_t inflight = 0;  // admitted tickets awaiting completion
    bool want_write = false;     // current EPOLLOUT interest
    bool closing = false;        // flush outbuf, then close
  };

  struct Completion {
    std::uint64_t conn_id = 0;
    std::string framed;
  };

  void io_main();
  void worker_main();

  // IO-thread helpers (all conn state is IO-thread-confined). The bool
  // returns say whether the connection still exists afterwards — a write
  // error inside any of them may close it.
  void accept_ready();
  bool conn_readable(std::uint64_t id);
  bool conn_flush(std::uint64_t id);
  bool handle_payload(std::uint64_t id, const std::string& payload);
  bool send_frame(std::uint64_t id, std::string framed);
  void close_conn(std::uint64_t id);
  void begin_drain();
  void drain_completions();
  void housekeeping();
  void update_epollout(std::uint64_t id, Conn& conn);
  void pause_or_resume_accept();
  bool drain_complete() const;

  void post_completions(std::vector<Completion> batch) EXCLUDES(comp_mu_);

  SnapshotStore& store_;
  const graph::CsrGraph& graph_;
  // The legacy Matrix ctor materializes owned_view_ and points features_
  // at it; the FeatureStore ctor points at the caller's store directly.
  data::FeatureStore owned_view_;
  const data::FeatureStore* features_;
  const ServerOptions opts_;

  AdmissionQueue queue_;
  ServerStats stats_;

  Fd listener_;
  Fd epoll_;
  Fd wake_efd_;      // workers -> IO thread: completions ready
  Fd shutdown_efd_;  // anyone -> IO thread: start draining
  std::uint16_t port_ = 0;
  std::atomic<int> shutdown_fd_{-1};  // for async-signal-safe access

  std::map<std::uint64_t, Conn> conns_;  // IO-thread-confined
  std::uint64_t next_conn_id_ = 16;      // ids 0/1/2 tag listener/efds
  std::uint64_t total_inflight_ = 0;     // IO-thread-confined
  bool draining_ = false;                // IO-thread-confined
  bool accept_paused_ = false;           // IO-thread-confined

  util::Mutex comp_mu_;
  std::vector<Completion> completions_ GUARDED_BY(comp_mu_);

  std::thread io_thread_;
  std::vector<std::thread> workers_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
};

}  // namespace gsgcn::serve

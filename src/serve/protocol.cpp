#include "serve/protocol.hpp"

#include <cstring>

namespace gsgcn::serve {

namespace {

template <class T>
void put_le(std::string& out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

/// Bounds-checked little-endian cursor over an untrusted payload.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  template <class T>
  bool take(T& v, const char* what, std::string& err) {
    if (bytes_.size() - pos_ < sizeof(T)) {
      err = std::string("truncated at ") + what;
      return false;
    }
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool take_bytes(void* dst, std::size_t n, const char* what,
                  std::string& err) {
    if (bytes_.size() - pos_ < n) {
      err = std::string("truncated at ") + what;
      return false;
    }
    std::memcpy(dst, bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  bool at_end() const { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

bool check_consumed(const Reader& r, std::string& err) {
  if (!r.at_end()) {
    err = "trailing bytes after message";
    return false;
  }
  return true;
}

}  // namespace

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kOverloaded: return "overloaded";
    case Status::kBadRequest: return "bad_request";
    case Status::kShuttingDown: return "shutting_down";
    case Status::kInternalError: return "internal_error";
  }
  return "unknown";
}

std::string encode_request(const Request& req) {
  std::string out;
  out.reserve(17 + 4 + req.vertices.size() * sizeof(graph::Vid));
  put_le(out, static_cast<std::uint8_t>(req.op));
  put_le(out, req.request_id);
  put_le(out, req.deadline_ms);
  put_le(out, static_cast<std::uint32_t>(req.vertices.size()));
  for (const graph::Vid v : req.vertices) put_le(out, v);
  return out;
}

bool decode_request(std::string_view payload, Request& out, std::string& err) {
  Reader r(payload);
  std::uint8_t op = 0;
  if (!r.take(op, "op", err)) return false;
  if (op != static_cast<std::uint8_t>(Op::kInfer) &&
      op != static_cast<std::uint8_t>(Op::kPing)) {
    err = "unknown op " + std::to_string(op);
    return false;
  }
  out.op = static_cast<Op>(op);
  if (!r.take(out.request_id, "request_id", err)) return false;
  if (!r.take(out.deadline_ms, "deadline_ms", err)) return false;
  std::uint32_t n = 0;
  if (!r.take(n, "vertex count", err)) return false;
  if (n > kMaxVerticesPerRequest) {
    err = "vertex count " + std::to_string(n) + " exceeds limit " +
          std::to_string(kMaxVerticesPerRequest);
    return false;
  }
  out.vertices.resize(n);
  if (n > 0 &&
      !r.take_bytes(out.vertices.data(), n * sizeof(graph::Vid), "vertex ids",
                    err)) {
    return false;
  }
  return check_consumed(r, err);
}

std::string encode_response(const Response& resp) {
  std::string out;
  out.reserve(29 + resp.logits.size() * sizeof(float) + 4 +
              resp.message.size());
  put_le(out, static_cast<std::uint8_t>(resp.status));
  put_le(out, resp.request_id);
  put_le(out, resp.snapshot_seq);
  put_le(out, resp.rows);
  put_le(out, resp.cols);
  for (const float v : resp.logits) put_le(out, v);
  put_le(out, static_cast<std::uint32_t>(resp.message.size()));
  out.append(resp.message);
  return out;
}

bool decode_response(std::string_view payload, Response& out,
                     std::string& err) {
  Reader r(payload);
  std::uint8_t status = 0;
  if (!r.take(status, "status", err)) return false;
  if (status > static_cast<std::uint8_t>(Status::kInternalError)) {
    err = "unknown status " + std::to_string(status);
    return false;
  }
  out.status = static_cast<Status>(status);
  if (!r.take(out.request_id, "request_id", err)) return false;
  if (!r.take(out.snapshot_seq, "snapshot_seq", err)) return false;
  if (!r.take(out.rows, "rows", err)) return false;
  if (!r.take(out.cols, "cols", err)) return false;
  const std::uint64_t cells =
      static_cast<std::uint64_t>(out.rows) * out.cols;
  // rows*cols already passed the 16 MB frame cap implicitly, but check
  // against the actual remaining bytes before the allocation anyway.
  if (cells * sizeof(float) > payload.size()) {
    err = "logit block larger than payload";
    return false;
  }
  out.logits.resize(cells);
  if (cells > 0 &&
      !r.take_bytes(out.logits.data(), cells * sizeof(float), "logits",
                    err)) {
    return false;
  }
  std::uint32_t msg_len = 0;
  if (!r.take(msg_len, "message length", err)) return false;
  if (msg_len > payload.size()) {
    err = "message length larger than payload";
    return false;
  }
  out.message.resize(msg_len);
  if (msg_len > 0 &&
      !r.take_bytes(out.message.data(), msg_len, "message", err)) {
    return false;
  }
  return check_consumed(r, err);
}

std::string make_error_frame(Status status, const std::string& message) {
  Response resp;
  resp.status = status;
  resp.message = message;
  return util::frame_encode(kWireFrame, encode_response(resp));
}

}  // namespace gsgcn::serve

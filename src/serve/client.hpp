#pragma once
// Blocking client with retries, reconnects, and deterministic backoff.
//
// The failure model it absorbs (everything the robustness tests throw at
// the wire): connection refused while the server restarts, ECONNRESET /
// EOF mid-exchange after a crash, receive timeouts, and corrupt frames.
// Any of those triggers reconnect + resend with exponential backoff and
// seeded jitter (deterministic per client — load-generator runs
// reproduce). OVERLOADED replies also back off and retry: shedding is the
// server asking the client to slow down, and the client honoring that is
// what makes graceful degradation graceful end to end.
//
// Not thread-safe; a load generator runs one client per thread with
// decorrelated jitter streams (Xoshiro256::stream).

#include <cstdint>
#include <string>

#include "serve/protocol.hpp"
#include "serve/socket.hpp"
#include "util/rng.hpp"

namespace gsgcn::serve {

struct ClientOptions {
  std::uint16_t port = 0;
  int max_attempts = 8;          // total tries per call (first + retries)
  double base_backoff_ms = 5.0;  // doubles per attempt...
  double max_backoff_ms = 500.0; // ...capped here, x U[0.5, 1) jitter
  double recv_timeout_ms = 5000.0;
  std::uint64_t seed = 1;        // jitter stream
};

struct ClientStats {
  std::uint64_t calls = 0;
  std::uint64_t retries = 0;     // attempts beyond the first
  std::uint64_t reconnects = 0;  // sockets re-established
  std::uint64_t io_errors = 0;   // send/recv/frame failures absorbed
  std::uint64_t overloaded = 0;  // OVERLOADED replies absorbed by retry
};

class RetryingClient {
 public:
  explicit RetryingClient(ClientOptions options);

  /// One request/response exchange. Returns true with the server's reply
  /// (which may still be an error status — kOverloaded if every attempt
  /// was shed, etc.); false with `err` set when the transport could not be
  /// made to work within max_attempts.
  bool call(const Request& req, Response& resp, std::string& err);

  const ClientStats& stats() const { return stats_; }
  bool connected() const { return fd_.valid(); }
  void disconnect() { fd_.reset(); }

 private:
  bool ensure_connected(std::string& err);
  /// One attempt on the current connection. False = transport-level
  /// failure (caller reconnects and retries).
  bool attempt(const Request& req, Response& resp, std::string& err);
  void backoff(int attempt_idx);

  ClientOptions opts_;
  Fd fd_;
  std::string inbuf_;
  util::Xoshiro256 rng_;
  ClientStats stats_;
};

}  // namespace gsgcn::serve

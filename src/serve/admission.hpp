#pragma once
// Bounded admission queue with deadlines, batching, and load shedding —
// the overload-control core of the serving engine.
//
// Design rules (cf. the WeChat overload-control line of work: shed early,
// shed explicitly, bound everything):
//
//   1. The queue is BOUNDED. push() on a full queue fails immediately
//      with kQueueFull — the caller answers OVERLOADED instead of letting
//      latency grow without bound. The IO thread additionally pauses
//      accept() above a high watermark (see server.cpp), so backpressure
//      reaches the kernel listen queue, not just this buffer.
//
//   2. Every ticket carries a deadline. pop_batch() sheds tickets whose
//      deadline has already passed at dequeue time — work that cannot
//      possibly be answered in time is the cheapest work to drop, and
//      dropping it first is what keeps goodput flat past saturation.
//
//   3. Batching is a window, not a wait-for-full: the first ticket opens
//      a batch window (batch_window from ITS arrival); the popper
//      collects whatever arrives inside the window up to max_batch, then
//      runs. Under light load the window is the only added latency;
//      under heavy load batches fill instantly and the window never
//      matters.
//
//   4. close() is drain, not abandon: pushes fail with kClosed, but
//      workers keep popping until the queue is empty so every admitted
//      request gets an answer — the SIGTERM path's guarantee.

#include <chrono>
#include <cstdint>
#include <deque>
#include <vector>

#include "serve/protocol.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace gsgcn::serve {

using SteadyTime = std::chrono::steady_clock::time_point;

/// One admitted request, tagged with its origin connection.
struct Ticket {
  std::uint64_t conn_id = 0;
  Request request;
  SteadyTime enqueued{};
  SteadyTime deadline{};
  bool has_deadline = false;
};

enum class Admit : std::uint8_t {
  kAdmitted = 0,
  kQueueFull = 1,  // shed now; answer OVERLOADED
  kClosed = 2,     // draining; answer SHUTTING_DOWN
};

class AdmissionQueue {
 public:
  /// `capacity` > 0: maximum queued tickets (not counting in-flight
  /// batches already popped by workers).
  explicit AdmissionQueue(std::size_t capacity);

  Admit push(Ticket ticket) EXCLUDES(mu_);

  /// Block for the next batch. On return, `batch` holds up to max_batch
  /// live tickets and `expired` the tickets whose deadline passed while
  /// queued (both cleared first; either may come back empty). Returns
  /// false only when the queue is closed AND fully drained — the worker
  /// exit condition.
  bool pop_batch(std::size_t max_batch, std::chrono::nanoseconds window,
                 std::vector<Ticket>& batch, std::vector<Ticket>& expired)
      EXCLUDES(mu_);

  /// Stop admitting; wake all poppers. Already-queued tickets still drain.
  void close() EXCLUDES(mu_);

  std::size_t depth() const EXCLUDES(mu_);
  bool closed() const EXCLUDES(mu_);
  std::size_t capacity() const { return capacity_; }

  /// Lifetime shed/admit counters (monotone, scraped by ServerStats).
  std::uint64_t admitted_total() const EXCLUDES(mu_);
  std::uint64_t rejected_full_total() const EXCLUDES(mu_);

 private:
  const std::size_t capacity_;
  mutable util::Mutex mu_;
  util::CondVar cv_;
  std::deque<Ticket> q_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
  std::uint64_t admitted_ GUARDED_BY(mu_) = 0;
  std::uint64_t rejected_full_ GUARDED_BY(mu_) = 0;
};

}  // namespace gsgcn::serve

#include "serve/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/fault.hpp"

namespace gsgcn::serve {

void Fd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Fd create_listener(std::uint16_t port, int backlog, std::string& err) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    err = std::string("socket: ") + std::strerror(errno);
    return Fd();
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    err = std::string("bind: ") + std::strerror(errno);
    return Fd();
  }
  if (::listen(fd.get(), backlog) != 0) {
    err = std::string("listen: ") + std::strerror(errno);
    return Fd();
  }
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

Fd connect_to(std::uint16_t port, std::string& err) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    err = std::string("socket: ") + std::strerror(errno);
    return Fd();
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    err = std::string("connect: ") + std::strerror(errno);
    return Fd();
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

ssize_t sock_read(int fd, void* buf, std::size_t n) {
  if (util::fault_point("serve.sock.read_eagain")) {
    errno = EAGAIN;
    return -1;
  }
  if (util::fault_point("serve.sock.read_reset")) {
    errno = ECONNRESET;
    return -1;
  }
  if (n > 1 && util::fault_point("serve.sock.short_read")) n = 1;
  return ::recv(fd, buf, n, 0);
}

ssize_t sock_write(int fd, const void* buf, std::size_t n) {
  if (util::fault_point("serve.sock.write_eagain")) {
    errno = EAGAIN;
    return -1;
  }
  if (util::fault_point("serve.sock.write_reset")) {
    errno = ECONNRESET;
    return -1;
  }
  if (n > 1 && util::fault_point("serve.sock.short_write")) n = 1;
  // MSG_NOSIGNAL: a peer that closed mid-write yields EPIPE, not SIGPIPE.
  return ::send(fd, buf, n, MSG_NOSIGNAL);
}

}  // namespace gsgcn::serve

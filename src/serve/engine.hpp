#pragma once
// Batched neighborhood-closure inference for serving.
//
// A request asks for logits of a handful of root vertices; running
// infer_logits over the full graph per batch would make latency scale
// with |V| instead of with the batch. Instead the engine takes the L-hop
// in-neighborhood closure of the batch's roots (L = num_layers), induces
// that subgraph, and runs the regular packed-GEMM inference on it.
//
// Exactness: layer k of a GCN needs exact h^(k-1) for a vertex's
// neighbors, so by induction a root's logits depend only on vertices
// within L hops — all of which are in the closure with their full
// neighbor lists intact. For the mean and sum aggregators the served
// logits therefore equal full-graph inference up to floating-point
// summation order (neighbor lists are renumbered by the closure). The
// symmetric-normalized aggregator also reads the *neighbors'* degrees,
// which are truncated for boundary vertices of the closure, so its
// boundary contribution is approximate; serve_cli defaults to mean.
//
// One engine per worker thread: the Inducer and scratch matrices are
// stateful and not thread-safe (by design — no locks on the hot path).

#include <cstdint>
#include <vector>

#include "data/feature_store.hpp"
#include "gcn/inference.hpp"
#include "graph/csr.hpp"
#include "graph/subgraph.hpp"
#include "serve/admission.hpp"
#include "serve/protocol.hpp"
#include "serve/snapshot.hpp"
#include "tensor/matrix.hpp"

namespace gsgcn::serve {

class InferenceEngine {
 public:
  /// `features` is the serving feature source — a zero-copy fp32 view or
  /// a compressed store; the closure gather widens rows on the fly either
  /// way. Must outlive the engine.
  InferenceEngine(const graph::CsrGraph& graph,
                  const data::FeatureStore& features);

  /// Answer every ticket in `batch` against `snap`, appending one Response
  /// per ticket to `out` (in batch order). Per-ticket failures (vertex id
  /// out of range) yield kBadRequest for that ticket only; the rest of the
  /// batch still computes. Throws only on internal errors (injected
  /// faults, allocation failure) — the caller maps that to kInternalError.
  void run_batch(const ModelSnapshot& snap, const std::vector<Ticket>& batch,
                 std::vector<Response>& out, int threads = 0);

  /// Closure size of the last run_batch (observability: how much graph a
  /// batch actually touched).
  std::size_t last_closure_size() const { return closure_.size(); }

 private:
  /// Local row of original vertex v in the current closure, adding it if
  /// unseen. Returns the local id.
  graph::Vid closure_add(graph::Vid v);

  const graph::CsrGraph& g_;
  const data::FeatureStore& features_;
  graph::Inducer inducer_;
  gcn::InferenceScratch scratch_;
  tensor::Matrix batch_x_;

  // Epoch-stamped membership map, same trick as graph::Inducer: avoids an
  // O(|V|) clear per batch.
  std::vector<graph::Vid> closure_;
  std::vector<std::uint32_t> stamp_;
  std::vector<graph::Vid> local_of_;
  std::uint32_t epoch_ = 0;
};

}  // namespace gsgcn::serve

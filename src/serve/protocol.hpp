#pragma once
// Wire protocol of the online inference service.
//
// Every message is one CRC-32 frame (util/frame.hpp — the same 24-byte
// magic/version/size/crc envelope as the on-disk checkpoints, with its own
// magic) whose payload is a little-endian packed struct:
//
//   request payload                      response payload
//   ---------------                      ----------------
//   u8   op      (1=infer, 2=ping)       u8   status (Status below)
//   u64  request_id                      u64  request_id (echoed)
//   u32  deadline_ms (0 = server         u64  snapshot_seq (model version
//        default)                             that served the request)
//   u32  n_vertices                      u32  rows
//   u32  vertex_id[n]                    u32  cols
//                                        f32  logits[rows*cols]
//                                        u32  message_len
//                                        u8   message[message_len]
//
// Request ids are caller-chosen and echoed verbatim; a client may pipeline
// requests on one connection and match responses by id (the server
// preserves per-connection order anyway, but the id makes retries across
// reconnects unambiguous).
//
// Robustness contract: decode_* never throws on malformed bytes — it
// returns false with a reason, and the server answers an error frame and
// closes. Sizes are validated before any allocation, so hostile payloads
// cannot OOM the process; the frame layer has already CRC-checked the
// bytes, so failures here mean a protocol bug or version skew, not line
// noise.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/csr.hpp"
#include "util/frame.hpp"

namespace gsgcn::serve {

/// Frame envelope of the wire protocol ("gsrvwp1\0"). 16 MB cap: the
/// largest legitimate response (kMaxVerticesPerRequest rows of a few
/// hundred f32 classes) fits with a wide margin, and a corrupt length
/// field can never trigger a giant allocation.
inline constexpr util::FrameSpec kWireFrame{0x0031707677727367ULL, 1,
                                            16ull << 20};

inline constexpr std::uint32_t kMaxVerticesPerRequest = 1u << 16;

enum class Op : std::uint8_t {
  kInfer = 1,  // logits for a batch of vertex ids
  kPing = 2,   // liveness + snapshot version probe (no compute)
};

enum class Status : std::uint8_t {
  kOk = 0,
  kOverloaded = 1,     // shed: queue full or deadline already expired
  kBadRequest = 2,     // malformed payload or out-of-range vertex id
  kShuttingDown = 3,   // server is draining; retry against a replica
  kInternalError = 4,  // inference failed; request may be retried
};

const char* status_name(Status s);

struct Request {
  Op op = Op::kInfer;
  std::uint64_t request_id = 0;
  std::uint32_t deadline_ms = 0;  // 0 = use the server's default
  std::vector<graph::Vid> vertices;
};

struct Response {
  Status status = Status::kOk;
  std::uint64_t request_id = 0;
  std::uint64_t snapshot_seq = 0;
  std::uint32_t rows = 0;
  std::uint32_t cols = 0;
  std::vector<float> logits;  // rows * cols, row-major
  std::string message;        // human-readable reason on error statuses
};

/// Payload bytes (not yet framed — callers wrap with frame_encode so the
/// fault-injection tests can corrupt the boundary deliberately).
std::string encode_request(const Request& req);
std::string encode_response(const Response& resp);

/// Strict decode of one payload. On failure returns false and sets `err`
/// to the reason; `out` may be partially written.
bool decode_request(std::string_view payload, Request& out, std::string& err);
bool decode_response(std::string_view payload, Response& out,
                     std::string& err);

/// Convenience: a framed error response (the server's answer to a frame
/// or payload it could not parse, where no request id is known).
std::string make_error_frame(Status status, const std::string& message);

}  // namespace gsgcn::serve

#include "serve/snapshot.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "gcn/adam.hpp"
#include "obs/metrics.hpp"
#include "util/fault.hpp"

namespace gsgcn::serve {

SnapshotStore::SnapshotStore(std::shared_ptr<const ModelSnapshot> initial)
    : current_(std::move(initial)) {
  if (current_ == nullptr) {
    throw std::invalid_argument("SnapshotStore: initial snapshot is null");
  }
}

std::shared_ptr<const ModelSnapshot> SnapshotStore::current() const {
  util::MutexLock lock(mu_);
  return current_;
}

void SnapshotStore::publish(std::shared_ptr<const ModelSnapshot> snap) {
  if (snap == nullptr) {
    throw std::invalid_argument("SnapshotStore::publish: null snapshot");
  }
  util::MutexLock lock(mu_);
  current_ = std::move(snap);
  ++swaps_;
}

std::uint64_t SnapshotStore::swaps() const {
  util::MutexLock lock(mu_);
  return swaps_;
}

SnapshotWatcher::SnapshotWatcher(std::string dir, gcn::ModelConfig cfg,
                                 SnapshotStore& store)
    : cfg_(std::move(cfg)), store_(store), mgr_(std::move(dir)) {}

SnapshotWatcher::~SnapshotWatcher() { stop(); }

bool SnapshotWatcher::poll_once() {
  util::MutexLock lock(state_mu_);
  std::string payload;
  int epoch = -1;
  if (!mgr_.load_latest(payload, &epoch)) return false;  // nothing valid yet
  if (epoch <= loaded_epoch_) return false;              // already serving it

  // Decode into a FRESH model so a structurally-corrupt payload (valid
  // CRC, wrong shapes — e.g. the trainer was reconfigured) can never
  // damage the published snapshot: decode_checkpoint validates every
  // shape before mutating, and we only publish after it returns.
  try {
    util::fault_point("serve.snapshot_decode");
    gcn::GcnModel model(cfg_);
    gcn::Adam opt;
    model.attach(opt);
    gcn::decode_checkpoint(payload, model, opt);
    auto snap = std::make_shared<const ModelSnapshot>(next_seq_, epoch,
                                                      std::move(model));
    ++next_seq_;
    loaded_epoch_ = epoch;
    store_.publish(std::move(snap));
    GSGCN_COUNTER_INC("serve.swap");
    return true;
  } catch (const std::exception&) {
    // Last-known-good stays published. The epoch is NOT marked loaded:
    // if the trainer rewrites the file correctly later, a future poll
    // picks it up.
    ++rejected_;
    GSGCN_COUNTER_INC("serve.swap_rejected");
    return false;
  }
}

void SnapshotWatcher::start(double interval_ms) {
  {
    util::MutexLock lock(poll_mu_);
    if (poller_.joinable()) {
      throw std::logic_error("SnapshotWatcher::start: already running");
    }
    stop_requested_ = false;
  }
  const auto interval = std::chrono::duration<double, std::milli>(
      interval_ms < 1.0 ? 1.0 : interval_ms);
  poller_ = std::thread([this, interval] {
    for (;;) {
      {
        util::MutexLock lock(poll_mu_);
        poll_cv_.wait_for(
            poll_mu_,
            std::chrono::duration_cast<std::chrono::nanoseconds>(interval),
            [&] {
              poll_mu_.AssertHeld();  // wait predicates run with the lock held
              return stop_requested_;
            });
        if (stop_requested_) return;
      }
      poll_once();
    }
  });
}

void SnapshotWatcher::stop() {
  {
    util::MutexLock lock(poll_mu_);
    stop_requested_ = true;
    poll_cv_.notify_all();
  }
  if (poller_.joinable()) poller_.join();
}

int SnapshotWatcher::loaded_epoch() const {
  util::MutexLock lock(state_mu_);
  return loaded_epoch_;
}

std::uint64_t SnapshotWatcher::rejected() const {
  util::MutexLock lock(state_mu_);
  return rejected_;
}

std::uint64_t SnapshotWatcher::fallbacks() const {
  util::MutexLock lock(state_mu_);
  return mgr_.fallbacks();
}

}  // namespace gsgcn::serve

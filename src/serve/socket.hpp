#pragma once
// Thin POSIX socket helpers with deterministic wire-fault injection.
//
// All serving IO funnels through sock_read/sock_write so the fault
// injector can perturb the wire without a proxy process:
//
//   serve.sock.read_eagain   report-armed: return -1/EAGAIN (no syscall)
//   serve.sock.read_reset    report-armed: return -1/ECONNRESET
//   serve.sock.short_read    report-armed: clamp the read to 1 byte
//   serve.sock.write_eagain  report-armed: return -1/EAGAIN (no syscall)
//   serve.sock.write_reset   report-armed: return -1/ECONNRESET
//   serve.sock.short_write   report-armed: clamp the write to 1 byte
//
// Short reads/writes are not errors — they force the incremental
// frame-decode and pending-write paths that rarely trigger on loopback;
// EAGAIN/ECONNRESET exercise the retry and reconnect paths. The tests arm
// these with probability triggers to shake out ordering assumptions.

#include <cstddef>
#include <cstdint>
#include <string>
#include <sys/types.h>

namespace gsgcn::serve {

/// RAII fd (close on destruction; -1 = empty).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Listening TCP socket on 127.0.0.1:`port` (0 = kernel-assigned; read it
/// back with local_port). Returns an invalid Fd and sets `err` on failure.
Fd create_listener(std::uint16_t port, int backlog, std::string& err);

/// Port a bound socket actually listens on (0 on error).
std::uint16_t local_port(int fd);

/// Blocking connect to 127.0.0.1:`port`. Invalid Fd + `err` on failure.
Fd connect_to(std::uint16_t port, std::string& err);

bool set_nonblocking(int fd);

/// read(2)/write(2) with the fault hooks above. Semantics are exactly the
/// syscalls': >0 bytes moved, 0 EOF (read), -1 with errno set.
ssize_t sock_read(int fd, void* buf, std::size_t n);
ssize_t sock_write(int fd, const void* buf, std::size_t n);

}  // namespace gsgcn::serve

#pragma once
// Hot-swappable model snapshots.
//
// The serving invariant: a worker thread that picked up a snapshot keeps
// computing on it untouched for the whole batch, while the watcher may
// concurrently publish a newer one. Immutability + shared_ptr gives this
// for free — SnapshotStore::current() hands out a shared_ptr<const ...>,
// publish() swaps the stored pointer under a mutex, and the old snapshot
// dies when its last in-flight batch completes. No request is ever
// dropped or blocked by a swap.
//
// The watcher side is deliberately paranoid, because the checkpoint
// directory is written by a separate trainer process that can crash
// mid-write, be killed between temp-write and rename, or produce a
// checkpoint for a differently-shaped model:
//   - files failing the magic/version/size/CRC gate are skipped by
//     CheckpointManager::load_latest (tmp files are never even listed);
//   - a payload that passes CRC but fails structural validation
//     (decode_checkpoint throws on any shape mismatch) is rejected;
//   - in every failure case the last-known-good snapshot stays published
//     and the rejection is counted, so degraded means "stale model",
//     never "no model" or "torn model".

#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "gcn/checkpoint.hpp"
#include "gcn/model.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace gsgcn::serve {

/// One immutable published model version. `seq` increases by 1 per
/// publish; `epoch` is the training epoch of the source checkpoint
/// (-1 for an initial/randomly-initialized model with no checkpoint).
struct ModelSnapshot {
  std::uint64_t seq = 0;
  int epoch = -1;
  gcn::GcnModel model;

  ModelSnapshot(std::uint64_t seq_, int epoch_, gcn::GcnModel model_)
      : seq(seq_), epoch(epoch_), model(std::move(model_)) {}
};

/// Atomic published-snapshot cell.
class SnapshotStore {
 public:
  explicit SnapshotStore(std::shared_ptr<const ModelSnapshot> initial);

  /// The currently published snapshot (never null).
  std::shared_ptr<const ModelSnapshot> current() const EXCLUDES(mu_);

  /// Atomically replace the published snapshot. In-flight holders of the
  /// previous one are unaffected.
  void publish(std::shared_ptr<const ModelSnapshot> snap) EXCLUDES(mu_);

  /// Publishes since construction (the serve.swap counter's source).
  std::uint64_t swaps() const EXCLUDES(mu_);

 private:
  mutable util::Mutex mu_;
  std::shared_ptr<const ModelSnapshot> current_ GUARDED_BY(mu_);
  std::uint64_t swaps_ GUARDED_BY(mu_) = 0;
};

/// Polls a checkpoint directory and publishes validated new checkpoints
/// into a SnapshotStore.
class SnapshotWatcher {
 public:
  /// `cfg` must describe the architecture the trainer checkpoints (same
  /// in_dim/hidden/layers/classes/aggregator); shape mismatches are
  /// caught per-file and rejected.
  SnapshotWatcher(std::string dir, gcn::ModelConfig cfg,
                  SnapshotStore& store);
  ~SnapshotWatcher();

  SnapshotWatcher(const SnapshotWatcher&) = delete;
  SnapshotWatcher& operator=(const SnapshotWatcher&) = delete;

  /// One poll: if the directory's newest valid checkpoint is from a newer
  /// epoch than the last published one, decode and publish it. Returns
  /// true iff a swap happened. Never throws on corrupt/mismatched files —
  /// those increment rejected() and keep the last-known-good.
  bool poll_once() EXCLUDES(state_mu_);

  /// Background polling at `interval_ms`. stop() (or destruction) joins.
  void start(double interval_ms) EXCLUDES(state_mu_);
  void stop() EXCLUDES(state_mu_);

  /// Epoch of the most recently published checkpoint (-1 = none yet).
  int loaded_epoch() const EXCLUDES(state_mu_);
  /// Checkpoints that passed the CRC gate but failed structural
  /// validation (decode threw). CRC-level skips are fallbacks().
  std::uint64_t rejected() const EXCLUDES(state_mu_);
  /// Files skipped by the frame gate during polling.
  std::uint64_t fallbacks() const EXCLUDES(state_mu_);

 private:
  gcn::ModelConfig cfg_;
  SnapshotStore& store_;

  mutable util::Mutex state_mu_;
  gcn::CheckpointManager mgr_ GUARDED_BY(state_mu_);
  int loaded_epoch_ GUARDED_BY(state_mu_) = -1;
  std::uint64_t next_seq_ GUARDED_BY(state_mu_) = 1;
  std::uint64_t rejected_ GUARDED_BY(state_mu_) = 0;

  util::Mutex poll_mu_;
  util::CondVar poll_cv_;
  bool stop_requested_ GUARDED_BY(poll_mu_) = false;
  std::thread poller_;
};

}  // namespace gsgcn::serve

#include "serve/admission.hpp"

#include <stdexcept>
#include <utility>

namespace gsgcn::serve {

AdmissionQueue::AdmissionQueue(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("AdmissionQueue: capacity must be > 0");
  }
}

Admit AdmissionQueue::push(Ticket ticket) {
  util::MutexLock lock(mu_);
  if (closed_) return Admit::kClosed;
  if (q_.size() >= capacity_) {
    ++rejected_full_;
    return Admit::kQueueFull;
  }
  q_.push_back(std::move(ticket));
  ++admitted_;
  cv_.notify_one();
  return Admit::kAdmitted;
}

bool AdmissionQueue::pop_batch(std::size_t max_batch,
                               std::chrono::nanoseconds window,
                               std::vector<Ticket>& batch,
                               std::vector<Ticket>& expired) {
  batch.clear();
  expired.clear();
  if (max_batch == 0) max_batch = 1;

  util::MutexLock lock(mu_);
  // Wait for the first ticket (or close+drain).
  cv_.wait(mu_, [&] {
    mu_.AssertHeld();  // wait predicates run with the lock held
    return !q_.empty() || closed_;
  });
  if (q_.empty()) return false;  // closed and drained

  // The batch window opens at the FIRST ticket's arrival, not at pop time:
  // a popper that was busy with the previous batch must not add a fresh
  // window of latency on top of the queueing delay already paid.
  const SteadyTime window_end = q_.front().enqueued + window;
  cv_.wait_until(mu_, window_end, [&] {
    mu_.AssertHeld();  // wait predicates run with the lock held
    return q_.size() >= max_batch || closed_;
  });

  const SteadyTime now = std::chrono::steady_clock::now();
  while (!q_.empty() && batch.size() < max_batch) {
    Ticket t = std::move(q_.front());
    q_.pop_front();
    if (t.has_deadline && t.deadline <= now) {
      expired.push_back(std::move(t));  // shed: cannot answer in time
    } else {
      batch.push_back(std::move(t));
    }
  }
  // Shedding may have freed batch slots while later live tickets remain;
  // that's fine — they seed the next window with their own arrival time.
  if (!q_.empty()) cv_.notify_one();
  return true;
}

void AdmissionQueue::close() {
  util::MutexLock lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

std::size_t AdmissionQueue::depth() const {
  util::MutexLock lock(mu_);
  return q_.size();
}

bool AdmissionQueue::closed() const {
  util::MutexLock lock(mu_);
  return closed_;
}

std::uint64_t AdmissionQueue::admitted_total() const {
  util::MutexLock lock(mu_);
  return admitted_;
}

std::uint64_t AdmissionQueue::rejected_full_total() const {
  util::MutexLock lock(mu_);
  return rejected_full_;
}

}  // namespace gsgcn::serve

#include "serve/client.hpp"

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <sys/socket.h>
#include <sys/time.h>
#include <thread>

namespace gsgcn::serve {

RetryingClient::RetryingClient(ClientOptions options)
    : opts_(options), rng_(options.seed) {}

bool RetryingClient::ensure_connected(std::string& err) {
  if (fd_.valid()) return true;
  fd_ = connect_to(opts_.port, err);
  if (!fd_.valid()) return false;
  if (opts_.recv_timeout_ms > 0) {
    timeval tv{};
    const long total_us = static_cast<long>(opts_.recv_timeout_ms * 1000.0);
    tv.tv_sec = total_us / 1000000;
    tv.tv_usec = total_us % 1000000;
    ::setsockopt(fd_.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  inbuf_.clear();  // stale bytes belong to the previous connection
  ++stats_.reconnects;
  return true;
}

void RetryingClient::backoff(int attempt_idx) {
  double ms = opts_.base_backoff_ms * std::ldexp(1.0, attempt_idx);
  if (ms > opts_.max_backoff_ms) ms = opts_.max_backoff_ms;
  ms *= 0.5 + 0.5 * rng_.uniform();  // jitter: decorrelate retry storms
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

bool RetryingClient::attempt(const Request& req, Response& resp,
                             std::string& err) {
  const std::string framed = util::frame_encode(kWireFrame,
                                                encode_request(req));
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t w =
        sock_write(fd_.get(), framed.data() + sent, framed.size() - sent);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
    err = std::string("send: ") + std::strerror(errno);
    return false;
  }

  char buf[4096];
  for (;;) {
    std::string payload;
    std::size_t consumed = 0;
    const util::FrameStatus st = util::frame_try_decode(
        kWireFrame, inbuf_.data(), inbuf_.size(), payload, consumed);
    if (st == util::FrameStatus::kOk) {
      inbuf_.erase(0, consumed);
      if (!decode_response(payload, resp, err)) return false;
      if (resp.request_id != req.request_id) {
        // A reply to an earlier attempt that raced with a reconnect; this
        // connection is fresh, so ids can only mismatch on server bugs.
        err = "response id mismatch";
        return false;
      }
      return true;
    }
    if (st != util::FrameStatus::kNeedMore) {
      err = std::string("bad frame from server: ") + util::frame_status_name(st);
      return false;
    }
    const ssize_t r = sock_read(fd_.get(), buf, sizeof(buf));
    if (r > 0) {
      inbuf_.append(buf, static_cast<std::size_t>(r));
      continue;
    }
    if (r == 0) {
      err = "connection closed by server";
      return false;
    }
    if (errno == EINTR) continue;
    err = std::string("recv: ") + std::strerror(errno);  // incl. timeout
    return false;
  }
}

bool RetryingClient::call(const Request& req, Response& resp,
                          std::string& err) {
  ++stats_.calls;
  const int attempts = opts_.max_attempts < 1 ? 1 : opts_.max_attempts;
  err.clear();
  bool last_was_shed = false;
  for (int a = 0; a < attempts; ++a) {
    if (a > 0) {
      ++stats_.retries;
      backoff(a - 1);
    }
    std::string attempt_err;
    if (!ensure_connected(attempt_err)) {
      ++stats_.io_errors;
      err = attempt_err;
      last_was_shed = false;
      continue;  // server down / restarting: back off and re-dial
    }
    if (!attempt(req, resp, attempt_err)) {
      ++stats_.io_errors;
      err = attempt_err;
      fd_.reset();  // every transport failure invalidates the stream
      last_was_shed = false;
      continue;
    }
    if (resp.status == Status::kOverloaded ||
        resp.status == Status::kShuttingDown) {
      ++stats_.overloaded;
      err = resp.message;
      last_was_shed = true;
      continue;  // server asked us to slow down; keep the connection
    }
    return true;
  }
  // Out of attempts. If the LAST attempt produced a parsed shed reply,
  // surface it so callers can distinguish "shed" from "unreachable".
  return last_was_shed;
}

}  // namespace gsgcn::serve

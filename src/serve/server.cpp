#include "serve/server.hpp"

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>

#include <netinet/in.h>
#include <netinet/tcp.h>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/engine.hpp"

namespace gsgcn::serve {

namespace {

// epoll_event.data.u64 tags for the non-connection fds. Connection ids
// start at 16 so they can never collide.
constexpr std::uint64_t kListenerTag = 0;
constexpr std::uint64_t kWakeTag = 1;
constexpr std::uint64_t kShutdownTag = 2;

// Housekeeping cadence: idle reaping, queue-depth gauge, accept
// pause/resume, and the drain-complete check all run at least this often.
constexpr int kEpollTimeoutMs = 20;

void epoll_add(int epfd, int fd, std::uint64_t tag, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = tag;
  if (::epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw std::runtime_error(std::string("epoll_ctl add: ") +
                             std::strerror(errno));
  }
}

void eventfd_drain(int fd) {
  std::uint64_t n = 0;
  // Nonblocking eventfd: one read clears the counter (or EAGAIN).
  [[maybe_unused]] ssize_t r = ::read(fd, &n, sizeof(n));
}

void eventfd_signal(int fd) {
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t r = ::write(fd, &one, sizeof(one));
}

}  // namespace

Server::Server(SnapshotStore& store, const graph::CsrGraph& graph,
               const tensor::Matrix& features, ServerOptions options)
    : store_(store),
      graph_(graph),
      owned_view_(data::FeatureStore::view(features)),
      features_(&owned_view_),
      opts_(std::move(options)),
      queue_(opts_.queue_capacity) {}

Server::Server(SnapshotStore& store, const graph::CsrGraph& graph,
               const data::FeatureStore& features, ServerOptions options)
    : store_(store),
      graph_(graph),
      features_(&features),
      opts_(std::move(options)),
      queue_(opts_.queue_capacity) {}

Server::~Server() { stop(); }

void Server::start() {
  if (started_.exchange(true)) {
    throw std::logic_error("Server::start called twice");
  }
  std::string err;
  listener_ = create_listener(opts_.port, opts_.listen_backlog, err);
  if (!listener_.valid()) {
    throw std::runtime_error("Server: " + err);
  }
  if (!set_nonblocking(listener_.get())) {
    throw std::runtime_error("Server: set_nonblocking(listener) failed");
  }
  port_ = local_port(listener_.get());

  epoll_ = Fd(::epoll_create1(EPOLL_CLOEXEC));
  wake_efd_ = Fd(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  shutdown_efd_ = Fd(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  if (!epoll_.valid() || !wake_efd_.valid() || !shutdown_efd_.valid()) {
    throw std::runtime_error("Server: epoll/eventfd creation failed");
  }
  shutdown_fd_.store(shutdown_efd_.get());

  epoll_add(epoll_.get(), listener_.get(), kListenerTag, EPOLLIN);
  epoll_add(epoll_.get(), wake_efd_.get(), kWakeTag, EPOLLIN);
  epoll_add(epoll_.get(), shutdown_efd_.get(), kShutdownTag, EPOLLIN);

  const int nw = opts_.num_workers < 1 ? 1 : opts_.num_workers;
  workers_.reserve(static_cast<std::size_t>(nw));
  for (int i = 0; i < nw; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
  io_thread_ = std::thread([this] { io_main(); });
}

void Server::request_shutdown() {
  const int fd = shutdown_fd_.load(std::memory_order_acquire);
  if (fd >= 0) eventfd_signal(fd);  // async-signal-safe: one write(2)
}

void Server::wait() {
  if (io_thread_.joinable()) io_thread_.join();
}

void Server::stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  request_shutdown();
  wait();
  queue_.close();  // io_main already closed it; harmless repeat
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

// ---------------------------------------------------------------------------
// IO thread
// ---------------------------------------------------------------------------

void Server::io_main() {
  std::array<epoll_event, 64> events{};
  for (;;) {
    const int n = ::epoll_wait(epoll_.get(), events.data(),
                               static_cast<int>(events.size()),
                               kEpollTimeoutMs);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll itself failed; nothing recoverable
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      const std::uint32_t ev = events[i].events;
      if (tag == kListenerTag) {
        accept_ready();
      } else if (tag == kWakeTag) {
        eventfd_drain(wake_efd_.get());
        drain_completions();
      } else if (tag == kShutdownTag) {
        eventfd_drain(shutdown_efd_.get());
        begin_drain();
      } else {
        if (conns_.find(tag) == conns_.end()) continue;  // closed this pass
        if ((ev & (EPOLLHUP | EPOLLERR)) != 0) {
          close_conn(tag);
          continue;
        }
        bool alive = true;
        if ((ev & EPOLLIN) != 0) alive = conn_readable(tag);
        if (alive && (ev & EPOLLOUT) != 0) conn_flush(tag);
      }
    }
    housekeeping();
    if (draining_ && drain_complete()) break;
  }
  // Drain finished (or epoll died): every admitted request has been
  // answered and flushed. Tear down remaining connections.
  conns_.clear();
}

void Server::begin_drain() {
  if (draining_) return;
  draining_ = true;
  listener_.reset();  // closing removes it from the epoll set
  queue_.close();
  GSGCN_COUNTER_INC("serve.drain");
}

bool Server::drain_complete() const {
  if (total_inflight_ != 0 || queue_.depth() != 0) return false;
  for (const auto& [id, conn] : conns_) {
    if (conn.out_pos < conn.outbuf.size()) return false;
  }
  return true;
}

void Server::accept_ready() {
  for (;;) {
    const int fd = ::accept4(listener_.get(), nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN or a transient accept error: wait for next event
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const std::uint64_t id = next_conn_id_++;
    Conn conn;
    conn.fd = Fd(fd);
    conn.last_activity = std::chrono::steady_clock::now();
    try {
      epoll_add(epoll_.get(), fd, id, EPOLLIN);
    } catch (const std::exception&) {
      continue;  // Conn destructor closes the fd
    }
    conns_.emplace(id, std::move(conn));
    stats_.accepted.fetch_add(1, std::memory_order_relaxed);
    GSGCN_COUNTER_INC("serve.accepted");
  }
}

bool Server::conn_readable(std::uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return false;
  Conn& conn = it->second;

  char buf[4096];
  for (;;) {
    const ssize_t r = sock_read(conn.fd.get(), buf, sizeof(buf));
    if (r > 0) {
      conn.inbuf.append(buf, static_cast<std::size_t>(r));
      conn.last_activity = std::chrono::steady_clock::now();
      if (static_cast<std::size_t>(r) < sizeof(buf)) break;
      continue;
    }
    if (r == 0) {  // peer closed; anything unanswered is moot
      close_conn(id);
      return false;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_conn(id);
    return false;
  }

  // Parse every complete frame buffered so far.
  while (!conn.closing) {
    std::string payload;
    std::size_t consumed = 0;
    const util::FrameStatus st = util::frame_try_decode(
        kWireFrame, conn.inbuf.data(), conn.inbuf.size(), payload, consumed);
    if (st == util::FrameStatus::kNeedMore) break;
    if (st != util::FrameStatus::kOk) {
      // Garbage on the wire: answer once, then close. Never crash, never
      // guess at a resync point inside a corrupt stream.
      stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      GSGCN_COUNTER_INC("serve.protocol_error");
      conn.closing = true;
      return send_frame(id, make_error_frame(Status::kBadRequest,
                                             std::string("bad frame: ") +
                                                 util::frame_status_name(st)));
    }
    conn.inbuf.erase(0, consumed);
    if (!handle_payload(id, payload)) return false;
    // handle_payload may have flagged the connection for close.
    auto again = conns_.find(id);
    if (again == conns_.end()) return false;
  }
  return true;
}

bool Server::handle_payload(std::uint64_t id, const std::string& payload) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return false;
  Conn& conn = it->second;

  Request req;
  std::string err;
  if (!decode_request(payload, req, err)) {
    stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    GSGCN_COUNTER_INC("serve.protocol_error");
    conn.closing = true;
    return send_frame(id, make_error_frame(Status::kBadRequest, err));
  }
  stats_.requests.fetch_add(1, std::memory_order_relaxed);
  GSGCN_COUNTER_INC("serve.request");

  if (req.op == Op::kPing) {
    stats_.pings.fetch_add(1, std::memory_order_relaxed);
    Response resp;
    resp.request_id = req.request_id;
    resp.snapshot_seq = store_.current()->seq;
    return send_frame(id,
                      util::frame_encode(kWireFrame, encode_response(resp)));
  }

  Ticket ticket;
  ticket.conn_id = id;
  ticket.enqueued = std::chrono::steady_clock::now();
  const std::uint32_t deadline_ms =
      req.deadline_ms != 0 ? req.deadline_ms : opts_.default_deadline_ms;
  if (deadline_ms != 0) {
    ticket.deadline = ticket.enqueued + std::chrono::milliseconds(deadline_ms);
    ticket.has_deadline = true;
  }
  ticket.request = std::move(req);

  const std::uint64_t request_id = ticket.request.request_id;
  switch (queue_.push(std::move(ticket))) {
    case Admit::kAdmitted:
      ++conn.inflight;
      ++total_inflight_;
      return true;
    case Admit::kQueueFull: {
      stats_.shed_queue_full.fetch_add(1, std::memory_order_relaxed);
      GSGCN_COUNTER_INC("serve.shed");
      Response resp;
      resp.status = Status::kOverloaded;
      resp.request_id = request_id;
      resp.message = "admission queue full";
      return send_frame(id,
                        util::frame_encode(kWireFrame, encode_response(resp)));
    }
    case Admit::kClosed: {
      stats_.rejected_shutdown.fetch_add(1, std::memory_order_relaxed);
      Response resp;
      resp.status = Status::kShuttingDown;
      resp.request_id = request_id;
      resp.message = "server draining";
      return send_frame(id,
                        util::frame_encode(kWireFrame, encode_response(resp)));
    }
  }
  return true;
}

bool Server::send_frame(std::uint64_t id, std::string framed) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return false;
  Conn& conn = it->second;
  // Compact lazily: drop already-flushed prefix once it dominates.
  if (conn.out_pos > 0 && conn.out_pos * 2 > conn.outbuf.size()) {
    conn.outbuf.erase(0, conn.out_pos);
    conn.out_pos = 0;
  }
  conn.outbuf.append(framed);
  return conn_flush(id);
}

bool Server::conn_flush(std::uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return false;
  Conn& conn = it->second;

  while (conn.out_pos < conn.outbuf.size()) {
    const ssize_t w = sock_write(conn.fd.get(), conn.outbuf.data() + conn.out_pos,
                                 conn.outbuf.size() - conn.out_pos);
    if (w > 0) {
      conn.out_pos += static_cast<std::size_t>(w);
      conn.last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (w < 0 && errno == EINTR) continue;
    close_conn(id);  // EPIPE/ECONNRESET/...: peer is gone
    return false;
  }
  if (conn.out_pos == conn.outbuf.size()) {
    conn.outbuf.clear();
    conn.out_pos = 0;
    if (conn.closing) {
      close_conn(id);
      return false;
    }
  }
  update_epollout(id, conn);
  return true;
}

void Server::update_epollout(std::uint64_t id, Conn& conn) {
  const bool want = conn.out_pos < conn.outbuf.size();
  if (want == conn.want_write) return;
  conn.want_write = want;
  epoll_event ev{};
  ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
  ev.data.u64 = id;
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, conn.fd.get(), &ev);
}

void Server::close_conn(std::uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  // Completions for this conn's admitted tickets will be discarded on
  // arrival, so settle their inflight accounting now.
  total_inflight_ -= it->second.inflight;
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, it->second.fd.get(), nullptr);
  conns_.erase(it);
}

void Server::drain_completions() {
  std::vector<Completion> batch;
  {
    util::MutexLock lock(comp_mu_);
    batch.swap(completions_);
  }
  for (Completion& c : batch) {
    auto it = conns_.find(c.conn_id);
    if (it == conns_.end()) continue;  // conn died; accounting done at close
    Conn& conn = it->second;
    if (conn.inflight > 0) {
      --conn.inflight;
      --total_inflight_;
    }
    send_frame(c.conn_id, std::move(c.framed));
  }
}

void Server::housekeeping() {
  GSGCN_GAUGE_SET("serve.queue_depth",
                  static_cast<std::int64_t>(queue_.depth()));
  if (opts_.idle_timeout_ms > 0) {
    const auto now = std::chrono::steady_clock::now();
    const auto limit = std::chrono::duration<double, std::milli>(
        opts_.idle_timeout_ms);
    std::vector<std::uint64_t> stale;
    for (const auto& [id, conn] : conns_) {
      if (now - conn.last_activity > limit) stale.push_back(id);
    }
    for (const std::uint64_t id : stale) {
      stats_.idle_reaped.fetch_add(1, std::memory_order_relaxed);
      GSGCN_COUNTER_INC("serve.idle_reaped");
      close_conn(id);
    }
  }
  pause_or_resume_accept();
}

void Server::pause_or_resume_accept() {
  if (draining_ || !listener_.valid()) return;
  const std::size_t depth = queue_.depth();
  if (!accept_paused_ && depth >= opts_.queue_capacity) {
    // Queue saturated: push backpressure into the kernel accept queue
    // instead of admitting connections we would only shed.
    if (::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, listener_.get(), nullptr) ==
        0) {
      accept_paused_ = true;
      GSGCN_COUNTER_INC("serve.accept_paused");
    }
  } else if (accept_paused_ && depth <= opts_.queue_capacity / 2) {
    try {
      epoll_add(epoll_.get(), listener_.get(), kListenerTag, EPOLLIN);
      accept_paused_ = false;
    } catch (const std::exception&) {
      // Retried on the next housekeeping pass.
    }
  }
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

void Server::post_completions(std::vector<Completion> batch) {
  if (batch.empty()) return;
  {
    util::MutexLock lock(comp_mu_);
    for (Completion& c : batch) completions_.push_back(std::move(c));
  }
  eventfd_signal(wake_efd_.get());
}

void Server::worker_main() {
  InferenceEngine engine(graph_, *features_);
  const auto window = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double, std::milli>(opts_.batch_window_ms));

  std::vector<Ticket> batch;
  std::vector<Ticket> expired;
  std::vector<Response> responses;
  while (queue_.pop_batch(opts_.max_batch, window, batch, expired)) {
    std::vector<Completion> out;
    out.reserve(batch.size() + expired.size());

    for (const Ticket& t : expired) {
      stats_.shed_deadline.fetch_add(1, std::memory_order_relaxed);
      GSGCN_COUNTER_INC("serve.shed");
      Response resp;
      resp.status = Status::kOverloaded;
      resp.request_id = t.request.request_id;
      resp.message = "deadline expired in queue";
      out.push_back(Completion{
          t.conn_id, util::frame_encode(kWireFrame, encode_response(resp))});
    }

    if (!batch.empty()) {
      GSGCN_TRACE_SPAN("serve.batch");
      const std::shared_ptr<const ModelSnapshot> snap = store_.current();
      responses.clear();
      try {
        engine.run_batch(*snap, batch, responses, opts_.infer_threads);
      } catch (const std::exception& e) {
        responses.clear();
        for (const Ticket& t : batch) {
          Response resp;
          resp.status = Status::kInternalError;
          resp.request_id = t.request.request_id;
          resp.snapshot_seq = snap->seq;
          resp.message = e.what();
          responses.push_back(std::move(resp));
        }
      }
      stats_.batches.fetch_add(1, std::memory_order_relaxed);
      for (std::size_t i = 0; i < responses.size(); ++i) {
        const Response& resp = responses[i];
        switch (resp.status) {
          case Status::kOk:
            stats_.ok_replies.fetch_add(1, std::memory_order_relaxed);
            break;
          case Status::kBadRequest:
            stats_.bad_requests.fetch_add(1, std::memory_order_relaxed);
            break;
          case Status::kInternalError:
            stats_.internal_errors.fetch_add(1, std::memory_order_relaxed);
            GSGCN_COUNTER_INC("serve.internal_error");
            break;
          default:
            break;
        }
        out.push_back(Completion{
            batch[i].conn_id,
            util::frame_encode(kWireFrame, encode_response(resp))});
      }
    }
    post_completions(std::move(out));
  }
}

}  // namespace gsgcn::serve

// The invariant-check layer itself: macros must fire (abort with a
// diagnostic) in checked builds and compile to nothing — operands
// unevaluated — in plain Release. The same test source runs in every CI
// configuration and asserts the behavior matching how it was compiled.

#include "util/check.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "graph/csr.hpp"
#include "tensor/matrix.hpp"

namespace gsgcn {
namespace {

TEST(Check, ModeMatchesBuildDefinition) {
#if defined(GSGCN_ENABLE_CHECKS)
  EXPECT_TRUE(util::checks_enabled());
#else
  EXPECT_FALSE(util::checks_enabled());
#endif
}

TEST(CheckDeathTest, AssertFiresWhenEnabled) {
  if (!util::checks_enabled()) GTEST_SKIP() << "checks compiled out";
  EXPECT_DEATH(GSGCN_ASSERT(1 + 1 == 3, "arithmetic is broken"),
               "GSGCN_ASSERT");
}

TEST(Check, AssertPassesOnTrueCondition) {
  GSGCN_ASSERT(2 + 2 == 4, "never fires");
}

TEST(CheckDeathTest, BoundsFiresOnOutOfRange) {
  if (!util::checks_enabled()) GTEST_SKIP() << "checks compiled out";
  [[maybe_unused]] const std::size_t size = 4;
  EXPECT_DEATH(GSGCN_CHECK_BOUNDS(std::size_t{4}, size), "GSGCN_CHECK_BOUNDS");
  EXPECT_DEATH(GSGCN_CHECK_BOUNDS(-1, size), "GSGCN_CHECK_BOUNDS");
}

TEST(Check, BoundsPassesInRange) {
  GSGCN_CHECK_BOUNDS(std::size_t{0}, std::size_t{1});
  GSGCN_CHECK_BOUNDS(3, 4);
}

TEST(CheckDeathTest, FiniteFiresOnNanAndInf) {
  if (!util::checks_enabled()) GTEST_SKIP() << "checks compiled out";
  [[maybe_unused]] const float nan = std::numeric_limits<float>::quiet_NaN();
  [[maybe_unused]] const float inf = std::numeric_limits<float>::infinity();
  EXPECT_DEATH(GSGCN_CHECK_FINITE(nan), "GSGCN_CHECK_FINITE");
  EXPECT_DEATH(GSGCN_CHECK_FINITE(inf), "GSGCN_CHECK_FINITE");
}

TEST(CheckDeathTest, FiniteRangeFiresOnPoisonedEntry) {
  if (!util::checks_enabled()) GTEST_SKIP() << "checks compiled out";
  std::vector<float> xs = {0.0f, 1.0f, std::numeric_limits<float>::quiet_NaN()};
  EXPECT_DEATH(GSGCN_CHECK_FINITE_RANGE(xs.data(), xs.size(), "xs"),
               "GSGCN_CHECK_FINITE_RANGE");
}

TEST(Check, FiniteRangePassesOnCleanData) {
  std::vector<float> xs = {0.0f, -1.5f, 3.25f};
  GSGCN_CHECK_FINITE_RANGE(xs.data(), xs.size(), "xs");
  GSGCN_CHECK_FINITE(xs[1]);
}

TEST(Check, DisabledMacrosDoNotEvaluateOperands) {
  if (util::checks_enabled()) {
    GTEST_SKIP() << "checked build: operands are evaluated by design";
  }
  int evaluations = 0;
  [[maybe_unused]] auto touch = [&evaluations] {
    ++evaluations;
    return true;
  };
  GSGCN_ASSERT(touch(), "must not run");
  GSGCN_CHECK_BOUNDS((touch(), 0), 1);
  GSGCN_CHECK_FINITE((touch(), 1.0f));
  EXPECT_EQ(evaluations, 0) << "Release macros must not evaluate operands";
}

TEST(CheckDeathTest, MatrixRowOutOfBoundsCaught) {
  if (!util::checks_enabled()) GTEST_SKIP() << "checks compiled out";
  tensor::Matrix m(2, 3);
  EXPECT_DEATH((void)m.row(2), "GSGCN_CHECK_BOUNDS");
}

TEST(CheckDeathTest, CsrDegreeOutOfBoundsCaught) {
  if (!util::checks_enabled()) GTEST_SKIP() << "checks compiled out";
  const auto g = graph::CsrGraph::from_edges(3, {{0, 1}, {1, 2}});
  EXPECT_DEATH((void)g.degree(3), "GSGCN_CHECK_BOUNDS");
}

}  // namespace
}  // namespace gsgcn

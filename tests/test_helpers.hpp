#pragma once
// Shared fixtures/utilities for the gsgcn test suite.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace gsgcn::testing {

/// Small connected-ish random graph for structural tests.
inline graph::CsrGraph small_er(graph::Vid n = 200, graph::Eid m = 800,
                                std::uint64_t seed = 7) {
  util::Xoshiro256 rng(seed);
  return graph::erdos_renyi(n, m, rng);
}

/// 5-cycle with a chord: tiny, hand-checkable.
inline graph::CsrGraph tiny_graph() {
  const std::vector<graph::Edge> edges = {
      {0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 3}};
  return graph::CsrGraph::from_edges(5, edges);
}

/// Central-difference gradient check: `loss(params)` must be a pure
/// function of the matrix contents. Verifies d(loss)/d(params[i]) against
/// `analytic` at `samples` uniformly spread entries.
inline void check_gradient(tensor::Matrix& params,
                           const tensor::Matrix& analytic,
                           const std::function<double()>& loss,
                           std::size_t samples = 24, float eps = 1e-3f,
                           double rel_tol = 3e-2, double abs_tol = 1e-3) {
  ASSERT_EQ(params.rows(), analytic.rows());
  ASSERT_EQ(params.cols(), analytic.cols());
  const std::size_t n = params.size();
  const std::size_t stride = std::max<std::size_t>(1, n / samples);
  for (std::size_t i = 0; i < n; i += stride) {
    const float original = params.data()[i];
    params.data()[i] = original + eps;
    const double up = loss();
    params.data()[i] = original - eps;
    const double down = loss();
    params.data()[i] = original;
    const double numeric = (up - down) / (2.0 * static_cast<double>(eps));
    const double exact = analytic.data()[i];
    const double err = std::abs(numeric - exact);
    const double scale = std::max(std::abs(numeric), std::abs(exact));
    EXPECT_LE(err, abs_tol + rel_tol * scale)
        << "entry " << i << ": numeric=" << numeric << " analytic=" << exact;
  }
}

}  // namespace gsgcn::testing

// Graph-analysis tests: components, clustering, degree histograms and
// distances, assortativity, BFS distance estimates — all on graphs with
// hand-computable answers plus structural property checks on generators.

#include <gtest/gtest.h>

#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "test_helpers.hpp"

namespace gsgcn::graph {
namespace {

TEST(Components, SingleComponentCycle) {
  const CsrGraph g = gsgcn::testing::tiny_graph();
  EXPECT_EQ(num_components(g), 1u);
  EXPECT_EQ(largest_component_size(g), 5u);
}

TEST(Components, DisconnectedPieces) {
  // Two triangles + an isolated vertex.
  const CsrGraph g = CsrGraph::from_edges(
      7, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  EXPECT_EQ(num_components(g), 3u);
  EXPECT_EQ(largest_component_size(g), 3u);
  const auto comp = connected_components(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[0], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[6], comp[0]);
  EXPECT_NE(comp[6], comp[3]);
}

TEST(Components, EmptyGraph) {
  const CsrGraph g = CsrGraph::from_edges(0, {});
  EXPECT_EQ(num_components(g), 0u);
  EXPECT_EQ(largest_component_size(g), 0u);
}

TEST(Clustering, TriangleIsOne) {
  const CsrGraph g = CsrGraph::from_edges(3, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(g), 1.0);
  EXPECT_DOUBLE_EQ(average_local_clustering(g), 1.0);
}

TEST(Clustering, StarIsZero) {
  const CsrGraph g = CsrGraph::from_edges(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(g), 0.0);
  EXPECT_DOUBLE_EQ(average_local_clustering(g), 0.0);
}

TEST(Clustering, TriangleWithTail) {
  // Triangle {0,1,2} plus pendant 3 attached to 0.
  // Triangles = 1. Wedges: deg(0)=3 → 3, deg(1)=deg(2)=2 → 1 each, = 5.
  const CsrGraph g = CsrGraph::from_edges(4, {{0, 1}, {1, 2}, {2, 0}, {0, 3}});
  EXPECT_NEAR(global_clustering_coefficient(g), 3.0 / 5.0, 1e-12);
}

TEST(Clustering, WattsStrogatzBeatsRandom) {
  // The small-world lattice has far higher clustering than an ER graph of
  // equal density — the classic sanity check.
  util::Xoshiro256 rng(1);
  const CsrGraph ws = watts_strogatz(500, 4, 0.05, rng);
  const CsrGraph er = erdos_renyi(500, 2000, rng);
  EXPECT_GT(average_local_clustering(ws), 3.0 * average_local_clustering(er));
}

TEST(DegreeHistogram, BucketsAreCorrect) {
  // Degrees: 3, 1, 1, 1, 0 → buckets: [0,1]: 4/5... build a path + star.
  const CsrGraph g = CsrGraph::from_edges(5, {{0, 1}, {0, 2}, {0, 3}});
  const auto h = degree_histogram_log2(g);
  // deg(0)=3 → bucket 1; deg(1..3)=1 → bucket 0; deg(4)=0 → bucket 0.
  ASSERT_GE(h.size(), 2u);
  EXPECT_DOUBLE_EQ(h[0], 0.8);
  EXPECT_DOUBLE_EQ(h[1], 0.2);
}

TEST(DegreeHistogram, SumsToOne) {
  const CsrGraph g = gsgcn::testing::small_er();
  const auto h = degree_histogram_log2(g);
  double total = 0.0;
  for (const double x : h) total += x;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(DegreeDistance, IdenticalGraphsAreZero) {
  const CsrGraph g = gsgcn::testing::small_er();
  EXPECT_DOUBLE_EQ(degree_distribution_distance(g, g), 0.0);
}

TEST(DegreeDistance, SkewedVsRegularIsLarge) {
  util::Xoshiro256 rng(2);
  const CsrGraph ba = barabasi_albert(1000, 3, rng);
  const CsrGraph ws = watts_strogatz(1000, 3, 0.0, rng);
  EXPECT_GT(degree_distribution_distance(ba, ws), 0.25);
}

TEST(DegreeDistance, IsSymmetricAndBounded) {
  util::Xoshiro256 rng(3);
  const CsrGraph a = erdos_renyi(300, 900, rng);
  const CsrGraph b = barabasi_albert(300, 2, rng);
  const double d1 = degree_distribution_distance(a, b);
  const double d2 = degree_distribution_distance(b, a);
  EXPECT_DOUBLE_EQ(d1, d2);
  EXPECT_GE(d1, 0.0);
  EXPECT_LE(d1, 1.0);
}

TEST(Assortativity, RegularGraphIsDegenerate) {
  // All degrees equal → zero variance → defined as 0.
  util::Xoshiro256 rng(4);
  const CsrGraph g = watts_strogatz(100, 3, 0.0, rng);
  EXPECT_DOUBLE_EQ(degree_assortativity(g), 0.0);
}

TEST(Assortativity, StarIsDisassortative) {
  const CsrGraph g = CsrGraph::from_edges(6, {{0, 1}, {0, 2}, {0, 3}, {0, 4},
                                              {0, 5}});
  EXPECT_LT(degree_assortativity(g), -0.99);
}

TEST(Assortativity, BaIsDisassortativeVsEr) {
  util::Xoshiro256 rng(5);
  const CsrGraph ba = barabasi_albert(2000, 3, rng);
  const CsrGraph er = erdos_renyi(2000, 6000, rng);
  EXPECT_LT(degree_assortativity(ba), degree_assortativity(er) + 0.02);
}

TEST(AverageDistance, PathGraph) {
  // Path 0-1-2: exact average over ordered pairs = (1+1+1+1+2+2)/6 = 4/3.
  // BFS-from-every-vertex sampling with many samples converges to it.
  const CsrGraph g = CsrGraph::from_edges(3, {{0, 1}, {1, 2}});
  util::Xoshiro256 rng(6);
  const double est = estimated_average_distance(g, 300, rng);
  EXPECT_NEAR(est, 4.0 / 3.0, 0.1);
}

TEST(AverageDistance, SmallWorldIsShort) {
  util::Xoshiro256 rng(7);
  const CsrGraph ring = watts_strogatz(400, 2, 0.0, rng);     // long paths
  const CsrGraph small = watts_strogatz(400, 2, 0.2, rng);    // shortcuts
  const double d_ring = estimated_average_distance(ring, 30, rng);
  const double d_small = estimated_average_distance(small, 30, rng);
  EXPECT_LT(d_small, d_ring * 0.7);
}

TEST(AverageDistance, DegenerateInputs) {
  const CsrGraph g = CsrGraph::from_edges(1, {});
  util::Xoshiro256 rng(8);
  EXPECT_DOUBLE_EQ(estimated_average_distance(g, 5, rng), 0.0);
}

}  // namespace
}  // namespace gsgcn::graph

// End-to-end server tests over real loopback sockets: the happy path,
// every degraded path (malformed frames, bad CRC, overload shedding,
// deadline expiry, injected engine faults), graceful drain, idle reaping,
// and hot snapshot swap under live traffic.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/time.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/snapshot.hpp"
#include "serve/socket.hpp"
#include "util/fault.hpp"
#include "util/frame.hpp"

namespace gsgcn::serve {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// Raw-socket helpers: the tests below need to send deliberately broken
// bytes and pipeline without the client's retry logic in the way.
// ---------------------------------------------------------------------------

bool send_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t w = ::send(fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (w <= 0) return false;
    off += static_cast<std::size_t>(w);
  }
  return true;
}

/// Read framed responses until `count` decode or the peer closes. Returns
/// the number of responses decoded.
std::size_t recv_responses(int fd, std::size_t count,
                           std::vector<Response>& out) {
  std::string inbuf;
  out.clear();
  char buf[4096];
  while (out.size() < count) {
    std::string payload;
    std::size_t consumed = 0;
    const util::FrameStatus st = util::frame_try_decode(
        kWireFrame, inbuf.data(), inbuf.size(), payload, consumed);
    if (st == util::FrameStatus::kOk) {
      inbuf.erase(0, consumed);
      Response resp;
      std::string err;
      if (!decode_response(payload, resp, err)) return out.size();
      out.push_back(std::move(resp));
      continue;
    }
    if (st != util::FrameStatus::kNeedMore) return out.size();
    const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
    if (r <= 0) return out.size();
    inbuf.append(buf, static_cast<std::size_t>(r));
  }
  return out.size();
}

std::string framed_request(const Request& req) {
  return util::frame_encode(kWireFrame, encode_request(req));
}

Request infer_request(std::vector<graph::Vid> vertices, std::uint64_t id,
                      std::uint32_t deadline_ms = 0) {
  Request req;
  req.op = Op::kInfer;
  req.request_id = id;
  req.deadline_ms = deadline_ms;
  req.vertices = std::move(vertices);
  return req;
}

// ---------------------------------------------------------------------------
// Fixture: a small synthetic graph served by a freshly started server.
// ---------------------------------------------------------------------------

class ServeServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::FaultInjector::instance().clear();
    data::SyntheticParams p;
    p.num_vertices = 200;
    p.num_classes = 4;
    p.feature_dim = 8;
    p.avg_degree = 5.0;
    p.seed = 9;
    ds_ = data::make_synthetic(p);
    mc_.in_dim = ds_.feature_dim();
    mc_.hidden_dim = 6;
    mc_.num_classes = ds_.num_classes();
    mc_.num_layers = 2;
    mc_.seed = 21;
    store_ = std::make_unique<SnapshotStore>(
        std::make_shared<const ModelSnapshot>(0, -1, gcn::GcnModel(mc_)));
  }

  void TearDown() override {
    if (server_) server_->stop();
    util::FaultInjector::instance().clear();
  }

  /// Start a server with `opts` (port always kernel-assigned).
  void start_server(ServerOptions opts) {
    opts.port = 0;
    server_ = std::make_unique<Server>(*store_, ds_.graph, ds_.features,
                                       std::move(opts));
    server_->start();
    ASSERT_NE(server_->port(), 0);
  }

  RetryingClient make_client(std::uint64_t seed = 1) {
    ClientOptions c;
    c.port = server_->port();
    c.seed = seed;
    c.recv_timeout_ms = 10000.0;
    return RetryingClient(c);
  }

  Fd raw_connect() {
    std::string err;
    Fd fd = connect_to(server_->port(), err);
    EXPECT_TRUE(fd.valid()) << err;
    return fd;
  }

  data::Dataset ds_;
  gcn::ModelConfig mc_;
  std::unique_ptr<SnapshotStore> store_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServeServerTest, ServesLogitsAndPings) {
  start_server(ServerOptions{});
  RetryingClient client = make_client();

  Response resp;
  std::string err;
  ASSERT_TRUE(client.call(infer_request({1, 2, 3}, 7), resp, err)) << err;
  EXPECT_EQ(resp.status, Status::kOk) << resp.message;
  EXPECT_EQ(resp.request_id, 7u);
  EXPECT_EQ(resp.rows, 3u);
  EXPECT_EQ(resp.cols, static_cast<std::uint32_t>(ds_.num_classes()));
  ASSERT_EQ(resp.logits.size(), 3u * ds_.num_classes());

  Request ping;
  ping.op = Op::kPing;
  ping.request_id = 8;
  ASSERT_TRUE(client.call(ping, resp, err)) << err;
  EXPECT_EQ(resp.status, Status::kOk);
  EXPECT_EQ(resp.snapshot_seq, 0u);  // initial snapshot

  // Pings are answered inline on the IO thread and counted separately
  // from worker OK replies.
  EXPECT_EQ(server_->stats().ok_replies.load(), 1u);
  EXPECT_EQ(server_->stats().pings.load(), 1u);
  EXPECT_EQ(server_->stats().accepted.load(), 1u);
}

TEST_F(ServeServerTest, PipelinedRequestsComeBackInOrder) {
  start_server(ServerOptions{});
  Fd fd = raw_connect();
  std::string burst;
  constexpr std::uint64_t kN = 12;
  for (std::uint64_t i = 0; i < kN; ++i) {
    burst += framed_request(
        infer_request({static_cast<graph::Vid>(i), 100}, 1000 + i));
  }
  ASSERT_TRUE(send_all(fd.get(), burst));
  std::vector<Response> resps;
  ASSERT_EQ(recv_responses(fd.get(), kN, resps), kN);
  for (std::uint64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(resps[i].request_id, 1000 + i) << "order preserved";
    EXPECT_EQ(resps[i].status, Status::kOk) << resps[i].message;
  }
}

TEST_F(ServeServerTest, GarbageBytesGetErrorFrameAndCloseNotCrash) {
  start_server(ServerOptions{});
  {
    Fd fd = raw_connect();
    ASSERT_TRUE(send_all(fd.get(), "this is definitely not a frame......"));
    std::vector<Response> resps;
    // The server answers one BAD_REQUEST error frame, then closes.
    ASSERT_EQ(recv_responses(fd.get(), 2, resps), 1u);
    EXPECT_EQ(resps[0].status, Status::kBadRequest);
    char c;
    EXPECT_EQ(::recv(fd.get(), &c, 1, 0), 0) << "server should close";
  }
  EXPECT_GE(server_->stats().protocol_errors.load(), 1u);

  // The process survived: a fresh connection still gets real answers.
  RetryingClient client = make_client();
  Response resp;
  std::string err;
  ASSERT_TRUE(client.call(infer_request({5}, 1), resp, err)) << err;
  EXPECT_EQ(resp.status, Status::kOk);
}

TEST_F(ServeServerTest, CorruptCrcGetsErrorFrameAndClose) {
  start_server(ServerOptions{});
  Fd fd = raw_connect();
  std::string framed = framed_request(infer_request({1}, 1));
  framed.back() ^= 0x20;  // flip one payload bit: CRC now fails
  ASSERT_TRUE(send_all(fd.get(), framed));
  std::vector<Response> resps;
  ASSERT_EQ(recv_responses(fd.get(), 2, resps), 1u);
  EXPECT_EQ(resps[0].status, Status::kBadRequest);
  EXPECT_NE(resps[0].message.find("bad_crc"), std::string::npos)
      << resps[0].message;
  EXPECT_GE(server_->stats().protocol_errors.load(), 1u);
}

TEST_F(ServeServerTest, OversizedFrameRejectedWithoutAllocation) {
  start_server(ServerOptions{});
  Fd fd = raw_connect();
  std::string framed = framed_request(infer_request({1}, 1));
  const std::uint64_t huge = ~0ull;  // 16 EB claimed payload
  std::memcpy(framed.data() + 12, &huge, sizeof(huge));
  ASSERT_TRUE(send_all(fd.get(), framed));
  std::vector<Response> resps;
  ASSERT_EQ(recv_responses(fd.get(), 2, resps), 1u);
  EXPECT_EQ(resps[0].status, Status::kBadRequest);
  EXPECT_NE(resps[0].message.find("too_large"), std::string::npos);
}

TEST_F(ServeServerTest, OutOfRangeVertexFailsRequestButKeepsConnection) {
  start_server(ServerOptions{});
  RetryingClient client = make_client();
  Response resp;
  std::string err;
  ASSERT_TRUE(client.call(
      infer_request({ds_.graph.num_vertices() + 5}, 1), resp, err))
      << err;
  EXPECT_EQ(resp.status, Status::kBadRequest);
  EXPECT_NE(resp.message.find("out of range"), std::string::npos);
  // Same connection keeps working.
  ASSERT_TRUE(client.call(infer_request({0}, 2), resp, err)) << err;
  EXPECT_EQ(resp.status, Status::kOk);
  EXPECT_EQ(client.stats().reconnects, 1u);  // only the initial connect
  EXPECT_EQ(server_->stats().bad_requests.load(), 1u);
}

TEST_F(ServeServerTest, FullQueueShedsWithOverloaded) {
  // One slow worker (every batch sleeps 40 ms via the injected delay), a
  // two-slot queue, and a 30-request pipelined burst: the queue fills,
  // and everything past the watermark is answered OVERLOADED inline.
  util::FaultInjector::instance().arm_probability(
      "serve.infer", 1.0, util::FaultKind::kDelay, /*delay_ms=*/40);
  ServerOptions opts;
  opts.queue_capacity = 2;
  opts.max_batch = 1;
  opts.batch_window_ms = 0.0;
  opts.default_deadline_ms = 0;  // isolate queue-full from deadline shed
  start_server(opts);

  Fd fd = raw_connect();
  std::string burst;
  constexpr std::uint64_t kN = 30;
  for (std::uint64_t i = 0; i < kN; ++i) {
    burst += framed_request(infer_request({1}, i));
  }
  ASSERT_TRUE(send_all(fd.get(), burst));
  std::vector<Response> resps;
  ASSERT_EQ(recv_responses(fd.get(), kN, resps), kN);

  std::size_t ok = 0, shed = 0;
  for (const Response& r : resps) {
    if (r.status == Status::kOk) ++ok;
    if (r.status == Status::kOverloaded) ++shed;
  }
  EXPECT_EQ(ok + shed, kN);
  EXPECT_GT(ok, 0u) << "admitted work still completes under overload";
  EXPECT_GT(shed, 0u) << "a bounded queue must shed";
  EXPECT_EQ(server_->stats().shed_queue_full.load(), shed);
}

TEST_F(ServeServerTest, ExpiredDeadlinesAreShedBeforeCompute) {
  // Worker batches take ~40 ms; requests carry a 5 ms deadline. The first
  // request is popped fresh, everything queued behind it expires in line.
  util::FaultInjector::instance().arm_probability(
      "serve.infer", 1.0, util::FaultKind::kDelay, /*delay_ms=*/40);
  ServerOptions opts;
  opts.queue_capacity = 16;
  opts.max_batch = 1;
  opts.batch_window_ms = 0.0;
  start_server(opts);

  Fd fd = raw_connect();
  std::string burst;
  constexpr std::uint64_t kN = 5;
  for (std::uint64_t i = 0; i < kN; ++i) {
    burst += framed_request(infer_request({1}, i, /*deadline_ms=*/5));
  }
  ASSERT_TRUE(send_all(fd.get(), burst));
  std::vector<Response> resps;
  ASSERT_EQ(recv_responses(fd.get(), kN, resps), kN);

  std::size_t shed = 0;
  for (const Response& r : resps) {
    if (r.status == Status::kOverloaded) {
      ++shed;
      EXPECT_NE(r.message.find("deadline"), std::string::npos) << r.message;
    }
  }
  EXPECT_GT(shed, 0u);
  EXPECT_EQ(server_->stats().shed_deadline.load(), shed);
}

TEST_F(ServeServerTest, EngineFaultMapsToInternalErrorAndRecovers) {
  util::FaultInjector::instance().arm("serve.infer", 1,
                                      util::FaultKind::kThrow);
  start_server(ServerOptions{});
  RetryingClient client = make_client();
  Response resp;
  std::string err;
  ASSERT_TRUE(client.call(infer_request({3}, 1), resp, err)) << err;
  EXPECT_EQ(resp.status, Status::kInternalError);
  EXPECT_GE(server_->stats().internal_errors.load(), 1u);
  // One-shot fault: the very next request succeeds on the same server.
  ASSERT_TRUE(client.call(infer_request({3}, 2), resp, err)) << err;
  EXPECT_EQ(resp.status, Status::kOk);
}

TEST_F(ServeServerTest, GracefulDrainAnswersInflightThenExits) {
  // Slow batches so shutdown arrives while work is queued.
  util::FaultInjector::instance().arm_probability(
      "serve.infer", 1.0, util::FaultKind::kDelay, /*delay_ms=*/30);
  ServerOptions opts;
  opts.max_batch = 1;
  opts.batch_window_ms = 0.0;
  opts.default_deadline_ms = 0;
  start_server(opts);

  Fd fd = raw_connect();
  std::string burst;
  constexpr std::uint64_t kN = 4;
  for (std::uint64_t i = 0; i < kN; ++i) {
    burst += framed_request(infer_request({2}, i));
  }
  ASSERT_TRUE(send_all(fd.get(), burst));
  std::this_thread::sleep_for(50ms);  // let the IO thread admit them
  server_->request_shutdown();

  // Every admitted request is still answered through the drain.
  std::vector<Response> resps;
  ASSERT_EQ(recv_responses(fd.get(), kN, resps), kN);
  for (const Response& r : resps) {
    EXPECT_EQ(r.status, Status::kOk) << r.message;
  }
  server_->wait();  // IO loop exits once everything is flushed

  // And the listener is gone: new connections are refused.
  std::string err;
  Fd refused = connect_to(server_->port(), err);
  EXPECT_FALSE(refused.valid());
  server_->stop();
  server_.reset();
}

TEST_F(ServeServerTest, RequestsAfterDrainStartAreToldToGoAway) {
  // A connection accepted before the drain keeps its socket; its NEW
  // requests get SHUTTING_DOWN while queued work finishes. The long
  // injected compute keeps request 1 in flight across both sleeps below
  // (the drain cannot complete, so the connection stays open).
  util::FaultInjector::instance().arm_probability(
      "serve.infer", 1.0, util::FaultKind::kDelay, /*delay_ms=*/300);
  ServerOptions opts;
  opts.max_batch = 1;
  opts.batch_window_ms = 0.0;
  opts.default_deadline_ms = 0;
  start_server(opts);

  Fd fd = raw_connect();
  ASSERT_TRUE(send_all(fd.get(), framed_request(infer_request({2}, 1))));
  std::this_thread::sleep_for(50ms);  // in-flight now
  server_->request_shutdown();
  std::this_thread::sleep_for(50ms);  // drain has begun
  ASSERT_TRUE(send_all(fd.get(), framed_request(infer_request({2}, 2))));

  // The SHUTTING_DOWN reject is answered inline and may overtake the
  // slow worker's completion, so match by id rather than arrival order.
  std::vector<Response> resps;
  ASSERT_EQ(recv_responses(fd.get(), 2, resps), 2u);
  bool saw_ok = false, saw_shutdown = false;
  for (const Response& r : resps) {
    if (r.request_id == 1) {
      EXPECT_EQ(r.status, Status::kOk) << r.message;
      saw_ok = true;
    } else if (r.request_id == 2) {
      EXPECT_EQ(r.status, Status::kShuttingDown);
      saw_shutdown = true;
    }
  }
  EXPECT_TRUE(saw_ok && saw_shutdown);
  EXPECT_GE(server_->stats().rejected_shutdown.load(), 1u);
  server_->wait();
}

TEST_F(ServeServerTest, IdleConnectionsAreReaped) {
  ServerOptions opts;
  opts.idle_timeout_ms = 50.0;
  start_server(opts);
  Fd fd = raw_connect();
  // Say nothing. Housekeeping (20 ms cadence) reaps us. A recv timeout
  // bounds the test if reaping ever regresses (it would return -1, not 0).
  timeval tv{};
  tv.tv_sec = 5;
  ASSERT_EQ(::setsockopt(fd.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)),
            0);
  char c;
  const ssize_t r = ::recv(fd.get(), &c, 1, 0);  // blocks until server acts
  EXPECT_EQ(r, 0) << "expected EOF from the idle reaper";
  EXPECT_GE(server_->stats().idle_reaped.load(), 1u);
  // The server itself is fine.
  RetryingClient client = make_client();
  Response resp;
  std::string err;
  ASSERT_TRUE(client.call(infer_request({0}, 1), resp, err)) << err;
  EXPECT_EQ(resp.status, Status::kOk);
}

TEST_F(ServeServerTest, SnapshotSwapMidTrafficDropsNothing) {
  ServerOptions opts;
  opts.num_workers = 2;
  start_server(opts);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 2; ++t) {
    clients.emplace_back([&, t] {
      RetryingClient client = make_client(/*seed=*/100 + t);
      std::uint64_t id = 0;
      while (!stop.load()) {
        Response resp;
        std::string err;
        if (!client.call(infer_request({5, 6}, ++id), resp, err) ||
            resp.status != Status::kOk) {
          failures.fetch_add(1);
        }
        calls.fetch_add(1);
      }
    });
  }

  // Publish five fresh snapshots while traffic flows.
  for (std::uint64_t seq = 1; seq <= 5; ++seq) {
    gcn::ModelConfig mc = mc_;
    mc.seed = 1000 + seq;
    store_->publish(std::make_shared<const ModelSnapshot>(
        seq, static_cast<int>(seq), gcn::GcnModel(mc)));
    std::this_thread::sleep_for(15ms);
  }
  stop.store(true);
  for (std::thread& th : clients) th.join();

  EXPECT_GT(calls.load(), 10u);
  EXPECT_EQ(failures.load(), 0u) << "hot swap must not fail any request";
  EXPECT_EQ(store_->swaps(), 5u);

  // A post-swap ping reports the newest snapshot.
  RetryingClient client = make_client();
  Request ping;
  ping.op = Op::kPing;
  ping.request_id = 1;
  Response resp;
  std::string err;
  ASSERT_TRUE(client.call(ping, resp, err)) << err;
  EXPECT_EQ(resp.snapshot_seq, 5u);
}

TEST_F(ServeServerTest, SurvivesInjectedWireFaults) {
  // Randomly perturb every socket path: short reads/writes force the
  // incremental decode + partial-flush paths, EAGAIN forces retries. The
  // retrying client must still get every answer, and nothing crashes.
  util::FaultInjector& f = util::FaultInjector::instance();
  f.set_seed(7);
  f.arm_probability("serve.sock.short_read", 0.3, util::FaultKind::kReport);
  f.arm_probability("serve.sock.short_write", 0.3, util::FaultKind::kReport);
  f.arm_probability("serve.sock.read_eagain", 0.1, util::FaultKind::kReport);
  f.arm_probability("serve.sock.write_eagain", 0.1, util::FaultKind::kReport);
  start_server(ServerOptions{});

  RetryingClient client = make_client(/*seed=*/3);
  for (std::uint64_t i = 0; i < 30; ++i) {
    Response resp;
    std::string err;
    ASSERT_TRUE(client.call(infer_request({1, 2, 3, 4}, i), resp, err))
        << "call " << i << ": " << err;
    ASSERT_EQ(resp.status, Status::kOk) << resp.message;
    ASSERT_EQ(resp.rows, 4u);
  }
  util::FaultInjector::instance().clear();
}

TEST_F(ServeServerTest, ConnectionResetMidExchangeIsAbsorbedByRetry) {
  util::FaultInjector& f = util::FaultInjector::instance();
  f.set_seed(11);
  f.arm_probability("serve.sock.read_reset", 0.05, util::FaultKind::kReport);
  start_server(ServerOptions{});

  RetryingClient client = make_client(/*seed=*/5);
  std::uint64_t ok = 0;
  for (std::uint64_t i = 0; i < 40; ++i) {
    Response resp;
    std::string err;
    if (client.call(infer_request({9}, i), resp, err) &&
        resp.status == Status::kOk) {
      ++ok;
    }
  }
  util::FaultInjector::instance().clear();
  EXPECT_EQ(ok, 40u) << "reconnect+resend must hide injected resets";
  EXPECT_GT(client.stats().reconnects, 1u) << "resets did happen";
}

}  // namespace
}  // namespace gsgcn::serve

// Tensor library tests: Matrix semantics, GEMM kernels against the
// triple-loop reference (parameterized shape sweep), elementwise ops.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>

#include "tensor/gemm.hpp"
#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace gsgcn::tensor {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  return Matrix::gaussian(r, c, 1.0f, rng);
}

TEST(Matrix, ZeroInitialized) {
  const Matrix m(3, 4);
  for (std::size_t i = 0; i < m.size(); ++i) EXPECT_EQ(m.data()[i], 0.0f);
}

TEST(Matrix, DeepCopy) {
  Matrix a = random_matrix(4, 5, 1);
  Matrix b = a;
  b(0, 0) += 1.0f;
  EXPECT_NE(a(0, 0), b(0, 0));
  EXPECT_EQ(Matrix::max_abs_diff(a, a), 0.0f);
}

TEST(Matrix, MoveLeavesSourceEmpty) {
  Matrix a = random_matrix(4, 5, 2);
  Matrix b = std::move(a);
  EXPECT_EQ(b.rows(), 4u);
  EXPECT_EQ(a.size(), 0u);
}

TEST(Matrix, MaxAbsDiffShapeMismatchIsInf) {
  EXPECT_TRUE(std::isinf(Matrix::max_abs_diff(Matrix(2, 2), Matrix(2, 3))));
}

TEST(Matrix, GlorotWithinBound) {
  util::Xoshiro256 rng(3);
  const Matrix m = Matrix::glorot(64, 64, rng);
  const float bound = std::sqrt(6.0f / 128.0f);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_LE(std::abs(m.data()[i]), bound);
  }
}

TEST(Matrix, FrobeniusNorm) {
  Matrix m(2, 2);
  m(0, 0) = 3.0f;
  m(1, 1) = 4.0f;
  EXPECT_FLOAT_EQ(m.frobenius_norm(), 5.0f);
}

// ---- GEMM: parameterized shape sweep vs reference ----

using GemmShape = std::tuple<int, int, int>;  // M, K, N

class GemmSweep : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmSweep, NnMatchesReference) {
  const auto [m, k, n] = GetParam();
  const Matrix a = random_matrix(m, k, 10);
  const Matrix b = random_matrix(k, n, 11);
  Matrix c(m, n), ref(m, n);
  gemm_nn(a, b, c);
  reference::gemm_nn(a, b, ref);
  EXPECT_LT(Matrix::max_abs_diff(c, ref), 1e-3f * static_cast<float>(k));
}

TEST_P(GemmSweep, TnMatchesReference) {
  const auto [m, k, n] = GetParam();
  const Matrix a = random_matrix(k, m, 12);  // used transposed
  const Matrix b = random_matrix(k, n, 13);
  Matrix c(m, n), ref(m, n);
  gemm_tn(a, b, c);
  reference::gemm_tn(a, b, ref);
  EXPECT_LT(Matrix::max_abs_diff(c, ref), 1e-3f * static_cast<float>(k));
}

TEST_P(GemmSweep, NtMatchesReference) {
  const auto [m, k, n] = GetParam();
  const Matrix a = random_matrix(m, k, 14);
  const Matrix b = random_matrix(n, k, 15);  // used transposed
  Matrix c(m, n), ref(m, n);
  gemm_nt(a, b, c);
  reference::gemm_nt(a, b, ref);
  EXPECT_LT(Matrix::max_abs_diff(c, ref), 1e-3f * static_cast<float>(k));
}

TEST_P(GemmSweep, MultithreadedMatchesSingle) {
  const auto [m, k, n] = GetParam();
  const Matrix a = random_matrix(m, k, 16);
  const Matrix b = random_matrix(k, n, 17);
  Matrix c1(m, n), c4(m, n);
  gemm_nn(a, b, c1, 1.0f, 0.0f, 1);
  gemm_nn(a, b, c4, 1.0f, 0.0f, 4);
  EXPECT_EQ(Matrix::max_abs_diff(c1, c4), 0.0f);  // identical fp order
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSweep,
    ::testing::Values(GemmShape{1, 1, 1}, GemmShape{3, 5, 7},
                      GemmShape{8, 8, 8}, GemmShape{17, 33, 9},
                      GemmShape{64, 50, 121}, GemmShape{100, 256, 31},
                      GemmShape{5, 1, 5}, GemmShape{1, 128, 1}));

TEST(Gemm, AlphaBetaSemantics) {
  const Matrix a = random_matrix(4, 6, 20);
  const Matrix b = random_matrix(6, 5, 21);
  Matrix c = random_matrix(4, 5, 22);
  Matrix expect = c;
  Matrix ab(4, 5);
  reference::gemm_nn(a, b, ab);
  for (std::size_t i = 0; i < expect.size(); ++i) {
    expect.data()[i] = 2.0f * ab.data()[i] + 0.5f * expect.data()[i];
  }
  gemm_nn(a, b, c, 2.0f, 0.5f);
  EXPECT_LT(Matrix::max_abs_diff(c, expect), 1e-3f);
}

TEST(Gemm, BetaZeroIgnoresGarbage) {
  const Matrix a = random_matrix(3, 3, 23);
  const Matrix b = random_matrix(3, 3, 24);
  Matrix c(3, 3);
  c.fill(std::numeric_limits<float>::quiet_NaN());
  gemm_nn(a, b, c, 1.0f, 0.0f);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_FALSE(std::isnan(c.data()[i]));
  }
}

// ---- GEMM property sweep: every (m, k, n) from an odd-shape set, all
// three orientations, several alpha/beta combos and thread counts, all
// against the triple-loop reference. The shape set is chosen to exercise
// every packing edge case of the blocked kernel: sub-tile (< Mr, < Nr),
// exact-tile (8, 16, 64), one-past-tile (9, 17, 65) and near-block sizes.

constexpr int kOddSizes[] = {1, 5, 7, 8, 9, 16, 17, 63, 64, 65};

TEST(GemmProperty, OddShapeSweepAllOrientations) {
  const Matrix pool_a = random_matrix(65, 65, 50);
  const Matrix pool_b = random_matrix(65, 65, 51);
  auto take = [](const Matrix& pool, int r, int c) {
    Matrix m(r, c);
    for (int i = 0; i < r; ++i) {
      for (int j = 0; j < c; ++j) {
        m(i, j) = pool(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
      }
    }
    return m;
  };
  for (const int m : kOddSizes) {
    for (const int k : kOddSizes) {
      for (const int n : kOddSizes) {
        const float tol = 1e-3f * static_cast<float>(k);
        {
          const Matrix a = take(pool_a, m, k), b = take(pool_b, k, n);
          Matrix c(m, n), ref(m, n);
          gemm_nn(a, b, c, 2.0f, 0.0f, 4);
          reference::gemm_nn(a, b, ref, 2.0f, 0.0f);
          ASSERT_LT(Matrix::max_abs_diff(c, ref), tol)
              << "nn " << m << "x" << k << "x" << n;
        }
        {
          const Matrix a = take(pool_a, k, m), b = take(pool_b, k, n);
          Matrix c(m, n), ref(m, n);
          gemm_tn(a, b, c, 1.0f, 0.0f, 4);
          reference::gemm_tn(a, b, ref);
          ASSERT_LT(Matrix::max_abs_diff(c, ref), tol)
              << "tn " << m << "x" << k << "x" << n;
        }
        {
          const Matrix a = take(pool_a, m, k), b = take(pool_b, n, k);
          Matrix c(m, n), ref(m, n);
          gemm_nt(a, b, c, 1.0f, 0.0f, 4);
          reference::gemm_nt(a, b, ref);
          ASSERT_LT(Matrix::max_abs_diff(c, ref), tol)
              << "nt " << m << "x" << k << "x" << n;
        }
      }
    }
  }
}

TEST(GemmProperty, AlphaBetaThreadCombos) {
  constexpr float kAlphas[] = {1.0f, 2.0f, -0.5f};
  constexpr float kBetas[] = {0.0f, 1.0f, 0.25f};
  constexpr int kThreads[] = {1, 2, 4, 8};
  // 97 rows × 300 cols of K cross both the Mc=96 and Kc=256 block edges.
  const Matrix a = random_matrix(97, 300, 52);
  const Matrix b = random_matrix(300, 33, 53);
  const Matrix c0 = random_matrix(97, 33, 54);
  for (const float alpha : kAlphas) {
    for (const float beta : kBetas) {
      Matrix ref = c0;
      reference::gemm_nn(a, b, ref, alpha, beta);
      Matrix first;
      for (const int threads : kThreads) {
        Matrix c = c0;
        gemm_nn(a, b, c, alpha, beta, threads);
        ASSERT_LT(Matrix::max_abs_diff(c, ref), 0.3f)
            << "alpha=" << alpha << " beta=" << beta << " p=" << threads;
        if (threads == 1) {
          first = c;
        } else {
          // Bit-identical across thread counts, not just close.
          ASSERT_EQ(Matrix::max_abs_diff(c, first), 0.0f)
              << "alpha=" << alpha << " beta=" << beta << " p=" << threads;
        }
      }
    }
  }
}

TEST(GemmProperty, TnNtBetaAccumulate) {
  const Matrix a = random_matrix(70, 19, 55);  // k=70 rows, m=19 (transposed)
  const Matrix b = random_matrix(70, 23, 56);
  Matrix c = random_matrix(19, 23, 57);
  Matrix ref = c;
  gemm_tn(a, b, c, 1.5f, 0.75f, 3);
  reference::gemm_tn(a, b, ref, 1.5f, 0.75f);
  EXPECT_LT(Matrix::max_abs_diff(c, ref), 0.1f);

  const Matrix x = random_matrix(21, 40, 58);
  const Matrix y = random_matrix(17, 40, 59);
  Matrix d = random_matrix(21, 17, 60);
  Matrix dref = d;
  gemm_nt(x, y, d, -1.0f, 2.0f, 3);
  reference::gemm_nt(x, y, dref, -1.0f, 2.0f);
  EXPECT_LT(Matrix::max_abs_diff(d, dref), 0.1f);
}

// ---- Strided views: writing GEMM outputs into column slices of a wide
// matrix must be bit-for-bit identical to GEMM-into-dense + concat_cols
// (this is the layer's zero-copy concat path).

TEST(GemmView, ColsSliceOutputMatchesConcatBitForBit) {
  const std::size_t n = 37, fin = 29, fo = 21;
  const Matrix h = random_matrix(n, fin, 70);
  const Matrix w1 = random_matrix(fin, fo, 71);
  const Matrix w2 = random_matrix(fin, fo, 72);

  Matrix c1(n, fo), c2(n, fo), cat(n, 2 * fo);
  gemm_nn(h, w1, c1);
  gemm_nn(h, w2, c2);
  concat_cols(c1, c2, cat);

  Matrix wide(n, 2 * fo);
  gemm_nn(h, w1, MatrixView::cols_slice(wide, 0, fo));
  gemm_nn(h, w2, MatrixView::cols_slice(wide, fo, fo));
  EXPECT_EQ(Matrix::max_abs_diff(cat, wide), 0.0f);
}

TEST(GemmView, ColsSliceOperandsMatchSplitBitForBit) {
  // Backward-pass shape: consume column slices of a wide gradient as TN/NT
  // operands and compare against operating on split-out dense halves.
  const std::size_t n = 41, fin = 13, fo = 11;
  const Matrix h = random_matrix(n, fin, 73);
  const Matrix w = random_matrix(fin, fo, 74);
  const Matrix d_wide = random_matrix(n, 2 * fo, 75);
  Matrix d_half(n, fo), other(n, fo);
  split_cols(d_wide, d_half, other);

  Matrix dw_dense(fin, fo), dw_view(fin, fo);
  gemm_tn(h, d_half, dw_dense);
  gemm_tn(h, ConstMatrixView::cols_slice(d_wide, 0, fo), dw_view);
  EXPECT_EQ(Matrix::max_abs_diff(dw_dense, dw_view), 0.0f);

  Matrix dh_dense(n, fin), dh_view(n, fin);
  gemm_nt(d_half, w, dh_dense);  // d · Wᵀ — w used transposed
  gemm_nt(ConstMatrixView::cols_slice(d_wide, 0, fo), w, dh_view);
  EXPECT_EQ(Matrix::max_abs_diff(dh_dense, dh_view), 0.0f);
}

TEST(GemmView, LdMustCoverCols) {
  Matrix m(4, 8);
  EXPECT_NO_THROW(MatrixView::cols_slice(m, 2, 6));
}

// ---- Fused ReLU epilogue ----

TEST(GemmEpilogue, ReluMatchesSeparateRelu) {
  // k = 300 spans two Kc=256 blocks: the clamp must apply only after the
  // full K sum, not per block.
  const Matrix a = random_matrix(50, 300, 80);
  const Matrix b = random_matrix(300, 40, 81);
  Matrix fused(50, 40), plain(50, 40), clamped(50, 40);
  gemm_nn(a, b, fused, 1.0f, 0.0f, 0, Epilogue::kRelu);
  gemm_nn(a, b, plain);
  relu_forward(plain, clamped);
  EXPECT_EQ(Matrix::max_abs_diff(fused, clamped), 0.0f);
}

TEST(GemmEpilogue, ReluWithBetaZeroK) {
  // k == 0 degenerates to the epilogue-only path: C = relu(beta·C).
  const Matrix a(5, 0), b(0, 7);
  Matrix c = random_matrix(5, 7, 82);
  Matrix expect = c;
  gemm_nn(a, b, c, 1.0f, -1.0f, 0, Epilogue::kRelu);
  for (std::size_t i = 0; i < expect.size(); ++i) {
    const float v = -expect.data()[i];
    expect.data()[i] = v > 0.0f ? v : 0.0f;
  }
  EXPECT_EQ(Matrix::max_abs_diff(c, expect), 0.0f);
}

TEST(Gemm, ShapeMismatchThrows) {
  const Matrix a(3, 4), b(5, 6);
  Matrix c(3, 6);
  EXPECT_THROW(gemm_nn(a, b, c), std::invalid_argument);
  EXPECT_THROW(gemm_tn(a, b, c), std::invalid_argument);
  EXPECT_THROW(gemm_nt(a, b, c), std::invalid_argument);
}

// ---- elementwise ops ----

TEST(Ops, ReluForwardBackward) {
  Matrix x(2, 3);
  x(0, 0) = -1.0f;
  x(0, 1) = 2.0f;
  x(0, 2) = 0.0f;
  x(1, 0) = 3.0f;
  x(1, 1) = -0.5f;
  x(1, 2) = 1.0f;
  Matrix y(2, 3);
  relu_forward(x, y);
  EXPECT_EQ(y(0, 0), 0.0f);
  EXPECT_EQ(y(0, 1), 2.0f);
  EXPECT_EQ(y(0, 2), 0.0f);

  Matrix dy(2, 3);
  dy.fill(1.0f);
  Matrix dx(2, 3);
  relu_backward(x, dy, dx);
  EXPECT_EQ(dx(0, 0), 0.0f);
  EXPECT_EQ(dx(0, 1), 1.0f);
  EXPECT_EQ(dx(0, 2), 0.0f);  // subgradient at 0 chosen as 0
  EXPECT_EQ(dx(1, 0), 1.0f);
}

TEST(Ops, ConcatSplitRoundTrip) {
  const Matrix a = random_matrix(5, 3, 30);
  const Matrix b = random_matrix(5, 4, 31);
  Matrix cat(5, 7);
  concat_cols(a, b, cat);
  EXPECT_EQ(cat(2, 0), a(2, 0));
  EXPECT_EQ(cat(2, 3), b(2, 0));
  Matrix a2(5, 3), b2(5, 4);
  split_cols(cat, a2, b2);
  EXPECT_EQ(Matrix::max_abs_diff(a, a2), 0.0f);
  EXPECT_EQ(Matrix::max_abs_diff(b, b2), 0.0f);
}

TEST(Ops, ConcatShapeMismatchThrows) {
  Matrix a(5, 3), b(4, 4), out(5, 7);
  EXPECT_THROW(concat_cols(a, b, out), std::invalid_argument);
}

TEST(Ops, AddScaledAndScale) {
  Matrix x(2, 2), y(2, 2);
  x.fill(1.0f);
  y.fill(2.0f);
  add_scaled(x, y, 0.5f);
  EXPECT_EQ(x(0, 0), 2.0f);
  scale_inplace(x, 2.0f);
  EXPECT_EQ(x(1, 1), 4.0f);
}

TEST(Ops, GatherRows) {
  const Matrix src = random_matrix(10, 4, 32);
  const std::vector<std::uint32_t> idx = {7, 0, 7, 3};
  Matrix out(4, 4);
  gather_rows(src, idx, out);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_EQ(out(0, j), src(7, j));
    EXPECT_EQ(out(1, j), src(0, j));
    EXPECT_EQ(out(2, j), src(7, j));
    EXPECT_EQ(out(3, j), src(3, j));
  }
}

TEST(Ops, GatherRowsShapeMismatchThrows) {
  const Matrix src(10, 4);
  const std::vector<std::uint32_t> idx = {1, 2};
  Matrix out(3, 4);
  EXPECT_THROW(gather_rows(src, idx, out), std::invalid_argument);
}

TEST(Ops, BiasRowsAndGrad) {
  Matrix x(3, 2);
  const std::vector<float> bias = {1.0f, -2.0f};
  add_bias_rows(x, bias);
  EXPECT_EQ(x(0, 0), 1.0f);
  EXPECT_EQ(x(2, 1), -2.0f);

  Matrix dy(3, 2);
  dy.fill(1.0f);
  std::vector<float> dbias(2, 99.0f);
  bias_grad(dy, dbias);
  EXPECT_EQ(dbias[0], 3.0f);
  EXPECT_EQ(dbias[1], 3.0f);
}

TEST(Ops, HadamardInplace) {
  Matrix x = random_matrix(9, 7, 33);
  const Matrix y = random_matrix(9, 7, 34);
  Matrix expect = x;
  for (std::size_t i = 0; i < expect.size(); ++i) {
    expect.data()[i] *= y.data()[i];
  }
  hadamard_inplace(x, y, 3);
  EXPECT_EQ(Matrix::max_abs_diff(x, expect), 0.0f);
}

TEST(Ops, DropoutForwardMaskValuesAndRate) {
  const float rate = 0.4f;
  const Matrix x = random_matrix(200, 64, 35);
  Matrix mask(200, 64), out(200, 64);
  dropout_forward(x, mask, out, rate, 1234);
  const float scale = 1.0f / (1.0f - rate);
  std::size_t kept = 0;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    const float m = mask.data()[i];
    ASSERT_TRUE(m == 0.0f || m == scale);
    EXPECT_EQ(out.data()[i], m * x.data()[i]);
    kept += m != 0.0f;
  }
  const double frac = static_cast<double>(kept) / mask.size();
  EXPECT_NEAR(frac, 1.0 - rate, 0.02);
}

TEST(Ops, DropoutForwardDeterministicAcrossThreadCounts) {
  const Matrix x = random_matrix(101, 37, 36);
  Matrix m1(101, 37), o1(101, 37);
  dropout_forward(x, m1, o1, 0.5f, 99, 1);
  for (const int threads : {2, 4, 8}) {
    Matrix mp(101, 37), op(101, 37);
    dropout_forward(x, mp, op, 0.5f, 99, threads);
    ASSERT_EQ(Matrix::max_abs_diff(m1, mp), 0.0f) << "p=" << threads;
    ASSERT_EQ(Matrix::max_abs_diff(o1, op), 0.0f) << "p=" << threads;
  }
}

TEST(Ops, DropoutForwardSeedChangesMask) {
  const Matrix x = random_matrix(50, 20, 37);
  Matrix ma(50, 20), mb(50, 20), out(50, 20);
  dropout_forward(x, ma, out, 0.5f, 1);
  dropout_forward(x, mb, out, 0.5f, 2);
  EXPECT_GT(Matrix::max_abs_diff(ma, mb), 0.0f);
}

TEST(Ops, DropoutForwardInPlaceAliasing) {
  Matrix x = random_matrix(30, 16, 38);
  const Matrix orig = x;
  Matrix mask(30, 16), expect(30, 16);
  dropout_forward(x, mask, expect, 0.3f, 7);
  Matrix mask2(30, 16);
  dropout_forward(x, mask2, x, 0.3f, 7);  // out aliases x
  EXPECT_EQ(Matrix::max_abs_diff(mask, mask2), 0.0f);
  EXPECT_EQ(Matrix::max_abs_diff(x, expect), 0.0f);
  EXPECT_GT(Matrix::max_abs_diff(x, orig), 0.0f);
}

TEST(Ops, DropoutForwardBadRateThrows) {
  const Matrix x(2, 2);
  Matrix mask(2, 2), out(2, 2);
  EXPECT_THROW(dropout_forward(x, mask, out, 1.0f, 0),
               std::invalid_argument);
  EXPECT_THROW(dropout_forward(x, mask, out, -0.1f, 0),
               std::invalid_argument);
}

TEST(Ops, L2NormalizeRows) {
  Matrix x(2, 2);
  x(0, 0) = 3.0f;
  x(0, 1) = 4.0f;
  // second row all zero: must stay zero (no NaN)
  l2_normalize_rows(x);
  EXPECT_FLOAT_EQ(x(0, 0), 0.6f);
  EXPECT_FLOAT_EQ(x(0, 1), 0.8f);
  EXPECT_EQ(x(1, 0), 0.0f);
  EXPECT_EQ(x(1, 1), 0.0f);
}

}  // namespace
}  // namespace gsgcn::tensor

// Tensor library tests: Matrix semantics, GEMM kernels against the
// triple-loop reference (parameterized shape sweep), elementwise ops.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>

#include "tensor/gemm.hpp"
#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace gsgcn::tensor {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  return Matrix::gaussian(r, c, 1.0f, rng);
}

TEST(Matrix, ZeroInitialized) {
  const Matrix m(3, 4);
  for (std::size_t i = 0; i < m.size(); ++i) EXPECT_EQ(m.data()[i], 0.0f);
}

TEST(Matrix, DeepCopy) {
  Matrix a = random_matrix(4, 5, 1);
  Matrix b = a;
  b(0, 0) += 1.0f;
  EXPECT_NE(a(0, 0), b(0, 0));
  EXPECT_EQ(Matrix::max_abs_diff(a, a), 0.0f);
}

TEST(Matrix, MoveLeavesSourceEmpty) {
  Matrix a = random_matrix(4, 5, 2);
  Matrix b = std::move(a);
  EXPECT_EQ(b.rows(), 4u);
  EXPECT_EQ(a.size(), 0u);
}

TEST(Matrix, MaxAbsDiffShapeMismatchIsInf) {
  EXPECT_TRUE(std::isinf(Matrix::max_abs_diff(Matrix(2, 2), Matrix(2, 3))));
}

TEST(Matrix, GlorotWithinBound) {
  util::Xoshiro256 rng(3);
  const Matrix m = Matrix::glorot(64, 64, rng);
  const float bound = std::sqrt(6.0f / 128.0f);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_LE(std::abs(m.data()[i]), bound);
  }
}

TEST(Matrix, FrobeniusNorm) {
  Matrix m(2, 2);
  m(0, 0) = 3.0f;
  m(1, 1) = 4.0f;
  EXPECT_FLOAT_EQ(m.frobenius_norm(), 5.0f);
}

// ---- GEMM: parameterized shape sweep vs reference ----

using GemmShape = std::tuple<int, int, int>;  // M, K, N

class GemmSweep : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmSweep, NnMatchesReference) {
  const auto [m, k, n] = GetParam();
  const Matrix a = random_matrix(m, k, 10);
  const Matrix b = random_matrix(k, n, 11);
  Matrix c(m, n), ref(m, n);
  gemm_nn(a, b, c);
  reference::gemm_nn(a, b, ref);
  EXPECT_LT(Matrix::max_abs_diff(c, ref), 1e-3f * static_cast<float>(k));
}

TEST_P(GemmSweep, TnMatchesReference) {
  const auto [m, k, n] = GetParam();
  const Matrix a = random_matrix(k, m, 12);  // used transposed
  const Matrix b = random_matrix(k, n, 13);
  Matrix c(m, n), ref(m, n);
  gemm_tn(a, b, c);
  reference::gemm_tn(a, b, ref);
  EXPECT_LT(Matrix::max_abs_diff(c, ref), 1e-3f * static_cast<float>(k));
}

TEST_P(GemmSweep, NtMatchesReference) {
  const auto [m, k, n] = GetParam();
  const Matrix a = random_matrix(m, k, 14);
  const Matrix b = random_matrix(n, k, 15);  // used transposed
  Matrix c(m, n), ref(m, n);
  gemm_nt(a, b, c);
  reference::gemm_nt(a, b, ref);
  EXPECT_LT(Matrix::max_abs_diff(c, ref), 1e-3f * static_cast<float>(k));
}

TEST_P(GemmSweep, MultithreadedMatchesSingle) {
  const auto [m, k, n] = GetParam();
  const Matrix a = random_matrix(m, k, 16);
  const Matrix b = random_matrix(k, n, 17);
  Matrix c1(m, n), c4(m, n);
  gemm_nn(a, b, c1, 1.0f, 0.0f, 1);
  gemm_nn(a, b, c4, 1.0f, 0.0f, 4);
  EXPECT_EQ(Matrix::max_abs_diff(c1, c4), 0.0f);  // identical fp order
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSweep,
    ::testing::Values(GemmShape{1, 1, 1}, GemmShape{3, 5, 7},
                      GemmShape{8, 8, 8}, GemmShape{17, 33, 9},
                      GemmShape{64, 50, 121}, GemmShape{100, 256, 31},
                      GemmShape{5, 1, 5}, GemmShape{1, 128, 1}));

TEST(Gemm, AlphaBetaSemantics) {
  const Matrix a = random_matrix(4, 6, 20);
  const Matrix b = random_matrix(6, 5, 21);
  Matrix c = random_matrix(4, 5, 22);
  Matrix expect = c;
  Matrix ab(4, 5);
  reference::gemm_nn(a, b, ab);
  for (std::size_t i = 0; i < expect.size(); ++i) {
    expect.data()[i] = 2.0f * ab.data()[i] + 0.5f * expect.data()[i];
  }
  gemm_nn(a, b, c, 2.0f, 0.5f);
  EXPECT_LT(Matrix::max_abs_diff(c, expect), 1e-3f);
}

TEST(Gemm, BetaZeroIgnoresGarbage) {
  const Matrix a = random_matrix(3, 3, 23);
  const Matrix b = random_matrix(3, 3, 24);
  Matrix c(3, 3);
  c.fill(std::numeric_limits<float>::quiet_NaN());
  gemm_nn(a, b, c, 1.0f, 0.0f);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_FALSE(std::isnan(c.data()[i]));
  }
}

TEST(Gemm, ShapeMismatchThrows) {
  const Matrix a(3, 4), b(5, 6);
  Matrix c(3, 6);
  EXPECT_THROW(gemm_nn(a, b, c), std::invalid_argument);
  EXPECT_THROW(gemm_tn(a, b, c), std::invalid_argument);
  EXPECT_THROW(gemm_nt(a, b, c), std::invalid_argument);
}

// ---- elementwise ops ----

TEST(Ops, ReluForwardBackward) {
  Matrix x(2, 3);
  x(0, 0) = -1.0f;
  x(0, 1) = 2.0f;
  x(0, 2) = 0.0f;
  x(1, 0) = 3.0f;
  x(1, 1) = -0.5f;
  x(1, 2) = 1.0f;
  Matrix y(2, 3);
  relu_forward(x, y);
  EXPECT_EQ(y(0, 0), 0.0f);
  EXPECT_EQ(y(0, 1), 2.0f);
  EXPECT_EQ(y(0, 2), 0.0f);

  Matrix dy(2, 3);
  dy.fill(1.0f);
  Matrix dx(2, 3);
  relu_backward(x, dy, dx);
  EXPECT_EQ(dx(0, 0), 0.0f);
  EXPECT_EQ(dx(0, 1), 1.0f);
  EXPECT_EQ(dx(0, 2), 0.0f);  // subgradient at 0 chosen as 0
  EXPECT_EQ(dx(1, 0), 1.0f);
}

TEST(Ops, ConcatSplitRoundTrip) {
  const Matrix a = random_matrix(5, 3, 30);
  const Matrix b = random_matrix(5, 4, 31);
  Matrix cat(5, 7);
  concat_cols(a, b, cat);
  EXPECT_EQ(cat(2, 0), a(2, 0));
  EXPECT_EQ(cat(2, 3), b(2, 0));
  Matrix a2(5, 3), b2(5, 4);
  split_cols(cat, a2, b2);
  EXPECT_EQ(Matrix::max_abs_diff(a, a2), 0.0f);
  EXPECT_EQ(Matrix::max_abs_diff(b, b2), 0.0f);
}

TEST(Ops, ConcatShapeMismatchThrows) {
  Matrix a(5, 3), b(4, 4), out(5, 7);
  EXPECT_THROW(concat_cols(a, b, out), std::invalid_argument);
}

TEST(Ops, AddScaledAndScale) {
  Matrix x(2, 2), y(2, 2);
  x.fill(1.0f);
  y.fill(2.0f);
  add_scaled(x, y, 0.5f);
  EXPECT_EQ(x(0, 0), 2.0f);
  scale_inplace(x, 2.0f);
  EXPECT_EQ(x(1, 1), 4.0f);
}

TEST(Ops, GatherRows) {
  const Matrix src = random_matrix(10, 4, 32);
  const std::vector<std::uint32_t> idx = {7, 0, 7, 3};
  Matrix out(4, 4);
  gather_rows(src, idx, out);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_EQ(out(0, j), src(7, j));
    EXPECT_EQ(out(1, j), src(0, j));
    EXPECT_EQ(out(2, j), src(7, j));
    EXPECT_EQ(out(3, j), src(3, j));
  }
}

TEST(Ops, GatherRowsShapeMismatchThrows) {
  const Matrix src(10, 4);
  const std::vector<std::uint32_t> idx = {1, 2};
  Matrix out(3, 4);
  EXPECT_THROW(gather_rows(src, idx, out), std::invalid_argument);
}

TEST(Ops, BiasRowsAndGrad) {
  Matrix x(3, 2);
  const std::vector<float> bias = {1.0f, -2.0f};
  add_bias_rows(x, bias);
  EXPECT_EQ(x(0, 0), 1.0f);
  EXPECT_EQ(x(2, 1), -2.0f);

  Matrix dy(3, 2);
  dy.fill(1.0f);
  std::vector<float> dbias(2, 99.0f);
  bias_grad(dy, dbias);
  EXPECT_EQ(dbias[0], 3.0f);
  EXPECT_EQ(dbias[1], 3.0f);
}

TEST(Ops, L2NormalizeRows) {
  Matrix x(2, 2);
  x(0, 0) = 3.0f;
  x(0, 1) = 4.0f;
  // second row all zero: must stay zero (no NaN)
  l2_normalize_rows(x);
  EXPECT_FLOAT_EQ(x(0, 0), 0.6f);
  EXPECT_FLOAT_EQ(x(0, 1), 0.8f);
  EXPECT_EQ(x(1, 0), 0.0f);
  EXPECT_EQ(x(1, 1), 0.0f);
}

}  // namespace
}  // namespace gsgcn::tensor

// The perf/roofline layer: work-model arithmetic, the forced null
// backend (counters read as zero and available == false — never
// garbage), PerfProfiler accumulation semantics (call counts, wall/work
// sums, the pmu_samples == calls availability rule), machine probing,
// report JSON well-formedness (unavailable counter metrics must be
// null), and the GSGCN_PERF_REGION* compile-out contract.
//
// Nothing here assumes a live PMU: asserts about available == true are
// made only on hand-constructed PerfDelta values fed straight into
// PerfProfiler::record(), so the suite passes identically on bare metal,
// in containers without CAP_PERFMON, and on VMs with no virtualized PMU.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/perf.hpp"
#include "obs/roofline.hpp"
#include "util/json_writer.hpp"

namespace gsgcn {
namespace {

obs::PerfDelta make_delta(bool available, std::uint64_t wall_ns,
                          double cycles = 0.0, double instructions = 0.0,
                          double llc_loads = 0.0, double llc_misses = 0.0) {
  obs::PerfDelta d;
  d.available = available;
  d.wall_ns = wall_ns;
  d.value[static_cast<std::size_t>(obs::PerfSlot::kCycles)] = cycles;
  d.value[static_cast<std::size_t>(obs::PerfSlot::kInstructions)] =
      instructions;
  d.value[static_cast<std::size_t>(obs::PerfSlot::kLlcLoads)] = llc_loads;
  d.value[static_cast<std::size_t>(obs::PerfSlot::kLlcMisses)] = llc_misses;
  return d;
}

// ---------------------------------------------------------- work models --

TEST(RooflineWork, GemmCountsFlopsAndCompulsoryBytes) {
  const obs::Work w = obs::gemm_work(2, 3, 4, /*c_read_and_written=*/false);
  EXPECT_DOUBLE_EQ(w.flops, 2.0 * 2 * 3 * 4);
  // A (2x3) + B (3x4) read, C (2x4) written, 4 bytes each.
  EXPECT_DOUBLE_EQ(w.bytes, 4.0 * (2 * 3 + 3 * 4 + 2 * 4));
  const obs::Work wb = obs::gemm_work(2, 3, 4, /*c_read_and_written=*/true);
  EXPECT_DOUBLE_EQ(wb.flops, w.flops);  // beta scaling is noise vs 2mnk
  EXPECT_DOUBLE_EQ(wb.bytes, 4.0 * (2 * 3 + 3 * 4 + 2 * 2 * 4));
}

TEST(RooflineWork, SpmmCountsEdgesAndFeatureTraffic) {
  const obs::Work w = obs::spmm_work(/*n=*/10, /*e=*/40, /*cols=*/8);
  EXPECT_DOUBLE_EQ(w.flops, 8.0 * (40 + 10));  // adds + the mean divide
  // X and Y (n x f each) + one u32 per edge + per-row offsets.
  EXPECT_DOUBLE_EQ(w.bytes, 4.0 * (2 * 10 * 8 + 40 + 10));
}

TEST(RooflineWork, GatherAndAdam) {
  const obs::Work g = obs::gather_work(5, 7);
  EXPECT_DOUBLE_EQ(g.flops, 0.0);  // pure data movement
  EXPECT_DOUBLE_EQ(g.bytes, 8.0 * 5 * 7);
  const obs::Work a = obs::adam_work(100);
  EXPECT_DOUBLE_EQ(a.flops, 10.0 * 100);
  EXPECT_DOUBLE_EQ(a.bytes, 28.0 * 100);
}

// --------------------------------------------------------- null backend --

TEST(PerfNullBackend, ForcedNullReadsZeroNeverGarbage) {
  obs::perf_set_force_null(true);
  EXPECT_FALSE(obs::perf_counters_available());
  const obs::PerfReading a = obs::perf_read_thread();
  EXPECT_FALSE(a.available);
  for (const std::uint64_t v : a.value) EXPECT_EQ(v, 0u);
  const obs::PerfReading b = obs::perf_read_thread();
  EXPECT_GE(b.wall_ns, a.wall_ns);  // wall clock still works
  const obs::PerfDelta d = obs::perf_delta(a, b);
  EXPECT_FALSE(d.available);
  for (const double v : d.value) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_DOUBLE_EQ(d.ipc(), 0.0);
  EXPECT_DOUBLE_EQ(d.llc_miss_rate(), 0.0);
  obs::perf_set_force_null(false);
}

TEST(PerfNullBackend, RegionStillCountsCallsWallAndWork) {
  obs::perf_set_force_null(true);
  obs::PerfProfiler& prof = obs::PerfProfiler::instance();
  prof.reset();
  prof.enable();
  {
    obs::PerfRegion r("t.null", /*flops=*/100.0, /*bytes=*/200.0);
  }
  { obs::PerfRegion r("t.null", 100.0, 200.0); }
  prof.disable();
  const std::vector<obs::PhasePerf> phases = prof.scrape();
  ASSERT_EQ(phases.size(), 1u);
  const obs::PhasePerf& p = phases[0];
  EXPECT_EQ(p.name, "t.null");
  EXPECT_EQ(p.calls, 2u);
  EXPECT_EQ(p.pmu_samples, 0u);
  EXPECT_FALSE(p.available);
  EXPECT_DOUBLE_EQ(p.flops, 200.0);
  EXPECT_DOUBLE_EQ(p.bytes, 400.0);
  // Counter-derived metrics degrade to 0, not to garbage.
  EXPECT_DOUBLE_EQ(p.ipc(), 0.0);
  EXPECT_DOUBLE_EQ(p.llc_miss_rate(), 0.0);
  EXPECT_DOUBLE_EQ(p.measured_gbps(), 0.0);
  // Wall-clock throughput keeps working (wall may be ~0 but not negative).
  EXPECT_GE(p.seconds(), 0.0);
  EXPECT_DOUBLE_EQ(p.arithmetic_intensity(), 0.5);
  prof.reset();
  obs::perf_set_force_null(false);
}

// ------------------------------------------------------------- profiler --

TEST(PerfProfiler, DisabledRegionsRecordNothing) {
  obs::PerfProfiler& prof = obs::PerfProfiler::instance();
  prof.reset();
  ASSERT_FALSE(prof.enabled());
  { obs::PerfRegion r("t.off", 1.0, 1.0); }
  EXPECT_TRUE(prof.scrape().empty());
}

TEST(PerfProfiler, RecordAccumulatesPerPhase) {
  obs::PerfProfiler& prof = obs::PerfProfiler::instance();
  prof.reset();
  prof.enable();
  // Two pmu-backed folds into "t.a": 1e9 cycles / 2e9 instr over 0.5 s
  // each, plus 1 GFLOP modeled work per fold.
  const obs::PerfDelta live = make_delta(true, 500'000'000ull, 1e9, 2e9,
                                         1000.0, 250.0);
  prof.record("t.a", live, /*flops=*/1e9, /*bytes=*/5e8);
  prof.record("t.a", live, 1e9, 5e8);
  prof.record("t.b", make_delta(false, 1'000'000'000ull), 0.0, 4e9);
  prof.disable();
  const std::vector<obs::PhasePerf> phases = prof.scrape();
  ASSERT_EQ(phases.size(), 2u);  // first-recorded order
  const obs::PhasePerf& a = phases[0];
  EXPECT_EQ(a.name, "t.a");
  EXPECT_EQ(a.calls, 2u);
  EXPECT_EQ(a.pmu_samples, 2u);
  EXPECT_TRUE(a.available);
  EXPECT_DOUBLE_EQ(a.counter(obs::PerfSlot::kCycles), 2e9);
  EXPECT_DOUBLE_EQ(a.ipc(), 2.0);
  EXPECT_DOUBLE_EQ(a.llc_miss_rate(), 0.25);
  EXPECT_DOUBLE_EQ(a.seconds(), 1.0);
  EXPECT_DOUBLE_EQ(a.gflops(), 2.0);      // 2 GFLOP / 1 s
  EXPECT_DOUBLE_EQ(a.model_gbps(), 1.0);  // 1 GB / 1 s
  EXPECT_DOUBLE_EQ(a.arithmetic_intensity(), 2.0);
  const obs::PhasePerf& b = phases[1];
  EXPECT_EQ(b.name, "t.b");
  EXPECT_FALSE(b.available);
  EXPECT_DOUBLE_EQ(b.model_gbps(), 4.0);
  prof.reset();
  EXPECT_TRUE(prof.scrape().empty());
}

TEST(PerfProfiler, MixedPmuAndNullFoldsAreUnavailable) {
  // One fold with live counters + one on the null backend: ratio metrics
  // would be computed from partial counts, so the phase must degrade to
  // available == false as a whole.
  obs::PerfProfiler& prof = obs::PerfProfiler::instance();
  prof.reset();
  prof.enable();
  prof.record("t.mixed", make_delta(true, 1000, 100.0, 200.0), 0.0, 0.0);
  prof.record("t.mixed", make_delta(false, 1000), 0.0, 0.0);
  prof.disable();
  const std::vector<obs::PhasePerf> phases = prof.scrape();
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].calls, 2u);
  EXPECT_EQ(phases[0].pmu_samples, 1u);
  EXPECT_FALSE(phases[0].available);
  EXPECT_DOUBLE_EQ(phases[0].ipc(), 0.0);
  prof.reset();
}

// -------------------------------------------------------------- machine --

TEST(Machine, ProbeYieldsPlausibleHost) {
  const obs::MachineInfo& m = obs::machine_info();
  EXPECT_FALSE(m.hostname.empty());
  EXPECT_GE(m.num_cpus, 1);
  EXPECT_GT(m.peak_flops_per_cycle, 0.0);
  // Cache sizes are 0 when sysfs is absent; never negative.
  EXPECT_GE(m.l1d_bytes, 0);
  EXPECT_GE(m.l2_bytes, 0);
  EXPECT_GE(m.l3_bytes, 0);
  const std::string json = obs::machine_info_json(m);
  EXPECT_TRUE(util::json_valid(json));
  EXPECT_NE(json.find("\"hostname\""), std::string::npos);
  EXPECT_NE(json.find("\"peak_flops_per_cycle\""), std::string::npos);
}

// --------------------------------------------------------------- report --

TEST(RooflineReport, UnavailableCounterMetricsAreNull) {
  obs::PhasePerf p;
  p.name = "t.report";
  p.calls = 3;
  p.pmu_samples = 0;
  p.wall_ns = 2'000'000'000ull;
  p.flops = 4e9;
  p.bytes = 1e9;
  p.available = false;
  const std::string json =
      obs::roofline_report_json({p}, obs::machine_info());
  EXPECT_TRUE(util::json_valid(json));
  EXPECT_NE(json.find("\"type\":\"perf_report\""), std::string::npos);
  EXPECT_NE(json.find("\"t.report\""), std::string::npos);
  // Wall-derived metrics are real numbers ...
  EXPECT_NE(json.find("\"gflops\":2"), std::string::npos);
  // ... counter-derived ones are null, never fabricated.
  EXPECT_NE(json.find("\"ipc\":null"), std::string::npos);
  EXPECT_NE(json.find("\"llc_miss_rate\":null"), std::string::npos);
  EXPECT_NE(json.find("\"cycles\":null"), std::string::npos);
  EXPECT_NE(json.find("\"available\":false"), std::string::npos);
}

TEST(RooflineReport, AvailablePhaseCarriesRawCounters) {
  obs::PhasePerf p;
  p.name = "t.live";
  p.calls = 1;
  p.pmu_samples = 1;
  p.wall_ns = 1'000'000'000ull;
  p.counters[static_cast<std::size_t>(obs::PerfSlot::kCycles)] = 1536.0;
  p.counters[static_cast<std::size_t>(obs::PerfSlot::kInstructions)] = 3072.0;
  p.available = true;
  const std::string json =
      obs::roofline_report_json({p}, obs::machine_info());
  EXPECT_TRUE(util::json_valid(json));
  EXPECT_NE(json.find("\"ipc\":2"), std::string::npos);
  EXPECT_NE(json.find("\"cycles\":1536"), std::string::npos);
  EXPECT_EQ(json.find("\"ipc\":null"), std::string::npos);
}

TEST(RooflineReport, WriteReportProducesValidFile) {
  obs::PerfProfiler& prof = obs::PerfProfiler::instance();
  prof.reset();
  prof.enable();
  prof.record("t.file", make_delta(false, 1000), 10.0, 20.0);
  const std::string path = ::testing::TempDir() + "gsgcn_perf_report.json";
  EXPECT_TRUE(obs::write_roofline_report(path));
  prof.disable();
  prof.reset();
  std::ifstream in(path);
  std::stringstream file;
  file << in.rdbuf();
  EXPECT_TRUE(util::json_valid(file.str()));
  EXPECT_NE(file.str().find("\"t.file\""), std::string::npos);
  std::remove(path.c_str());
  EXPECT_FALSE(obs::write_roofline_report("/nonexistent-dir/x.json"));
}

// ------------------------------------------------- compile-out contract --

TEST(PerfCompileOut, MacroOperandsUnevaluatedWhenDisabled) {
  obs::PerfProfiler& prof = obs::PerfProfiler::instance();
  prof.reset();
  int evals = 0;
  [[maybe_unused]] auto tick = [&evals] { return static_cast<double>(++evals); };
  {
    GSGCN_PERF_REGION_WORK("t.macro", tick(), tick());
  }
  {
    GSGCN_PERF_REGION("t.macro2");
  }
  if (obs::compiled_in()) {
    EXPECT_EQ(evals, 2);  // each operand evaluated exactly once
  } else {
    EXPECT_EQ(evals, 0);  // compiled out: operands untouched
  }
  // Profiler disabled either way: nothing recorded.
  EXPECT_TRUE(prof.scrape().empty());
}

}  // namespace
}  // namespace gsgcn

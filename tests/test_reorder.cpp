// Reordering tests: relabelings must be graph isomorphisms, with the
// promised orderings, and per-vertex data must follow.

#include <gtest/gtest.h>

#include <set>

#include "graph/analysis.hpp"
#include "graph/reorder.hpp"
#include "test_helpers.hpp"

namespace gsgcn::graph {
namespace {

/// Edge set under a mapping back to original ids.
std::set<std::pair<Vid, Vid>> edges_in_orig_ids(const CsrGraph& g,
                                                const std::vector<Vid>& new_to_old) {
  std::set<std::pair<Vid, Vid>> out;
  for (Vid u = 0; u < g.num_vertices(); ++u) {
    for (const Vid v : g.neighbors(u)) {
      const Vid ou = new_to_old[u], ov = new_to_old[v];
      out.insert({std::min(ou, ov), std::max(ou, ov)});
    }
  }
  return out;
}

std::set<std::pair<Vid, Vid>> edges_identity(const CsrGraph& g) {
  std::vector<Vid> ident(g.num_vertices());
  for (Vid v = 0; v < g.num_vertices(); ++v) ident[v] = v;
  return edges_in_orig_ids(g, ident);
}

TEST(ReorderDegree, IsIsomorphism) {
  const CsrGraph g = gsgcn::testing::small_er(200, 900, 1);
  const Reordering r = reorder_by_degree(g);
  EXPECT_TRUE(r.graph.validate().empty()) << r.graph.validate();
  EXPECT_EQ(edges_in_orig_ids(r.graph, r.new_to_old), edges_identity(g));
}

TEST(ReorderDegree, DegreesDescending) {
  const CsrGraph g = gsgcn::testing::small_er(200, 900, 2);
  const Reordering r = reorder_by_degree(g);
  for (Vid v = 1; v < r.graph.num_vertices(); ++v) {
    EXPECT_GE(r.graph.degree(v - 1), r.graph.degree(v));
  }
}

TEST(ReorderDegree, MapsAreInverse) {
  const CsrGraph g = gsgcn::testing::small_er(150, 600, 3);
  const Reordering r = reorder_by_degree(g);
  for (Vid v = 0; v < 150; ++v) {
    EXPECT_EQ(r.old_to_new[r.new_to_old[v]], v);
    EXPECT_EQ(r.new_to_old[r.old_to_new[v]], v);
  }
}

TEST(ReorderBfs, IsIsomorphism) {
  const CsrGraph g = gsgcn::testing::small_er(200, 900, 4);
  const Reordering r = reorder_by_bfs(g, 0);
  EXPECT_TRUE(r.graph.validate().empty()) << r.graph.validate();
  EXPECT_EQ(edges_in_orig_ids(r.graph, r.new_to_old), edges_identity(g));
}

TEST(ReorderBfs, RootGetsIdZero) {
  const CsrGraph g = gsgcn::testing::tiny_graph();
  const Reordering r = reorder_by_bfs(g, 3);
  EXPECT_EQ(r.new_to_old[0], 3u);
}

TEST(ReorderBfs, CoversDisconnectedComponents) {
  const CsrGraph g = CsrGraph::from_edges(8, {{0, 1}, {2, 3}, {4, 5}});
  const Reordering r = reorder_by_bfs(g, 0);
  std::set<Vid> seen(r.new_to_old.begin(), r.new_to_old.end());
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_EQ(num_components(r.graph), num_components(g));
}

TEST(ReorderBfs, NeighborsGetNearbyIds) {
  // On a long ring, BFS order gives mean |id(u) - id(v)| per edge far
  // smaller than a degree ordering does.
  util::Xoshiro256 rng(5);
  const CsrGraph g = graph::watts_strogatz(500, 2, 0.0, rng);
  const Reordering bfs = reorder_by_bfs(g, 0);
  auto mean_span = [](const CsrGraph& h) {
    double total = 0.0;
    for (Vid u = 0; u < h.num_vertices(); ++u) {
      for (const Vid v : h.neighbors(u)) {
        total += std::abs(static_cast<double>(u) - v);
      }
    }
    return total / static_cast<double>(h.num_edges());
  };
  EXPECT_LT(mean_span(bfs.graph), 10.0);  // ring BFS: neighbors adjacent
}

TEST(ApplyReordering, PermutesData) {
  const CsrGraph g = gsgcn::testing::tiny_graph();
  const Reordering r = reorder_by_degree(g);
  std::vector<int> labels = {10, 11, 12, 13, 14};
  const auto moved = apply_reordering(labels, r.new_to_old);
  for (Vid v = 0; v < 5; ++v) {
    EXPECT_EQ(moved[v], labels[r.new_to_old[v]]);
  }
}

}  // namespace
}  // namespace gsgcn::graph

// Communication-model (Theorem 2) tests: the closed-form g_comm, the Q*
// choice, the 2-approximation guarantee under the theorem's
// preconditions, and the lower bound.

#include <gtest/gtest.h>

#include "graph/partition.hpp"
#include "propagation/comm_model.hpp"
#include "test_helpers.hpp"

namespace gsgcn::propagation {
namespace {

CommModelParams paper_params() {
  // The paper's "typical values": n ≤ 8000, f = 512, d = 15,
  // DOUBLE features, INT16 indices, 256KB cache.
  CommModelParams m;
  m.n = 8000;
  m.d = 15.0;
  m.f = 512;
  m.elem_bytes = 8;
  m.idx_bytes = 2;
  m.cache_bytes = 256 * 1024;
  m.processors = 40;
  return m;
}

TEST(CommModel, GcompIndependentOfPartitioning) {
  const CommModelParams m = paper_params();
  EXPECT_DOUBLE_EQ(g_comp(m), 8000.0 * 15.0 * 512.0);
}

TEST(CommModel, GcommFormula) {
  const CommModelParams m = paper_params();
  // P=1, Q=1, γ=1: 2·n·d + 8·n·f.
  const double expect = 2.0 * 8000 * 15 + 8.0 * 8000 * 512;
  EXPECT_DOUBLE_EQ(g_comm(m, 1, 1, 1.0), expect);
}

TEST(CommModel, GcommRejectsBadArgs) {
  const CommModelParams m = paper_params();
  EXPECT_THROW(g_comm(m, 0, 1, 1.0), std::invalid_argument);
  EXPECT_THROW(g_comm(m, 1, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(g_comm(m, 1, 1, 1.5), std::invalid_argument);
}

TEST(CommModel, LowerBoundHoldsForAllFeasiblePQ) {
  const CommModelParams m = paper_params();
  for (int p = 1; p <= 16; p *= 2) {
    for (int q = 1; q <= 512; q *= 2) {
      // γ_P ≥ 1/P always; use the most favorable γ for the adversary.
      EXPECT_GE(g_comm(m, p, q, 1.0 / p), g_comm_lower_bound(m) - 1e-6);
    }
  }
}

TEST(CommModel, ChooseQSatisfiesConstraints) {
  const CommModelParams m = paper_params();
  const int q = choose_feature_partitions(m);
  EXPECT_GE(q, m.processors);                       // Q ≥ C
  const double per_slice_bytes =
      static_cast<double>(m.elem_bytes) * m.n * m.f / q;
  EXPECT_LE(per_slice_bytes, static_cast<double>(m.cache_bytes));  // fits
}

TEST(CommModel, ChooseQCacheBound) {
  CommModelParams m = paper_params();
  m.processors = 1;
  // ⌈8·8000·512 bytes / 256 KiB⌉ = ⌈32768000/262144⌉ = 125 slices needed.
  EXPECT_GE(choose_feature_partitions(m), 125);
}

TEST(CommModel, ChooseQThrowsOnZeroCache) {
  // Regression: cache_bytes = 0 used to feed an unguarded division whose
  // infinite quotient hit UB on the float→int cast.
  CommModelParams m = paper_params();
  m.cache_bytes = 0;
  EXPECT_THROW(choose_feature_partitions(m), std::invalid_argument);
}

TEST(CommModel, IndexStreamBoundUsesFullCache) {
  // Pins the paper's form of the second precondition: idx·n·d ≤ S_cache
  // (2nd ≤ S with idx = 2 bytes) — the FULL cache, not half of it. An
  // index stream between S/2 and S must still pass; beyond S it fails.
  CommModelParams m = paper_params();
  m.n = 6000;  // idx·n·d = 2·6000·15 = 180000 ∈ (131072, 262144]
  EXPECT_TRUE(theorem2_preconditions(m));
  m.n = 9000;  // 270000 > 262144
  EXPECT_FALSE(theorem2_preconditions(m));
}

TEST(CommModel, Theorem2TwoApproximation) {
  // Under the preconditions, g_comm(1, Q*) ≤ 2 · lower bound, hence ≤ 2 ·
  // optimum over all feasible (P, Q, γ).
  const CommModelParams m = paper_params();
  ASSERT_TRUE(theorem2_preconditions(m));
  const int q_star = choose_feature_partitions(m);
  const double ours = g_comm(m, 1, q_star, 1.0);
  EXPECT_LE(ours, 2.0 * g_comm_lower_bound(m) * (1.0 + 1e-9));
}

TEST(CommModel, Theorem2SweepOverScenarios) {
  // Sweep n, f, C: whenever the preconditions hold, the 2-approximation
  // must hold as well.
  for (std::int64_t n : {500, 2000, 8000}) {
    for (std::int64_t f : {64, 256, 512}) {
      for (int c : {1, 4, 16, 40, 136}) {
        CommModelParams m = paper_params();
        m.n = n;
        m.f = f;
        m.processors = c;
        if (!theorem2_preconditions(m)) continue;
        const int q = choose_feature_partitions(m);
        EXPECT_LE(g_comm(m, 1, q, 1.0),
                  2.0 * g_comm_lower_bound(m) * (1.0 + 1e-9))
            << "n=" << n << " f=" << f << " C=" << c;
      }
    }
  }
}

TEST(CommModel, PreconditionsFailForHugeC) {
  CommModelParams m = paper_params();
  m.processors = 10000;  // C > 4f/d
  EXPECT_FALSE(theorem2_preconditions(m));
}

TEST(CommModel, PreconditionsFailForHugeGraph) {
  CommModelParams m = paper_params();
  m.n = 10'000'000;  // idx stream no longer fits cache
  EXPECT_FALSE(theorem2_preconditions(m));
}

TEST(CommModel, FeatureOnlyBeatsGraphPartitioningOnMeasuredGamma) {
  // Measured γ_P on a real small graph: with d ≫ 1 and few parts, each
  // part still touches most sources, so P > 1 pays ~P× feature traffic.
  const auto g = gsgcn::testing::small_er(500, 5000, 3);
  CommModelParams m;
  m.n = g.num_vertices();
  m.d = g.average_degree();
  m.f = 256;
  m.elem_bytes = 4;
  m.idx_bytes = 4;
  m.processors = 8;
  const int q_star = choose_feature_partitions(m);
  const double ours = g_comm(m, 1, q_star, 1.0);
  for (std::uint32_t parts : {2u, 4u, 8u}) {
    const auto part = graph::partition_range(g.num_vertices(), parts);
    const double gamma = graph::gamma_mean(g, part);
    // Feature slices so each part's sources fit cache (q ≥ 1).
    const double val = g_comm(m, static_cast<int>(parts),
                              std::max(1, q_star / static_cast<int>(parts)),
                              gamma);
    EXPECT_LE(ours, val * 2.0 + 1e-6);
  }
}

}  // namespace
}  // namespace gsgcn::propagation

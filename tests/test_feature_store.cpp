// FeatureStore + codec tests: codec round-trips (including an exhaustive
// sweep of every fp16 bit pattern), scalar-vs-SIMD bit identity, the
// int8 per-column error bound, gather == to_dense for every dtype,
// bit-identity across thread counts and cache sizes, out-of-range
// pre-scan behaviour, stats accounting, the mmap on-disk round trip and
// its corruption rejection, and concurrent gathers hammering the shared
// stats block (run under TSan via the `concurrency` label).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "data/feature_store.hpp"
#include "tensor/codec.hpp"
#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace gsgcn::data {
namespace {

namespace fs = std::filesystem;
namespace codec = tensor::codec;

std::uint32_t bits_of(float x) {
  std::uint32_t u;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

tensor::Matrix random_features(std::size_t rows, std::size_t cols,
                               std::uint64_t seed, float stddev = 2.0f) {
  util::Xoshiro256 rng(seed);
  return tensor::Matrix::gaussian(rows, cols, stddev, rng);
}

std::vector<std::uint32_t> random_indices(std::size_t n, std::size_t rows,
                                          std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint32_t> idx(n);
  for (auto& v : idx) v = static_cast<std::uint32_t>(rng.below(rows));
  return idx;
}

bool matrices_bit_identical(const tensor::Matrix& a, const tensor::Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return std::memcmp(a.data(), b.data(),
                     a.rows() * a.cols() * sizeof(float)) == 0;
}

// ---------------------------------------------------------------------------
// Dtype plumbing.
// ---------------------------------------------------------------------------

TEST(FeatureDtype, NamesRoundTrip) {
  for (FeatureDtype d : {FeatureDtype::kF32, FeatureDtype::kF16,
                         FeatureDtype::kBf16, FeatureDtype::kI8}) {
    EXPECT_EQ(parse_feature_dtype(feature_dtype_name(d)), d);
  }
  EXPECT_EQ(feature_dtype_bytes(FeatureDtype::kF32), 4u);
  EXPECT_EQ(feature_dtype_bytes(FeatureDtype::kF16), 2u);
  EXPECT_EQ(feature_dtype_bytes(FeatureDtype::kBf16), 2u);
  EXPECT_EQ(feature_dtype_bytes(FeatureDtype::kI8), 1u);
  EXPECT_THROW(parse_feature_dtype("float64"), std::invalid_argument);
  EXPECT_THROW(parse_feature_dtype(""), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// fp16 codec: exhaustive over all 65536 bit patterns.
// ---------------------------------------------------------------------------

TEST(CodecF16, ExhaustiveWidenNarrowRoundTrip) {
  for (std::uint32_t h = 0; h < 0x10000u; ++h) {
    const auto half = static_cast<std::uint16_t>(h);
    const float wide = codec::f16_to_f32(half);
    const bool is_nan = (h & 0x7C00u) == 0x7C00u && (h & 0x03FFu) != 0u;
    if (is_nan) {
      // NaNs widen to NaNs and narrow back to NaNs; the narrow sets the
      // quiet bit, so the payload need not round-trip bit-exactly.
      EXPECT_TRUE(std::isnan(wide)) << "half 0x" << std::hex << h;
      const std::uint16_t back = codec::f32_to_f16(wide);
      EXPECT_EQ(back & 0x7C00u, 0x7C00u) << "half 0x" << std::hex << h;
      EXPECT_NE(back & 0x03FFu, 0u) << "half 0x" << std::hex << h;
    } else {
      // Every non-NaN half is exactly representable in fp32, so the
      // round trip must reproduce the original bits (zeros, subnormals,
      // infinities included).
      EXPECT_EQ(codec::f32_to_f16(wide), half) << "half 0x" << std::hex << h;
    }
  }
}

TEST(CodecF16, ExhaustiveScalarMatchesDispatched) {
  // One pass over every half via the row kernels: the F16C path (when
  // the CPU has it) must agree with the scalar reference bit-for-bit.
  std::vector<std::uint16_t> in(0x10000);
  for (std::uint32_t h = 0; h < 0x10000u; ++h) {
    in[h] = static_cast<std::uint16_t>(h);
  }
  std::vector<float> simd(in.size()), scalar(in.size());
  codec::widen_f16_row(in.data(), simd.data(), in.size());
  codec::widen_f16_row_scalar(in.data(), scalar.data(), in.size());
  EXPECT_EQ(std::memcmp(simd.data(), scalar.data(),
                        in.size() * sizeof(float)),
            0);
}

TEST(CodecF16, NarrowScalarMatchesDispatched) {
  util::Xoshiro256 rng(123);
  std::vector<float> in(4096 + 3);  // odd length exercises the tail
  for (auto& x : in) {
    x = (static_cast<float>(rng.below(1u << 20)) - (1u << 19)) / 512.0f;
  }
  in[0] = 0.0f;
  in[1] = -0.0f;
  in[2] = std::numeric_limits<float>::infinity();
  in[3] = std::numeric_limits<float>::quiet_NaN();
  in[4] = 1e-8f;   // subnormal half territory
  in[5] = 65504.0f;   // max finite half
  in[6] = 65520.0f;   // rounds to inf
  std::vector<std::uint16_t> simd(in.size()), scalar(in.size());
  codec::narrow_f16_row(in.data(), simd.data(), in.size());
  codec::narrow_f16_row_scalar(in.data(), scalar.data(), in.size());
  EXPECT_EQ(std::memcmp(simd.data(), scalar.data(),
                        in.size() * sizeof(std::uint16_t)),
            0);
}

// ---------------------------------------------------------------------------
// bf16 codec.
// ---------------------------------------------------------------------------

TEST(CodecBf16, WidenIsExactTopBits) {
  for (std::uint32_t h = 0; h < 0x10000u; ++h) {
    const bool is_nan = (h & 0x7F80u) == 0x7F80u && (h & 0x007Fu) != 0u;
    const float wide = codec::bf16_to_f32(static_cast<std::uint16_t>(h));
    EXPECT_EQ(bits_of(wide), h << 16);
    if (!is_nan) {
      EXPECT_EQ(codec::f32_to_bf16(wide), h);
    }
  }
}

TEST(CodecBf16, NarrowRoundsToNearestEven) {
  const auto f32_from_bits = [](std::uint32_t u) {
    float x;
    std::memcpy(&x, &u, sizeof(x));
    return x;
  };
  // 0x3F808000 sits exactly between bf16 neighbours 0x3F80 and 0x3F81:
  // the tie goes to the even mantissa (0x3F80).
  EXPECT_EQ(codec::f32_to_bf16(f32_from_bits(0x3F808000u)), 0x3F80u);
  // One ulp above the tie rounds up.
  EXPECT_EQ(codec::f32_to_bf16(f32_from_bits(0x3F808001u)), 0x3F81u);
  // A tie whose lower bf16 neighbour is odd rounds up to the even one.
  EXPECT_EQ(codec::f32_to_bf16(f32_from_bits(0x3F818000u)), 0x3F82u);
  // NaN stays NaN after truncation.
  const std::uint16_t nan_b =
      codec::f32_to_bf16(std::numeric_limits<float>::quiet_NaN());
  EXPECT_TRUE(std::isnan(codec::bf16_to_f32(nan_b)));
}

// ---------------------------------------------------------------------------
// int8 codec and its accuracy bound.
// ---------------------------------------------------------------------------

TEST(CodecI8, WidenScalarMatchesDispatched) {
  util::Xoshiro256 rng(7);
  const std::size_t n = 1021;  // prime length → tail path
  std::vector<std::int8_t> q(n);
  std::vector<float> scale(n), bias(n), simd(n), scalar(n);
  for (std::size_t j = 0; j < n; ++j) {
    q[j] = static_cast<std::int8_t>(static_cast<int>(rng.below(256)) - 128);
    scale[j] = 0.001f + 0.01f * static_cast<float>(rng.below(1000));
    bias[j] = -scale[j] * static_cast<float>(static_cast<int>(rng.below(200)) - 100);
  }
  codec::widen_i8_row(q.data(), scale.data(), bias.data(), simd.data(), n);
  codec::widen_i8_row_scalar(q.data(), scale.data(), bias.data(),
                             scalar.data(), n);
  EXPECT_EQ(std::memcmp(simd.data(), scalar.data(), n * sizeof(float)), 0);
}

TEST(FeatureStoreI8, PerColumnErrorBoundedByHalfScale) {
  const std::size_t rows = 512, cols = 9;
  tensor::Matrix src = random_features(rows, cols, 31);
  // Give columns very different ranges so per-column scales matter.
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      src.row(i)[j] *= static_cast<float>(j * j + 1);
    }
  }
  FeatureStoreOptions opts;
  opts.dtype = FeatureDtype::kI8;
  const FeatureStore store = FeatureStore::build(src, opts);
  const tensor::Matrix deq = store.to_dense();

  // Recover each column's scale from the quantization grid: dequantized
  // values are (q - zp) * scale, so consecutive distinct values differ
  // by >= scale. Bound instead via the contract: |x - deq(x)| <= scale/2
  // (+ a whisker of float rounding slack) for every in-range value.
  for (std::size_t j = 0; j < cols; ++j) {
    float mn = src.row(0)[j], mx = mn;
    for (std::size_t i = 0; i < rows; ++i) {
      mn = std::min(mn, src.row(i)[j]);
      mx = std::max(mx, src.row(i)[j]);
    }
    const float scale = (mx - mn) / 255.0f;
    float max_err = 0.0f;
    for (std::size_t i = 0; i < rows; ++i) {
      max_err = std::max(max_err, std::fabs(src.row(i)[j] - deq.row(i)[j]));
    }
    EXPECT_LE(max_err, scale * 0.5f * (1.0f + 1e-4f) + 1e-7f)
        << "column " << j;
  }
}

TEST(FeatureStoreI8, ConstantColumnsAreExact) {
  tensor::Matrix src(16, 3);
  for (std::size_t i = 0; i < 16; ++i) {
    src.row(i)[0] = 0.0f;
    src.row(i)[1] = -3.5f;
    src.row(i)[2] = 42.0f;
  }
  FeatureStoreOptions opts;
  opts.dtype = FeatureDtype::kI8;
  const tensor::Matrix deq = FeatureStore::build(src, opts).to_dense();
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(deq.row(i)[0], 0.0f);
    EXPECT_FLOAT_EQ(deq.row(i)[1], -3.5f);
    EXPECT_FLOAT_EQ(deq.row(i)[2], 42.0f);
  }
}

// ---------------------------------------------------------------------------
// Gather semantics.
// ---------------------------------------------------------------------------

class FeatureStoreGatherTest
    : public ::testing::TestWithParam<FeatureDtype> {};

TEST_P(FeatureStoreGatherTest, GatherMatchesToDenseRows) {
  const std::size_t rows = 203, cols = 17;  // odd cols → SIMD tail paths
  const tensor::Matrix src = random_features(rows, cols, 5);
  FeatureStoreOptions opts;
  opts.dtype = GetParam();
  const FeatureStore store = FeatureStore::build(src, opts);
  const tensor::Matrix dense = store.to_dense();

  const auto idx = random_indices(97, rows, 11);  // duplicates likely
  tensor::Matrix out(idx.size(), cols);
  store.gather(idx, out);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    EXPECT_EQ(std::memcmp(out.row(i), dense.row(idx[i]),
                          cols * sizeof(float)),
              0)
        << "row " << i << " (source " << idx[i] << ")";
  }
}

TEST_P(FeatureStoreGatherTest, BitIdenticalAcrossThreadsAndCacheSizes) {
  const std::size_t rows = 301, cols = 23;
  const tensor::Matrix src = random_features(rows, cols, 13);
  const auto idx = random_indices(256, rows, 17);

  // Hot order: reversed ids, so cached rows are NOT the gathered prefix.
  std::vector<graph::Vid> hot(rows);
  for (std::size_t v = 0; v < rows; ++v) {
    hot[v] = static_cast<graph::Vid>(rows - 1 - v);
  }

  tensor::Matrix reference;
  for (const std::size_t cache_mb : {std::size_t{0}, std::size_t{1},
                                     std::size_t{64}}) {
    FeatureStoreOptions opts;
    opts.dtype = GetParam();
    opts.cache_mb = cache_mb;
    const FeatureStore store = FeatureStore::build(src, opts, hot);
    for (const int threads : {1, 2, 4}) {
      tensor::Matrix out(idx.size(), cols);
      store.gather(idx, out, threads);
      if (reference.rows() == 0) {
        reference = std::move(out);
      } else {
        EXPECT_TRUE(matrices_bit_identical(reference, out))
            << "cache_mb=" << cache_mb << " threads=" << threads;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDtypes, FeatureStoreGatherTest,
                         ::testing::Values(FeatureDtype::kF32,
                                           FeatureDtype::kF16,
                                           FeatureDtype::kBf16,
                                           FeatureDtype::kI8),
                         [](const auto& info) {
                           return std::string(
                               feature_dtype_name(info.param)) +
                                  (info.param == FeatureDtype::kF32 ? "_fp32"
                                                                    : "");
                         });

TEST(FeatureStoreView, MatchesTensorGatherRowsExactly) {
  const std::size_t rows = 64, cols = 12;
  const tensor::Matrix src = random_features(rows, cols, 3);
  const FeatureStore store = FeatureStore::view(src);
  EXPECT_EQ(store.dtype(), FeatureDtype::kF32);
  EXPECT_EQ(store.cache_rows(), 0u);
  EXPECT_FALSE(store.mmapped());

  const auto idx = random_indices(40, rows, 9);
  tensor::Matrix via_store(idx.size(), cols);
  store.gather(idx, via_store);
  tensor::Matrix via_ops(idx.size(), cols);
  tensor::gather_rows(src, idx, via_ops);
  EXPECT_TRUE(matrices_bit_identical(via_store, via_ops));
}

TEST(FeatureStoreGather, OutOfRangeThrowsBeforeTouchingOutput) {
  const tensor::Matrix src = random_features(10, 4, 21);
  // Both gather code paths: uncached (batched kernels) and cached
  // (per-row hit/miss loop).
  for (const std::size_t cache_mb : {std::size_t{0}, std::size_t{1}}) {
    FeatureStoreOptions opts;
    opts.cache_mb = cache_mb;
    const FeatureStore store = FeatureStore::build(src, opts);
    const std::vector<std::uint32_t> idx = {1, 3, 10, 2};  // 10 == rows
    tensor::Matrix out(idx.size(), 4);
    for (std::size_t i = 0; i < idx.size(); ++i) {
      for (std::size_t j = 0; j < 4; ++j) out.row(i)[j] = -77.0f;
    }
    try {
      store.gather(idx, out);
      FAIL() << "expected std::out_of_range (cache_mb=" << cache_mb << ")";
    } catch (const std::out_of_range& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("10"), std::string::npos) << msg;
      EXPECT_NE(msg.find("position 2"), std::string::npos) << msg;
    }
    for (std::size_t i = 0; i < idx.size(); ++i) {
      for (std::size_t j = 0; j < 4; ++j) {
        EXPECT_EQ(out.row(i)[j], -77.0f) << "output written before throw";
      }
    }
  }
}

TEST(FeatureStoreGather, ShapeMismatchThrows) {
  const tensor::Matrix src = random_features(8, 4, 2);
  const FeatureStore store = FeatureStore::view(src);
  const std::vector<std::uint32_t> idx = {0, 1};
  tensor::Matrix wrong_rows(3, 4), wrong_cols(2, 5);
  EXPECT_THROW(store.gather(idx, wrong_rows), std::invalid_argument);
  EXPECT_THROW(store.gather(idx, wrong_cols), std::invalid_argument);
}

TEST(FeatureStoreGather, EmptyIndicesIsANoOp) {
  const tensor::Matrix src = random_features(8, 4, 2);
  const FeatureStore store = FeatureStore::view(src);
  tensor::Matrix out(0, 4);
  store.gather(std::span<const std::uint32_t>{}, out);
  EXPECT_EQ(store.stats().gathered_rows, 0u);
}

TEST(FeatureStoreCache, BadHotOrderThrows) {
  const tensor::Matrix src = random_features(8, 4, 2);
  FeatureStoreOptions opts;
  opts.cache_mb = 1;
  const std::vector<graph::Vid> bad = {2, 99};
  EXPECT_THROW(FeatureStore::build(src, opts, bad), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Stats accounting.
// ---------------------------------------------------------------------------

TEST(FeatureStoreStatsTest, HitMissAndBytesAccounting) {
  const std::size_t rows = 100, cols = 8;
  const tensor::Matrix src = random_features(rows, cols, 4);
  FeatureStoreOptions opts;
  opts.dtype = FeatureDtype::kF16;
  opts.cache_mb = 1;  // 1 MB / 32 B per fp32 row → all 100 rows admitted
  std::vector<graph::Vid> hot;
  for (graph::Vid v = 0; v < 50; ++v) hot.push_back(v);  // only first 50
  const FeatureStore store = FeatureStore::build(src, opts, hot);
  EXPECT_EQ(store.cache_rows(), 50u);

  std::vector<std::uint32_t> idx;
  for (std::uint32_t i = 0; i < 100; ++i) idx.push_back(i);  // 50 hits
  tensor::Matrix out(idx.size(), cols);
  store.gather(idx, out);

  const FeatureStoreStats s = store.stats();
  EXPECT_EQ(s.gathered_rows, 100u);
  EXPECT_EQ(s.cache_hits, 50u);
  EXPECT_EQ(s.cache_misses, 50u);
  // Hits move fp32 both ways (cols*8); misses read the f16 payload and
  // write fp32 (cols*2 + cols*4).
  EXPECT_EQ(s.bytes_moved, 50u * cols * 8 + 50u * (cols * 2 + cols * 4));

  const_cast<FeatureStore&>(store).reset_stats();
  EXPECT_EQ(store.stats().gathered_rows, 0u);
}

// ---------------------------------------------------------------------------
// On-disk layout: write_file / open_mmap.
// ---------------------------------------------------------------------------

class FeatureStoreFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("gsgcn_fstore_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name()))
               .string();
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const char* name) const {
    return (fs::path(dir_) / name).string();
  }

  std::string dir_;
};

TEST_F(FeatureStoreFileTest, MmapGatherBitIdenticalToInRamStore) {
  const std::size_t rows = 157, cols = 19;
  const tensor::Matrix src = random_features(rows, cols, 23);
  for (FeatureDtype dtype : {FeatureDtype::kF32, FeatureDtype::kF16,
                             FeatureDtype::kBf16, FeatureDtype::kI8}) {
    const std::string file = path(feature_dtype_name(dtype));
    FeatureStore::write_file(file, src, dtype);

    FeatureStoreOptions opts;
    opts.dtype = dtype;  // ignored by open_mmap (header decides)
    opts.verify_payload = true;
    const FeatureStore mapped = FeatureStore::open_mmap(file, opts);
    EXPECT_TRUE(mapped.mmapped());
    EXPECT_EQ(mapped.rows(), rows);
    EXPECT_EQ(mapped.cols(), cols);
    EXPECT_EQ(mapped.dtype(), dtype);

    const FeatureStore in_ram = FeatureStore::build(src, opts);
    const auto idx = random_indices(64, rows, 3);
    tensor::Matrix a(idx.size(), cols), b(idx.size(), cols);
    mapped.gather(idx, a);
    in_ram.gather(idx, b);
    EXPECT_TRUE(matrices_bit_identical(a, b)) << feature_dtype_name(dtype);
  }
}

TEST_F(FeatureStoreFileTest, PrefetchCountsOnlyOnMappedStores) {
  const tensor::Matrix src = random_features(32, 8, 2);
  const std::string file = path("f16");
  FeatureStore::write_file(file, src, FeatureDtype::kF16);
  FeatureStoreOptions opts;
  const FeatureStore mapped = FeatureStore::open_mmap(file, opts);
  const std::vector<std::uint32_t> idx = {1, 2, 3, 30};
  mapped.prefetch(idx);
  EXPECT_EQ(mapped.stats().prefetch_calls, 1u);
  EXPECT_GT(mapped.stats().prefetch_bytes, 0u);

  const FeatureStore ram = FeatureStore::view(src);
  ram.prefetch(idx);
  EXPECT_EQ(ram.stats().prefetch_calls, 0u);
}

TEST_F(FeatureStoreFileTest, TruncatedFileIsRejected) {
  const tensor::Matrix src = random_features(64, 8, 6);
  const std::string file = path("trunc");
  FeatureStore::write_file(file, src, FeatureDtype::kF16);
  const auto full = fs::file_size(file);
  fs::resize_file(file, full - 16);
  FeatureStoreOptions opts;
  EXPECT_THROW(FeatureStore::open_mmap(file, opts), std::runtime_error);
}

TEST_F(FeatureStoreFileTest, CorruptHeaderNamesFrameStatus) {
  const tensor::Matrix src = random_features(64, 8, 6);
  const std::string file = path("badmagic");
  FeatureStore::write_file(file, src, FeatureDtype::kI8);
  {
    std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(0);
    f.put('X');  // clobber the frame magic
  }
  FeatureStoreOptions opts;
  try {
    FeatureStore::open_mmap(file, opts);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("bad_magic"), std::string::npos)
        << e.what();
  }
}

TEST_F(FeatureStoreFileTest, PayloadBitFlipCaughtByVerify) {
  const tensor::Matrix src = random_features(64, 8, 6);
  const std::string file = path("bitflip");
  FeatureStore::write_file(file, src, FeatureDtype::kF32);
  {
    std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(fs::file_size(file)) - 5);
    f.put('\x7f');
  }
  FeatureStoreOptions opts;
  opts.verify_payload = true;
  try {
    FeatureStore::open_mmap(file, opts);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos)
        << e.what();
  }
  // Without verify_payload the (possibly huge) payload is not scanned at
  // open — the framed header alone still validates.
  FeatureStoreOptions lazy;
  EXPECT_NO_THROW(FeatureStore::open_mmap(file, lazy));
}

TEST_F(FeatureStoreFileTest, MissingFileThrows) {
  FeatureStoreOptions opts;
  EXPECT_THROW(FeatureStore::open_mmap(path("nope"), opts),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Concurrency: parallel gathers share one stats block (TSan target).
// ---------------------------------------------------------------------------

TEST(FeatureStoreConcurrency, ParallelGathersAreRaceFreeAndDeterministic) {
  const std::size_t rows = 256, cols = 16;
  const tensor::Matrix src = random_features(rows, cols, 8);
  FeatureStoreOptions opts;
  opts.dtype = FeatureDtype::kF16;
  opts.cache_mb = 1;
  const FeatureStore store = FeatureStore::build(src, opts);

  tensor::Matrix expected(128, cols);
  const auto idx = random_indices(128, rows, 41);
  store.gather(idx, expected, 1);
  const_cast<FeatureStore&>(store).reset_stats();

  constexpr int kThreads = 4;
  constexpr int kRounds = 8;
  std::vector<std::thread> team;
  std::vector<int> mismatches(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    team.emplace_back([&store, &idx, &expected, &mismatches, t] {
      tensor::Matrix out(idx.size(), expected.cols());
      for (int r = 0; r < kRounds; ++r) {
        store.gather(idx, out, 1);
        if (!matrices_bit_identical(out, expected)) ++mismatches[t];
        store.prefetch(idx);  // no-op (RAM store), but must be safe
      }
    });
  }
  for (auto& th : team) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0);

  const FeatureStoreStats s = store.stats();
  EXPECT_EQ(s.gathered_rows,
            static_cast<std::uint64_t>(kThreads) * kRounds * idx.size());
  EXPECT_EQ(s.cache_hits + s.cache_misses, s.gathered_rows);
}

}  // namespace
}  // namespace gsgcn::data

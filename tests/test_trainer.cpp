// Trainer (Algorithm 5) tests: learning actually happens, phase timing
// accounting, sampler-kind coverage, reproducibility, clamping.

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "gcn/trainer.hpp"
#include "util/timer.hpp"

namespace gsgcn::gcn {
namespace {

data::Dataset easy_dataset(std::uint64_t seed = 11) {
  data::SyntheticParams p;
  p.num_vertices = 800;
  p.num_classes = 4;
  p.feature_dim = 24;
  p.avg_degree = 12.0;
  p.homophily = 20.0;
  p.feature_signal = 1.5;
  p.mode = data::LabelMode::kSingle;
  p.seed = seed;
  return data::make_synthetic(p);
}

TrainerConfig fast_config() {
  TrainerConfig cfg;
  cfg.hidden_dim = 16;
  cfg.num_layers = 2;
  cfg.epochs = 6;
  cfg.frontier_size = 40;
  cfg.budget = 160;
  cfg.p_inter = 2;
  cfg.threads = 1;
  cfg.seed = 3;
  return cfg;
}

TEST(Trainer, LearnsEasySingleLabelTask) {
  const data::Dataset ds = easy_dataset();
  Trainer trainer(ds, fast_config());
  const TrainResult result = trainer.train();
  // 4 classes ⇒ chance ≈ 0.25; a working GCN clears 0.6 easily.
  EXPECT_GT(result.final_val_f1, 0.6) << "val F1 " << result.final_val_f1;
  EXPECT_GT(result.final_test_f1, 0.6);
  // Loss decreases across training.
  ASSERT_GE(result.history.size(), 2u);
  EXPECT_LT(result.history.back().train_loss,
            result.history.front().train_loss);
}

TEST(Trainer, LearnsMultiLabelTask) {
  data::SyntheticParams p;
  p.num_vertices = 800;
  p.num_classes = 5;
  p.feature_dim = 24;
  p.avg_degree = 12.0;
  p.mode = data::LabelMode::kMulti;
  p.feature_signal = 1.5;
  p.seed = 13;
  const data::Dataset ds = data::make_synthetic(p);
  TrainerConfig cfg = fast_config();
  cfg.epochs = 8;
  Trainer trainer(ds, cfg);
  const TrainResult result = trainer.train();
  EXPECT_GT(result.final_val_f1, 0.45) << "val F1 " << result.final_val_f1;
}

TEST(Trainer, PhaseTimersPopulated) {
  const data::Dataset ds = easy_dataset();
  TrainerConfig cfg = fast_config();
  cfg.epochs = 2;
  cfg.eval_every_epoch = false;
  Trainer trainer(ds, cfg);
  util::Timer wall;
  const TrainResult result = trainer.train();
  const double wall_seconds = wall.seconds();
  EXPECT_GT(result.train_seconds, 0.0);
  EXPECT_GT(result.sample_seconds, 0.0);
  EXPECT_GE(result.sampler_wait_seconds, 0.0);
  EXPECT_GT(result.featprop_seconds, 0.0);
  EXPECT_GT(result.weight_seconds, 0.0);
  EXPECT_GT(result.iterations, 0);
  // The cold-start fill is absorbed by prefill(), never counted a stall.
  EXPECT_EQ(result.pool_cold_starts, 1);
  // Phases are subsets of total training time (allow scheduling noise).
  EXPECT_LT(result.featprop_seconds + result.weight_seconds,
            result.train_seconds * 1.5 + 0.1);
  // No double-counting: compute time and sampler wait partition the epoch
  // loop, so together they cannot exceed the whole train() wall time.
  EXPECT_LE(result.train_seconds + result.sampler_wait_seconds,
            wall_seconds + 0.05);
}

TEST(Trainer, HistoryTimesMonotone) {
  const data::Dataset ds = easy_dataset();
  TrainerConfig cfg = fast_config();
  cfg.epochs = 4;
  Trainer trainer(ds, cfg);
  const TrainResult result = trainer.train();
  for (std::size_t i = 1; i < result.history.size(); ++i) {
    EXPECT_GT(result.history[i].cumulative_seconds,
              result.history[i - 1].cumulative_seconds);
    EXPECT_EQ(result.history[i].epoch, static_cast<int>(i));
  }
  // Per-epoch and cumulative views agree.
  double sum = 0.0;
  for (const auto& rec : result.history) {
    EXPECT_GT(rec.epoch_seconds, 0.0);
    sum += rec.epoch_seconds;
    EXPECT_NEAR(rec.cumulative_seconds, sum, 1e-12);
  }
  EXPECT_NEAR(result.train_seconds, sum, 1e-12);
}

TEST(Trainer, AsyncSamplingMatchesSyncExactly) {
  // The pool's determinism contract lifts to training: with the same
  // seed the async pipeline consumes the identical subgraph sequence, so
  // losses and final weights match bit-for-bit.
  const data::Dataset ds = easy_dataset();
  TrainerConfig cfg = fast_config();
  cfg.epochs = 3;
  cfg.eval_every_epoch = false;
  Trainer sync_trainer(ds, cfg);
  cfg.async_sampling = true;
  Trainer async_trainer(ds, cfg);
  const TrainResult rs = sync_trainer.train();
  const TrainResult ra = async_trainer.train();
  ASSERT_EQ(rs.history.size(), ra.history.size());
  for (std::size_t i = 0; i < rs.history.size(); ++i) {
    EXPECT_EQ(rs.history[i].train_loss, ra.history[i].train_loss)
        << "epoch " << i;
  }
  EXPECT_EQ(rs.final_val_f1, ra.final_val_f1);
  EXPECT_EQ(rs.final_test_f1, ra.final_test_f1);
}

TEST(Trainer, AsyncSamplingRepeatedTrainRestartsProducer) {
  const data::Dataset ds = easy_dataset();
  TrainerConfig cfg = fast_config();
  cfg.epochs = 1;
  cfg.eval_every_epoch = false;
  cfg.async_sampling = true;
  cfg.pool_capacity = 8;
  Trainer trainer(ds, cfg);
  const TrainResult r1 = trainer.train();
  const TrainResult r2 = trainer.train();  // producer restarted
  EXPECT_GT(r1.iterations, 0);
  EXPECT_GT(r2.iterations, 0);
  // Accounting resets per train(); run 2 may find leftovers already
  // queued, so at most one cold start.
  EXPECT_LE(r2.pool_cold_starts, 1);
}

TEST(Trainer, ClampsOversizedSamplerParams) {
  const data::Dataset ds = easy_dataset();
  TrainerConfig cfg = fast_config();
  cfg.budget = 1 << 20;       // far beyond |V_train|
  cfg.frontier_size = 1 << 19;
  Trainer trainer(ds, cfg);
  EXPECT_LE(trainer.effective_budget(), trainer.train_graph_size());
  EXPECT_LT(trainer.effective_frontier(), trainer.effective_budget());
  // And it still trains.
  cfg.epochs = 1;
  const TrainResult r = trainer.train();
  EXPECT_GT(r.iterations, 0);
}

class TrainerSamplerSweep : public ::testing::TestWithParam<SamplerKind> {};

TEST_P(TrainerSamplerSweep, AllSamplerKindsTrain) {
  const data::Dataset ds = easy_dataset();
  TrainerConfig cfg = fast_config();
  cfg.sampler = GetParam();
  cfg.epochs = 3;
  cfg.eval_every_epoch = false;
  Trainer trainer(ds, cfg);
  const TrainResult result = trainer.train();
  EXPECT_GT(result.iterations, 0);
  EXPECT_GT(result.final_val_f1, 0.3);  // above chance for every sampler
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, TrainerSamplerSweep,
    ::testing::Values(SamplerKind::kFrontierDashboard,
                      SamplerKind::kFrontierNaive, SamplerKind::kUniformNode,
                      SamplerKind::kRandomEdge, SamplerKind::kRandomWalk,
                      SamplerKind::kForestFire, SamplerKind::kSnowball),
    [](const ::testing::TestParamInfo<SamplerKind>& info) {
      std::string name = sampler_kind_name(info.param);
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(Trainer, ReproducibleForSeed) {
  const data::Dataset ds = easy_dataset();
  TrainerConfig cfg = fast_config();
  cfg.epochs = 2;
  cfg.eval_every_epoch = false;
  Trainer t1(ds, cfg), t2(ds, cfg);
  const TrainResult r1 = t1.train();
  const TrainResult r2 = t2.train();
  EXPECT_EQ(r1.history[0].train_loss, r2.history[0].train_loss);
  EXPECT_EQ(r1.final_val_f1, r2.final_val_f1);
}

TEST(Trainer, DegreeCapTrainsOnSkewedGraph) {
  const data::Dataset ds = data::make_preset("amazon-s", 0.05);
  TrainerConfig cfg = fast_config();
  cfg.degree_cap = 30;  // the paper's Amazon mitigation
  cfg.epochs = 5;
  cfg.eval_every_epoch = false;
  Trainer trainer(ds, cfg);
  const TrainResult result = trainer.train();
  EXPECT_GT(result.iterations, 0);
  // 24-class multi-label at tiny scale won't reach useful F1 in 5 epochs;
  // assert the optimization is progressing instead.
  ASSERT_GE(result.history.size(), 2u);
  EXPECT_LT(result.history.back().train_loss,
            result.history.front().train_loss);
}

TEST(Trainer, EarlyStoppingTriggersOnPlateau) {
  const data::Dataset ds = easy_dataset();
  TrainerConfig cfg = fast_config();
  cfg.epochs = 40;
  cfg.early_stop_patience = 2;
  Trainer trainer(ds, cfg);
  const TrainResult result = trainer.train();
  // The easy task converges quickly, so 40 epochs must not all run.
  EXPECT_TRUE(result.early_stopped);
  EXPECT_LT(result.history.size(), 40u);
}

TEST(Trainer, LrDecayReducesEffectiveRate) {
  // With aggressive decay the later epochs barely move the weights; the
  // run must still complete and remain deterministic.
  const data::Dataset ds = easy_dataset();
  TrainerConfig cfg = fast_config();
  cfg.epochs = 4;
  cfg.lr_decay = 0.1f;
  cfg.eval_every_epoch = false;
  Trainer t1(ds, cfg), t2(ds, cfg);
  const TrainResult r1 = t1.train();
  const TrainResult r2 = t2.train();
  EXPECT_EQ(r1.final_val_f1, r2.final_val_f1);
}

TEST(Trainer, GradClipKeepsTrainingStable) {
  const data::Dataset ds = easy_dataset();
  TrainerConfig cfg = fast_config();
  cfg.grad_clip = 0.5f;
  cfg.epochs = 4;
  cfg.eval_every_epoch = false;
  Trainer trainer(ds, cfg);
  const TrainResult result = trainer.train();
  EXPECT_LT(result.history.back().train_loss,
            result.history.front().train_loss);
}

TEST(Trainer, DropoutStillLearns) {
  const data::Dataset ds = easy_dataset();
  TrainerConfig cfg = fast_config();
  cfg.dropout = 0.3f;
  cfg.epochs = 8;
  Trainer trainer(ds, cfg);
  const TrainResult result = trainer.train();
  EXPECT_GT(result.final_val_f1, 0.55);
}

TEST(Trainer, SymmetricAggregatorLearns) {
  const data::Dataset ds = easy_dataset();
  TrainerConfig cfg = fast_config();
  cfg.aggregator = propagation::AggregatorKind::kSymmetric;
  cfg.epochs = 8;
  Trainer trainer(ds, cfg);
  const TrainResult result = trainer.train();
  EXPECT_GT(result.final_val_f1, 0.55);
}

TEST(Trainer, RestoreBestKeepsPeakWeights) {
  // Train past convergence with an aggressive LR so later epochs can
  // regress; the restored model's final val F1 must equal the best
  // recorded epoch.
  const data::Dataset ds = easy_dataset();
  TrainerConfig cfg = fast_config();
  cfg.epochs = 10;
  cfg.lr = 0.08f;
  cfg.restore_best = true;
  Trainer trainer(ds, cfg);
  const TrainResult r = trainer.train();
  double best = 0.0;
  for (const auto& rec : r.history) best = std::max(best, rec.val_f1);
  EXPECT_NEAR(r.final_val_f1, best, 1e-9);
}

TEST(Trainer, RejectsInvalidDataset) {
  data::Dataset ds = easy_dataset();
  ds.train_vertices.clear();
  TrainerConfig cfg = fast_config();
  EXPECT_THROW(Trainer(ds, cfg), std::invalid_argument);
}

TEST(Trainer, DeeperModelsTrain) {
  const data::Dataset ds = easy_dataset();
  for (const int layers : {1, 3}) {
    TrainerConfig cfg = fast_config();
    cfg.num_layers = layers;
    cfg.epochs = 2;
    cfg.eval_every_epoch = false;
    Trainer trainer(ds, cfg);
    const TrainResult result = trainer.train();
    EXPECT_GT(result.iterations, 0) << layers << " layers";
  }
}

}  // namespace
}  // namespace gsgcn::gcn

// Cross-module property tests: algebraic laws that must hold across the
// whole stack — CSR construction vs a set oracle, permutation
// equivariance of propagation and of the full GCN, induction
// composition, GEMM associativity.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "gcn/model.hpp"
#include "graph/reorder.hpp"
#include "graph/subgraph.hpp"
#include "propagation/spmm.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "test_helpers.hpp"

namespace gsgcn {
namespace {

using graph::CsrGraph;
using graph::Edge;
using graph::Vid;
using tensor::Matrix;

TEST(Property, CsrMatchesSetOracleOnRandomEdgeLists) {
  util::Xoshiro256 rng(1);
  for (int trial = 0; trial < 25; ++trial) {
    const Vid n = 20 + rng.below(80);
    const int m = static_cast<int>(rng.below(300));
    std::vector<Edge> edges;
    std::map<Vid, std::set<Vid>> oracle;
    for (int e = 0; e < m; ++e) {
      const Vid u = rng.below(n), v = rng.below(n);
      edges.push_back({u, v});
      if (u != v) {
        oracle[u].insert(v);
        oracle[v].insert(u);
      }
    }
    const CsrGraph g = CsrGraph::from_edges(n, edges);
    ASSERT_TRUE(g.validate().empty()) << g.validate();
    for (Vid v = 0; v < n; ++v) {
      const auto nbrs = g.neighbors(v);
      const auto& expect = oracle[v];
      ASSERT_EQ(nbrs.size(), expect.size()) << "vertex " << v;
      std::size_t i = 0;
      for (const Vid u : expect) EXPECT_EQ(nbrs[i++], u);
    }
  }
}

TEST(Property, PropagationCommutesWithRelabeling) {
  // agg(π(g), π(x)) == π(agg(g, x)) for any vertex permutation π.
  const CsrGraph g = gsgcn::testing::small_er(120, 500, 2);
  const graph::Reordering r = graph::reorder_by_degree(g);
  util::Xoshiro256 rng(3);
  const Matrix x = Matrix::gaussian(120, 9, 1.0f, rng);

  Matrix y(120, 9);
  propagation::aggregate_mean_forward(g, x, y);

  Matrix x_perm(120, 9), y_perm_expect(120, 9);
  tensor::gather_rows(x, r.new_to_old, x_perm);
  tensor::gather_rows(y, r.new_to_old, y_perm_expect);

  Matrix y_perm(120, 9);
  propagation::aggregate_mean_forward(r.graph, x_perm, y_perm);
  EXPECT_LT(Matrix::max_abs_diff(y_perm, y_perm_expect), 1e-5f);
}

TEST(Property, GcnForwardIsPermutationEquivariant) {
  // The whole model (aggregation + weights + ReLU + classifier) must be
  // equivariant under vertex relabeling — the defining symmetry of GCNs.
  gcn::ModelConfig mc;
  mc.in_dim = 8;
  mc.hidden_dim = 5;
  mc.num_classes = 4;
  mc.num_layers = 2;
  mc.seed = 4;
  gcn::GcnModel model(mc);

  const CsrGraph g = gsgcn::testing::small_er(80, 350, 5);
  const graph::Reordering r = graph::reorder_by_bfs(g, 0);
  util::Xoshiro256 rng(6);
  const Matrix x = Matrix::gaussian(80, 8, 1.0f, rng);

  const Matrix logits = model.forward(g, x, 1);
  Matrix x_perm(80, 8), expect(80, 4);
  tensor::gather_rows(x, r.new_to_old, x_perm);
  tensor::gather_rows(logits, r.new_to_old, expect);
  const Matrix& got = model.forward(r.graph, x_perm, 1);
  EXPECT_LT(Matrix::max_abs_diff(got, expect), 1e-4f);
}

TEST(Property, InductionComposes) {
  // induce(induce(g, A), B-as-local) == induce(g, A∘B).
  const CsrGraph g = gsgcn::testing::small_er(200, 900, 7);
  graph::Inducer inducer(g);
  util::Xoshiro256 rng(8);
  const auto a = util::sample_without_replacement(200, 120, rng);
  const std::vector<Vid> a_list(a.begin(), a.end());
  const graph::Subgraph first = inducer.induce(a_list);

  const auto b = util::sample_without_replacement(120, 50, rng);
  std::vector<Vid> b_local(b.begin(), b.end());
  graph::Inducer inner(first.graph);
  const graph::Subgraph second = inner.induce(b_local);

  std::vector<Vid> composed;
  composed.reserve(b_local.size());
  for (const Vid lv : b_local) composed.push_back(first.orig_ids[lv]);
  const graph::Subgraph direct = inducer.induce(composed);

  ASSERT_EQ(second.num_vertices(), direct.num_vertices());
  EXPECT_EQ(second.graph.offsets(), direct.graph.offsets());
  EXPECT_EQ(second.graph.adjacency(), direct.graph.adjacency());
  for (Vid lv = 0; lv < second.num_vertices(); ++lv) {
    EXPECT_EQ(first.orig_ids[second.orig_ids[lv]], direct.orig_ids[lv]);
  }
}

TEST(Property, GemmIsAssociative) {
  util::Xoshiro256 rng(9);
  const Matrix a = Matrix::gaussian(14, 10, 1.0f, rng);
  const Matrix b = Matrix::gaussian(10, 12, 1.0f, rng);
  const Matrix c = Matrix::gaussian(12, 7, 1.0f, rng);
  Matrix ab(14, 12), abc1(14, 7), bc(10, 7), abc2(14, 7);
  tensor::gemm_nn(a, b, ab);
  tensor::gemm_nn(ab, c, abc1);
  tensor::gemm_nn(b, c, bc);
  tensor::gemm_nn(a, bc, abc2);
  EXPECT_LT(Matrix::max_abs_diff(abc1, abc2), 1e-3f);
}

TEST(Property, TransposeIdentitiesAcrossGemmVariants) {
  // gemm_tn(A, B) == gemm_nn(Aᵀ, B) and gemm_nt(A, B) == gemm_nn(A, Bᵀ).
  util::Xoshiro256 rng(10);
  const Matrix a = Matrix::gaussian(9, 6, 1.0f, rng);   // used as Aᵀ too
  const Matrix b = Matrix::gaussian(9, 8, 1.0f, rng);
  Matrix at(6, 9);
  for (std::size_t i = 0; i < 9; ++i) {
    for (std::size_t j = 0; j < 6; ++j) at(j, i) = a(i, j);
  }
  Matrix via_tn(6, 8), via_nn(6, 8);
  tensor::gemm_tn(a, b, via_tn);
  tensor::gemm_nn(at, b, via_nn);
  EXPECT_LT(Matrix::max_abs_diff(via_tn, via_nn), 1e-4f);

  const Matrix c = Matrix::gaussian(8, 6, 1.0f, rng);  // used as Cᵀ
  Matrix ct(6, 8);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 6; ++j) ct(j, i) = c(i, j);
  }
  Matrix via_nt(9, 8), via_nn2(9, 8);
  tensor::gemm_nt(a, c, via_nt);   // a(9,6) · cᵀ(6,8)
  tensor::gemm_nn(a, ct, via_nn2);
  EXPECT_LT(Matrix::max_abs_diff(via_nt, via_nn2), 1e-4f);
}

TEST(Property, MeanAggregationIsAffineInvariant) {
  // Mean of (αx + β1) = α·mean(x) + β1 row-wise (for vertices with
  // neighbors) — catches normalization bugs.
  const CsrGraph g = gsgcn::testing::small_er(80, 400, 11);
  util::Xoshiro256 rng(12);
  const Matrix x = Matrix::gaussian(80, 5, 1.0f, rng);
  Matrix shifted = x;
  tensor::scale_inplace(shifted, 2.0f);
  for (std::size_t i = 0; i < shifted.size(); ++i) shifted.data()[i] += 3.0f;

  Matrix mx(80, 5), ms(80, 5);
  propagation::aggregate_mean_forward(g, x, mx);
  propagation::aggregate_mean_forward(g, shifted, ms);
  for (Vid v = 0; v < 80; ++v) {
    if (g.degree(v) == 0) continue;
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(ms(v, j), 2.0f * mx(v, j) + 3.0f, 1e-4f);
    }
  }
}

}  // namespace
}  // namespace gsgcn

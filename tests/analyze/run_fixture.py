#!/usr/bin/env python3
"""Golden-fixture runner for the static analyzers.

Executes a command and asserts (a) its exact exit code and (b) optionally
that stdout+stderr contains given substrings. ctest's WILL_FAIL would
accept ANY nonzero exit — including a traceback (exit 1 from the
interpreter) — so a broken analyzer could masquerade as "correctly
flagged the fixture". Exact-code + message matching closes that hole.

Usage:
  run_fixture.py --expect-exit N [--expect-output SUBSTR]... -- cmd args...
"""

import argparse
import subprocess
import sys


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--expect-exit", type=int, required=True)
    ap.add_argument("--expect-output", action="append", default=[])
    ap.add_argument("cmd", nargs=argparse.REMAINDER)
    args = ap.parse_args()

    cmd = args.cmd
    if cmd and cmd[0] == "--":
        cmd = cmd[1:]
    if not cmd:
        print("run_fixture: no command given", file=sys.stderr)
        return 2

    proc = subprocess.run(cmd, capture_output=True, text=True)
    out = proc.stdout + proc.stderr
    sys.stdout.write(out)

    ok = True
    if proc.returncode != args.expect_exit:
        print(f"run_fixture: FAIL — exit {proc.returncode}, "
              f"expected {args.expect_exit}")
        ok = False
    for sub in args.expect_output:
        if sub not in out:
            print(f"run_fixture: FAIL — output does not contain {sub!r}")
            ok = False
    if ok:
        print("run_fixture: OK")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())

// Golden fixture: every construct here is determinism-clean or carries
// the documented escape hatch; analyze.py must report ZERO findings even
// with tests/analyze/* treated as a serialization path.
#include <string>
#include <unordered_map>

struct Rng {
  unsigned rand();  // member named rand(): not ::rand()
};

std::unordered_map<std::string, long> totals_;

bool has_total(const std::string& name) {
  // Lookup, not iteration: hash order cannot leak.
  return totals_.find(name) != totals_.end();
}

long grand_total() {
  long sum = 0;
  // det-safe: commutative integer sum — iteration order cannot change it
  for (const auto& [name, value] : totals_) {
    sum += value;
  }
  return sum;
}

unsigned draw(Rng& rng) { return rng.rand(); }

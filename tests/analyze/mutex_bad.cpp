// Golden fixture: mutex-guards check MUST flag `mu_` — a mutex member
// declared with zero thread-safety annotations naming it. Nothing in the
// class records what `mu_` protects, so Clang's -Wthread-safety pass has
// no capability graph to verify and every lock/unlock is unchecked. This
// is the shape the check exists to catch: a mutex added "for safety"
// whose protected state silently drifts out from under it.
#include <cstdint>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace gsgcn {

class SilentCounter {
 public:
  void bump() {
    util::MutexLock lock(&mu_);
    ++count_;
  }

  std::uint64_t value() const {
    util::MutexLock lock(&mu_);
    return count_;
  }

 private:
  mutable util::Mutex mu_;  // FINDING: never named by any annotation
  std::uint64_t count_ = 0;
};

}  // namespace gsgcn

// Golden fixture: mutex-guards check must stay quiet here. Three blessed
// shapes: a mutex wired into the capability graph via GUARDED_BY, one
// referenced only through method-level EXCLUDES/REQUIRES annotations
// (state guarded indirectly), and one carrying the documented
// `// unguarded-ok:` escape hatch for mutexes handed to external waiters
// where annotations cannot express the protocol.
#include <cstdint>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace gsgcn {

class GuardedCounter {
 public:
  void bump() {
    util::MutexLock lock(&mu_);
    ++count_;
  }

 private:
  mutable util::Mutex mu_;
  std::uint64_t count_ GUARDED_BY(mu_) = 0;
};

class MethodAnnotated {
 public:
  void refill() EXCLUDES(mu_);
  void push_locked() REQUIRES(mu_);

 private:
  util::Mutex mu_;
};

class HandoffMutex {
 private:
  // The mutex pairs with a condition variable owned by callers; the
  // protected state lives outside this class, so there is nothing local
  // to annotate.
  util::Mutex mu_;  // unguarded-ok: paired with caller-owned condvar
};

}  // namespace gsgcn

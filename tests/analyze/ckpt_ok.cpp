// Golden fixture: a fully round-tripped checkpoint struct plus one
// genuinely derived member behind the `// ckpt-transient:` escape hatch;
// analyze.py must report ZERO findings.
#include <cstdint>
#include <string>

void put_i64(std::string*, std::int64_t);
std::int64_t take_i64(const std::string&, std::size_t*);

// analyze:checkpoint-state save=encode_state load=decode_state
struct TrainerState {
  std::int64_t step = 0;
  std::int64_t rng_cursor = 0;
  std::int64_t cache_bytes = 0;  // ckpt-transient: rebuilt from the graph on load
};

std::string encode_state(const TrainerState& s) {
  std::string out;
  put_i64(&out, s.step);
  put_i64(&out, s.rng_cursor);
  return out;
}

TrainerState decode_state(const std::string& payload) {
  TrainerState s;
  std::size_t off = 0;
  s.step = take_i64(payload, &off);
  s.rng_cursor = take_i64(payload, &off);
  return s;
}

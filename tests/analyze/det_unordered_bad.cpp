// Golden fixture: unordered-container iteration in a serialization path
// (the test passes --serialization-path 'tests/analyze/*'). Hash order
// would leak into the emitted bytes.
#include <string>
#include <unordered_map>

struct Sink {
  void write(const std::string&, long);
};

std::unordered_map<std::string, long> totals_;

void dump(Sink& sink) {
  for (const auto& [name, value] : totals_) {  // FINDING: hash-order bytes
    sink.write(name, value);
  }
}

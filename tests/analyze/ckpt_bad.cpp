// Golden fixture: checkpoint-drift check MUST flag `rng_cursor` — it is
// serialized by the save function but never restored by the load
// function, the exact bug class that silently breaks bit-identical
// resume.
#include <cstdint>
#include <string>

void put_i64(std::string*, std::int64_t);
std::int64_t take_i64(const std::string&, std::size_t*);

// analyze:checkpoint-state save=encode_state load=decode_state
struct TrainerState {
  std::int64_t step = 0;
  std::int64_t rng_cursor = 0;  // FINDING: missing from decode_state
};

std::string encode_state(const TrainerState& s) {
  std::string out;
  put_i64(&out, s.step);
  put_i64(&out, s.rng_cursor);
  return out;
}

TrainerState decode_state(const std::string& payload) {
  TrainerState s;
  std::size_t off = 0;
  s.step = take_i64(payload, &off);
  // rng_cursor forgotten — resumed runs replay the wrong RNG stream.
  return s;
}

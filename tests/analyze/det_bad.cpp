// Golden fixture: determinism check MUST flag all three constructs.
// Never compiled — consumed by scripts/analyze.py via ctest (see
// tests/CMakeLists.txt). If analyze.py stops flagging any line here,
// the analyze_det_bad test fails tier-1.
#include <cstdlib>
#include <ctime>
#include <random>

int entropy_seed() {
  std::random_device rd;  // FINDING: ambient entropy
  return static_cast<int>(rd());
}

int dice_roll() {
  return std::rand() % 6;  // FINDING: hidden global RNG state
}

void seed_from_clock(std::mt19937& engine) {
  engine.seed(static_cast<unsigned>(time(nullptr)));  // FINDING: time seed
}

// Golden fixture: race-free parallel idioms — induction-indexed writes,
// region-local accumulators, a by-value capture, and a single-writer
// pattern behind the `// omp-safe:` escape hatch. Both analyzers must
// report ZERO findings.
#include <cstdint>
#include <vector>

#include "util/parallel.hpp"

void scale(std::vector<double>& out, const std::vector<double>& v,
           double k, int threads) {
  gsgcn::util::parallel_for(
      static_cast<std::int64_t>(v.size()), threads,
      [&out, &v, k](std::int64_t i) {
        out[i] = v[i] * k;  // ok: element chosen by the induction variable
      });
}

void block_sums(std::vector<double>& out, const std::vector<double>& v,
                int threads) {
  gsgcn::util::parallel_for_ranges(
      static_cast<std::int64_t>(v.size()), threads,
      [&](std::int64_t begin, std::int64_t end) {
        double acc = 0.0;  // ok: region-local accumulator
        for (std::int64_t i = begin; i < end; ++i) {
          acc += v[i];
        }
        out[begin] = acc;  // ok: distinct element per range
      });
}

void leader_stamp(std::vector<int>& slots, int threads) {
  gsgcn::util::parallel_region(threads, [&](int tid, int nthreads) {
    slots[tid] = nthreads;  // ok: indexed by the thread id
    if (tid == 0) {
      // omp-safe: single writer — guarded by the tid == 0 branch
      slots[0] = -nthreads;
    }
  });
}

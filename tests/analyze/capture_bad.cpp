// Golden fixture: parallel-capture check MUST flag both lambdas — a
// by-reference-captured accumulator written by every team member, and a
// fixed-index write reached through [&]. Also exercised by
// scripts/check_omp.py (the `parallel_for_ranges` regression: older
// versions did not audit that helper at all).
#include <cstdint>
#include <vector>

#include "util/parallel.hpp"

double unsynchronized_sum(const std::vector<double>& v, int threads) {
  double sum = 0.0;
  gsgcn::util::parallel_for_ranges(
      static_cast<std::int64_t>(v.size()), threads,
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          sum += v[i];  // FINDING: by-ref capture written across the team
        }
      });
  return sum;
}

void racy_flag(std::vector<int>& out, std::int64_t n, int threads) {
  gsgcn::util::parallel_for(n, threads, [&](std::int64_t i) {
    out[0] = static_cast<int>(i);  // FINDING: fixed-index shared write
  });
}

// Tests for induced-subgraph extraction: correctness against a brute
// force oracle, duplicate handling, epoch reuse, parallel agreement.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "graph/subgraph.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace gsgcn::graph {
namespace {

/// Brute-force induced edge set on original ids.
std::set<std::pair<Vid, Vid>> induced_edges_oracle(
    const CsrGraph& g, const std::vector<Vid>& vertices) {
  const std::set<Vid> vs(vertices.begin(), vertices.end());
  std::set<std::pair<Vid, Vid>> edges;
  for (const Vid u : vs) {
    for (const Vid v : g.neighbors(u)) {
      if (vs.count(v)) edges.insert({std::min(u, v), std::max(u, v)});
    }
  }
  return edges;
}

std::set<std::pair<Vid, Vid>> subgraph_edges_in_orig_ids(const Subgraph& sub) {
  std::set<std::pair<Vid, Vid>> edges;
  for (Vid lu = 0; lu < sub.num_vertices(); ++lu) {
    for (const Vid lv : sub.graph.neighbors(lu)) {
      const Vid u = sub.orig_ids[lu], v = sub.orig_ids[lv];
      edges.insert({std::min(u, v), std::max(u, v)});
    }
  }
  return edges;
}

TEST(Inducer, TinyGraphByHand) {
  const CsrGraph g = gsgcn::testing::tiny_graph();
  Inducer inducer(g);
  const Subgraph sub = inducer.induce({0, 1, 3});
  EXPECT_EQ(sub.num_vertices(), 3u);
  // Edges among {0,1,3}: (0,1), (1,3). Not (0,3).
  EXPECT_EQ(sub.graph.num_edges(), 4);
  const auto edges = subgraph_edges_in_orig_ids(sub);
  EXPECT_TRUE(edges.count({0, 1}));
  EXPECT_TRUE(edges.count({1, 3}));
  EXPECT_FALSE(edges.count({0, 3}));
}

TEST(Inducer, MatchesOracleOnRandomSets) {
  const CsrGraph g = gsgcn::testing::small_er(300, 1500, 11);
  Inducer inducer(g);
  util::Xoshiro256 rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const auto vertices = util::sample_without_replacement(300, 80, rng);
    const std::vector<Vid> vlist(vertices.begin(), vertices.end());
    const Subgraph sub = inducer.induce(vlist);
    EXPECT_TRUE(sub.graph.validate().empty()) << sub.graph.validate();
    EXPECT_EQ(subgraph_edges_in_orig_ids(sub), induced_edges_oracle(g, vlist));
  }
}

TEST(Inducer, DeduplicatesKeepingFirstOccurrence) {
  const CsrGraph g = gsgcn::testing::tiny_graph();
  Inducer inducer(g);
  const Subgraph sub = inducer.induce({4, 2, 4, 2, 0});
  ASSERT_EQ(sub.num_vertices(), 3u);
  EXPECT_EQ(sub.orig_ids[0], 4u);
  EXPECT_EQ(sub.orig_ids[1], 2u);
  EXPECT_EQ(sub.orig_ids[2], 0u);
}

TEST(Inducer, ReusableAcrossCalls) {
  const CsrGraph g = gsgcn::testing::small_er(200, 800, 5);
  Inducer inducer(g);
  util::Xoshiro256 rng(9);
  // Interleave different vertex sets; the epoch-stamped map must never
  // leak mappings between calls.
  for (int trial = 0; trial < 50; ++trial) {
    const auto vs = util::sample_without_replacement(200, 10 + trial, rng);
    const std::vector<Vid> vlist(vs.begin(), vs.end());
    const Subgraph sub = inducer.induce(vlist);
    ASSERT_EQ(sub.num_vertices(), vlist.size());
    EXPECT_EQ(subgraph_edges_in_orig_ids(sub), induced_edges_oracle(g, vlist));
  }
}

TEST(Inducer, ParallelMatchesSerial) {
  const CsrGraph g = gsgcn::testing::small_er(400, 3000, 21);
  Inducer a(g), b(g);
  util::Xoshiro256 rng(1);
  const auto vs = util::sample_without_replacement(400, 150, rng);
  const std::vector<Vid> vlist(vs.begin(), vs.end());
  const Subgraph s1 = a.induce(vlist, 1);
  const Subgraph s4 = b.induce(vlist, 4);
  EXPECT_EQ(s1.orig_ids, s4.orig_ids);
  EXPECT_EQ(s1.graph.offsets(), s4.graph.offsets());
  EXPECT_EQ(s1.graph.adjacency(), s4.graph.adjacency());
}

TEST(Inducer, EmptySelection) {
  const CsrGraph g = gsgcn::testing::tiny_graph();
  Inducer inducer(g);
  const Subgraph sub = inducer.induce({});
  EXPECT_EQ(sub.num_vertices(), 0u);
  EXPECT_EQ(sub.graph.num_edges(), 0);
}

TEST(Inducer, SingleVertexHasNoEdges) {
  const CsrGraph g = gsgcn::testing::tiny_graph();
  Inducer inducer(g);
  const Subgraph sub = inducer.induce({2});
  EXPECT_EQ(sub.num_vertices(), 1u);
  EXPECT_EQ(sub.graph.num_edges(), 0);
}

TEST(Inducer, FullSelectionIsIdentity) {
  const CsrGraph g = gsgcn::testing::small_er(100, 400, 2);
  Inducer inducer(g);
  std::vector<Vid> all(100);
  for (Vid v = 0; v < 100; ++v) all[v] = v;
  const Subgraph sub = inducer.induce(all);
  EXPECT_EQ(sub.graph.offsets(), g.offsets());
  EXPECT_EQ(sub.graph.adjacency(), g.adjacency());
}

}  // namespace
}  // namespace gsgcn::graph

// Dataset substrate tests: synthetic generation invariants, learnable
// signal (feature/label correlation), presets, split properties,
// Dataset::validate as a property checker.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>

#include "data/synthetic.hpp"
#include "util/rng.hpp"

namespace gsgcn::data {
namespace {

SyntheticParams small_params() {
  SyntheticParams p;
  p.num_vertices = 600;
  p.num_classes = 6;
  p.feature_dim = 16;
  p.avg_degree = 10.0;
  p.seed = 3;
  return p;
}

TEST(Synthetic, ValidDataset) {
  const Dataset ds = make_synthetic(small_params());
  EXPECT_TRUE(ds.validate().empty()) << ds.validate();
  EXPECT_EQ(ds.num_vertices(), 600u);
  EXPECT_EQ(ds.feature_dim(), 16u);
  EXPECT_EQ(ds.num_classes(), 6u);
}

TEST(Synthetic, DegreeNearTarget) {
  const Dataset ds = make_synthetic(small_params());
  EXPECT_NEAR(ds.graph.average_degree(), 10.0, 2.5);
}

TEST(Synthetic, SingleLabelIsOneHot) {
  SyntheticParams p = small_params();
  p.mode = LabelMode::kSingle;
  const Dataset ds = make_synthetic(p);
  for (graph::Vid v = 0; v < ds.num_vertices(); ++v) {
    float sum = 0.0f;
    for (std::size_t c = 0; c < ds.num_classes(); ++c) sum += ds.labels(v, c);
    EXPECT_EQ(sum, 1.0f);
  }
}

TEST(Synthetic, MultiLabelHasExtras) {
  SyntheticParams p = small_params();
  p.mode = LabelMode::kMulti;
  p.multi_extra_prob = 0.3;
  const Dataset ds = make_synthetic(p);
  std::size_t total = 0;
  for (graph::Vid v = 0; v < ds.num_vertices(); ++v) {
    for (std::size_t c = 0; c < ds.num_classes(); ++c) {
      total += ds.labels(v, c) != 0.0f;
    }
  }
  // ~ n·(1 + 0.3·(C−1)) labels expected, far more than n.
  EXPECT_GT(total, ds.num_vertices() * 3 / 2);
}

TEST(Synthetic, FeaturesRowNormalized) {
  const Dataset ds = make_synthetic(small_params());
  for (graph::Vid v = 0; v < 20; ++v) {
    double s = 0.0;
    for (std::size_t j = 0; j < ds.feature_dim(); ++j) {
      s += static_cast<double>(ds.features(v, j)) * ds.features(v, j);
    }
    EXPECT_NEAR(s, 1.0, 1e-4);
  }
}

TEST(Synthetic, FeaturesCorrelateWithLabels) {
  // Same-class vertices must be closer in feature space than cross-class,
  // on average — otherwise the accuracy experiments are meaningless.
  SyntheticParams p = small_params();
  p.mode = LabelMode::kSingle;
  p.feature_signal = 1.5;
  const Dataset ds = make_synthetic(p);
  auto primary = [&](graph::Vid v) {
    for (std::size_t c = 0; c < ds.num_classes(); ++c) {
      if (ds.labels(v, c) != 0.0f) return c;
    }
    return std::size_t{0};
  };
  auto dot = [&](graph::Vid a, graph::Vid b) {
    double s = 0.0;
    for (std::size_t j = 0; j < ds.feature_dim(); ++j) {
      s += static_cast<double>(ds.features(a, j)) * ds.features(b, j);
    }
    return s;
  };
  util::Xoshiro256 rng(5);
  double same = 0.0, cross = 0.0;
  int same_n = 0, cross_n = 0;
  for (int t = 0; t < 4000; ++t) {
    const graph::Vid a = rng.below(ds.num_vertices());
    const graph::Vid b = rng.below(ds.num_vertices());
    if (a == b) continue;
    if (primary(a) == primary(b)) {
      same += dot(a, b);
      ++same_n;
    } else {
      cross += dot(a, b);
      ++cross_n;
    }
  }
  ASSERT_GT(same_n, 10);
  ASSERT_GT(cross_n, 10);
  EXPECT_GT(same / same_n, cross / cross_n + 0.05);
}

TEST(Synthetic, GraphIsHomophilous) {
  SyntheticParams p = small_params();
  p.mode = LabelMode::kSingle;
  const Dataset ds = make_synthetic(p);
  std::int64_t same = 0, diff = 0;
  for (graph::Vid u = 0; u < ds.num_vertices(); ++u) {
    std::size_t cu = 0;
    for (std::size_t c = 0; c < ds.num_classes(); ++c) {
      if (ds.labels(u, c) != 0.0f) cu = c;
    }
    for (const graph::Vid v : ds.graph.neighbors(u)) {
      std::size_t cv = 0;
      for (std::size_t c = 0; c < ds.num_classes(); ++c) {
        if (ds.labels(v, c) != 0.0f) cv = c;
      }
      (cu == cv ? same : diff) += 1;
    }
  }
  EXPECT_GT(same, diff);
}

TEST(Synthetic, HubOverlayIncreasesSkew) {
  SyntheticParams p = small_params();
  const Dataset plain = make_synthetic(p);
  p.hub_overlay = true;
  p.hub_edges_per_vertex = 3;
  const Dataset hubby = make_synthetic(p);
  EXPECT_GT(hubby.graph.max_degree(), plain.graph.max_degree());
  EXPECT_TRUE(hubby.validate().empty()) << hubby.validate();
}

TEST(Synthetic, DeterministicForSeed) {
  const Dataset a = make_synthetic(small_params());
  const Dataset b = make_synthetic(small_params());
  EXPECT_EQ(a.graph.adjacency(), b.graph.adjacency());
  EXPECT_EQ(tensor::Matrix::max_abs_diff(a.features, b.features), 0.0f);
  EXPECT_EQ(a.train_vertices, b.train_vertices);
}

TEST(Synthetic, RejectsBadParams) {
  SyntheticParams p = small_params();
  p.num_classes = 0;
  EXPECT_THROW(make_synthetic(p), std::invalid_argument);
  p = small_params();
  p.num_vertices = 10;  // fewer than 4 per class
  EXPECT_THROW(make_synthetic(p), std::invalid_argument);
  p = small_params();
  p.avg_degree = 1e9;  // p_in > 1
  EXPECT_THROW(make_synthetic(p), std::invalid_argument);
}

TEST(Split, FractionsRespected) {
  util::Xoshiro256 rng(1);
  std::vector<graph::Vid> train, val, test;
  make_split(1000, 0.6, 0.2, rng, train, val, test);
  EXPECT_EQ(train.size(), 600u);
  EXPECT_EQ(val.size(), 200u);
  EXPECT_EQ(test.size(), 200u);
}

TEST(Split, DisjointAndComplete) {
  util::Xoshiro256 rng(2);
  std::vector<graph::Vid> train, val, test;
  make_split(500, 0.5, 0.25, rng, train, val, test);
  std::set<graph::Vid> all;
  for (const auto* s : {&train, &val, &test}) {
    for (const graph::Vid v : *s) {
      EXPECT_TRUE(all.insert(v).second) << "duplicate " << v;
    }
  }
  EXPECT_EQ(all.size(), 500u);
}

TEST(Presets, AllFourBuildAndValidate) {
  ::setenv("GSGCN_SCALE", "0.1", 1);  // keep the test fast
  for (const auto& name : preset_names()) {
    const Dataset ds = make_preset(name);
    EXPECT_TRUE(ds.validate().empty()) << name << ": " << ds.validate();
    EXPECT_EQ(ds.name, name);
    const auto info = paper_info(name);
    EXPECT_EQ(ds.mode, info.mode);
  }
  ::unsetenv("GSGCN_SCALE");
}

TEST(Presets, ScaleChangesSize) {
  const Dataset small = make_preset("ppi-s", 0.1);
  const Dataset large = make_preset("ppi-s", 0.3);
  EXPECT_GT(large.num_vertices(), small.num_vertices());
}

TEST(Presets, AmazonHasSkew) {
  const Dataset az = make_preset("amazon-s", 0.1);
  const Dataset yp = make_preset("yelp-s", 0.1);
  const double az_ratio = static_cast<double>(az.graph.max_degree()) /
                          az.graph.average_degree();
  const double yp_ratio = static_cast<double>(yp.graph.max_degree()) /
                          yp.graph.average_degree();
  EXPECT_GT(az_ratio, yp_ratio);
}

TEST(Presets, UnknownNameThrows) {
  EXPECT_THROW(make_preset("bogus"), std::invalid_argument);
  EXPECT_THROW(paper_info("bogus"), std::invalid_argument);
}

TEST(Presets, PaperInfoMatchesTable1) {
  const auto reddit = paper_info("reddit-s");
  EXPECT_EQ(reddit.vertices, 232965);
  EXPECT_EQ(reddit.edges, 11606919);
  EXPECT_EQ(reddit.attribute_dim, 602);
  EXPECT_EQ(reddit.classes, 41);
  EXPECT_EQ(reddit.mode, LabelMode::kSingle);
}

TEST(DatasetIo, RoundTrip) {
  const Dataset ds = make_synthetic(small_params());
  const std::string path = ::testing::TempDir() + "gsgcn_dataset.bin";
  save_dataset(ds, path);
  const Dataset loaded = load_dataset(path);
  EXPECT_EQ(loaded.name, ds.name);
  EXPECT_EQ(loaded.mode, ds.mode);
  EXPECT_EQ(loaded.graph.offsets(), ds.graph.offsets());
  EXPECT_EQ(loaded.graph.adjacency(), ds.graph.adjacency());
  EXPECT_EQ(tensor::Matrix::max_abs_diff(loaded.features, ds.features), 0.0f);
  EXPECT_EQ(tensor::Matrix::max_abs_diff(loaded.labels, ds.labels), 0.0f);
  EXPECT_EQ(loaded.train_vertices, ds.train_vertices);
  EXPECT_EQ(loaded.val_vertices, ds.val_vertices);
  EXPECT_EQ(loaded.test_vertices, ds.test_vertices);
  std::remove(path.c_str());
}

TEST(DatasetIo, RejectsGarbage) {
  const std::string path = ::testing::TempDir() + "gsgcn_bad_dataset.bin";
  {
    std::ofstream out(path, std::ios::binary);
    const char junk[16] = {9};
    out.write(junk, sizeof(junk));
  }
  EXPECT_THROW(load_dataset(path), std::runtime_error);
  std::remove(path.c_str());
  EXPECT_THROW(load_dataset("/nonexistent/ds.bin"), std::runtime_error);
}

// --- Hand-corrupted dataset files ------------------------------------------
// Layout: magic u64 | name (u64 len + bytes) | mode u8 | n u64 | m u64 |
// offsets | adjacency | features | labels | splits. The graph-header
// fields start right after the variable-length name.

class DatasetCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = make_synthetic(small_params());
    path_ = ::testing::TempDir() + "gsgcn_ds_corrupt_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".bin";
    save_dataset(ds_, path_);
    n_pos_ = 8 + (8 + ds_.name.size()) + 1;  // magic + name + mode
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void patch(std::uint64_t offset, const void* data, std::size_t size) {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f) << path_;
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
    ASSERT_TRUE(f);
  }

  std::string load_error() {
    try {
      load_dataset(path_);
    } catch (const std::runtime_error& e) {
      return e.what();
    }
    return "";
  }

  Dataset ds_;
  std::string path_;
  std::uint64_t n_pos_ = 0;
};

TEST_F(DatasetCorruption, InflatedEdgeCountCannotDriveTheAllocation) {
  // m := absurd, so "graph bytes needed" exceeds what remains of the file.
  const std::uint64_t m = 1ULL << 40;
  patch(n_pos_ + 8, &m, sizeof(m));
  const std::string err = load_error();
  EXPECT_NE(err.find("requires"), std::string::npos) << err;
  EXPECT_NE(err.find("remain"), std::string::npos) << err;
}

TEST_F(DatasetCorruption, ImplausibleVertexCountRejected) {
  const std::uint64_t n = 0xFFFFFFFFFFULL;
  patch(n_pos_, &n, sizeof(n));
  EXPECT_NE(load_error().find("exceeds uint32 range"), std::string::npos);
}

TEST_F(DatasetCorruption, OutOfRangeAdjacencyCaughtByStructuralValidation) {
  // Corrupt one adjacency id past n; from_csr is permissive by design, so
  // this must be caught by the post-load validate() pass instead.
  const std::uint64_t n = ds_.graph.num_vertices();
  const std::uint64_t adj_pos = n_pos_ + 16 + (n + 1) * sizeof(graph::Eid);
  const std::uint32_t bogus = 0xFFFFFFF0u;
  patch(adj_pos, &bogus, sizeof(bogus));
  const std::string err = load_error();
  EXPECT_NE(err.find("invalid: graph:"), std::string::npos) << err;
}

TEST_F(DatasetCorruption, TruncatedSplitSectionRejected) {
  const auto full = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, full - 4);
  EXPECT_NE(load_error().find("truncated"), std::string::npos);
}

TEST(DatasetValidate, CatchesCorruptions) {
  Dataset ds = make_synthetic(small_params());
  ds.labels(0, 0) = 0.5f;  // non-binary label
  EXPECT_FALSE(ds.validate().empty());

  Dataset ds2 = make_synthetic(small_params());
  ds2.train_vertices.push_back(ds2.val_vertices[0]);  // overlap
  EXPECT_FALSE(ds2.validate().empty());

  Dataset ds3 = make_synthetic(small_params());
  ds3.train_vertices.clear();
  EXPECT_FALSE(ds3.validate().empty());
}

}  // namespace
}  // namespace gsgcn::data

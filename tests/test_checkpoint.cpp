// Checkpoint layer: Adam state round trips bit-identically, the payload
// encode/decode restores model + optimizer + cursors exactly, and the
// on-disk manager survives truncation, bad magic, CRC corruption, and
// injected torn/mid-publish writes by falling back to the previous file.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gcn/checkpoint.hpp"
#include "gcn/model.hpp"
#include "tensor/matrix.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace gsgcn::gcn {
namespace {

namespace fs = std::filesystem;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::FaultInjector::instance().clear();
    dir_ = (fs::temp_directory_path() /
            ("gsgcn_ckpt_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override {
    util::FaultInjector::instance().clear();
    fs::remove_all(dir_);
  }
  std::string dir_;
};

ModelConfig small_model_config() {
  ModelConfig mc;
  mc.in_dim = 6;
  mc.hidden_dim = 4;
  mc.num_classes = 3;
  mc.num_layers = 2;
  mc.seed = 5;
  mc.dropout = 0.25f;
  return mc;
}

/// Identical synthetic update streams for two optimizers; returns the
/// params after `steps` steps.
tensor::Matrix drive_adam(Adam& opt, std::size_t slot, tensor::Matrix params,
                          int steps, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  tensor::Matrix grad(params.rows(), params.cols());
  for (int s = 0; s < steps; ++s) {
    for (std::size_t i = 0; i < grad.size(); ++i) {
      grad.data()[i] = static_cast<float>(rng.normal());
    }
    opt.begin_step();
    opt.update(slot, params, grad);
  }
  return params;
}

TEST_F(CheckpointTest, AdamStateRoundTripContinuesBitIdentically) {
  AdamConfig ac;
  ac.lr = 0.05f;
  Adam a(ac);
  const std::size_t slot = a.add_param(4, 3);
  util::Xoshiro256 init_rng(11);
  tensor::Matrix params = tensor::Matrix::gaussian(4, 3, 1.0f, init_rng);
  params = drive_adam(a, slot, std::move(params), 7, 21);

  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  a.save_state(buf);

  Adam b(ac);
  ASSERT_EQ(b.add_param(4, 3), slot);
  b.load_state(buf);
  EXPECT_EQ(b.steps(), a.steps());

  // Same params + same future gradients through both optimizers: the
  // moment estimates must have round-tripped exactly, so every future
  // update is bit-identical, not merely close.
  tensor::Matrix cont_a = drive_adam(a, slot, params, 5, 33);
  tensor::Matrix cont_b = drive_adam(b, slot, params, 5, 33);
  EXPECT_EQ(tensor::Matrix::max_abs_diff(cont_a, cont_b), 0.0f);
}

TEST_F(CheckpointTest, AdamLoadStateRejectsMismatchesWithoutMutating) {
  Adam a;
  const std::size_t slot = a.add_param(4, 3);
  util::Xoshiro256 init_rng(1);
  tensor::Matrix params = tensor::Matrix::gaussian(4, 3, 1.0f, init_rng);
  params = drive_adam(a, slot, std::move(params), 3, 2);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  a.save_state(buf);

  Adam wrong_count;
  wrong_count.add_param(4, 3);
  wrong_count.add_param(2, 2);
  EXPECT_THROW(wrong_count.load_state(buf), std::runtime_error);

  buf.clear();
  buf.seekg(0);
  Adam wrong_shape;
  wrong_shape.add_param(3, 4);
  EXPECT_THROW(wrong_shape.load_state(buf), std::runtime_error);

  // Truncated stream: the target must stay usable (all-or-nothing load).
  buf.clear();
  buf.seekg(0);
  std::string bytes = buf.str();
  bytes.resize(bytes.size() / 2);
  std::istringstream short_in(bytes, std::ios::binary);
  Adam target;
  target.add_param(4, 3);
  EXPECT_THROW(target.load_state(short_in), std::runtime_error);
  util::Xoshiro256 p2_rng(3);
  tensor::Matrix p2 = tensor::Matrix::gaussian(4, 3, 1.0f, p2_rng);
  EXPECT_NO_THROW(drive_adam(target, 0, p2, 1, 4));
}

TEST_F(CheckpointTest, PayloadRoundTripRestoresEverything) {
  GcnModel model(small_model_config());
  Adam opt;
  model.attach(opt);
  // Perturb the dropout RNG streams so the round trip proves they travel.
  model.layers()[0].dropout_rng().uniform();
  model.layers()[1].dropout_rng().uniform();
  model.layers()[1].dropout_rng().uniform();

  CheckpointCursors c;
  c.next_epoch = 4;
  c.iterations = 123;
  c.lr = 0.005f;
  c.best_val = 0.75;
  c.stale_epochs = 2;
  c.pool_slot = 42;
  EpochRecord r;
  r.epoch = 3;
  r.train_loss = 0.5;
  r.val_f1 = 0.7;
  r.epoch_seconds = 1.25;
  r.cumulative_seconds = 5.0;
  c.history.push_back(r);

  const std::string payload = encode_checkpoint(c, model, opt);
  const std::vector<tensor::Matrix> before = model.snapshot_weights();
  const auto rng0 = model.layers()[0].dropout_rng().state();
  const auto rng1 = model.layers()[1].dropout_rng().state();

  // Restore into a *fresh* model/optimizer pair (different init seed).
  ModelConfig mc2 = small_model_config();
  mc2.seed = 99;
  GcnModel other(mc2);
  Adam opt2;
  other.attach(opt2);
  const CheckpointCursors got = decode_checkpoint(payload, other, opt2);

  EXPECT_EQ(got.next_epoch, c.next_epoch);
  EXPECT_EQ(got.iterations, c.iterations);
  EXPECT_EQ(got.lr, c.lr);
  EXPECT_EQ(got.best_val, c.best_val);
  EXPECT_EQ(got.stale_epochs, c.stale_epochs);
  EXPECT_EQ(got.pool_slot, c.pool_slot);
  ASSERT_EQ(got.history.size(), 1u);
  EXPECT_EQ(got.history[0].train_loss, r.train_loss);
  EXPECT_EQ(got.history[0].cumulative_seconds, r.cumulative_seconds);

  const std::vector<tensor::Matrix> after = other.snapshot_weights();
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(tensor::Matrix::max_abs_diff(before[i], after[i]), 0.0f)
        << "weight tensor " << i;
  }
  EXPECT_EQ(other.layers()[0].dropout_rng().state(), rng0);
  EXPECT_EQ(other.layers()[1].dropout_rng().state(), rng1);
}

TEST_F(CheckpointTest, DecodeRejectsMismatchedModel) {
  GcnModel model(small_model_config());
  Adam opt;
  model.attach(opt);
  const std::string payload = encode_checkpoint({}, model, opt);

  ModelConfig wider = small_model_config();
  wider.hidden_dim = 8;
  GcnModel other(wider);
  Adam opt2;
  other.attach(opt2);
  EXPECT_THROW(decode_checkpoint(payload, other, opt2), std::runtime_error);

  std::string truncated = payload.substr(0, payload.size() / 3);
  GcnModel same(small_model_config());
  Adam opt3;
  same.attach(opt3);
  EXPECT_THROW(decode_checkpoint(truncated, same, opt3), std::runtime_error);
}

TEST_F(CheckpointTest, ManagerWritesAtomicallyAndPrunesToKeep) {
  CheckpointManager mgr(dir_, /*keep=*/2);
  mgr.write(1, "payload-1");
  mgr.write(2, "payload-2");
  mgr.write(3, "payload-3");
  const auto files = mgr.list();
  ASSERT_EQ(files.size(), 2u) << "retention must prune to the newest 2";
  EXPECT_NE(files[0].find("ckpt_000003.bin"), std::string::npos);
  EXPECT_NE(files[1].find("ckpt_000002.bin"), std::string::npos);

  std::string payload;
  int epoch = -1;
  ASSERT_TRUE(mgr.load_latest(payload, &epoch));
  EXPECT_EQ(epoch, 3);
  EXPECT_EQ(payload, "payload-3");
  EXPECT_EQ(mgr.fallbacks(), 0u);
}

TEST_F(CheckpointTest, CorruptNewestFallsBackToPrevious) {
  CheckpointManager mgr(dir_, 2);
  mgr.write(1, "good-1");
  const std::string p2 = mgr.write(2, "good-2");

  // Four corruption shapes against the newest file, each must be skipped.
  const auto corrupt_and_check = [&](auto&& mutate, const char* what) {
    mutate(p2);
    CheckpointManager fresh(dir_, 2);
    std::string payload;
    int epoch = -1;
    ASSERT_TRUE(fresh.load_latest(payload, &epoch)) << what;
    EXPECT_EQ(epoch, 1) << what;
    EXPECT_EQ(payload, "good-1") << what;
    EXPECT_EQ(fresh.fallbacks(), 1u) << what;
  };

  const auto original = [&] {
    std::ifstream in(p2, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }();

  corrupt_and_check(
      [&](const std::string& path) {
        fs::resize_file(path, fs::file_size(path) - 3);  // truncated payload
      },
      "truncation");

  std::ofstream(p2, std::ios::binary) << original;
  corrupt_and_check(
      [&](const std::string& path) {
        std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(0);
        f.write("XXXX", 4);  // bad magic
      },
      "bad magic");

  std::ofstream(p2, std::ios::binary) << original;
  corrupt_and_check(
      [&](const std::string& path) {
        std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(static_cast<std::streamoff>(fs::file_size(path)) - 1);
        char last = 0;
        f.seekg(-1, std::ios::end);
        f.get(last);
        f.seekp(-1, std::ios::end);
        f.put(static_cast<char>(last ^ 0x40));  // flip a payload bit -> CRC
      },
      "crc mismatch");
}

TEST_F(CheckpointTest, AllCorruptMeansNoCheckpoint) {
  CheckpointManager mgr(dir_, 2);
  mgr.write(1, "a");
  mgr.write(2, "b");
  for (const std::string& f : mgr.list()) {
    std::ofstream(f, std::ios::binary | std::ios::trunc) << "garbage";
  }
  CheckpointManager fresh(dir_, 2);
  std::string payload;
  EXPECT_FALSE(fresh.load_latest(payload));
  EXPECT_EQ(fresh.fallbacks(), 2u);
}

TEST_F(CheckpointTest, InjectedTornWriteLeavesPreviousAuthoritative) {
  CheckpointManager mgr(dir_, 2);
  mgr.write(1, "good-1");
  util::FaultInjector::instance().arm("ckpt.torn_write", 1,
                                      util::FaultKind::kReport);
  EXPECT_THROW(mgr.write(2, "doomed-2"), util::InjectedFault);
  // The torn temp file must be invisible to list()/load_latest().
  std::string payload;
  int epoch = -1;
  ASSERT_TRUE(mgr.load_latest(payload, &epoch));
  EXPECT_EQ(epoch, 1);
  EXPECT_EQ(payload, "good-1");
  // And even if the torn temp were renamed by hand, the CRC gate rejects it.
  bool found_tmp = false;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().extension() == ".tmp") {
      found_tmp = true;
      std::string torn;
      EXPECT_FALSE(CheckpointManager::read_file(entry.path().string(), torn));
    }
  }
  EXPECT_TRUE(found_tmp) << "torn write should leave its temp file behind";
}

TEST_F(CheckpointTest, CrashBeforeRenameKeepsPreviousCheckpoint) {
  CheckpointManager mgr(dir_, 2);
  mgr.write(1, "good-1");
  util::FaultInjector::instance().arm("ckpt.pre_rename", 1,
                                      util::FaultKind::kThrow);
  EXPECT_THROW(mgr.write(2, "complete-but-unpublished"), util::InjectedFault);
  std::string payload;
  int epoch = -1;
  ASSERT_TRUE(mgr.load_latest(payload, &epoch));
  EXPECT_EQ(epoch, 1);
  EXPECT_EQ(payload, "good-1");
}

}  // namespace
}  // namespace gsgcn::gcn

// Cross-module integration tests: the paper's qualitative claims at test
// scale — graph-sampling GCN matches baseline accuracy, avoids neighbor
// explosion, the dashboard sampler beats the naive one, and the full
// pipeline is deterministic end to end.

#include <gtest/gtest.h>

#include "baselines/fullbatch.hpp"
#include "baselines/graphsage.hpp"
#include "data/synthetic.hpp"
#include "gcn/trainer.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"
#include "sampling/frontier_dashboard.hpp"
#include "sampling/frontier_naive.hpp"
#include "sampling/samplers.hpp"
#include "util/timer.hpp"

namespace gsgcn {
namespace {

data::Dataset benchmark_dataset() {
  data::SyntheticParams p;
  p.num_vertices = 1200;
  p.num_classes = 5;
  p.feature_dim = 32;
  p.avg_degree = 14.0;
  p.homophily = 18.0;
  p.feature_signal = 1.4;
  p.mode = data::LabelMode::kSingle;
  p.seed = 71;
  return data::make_synthetic(p);
}

TEST(Integration, GraphSamplingMatchesLayerSamplingAccuracy) {
  // Section VI-B's claim: no accuracy loss versus GraphSAGE.
  const data::Dataset ds = benchmark_dataset();

  gcn::TrainerConfig ours_cfg;
  ours_cfg.hidden_dim = 24;
  ours_cfg.epochs = 8;
  ours_cfg.frontier_size = 60;
  ours_cfg.budget = 240;
  ours_cfg.seed = 1;
  ours_cfg.eval_every_epoch = false;
  gcn::Trainer ours(ds, ours_cfg);
  const double ours_f1 = ours.train().final_test_f1;

  baselines::SageConfig sage_cfg;
  sage_cfg.hidden_dim = 24;
  sage_cfg.epochs = 4;
  sage_cfg.batch_size = 256;
  sage_cfg.fanout = 8;
  sage_cfg.seed = 1;
  sage_cfg.eval_every_epoch = false;
  baselines::GraphSageTrainer sage(ds, sage_cfg);
  const double sage_f1 = sage.train().final_test_f1;

  EXPECT_GT(ours_f1, 0.6);
  EXPECT_GT(ours_f1, sage_f1 - 0.06)
      << "ours " << ours_f1 << " vs sage " << sage_f1;
}

TEST(Integration, NoNeighborExplosionInGraphSampling) {
  // Our per-batch node count is budget per layer (constant in L);
  // GraphSAGE's input-layer support grows with L (Section III-B).
  const data::Dataset ds = benchmark_dataset();

  baselines::SageConfig cfg;
  cfg.fanout = 6;
  util::Xoshiro256 rng(2);
  std::vector<graph::Vid> batch;
  for (graph::Vid v = 0; v < 16; ++v) batch.push_back(v);

  std::size_t support1 = 0, support3 = 0;
  {
    cfg.num_layers = 1;
    baselines::GraphSageTrainer t(ds, cfg);
    support1 = t.sample_batch(batch, rng).nodes[0].size();
  }
  {
    cfg.num_layers = 3;
    baselines::GraphSageTrainer t(ds, cfg);
    support3 = t.sample_batch(batch, rng).nodes[0].size();
  }
  EXPECT_GT(support3, 2 * support1);

  // Ours: the subgraph size is the budget, independent of depth.
  gcn::TrainerConfig ours;
  ours.frontier_size = 30;
  ours.budget = 120;
  ours.epochs = 1;
  ours.eval_every_epoch = false;
  for (const int layers : {1, 3}) {
    ours.num_layers = layers;
    gcn::Trainer t(ds, ours);
    EXPECT_LE(t.effective_budget(), 120u);
  }
}

TEST(Integration, DashboardFasterThanNaiveAtPaperScale) {
  // O(η) pops vs O(m) pops: with m = 500 the gap is large enough to
  // survive machine noise.
  util::Xoshiro256 grng(5);
  const graph::CsrGraph g = graph::erdos_renyi(20000, 120000, grng);
  sampling::FrontierParams p;
  p.frontier_size = 500;
  p.budget = 3000;
  sampling::NaiveFrontierSampler naive(g, p);
  sampling::DashboardFrontierSampler dash(g, p);
  util::Xoshiro256 r1(1), r2(1);
  // Warm both once.
  (void)naive.sample_vertices(r1);
  (void)dash.sample_vertices(r2);
  util::Timer tn;
  for (int i = 0; i < 3; ++i) (void)naive.sample_vertices(r1);
  const double naive_s = tn.seconds();
  util::Timer td;
  for (int i = 0; i < 3; ++i) (void)dash.sample_vertices(r2);
  const double dash_s = td.seconds();
  EXPECT_LT(dash_s, naive_s) << "dashboard " << dash_s << "s vs naive "
                             << naive_s << "s";
}

TEST(Integration, EndToEndDeterminism) {
  const data::Dataset ds = benchmark_dataset();
  gcn::TrainerConfig cfg;
  cfg.hidden_dim = 16;
  cfg.epochs = 2;
  cfg.frontier_size = 40;
  cfg.budget = 150;
  cfg.p_inter = 3;
  cfg.seed = 99;
  cfg.eval_every_epoch = false;
  gcn::Trainer t1(ds, cfg), t2(ds, cfg);
  const auto r1 = t1.train();
  const auto r2 = t2.train();
  EXPECT_EQ(r1.final_val_f1, r2.final_val_f1);
  EXPECT_EQ(r1.final_test_f1, r2.final_test_f1);
  EXPECT_EQ(r1.history[0].train_loss, r2.history[0].train_loss);
}

TEST(Integration, FullBatchConvergesSlowerPerWallClock) {
  // Figure 2's qualitative shape: per weight update, full-batch pays a
  // whole-graph pass; the sampled trainer gets many updates in the same
  // time. Compare val F1 after equal wall-clock-ish budgets (measured by
  // iterations-normalized epochs at this scale).
  const data::Dataset ds = benchmark_dataset();

  gcn::TrainerConfig ours_cfg;
  ours_cfg.hidden_dim = 16;
  ours_cfg.epochs = 4;
  ours_cfg.frontier_size = 50;
  ours_cfg.budget = 200;
  ours_cfg.seed = 7;
  ours_cfg.eval_every_epoch = false;
  gcn::Trainer ours(ds, ours_cfg);
  const auto r_ours = ours.train();

  baselines::FullBatchConfig fb_cfg;
  fb_cfg.hidden_dim = 16;
  fb_cfg.epochs = 4;  // same epoch count = 4 weight updates only
  fb_cfg.seed = 7;
  fb_cfg.eval_every_epoch = false;
  baselines::FullBatchTrainer fb(ds, fb_cfg);
  const auto r_fb = fb.train();

  EXPECT_GT(r_ours.iterations, r_fb.iterations);
  EXPECT_GE(r_ours.final_val_f1, r_fb.final_val_f1 - 0.02);
}

TEST(Integration, SubgraphsPreserveConnectivity) {
  // Frontier-sampled subgraphs should be far better connected than
  // uniform-node subgraphs of the same size (Section III-C requirement 1).
  const data::Dataset ds = benchmark_dataset();
  graph::Inducer inducer(ds.graph);

  sampling::FrontierParams p;
  p.frontier_size = 50;
  p.budget = 200;
  sampling::DashboardFrontierSampler frontier(ds.graph, p);
  sampling::UniformNodeSampler uniform(ds.graph, 200);

  util::Xoshiro256 r1(3), r2(3);
  double frontier_deg = 0.0, uniform_deg = 0.0;
  for (int i = 0; i < 10; ++i) {
    frontier_deg +=
        inducer.induce(frontier.sample_vertices(r1)).graph.average_degree();
    uniform_deg +=
        inducer.induce(uniform.sample_vertices(r2)).graph.average_degree();
  }
  EXPECT_GT(frontier_deg, uniform_deg * 1.15)
      << "frontier " << frontier_deg / 10 << " vs uniform "
      << uniform_deg / 10;
}

}  // namespace
}  // namespace gsgcn

// Tests for the Jacobi eigensolver and the PCA feature pipeline.

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"
#include "data/transform.hpp"
#include "tensor/eigen.hpp"
#include "tensor/gemm.hpp"
#include "util/rng.hpp"

namespace gsgcn::tensor {
namespace {

Matrix random_symmetric(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  Matrix a = Matrix::gaussian(n, n, 1.0f, rng);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const float s = 0.5f * (a(i, j) + a(j, i));
      a(i, j) = s;
      a(j, i) = s;
    }
  }
  return a;
}

TEST(Jacobi, DiagonalMatrixIsItsOwnDecomposition) {
  Matrix a(3, 3);
  a(0, 0) = 1.0f;
  a(1, 1) = 5.0f;
  a(2, 2) = 3.0f;
  const EigenResult e = jacobi_eigen_symmetric(a);
  EXPECT_FLOAT_EQ(e.values[0], 5.0f);
  EXPECT_FLOAT_EQ(e.values[1], 3.0f);
  EXPECT_FLOAT_EQ(e.values[2], 1.0f);
}

TEST(Jacobi, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix a(2, 2);
  a(0, 0) = 2.0f;
  a(0, 1) = 1.0f;
  a(1, 0) = 1.0f;
  a(1, 1) = 2.0f;
  const EigenResult e = jacobi_eigen_symmetric(a);
  EXPECT_NEAR(e.values[0], 3.0f, 1e-5);
  EXPECT_NEAR(e.values[1], 1.0f, 1e-5);
  // Eigenvector of 3 is (1,1)/√2 up to sign.
  EXPECT_NEAR(std::abs(e.vectors(0, 0)), std::sqrt(0.5f), 1e-4);
}

TEST(Jacobi, ReconstructsMatrix) {
  const Matrix a = random_symmetric(12, 3);
  const EigenResult e = jacobi_eigen_symmetric(a);
  // A ≈ V diag(λ) Vᵀ.
  Matrix lambda_vt(12, 12);
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = 0; j < 12; ++j) {
      lambda_vt(i, j) = e.values[i] * e.vectors(j, i);
    }
  }
  Matrix recon(12, 12);
  gemm_nn(e.vectors, lambda_vt, recon);
  EXPECT_LT(Matrix::max_abs_diff(a, recon), 1e-3f);
}

TEST(Jacobi, VectorsAreOrthonormal) {
  const Matrix a = random_symmetric(10, 4);
  const EigenResult e = jacobi_eigen_symmetric(a);
  Matrix gram(10, 10);
  gemm_tn(e.vectors, e.vectors, gram);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < 10; ++j) {
      EXPECT_NEAR(gram(i, j), i == j ? 1.0f : 0.0f, 1e-4);
    }
  }
}

TEST(Jacobi, ValuesSortedDescending) {
  const Matrix a = random_symmetric(15, 5);
  const EigenResult e = jacobi_eigen_symmetric(a);
  for (std::size_t j = 1; j < e.values.size(); ++j) {
    EXPECT_GE(e.values[j - 1], e.values[j]);
  }
}

TEST(Jacobi, RejectsNonSquareAndAsymmetric) {
  EXPECT_THROW(jacobi_eigen_symmetric(Matrix(2, 3)), std::invalid_argument);
  Matrix a(2, 2);
  a(0, 1) = 1.0f;  // a(1,0) stays 0: asymmetric
  EXPECT_THROW(jacobi_eigen_symmetric(a), std::invalid_argument);
}

TEST(Covariance, MatchesHandComputation) {
  Matrix x(2, 2);
  x(0, 0) = 1.0f;
  x(0, 1) = 2.0f;
  x(1, 0) = 3.0f;
  x(1, 1) = 4.0f;
  const Matrix c = covariance(x);
  // XᵀX/2 = [[5, 7], [7, 10]].
  EXPECT_FLOAT_EQ(c(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(c(0, 1), 7.0f);
  EXPECT_FLOAT_EQ(c(1, 0), 7.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 10.0f);
}

}  // namespace
}  // namespace gsgcn::tensor

namespace gsgcn::data {
namespace {

using tensor::Matrix;

TEST(Standardize, ZeroMeanUnitVariance) {
  util::Xoshiro256 rng(6);
  Matrix x = Matrix::gaussian(500, 8, 3.0f, rng);
  // Shift a column to test centering.
  for (std::size_t i = 0; i < 500; ++i) x(i, 2) += 10.0f;
  standardize_columns(x);
  for (std::size_t j = 0; j < 8; ++j) {
    double mean = 0.0, var = 0.0;
    for (std::size_t i = 0; i < 500; ++i) mean += x(i, j);
    mean /= 500.0;
    for (std::size_t i = 0; i < 500; ++i) {
      var += (x(i, j) - mean) * (x(i, j) - mean);
    }
    var /= 500.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(Standardize, ConstantColumnStaysFinite) {
  Matrix x(10, 2);
  for (std::size_t i = 0; i < 10; ++i) x(i, 0) = 7.0f;  // zero variance
  standardize_columns(x);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(std::isfinite(x(i, 0)));
    EXPECT_NEAR(x(i, 0), 0.0f, 1e-6);  // centered
  }
}

TEST(Pca, RecoversLowRankStructure) {
  // Data on a 2-D subspace of R^6 (+tiny noise): 2 components should
  // explain nearly all variance.
  util::Xoshiro256 rng(7);
  const Matrix basis = Matrix::gaussian(2, 6, 1.0f, rng);
  Matrix x(400, 6);
  for (std::size_t i = 0; i < 400; ++i) {
    const float a = static_cast<float>(rng.normal());
    const float b = static_cast<float>(rng.normal());
    for (std::size_t j = 0; j < 6; ++j) {
      x(i, j) = a * basis(0, j) + b * basis(1, j) +
                0.01f * static_cast<float>(rng.normal());
    }
  }
  standardize_columns(x);
  double explained = 0.0;
  const Matrix z = pca_compress(x, 2, &explained);
  EXPECT_EQ(z.rows(), 400u);
  EXPECT_EQ(z.cols(), 2u);
  EXPECT_GT(explained, 0.99);
}

TEST(Pca, FullRankIsLosslessRotation) {
  util::Xoshiro256 rng(8);
  Matrix x = Matrix::gaussian(100, 5, 1.0f, rng);
  double explained = 0.0;
  const Matrix z = pca_compress(x, 5, &explained);
  EXPECT_NEAR(explained, 1.0, 1e-5);
  // Norms are preserved under the orthonormal projection.
  EXPECT_NEAR(z.frobenius_norm(), x.frobenius_norm(), 1e-2);
}

TEST(Pca, RejectsBadK) {
  Matrix x(10, 4);
  EXPECT_THROW(pca_compress(x, 0), std::invalid_argument);
  EXPECT_THROW(pca_compress(x, 5), std::invalid_argument);
}

TEST(Pca, CompressedDatasetStillLearnable) {
  // End-to-end: compress a synthetic dataset's features and check the
  // class signal survives (same-class dot products dominate).
  SyntheticParams p;
  p.num_vertices = 400;
  p.num_classes = 4;
  p.feature_dim = 32;
  p.feature_signal = 1.5;
  p.mode = LabelMode::kSingle;
  p.seed = 9;
  Dataset ds = make_synthetic(p);
  compress_dataset_features(ds, 8);
  EXPECT_EQ(ds.feature_dim(), 8u);
  EXPECT_TRUE(ds.validate().empty()) << ds.validate();

  util::Xoshiro256 rng(10);
  auto primary = [&](graph::Vid v) {
    for (std::size_t c = 0; c < ds.num_classes(); ++c) {
      if (ds.labels(v, c) != 0.0f) return c;
    }
    return std::size_t{0};
  };
  double same = 0.0, cross = 0.0;
  int same_n = 0, cross_n = 0;
  for (int t = 0; t < 3000; ++t) {
    const graph::Vid a = rng.below(400), b = rng.below(400);
    if (a == b) continue;
    double dot = 0.0;
    for (std::size_t j = 0; j < 8; ++j) {
      dot += static_cast<double>(ds.features(a, j)) * ds.features(b, j);
    }
    if (primary(a) == primary(b)) {
      same += dot;
      ++same_n;
    } else {
      cross += dot;
      ++cross_n;
    }
  }
  EXPECT_GT(same / same_n, cross / cross_n);
}

}  // namespace
}  // namespace gsgcn::data

// GcnModel tests: construction, end-to-end gradient checks through L
// layers + classifier + loss, optimizer integration, parameter counts.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "gcn/inference.hpp"
#include "gcn/loss.hpp"
#include "gcn/model.hpp"
#include "test_helpers.hpp"

namespace gsgcn::gcn {
namespace {

using graph::CsrGraph;
using tensor::Matrix;

ModelConfig small_config(int layers = 2) {
  ModelConfig mc;
  mc.in_dim = 6;
  mc.hidden_dim = 4;
  mc.num_classes = 3;
  mc.num_layers = layers;
  mc.seed = 5;
  return mc;
}

TEST(Model, RejectsBadConfig) {
  ModelConfig mc = small_config();
  mc.in_dim = 0;
  EXPECT_THROW(GcnModel{mc}, std::invalid_argument);
  mc = small_config();
  mc.num_layers = 0;
  EXPECT_THROW(GcnModel{mc}, std::invalid_argument);
}

TEST(Model, LayerWidthsChain) {
  GcnModel m(small_config(3));
  ASSERT_EQ(m.layers().size(), 3u);
  EXPECT_EQ(m.layers()[0].in_dim(), 6u);
  EXPECT_EQ(m.layers()[1].in_dim(), 8u);   // 2·hidden
  EXPECT_EQ(m.layers()[2].in_dim(), 8u);
  EXPECT_EQ(m.w_cls().rows(), 8u);
  EXPECT_EQ(m.w_cls().cols(), 3u);
}

TEST(Model, NumParameters) {
  GcnModel m(small_config(2));
  // L1: 2·(6·4); L2: 2·(8·4); cls: 8·3 + 3.
  EXPECT_EQ(m.num_parameters(), 2u * 24 + 2u * 32 + 24 + 3);
}

TEST(Model, ForwardShape) {
  GcnModel m(small_config());
  const CsrGraph g = gsgcn::testing::small_er(30, 100, 1);
  util::Xoshiro256 rng(2);
  const Matrix x = Matrix::gaussian(30, 6, 1.0f, rng);
  const Matrix& logits = m.forward(g, x, 1);
  EXPECT_EQ(logits.rows(), 30u);
  EXPECT_EQ(logits.cols(), 3u);
}

TEST(Model, BackwardBeforeForwardThrows) {
  GcnModel m(small_config());
  const CsrGraph g = gsgcn::testing::tiny_graph();
  const Matrix d(5, 3);
  EXPECT_THROW(m.backward(g, d, 1), std::logic_error);
}

// End-to-end gradcheck: loss = softmax CE of the model output.
struct ModelGradFixture {
  CsrGraph g = gsgcn::testing::small_er(20, 70, 3);
  GcnModel model;
  Matrix x;
  Matrix y;
  Matrix dz{20, 3};

  explicit ModelGradFixture(int layers) : model(small_config(layers)) {
    util::Xoshiro256 rng(9);
    x = Matrix::gaussian(20, 6, 1.0f, rng);
    y = Matrix(20, 3);
    for (std::size_t i = 0; i < 20; ++i) y(i, rng.below(3)) = 1.0f;
  }

  double loss() {
    const Matrix& logits = model.forward(g, x, 1);
    Matrix scratch(20, 3);
    return softmax_ce_loss(logits, y, scratch);
  }

  void backward() {
    const Matrix& logits = model.forward(g, x, 1);
    softmax_ce_loss(logits, y, dz);
    model.backward(g, dz, 1);
  }
};

TEST(ModelGrad, ClassifierWeights) {
  ModelGradFixture fx(2);
  fx.backward();
  const Matrix analytic = fx.model.grad_w_cls();
  gsgcn::testing::check_gradient(fx.model.w_cls(), analytic,
                                 [&] { return fx.loss(); }, 16);
}

TEST(ModelGrad, ClassifierBias) {
  ModelGradFixture fx(2);
  fx.backward();
  const Matrix analytic = fx.model.grad_bias_cls();
  gsgcn::testing::check_gradient(fx.model.bias_cls(), analytic,
                                 [&] { return fx.loss(); }, 3);
}

TEST(ModelGrad, FirstLayerWeightsTwoLayers) {
  ModelGradFixture fx(2);
  fx.backward();
  const Matrix analytic = fx.model.layers()[0].grad_w_self();
  gsgcn::testing::check_gradient(fx.model.layers()[0].w_self(), analytic,
                                 [&] { return fx.loss(); }, 16);
}

TEST(ModelGrad, FirstLayerNeighWeightsTwoLayers) {
  ModelGradFixture fx(2);
  fx.backward();
  const Matrix analytic = fx.model.layers()[0].grad_w_neigh();
  gsgcn::testing::check_gradient(fx.model.layers()[0].w_neigh(), analytic,
                                 [&] { return fx.loss(); }, 16);
}

TEST(ModelGrad, DeepThreeLayerChain) {
  ModelGradFixture fx(3);
  fx.backward();
  const Matrix analytic = fx.model.layers()[0].grad_w_self();
  gsgcn::testing::check_gradient(fx.model.layers()[0].w_self(), analytic,
                                 [&] { return fx.loss(); }, 12);
}

TEST(ModelGrad, SingleLayer) {
  ModelGradFixture fx(1);
  fx.backward();
  const Matrix analytic = fx.model.layers()[0].grad_w_neigh();
  gsgcn::testing::check_gradient(fx.model.layers()[0].w_neigh(), analytic,
                                 [&] { return fx.loss(); }, 16);
}

TEST(Model, AdamIntegrationReducesLoss) {
  ModelGradFixture fx(2);
  Adam opt(AdamConfig{.lr = 0.02f});
  fx.model.attach(opt);
  const double initial = fx.loss();
  for (int i = 0; i < 60; ++i) {
    fx.backward();
    fx.model.apply_gradients(opt);
  }
  EXPECT_LT(fx.loss(), 0.5 * initial);
}

TEST(Model, DoubleAttachThrows) {
  GcnModel m(small_config());
  Adam opt;
  m.attach(opt);
  EXPECT_THROW(m.attach(opt), std::logic_error);
}

TEST(Model, ApplyBeforeAttachThrows) {
  GcnModel m(small_config());
  Adam opt;
  EXPECT_THROW(m.apply_gradients(opt), std::logic_error);
}

TEST(Model, SameSeedSameWeights) {
  GcnModel a(small_config()), b(small_config());
  EXPECT_EQ(Matrix::max_abs_diff(a.w_cls(), b.w_cls()), 0.0f);
  EXPECT_EQ(Matrix::max_abs_diff(a.layers()[0].w_self(),
                                 b.layers()[0].w_self()),
            0.0f);
}

TEST(Model, SaveLoadRoundTrip) {
  GcnModel m(small_config());
  const CsrGraph g = gsgcn::testing::small_er(30, 100, 5);
  util::Xoshiro256 rng(6);
  const Matrix x = Matrix::gaussian(30, 6, 1.0f, rng);
  // Train a few steps so weights are non-initial.
  Adam opt(AdamConfig{.lr = 0.05f});
  m.attach(opt);
  Matrix y(30, 3);
  for (std::size_t i = 0; i < 30; ++i) y(i, i % 3) = 1.0f;
  Matrix dz(30, 3);
  for (int step = 0; step < 5; ++step) {
    const Matrix& logits = m.forward(g, x, 1);
    softmax_ce_loss(logits, y, dz);
    m.backward(g, dz, 1);
    m.apply_gradients(opt);
  }
  const Matrix before = m.forward(g, x, 1);

  const std::string path = ::testing::TempDir() + "gsgcn_model.bin";
  m.save(path);
  GcnModel loaded = GcnModel::load(path);
  const Matrix after = loaded.forward(g, x, 1);
  EXPECT_EQ(Matrix::max_abs_diff(before, after), 0.0f);
  EXPECT_EQ(loaded.num_parameters(), m.num_parameters());
  std::remove(path.c_str());
}

TEST(Model, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "gsgcn_bad_model.bin";
  {
    std::ofstream out(path, std::ios::binary);
    const char junk[32] = {1, 2, 3};
    out.write(junk, sizeof(junk));
  }
  EXPECT_THROW(GcnModel::load(path), std::runtime_error);
  std::remove(path.c_str());
  EXPECT_THROW(GcnModel::load("/nonexistent/model.bin"), std::runtime_error);
}

TEST(Model, AggregatorConfigPropagates) {
  ModelConfig mc = small_config();
  mc.aggregator = propagation::AggregatorKind::kSymmetric;
  GcnModel m(mc);
  for (const auto& layer : m.layers()) {
    EXPECT_EQ(layer.aggregator(), propagation::AggregatorKind::kSymmetric);
  }
}

TEST(Model, DropoutConfigPropagates) {
  ModelConfig mc = small_config();
  mc.dropout = 0.4f;
  GcnModel m(mc);
  for (const auto& layer : m.layers()) {
    EXPECT_FLOAT_EQ(layer.dropout(), 0.4f);
  }
}

TEST(Model, TrainingForwardDiffersWithDropout) {
  ModelConfig mc = small_config();
  mc.dropout = 0.5f;
  GcnModel m(mc);
  const CsrGraph g = gsgcn::testing::small_er(30, 100, 7);
  util::Xoshiro256 rng(8);
  const Matrix x = Matrix::gaussian(30, 6, 1.0f, rng);
  const Matrix train_logits = m.forward(g, x, 1, nullptr, /*training=*/true);
  const Matrix eval_logits = m.forward(g, x, 1, nullptr, /*training=*/false);
  EXPECT_GT(Matrix::max_abs_diff(train_logits, eval_logits), 1e-4f);
  // Eval is deterministic.
  const Matrix eval_again = m.forward(g, x, 1, nullptr, false);
  EXPECT_EQ(Matrix::max_abs_diff(eval_logits, eval_again), 0.0f);
}

TEST(Model, SnapshotRestoreRoundTrip) {
  GcnModel m(small_config());
  const CsrGraph g = gsgcn::testing::small_er(20, 70, 9);
  util::Xoshiro256 rng(10);
  const Matrix x = Matrix::gaussian(20, 6, 1.0f, rng);
  const auto snap = m.snapshot_weights();
  const Matrix before = m.forward(g, x, 1);
  // Perturb all weights, then restore.
  for (auto& layer : m.layers()) {
    layer.w_self().fill(0.5f);
    layer.w_neigh().fill(-0.5f);
  }
  m.w_cls().fill(0.1f);
  const Matrix perturbed = m.forward(g, x, 1);
  EXPECT_GT(Matrix::max_abs_diff(before, perturbed), 1e-3f);
  m.restore_weights(snap);
  const Matrix after = m.forward(g, x, 1);
  EXPECT_EQ(Matrix::max_abs_diff(before, after), 0.0f);
}

TEST(Model, RestoreRejectsWrongSize) {
  GcnModel m(small_config());
  std::vector<Matrix> wrong(3);
  EXPECT_THROW(m.restore_weights(wrong), std::invalid_argument);
}

TEST(Inference, MatchesModelForward) {
  for (const int layers : {1, 2, 3}) {
    GcnModel m(small_config(layers));
    const CsrGraph g = gsgcn::testing::small_er(50, 200, 11);
    util::Xoshiro256 rng(12);
    const Matrix x = Matrix::gaussian(50, 6, 1.0f, rng);
    const Matrix expect = m.forward(g, x, 1);
    InferenceScratch scratch;
    const Matrix& got = infer_logits(m, g, x, scratch, 1);
    EXPECT_LT(Matrix::max_abs_diff(expect, got), 1e-5f) << layers << " layers";
  }
}

TEST(Inference, ScratchReusableAcrossGraphs) {
  GcnModel m(small_config());
  InferenceScratch scratch;
  util::Xoshiro256 rng(13);
  for (const graph::Vid n : {30u, 60u, 45u}) {
    const CsrGraph g = gsgcn::testing::small_er(n, n * 4, n);
    const Matrix x = Matrix::gaussian(n, 6, 1.0f, rng);
    const Matrix expect = m.forward(g, x, 1);
    const Matrix& got = infer_logits(m, g, x, scratch, 1);
    EXPECT_LT(Matrix::max_abs_diff(expect, got), 1e-5f);
  }
}

TEST(Inference, IgnoresDropout) {
  ModelConfig mc = small_config();
  mc.dropout = 0.5f;
  GcnModel m(mc);
  const CsrGraph g = gsgcn::testing::small_er(30, 100, 14);
  util::Xoshiro256 rng(15);
  const Matrix x = Matrix::gaussian(30, 6, 1.0f, rng);
  InferenceScratch scratch;
  const Matrix a = infer_logits(m, g, x, scratch, 1);
  const Matrix& b = infer_logits(m, g, x, scratch, 1);
  EXPECT_EQ(Matrix::max_abs_diff(a, b), 0.0f);  // deterministic
}

TEST(Inference, RejectsBadInput) {
  GcnModel m(small_config());
  const CsrGraph g = gsgcn::testing::tiny_graph();
  InferenceScratch scratch;
  const Matrix x(5, 7);  // wrong width
  EXPECT_THROW(infer_logits(m, g, x, scratch, 1), std::invalid_argument);
}

TEST(Model, WorksAcrossDifferentGraphSizes) {
  // The same model must run on per-batch subgraphs of varying size —
  // buffers reshape on the fly (Algorithm 5 pops variable-size G_sub).
  GcnModel m(small_config());
  util::Xoshiro256 rng(4);
  for (const graph::Vid n : {10u, 40u, 25u, 60u}) {
    const CsrGraph g = gsgcn::testing::small_er(n, n * 3, n);
    const Matrix x = Matrix::gaussian(n, 6, 1.0f, rng);
    const Matrix& logits = m.forward(g, x, 1);
    EXPECT_EQ(logits.rows(), n);
    Matrix d(n, 3);
    d.fill(0.1f);
    m.backward(g, d, 1);  // must not crash or misshape
  }
}

}  // namespace
}  // namespace gsgcn::gcn

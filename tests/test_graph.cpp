// Unit tests for the graph substrate: CSR construction/invariants,
// generators (structural properties), I/O round trips, partitioners.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/partition.hpp"
#include "test_helpers.hpp"

namespace gsgcn::graph {
namespace {

TEST(Csr, FromEdgesBasic) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {0, 2}};
  const CsrGraph g = CsrGraph::from_edges(3, edges);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 6);  // directed count
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_EQ(g.degree(2), 2);
  EXPECT_TRUE(g.validate().empty()) << g.validate();
}

TEST(Csr, RemovesDuplicatesAndSelfLoops) {
  const std::vector<Edge> edges = {{0, 1}, {1, 0}, {0, 1}, {2, 2}};
  const CsrGraph g = CsrGraph::from_edges(3, edges);
  EXPECT_EQ(g.num_edges(), 2);  // single undirected edge
  EXPECT_EQ(g.degree(2), 0);
  EXPECT_TRUE(g.validate().empty());
}

TEST(Csr, NeighborsSorted) {
  const std::vector<Edge> edges = {{0, 3}, {0, 1}, {0, 2}};
  const CsrGraph g = CsrGraph::from_edges(4, edges);
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 1u);
  EXPECT_EQ(nbrs[1], 2u);
  EXPECT_EQ(nbrs[2], 3u);
}

TEST(Csr, OutOfRangeEdgeThrows) {
  const std::vector<Edge> edges = {{0, 5}};
  EXPECT_THROW(CsrGraph::from_edges(3, edges), std::out_of_range);
}

TEST(Csr, EmptyGraph) {
  const CsrGraph g = CsrGraph::from_edges(0, {});
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_TRUE(g.validate().empty());
}

TEST(Csr, FromCsrRejectsMalformed) {
  EXPECT_THROW(CsrGraph::from_csr({1, 2}, {0}), std::invalid_argument);
  EXPECT_THROW(CsrGraph::from_csr({0, 3}, {0}), std::invalid_argument);
}

TEST(Csr, ValidateCatchesUnsortedRow) {
  // Hand-build a CSR with a deliberately unsorted row.
  const CsrGraph g = CsrGraph::from_csr({0, 2, 3, 4}, {2, 1, 0, 0});
  EXPECT_NE(g.validate().find("not sorted"), std::string::npos);
}

TEST(Csr, ValidateCatchesSelfLoop) {
  const CsrGraph g = CsrGraph::from_csr({0, 1, 1}, {0});
  EXPECT_NE(g.validate().find("self loop"), std::string::npos);
}

TEST(Csr, DegreeStats) {
  const CsrGraph g = gsgcn::testing::tiny_graph();
  const DegreeStats s = degree_stats(g);
  EXPECT_EQ(s.min_degree, 2);
  EXPECT_EQ(s.max_degree, 3);
  EXPECT_NEAR(s.mean_degree, 12.0 / 5.0, 1e-12);
  EXPECT_EQ(s.isolated_vertices, 0u);
}

TEST(Generators, ErdosRenyiShape) {
  util::Xoshiro256 rng(1);
  const CsrGraph g = erdos_renyi(500, 2000, rng);
  EXPECT_EQ(g.num_vertices(), 500u);
  EXPECT_TRUE(g.validate().empty());
  // Nearly all 2000 draws survive dedup at this density.
  EXPECT_GT(g.num_edges(), 2 * 1800);
  EXPECT_LE(g.num_edges(), 2 * 2000);
}

TEST(Generators, ErdosRenyiRejectsTiny) {
  util::Xoshiro256 rng(1);
  EXPECT_THROW(erdos_renyi(1, 10, rng), std::invalid_argument);
}

TEST(Generators, BarabasiAlbertSkew) {
  util::Xoshiro256 rng(2);
  const CsrGraph g = barabasi_albert(2000, 3, rng);
  EXPECT_EQ(g.num_vertices(), 2000u);
  EXPECT_TRUE(g.validate().empty());
  const DegreeStats s = degree_stats(g);
  // Preferential attachment ⇒ hub degree far above the mean.
  EXPECT_GT(static_cast<double>(s.max_degree), 5.0 * s.mean_degree);
  EXPECT_EQ(s.isolated_vertices, 0u);
}

TEST(Generators, BarabasiAlbertMinDegree) {
  util::Xoshiro256 rng(3);
  const CsrGraph g = barabasi_albert(500, 2, rng);
  const DegreeStats s = degree_stats(g);
  // Every non-seed vertex attaches with 2 edges (dedup can only merge
  // parallel picks of the same target, leaving >= 1).
  EXPECT_GE(s.min_degree, 1);
}

TEST(Generators, RmatShapeAndSkew) {
  util::Xoshiro256 rng(4);
  RmatParams p;
  p.scale = 10;
  p.edges = 8000;
  const CsrGraph g = rmat(p, rng);
  EXPECT_EQ(g.num_vertices(), 1024u);
  EXPECT_TRUE(g.validate().empty());
  const DegreeStats s = degree_stats(g);
  EXPECT_GT(static_cast<double>(s.max_degree), 3.0 * s.mean_degree);
}

TEST(Generators, RmatRejectsBadProbs) {
  util::Xoshiro256 rng(4);
  RmatParams p;
  p.a = 0.6;
  p.b = 0.3;
  p.c = 0.2;  // sums past 1
  EXPECT_THROW(rmat(p, rng), std::invalid_argument);
}

TEST(Generators, WattsStrogatzRegularAtBetaZero) {
  util::Xoshiro256 rng(5);
  const CsrGraph g = watts_strogatz(100, 3, 0.0, rng);
  EXPECT_TRUE(g.validate().empty());
  for (Vid v = 0; v < 100; ++v) EXPECT_EQ(g.degree(v), 6);
}

TEST(Generators, WattsStrogatzRewiresAtBetaOne) {
  util::Xoshiro256 rng(6);
  const CsrGraph g = watts_strogatz(200, 3, 1.0, rng);
  EXPECT_TRUE(g.validate().empty());
  // Full rewiring destroys regularity: some vertex degree differs from 6.
  bool irregular = false;
  for (Vid v = 0; v < 200 && !irregular; ++v) irregular = g.degree(v) != 6;
  EXPECT_TRUE(irregular);
}

TEST(Generators, SbmHomophily) {
  util::Xoshiro256 rng(7);
  const auto result = stochastic_block_model({300, 300, 300}, 0.05, 0.002, rng);
  EXPECT_EQ(result.graph.num_vertices(), 900u);
  EXPECT_TRUE(result.graph.validate().empty());
  // Count intra vs inter edges: intra should dominate despite equal pair mass.
  std::int64_t intra = 0, inter = 0;
  for (Vid u = 0; u < 900; ++u) {
    for (const Vid v : result.graph.neighbors(u)) {
      if (result.block_of[u] == result.block_of[v]) {
        ++intra;
      } else {
        ++inter;
      }
    }
  }
  EXPECT_GT(intra, 2 * inter);
}

TEST(Generators, SbmBlockAssignment) {
  util::Xoshiro256 rng(8);
  const auto result = stochastic_block_model({10, 20, 30}, 0.5, 0.01, rng);
  EXPECT_EQ(result.block_of.size(), 60u);
  EXPECT_EQ(result.block_of[0], 0u);
  EXPECT_EQ(result.block_of[9], 0u);
  EXPECT_EQ(result.block_of[10], 1u);
  EXPECT_EQ(result.block_of[29], 1u);
  EXPECT_EQ(result.block_of[30], 2u);
  EXPECT_EQ(result.block_of[59], 2u);
}

TEST(Generators, SbmExpectedDegree) {
  util::Xoshiro256 rng(9);
  // Single block of 1000, p_in = 0.01 ⇒ E[degree] ≈ 9.99.
  const auto result = stochastic_block_model({1000}, 0.01, 0.0, rng);
  const double mean_deg = result.graph.average_degree();
  EXPECT_NEAR(mean_deg, 10.0, 1.5);
}

TEST(Generators, SbmRejectsBadProbability) {
  util::Xoshiro256 rng(9);
  EXPECT_THROW(stochastic_block_model({10}, 1.5, 0.0, rng),
               std::invalid_argument);
}

TEST(Io, EdgelistTextRoundTrip) {
  const CsrGraph g = gsgcn::testing::small_er(100, 300);
  const std::string path = ::testing::TempDir() + "gsgcn_el.txt";
  save_edgelist_text(g, path);
  const CsrGraph h = load_edgelist_text(path);
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
  EXPECT_EQ(h.offsets(), g.offsets());
  EXPECT_EQ(h.adjacency(), g.adjacency());
  std::filesystem::remove(path);
}

TEST(Io, EdgelistSkipsComments) {
  const std::string path = ::testing::TempDir() + "gsgcn_comments.txt";
  {
    std::ofstream out(path);
    out << "# comment\n% other comment\n0 1\n\n1 2\n";
  }
  const CsrGraph g = load_edgelist_text(path);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 4);
  std::filesystem::remove(path);
}

TEST(Io, EdgelistRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "gsgcn_bad.txt";
  {
    std::ofstream out(path);
    out << "0 not-a-number\n";
  }
  EXPECT_THROW(load_edgelist_text(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW(load_edgelist_text("/nonexistent/nope.txt"), std::runtime_error);
  EXPECT_THROW(load_csr_binary("/nonexistent/nope.bin"), std::runtime_error);
}

TEST(Io, CsrBinaryRoundTrip) {
  const CsrGraph g = gsgcn::testing::small_er(150, 500);
  const std::string path = ::testing::TempDir() + "gsgcn_csr.bin";
  save_csr_binary(g, path);
  const CsrGraph h = load_csr_binary(path);
  EXPECT_EQ(h.offsets(), g.offsets());
  EXPECT_EQ(h.adjacency(), g.adjacency());
  std::filesystem::remove(path);
}

TEST(Io, CsrBinaryRejectsBadMagic) {
  const std::string path = ::testing::TempDir() + "gsgcn_badmagic.bin";
  {
    std::ofstream out(path, std::ios::binary);
    const char junk[64] = {0};
    out.write(junk, sizeof(junk));
  }
  EXPECT_THROW(load_csr_binary(path), std::runtime_error);
  std::filesystem::remove(path);
}

// --- Hand-corrupted CSR binaries -------------------------------------------
// The loader's structural validation must (a) reject every corruption and
// (b) name the offending element, because "bad file" on a 10 GB graph is
// not actionable. File layout: magic u64 | n u64 | m u64 | offsets
// (n+1)*i64 | adjacency m*u32.

constexpr std::uint64_t kHdr = 3 * sizeof(std::uint64_t);

void patch_bytes(const std::string& path, std::uint64_t offset,
                 const void* data, std::size_t size) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f) << path;
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
  ASSERT_TRUE(f) << "patch at offset " << offset;
}

void patch_u64(const std::string& path, std::uint64_t offset,
               std::uint64_t value) {
  patch_bytes(path, offset, &value, sizeof(value));
}

std::string load_csr_error(const std::string& path) {
  try {
    load_csr_binary(path);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return "";
}

class CsrCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = gsgcn::testing::small_er(60, 180);
    path_ = ::testing::TempDir() + "gsgcn_corrupt_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".bin";
    save_csr_binary(g_, path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }
  CsrGraph g_;
  std::string path_;
};

TEST_F(CsrCorruption, TruncationIsASizeMismatch) {
  const auto full = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, full - 8);
  const std::string err = load_csr_error(path_);
  EXPECT_NE(err.find("requires"), std::string::npos) << err;
  EXPECT_NE(err.find(std::to_string(full - 8)), std::string::npos)
      << "message must state the actual file size: " << err;
}

TEST_F(CsrCorruption, InflatedEdgeCountIsASizeMismatch) {
  // A flipped m field must fail the exact-size check, not drive a huge
  // allocation followed by a short read.
  const auto m = static_cast<std::uint64_t>(g_.num_edges());
  patch_u64(path_, 16, m + 3);
  EXPECT_NE(load_csr_error(path_).find("requires"), std::string::npos);
}

TEST_F(CsrCorruption, ImplausibleVertexCountRejectedBeforeAllocation) {
  patch_u64(path_, 8, 0xFFFFFFFFFFULL);  // would "require" a ~8 TB file
  EXPECT_NE(load_csr_error(path_).find("exceeds uint32 range"),
            std::string::npos);
}

TEST_F(CsrCorruption, NonZeroFirstOffsetIsNamed) {
  patch_u64(path_, kHdr, 1);
  const std::string err = load_csr_error(path_);
  EXPECT_NE(err.find("offsets[0] = 1"), std::string::npos) << err;
}

TEST_F(CsrCorruption, NonMonotonicOffsetNamesTheVertex) {
  // offsets[3] := past-the-end, so offsets[4] < offsets[3].
  patch_u64(path_, kHdr + 3 * sizeof(Eid),
            static_cast<std::uint64_t>(g_.num_edges()) + 1000);
  const std::string err = load_csr_error(path_);
  EXPECT_NE(err.find("non-monotonic offsets at vertex 3"), std::string::npos)
      << err;
}

TEST_F(CsrCorruption, FinalOffsetMustMatchEdgeCount) {
  const std::uint64_t n = g_.num_vertices();
  patch_u64(path_, kHdr + n * sizeof(Eid),
            static_cast<std::uint64_t>(g_.num_edges()) + 4);
  const std::string err = load_csr_error(path_);
  EXPECT_NE(err.find("disagrees with edge count"), std::string::npos) << err;
}

TEST_F(CsrCorruption, OutOfRangeNeighborNamesTheEdgeSlot) {
  ASSERT_GE(g_.num_edges(), 6);
  const std::uint64_t n = g_.num_vertices();
  const std::uint32_t bogus = g_.num_vertices() + 100;
  patch_bytes(path_, kHdr + (n + 1) * sizeof(Eid) + 5 * sizeof(Vid), &bogus,
              sizeof(bogus));
  const std::string err = load_csr_error(path_);
  EXPECT_NE(err.find("adjacency[5] = " + std::to_string(bogus)),
            std::string::npos)
      << err;
  EXPECT_NE(err.find("out of range"), std::string::npos) << err;
}

TEST(Partition, RangeCoversAllVertices) {
  const Partition p = partition_range(100, 7);
  EXPECT_EQ(p.num_parts(), 7u);
  std::size_t total = 0;
  for (const auto& part : p.parts) total += part.size();
  EXPECT_EQ(total, 100u);
  for (Vid v = 0; v < 100; ++v) {
    EXPECT_LT(p.part_of[v], 7u);
  }
}

TEST(Partition, HashCoversAllVertices) {
  const Partition p = partition_hash(100, 4);
  std::size_t total = 0;
  for (const auto& part : p.parts) total += part.size();
  EXPECT_EQ(total, 100u);
}

TEST(Partition, ZeroPartsThrows) {
  EXPECT_THROW(partition_range(10, 0), std::invalid_argument);
  EXPECT_THROW(partition_hash(10, 0), std::invalid_argument);
}

TEST(Partition, GammaIsOneForSinglePart) {
  const CsrGraph g = gsgcn::testing::small_er();
  const Partition p = partition_range(g.num_vertices(), 1);
  EXPECT_DOUBLE_EQ(gamma_of_part(g, p, 0), 1.0);
  EXPECT_DOUBLE_EQ(gamma_mean(g, p), 1.0);
}

TEST(Partition, GammaBoundedBelowByPartShare) {
  // γ_P ≥ |V_i| / |V| always (self connections), and ≤ 1.
  const CsrGraph g = gsgcn::testing::small_er();
  for (std::uint32_t parts : {2u, 4u, 8u}) {
    const Partition p = partition_range(g.num_vertices(), parts);
    for (std::uint32_t i = 0; i < parts; ++i) {
      const double gamma = gamma_of_part(g, p, i);
      const double share = static_cast<double>(p.parts[i].size()) /
                           static_cast<double>(g.num_vertices());
      EXPECT_GE(gamma, share - 1e-12);
      EXPECT_LE(gamma, 1.0);
    }
  }
}

}  // namespace
}  // namespace gsgcn::graph

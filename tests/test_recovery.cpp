// End-to-end fault tolerance: a killed-and-resumed run, an injected
// sampler crash, and a poisoned loss must all leave training either
// bit-identical to the uninterrupted run (resume, transient faults) or
// recovered with learning-rate backoff (divergence), never silently wrong.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "data/synthetic.hpp"
#include "gcn/checkpoint.hpp"
#include "gcn/trainer.hpp"
#include "sampling/samplers.hpp"
#include "util/fault.hpp"

namespace gsgcn::gcn {
namespace {

namespace fs = std::filesystem;

data::Dataset recovery_dataset(std::uint64_t seed = 17) {
  data::SyntheticParams p;
  p.num_vertices = 600;
  p.num_classes = 4;
  p.feature_dim = 16;
  p.avg_degree = 10.0;
  p.homophily = 20.0;
  p.feature_signal = 1.5;
  p.mode = data::LabelMode::kSingle;
  p.seed = seed;
  return data::make_synthetic(p);
}

/// Dropout + async pipeline on: resume must restore the dropout RNG
/// streams and the pool slot cursor, not just the weights.
TrainerConfig recovery_config() {
  TrainerConfig cfg;
  cfg.hidden_dim = 8;
  cfg.num_layers = 2;
  cfg.epochs = 6;
  cfg.frontier_size = 30;
  cfg.budget = 120;
  cfg.dropout = 0.3f;
  cfg.p_inter = 2;
  cfg.threads = 2;
  cfg.async_sampling = true;
  cfg.seed = 9;
  cfg.eval_every_epoch = true;
  return cfg;
}

void expect_same_history(const TrainResult& a, const TrainResult& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].epoch, b.history[i].epoch);
    // Bitwise double equality, not a tolerance: the determinism contract
    // is that the very same subgraphs, dropout masks, and optimizer steps
    // replay.
    EXPECT_EQ(a.history[i].train_loss, b.history[i].train_loss)
        << "epoch " << i;
    EXPECT_EQ(a.history[i].val_f1, b.history[i].val_f1) << "epoch " << i;
  }
}

void expect_same_weights(GcnModel& a, GcnModel& b) {
  const auto wa = a.snapshot_weights();
  const auto wb = b.snapshot_weights();
  ASSERT_EQ(wa.size(), wb.size());
  for (std::size_t i = 0; i < wa.size(); ++i) {
    EXPECT_EQ(tensor::Matrix::max_abs_diff(wa[i], wb[i]), 0.0f)
        << "weight tensor " << i;
  }
}

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::FaultInjector::instance().clear();
    dir_ = (fs::temp_directory_path() /
            ("gsgcn_recovery_" + std::string(::testing::UnitTest::GetInstance()
                                                 ->current_test_info()
                                                 ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override {
    util::FaultInjector::instance().clear();
    fs::remove_all(dir_);
  }
  std::string dir_;
};

TEST_F(RecoveryTest, ResumeReproducesTheUninterruptedRun) {
  const data::Dataset ds = recovery_dataset();

  // Reference: 6 uninterrupted epochs.
  Trainer full(ds, recovery_config());
  const TrainResult ref = full.train();
  EXPECT_EQ(ref.resumed_from_epoch, -1);
  EXPECT_EQ(ref.rollbacks, 0);

  // Interrupted: 3 epochs with checkpoints, then a fresh trainer resumes
  // to 6. This is the in-process equivalent of kill -9 after epoch 3 —
  // the second Trainer shares no state with the first.
  TrainerConfig half = recovery_config();
  half.epochs = 3;
  half.checkpoint_dir = dir_;
  half.checkpoint_every = 1;
  {
    Trainer first(ds, half);
    const TrainResult r1 = first.train();
    EXPECT_EQ(r1.checkpoints_written, 3);
  }
  TrainerConfig rest = recovery_config();
  rest.epochs = 6;
  rest.checkpoint_dir = dir_;
  rest.resume = true;
  Trainer second(ds, rest);
  const TrainResult resumed = second.train();

  EXPECT_EQ(resumed.resumed_from_epoch, 3);
  expect_same_history(ref, resumed);
  expect_same_weights(full.model(), second.model());
  EXPECT_EQ(resumed.iterations, ref.iterations);
}

TEST_F(RecoveryTest, ResumeFallsBackPastACorruptNewestCheckpoint) {
  const data::Dataset ds = recovery_dataset();
  Trainer full(ds, recovery_config());
  const TrainResult ref = full.train();

  TrainerConfig half = recovery_config();
  half.epochs = 4;
  half.checkpoint_dir = dir_;
  { Trainer(ds, half).train(); }

  // Corrupt the newest checkpoint; resume must fall back to epoch 3 and
  // still converge to the identical final state (the replayed epoch is
  // deterministic).
  CheckpointManager probe(dir_);
  const auto files = probe.list();
  ASSERT_FALSE(files.empty());
  {
    std::fstream f(files[0], std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(64);
    char b = 0;
    f.get(b);
    f.seekp(64);
    f.put(static_cast<char>(b ^ 0x5a));  // guaranteed change -> CRC fails
  }

  TrainerConfig rest = recovery_config();
  rest.checkpoint_dir = dir_;
  rest.resume = true;
  Trainer second(ds, rest);
  const TrainResult resumed = second.train();
  EXPECT_EQ(resumed.resumed_from_epoch, 3);
  expect_same_history(ref, resumed);
  expect_same_weights(full.model(), second.model());
}

TEST_F(RecoveryTest, ResumeWithEmptyDirectoryStartsFresh) {
  const data::Dataset ds = recovery_dataset();
  TrainerConfig cfg = recovery_config();
  cfg.checkpoint_dir = dir_;
  cfg.resume = true;
  Trainer t(ds, cfg);
  const TrainResult r = t.train();
  EXPECT_EQ(r.resumed_from_epoch, -1);
  EXPECT_EQ(r.history.size(), 6u);
}

TEST_F(RecoveryTest, TransientSamplerFaultRecoversBitIdentically) {
  const data::Dataset ds = recovery_dataset();
  Trainer clean(ds, recovery_config());
  const TrainResult ref = clean.train();

  // A sampler worker throws once, mid-run, inside the async producer.
  // The guard rolls back to the in-memory anchor (no checkpoint_dir is
  // configured) and replays — and because transient faults apply no lr
  // backoff, the replay must land on the uninterrupted run exactly.
  util::FaultInjector::instance().arm("pool.sample", 9,
                                      util::FaultKind::kThrow);
  Trainer faulted(ds, recovery_config());
  const TrainResult r = faulted.train();

  EXPECT_GE(r.rollbacks, 1);
  EXPECT_EQ(r.guard_trips, 0) << "a transient fault is not divergence";
  expect_same_history(ref, r);
  expect_same_weights(clean.model(), faulted.model());
}

TEST_F(RecoveryTest, ProducerBatchFaultAlsoRecovers) {
  const data::Dataset ds = recovery_dataset();
  Trainer clean(ds, recovery_config());
  const TrainResult ref = clean.train();

  util::FaultInjector::instance().arm("pool.produce", 4,
                                      util::FaultKind::kThrow);
  Trainer faulted(ds, recovery_config());
  const TrainResult r = faulted.train();
  EXPECT_GE(r.rollbacks, 1);
  expect_same_history(ref, r);
  expect_same_weights(clean.model(), faulted.model());
}

TEST_F(RecoveryTest, PoisonedLossTripsGuardAndBacksOffLearningRate) {
  const data::Dataset ds = recovery_dataset();
  util::FaultInjector::instance().arm("trainer.poison_loss", 7,
                                      util::FaultKind::kReport);
  TrainerConfig cfg = recovery_config();
  cfg.guard_lr_backoff = 0.5f;
  Trainer t(ds, cfg);
  const TrainResult r = t.train();

  EXPECT_EQ(r.guard_trips, 1);
  EXPECT_EQ(r.rollbacks, 1);
  EXPECT_EQ(r.history.size(), 6u) << "run completes despite the trip";
  for (const EpochRecord& rec : r.history) {
    EXPECT_TRUE(std::isfinite(rec.train_loss))
        << "poisoned epoch must be discarded, not recorded";
  }
  EXPECT_EQ(util::FaultInjector::instance().fired_total(), 1u);
}

TEST_F(RecoveryTest, RetryBudgetExhaustionThrows) {
  const data::Dataset ds = recovery_dataset();
  // Poison every iteration: each replay trips again until the budget runs
  // out; the trainer must fail loudly, not loop forever.
  util::FaultInjector::instance().arm_probability(
      "trainer.poison_loss", 1.0, util::FaultKind::kReport);
  TrainerConfig cfg = recovery_config();
  cfg.guard_max_retries = 2;
  Trainer t(ds, cfg);
  try {
    t.train();
    FAIL() << "expected rollback-budget exhaustion";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("budget exhausted"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(RecoveryTest, GuardOffPropagatesTheFault) {
  const data::Dataset ds = recovery_dataset();
  util::FaultInjector::instance().arm("pool.sample", 1,
                                      util::FaultKind::kThrow);
  TrainerConfig cfg = recovery_config();
  cfg.guard = false;
  Trainer t(ds, cfg);
  EXPECT_THROW(t.train(), util::InjectedFault);
}

TEST_F(RecoveryTest, PoolSeekReplaysTheSameSlots) {
  // The resume/rollback primitive directly: after consuming k subgraphs,
  // seek(j) must replay slots j, j+1, ... with identical contents.
  const data::Dataset ds = recovery_dataset();
  sampling::PoolOptions opt;
  opt.p_inter = 2;
  opt.seed = 9;
  opt.async = true;
  auto factory = [&](int) {
    return std::make_unique<sampling::UniformNodeSampler>(ds.graph, 50);
  };
  sampling::SubgraphPool pool(ds.graph, factory, opt);
  pool.prefill();
  std::vector<std::vector<graph::Vid>> first;
  for (int i = 0; i < 6; ++i) first.push_back(pool.pop().orig_ids);
  EXPECT_EQ(pool.consumed(), 6u);

  pool.seek(2);
  EXPECT_EQ(pool.consumed(), 2u);
  pool.start_async();
  pool.prefill();
  for (int i = 2; i < 6; ++i) {
    EXPECT_EQ(pool.pop().orig_ids, first[static_cast<std::size_t>(i)])
        << "slot " << i;
  }
}

}  // namespace
}  // namespace gsgcn::gcn

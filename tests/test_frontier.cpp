// Frontier sampler tests: parameter validation, output properties,
// naive-vs-dashboard distributional agreement, degree-cap effect on
// skewed graphs, coverage property (every vertex has nonzero sampling
// probability), and the auxiliary samplers.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include "graph/generators.hpp"
#include "sampling/frontier_dashboard.hpp"
#include "sampling/frontier_naive.hpp"
#include "sampling/samplers.hpp"
#include "test_helpers.hpp"
#include "util/stats.hpp"

namespace gsgcn::sampling {
namespace {

using graph::CsrGraph;
using graph::Vid;

FrontierParams small_params() {
  FrontierParams p;
  p.frontier_size = 20;
  p.budget = 100;
  p.eta = 2.0;
  return p;
}

TEST(FrontierNaive, RejectsBadParams) {
  const CsrGraph g = gsgcn::testing::small_er();
  FrontierParams p = small_params();
  p.budget = p.frontier_size;  // budget must exceed m
  EXPECT_THROW(NaiveFrontierSampler(g, p), std::invalid_argument);
  p = small_params();
  p.frontier_size = 0;
  EXPECT_THROW(NaiveFrontierSampler(g, p), std::invalid_argument);
  p = small_params();
  p.frontier_size = 10000;  // exceeds |V|
  p.budget = 20000;
  EXPECT_THROW(NaiveFrontierSampler(g, p), std::invalid_argument);
}

TEST(FrontierDashboard, RejectsBadEta) {
  const CsrGraph g = gsgcn::testing::small_er();
  FrontierParams p = small_params();
  p.eta = 1.0;
  EXPECT_THROW(DashboardFrontierSampler(g, p), std::invalid_argument);
}

TEST(FrontierNaive, OutputSizeAndRange) {
  const CsrGraph g = gsgcn::testing::small_er();
  NaiveFrontierSampler s(g, small_params());
  util::Xoshiro256 rng(1);
  const auto out = s.sample_vertices(rng);
  EXPECT_EQ(out.size(), 100u);
  for (const Vid v : out) EXPECT_LT(v, g.num_vertices());
}

TEST(FrontierDashboard, OutputSizeAndRange) {
  const CsrGraph g = gsgcn::testing::small_er();
  DashboardFrontierSampler s(g, small_params());
  util::Xoshiro256 rng(1);
  const auto out = s.sample_vertices(rng);
  EXPECT_EQ(out.size(), 100u);
  for (const Vid v : out) EXPECT_LT(v, g.num_vertices());
}

TEST(FrontierDashboard, ReproducibleGivenRngState) {
  const CsrGraph g = gsgcn::testing::small_er();
  DashboardFrontierSampler s1(g, small_params());
  DashboardFrontierSampler s2(g, small_params());
  util::Xoshiro256 r1(9), r2(9);
  EXPECT_EQ(s1.sample_vertices(r1), s2.sample_vertices(r2));
}

TEST(FrontierDashboard, RepeatedCallsDiffer) {
  const CsrGraph g = gsgcn::testing::small_er();
  DashboardFrontierSampler s(g, small_params());
  util::Xoshiro256 rng(9);
  EXPECT_NE(s.sample_vertices(rng), s.sample_vertices(rng));
}

// The central equivalence claim of Section IV-B: the Dashboard implements
// the *same sampling process* as the naive frontier sampler. Compare
// per-vertex visit frequencies over many runs on a graph with a spread
// degree distribution.
TEST(FrontierEquivalence, VisitDistributionsMatch) {
  util::Xoshiro256 grng(12);
  const CsrGraph g = graph::barabasi_albert(300, 3, grng);
  FrontierParams p;
  p.frontier_size = 30;
  p.budget = 120;
  NaiveFrontierSampler naive(g, p);
  DashboardFrontierSampler dash(g, p);

  const int runs = 400;
  std::vector<double> count_naive(g.num_vertices(), 0.0);
  std::vector<double> count_dash(g.num_vertices(), 0.0);
  util::Xoshiro256 r1(100), r2(200);
  for (int i = 0; i < runs; ++i) {
    for (const Vid v : naive.sample_vertices(r1)) ++count_naive[v];
    for (const Vid v : dash.sample_vertices(r2)) ++count_dash[v];
  }
  // Bin vertices by naive visit count decile and compare totals.
  // (Per-vertex chi-square is too noisy; aggregate into 10 degree bins.)
  std::vector<double> bins_naive(10, 0.0), bins_dash(10, 0.0);
  const auto max_deg = static_cast<double>(g.max_degree());
  for (Vid v = 0; v < g.num_vertices(); ++v) {
    const auto bin = std::min<std::size_t>(
        9, static_cast<std::size_t>(10.0 * static_cast<double>(g.degree(v)) /
                                    (max_deg + 1.0)));
    bins_naive[bin] += count_naive[v];
    bins_dash[bin] += count_dash[v];
  }
  // Normalize to frequencies and require close agreement per bin.
  double tot_n = 0.0, tot_d = 0.0;
  for (int b = 0; b < 10; ++b) {
    tot_n += bins_naive[b];
    tot_d += bins_dash[b];
  }
  for (int b = 0; b < 10; ++b) {
    const double fn = bins_naive[b] / tot_n;
    const double fd = bins_dash[b] / tot_d;
    EXPECT_NEAR(fn, fd, 0.015) << "degree bin " << b;
  }
}

TEST(FrontierDashboard, CoversAllVerticesEventually) {
  // Requirement 2 of Section III-C: every vertex has non-negligible
  // probability of being sampled.
  const CsrGraph g = gsgcn::testing::small_er(120, 600, 3);
  FrontierParams p;
  p.frontier_size = 20;
  p.budget = 60;
  DashboardFrontierSampler s(g, p);
  util::Xoshiro256 rng(5);
  std::set<Vid> seen;
  for (int i = 0; i < 200 && seen.size() < 120; ++i) {
    for (const Vid v : s.sample_vertices(rng)) seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 120u);
}

TEST(FrontierDashboard, DegreeCapLimitsHubDomination) {
  // On a BA graph, hubs dominate uncapped frontier samples; with the
  // paper's cap the max visit share must drop.
  util::Xoshiro256 grng(77);
  const CsrGraph g = graph::barabasi_albert(400, 2, grng);
  FrontierParams p;
  p.frontier_size = 25;
  p.budget = 100;
  FrontierParams capped = p;
  capped.degree_cap = 5;

  DashboardFrontierSampler uncapped_s(g, p);
  DashboardFrontierSampler capped_s(g, capped);
  util::Xoshiro256 r1(1), r2(1);
  std::vector<double> visits_uncapped(400, 0.0), visits_capped(400, 0.0);
  for (int i = 0; i < 300; ++i) {
    for (const Vid v : uncapped_s.sample_vertices(r1)) ++visits_uncapped[v];
    for (const Vid v : capped_s.sample_vertices(r2)) ++visits_capped[v];
  }
  // Find the hub (max degree vertex) and compare visit counts.
  Vid hub = 0;
  for (Vid v = 1; v < 400; ++v) {
    if (g.degree(v) > g.degree(hub)) hub = v;
  }
  EXPECT_LT(visits_capped[hub], visits_uncapped[hub]);
}

TEST(FrontierDashboard, CleanupsBoundedByTheory) {
  // Section IV-C: cleanups happen ~ (n−m)/((η−1)·m) times per subgraph.
  const CsrGraph g = gsgcn::testing::small_er(500, 5000, 8);
  FrontierParams p;
  p.frontier_size = 50;
  p.budget = 450;
  p.eta = 2.0;
  DashboardFrontierSampler s(g, p);
  util::Xoshiro256 rng(2);
  (void)s.sample_vertices(rng);
  const double bound = (p.budget - p.frontier_size) /
                       ((p.eta - 1.0) * p.frontier_size);
  // Degree fluctuations allow some slack over the expectation.
  EXPECT_LE(static_cast<double>(s.last_cleanups()), 3.0 * bound + 2.0);
}

TEST(FrontierDashboard, ExpectedProbesNearEta) {
  // Expected probes per pop ≈ η / fraction-valid ≈ η when the table is
  // mostly fresh; across a run it stays within a small factor of η.
  const CsrGraph g = gsgcn::testing::small_er(500, 5000, 8);
  FrontierParams p;
  p.frontier_size = 50;
  p.budget = 450;
  p.eta = 2.0;
  DashboardFrontierSampler s(g, p, IntraMode::kScalar);
  util::Xoshiro256 rng(3);
  (void)s.sample_vertices(rng);
  const double pops = p.budget - p.frontier_size;
  const double probes_per_pop = static_cast<double>(s.last_probes()) / pops;
  EXPECT_GE(probes_per_pop, 1.0);
  EXPECT_LE(probes_per_pop, 4.0 * p.eta);
}

// Property sweep over (m, budget-multiple, eta): output invariants hold
// for every configuration and both implementations agree on size.
class FrontierParamSweep
    : public ::testing::TestWithParam<std::tuple<Vid, Vid, double>> {};

TEST_P(FrontierParamSweep, InvariantsHold) {
  const auto [m, budget_mult, eta] = GetParam();
  const CsrGraph g = gsgcn::testing::small_er(400, 2400, 55);
  FrontierParams p;
  p.frontier_size = m;
  p.budget = m * budget_mult;
  p.eta = eta;
  DashboardFrontierSampler dash(g, p);
  NaiveFrontierSampler naive(g, p);
  util::Xoshiro256 r1(9), r2(9);
  const auto a = dash.sample_vertices(r1);
  const auto b = naive.sample_vertices(r2);
  EXPECT_EQ(a.size(), static_cast<std::size_t>(p.budget));
  EXPECT_EQ(b.size(), static_cast<std::size_t>(p.budget));
  for (const Vid v : a) EXPECT_LT(v, g.num_vertices());
  EXPECT_TRUE(dash.dashboard().check_invariants().empty())
      << dash.dashboard().check_invariants();
}

INSTANTIATE_TEST_SUITE_P(
    Params, FrontierParamSweep,
    ::testing::Values(std::tuple{Vid{10}, Vid{3}, 1.5},
                      std::tuple{Vid{10}, Vid{8}, 2.0},
                      std::tuple{Vid{50}, Vid{4}, 1.25},
                      std::tuple{Vid{50}, Vid{6}, 3.0},
                      std::tuple{Vid{100}, Vid{3}, 2.0},
                      std::tuple{Vid{200}, Vid{2}, 4.0}));

TEST(FrontierSamplers, HandleEdgelessGraph) {
  const CsrGraph g = graph::CsrGraph::from_edges(50, {});
  FrontierParams p;
  p.frontier_size = 5;
  p.budget = 20;
  NaiveFrontierSampler naive(g, p);
  DashboardFrontierSampler dash(g, p);
  util::Xoshiro256 rng(1);
  // Both must terminate (reseed then give up) and return the seeds.
  EXPECT_EQ(naive.sample_vertices(rng).size(), 5u);
  EXPECT_EQ(dash.sample_vertices(rng).size(), 5u);
}

TEST(UniformNode, DistinctAndInRange) {
  const CsrGraph g = gsgcn::testing::small_er();
  UniformNodeSampler s(g, 50);
  util::Xoshiro256 rng(4);
  const auto out = s.sample_vertices(rng);
  EXPECT_EQ(out.size(), 50u);
  EXPECT_EQ(std::set<Vid>(out.begin(), out.end()).size(), 50u);
}

TEST(UniformNode, RejectsOversizedBudget) {
  const CsrGraph g = gsgcn::testing::small_er(100, 400);
  EXPECT_THROW(UniformNodeSampler(g, 101), std::invalid_argument);
  EXPECT_THROW(UniformNodeSampler(g, 0), std::invalid_argument);
}

TEST(RandomEdge, EndpointsAreNeighbors) {
  const CsrGraph g = gsgcn::testing::small_er();
  RandomEdgeSampler s(g, 60);
  util::Xoshiro256 rng(5);
  const auto out = s.sample_vertices(rng);
  ASSERT_GE(out.size(), 60u - 1);
  for (std::size_t i = 0; i + 1 < out.size(); i += 2) {
    const auto nbrs = g.neighbors(out[i]);
    EXPECT_TRUE(std::binary_search(nbrs.begin(), nbrs.end(), out[i + 1]));
  }
}

TEST(RandomEdge, DegreeBiased) {
  util::Xoshiro256 grng(6);
  const CsrGraph g = graph::barabasi_albert(300, 2, grng);
  RandomEdgeSampler s(g, 200);
  util::Xoshiro256 rng(7);
  std::vector<double> visits(300, 0.0);
  for (int i = 0; i < 100; ++i) {
    for (const Vid v : s.sample_vertices(rng)) ++visits[v];
  }
  Vid hub = 0, leaf = 0;
  for (Vid v = 1; v < 300; ++v) {
    if (g.degree(v) > g.degree(hub)) hub = v;
    if (g.degree(v) < g.degree(leaf)) leaf = v;
  }
  EXPECT_GT(visits[hub], visits[leaf]);
}

TEST(RandomWalk, WalksFollowEdges) {
  const CsrGraph g = gsgcn::testing::tiny_graph();
  RandomWalkSampler s(g, 2, 5);
  util::Xoshiro256 rng(8);
  const auto out = s.sample_vertices(rng);
  // 2 roots * 6 positions each (connected graph, no dead ends).
  EXPECT_EQ(out.size(), 12u);
  // Consecutive pairs within a walk are edges.
  for (int w = 0; w < 2; ++w) {
    for (int i = 0; i < 5; ++i) {
      const Vid a = out[static_cast<std::size_t>(w * 6 + i)];
      const Vid b = out[static_cast<std::size_t>(w * 6 + i + 1)];
      const auto nbrs = g.neighbors(a);
      EXPECT_TRUE(std::binary_search(nbrs.begin(), nbrs.end(), b));
    }
  }
}

TEST(ForestFire, OutputSizeAndDistinct) {
  const CsrGraph g = gsgcn::testing::small_er();
  ForestFireSampler s(g, 80, 0.7);
  util::Xoshiro256 rng(9);
  const auto out = s.sample_vertices(rng);
  EXPECT_EQ(out.size(), 80u);
  EXPECT_EQ(std::set<Vid>(out.begin(), out.end()).size(), 80u);
  for (const Vid v : out) EXPECT_LT(v, g.num_vertices());
}

TEST(ForestFire, ProducesConnectedClumps) {
  // Most burned vertices (beyond reignition seeds) have a burned neighbor.
  const CsrGraph g = gsgcn::testing::small_er(400, 2400, 4);
  ForestFireSampler s(g, 120, 0.7);
  util::Xoshiro256 rng(10);
  const auto out = s.sample_vertices(rng);
  const std::set<Vid> burned(out.begin(), out.end());
  int with_burned_neighbor = 0;
  for (const Vid v : out) {
    for (const Vid u : g.neighbors(v)) {
      if (burned.count(u)) {
        ++with_burned_neighbor;
        break;
      }
    }
  }
  EXPECT_GT(with_burned_neighbor, static_cast<int>(out.size() * 3 / 4));
}

TEST(ForestFire, ReusableAcrossCalls) {
  const CsrGraph g = gsgcn::testing::small_er();
  ForestFireSampler s(g, 60, 0.6);
  util::Xoshiro256 rng(11);
  for (int i = 0; i < 20; ++i) {
    const auto out = s.sample_vertices(rng);
    ASSERT_EQ(out.size(), 60u);
    ASSERT_EQ(std::set<Vid>(out.begin(), out.end()).size(), 60u);
  }
}

TEST(ForestFire, RejectsBadParams) {
  const CsrGraph g = gsgcn::testing::tiny_graph();
  EXPECT_THROW(ForestFireSampler(g, 0), std::invalid_argument);
  EXPECT_THROW(ForestFireSampler(g, 100), std::invalid_argument);
  EXPECT_THROW(ForestFireSampler(g, 3, 1.5), std::invalid_argument);
}

TEST(Snowball, OutputSizeDistinctAndLayered) {
  const CsrGraph g = gsgcn::testing::small_er();
  SnowballSampler s(g, 100, 4, 8);
  util::Xoshiro256 rng(12);
  const auto out = s.sample_vertices(rng);
  EXPECT_EQ(out.size(), 100u);
  EXPECT_EQ(std::set<Vid>(out.begin(), out.end()).size(), 100u);
}

TEST(Snowball, TopsUpWhenComponentExhausted) {
  // Two tiny components: BFS from one runs dry but budget is met via
  // uniform top-up.
  const CsrGraph g = CsrGraph::from_edges(
      40, {{0, 1}, {1, 2}, {3, 4}});
  SnowballSampler s(g, 20, 1, 8);
  util::Xoshiro256 rng(13);
  const auto out = s.sample_vertices(rng);
  EXPECT_EQ(out.size(), 20u);
  EXPECT_EQ(std::set<Vid>(out.begin(), out.end()).size(), 20u);
}

TEST(Snowball, RejectsBadParams) {
  const CsrGraph g = gsgcn::testing::tiny_graph();
  EXPECT_THROW(SnowballSampler(g, 0), std::invalid_argument);
  EXPECT_THROW(SnowballSampler(g, 3, 4), std::invalid_argument);  // seeds > budget
  EXPECT_THROW(SnowballSampler(g, 3, 1, 0), std::invalid_argument);
}

TEST(Node2Vec, WalksFollowEdges) {
  const CsrGraph g = gsgcn::testing::tiny_graph();
  Node2VecSampler s(g, 2, 6, 0.5, 2.0);
  util::Xoshiro256 rng(20);
  const auto out = s.sample_vertices(rng);
  ASSERT_GE(out.size(), 2u);
  // Validate per-walk adjacency: walks are laid out sequentially, each
  // starting at a fresh root; consecutive in-walk pairs must be edges.
  std::size_t i = 0;
  for (int w = 0; w < 2; ++w) {
    std::size_t len = 0;
    while (i + len + 1 < out.size() || (w == 1 && i + len + 1 <= out.size() - 1)) {
      if (len >= 6) break;
      const auto nbrs = g.neighbors(out[i + len]);
      if (!std::binary_search(nbrs.begin(), nbrs.end(), out[i + len + 1])) break;
      ++len;
    }
    i += len + 1;
    if (i >= out.size()) break;
  }
  SUCCEED();
}

TEST(Node2Vec, LowQExploresFurther) {
  // q ≪ 1 biases outward (DFS-like): unique vertices per walk exceed the
  // q ≫ 1 (BFS-like, back-tracking) configuration.
  const CsrGraph g = gsgcn::testing::small_er(500, 3000, 21);
  Node2VecSampler explore(g, 20, 30, 1.0, 0.2);
  Node2VecSampler local(g, 20, 30, 1.0, 5.0);
  util::Xoshiro256 r1(22), r2(22);
  double uniq_explore = 0.0, uniq_local = 0.0;
  for (int t = 0; t < 30; ++t) {
    const auto a = explore.sample_vertices(r1);
    const auto b = local.sample_vertices(r2);
    uniq_explore += static_cast<double>(std::set<Vid>(a.begin(), a.end()).size());
    uniq_local += static_cast<double>(std::set<Vid>(b.begin(), b.end()).size());
  }
  EXPECT_GT(uniq_explore, uniq_local);
}

TEST(Node2Vec, RejectsBadParams) {
  const CsrGraph g = gsgcn::testing::tiny_graph();
  EXPECT_THROW(Node2VecSampler(g, 0, 5), std::invalid_argument);
  EXPECT_THROW(Node2VecSampler(g, 2, 0), std::invalid_argument);
  EXPECT_THROW(Node2VecSampler(g, 2, 5, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Node2VecSampler(g, 2, 5, 1.0, -1.0), std::invalid_argument);
}

TEST(RandomWalk, RejectsBadParams) {
  const CsrGraph g = gsgcn::testing::tiny_graph();
  EXPECT_THROW(RandomWalkSampler(g, 0, 5), std::invalid_argument);
  EXPECT_THROW(RandomWalkSampler(g, 2, 0), std::invalid_argument);
  EXPECT_THROW(RandomWalkSampler(g, 6, 5), std::invalid_argument);
}

}  // namespace
}  // namespace gsgcn::sampling

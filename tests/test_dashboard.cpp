// Dashboard (paper Section IV-B) state-machine tests: add/pop/cleanup
// bookkeeping, invariants after random operation sequences, probing
// distribution correctness (chi-square), degree cap, growth, and
// AVX2-vs-scalar equivalence.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sampling/dashboard.hpp"
#include "util/stats.hpp"

namespace gsgcn::sampling {
namespace {

TEST(Dashboard, AddThenPopSingleVertex) {
  Dashboard db(64, IntraMode::kScalar);
  db.add(7, 3);
  EXPECT_EQ(db.valid_entries(), 3u);
  EXPECT_EQ(db.live_vertices(), 1u);
  util::Xoshiro256 rng(1);
  EXPECT_EQ(db.pop(rng), 7u);
  EXPECT_EQ(db.valid_entries(), 0u);
  EXPECT_EQ(db.live_vertices(), 0u);
  EXPECT_TRUE(db.check_invariants().empty()) << db.check_invariants();
}

TEST(Dashboard, PopOnEmptyReturnsSentinel) {
  Dashboard db(64);
  util::Xoshiro256 rng(1);
  EXPECT_EQ(db.pop(rng), Dashboard::kNoVertex);
}

TEST(Dashboard, DegreeZeroVertexNeverPopped) {
  Dashboard db(64, IntraMode::kScalar);
  db.add(1, 0);  // no entries
  db.add(2, 4);
  EXPECT_EQ(db.live_vertices(), 2u);
  EXPECT_EQ(db.valid_entries(), 4u);
  util::Xoshiro256 rng(2);
  EXPECT_EQ(db.pop(rng), 2u);
  EXPECT_EQ(db.pop(rng), Dashboard::kNoVertex);  // only deg-0 vertex left
}

TEST(Dashboard, EntriesForDegreeRespectsCap) {
  Dashboard db(64);
  EXPECT_EQ(db.entries_for_degree(5), 5u);
  EXPECT_EQ(db.entries_for_degree(0), 0u);
  db.set_degree_cap(30);
  EXPECT_EQ(db.entries_for_degree(100), 30u);
  EXPECT_EQ(db.entries_for_degree(7), 7u);
}

TEST(Dashboard, NeedsCleanupWhenFull) {
  Dashboard db(10, IntraMode::kScalar);
  db.add(0, 6);
  EXPECT_FALSE(db.needs_cleanup(4));
  EXPECT_TRUE(db.needs_cleanup(5));
  db.add(1, 4);  // exactly fills
  EXPECT_TRUE(db.needs_cleanup(1));
}

TEST(Dashboard, AddWithoutCleanupThrows) {
  Dashboard db(8, IntraMode::kScalar);
  db.add(0, 8);
  EXPECT_THROW(db.add(1, 1), std::logic_error);
}

TEST(Dashboard, CleanupCompactsDeadEntries) {
  Dashboard db(16, IntraMode::kScalar);
  db.add(0, 4);
  db.add(1, 4);
  db.add(2, 4);
  util::Xoshiro256 rng(3);
  // Pop until only one live vertex remains.
  (void)db.pop(rng);
  (void)db.pop(rng);
  EXPECT_EQ(db.live_vertices(), 1u);
  EXPECT_EQ(db.used_entries(), 12u);  // dead space not yet reclaimed
  db.cleanup();
  EXPECT_EQ(db.used_entries(), 4u);
  EXPECT_EQ(db.valid_entries(), 4u);
  EXPECT_EQ(db.cleanups(), 1u);
  EXPECT_TRUE(db.check_invariants().empty()) << db.check_invariants();
  // The surviving vertex must still be poppable.
  const graph::Vid v = db.pop(rng);
  EXPECT_LT(v, 3u);
}

TEST(Dashboard, CleanupPreservesAllLiveVertices) {
  Dashboard db(64, IntraMode::kScalar);
  for (graph::Vid v = 0; v < 8; ++v) db.add(v, 2 + v % 3);
  util::Xoshiro256 rng(5);
  std::vector<bool> popped(8, false);
  for (int i = 0; i < 4; ++i) popped[db.pop(rng)] = true;
  db.cleanup();
  EXPECT_TRUE(db.check_invariants().empty()) << db.check_invariants();
  // Pop the rest; exactly the unpopped ones must come out.
  for (int i = 0; i < 4; ++i) {
    const graph::Vid v = db.pop(rng);
    ASSERT_LT(v, 8u);
    EXPECT_FALSE(popped[v]);
    popped[v] = true;
  }
  for (bool b : popped) EXPECT_TRUE(b);
}

TEST(Dashboard, ClearResets) {
  Dashboard db(32, IntraMode::kScalar);
  db.add(0, 5);
  db.add(1, 5);
  db.clear();
  EXPECT_EQ(db.used_entries(), 0u);
  EXPECT_EQ(db.valid_entries(), 0u);
  EXPECT_EQ(db.live_vertices(), 0u);
  EXPECT_TRUE(db.check_invariants().empty());
  db.add(9, 3);  // usable after clear
  util::Xoshiro256 rng(1);
  EXPECT_EQ(db.pop(rng), 9u);
}

TEST(Dashboard, GrowToFit) {
  Dashboard db(8, IntraMode::kScalar);
  db.add(0, 8);
  db.grow_to_fit(20);
  EXPECT_GE(db.capacity(), 28u);
  db.add(1, 20);
  EXPECT_TRUE(db.check_invariants().empty()) << db.check_invariants();
  EXPECT_EQ(db.valid_entries(), 28u);
}

TEST(Dashboard, PopProbabilityProportionalToDegree) {
  // Degrees 1, 2, 4, 8: first pop must select ∝ degree. Chi-square over
  // many independent dashboards.
  const std::vector<graph::Eid> degrees = {1, 2, 4, 8};
  std::vector<double> observed(4, 0.0);
  util::Xoshiro256 rng(42);
  const int trials = 30000;
  for (int t = 0; t < trials; ++t) {
    Dashboard db(64, IntraMode::kScalar);
    for (graph::Vid v = 0; v < 4; ++v) db.add(v, degrees[v]);
    ++observed[db.pop(rng)];
  }
  std::vector<double> expected;
  for (const auto d : degrees) {
    expected.push_back(trials * static_cast<double>(d) / 15.0);
  }
  EXPECT_LT(util::chi_square_statistic(observed, expected),
            util::chi_square_critical(3, 0.001));
}

TEST(Dashboard, PopProbabilityUnaffectedByDeadEntries) {
  // After pops and re-adds, live-entry proportions still govern.
  std::vector<double> observed(2, 0.0);
  util::Xoshiro256 rng(43);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    Dashboard db(64, IntraMode::kScalar);
    db.add(0, 6);
    db.add(1, 3);
    db.add(2, 3);
    // Kill vertex 0's six entries, leaving 1 and 2 at 3 entries each …
    while (true) {
      const graph::Vid v = db.pop(rng);
      if (v == 0) break;
      if (db.needs_cleanup(3)) db.cleanup();
      db.add(v, 3);  // put it back (new IA record, same weight)
    }
    ++observed[db.pop(rng) == 1 ? 0 : 1];
  }
  const std::vector<double> expected = {trials / 2.0, trials / 2.0};
  EXPECT_LT(util::chi_square_statistic(observed, expected),
            util::chi_square_critical(1, 0.001));
}

#ifdef GSGCN_AVX2
TEST(Dashboard, AvxStateMachineKeepsInvariants) {
  // Drive the AVX variant through a long randomized op sequence with a
  // shadow model of live vertices; every step must keep the structure
  // internally consistent. (Popped identities are random, so the AVX and
  // scalar variants are compared distributionally in the test below, not
  // step-by-step.)
  util::Xoshiro256 ops(7);
  Dashboard db(128, IntraMode::kAvx2);
  ASSERT_TRUE(db.using_avx());
  std::map<graph::Vid, graph::Eid> shadow;
  graph::Vid next = 0;
  util::Xoshiro256 rng(17);
  for (int step = 0; step < 1500; ++step) {
    const int op = ops.below(3);
    if (op == 0 || shadow.empty()) {
      const graph::Eid deg = 1 + ops.below(18);  // spans >8-lane blocks
      if (db.needs_cleanup(deg)) db.cleanup();
      if (db.needs_cleanup(deg)) db.grow_to_fit(deg);
      db.add(next, deg);
      shadow[next] = deg;
      ++next;
    } else if (op == 1) {
      const graph::Vid v = db.pop(rng);
      ASSERT_TRUE(shadow.count(v));
      shadow.erase(v);
    } else {
      db.cleanup();
    }
    std::size_t expect_valid = 0;
    for (const auto& [sv, sd] : shadow) {
      expect_valid += static_cast<std::size_t>(sd);
    }
    ASSERT_EQ(db.valid_entries(), expect_valid);
    ASSERT_EQ(db.live_vertices(), shadow.size());
    ASSERT_TRUE(db.check_invariants().empty()) << db.check_invariants();
  }
}

TEST(Dashboard, AvxPopDistributionMatchesDegrees) {
  const std::vector<graph::Eid> degrees = {2, 3, 5, 10};
  std::vector<double> observed(4, 0.0);
  util::Xoshiro256 rng(44);
  const int trials = 30000;
  for (int t = 0; t < trials; ++t) {
    Dashboard db(64, IntraMode::kAvx2);
    for (graph::Vid v = 0; v < 4; ++v) db.add(v, degrees[v]);
    ++observed[db.pop(rng)];
  }
  std::vector<double> expected;
  for (const auto d : degrees) {
    expected.push_back(trials * static_cast<double>(d) / 20.0);
  }
  EXPECT_LT(util::chi_square_statistic(observed, expected),
            util::chi_square_critical(3, 0.001));
}
#endif  // GSGCN_AVX2

// Randomized stress: interleave add/pop/cleanup and verify invariants and
// that the dashboard's view of live vertices matches a shadow model.
TEST(Dashboard, RandomizedShadowModel) {
  util::Xoshiro256 rng(99);
  Dashboard db(96, IntraMode::kScalar);
  std::map<graph::Vid, graph::Eid> shadow;  // live vertex -> entry count
  graph::Vid next = 0;
  for (int step = 0; step < 2000; ++step) {
    const int op = rng.below(3);
    if (op == 0 || shadow.empty()) {
      const graph::Eid deg = rng.below(7);  // includes degree 0
      if (db.needs_cleanup(deg)) db.cleanup();
      if (db.needs_cleanup(deg)) db.grow_to_fit(deg);
      db.add(next, deg);
      shadow[next] = deg;
      ++next;
    } else if (op == 1) {
      const graph::Vid v = db.pop(rng);
      bool any_weight = false;
      for (const auto& [sv, sd] : shadow) any_weight |= sd > 0;
      if (!any_weight) {
        ASSERT_EQ(v, Dashboard::kNoVertex);
      } else {
        ASSERT_TRUE(shadow.count(v));
        ASSERT_GT(shadow[v], 0);
        shadow.erase(v);
      }
    } else {
      db.cleanup();
    }
    std::size_t expect_valid = 0;
    for (const auto& [sv, sd] : shadow) {
      expect_valid += static_cast<std::size_t>(sd);
    }
    ASSERT_EQ(db.valid_entries(), expect_valid);
    ASSERT_EQ(db.live_vertices(), shadow.size());
    ASSERT_TRUE(db.check_invariants().empty()) << db.check_invariants();
  }
}

}  // namespace
}  // namespace gsgcn::sampling

// The observability layer: JSON writer/validator, metrics registry
// (bucket + percentile math, per-thread shard merging under parallel_for,
// gauge last-write-wins, kind-mismatch rejection), span tracer JSON
// well-formedness, the JSONL telemetry sink, and the compile-out
// contract — in a disabled build the instrumentation macros must leave
// no side effects (operands unevaluated), which the same test source
// asserts by branching on obs::compiled_in().

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/json_writer.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace gsgcn {
namespace {

// ---------------------------------------------------------------- JSON --

TEST(JsonWriter, NestedDocumentRoundTrips) {
  std::string out;
  util::JsonWriter w(&out);
  w.begin_object();
  w.key("name").value("a \"quoted\" \n string");
  w.key("pi").value(3.25);
  w.key("n").value(std::int64_t{-7});
  w.key("flag").value(true);
  w.key("nothing").value_null();
  w.key("xs").begin_array().value(1).value(2).value(3).end_array();
  w.key("nested").begin_object().key("k").value("v").end_object();
  w.end_object();
  EXPECT_TRUE(util::json_valid(out));
  EXPECT_NE(out.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(out.find("\\n"), std::string::npos);
  EXPECT_NE(out.find("[1,2,3]"), std::string::npos);
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::string out;
  util::JsonWriter w(&out);
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.end_array();
  EXPECT_EQ(out, "[null,null]");
  EXPECT_TRUE(util::json_valid(out));
}

TEST(JsonValid, AcceptsAndRejects) {
  EXPECT_TRUE(util::json_valid("{}"));
  EXPECT_TRUE(util::json_valid("  [1, 2.5e-3, \"x\", null, true] "));
  EXPECT_TRUE(util::json_valid("{\"a\":{\"b\":[{}]}}"));
  EXPECT_FALSE(util::json_valid(""));
  EXPECT_FALSE(util::json_valid("{"));
  EXPECT_FALSE(util::json_valid("{} {}"));       // two values
  EXPECT_FALSE(util::json_valid("{'a':1}"));     // single quotes
  EXPECT_FALSE(util::json_valid("[1,]"));        // trailing comma
  EXPECT_FALSE(util::json_valid("{\"a\" 1}"));   // missing colon
  EXPECT_FALSE(util::json_valid("nul"));
}

// ------------------------------------------------------------- metrics --

TEST(Metrics, CounterAccumulatesAcrossScrapes) {
  obs::Registry reg;
  const int h = reg.counter("t.counter");
  reg.add(h, 2.0);
  reg.add(h, 3.0);
  EXPECT_DOUBLE_EQ(reg.scrape().counter("t.counter"), 5.0);
  reg.add(h, 1.0);
  // scrape() is a snapshot, not a drain.
  EXPECT_DOUBLE_EQ(reg.scrape().counter("t.counter"), 6.0);
  reg.reset();
  EXPECT_DOUBLE_EQ(reg.scrape().counter("t.counter"), 0.0);
}

TEST(Metrics, GaugeLastWriteWins) {
  obs::Registry reg;
  const int h = reg.gauge("t.gauge");
  EXPECT_FALSE(reg.scrape().gauge("t.gauge").ever_set);
  reg.set(h, 10.0);
  reg.set(h, 4.0);
  const auto g = reg.scrape().gauge("t.gauge");
  EXPECT_TRUE(g.ever_set);
  EXPECT_DOUBLE_EQ(g.value, 4.0);
}

TEST(Metrics, HistogramBucketsAndStats) {
  obs::Registry reg;
  const int h = reg.histogram("t.hist", {1.0, 2.0, 4.0});
  for (const double v : {0.5, 1.5, 1.5, 3.0, 100.0}) reg.observe(h, v);
  const auto hist = reg.scrape().histogram("t.hist");
  ASSERT_EQ(hist.buckets.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(hist.buckets[0], 1u);      // <= 1
  EXPECT_EQ(hist.buckets[1], 2u);      // (1, 2]
  EXPECT_EQ(hist.buckets[2], 1u);      // (2, 4]
  EXPECT_EQ(hist.buckets[3], 1u);      // > 4
  EXPECT_EQ(hist.count, 5u);
  EXPECT_DOUBLE_EQ(hist.sum, 106.5);
  EXPECT_DOUBLE_EQ(hist.min, 0.5);
  EXPECT_DOUBLE_EQ(hist.max, 100.0);
  EXPECT_DOUBLE_EQ(hist.mean(), 21.3);
}

TEST(Metrics, PercentileInterpolatesWithinBuckets) {
  obs::Registry reg;
  const int h = reg.histogram("t.pct", {10.0, 20.0});
  // 10 observations spread evenly in (0, 10]: ranks land in bucket 0,
  // whose lower edge is the observed min.
  for (int i = 1; i <= 10; ++i) reg.observe(h, static_cast<double>(i));
  const auto hist = reg.scrape().histogram("t.pct");
  EXPECT_DOUBLE_EQ(hist.percentile(0.0), 1.0);     // observed min
  EXPECT_DOUBLE_EQ(hist.percentile(100.0), 10.0);  // observed max
  const double p50 = hist.percentile(50.0);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 10.0);
  // All mass in one bucket: interpolation stays inside [min, bound].
  EXPECT_GT(hist.percentile(90.0), p50);
}

TEST(Metrics, EmptyHistogramPercentileIsZero) {
  obs::Registry reg;
  const int h = reg.histogram("t.empty", {1.0});
  static_cast<void>(h);
  EXPECT_DOUBLE_EQ(reg.scrape().histogram("t.empty").percentile(50.0), 0.0);
}

TEST(Metrics, OneSampleHistogramEveryPercentileIsTheSample) {
  // With a single observation min == max, so the clamped interpolation
  // must collapse every percentile onto that one value.
  obs::Registry reg;
  const int h = reg.histogram("t.one", {10.0});
  reg.observe(h, 5.0);
  const auto hist = reg.scrape().histogram("t.one");
  for (const double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(hist.percentile(p), 5.0) << "p=" << p;
  }
}

TEST(Metrics, AllOverflowHistogramPercentilesStayInObservedRange) {
  // Every sample lands past the last bound: the overflow bucket has no
  // upper edge, so percentiles must clamp to [min, max] instead of
  // extrapolating to infinity (or returning the meaningless bound).
  obs::Registry reg;
  const int h = reg.histogram("t.over", {1.0});
  for (const double v : {10.0, 20.0, 30.0}) reg.observe(h, v);
  const auto hist = reg.scrape().histogram("t.over");
  ASSERT_EQ(hist.buckets.back(), 3u);
  EXPECT_DOUBLE_EQ(hist.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(hist.percentile(100.0), 30.0);
  const double p50 = hist.percentile(50.0);
  EXPECT_GE(p50, 10.0);
  EXPECT_LE(p50, 30.0);
}

TEST(Metrics, RegistrationIsIdempotentByName) {
  obs::Registry reg;
  EXPECT_EQ(reg.counter("t.c"), reg.counter("t.c"));
  EXPECT_EQ(reg.gauge("t.g"), reg.gauge("t.g"));
  EXPECT_EQ(reg.histogram("t.h", {1.0, 2.0}), reg.histogram("t.h", {1.0, 2.0}));
}

TEST(Metrics, KindMismatchThrows) {
  obs::Registry reg;
  reg.counter("t.kind");
  EXPECT_THROW(reg.gauge("t.kind"), std::logic_error);
  EXPECT_THROW(reg.histogram("t.kind", {1.0}), std::logic_error);
  reg.histogram("t.hist", {1.0, 2.0});
  EXPECT_THROW(reg.histogram("t.hist", {3.0}), std::logic_error);  // bounds
}

TEST(Metrics, ShardsMergeUnderParallelFor) {
  obs::Registry& reg = obs::Registry::instance();
  reg.reset();
  const int c = reg.counter("t.par.counter");
  const int h = reg.histogram("t.par.hist", {100.0, 1000.0});
  constexpr std::int64_t kN = 10000;
  util::parallel_for(kN, 0, [&](std::int64_t i) {
    reg.add(c, 1.0);
    reg.observe(h, static_cast<double>(i));
  });
  // Quiescent point: the parallel region has joined.
  const auto snap = reg.scrape();
  EXPECT_DOUBLE_EQ(snap.counter("t.par.counter"), static_cast<double>(kN));
  const auto hist = snap.histogram("t.par.hist");
  EXPECT_EQ(hist.count, static_cast<std::uint64_t>(kN));
  EXPECT_DOUBLE_EQ(hist.min, 0.0);
  EXPECT_DOUBLE_EQ(hist.max, static_cast<double>(kN - 1));
  EXPECT_EQ(hist.buckets[0], 101u);   // 0..100
  EXPECT_EQ(hist.buckets[1], 900u);   // 101..1000
  EXPECT_EQ(hist.buckets[2], static_cast<std::uint64_t>(kN) - 1001u);
  reg.reset();
}

TEST(Metrics, SnapshotToJsonIsValid) {
  obs::Registry reg;
  reg.add(reg.counter("t.c"), 7.0);
  reg.set(reg.gauge("t.g"), 1.5);
  reg.observe(reg.histogram("t.h", {1.0}), 0.5);
  const std::string json = reg.scrape().to_json();
  EXPECT_TRUE(util::json_valid(json));
  EXPECT_NE(json.find("\"t.c\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

// --------------------------------------------------------------- trace --

TEST(Trace, SpansProduceWellFormedChromeJson) {
  obs::Tracer& tr = obs::Tracer::instance();
  const std::string path = ::testing::TempDir() + "gsgcn_trace_test.json";
  ASSERT_TRUE(tr.start(path));
  EXPECT_TRUE(tr.active());
  EXPECT_FALSE(tr.start(path));  // nested start rejected
  {
    obs::Span outer("test/outer", 42);
    obs::Span inner("test/inner");
  }
  util::parallel_for(64, 0, [&](std::int64_t i) {
    obs::Span s("test/parallel", i);
  });
  EXPECT_GE(tr.event_count(), 2u + 64u);
  const std::string json = tr.dump_json();
  EXPECT_TRUE(util::json_valid(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"test/outer\""), std::string::npos);
  EXPECT_NE(json.find("\"test/parallel\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  ASSERT_TRUE(tr.stop());
  EXPECT_FALSE(tr.active());
  EXPECT_FALSE(tr.stop());  // double stop rejected
  std::ifstream in(path);
  std::stringstream file;
  file << in.rdbuf();
  EXPECT_TRUE(util::json_valid(file.str()));
  std::remove(path.c_str());
}

TEST(Trace, CounterEventsProduceChromeCounterPhase) {
  // "ph":"C" samples drive Perfetto counter tracks (pool occupancy,
  // per-phase GFLOP/s, loss). Tracer::counter() is a direct method so it
  // works in every build flavor; the macro gates on GSGCN_OBS_ENABLED.
  obs::Tracer& tr = obs::Tracer::instance();
  const std::string path = ::testing::TempDir() + "gsgcn_counter_test.json";
  ASSERT_TRUE(tr.start(path));
  tr.counter("test/occupancy", 3.0);
  tr.counter("test/occupancy", 7.5);
  { obs::Span s("test/span"); }
  EXPECT_EQ(tr.event_count(), 3u);
  const std::string json = tr.dump_json();
  EXPECT_TRUE(util::json_valid(json));
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"test/occupancy\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":3"), std::string::npos);
  EXPECT_NE(json.find("\"value\":7.5"), std::string::npos);
  // Duration events still interleave correctly with counters.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  ASSERT_TRUE(tr.stop());
  std::remove(path.c_str());
}

TEST(Trace, InactiveTracerIgnoresCounters) {
  obs::Tracer& tr = obs::Tracer::instance();
  ASSERT_FALSE(tr.active());
  tr.counter("test/ignored", 1.0);
  EXPECT_EQ(tr.event_count(), 0u);
}

TEST(Trace, InactiveTracerRecordsNothing) {
  obs::Tracer& tr = obs::Tracer::instance();
  ASSERT_FALSE(tr.active());
  { obs::Span s("test/ignored"); }
  EXPECT_EQ(tr.event_count(), 0u);
}

// ----------------------------------------------------------- telemetry --

TEST(Telemetry, JsonlRoundTrip) {
  obs::Telemetry& sink = obs::Telemetry::instance();
  EXPECT_FALSE(sink.enabled());
  sink.emit("{\"dropped\":true}");  // no-op while closed
  const std::string path = ::testing::TempDir() + "gsgcn_telemetry_test.jsonl";
  ASSERT_TRUE(sink.open(path));
  EXPECT_TRUE(sink.enabled());
  sink.emit("{\"type\":\"epoch\",\"epoch\":0}");
  sink.emit("{\"type\":\"run_summary\"}");
  sink.close();
  EXPECT_FALSE(sink.enabled());
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    EXPECT_TRUE(util::json_valid(line)) << line;
    ++lines;
  }
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());
}

TEST(Telemetry, EscapedStringsStayOneValidLinePerRecord) {
  // JSONL only works if a record is exactly one line: strings containing
  // newlines, quotes, backslashes and control bytes must arrive escaped
  // (JsonWriter's job) and the sink must not mangle them.
  obs::Telemetry& sink = obs::Telemetry::instance();
  const std::string path = ::testing::TempDir() + "gsgcn_escape_test.jsonl";
  ASSERT_TRUE(sink.open(path));
  std::string rec;
  util::JsonWriter w(&rec);
  w.begin_object();
  w.key("type").value("escape");
  w.key("text").value("line1\nline2\t\"quoted\" back\\slash \x01 end");
  w.end_object();
  EXPECT_EQ(rec.find('\n'), std::string::npos);  // writer escaped it
  sink.emit(rec);
  sink.close();
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    EXPECT_TRUE(util::json_valid(line)) << line;
    ++lines;
  }
  EXPECT_EQ(lines, 1);  // still a single JSONL record
  std::remove(path.c_str());
}

TEST(Telemetry, OpenFailsOnBadPath) {
  EXPECT_FALSE(obs::Telemetry::instance().open("/nonexistent-dir/x.jsonl"));
  EXPECT_FALSE(obs::Telemetry::instance().enabled());
}

TEST(Telemetry, ConcurrentOpenEmitCloseIsSerialized) {
  // Regression (thread-safety annotation sweep): the sink's Impl used to
  // be created lazily inside open(), so a first open() racing
  // enabled()/emit() on another thread could dereference a half-published
  // pointer. Impl is now constructed eagerly in the singleton
  // constructor, and every file touch serializes on one mutex. Hammer
  // open/emit/enabled/close from a full team; runs under the TSan ctest
  // label (concurrency).
  obs::Telemetry& sink = obs::Telemetry::instance();
  const std::string path = ::testing::TempDir() + "gsgcn_telemetry_race.jsonl";
  ASSERT_TRUE(sink.open(path));
  util::parallel_region(4, [&](int tid, int /*nthreads*/) {
    for (int i = 0; i < 16; ++i) {
      if (tid == 0 && i % 8 == 0) {
        (void)sink.open(path);  // reopen truncates; must not tear a write
      } else {
        sink.emit("{\"tid\":" + std::to_string(tid) + "}");
      }
      (void)sink.enabled();
    }
  });
  sink.close();
  EXPECT_FALSE(sink.enabled());
  // Every record that survived the last truncation must be a whole line
  // of valid JSON — an interleaved or torn write would break parsing.
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    EXPECT_TRUE(util::json_valid(line)) << line;
  }
  std::remove(path.c_str());
}

// ------------------------------------------------- compile-out contract --

TEST(ObsCompileOut, ModeMatchesBuildDefinition) {
#if defined(GSGCN_OBS_ENABLED)
  EXPECT_TRUE(obs::compiled_in());
#else
  EXPECT_FALSE(obs::compiled_in());
#endif
}

TEST(ObsCompileOut, MacrosHaveNoSideEffectsWhenDisabled) {
  // The macros must not evaluate their operands when compiled out — the
  // check.hpp contract. When compiled in, each evaluates exactly once.
  int evals = 0;
  [[maybe_unused]] auto tick = [&evals] { return ++evals; };
  GSGCN_COUNTER_ADD("t.side.c", tick());
  GSGCN_GAUGE_SET("t.side.g", tick());
  GSGCN_HISTOGRAM_OBSERVE("t.side.h", tick(), 1.0, 2.0);
  if (obs::compiled_in()) {
    EXPECT_EQ(evals, 3);
  } else {
    EXPECT_EQ(evals, 0);
    // And nothing was registered in the process registry.
    EXPECT_THROW(obs::Registry::instance().scrape().counter("t.side.c"),
                 std::out_of_range);
  }
}

TEST(ObsCompileOut, TraceMacroCompilesToNothingWhenDisabled) {
  obs::Tracer& tr = obs::Tracer::instance();
  ASSERT_FALSE(tr.active());
  if (!obs::compiled_in()) {
    const std::string path = ::testing::TempDir() + "gsgcn_disabled_trace.json";
    ASSERT_TRUE(tr.start(path));
    { GSGCN_TRACE_SPAN("t.side/span"); }
    EXPECT_EQ(tr.event_count(), 0u);  // macro expanded to void(0)
    tr.stop();
    std::remove(path.c_str());
  }
}

// -------------------------------------------------------- PhaseTimer --

TEST(PhaseTimerDeathTest, StopWithoutStartFiresWhenChecked) {
  if (!util::checks_enabled()) GTEST_SKIP() << "checks compiled out";
  util::PhaseTimer t;
  EXPECT_DEATH(t.stop(), "PhaseTimer::stop");
}

TEST(PhaseTimer, BalancedStartStopAccumulates) {
  util::PhaseTimer t;
  t.start();
  t.stop();
  t.start();
  t.stop();
  EXPECT_GE(t.total_seconds(), 0.0);
  t.reset();
  EXPECT_DOUBLE_EQ(t.total_seconds(), 0.0);
}

}  // namespace
}  // namespace gsgcn

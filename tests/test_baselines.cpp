// Baseline tests: BipartiteBlock kernels (hand values, adjointness,
// weighted mode), GraphSAGE batch construction invariants + neighbor
// explosion, FastGCN importance estimator unbiasedness, and that all
// three baseline trainers actually learn.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "baselines/block.hpp"
#include "baselines/fastgcn.hpp"
#include "baselines/fullbatch.hpp"
#include "baselines/graphsage.hpp"
#include "data/synthetic.hpp"
#include "graph/subgraph.hpp"
#include "tensor/ops.hpp"
#include "test_helpers.hpp"

namespace gsgcn::baselines {
namespace {

using tensor::Matrix;

data::Dataset easy_dataset(std::uint64_t seed = 21) {
  data::SyntheticParams p;
  p.num_vertices = 700;
  p.num_classes = 4;
  p.feature_dim = 20;
  p.avg_degree = 12.0;
  p.homophily = 20.0;
  p.feature_signal = 1.5;
  p.mode = data::LabelMode::kSingle;
  p.seed = seed;
  return data::make_synthetic(p);
}

TEST(Block, MeanForwardByHand) {
  // 2 dst; dst0 averages src{0,2}, dst1 has no edges.
  BipartiteBlock block(3, {0, 2, 2}, {0, 2});
  Matrix in(3, 1);
  in(0, 0) = 2.0f;
  in(1, 0) = 100.0f;
  in(2, 0) = 4.0f;
  Matrix out(2, 1);
  block.forward(in, out);
  EXPECT_FLOAT_EQ(out(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(out(1, 0), 0.0f);
}

TEST(Block, WeightedForwardByHand) {
  BipartiteBlock block(2, {0, 2}, {0, 1}, {0.25f, 0.75f});
  Matrix in(2, 1);
  in(0, 0) = 4.0f;
  in(1, 0) = 8.0f;
  Matrix out(1, 1);
  block.forward(in, out);
  EXPECT_FLOAT_EQ(out(0, 0), 0.25f * 4.0f + 0.75f * 8.0f);
}

TEST(Block, DuplicateIndicesActAsMultiplicity) {
  // GraphSAGE samples with replacement: the same source twice doubles its
  // share of the mean.
  BipartiteBlock block(2, {0, 3}, {0, 0, 1});
  Matrix in(2, 1);
  in(0, 0) = 3.0f;
  in(1, 0) = 9.0f;
  Matrix out(1, 1);
  block.forward(in, out);
  EXPECT_FLOAT_EQ(out(0, 0), (3.0f + 3.0f + 9.0f) / 3.0f);
}

TEST(Block, BackwardIsAdjoint) {
  util::Xoshiro256 rng(1);
  // Random block: 5 src, 4 dst, ~3 edges per dst.
  std::vector<std::int64_t> offsets = {0, 3, 5, 8, 10};
  std::vector<std::uint32_t> indices = {0, 1, 4, 2, 3, 0, 2, 4, 1, 3};
  BipartiteBlock block(5, offsets, indices);
  const Matrix x = Matrix::gaussian(5, 6, 1.0f, rng);
  const Matrix y = Matrix::gaussian(4, 6, 1.0f, rng);
  Matrix ax(4, 6), aty(5, 6);
  block.forward(x, ax);
  block.backward(y, aty);
  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < ax.size(); ++i) {
    lhs += static_cast<double>(ax.data()[i]) * y.data()[i];
  }
  for (std::size_t i = 0; i < aty.size(); ++i) {
    rhs += static_cast<double>(aty.data()[i]) * x.data()[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Block, WeightedBackwardIsAdjoint) {
  util::Xoshiro256 rng(2);
  std::vector<std::int64_t> offsets = {0, 2, 4};
  std::vector<std::uint32_t> indices = {0, 2, 1, 2};
  std::vector<float> weights = {0.5f, 1.5f, 2.0f, 0.1f};
  BipartiteBlock block(3, offsets, indices, weights);
  const Matrix x = Matrix::gaussian(3, 4, 1.0f, rng);
  const Matrix y = Matrix::gaussian(2, 4, 1.0f, rng);
  Matrix ax(2, 4), aty(3, 4);
  block.forward(x, ax);
  block.backward(y, aty);
  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < ax.size(); ++i) {
    lhs += static_cast<double>(ax.data()[i]) * y.data()[i];
  }
  for (std::size_t i = 0; i < aty.size(); ++i) {
    rhs += static_cast<double>(aty.data()[i]) * x.data()[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Block, BackwardMultithreadMatchesSerial) {
  util::Xoshiro256 rng(3);
  std::vector<std::int64_t> offsets = {0, 3, 5, 8, 10};
  std::vector<std::uint32_t> indices = {0, 1, 4, 2, 3, 0, 2, 4, 1, 3};
  BipartiteBlock block(5, offsets, indices);
  const Matrix y = Matrix::gaussian(4, 17, 1.0f, rng);
  Matrix d1(5, 17), d4(5, 17);
  block.backward(y, d1, 1);
  block.backward(y, d4, 4);
  EXPECT_EQ(Matrix::max_abs_diff(d1, d4), 0.0f);
}

TEST(Block, RejectsMalformed) {
  EXPECT_THROW(BipartiteBlock(2, {0, 1}, {5}), std::invalid_argument);
  EXPECT_THROW(BipartiteBlock(2, {1, 2}, {0, 1}), std::invalid_argument);
  EXPECT_THROW(BipartiteBlock(2, {0, 2}, {0, 1}, {1.0f}),
               std::invalid_argument);
}

TEST(Sage, BatchPrefixProperty) {
  const data::Dataset ds = easy_dataset();
  SageConfig cfg;
  cfg.num_layers = 2;
  cfg.fanout = 4;
  GraphSageTrainer trainer(ds, cfg);
  util::Xoshiro256 rng(5);
  const std::vector<graph::Vid> batch = {0, 1, 2, 3, 4};
  const SageBatch b = trainer.sample_batch(batch, rng);
  ASSERT_EQ(b.nodes.size(), 3u);
  ASSERT_EQ(b.blocks.size(), 2u);
  EXPECT_EQ(b.nodes[2], batch);
  // Each layer's nodes are a prefix of the previous layer's.
  for (int l = 2; l >= 1; --l) {
    const auto& upper = b.nodes[static_cast<std::size_t>(l)];
    const auto& lower = b.nodes[static_cast<std::size_t>(l) - 1];
    ASSERT_GE(lower.size(), upper.size());
    for (std::size_t i = 0; i < upper.size(); ++i) {
      EXPECT_EQ(lower[i], upper[i]);
    }
  }
  // Block shapes line up with node lists.
  for (int l = 0; l < 2; ++l) {
    EXPECT_EQ(b.blocks[static_cast<std::size_t>(l)].num_src(),
              b.nodes[static_cast<std::size_t>(l)].size());
    EXPECT_EQ(b.blocks[static_cast<std::size_t>(l)].num_dst(),
              b.nodes[static_cast<std::size_t>(l) + 1].size());
  }
}

TEST(Sage, NodeListsAreDeduplicated) {
  const data::Dataset ds = easy_dataset();
  SageConfig cfg;
  cfg.num_layers = 2;
  cfg.fanout = 8;
  GraphSageTrainer trainer(ds, cfg);
  util::Xoshiro256 rng(6);
  const SageBatch b = trainer.sample_batch({1, 2, 3, 4, 5, 6, 7, 8}, rng);
  for (const auto& layer : b.nodes) {
    std::set<graph::Vid> s(layer.begin(), layer.end());
    EXPECT_EQ(s.size(), layer.size());
  }
}

TEST(Sage, NeighborExplosionGrowsWithDepth) {
  // The core phenomenon of Section III-B: support size grows ~ fanout^L.
  const data::Dataset ds = easy_dataset();
  util::Xoshiro256 rng(7);
  std::vector<std::size_t> support;
  for (const int layers : {1, 2, 3}) {
    SageConfig cfg;
    cfg.num_layers = layers;
    cfg.fanout = 5;
    GraphSageTrainer trainer(ds, cfg);
    const SageBatch b = trainer.sample_batch({0, 1, 2, 3}, rng);
    support.push_back(b.nodes[0].size());
  }
  EXPECT_GT(support[1], 2 * support[0] / 2);  // strictly growing …
  EXPECT_GT(support[2], support[1]);
  EXPECT_GT(support[2], 3 * support[0]);      // … and super-linearly
}

TEST(Sage, TrainStepReducesLossOverIterations) {
  const data::Dataset ds = easy_dataset();
  SageConfig cfg;
  cfg.epochs = 3;
  cfg.batch_size = 128;
  cfg.fanout = 5;
  cfg.seed = 2;
  GraphSageTrainer trainer(ds, cfg);
  const gcn::TrainResult r = trainer.train();
  ASSERT_GE(r.history.size(), 2u);
  EXPECT_LT(r.history.back().train_loss, r.history.front().train_loss);
  EXPECT_GT(r.final_val_f1, 0.5);
}

TEST(FastGcn, ImportanceDistributionNormalized) {
  const data::Dataset ds = easy_dataset();
  FastGcnConfig cfg;
  FastGcnTrainer trainer(ds, cfg);
  double total = 0.0;
  for (const double q : trainer.importance()) {
    EXPECT_GE(q, 0.0);
    total += q;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(FastGcn, EstimatorIsUnbiased) {
  // E[block.forward] over samples must equal the exact mean aggregation.
  const data::Dataset ds = easy_dataset(33);
  FastGcnConfig cfg;
  cfg.num_layers = 1;
  cfg.layer_samples = 64;
  FastGcnTrainer trainer(ds, cfg);

  // Exact mean aggregation on the training graph for the probe vertices.
  graph::Inducer inducer(ds.graph);
  auto sub = inducer.induce(ds.train_vertices, 1);
  const graph::CsrGraph& tg = sub.graph;
  Matrix feats(sub.orig_ids.size(), ds.feature_dim());
  tensor::gather_rows(ds.features, sub.orig_ids, feats);

  const std::vector<graph::Vid> probe = {0, 1, 2, 3, 4, 5, 6, 7};
  Matrix exact(probe.size(), ds.feature_dim());
  for (std::size_t i = 0; i < probe.size(); ++i) {
    const auto nbrs = tg.neighbors(probe[i]);
    for (std::size_t j = 0; j < ds.feature_dim(); ++j) {
      double s = 0.0;
      for (const graph::Vid u : nbrs) s += feats(u, j);
      exact(i, j) = nbrs.empty()
                        ? 0.0f
                        : static_cast<float>(s / static_cast<double>(nbrs.size()));
    }
  }

  // Average the sampled estimator over many draws.
  util::Xoshiro256 rng(9);
  Matrix mean_est(probe.size(), ds.feature_dim());
  const int draws = 300;
  for (int t = 0; t < draws; ++t) {
    const FastGcnBatch b = trainer.sample_batch(probe, rng);
    Matrix in(b.nodes[0].size(), ds.feature_dim());
    tensor::gather_rows(feats, b.nodes[0], in);
    Matrix out(probe.size(), ds.feature_dim());
    b.blocks[0].forward(in, out);
    tensor::add_scaled(mean_est, out, 1.0f);
  }
  tensor::scale_inplace(mean_est, 1.0f / draws);
  // Monte-Carlo tolerance: generous but catches systematic bias.
  EXPECT_LT(Matrix::max_abs_diff(mean_est, exact), 0.12f);
}

TEST(FastGcn, Trains) {
  const data::Dataset ds = easy_dataset();
  FastGcnConfig cfg;
  cfg.epochs = 3;
  cfg.batch_size = 128;
  cfg.layer_samples = 192;
  FastGcnTrainer trainer(ds, cfg);
  const gcn::TrainResult r = trainer.train();
  EXPECT_LT(r.history.back().train_loss, r.history.front().train_loss);
  EXPECT_GT(r.final_val_f1, 0.4);
}

TEST(FullBatch, Trains) {
  const data::Dataset ds = easy_dataset();
  FullBatchConfig cfg;
  cfg.epochs = 25;
  FullBatchTrainer trainer(ds, cfg);
  const gcn::TrainResult r = trainer.train();
  EXPECT_LT(r.history.back().train_loss, r.history.front().train_loss);
  EXPECT_GT(r.final_val_f1, 0.5);
  EXPECT_EQ(r.iterations, 25);
}

TEST(Baselines, RejectBadConfigs) {
  const data::Dataset ds = easy_dataset();
  SageConfig sc;
  sc.fanout = 0;
  EXPECT_THROW(GraphSageTrainer(ds, sc), std::invalid_argument);
  FastGcnConfig fc;
  fc.layer_samples = 0;
  EXPECT_THROW(FastGcnTrainer(ds, fc), std::invalid_argument);
}

}  // namespace
}  // namespace gsgcn::baselines

// GraphConvLayer tests: shape bookkeeping, hand-checkable forward on a
// tiny graph, and full gradient checks (weights and inputs) against
// central differences, with and without ReLU.

#include <gtest/gtest.h>

#include "gcn/layer.hpp"
#include "propagation/spmm.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "test_helpers.hpp"

namespace gsgcn::gcn {
namespace {

using graph::CsrGraph;
using tensor::Matrix;

TEST(Layer, OutputShape) {
  util::Xoshiro256 rng(1);
  GraphConvLayer layer(8, 5, true, rng);
  EXPECT_EQ(layer.in_dim(), 8u);
  EXPECT_EQ(layer.out_dim(), 5u);
  EXPECT_EQ(layer.output_width(), 10u);
  const CsrGraph g = gsgcn::testing::tiny_graph();
  const Matrix x = Matrix::gaussian(5, 8, 1.0f, rng);
  const Matrix& y = layer.forward(g, x, 1);
  EXPECT_EQ(y.rows(), 5u);
  EXPECT_EQ(y.cols(), 10u);
}

TEST(Layer, RejectsBadInputShape) {
  util::Xoshiro256 rng(2);
  GraphConvLayer layer(8, 5, true, rng);
  const CsrGraph g = gsgcn::testing::tiny_graph();
  const Matrix x(5, 7);  // wrong feature dim
  EXPECT_THROW(layer.forward(g, x, 1), std::invalid_argument);
  const Matrix x2(4, 8);  // wrong vertex count
  EXPECT_THROW(layer.forward(g, x2, 1), std::invalid_argument);
}

TEST(Layer, BackwardBeforeForwardThrows) {
  util::Xoshiro256 rng(3);
  GraphConvLayer layer(4, 3, true, rng);
  const CsrGraph g = gsgcn::testing::tiny_graph();
  const Matrix d(5, 6);
  EXPECT_THROW(layer.backward(g, d, 1), std::logic_error);
}

TEST(Layer, ForwardMatchesManualComposition) {
  // Recompute H_out = relu([X·Ws | (A X)·Wn]) with raw kernels.
  util::Xoshiro256 rng(4);
  GraphConvLayer layer(6, 4, true, rng);
  const CsrGraph g = gsgcn::testing::small_er(40, 150, 5);
  const Matrix x = Matrix::gaussian(40, 6, 1.0f, rng);
  const Matrix& out = layer.forward(g, x, 1);

  Matrix agg(40, 6);
  propagation::aggregate_mean_forward(g, x, agg);
  Matrix self(40, 4), neigh(40, 4), cat(40, 8), expect(40, 8);
  tensor::gemm_nn(x, layer.w_self(), self);
  tensor::gemm_nn(agg, layer.w_neigh(), neigh);
  tensor::concat_cols(self, neigh, cat);
  tensor::relu_forward(cat, expect);
  EXPECT_LT(Matrix::max_abs_diff(out, expect), 1e-5f);
}

// Shared gradcheck harness: scalar loss = <H_out, R> for fixed random R.
struct LayerGradFixture {
  CsrGraph g = gsgcn::testing::small_er(25, 90, 6);
  util::Xoshiro256 rng{7};
  GraphConvLayer layer;
  Matrix x;
  Matrix r;  // fixed projection

  explicit LayerGradFixture(bool relu)
      : layer(5, 3, relu, rng),
        x(Matrix::gaussian(25, 5, 1.0f, rng)),
        r(Matrix::gaussian(25, 6, 1.0f, rng)) {}

  double loss() {
    const Matrix& out = layer.forward(g, x, 1);
    double s = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      s += static_cast<double>(out.data()[i]) * r.data()[i];
    }
    return s;
  }

  void run_backward() {
    (void)loss();
    (void)layer.backward(g, r, 1);
  }
};

TEST(LayerGrad, WSelfNoRelu) {
  LayerGradFixture fx(false);
  fx.run_backward();
  Matrix analytic = fx.layer.grad_w_self();
  gsgcn::testing::check_gradient(fx.layer.w_self(), analytic,
                                 [&] { return fx.loss(); }, 24, 1e-3f, 6e-2);
}

TEST(LayerGrad, WNeighNoRelu) {
  LayerGradFixture fx(false);
  fx.run_backward();
  Matrix analytic = fx.layer.grad_w_neigh();
  gsgcn::testing::check_gradient(fx.layer.w_neigh(), analytic,
                                 [&] { return fx.loss(); }, 24, 1e-3f, 6e-2);
}

TEST(LayerGrad, WSelfWithRelu) {
  LayerGradFixture fx(true);
  fx.run_backward();
  Matrix analytic = fx.layer.grad_w_self();
  gsgcn::testing::check_gradient(fx.layer.w_self(), analytic,
                                 [&] { return fx.loss(); }, 24, 1e-3f, 6e-2);
}

TEST(LayerGrad, WNeighWithRelu) {
  LayerGradFixture fx(true);
  fx.run_backward();
  Matrix analytic = fx.layer.grad_w_neigh();
  gsgcn::testing::check_gradient(fx.layer.w_neigh(), analytic,
                                 [&] { return fx.loss(); }, 24, 1e-3f, 6e-2);
}

TEST(LayerGrad, InputGradient) {
  LayerGradFixture fx(true);
  (void)fx.loss();
  Matrix analytic = fx.layer.backward(fx.g, fx.r, 1);
  gsgcn::testing::check_gradient(fx.x, analytic, [&] { return fx.loss(); },
                                 24, 1e-3f, 6e-2);
}

TEST(LayerGrad, InputGradientNoRelu) {
  LayerGradFixture fx(false);
  (void)fx.loss();
  Matrix analytic = fx.layer.backward(fx.g, fx.r, 1);
  gsgcn::testing::check_gradient(fx.x, analytic, [&] { return fx.loss(); },
                                 24, 1e-3f, 6e-2);
}

class LayerAggregatorSweep
    : public ::testing::TestWithParam<propagation::AggregatorKind> {};

TEST_P(LayerAggregatorSweep, GradientsCheckOut) {
  // Same fixture as LayerGradFixture but with a non-default aggregator.
  // No ReLU: sum aggregation inflates activations, which widens the ReLU
  // kink window beyond what central differences tolerate; the ReLU
  // gradient itself is covered by the mean-aggregator tests above.
  const CsrGraph g = gsgcn::testing::small_er(25, 90, 41);
  util::Xoshiro256 rng(42);
  GraphConvLayer layer(5, 3, /*relu=*/false, rng, GetParam());
  const Matrix x = Matrix::gaussian(25, 5, 1.0f, rng);
  const Matrix r = Matrix::gaussian(25, 6, 1.0f, rng);
  auto loss = [&] {
    const Matrix& out = layer.forward(g, x, 1);
    double s = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      s += static_cast<double>(out.data()[i]) * r.data()[i];
    }
    return s;
  };
  (void)loss();
  (void)layer.backward(g, r, 1);
  const Matrix analytic = layer.grad_w_neigh();
  gsgcn::testing::check_gradient(layer.w_neigh(), analytic, loss, 16, 1e-3f,
                                 6e-2);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, LayerAggregatorSweep,
    ::testing::Values(propagation::AggregatorKind::kSum,
                      propagation::AggregatorKind::kSymmetric),
    [](const ::testing::TestParamInfo<propagation::AggregatorKind>& info) {
      return std::string(propagation::aggregator_name(info.param));
    });

TEST(LayerDropout, RejectsBadRate) {
  util::Xoshiro256 rng(43);
  GraphConvLayer layer(4, 3, true, rng);
  EXPECT_THROW(layer.set_dropout(-0.1f), std::invalid_argument);
  EXPECT_THROW(layer.set_dropout(1.0f), std::invalid_argument);
}

TEST(LayerDropout, EvalPathUnaffected) {
  util::Xoshiro256 rng(44);
  GraphConvLayer with(6, 4, true, rng);
  util::Xoshiro256 rng2(44);
  GraphConvLayer without(6, 4, true, rng2);
  with.set_dropout(0.5f);
  const CsrGraph g = gsgcn::testing::small_er(30, 120, 45);
  const Matrix x = Matrix::gaussian(30, 6, 1.0f, rng);
  const Matrix& a = with.forward(g, x, 1, nullptr, /*training=*/false);
  const Matrix b = a;  // copy before the second layer reuses buffers
  const Matrix& c = without.forward(g, x, 1, nullptr, false);
  EXPECT_EQ(Matrix::max_abs_diff(b, c), 0.0f);
}

TEST(LayerDropout, TrainingPathZeroesInputs) {
  util::Xoshiro256 rng(46);
  GraphConvLayer layer(6, 4, false, rng);
  layer.set_dropout(0.5f);
  const CsrGraph g = gsgcn::testing::small_er(40, 160, 47);
  const Matrix x = Matrix::gaussian(40, 6, 1.0f, rng);
  const Matrix& train_out = layer.forward(g, x, 1, nullptr, true);
  const Matrix t = train_out;
  const Matrix& eval_out = layer.forward(g, x, 1, nullptr, false);
  // With dropout active the outputs must differ from the eval path.
  EXPECT_GT(Matrix::max_abs_diff(t, eval_out), 1e-3f);
}

TEST(LayerDropout, GradientMatchesMaskedForward) {
  // With the mask frozen (same forward reused), backward must still match
  // numerically — the mask is part of the cached forward state.
  util::Xoshiro256 rng(48);
  GraphConvLayer layer(5, 3, false, rng);
  layer.set_dropout(0.3f);
  const CsrGraph g = gsgcn::testing::small_er(20, 70, 49);
  const Matrix x = Matrix::gaussian(20, 5, 1.0f, rng);
  const Matrix r = Matrix::gaussian(20, 6, 1.0f, rng);
  (void)layer.forward(g, x, 1, nullptr, true);
  const Matrix& dx = layer.backward(g, r, 1);
  // Entries of dx where the mask dropped the input must be zero.
  int zeros = 0;
  for (std::size_t i = 0; i < dx.size(); ++i) zeros += dx.data()[i] == 0.0f;
  EXPECT_GT(zeros, 0);  // ~30% of 100 entries
}

TEST(LayerDropout, DeterministicAcrossThreadCounts) {
  // The dropout mask derives from one checkpointed RNG draw plus per-row
  // counter streams, so training forward/backward must be bit-identical
  // for every thread count — not merely statistically close.
  const CsrGraph g = gsgcn::testing::small_er(50, 200, 50);
  util::Xoshiro256 rng_x(51);
  const Matrix x = Matrix::gaussian(50, 6, 1.0f, rng_x);
  const Matrix r = Matrix::gaussian(50, 8, 1.0f, rng_x);

  auto run = [&](int threads, Matrix& out, Matrix& dx, Matrix& dws) {
    util::Xoshiro256 rng(52);  // identical weights + dropout RNG state
    GraphConvLayer layer(6, 4, true, rng);
    layer.set_dropout(0.4f);
    out = layer.forward(g, x, threads, nullptr, /*training=*/true);
    dx = layer.backward(g, r, threads);
    dws = layer.grad_w_self();
  };
  Matrix out1, dx1, dws1;
  run(1, out1, dx1, dws1);
  for (const int threads : {2, 4, 8}) {
    Matrix outp, dxp, dwsp;
    run(threads, outp, dxp, dwsp);
    ASSERT_EQ(Matrix::max_abs_diff(out1, outp), 0.0f) << "p=" << threads;
    ASSERT_EQ(Matrix::max_abs_diff(dx1, dxp), 0.0f) << "p=" << threads;
    ASSERT_EQ(Matrix::max_abs_diff(dws1, dwsp), 0.0f) << "p=" << threads;
  }
}

TEST(Layer, NoReluOutputAliasesFusedConcat) {
  // relu_=false must not copy: forward output is the GEMM destination
  // buffer itself, written via the two column-slice views.
  util::Xoshiro256 rng(53);
  GraphConvLayer layer(6, 4, false, rng);
  const CsrGraph g = gsgcn::testing::small_er(30, 120, 54);
  const Matrix x = Matrix::gaussian(30, 6, 1.0f, rng);
  const Matrix& out = layer.forward(g, x, 1);

  Matrix agg(30, 6);
  propagation::aggregate_mean_forward(g, x, agg);
  Matrix self(30, 4), neigh(30, 4), cat(30, 8);
  tensor::gemm_nn(x, layer.w_self(), self);
  tensor::gemm_nn(agg, layer.w_neigh(), neigh);
  tensor::concat_cols(self, neigh, cat);
  // Bit-for-bit: the strided-view writes follow the identical fp order.
  EXPECT_EQ(Matrix::max_abs_diff(out, cat), 0.0f);
}

TEST(Layer, MultithreadedMatchesSerial) {
  util::Xoshiro256 rng(8);
  GraphConvLayer l1(6, 4, true, rng);
  util::Xoshiro256 rng2(8);
  GraphConvLayer l2(6, 4, true, rng2);
  const CsrGraph g = gsgcn::testing::small_er(60, 250, 9);
  const Matrix x = Matrix::gaussian(60, 6, 1.0f, rng);
  const Matrix& y1 = l1.forward(g, x, 1);
  const Matrix& y4 = l2.forward(g, x, 4);
  EXPECT_LT(Matrix::max_abs_diff(y1, y4), 1e-5f);
  const Matrix d = Matrix::gaussian(60, 8, 1.0f, rng);
  const Matrix& dx1 = l1.backward(g, d, 1);
  const Matrix& dx4 = l2.backward(g, d, 4);
  EXPECT_LT(Matrix::max_abs_diff(dx1, dx4), 1e-5f);
  EXPECT_LT(Matrix::max_abs_diff(l1.grad_w_self(), l2.grad_w_self()), 1e-4f);
  EXPECT_LT(Matrix::max_abs_diff(l1.grad_w_neigh(), l2.grad_w_neigh()), 1e-4f);
}

TEST(Layer, PhaseClockAccumulates) {
  util::Xoshiro256 rng(10);
  GraphConvLayer layer(6, 4, true, rng);
  const CsrGraph g = gsgcn::testing::small_er(60, 250, 11);
  const Matrix x = Matrix::gaussian(60, 6, 1.0f, rng);
  PhaseClock clock;
  (void)layer.forward(g, x, 1, &clock);
  EXPECT_GT(clock.feature_prop.total_seconds(), 0.0);
  EXPECT_GT(clock.weight_apply.total_seconds(), 0.0);
  clock.reset();
  EXPECT_EQ(clock.feature_prop.total_seconds(), 0.0);
}

}  // namespace
}  // namespace gsgcn::gcn

// GraphSAINT-style normalization tests: inclusion-probability estimation,
// weight normalization, the unbiased-loss property, weighted losses, and
// the trainer integration.

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"
#include "gcn/loss.hpp"
#include "gcn/saint_norm.hpp"
#include "gcn/trainer.hpp"
#include "sampling/frontier_dashboard.hpp"
#include "sampling/samplers.hpp"
#include "test_helpers.hpp"

namespace gsgcn::gcn {
namespace {

using tensor::Matrix;

TEST(SaintNorm, RequiresEstimateBeforeWeights) {
  SaintNormalizer norm(10);
  EXPECT_FALSE(norm.estimated());
  EXPECT_THROW(norm.loss_weight(0), std::logic_error);
}

TEST(SaintNorm, RejectsBadInputs) {
  const graph::CsrGraph g = gsgcn::testing::small_er(100, 400, 1);
  sampling::UniformNodeSampler sampler(g, 20);
  util::Xoshiro256 rng(1);
  SaintNormalizer norm(100);
  EXPECT_THROW(norm.estimate(sampler, rng, 0), std::invalid_argument);
  norm.estimate(sampler, rng, 5);
  EXPECT_THROW(norm.loss_weight(100), std::out_of_range);
  EXPECT_THROW(norm.inclusion_probability(100), std::out_of_range);
}

TEST(SaintNorm, UniformSamplerGivesUniformWeights) {
  // Uniform-node sampling includes every vertex with equal probability,
  // so all weights converge to 1.
  const graph::CsrGraph g = gsgcn::testing::small_er(100, 400, 2);
  sampling::UniformNodeSampler sampler(g, 30);
  util::Xoshiro256 rng(2);
  SaintNormalizer norm(100);
  norm.estimate(sampler, rng, 400);
  for (graph::Vid v = 0; v < 100; ++v) {
    EXPECT_NEAR(norm.loss_weight(v), 1.0f, 0.35f) << "vertex " << v;
  }
}

TEST(SaintNorm, ProbabilitiesMatchEmpiricalFrequency) {
  const graph::CsrGraph g = gsgcn::testing::small_er(200, 1200, 3);
  sampling::FrontierParams p;
  p.frontier_size = 30;
  p.budget = 90;
  sampling::DashboardFrontierSampler sampler(g, p);
  util::Xoshiro256 rng(3);
  SaintNormalizer norm(200);
  norm.estimate(sampler, rng, 500);
  // Mean inclusion probability over vertices ≈ E[#unique]/|V|; bound it
  // loosely: unique per sample ≤ budget.
  double mean_p = 0.0;
  for (graph::Vid v = 0; v < 200; ++v) mean_p += norm.inclusion_probability(v);
  mean_p /= 200.0;
  EXPECT_GT(mean_p, 0.05);
  EXPECT_LT(mean_p, 90.0 / 200.0 + 0.05);
}

TEST(SaintNorm, HighDegreeVerticesGetSmallerWeights) {
  util::Xoshiro256 grng(4);
  const graph::CsrGraph g = graph::barabasi_albert(300, 2, grng);
  sampling::FrontierParams p;
  p.frontier_size = 30;
  p.budget = 90;
  sampling::DashboardFrontierSampler sampler(g, p);
  util::Xoshiro256 rng(4);
  SaintNormalizer norm(300);
  norm.estimate(sampler, rng, 400);
  graph::Vid hub = 0, leaf = 0;
  for (graph::Vid v = 1; v < 300; ++v) {
    if (g.degree(v) > g.degree(hub)) hub = v;
    if (g.degree(v) < g.degree(leaf)) leaf = v;
  }
  EXPECT_LT(norm.loss_weight(hub), norm.loss_weight(leaf));
}

TEST(SaintNorm, WeightedSumIsUnbiasedEstimatorOfFullSum) {
  // Property: for fixed per-vertex values ℓ_v, the weighted batch mean
  // E[(1/n_b)Σ_{v∈B} w_v ℓ_v] ≈ (1/|V|)Σ_v ℓ_v when w_v ∝ 1/p_v with
  // mean weight 1 and the batch size is roughly constant.
  // Degree-correlated values on a skewed graph: this is exactly where the
  // frontier sampler's degree bias distorts the raw estimate.
  util::Xoshiro256 grng(5);
  const graph::CsrGraph g = graph::barabasi_albert(200, 2, grng);
  sampling::FrontierParams p;
  p.frontier_size = 30;
  p.budget = 90;
  sampling::DashboardFrontierSampler sampler(g, p);
  util::Xoshiro256 rng(5);
  SaintNormalizer norm(200);
  norm.estimate(sampler, rng, 600);

  std::vector<double> values(200);
  double full_mean = 0.0;
  for (graph::Vid v = 0; v < 200; ++v) {
    values[v] = 1.0 / (1.0 + static_cast<double>(g.degree(v)));
    full_mean += values[v];
  }
  full_mean /= 200.0;

  // Horvitz–Thompson estimator per draw: (1/|V|) Σ_{v∈B} ℓ_v / p̂_v.
  // Raw comparator: the plain batch mean (1/|B|) Σ ℓ_v.
  double ht_sum = 0.0, raw_sum = 0.0;
  const int draws = 600;
  for (int t = 0; t < draws; ++t) {
    const auto batch = sampler.sample_vertices(rng);
    const std::set<graph::Vid> uniq(batch.begin(), batch.end());
    double ht = 0.0, raw = 0.0;
    for (const graph::Vid v : uniq) {
      ht += values[v] / norm.inclusion_probability(v);
      raw += values[v];
    }
    ht_sum += ht / 200.0;
    raw_sum += raw / static_cast<double>(uniq.size());
  }
  const double ht_mean = ht_sum / draws;
  const double raw_mean = raw_sum / draws;
  // The raw estimate is visibly biased (hubs over-sampled, and hubs carry
  // the smallest values); Horvitz–Thompson must correct most of it.
  EXPECT_GT(std::abs(raw_mean - full_mean), 0.01);
  EXPECT_LT(std::abs(ht_mean - full_mean),
            0.4 * std::abs(raw_mean - full_mean));
}

TEST(WeightedLoss, UnitWeightsMatchUnweighted) {
  util::Xoshiro256 rng(7);
  const Matrix z = Matrix::gaussian(6, 4, 1.0f, rng);
  Matrix y(6, 4);
  for (std::size_t i = 0; i < 6; ++i) y(i, rng.below(4)) = 1.0f;
  const std::vector<float> ones(6, 1.0f);
  Matrix dz1(6, 4), dz2(6, 4);
  const float a = softmax_ce_loss(z, y, dz1);
  const float b = softmax_ce_loss_weighted(z, y, ones, dz2);
  EXPECT_NEAR(a, b, 1e-6);
  EXPECT_LT(Matrix::max_abs_diff(dz1, dz2), 1e-7f);

  const float c = sigmoid_bce_loss(z, y, dz1);
  const float d = sigmoid_bce_loss_weighted(z, y, ones, dz2);
  EXPECT_NEAR(c, d, 1e-6);
  EXPECT_LT(Matrix::max_abs_diff(dz1, dz2), 1e-7f);
}

TEST(WeightedLoss, WeightsScaleRows) {
  Matrix z(2, 2), y(2, 2), dz(2, 2);
  y(0, 0) = y(1, 1) = 1.0f;
  const std::vector<float> w = {2.0f, 0.0f};  // second row muted
  sigmoid_bce_loss_weighted(z, y, w, dz);
  EXPECT_NE(dz(0, 0), 0.0f);
  EXPECT_EQ(dz(1, 0), 0.0f);
  EXPECT_EQ(dz(1, 1), 0.0f);
}

TEST(WeightedLoss, GradientMatchesNumeric) {
  util::Xoshiro256 rng(8);
  Matrix z = Matrix::gaussian(5, 3, 1.0f, rng);
  Matrix y(5, 3);
  for (std::size_t i = 0; i < 5; ++i) y(i, rng.below(3)) = 1.0f;
  std::vector<float> w = {0.5f, 2.0f, 1.0f, 0.1f, 3.0f};
  Matrix dz(5, 3);
  softmax_ce_loss_weighted(z, y, w, dz);
  Matrix scratch(5, 3);
  gsgcn::testing::check_gradient(
      z, dz, [&] { return softmax_ce_loss_weighted(z, y, w, scratch); }, 15,
      1e-2f, 1e-2, 1e-5);
}

TEST(WeightedLoss, LengthMismatchThrows) {
  Matrix z(3, 2), y(3, 2), dz(3, 2);
  y(0, 0) = y(1, 0) = y(2, 0) = 1.0f;
  const std::vector<float> w = {1.0f};
  EXPECT_THROW(softmax_ce_loss_weighted(z, y, w, dz), std::invalid_argument);
  EXPECT_THROW(sigmoid_bce_loss_weighted(z, y, w, dz), std::invalid_argument);
}

TEST(SaintTrainer, TrainsWithNormalizationOn) {
  data::SyntheticParams p;
  p.num_vertices = 800;
  p.num_classes = 4;
  p.feature_dim = 24;
  p.avg_degree = 12.0;
  p.homophily = 20.0;
  p.feature_signal = 1.5;
  p.mode = data::LabelMode::kSingle;
  p.seed = 9;
  const data::Dataset ds = data::make_synthetic(p);

  TrainerConfig cfg;
  cfg.hidden_dim = 16;
  cfg.epochs = 8;
  cfg.frontier_size = 40;
  cfg.budget = 160;
  cfg.seed = 3;
  cfg.saint_loss_norm = true;
  cfg.saint_presamples = 32;
  Trainer trainer(ds, cfg);
  const TrainResult r = trainer.train();
  EXPECT_GT(r.final_val_f1, 0.6);
  EXPECT_LT(r.history.back().train_loss, r.history.front().train_loss);
}

}  // namespace
}  // namespace gsgcn::gcn

// SubgraphPool (Algorithm 5 scheduler) tests: refill semantics, subgraph
// validity, reproducibility across p_inter, timing accounting.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "sampling/frontier_dashboard.hpp"
#include "sampling/pool.hpp"
#include "test_helpers.hpp"

namespace gsgcn::sampling {
namespace {

using graph::CsrGraph;
using graph::Vid;

SamplerFactory dashboard_factory(const CsrGraph& g) {
  return [&g](int /*instance*/) -> std::unique_ptr<VertexSampler> {
    FrontierParams p;
    p.frontier_size = 15;
    p.budget = 60;
    return std::make_unique<DashboardFrontierSampler>(g, p);
  };
}

TEST(SubgraphPool, PopRefillsWhenEmpty) {
  const CsrGraph g = gsgcn::testing::small_er();
  SubgraphPool pool(g, dashboard_factory(g), 3, 42);
  EXPECT_EQ(pool.available(), 0u);
  const auto sub = pool.pop();
  EXPECT_GT(sub.num_vertices(), 0u);
  EXPECT_EQ(pool.available(), 2u);  // p_inter − 1 left
  (void)pool.pop();
  (void)pool.pop();
  EXPECT_EQ(pool.available(), 0u);
  (void)pool.pop();  // triggers second refill
  EXPECT_EQ(pool.available(), 2u);
}

TEST(SubgraphPool, RejectsNonPositivePInter) {
  const CsrGraph g = gsgcn::testing::small_er();
  EXPECT_THROW(SubgraphPool(g, dashboard_factory(g), 0, 1),
               std::invalid_argument);
}

TEST(SubgraphPool, SubgraphsAreValidInducedGraphs) {
  const CsrGraph g = gsgcn::testing::small_er();
  SubgraphPool pool(g, dashboard_factory(g), 4, 7);
  for (int i = 0; i < 8; ++i) {
    const auto sub = pool.pop();
    EXPECT_TRUE(sub.graph.validate().empty()) << sub.graph.validate();
    EXPECT_EQ(sub.orig_ids.size(), sub.num_vertices());
    std::set<Vid> distinct(sub.orig_ids.begin(), sub.orig_ids.end());
    EXPECT_EQ(distinct.size(), sub.orig_ids.size());
    for (const Vid v : sub.orig_ids) EXPECT_LT(v, g.num_vertices());
  }
}

TEST(SubgraphPool, DistinctInstancesProduceDistinctSubgraphs) {
  const CsrGraph g = gsgcn::testing::small_er();
  SubgraphPool pool(g, dashboard_factory(g), 4, 11);
  const auto a = pool.pop();
  const auto b = pool.pop();
  EXPECT_NE(a.orig_ids, b.orig_ids);
}

TEST(SubgraphPool, ReproducibleForFixedSeed) {
  const CsrGraph g = gsgcn::testing::small_er();
  SubgraphPool p1(g, dashboard_factory(g), 3, 123);
  SubgraphPool p2(g, dashboard_factory(g), 3, 123);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(p1.pop().orig_ids, p2.pop().orig_ids);
  }
}

TEST(SubgraphPool, DifferentSeedsDiffer) {
  const CsrGraph g = gsgcn::testing::small_er();
  SubgraphPool p1(g, dashboard_factory(g), 2, 1);
  SubgraphPool p2(g, dashboard_factory(g), 2, 2);
  EXPECT_NE(p1.pop().orig_ids, p2.pop().orig_ids);
}

TEST(SubgraphPool, UnpinnedModeMatchesPinned) {
  // Pinning must not change results (it only affects placement).
  const CsrGraph g = gsgcn::testing::small_er();
  SubgraphPool pinned(g, dashboard_factory(g), 2, 77, /*pin_threads=*/true);
  SubgraphPool loose(g, dashboard_factory(g), 2, 77, /*pin_threads=*/false);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(pinned.pop().orig_ids, loose.pop().orig_ids);
  }
}

TEST(SubgraphPool, PoppedSequenceIdenticalAcrossPInter) {
  // The determinism contract (pool.hpp): the k-th popped subgraph is
  // drawn from RNG stream (seed, k) where k is a global slot counter, and
  // pops are FIFO — so the popped *sequence* is a pure function of the
  // seed, independent of how many sampler instances run concurrently.
  const CsrGraph g = gsgcn::testing::small_er();
  constexpr std::uint64_t kSeed = 2024;
  constexpr int kPops = 8;  // spans two refills for every p_inter below

  std::vector<std::vector<Vid>> reference;
  {
    SubgraphPool pool(g, dashboard_factory(g), 1, kSeed);
    for (int i = 0; i < kPops; ++i) reference.push_back(pool.pop().orig_ids);
  }
  for (const int p_inter : {2, 4}) {
    SubgraphPool pool(g, dashboard_factory(g), p_inter, kSeed);
    for (int i = 0; i < kPops; ++i) {
      EXPECT_EQ(pool.pop().orig_ids, reference[static_cast<std::size_t>(i)])
          << "pop " << i << " diverged at p_inter=" << p_inter;
    }
  }
}

TEST(SubgraphPool, SamplingTimerAccumulates) {
  const CsrGraph g = gsgcn::testing::small_er();
  SubgraphPool pool(g, dashboard_factory(g), 2, 5);
  (void)pool.pop();
  EXPECT_GT(pool.sampling_seconds(), 0.0);
  const double t1 = pool.sampling_seconds();
  (void)pool.pop();  // served from queue: no extra sampling time
  EXPECT_EQ(pool.sampling_seconds(), t1);
  pool.reset_timer();
  EXPECT_EQ(pool.sampling_seconds(), 0.0);
}

}  // namespace
}  // namespace gsgcn::sampling

// SubgraphPool (Algorithm 5 scheduler) tests: refill semantics, subgraph
// validity, reproducibility across p_inter, timing accounting.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "sampling/frontier_dashboard.hpp"
#include "sampling/pool.hpp"
#include "test_helpers.hpp"
#include "util/parallel.hpp"

namespace gsgcn::sampling {
namespace {

using graph::CsrGraph;
using graph::Vid;

SamplerFactory dashboard_factory(const CsrGraph& g) {
  return [&g](int /*instance*/) -> std::unique_ptr<VertexSampler> {
    FrontierParams p;
    p.frontier_size = 15;
    p.budget = 60;
    return std::make_unique<DashboardFrontierSampler>(g, p);
  };
}

TEST(SubgraphPool, PopRefillsWhenEmpty) {
  const CsrGraph g = gsgcn::testing::small_er();
  SubgraphPool pool(g, dashboard_factory(g), 3, 42);
  EXPECT_EQ(pool.available(), 0u);
  const auto sub = pool.pop();
  EXPECT_GT(sub.num_vertices(), 0u);
  EXPECT_EQ(pool.available(), 2u);  // p_inter − 1 left
  (void)pool.pop();
  (void)pool.pop();
  EXPECT_EQ(pool.available(), 0u);
  (void)pool.pop();  // triggers second refill
  EXPECT_EQ(pool.available(), 2u);
}

TEST(SubgraphPool, RejectsNonPositivePInter) {
  const CsrGraph g = gsgcn::testing::small_er();
  EXPECT_THROW(SubgraphPool(g, dashboard_factory(g), 0, 1),
               std::invalid_argument);
}

TEST(SubgraphPool, SubgraphsAreValidInducedGraphs) {
  const CsrGraph g = gsgcn::testing::small_er();
  SubgraphPool pool(g, dashboard_factory(g), 4, 7);
  for (int i = 0; i < 8; ++i) {
    const auto sub = pool.pop();
    EXPECT_TRUE(sub.graph.validate().empty()) << sub.graph.validate();
    EXPECT_EQ(sub.orig_ids.size(), sub.num_vertices());
    std::set<Vid> distinct(sub.orig_ids.begin(), sub.orig_ids.end());
    EXPECT_EQ(distinct.size(), sub.orig_ids.size());
    for (const Vid v : sub.orig_ids) EXPECT_LT(v, g.num_vertices());
  }
}

TEST(SubgraphPool, DistinctInstancesProduceDistinctSubgraphs) {
  const CsrGraph g = gsgcn::testing::small_er();
  SubgraphPool pool(g, dashboard_factory(g), 4, 11);
  const auto a = pool.pop();
  const auto b = pool.pop();
  EXPECT_NE(a.orig_ids, b.orig_ids);
}

TEST(SubgraphPool, ReproducibleForFixedSeed) {
  const CsrGraph g = gsgcn::testing::small_er();
  SubgraphPool p1(g, dashboard_factory(g), 3, 123);
  SubgraphPool p2(g, dashboard_factory(g), 3, 123);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(p1.pop().orig_ids, p2.pop().orig_ids);
  }
}

TEST(SubgraphPool, DifferentSeedsDiffer) {
  const CsrGraph g = gsgcn::testing::small_er();
  SubgraphPool p1(g, dashboard_factory(g), 2, 1);
  SubgraphPool p2(g, dashboard_factory(g), 2, 2);
  EXPECT_NE(p1.pop().orig_ids, p2.pop().orig_ids);
}

TEST(SubgraphPool, UnpinnedModeMatchesPinned) {
  // Pinning must not change results (it only affects placement).
  const CsrGraph g = gsgcn::testing::small_er();
  SubgraphPool pinned(g, dashboard_factory(g), 2, 77, /*pin_threads=*/true);
  SubgraphPool loose(g, dashboard_factory(g), 2, 77, /*pin_threads=*/false);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(pinned.pop().orig_ids, loose.pop().orig_ids);
  }
}

TEST(SubgraphPool, PoppedSequenceIdenticalAcrossPInter) {
  // The determinism contract (pool.hpp): the k-th popped subgraph is
  // drawn from RNG stream (seed, k) where k is a global slot counter, and
  // pops are FIFO — so the popped *sequence* is a pure function of the
  // seed, independent of how many sampler instances run concurrently.
  const CsrGraph g = gsgcn::testing::small_er();
  constexpr std::uint64_t kSeed = 2024;
  constexpr int kPops = 8;  // spans two refills for every p_inter below

  std::vector<std::vector<Vid>> reference;
  {
    SubgraphPool pool(g, dashboard_factory(g), 1, kSeed);
    for (int i = 0; i < kPops; ++i) reference.push_back(pool.pop().orig_ids);
  }
  for (const int p_inter : {2, 4}) {
    SubgraphPool pool(g, dashboard_factory(g), p_inter, kSeed);
    for (int i = 0; i < kPops; ++i) {
      EXPECT_EQ(pool.pop().orig_ids, reference[static_cast<std::size_t>(i)])
          << "pop " << i << " diverged at p_inter=" << p_inter;
    }
  }
}

TEST(SubgraphPool, SamplingTimerAccumulates) {
  const CsrGraph g = gsgcn::testing::small_er();
  SubgraphPool pool(g, dashboard_factory(g), 2, 5);
  (void)pool.pop();
  EXPECT_GT(pool.sampling_seconds(), 0.0);
  EXPECT_GT(pool.pop_wait_seconds(), 0.0);  // the inline refill is a wait
  const double t1 = pool.sampling_seconds();
  (void)pool.pop();  // served from queue: no extra sampling time
  EXPECT_EQ(pool.sampling_seconds(), t1);
  pool.reset_accounting();
  EXPECT_EQ(pool.sampling_seconds(), 0.0);
  EXPECT_EQ(pool.pop_wait_seconds(), 0.0);
}

TEST(SubgraphPool, FirstFillIsColdStartNotStall) {
  const CsrGraph g = gsgcn::testing::small_er();
  SubgraphPool pool(g, dashboard_factory(g), 2, 5);
  EXPECT_EQ(pool.cold_starts(), 0u);
  (void)pool.pop();  // first fill of an empty pool: cold start
  EXPECT_EQ(pool.cold_starts(), 1u);
  EXPECT_EQ(pool.stalls(), 0u);
  (void)pool.pop();  // served from queue
  EXPECT_EQ(pool.stalls(), 0u);
  (void)pool.pop();  // queue dry again: genuine starvation
  EXPECT_EQ(pool.stalls(), 1u);
  EXPECT_EQ(pool.cold_starts(), 1u);
}

TEST(SubgraphPool, PrefillAbsorbsTheColdStart) {
  const CsrGraph g = gsgcn::testing::small_er();
  SubgraphPool pool(g, dashboard_factory(g), 3, 5);
  pool.prefill();
  EXPECT_EQ(pool.available(), 3u);
  EXPECT_EQ(pool.cold_starts(), 1u);
  pool.prefill();  // idempotent while stocked
  EXPECT_EQ(pool.cold_starts(), 1u);
  for (int i = 0; i < 3; ++i) (void)pool.pop();
  EXPECT_EQ(pool.stalls(), 0u);  // every pop was served from the queue
}

PoolOptions async_options(int p_inter, std::uint64_t seed,
                          std::size_t capacity = 0) {
  PoolOptions o;
  o.p_inter = p_inter;
  o.seed = seed;
  o.async = true;
  o.capacity = capacity;
  return o;
}

TEST(SubgraphPoolAsync, MatchesSyncSequenceByteForByte) {
  // The determinism contract extends across modes: slot-derived RNG
  // streams plus FIFO pops mean the async pipeline must yield exactly
  // the sequence a synchronous pool yields, for every p_inter and
  // capacity configuration.
  const CsrGraph g = gsgcn::testing::small_er();
  constexpr std::uint64_t kSeed = 99;
  constexpr int kPops = 12;

  std::vector<std::vector<Vid>> reference;
  {
    SubgraphPool pool(g, dashboard_factory(g), 1, kSeed);
    for (int i = 0; i < kPops; ++i) reference.push_back(pool.pop().orig_ids);
  }
  for (const int p_inter : {1, 2, 4}) {
    for (const std::size_t capacity :
         {std::size_t{0}, static_cast<std::size_t>(p_inter),
          static_cast<std::size_t>(4 * p_inter)}) {
      SubgraphPool pool(g, dashboard_factory(g),
                        async_options(p_inter, kSeed, capacity));
      for (int i = 0; i < kPops; ++i) {
        EXPECT_EQ(pool.pop().orig_ids, reference[static_cast<std::size_t>(i)])
            << "pop " << i << " diverged at p_inter=" << p_inter
            << " capacity=" << capacity;
      }
    }
  }
}

TEST(SubgraphPoolAsync, CapacityIsRespected) {
  const CsrGraph g = gsgcn::testing::small_er();
  SubgraphPool pool(g, dashboard_factory(g), async_options(2, 7, 4));
  EXPECT_EQ(pool.capacity(), 4u);
  pool.prefill();
  for (int i = 0; i < 32; ++i) {
    // The producer only launches a batch while size + p_inter <= capacity,
    // so the queue never exceeds the bound (the pop below happens-after
    // any push that could have filled it).
    EXPECT_LE(pool.available(), 4u);
    (void)pool.pop();
  }
}

TEST(SubgraphPoolAsync, ProducerConsumerStress) {
  // Tight loop with a small capacity so producer and consumer contend on
  // the queue constantly; runs under the TSan ctest label (concurrency).
  const CsrGraph g = gsgcn::testing::small_er();
  SubgraphPool pool(g, dashboard_factory(g), async_options(4, 31, 4));
  for (int i = 0; i < 64; ++i) {
    const auto sub = pool.pop();
    EXPECT_GT(sub.num_vertices(), 0u);
    EXPECT_TRUE(sub.graph.validate().empty()) << sub.graph.validate();
  }
  EXPECT_GE(pool.sampling_seconds(), 0.0);
}

TEST(SubgraphPoolAsync, ShutdownWhileFull) {
  // Destroying a pool whose producer is parked on a full queue must not
  // hang or leak the thread; same for immediate destruction mid-batch.
  const CsrGraph g = gsgcn::testing::small_er();
  {
    SubgraphPool pool(g, dashboard_factory(g), async_options(2, 13, 2));
    pool.prefill();  // queue full; producer blocked on space
  }
  {
    SubgraphPool pool(g, dashboard_factory(g), async_options(4, 13));
    // destroyed immediately, likely mid-batch
  }
}

TEST(SubgraphPoolAsync, StopDrainsAndSyncPopsContinueTheSequence) {
  const CsrGraph g = gsgcn::testing::small_er();
  constexpr std::uint64_t kSeed = 321;
  constexpr int kPops = 8;
  std::vector<std::vector<Vid>> reference;
  {
    SubgraphPool pool(g, dashboard_factory(g), 2, kSeed);
    for (int i = 0; i < kPops; ++i) reference.push_back(pool.pop().orig_ids);
  }
  SubgraphPool pool(g, dashboard_factory(g), async_options(2, kSeed));
  for (int i = 0; i < kPops / 2; ++i) {
    EXPECT_EQ(pool.pop().orig_ids, reference[static_cast<std::size_t>(i)]);
  }
  pool.stop_async();
  EXPECT_FALSE(pool.async_running());
  // Queued subgraphs drain first, then inline refills continue the slot
  // sequence with no holes.
  for (int i = kPops / 2; i < kPops; ++i) {
    EXPECT_EQ(pool.pop().orig_ids, reference[static_cast<std::size_t>(i)])
        << "pop " << i << " diverged after stop_async";
  }
}

TEST(SubgraphPoolAsync, RestartAfterStopResumesProduction) {
  const CsrGraph g = gsgcn::testing::small_er();
  SubgraphPool pool(g, dashboard_factory(g), async_options(2, 17));
  (void)pool.pop();
  pool.stop_async();
  pool.start_async();
  EXPECT_TRUE(pool.async_running());
  for (int i = 0; i < 6; ++i) {
    EXPECT_GT(pool.pop().num_vertices(), 0u);
  }
}

TEST(SubgraphPoolAsync, ConcurrentLifecycleCallsDoNotRace) {
  // Regression (thread-safety annotation sweep): start_async/stop_async
  // used to read, join, and reassign the producer std::thread handle
  // with no lock ordering them against each other, so two threads in the
  // lifecycle path could both join the same handle (UB) or leak a
  // producer. The handle is now serialized by lifecycle_mu_; hammer the
  // lifecycle from several threads while a consumer keeps popping. Runs
  // under the TSan ctest label (concurrency).
  const CsrGraph g = gsgcn::testing::small_er();
  SubgraphPool pool(g, dashboard_factory(g), async_options(2, 57, 4));
  util::parallel_region(4, [&](int tid, int /*nthreads*/) {
    for (int iter = 0; iter < 8; ++iter) {
      if (tid == 0) {
        EXPECT_GT(pool.pop().num_vertices(), 0u);
      } else if (tid % 2 == 1) {
        pool.start_async();
      } else {
        pool.stop_async();
      }
    }
  });
  pool.stop_async();
  EXPECT_FALSE(pool.async_running());
  // The pool must come out of the churn fully functional and still on
  // its determinism contract: seeking back to slot 0 replays the exact
  // sequence a fresh synchronous pool produces.
  std::vector<std::vector<Vid>> reference;
  {
    SubgraphPool fresh(g, dashboard_factory(g), 1, 57);
    for (int i = 0; i < 4; ++i) reference.push_back(fresh.pop().orig_ids);
  }
  pool.seek(0);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(pool.pop().orig_ids, reference[static_cast<std::size_t>(i)])
        << "pop " << i << " diverged after lifecycle churn + seek(0)";
  }
}

/// Sampler whose instance 0 throws on its second draw — exercises the
/// producer-side exception path.
class ThrowingSampler : public VertexSampler {
 public:
  ThrowingSampler(const CsrGraph& g, int instance)
      : inner_(g, params()), instance_(instance) {}

  std::vector<Vid> sample_vertices(util::Xoshiro256& rng) override {
    if (instance_ == 0 && ++calls_ >= 2) {
      throw std::runtime_error("sampler exploded");
    }
    return inner_.sample_vertices(rng);
  }

  std::string name() const override { return "throwing"; }

 private:
  static FrontierParams params() {
    FrontierParams p;
    p.frontier_size = 15;
    p.budget = 60;
    return p;
  }
  DashboardFrontierSampler inner_;
  int instance_;
  int calls_ = 0;
};

TEST(SubgraphPoolAsync, ExceptionPropagatesToConsumer) {
  const CsrGraph g = gsgcn::testing::small_er();
  auto factory = [&g](int instance) -> std::unique_ptr<VertexSampler> {
    return std::make_unique<ThrowingSampler>(g, instance);
  };
  // capacity == p_inter keeps the producer one batch ahead: batch 1 (slots
  // 0-1) succeeds, batch 2 throws on instance 0's second draw. The two
  // produced subgraphs drain normally, then the error surfaces.
  SubgraphPool pool(g, factory, async_options(2, 5, 2));
  EXPECT_GT(pool.pop().num_vertices(), 0u);
  EXPECT_GT(pool.pop().num_vertices(), 0u);
  EXPECT_THROW((void)pool.pop(), std::runtime_error);
  // The error is sticky: the pool stays failed instead of resampling.
  EXPECT_THROW((void)pool.pop(), std::runtime_error);
}

TEST(SubgraphPoolSync, ExceptionPropagatesFromInlineRefill) {
  const CsrGraph g = gsgcn::testing::small_er();
  auto factory = [&g](int instance) -> std::unique_ptr<VertexSampler> {
    return std::make_unique<ThrowingSampler>(g, instance);
  };
  SubgraphPool pool(g, factory, 2, 5);
  EXPECT_GT(pool.pop().num_vertices(), 0u);
  EXPECT_GT(pool.pop().num_vertices(), 0u);
  EXPECT_THROW((void)pool.pop(), std::runtime_error);
}

}  // namespace
}  // namespace gsgcn::sampling

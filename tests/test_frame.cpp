// util/frame: the shared CRC-32 envelope under both the on-disk
// checkpoints and the serving wire protocol. Round trips, every reject
// status, incremental (byte-at-a-time) decoding, and the trailing-bytes
// tolerance the torn-rewrite recovery depends on.

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "util/frame.hpp"

namespace gsgcn::util {
namespace {

constexpr FrameSpec kSpec{/*magic=*/0x74736574656d6172ULL, /*version=*/3,
                          /*max_payload=*/1u << 20};

TEST(FrameTest, RoundTripsPayload) {
  const std::string payload = "the quick brown fox";
  const std::string framed = frame_encode(kSpec, payload);
  ASSERT_EQ(framed.size(), kFrameHeaderBytes + payload.size());

  std::string out;
  std::size_t consumed = 0;
  EXPECT_EQ(frame_try_decode(kSpec, framed.data(), framed.size(), out,
                             consumed),
            FrameStatus::kOk);
  EXPECT_EQ(out, payload);
  EXPECT_EQ(consumed, framed.size());
}

TEST(FrameTest, RoundTripsEmptyAndBinaryPayloads) {
  for (const std::string& payload :
       {std::string(), std::string("\x00\xff\x01", 3),
        std::string(100000, '\x7f')}) {
    const std::string framed = frame_encode(kSpec, payload);
    std::string out;
    EXPECT_EQ(frame_decode_buffer(kSpec, framed, out), FrameStatus::kOk);
    EXPECT_EQ(out, payload);
  }
}

TEST(FrameTest, IncrementalFeedNeedsMoreUntilComplete) {
  const std::string payload = "incremental decode";
  const std::string framed = frame_encode(kSpec, payload);

  // Feed one byte at a time, exactly like a socket read loop: every
  // prefix must report kNeedMore without consuming or mutating outputs.
  std::string out = "sentinel";
  std::size_t consumed = 99;
  for (std::size_t n = 0; n < framed.size(); ++n) {
    EXPECT_EQ(frame_try_decode(kSpec, framed.data(), n, out, consumed),
              FrameStatus::kNeedMore)
        << "at prefix length " << n;
    EXPECT_EQ(out, "sentinel");
    EXPECT_EQ(consumed, 99u);
  }
  EXPECT_EQ(frame_try_decode(kSpec, framed.data(), framed.size(), out,
                             consumed),
            FrameStatus::kOk);
  EXPECT_EQ(out, payload);
}

TEST(FrameTest, BadMagicRejectsBeforeFullHeaderArrives) {
  // A stream that is definitely not this format must be rejected as soon
  // as the prefix diverges — not after 24 bytes of buffering garbage.
  const std::string garbage = "GARBAGE!nothdr";
  std::string out;
  std::size_t consumed = 0;
  EXPECT_EQ(frame_try_decode(kSpec, garbage.data(), 3, out, consumed),
            FrameStatus::kBadMagic);
}

TEST(FrameTest, WrongMagicAndWrongVersionAreDistinct) {
  const std::string framed = frame_encode(kSpec, "payload");

  FrameSpec other = kSpec;
  other.magic ^= 1;
  std::string out;
  EXPECT_EQ(frame_decode_buffer(other, framed, out), FrameStatus::kBadMagic);

  FrameSpec newer = kSpec;
  newer.version = 4;
  EXPECT_EQ(frame_decode_buffer(newer, framed, out), FrameStatus::kBadVersion);
}

TEST(FrameTest, OversizedLengthFieldRejectsWithoutAllocating) {
  std::string framed = frame_encode(kSpec, "x");
  // Corrupt the size field (offset 12, u64 LE) to an absurd value.
  const std::uint64_t huge = ~0ull;
  std::memcpy(framed.data() + 12, &huge, sizeof(huge));
  std::string out;
  EXPECT_EQ(frame_decode_buffer(kSpec, framed, out), FrameStatus::kTooLarge);
}

TEST(FrameTest, CorruptPayloadFailsCrc) {
  std::string framed = frame_encode(kSpec, "checksummed payload");
  framed[kFrameHeaderBytes + 5] ^= 0x40;  // one bit, mid-payload
  std::string out;
  EXPECT_EQ(frame_decode_buffer(kSpec, framed, out), FrameStatus::kBadCrc);
}

TEST(FrameTest, CorruptCrcFieldFailsCrc) {
  std::string framed = frame_encode(kSpec, "checksummed payload");
  framed[20] ^= 0x01;  // crc field itself (offset 20)
  std::string out;
  EXPECT_EQ(frame_decode_buffer(kSpec, framed, out), FrameStatus::kBadCrc);
}

TEST(FrameTest, TruncatedBufferReportsNeedMore) {
  const std::string framed = frame_encode(kSpec, "will be cut short");
  std::string out;
  EXPECT_EQ(frame_decode_buffer(
                kSpec, std::string_view(framed).substr(0, framed.size() - 3),
                out),
            FrameStatus::kNeedMore);
  EXPECT_EQ(frame_decode_buffer(kSpec,
                                std::string_view(framed).substr(0, 10), out),
            FrameStatus::kNeedMore);
}

TEST(FrameTest, BufferDecodeToleratesTrailingBytes) {
  // A torn rewrite can leave old-file bytes after a shorter new frame;
  // the file variant must still accept the leading frame.
  const std::string framed = frame_encode(kSpec, "short new payload");
  const std::string with_tail = framed + std::string(1000, '\xab');
  std::string out;
  EXPECT_EQ(frame_decode_buffer(kSpec, with_tail, out), FrameStatus::kOk);
  EXPECT_EQ(out, "short new payload");
}

TEST(FrameTest, TryDecodeLeavesTrailingBytesForNextFrame) {
  // The wire case: two frames back to back; consumed must point exactly
  // at the second frame's first byte.
  const std::string a = frame_encode(kSpec, "first");
  const std::string b = frame_encode(kSpec, "second");
  const std::string stream = a + b;

  std::string out;
  std::size_t consumed = 0;
  ASSERT_EQ(frame_try_decode(kSpec, stream.data(), stream.size(), out,
                             consumed),
            FrameStatus::kOk);
  EXPECT_EQ(out, "first");
  ASSERT_EQ(consumed, a.size());
  ASSERT_EQ(frame_try_decode(kSpec, stream.data() + consumed,
                             stream.size() - consumed, out, consumed),
            FrameStatus::kOk);
  EXPECT_EQ(out, "second");
  EXPECT_EQ(consumed, b.size());
}

TEST(FrameTest, EncodeRejectsPayloadOverCap) {
  FrameSpec tiny = kSpec;
  tiny.max_payload = 8;
  EXPECT_THROW(frame_encode(tiny, "123456789"), std::invalid_argument);
  EXPECT_NO_THROW(frame_encode(tiny, "12345678"));
}

TEST(FrameTest, StatusNamesAreStable) {
  EXPECT_STREQ(frame_status_name(FrameStatus::kOk), "ok");
  EXPECT_STREQ(frame_status_name(FrameStatus::kNeedMore), "need_more");
  EXPECT_STREQ(frame_status_name(FrameStatus::kBadMagic), "bad_magic");
  EXPECT_STREQ(frame_status_name(FrameStatus::kBadVersion), "bad_version");
  EXPECT_STREQ(frame_status_name(FrameStatus::kTooLarge), "too_large");
  EXPECT_STREQ(frame_status_name(FrameStatus::kBadCrc), "bad_crc");
}

}  // namespace
}  // namespace gsgcn::util

// Serving building blocks below the socket layer: wire protocol
// encode/decode hardening, the admission queue's shedding and batching
// contracts, snapshot store/watcher swap-and-reject behavior, the
// neighborhood-closure engine's agreement with full-graph inference, and
// the concurrent checkpoint-publish vs load_latest hammer.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "data/synthetic.hpp"
#include "gcn/adam.hpp"
#include "gcn/checkpoint.hpp"
#include "gcn/inference.hpp"
#include "serve/admission.hpp"
#include "serve/engine.hpp"
#include "serve/protocol.hpp"
#include "serve/snapshot.hpp"
#include "util/fault.hpp"

namespace gsgcn::serve {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------------------

TEST(ServeProtocol, RequestRoundTrips) {
  Request req;
  req.op = Op::kInfer;
  req.request_id = 0xdeadbeefcafeULL;
  req.deadline_ms = 250;
  req.vertices = {3, 1, 4, 1, 5, 9};

  Request out;
  std::string err;
  ASSERT_TRUE(decode_request(encode_request(req), out, err)) << err;
  EXPECT_EQ(out.op, Op::kInfer);
  EXPECT_EQ(out.request_id, req.request_id);
  EXPECT_EQ(out.deadline_ms, 250u);
  EXPECT_EQ(out.vertices, req.vertices);
}

TEST(ServeProtocol, ResponseRoundTrips) {
  Response resp;
  resp.status = Status::kOk;
  resp.request_id = 77;
  resp.snapshot_seq = 5;
  resp.rows = 2;
  resp.cols = 3;
  resp.logits = {1.5f, -2.0f, 0.0f, 3.25f, -0.5f, 9.0f};
  resp.message = "fine";

  Response out;
  std::string err;
  ASSERT_TRUE(decode_response(encode_response(resp), out, err)) << err;
  EXPECT_EQ(out.status, Status::kOk);
  EXPECT_EQ(out.request_id, 77u);
  EXPECT_EQ(out.snapshot_seq, 5u);
  EXPECT_EQ(out.rows, 2u);
  EXPECT_EQ(out.cols, 3u);
  EXPECT_EQ(out.logits, resp.logits);
  EXPECT_EQ(out.message, "fine");
}

TEST(ServeProtocol, DecodeRejectsMalformedRequests) {
  Request out;
  std::string err;
  // Unknown op.
  std::string p = encode_request(Request{});
  p[0] = 99;
  EXPECT_FALSE(decode_request(p, out, err));
  EXPECT_NE(err.find("op"), std::string::npos);
  // Truncated.
  p = encode_request(Request{Op::kInfer, 1, 0, {1, 2, 3}});
  EXPECT_FALSE(decode_request(std::string_view(p).substr(0, p.size() - 2),
                              out, err));
  // Trailing bytes.
  EXPECT_FALSE(decode_request(p + "x", out, err));
  EXPECT_NE(err.find("trailing"), std::string::npos);
  // Oversized vertex count must be rejected BEFORE allocation: claim 2^31
  // vertices in a payload that doesn't carry them.
  Request big;
  big.vertices = {1};
  p = encode_request(big);
  const std::uint32_t huge = 1u << 31;
  std::memcpy(p.data() + 13, &huge, sizeof(huge));
  EXPECT_FALSE(decode_request(p, out, err));
  EXPECT_NE(err.find("exceeds limit"), std::string::npos);
}

TEST(ServeProtocol, DecodeRejectsMalformedResponses) {
  Response out;
  std::string err;
  Response ok;
  ok.rows = 1;
  ok.cols = 2;
  ok.logits = {1.0f, 2.0f};
  std::string p = encode_response(ok);
  // Unknown status byte.
  p[0] = 200;
  EXPECT_FALSE(decode_response(p, out, err));
  // Logit block larger than the payload (corrupt rows field).
  p = encode_response(ok);
  const std::uint32_t huge = 1u << 30;
  std::memcpy(p.data() + 17, &huge, sizeof(huge));
  EXPECT_FALSE(decode_response(p, out, err));
  EXPECT_NE(err.find("larger than payload"), std::string::npos);
}

TEST(ServeProtocol, ErrorFrameParsesBackToItsStatus) {
  const std::string framed = make_error_frame(Status::kOverloaded, "busy");
  std::string payload;
  ASSERT_EQ(util::frame_decode_buffer(kWireFrame, framed, payload),
            util::FrameStatus::kOk);
  Response resp;
  std::string err;
  ASSERT_TRUE(decode_response(payload, resp, err)) << err;
  EXPECT_EQ(resp.status, Status::kOverloaded);
  EXPECT_EQ(resp.message, "busy");
}

// ---------------------------------------------------------------------------
// Admission queue
// ---------------------------------------------------------------------------

Ticket make_ticket(std::uint64_t id, std::uint32_t deadline_ms = 0) {
  Ticket t;
  t.conn_id = id;
  t.request.request_id = id;
  t.enqueued = std::chrono::steady_clock::now();
  if (deadline_ms > 0) {
    t.deadline = t.enqueued + std::chrono::milliseconds(deadline_ms);
    t.has_deadline = true;
  }
  return t;
}

TEST(AdmissionQueue, FifoBatchUpToMaxBatch) {
  AdmissionQueue q(16);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(q.push(make_ticket(i)), Admit::kAdmitted);
  }
  std::vector<Ticket> batch, expired;
  ASSERT_TRUE(q.pop_batch(3, 0ns, batch, expired));
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_TRUE(expired.empty());
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(batch[i].request.request_id, i);
  }
  ASSERT_TRUE(q.pop_batch(3, 0ns, batch, expired));
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(q.depth(), 0u);
}

TEST(AdmissionQueue, FullQueueShedsImmediately) {
  AdmissionQueue q(2);
  EXPECT_EQ(q.push(make_ticket(1)), Admit::kAdmitted);
  EXPECT_EQ(q.push(make_ticket(2)), Admit::kAdmitted);
  EXPECT_EQ(q.push(make_ticket(3)), Admit::kQueueFull);
  EXPECT_EQ(q.rejected_full_total(), 1u);
  EXPECT_EQ(q.admitted_total(), 2u);
}

TEST(AdmissionQueue, ExpiredTicketsAreRoutedSeparately) {
  AdmissionQueue q(8);
  ASSERT_EQ(q.push(make_ticket(1, /*deadline_ms=*/1)), Admit::kAdmitted);
  ASSERT_EQ(q.push(make_ticket(2, /*deadline_ms=*/60000)), Admit::kAdmitted);
  std::this_thread::sleep_for(10ms);  // let ticket 1 expire in the queue
  std::vector<Ticket> batch, expired;
  ASSERT_TRUE(q.pop_batch(8, 0ns, batch, expired));
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].request.request_id, 1u);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].request.request_id, 2u);
}

TEST(AdmissionQueue, CloseDrainsThenSignalsExit) {
  AdmissionQueue q(8);
  ASSERT_EQ(q.push(make_ticket(1)), Admit::kAdmitted);
  q.close();
  EXPECT_EQ(q.push(make_ticket(2)), Admit::kClosed);
  std::vector<Ticket> batch, expired;
  // Already-admitted work still comes out...
  ASSERT_TRUE(q.pop_batch(8, 0ns, batch, expired));
  EXPECT_EQ(batch.size(), 1u);
  // ...and only then does the queue report done.
  EXPECT_FALSE(q.pop_batch(8, 0ns, batch, expired));
}

TEST(AdmissionQueue, BatchWindowCoalescesConcurrentPushes) {
  AdmissionQueue q(64);
  std::vector<Ticket> batch, expired;
  std::thread producer([&q] {
    for (std::uint64_t i = 0; i < 4; ++i) {
      q.push(make_ticket(i));
      std::this_thread::sleep_for(5ms);
    }
  });
  // A generous window collects everything the producer trickles in.
  ASSERT_TRUE(q.pop_batch(4, std::chrono::nanoseconds(2s), batch, expired));
  producer.join();
  EXPECT_EQ(batch.size(), 4u);  // filled max_batch before the window closed
}

TEST(AdmissionQueue, PopBlocksUntilPushArrives) {
  AdmissionQueue q(8);
  std::vector<Ticket> batch, expired;
  std::thread popper([&] {
    ASSERT_TRUE(q.pop_batch(1, 0ns, batch, expired));
  });
  std::this_thread::sleep_for(20ms);
  q.push(make_ticket(42));
  popper.join();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].request.request_id, 42u);
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

gcn::ModelConfig serve_model_config() {
  gcn::ModelConfig mc;
  mc.in_dim = 8;
  mc.hidden_dim = 6;
  mc.num_classes = 4;
  mc.num_layers = 2;
  mc.seed = 11;
  return mc;
}

class ServeSnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::FaultInjector::instance().clear();
    dir_ = (fs::temp_directory_path() /
            ("gsgcn_serve_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name()))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    util::FaultInjector::instance().clear();
    fs::remove_all(dir_);
  }

  std::string checkpoint_payload(const gcn::ModelConfig& mc,
                                 std::uint64_t weight_seed) {
    gcn::ModelConfig seeded = mc;
    seeded.seed = weight_seed;
    gcn::GcnModel model(seeded);
    gcn::Adam opt;
    model.attach(opt);
    gcn::CheckpointCursors cur;
    return gcn::encode_checkpoint(cur, model, opt);
  }

  std::string dir_;
};

TEST_F(ServeSnapshotTest, StorePublishKeepsInFlightSnapshotsAlive) {
  const gcn::ModelConfig mc = serve_model_config();
  SnapshotStore store(
      std::make_shared<const ModelSnapshot>(0, -1, gcn::GcnModel(mc)));
  const std::shared_ptr<const ModelSnapshot> held = store.current();
  store.publish(std::make_shared<const ModelSnapshot>(1, 3,
                                                      gcn::GcnModel(mc)));
  EXPECT_EQ(store.current()->seq, 1u);
  EXPECT_EQ(store.current()->epoch, 3);
  // The in-flight holder still sees the old snapshot, untouched.
  EXPECT_EQ(held->seq, 0u);
  EXPECT_EQ(held->epoch, -1);
  EXPECT_EQ(store.swaps(), 1u);
}

TEST_F(ServeSnapshotTest, WatcherPublishesNewerCheckpoints) {
  const gcn::ModelConfig mc = serve_model_config();
  SnapshotStore store(
      std::make_shared<const ModelSnapshot>(0, -1, gcn::GcnModel(mc)));
  SnapshotWatcher watcher(dir_, mc, store);

  EXPECT_FALSE(watcher.poll_once());  // empty dir: nothing to do
  gcn::CheckpointManager mgr(dir_);
  mgr.write(5, checkpoint_payload(mc, 100));
  EXPECT_TRUE(watcher.poll_once());
  EXPECT_EQ(store.current()->epoch, 5);
  EXPECT_EQ(store.current()->seq, 1u);
  EXPECT_FALSE(watcher.poll_once());  // same epoch: no re-publish

  mgr.write(9, checkpoint_payload(mc, 200));
  EXPECT_TRUE(watcher.poll_once());
  EXPECT_EQ(store.current()->epoch, 9);
  EXPECT_EQ(store.current()->seq, 2u);
  EXPECT_EQ(watcher.rejected(), 0u);
}

TEST_F(ServeSnapshotTest, CorruptFileKeepsLastKnownGood) {
  const gcn::ModelConfig mc = serve_model_config();
  SnapshotStore store(
      std::make_shared<const ModelSnapshot>(0, -1, gcn::GcnModel(mc)));
  SnapshotWatcher watcher(dir_, mc, store);
  gcn::CheckpointManager mgr(dir_);
  mgr.write(1, checkpoint_payload(mc, 100));
  ASSERT_TRUE(watcher.poll_once());

  // A CRC-corrupt newer file: the frame gate skips it inside load_latest,
  // which falls back to epoch 1 — already published, so no swap.
  {
    std::ofstream out(fs::path(dir_) / "ckpt_000002.bin", std::ios::binary);
    out << "this is not a checkpoint frame at all";
  }
  EXPECT_FALSE(watcher.poll_once());
  EXPECT_EQ(store.current()->epoch, 1);

  // A structurally-corrupt newer file: valid CRC envelope around a
  // payload for a DIFFERENT architecture. decode throws, the watcher
  // rejects, last-known-good stays published.
  gcn::ModelConfig other = mc;
  other.hidden_dim = mc.hidden_dim + 2;
  gcn::CheckpointManager::write_file(
      (fs::path(dir_) / "ckpt_000003.bin").string(),
      checkpoint_payload(other, 300));
  EXPECT_FALSE(watcher.poll_once());
  EXPECT_EQ(store.current()->epoch, 1);
  EXPECT_EQ(watcher.rejected(), 1u);

  // The trainer later rewrites a GOOD epoch-3 checkpoint over the bad
  // one: the watcher must pick it up (rejection did not latch the epoch).
  mgr.write(3, checkpoint_payload(mc, 300));
  EXPECT_TRUE(watcher.poll_once());
  EXPECT_EQ(store.current()->epoch, 3);
}

TEST_F(ServeSnapshotTest, BackgroundWatcherSwapsWhileReadersHold) {
  const gcn::ModelConfig mc = serve_model_config();
  SnapshotStore store(
      std::make_shared<const ModelSnapshot>(0, -1, gcn::GcnModel(mc)));
  SnapshotWatcher watcher(dir_, mc, store);
  watcher.start(/*interval_ms=*/2.0);

  gcn::CheckpointManager mgr(dir_);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      const auto snap = store.current();
      // Touch the model under the shared_ptr: must stay valid across
      // concurrent publishes.
      EXPECT_EQ(snap->model.config().num_classes, mc.num_classes);
    }
  });
  for (int epoch = 1; epoch <= 5; ++epoch) {
    mgr.write(epoch, checkpoint_payload(mc, 100 + epoch));
    std::this_thread::sleep_for(10ms);
  }
  for (int i = 0; i < 200 && store.current()->epoch < 5; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  stop.store(true);
  reader.join();
  watcher.stop();
  EXPECT_EQ(store.current()->epoch, 5);
  EXPECT_EQ(watcher.rejected(), 0u);
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

class ServeEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SyntheticParams p;
    p.num_vertices = 300;
    p.num_classes = 4;
    p.feature_dim = 8;
    p.avg_degree = 6.0;
    p.seed = 3;
    ds_ = data::make_synthetic(p);
    gcn::ModelConfig mc;
    mc.in_dim = ds_.feature_dim();
    mc.hidden_dim = 6;
    mc.num_classes = ds_.num_classes();
    mc.num_layers = 2;
    mc.seed = 11;
    snap_ = std::make_shared<const ModelSnapshot>(7, 1, gcn::GcnModel(mc));
    fstore_ = data::FeatureStore::view(ds_.features);
  }

  Ticket infer_ticket(std::vector<graph::Vid> vertices, std::uint64_t id) {
    Ticket t;
    t.conn_id = id;
    t.request.op = Op::kInfer;
    t.request.request_id = id;
    t.request.vertices = std::move(vertices);
    return t;
  }

  data::Dataset ds_;
  std::shared_ptr<const ModelSnapshot> snap_;
  // Zero-copy fp32 store over ds_.features (set up after ds_ in SetUp).
  data::FeatureStore fstore_;
};

TEST_F(ServeEngineTest, ClosureInferenceMatchesFullGraph) {
  gcn::InferenceScratch scratch;
  const tensor::Matrix& full = gcn::infer_logits(
      snap_->model, ds_.graph, ds_.features, scratch, /*threads=*/1);

  InferenceEngine engine(ds_.graph, fstore_);
  std::vector<Ticket> batch;
  batch.push_back(infer_ticket({0, 17, 123}, 1));
  batch.push_back(infer_ticket({250, 17}, 2));  // overlap with batch[0]
  std::vector<Response> out;
  engine.run_batch(*snap_, batch, out, /*threads=*/1);

  ASSERT_EQ(out.size(), 2u);
  // The closure touched far fewer vertices than the graph.
  EXPECT_LT(engine.last_closure_size(), ds_.graph.num_vertices());
  const std::size_t cols = full.cols();
  const std::vector<std::vector<graph::Vid>> wanted = {{0, 17, 123},
                                                       {250, 17}};
  for (std::size_t r = 0; r < out.size(); ++r) {
    ASSERT_EQ(out[r].status, Status::kOk) << out[r].message;
    EXPECT_EQ(out[r].request_id, r + 1);
    EXPECT_EQ(out[r].snapshot_seq, 7u);
    ASSERT_EQ(out[r].rows, wanted[r].size());
    ASSERT_EQ(out[r].cols, cols);
    for (std::size_t i = 0; i < wanted[r].size(); ++i) {
      for (std::size_t c = 0; c < cols; ++c) {
        EXPECT_NEAR(out[r].logits[i * cols + c],
                    full(wanted[r][i], c), 1e-4)
            << "root " << wanted[r][i] << " col " << c;
      }
    }
  }
}

TEST_F(ServeEngineTest, BadVertexFailsThatTicketOnly) {
  InferenceEngine engine(ds_.graph, fstore_);
  std::vector<Ticket> batch;
  batch.push_back(infer_ticket({5, ds_.graph.num_vertices()}, 1));  // bad
  batch.push_back(infer_ticket({5}, 2));                            // good
  batch.push_back(infer_ticket({}, 3));  // empty list is a bad request
  std::vector<Response> out;
  engine.run_batch(*snap_, batch, out, 1);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].status, Status::kBadRequest);
  EXPECT_NE(out[0].message.find("out of range"), std::string::npos);
  EXPECT_EQ(out[1].status, Status::kOk);
  EXPECT_EQ(out[1].rows, 1u);
  EXPECT_EQ(out[2].status, Status::kBadRequest);
}

TEST_F(ServeEngineTest, InjectedFaultPropagatesForInternalErrorMapping) {
  util::FaultInjector::instance().clear();
  util::FaultInjector::instance().arm("serve.infer", 1,
                                      util::FaultKind::kThrow);
  InferenceEngine engine(ds_.graph, fstore_);
  std::vector<Ticket> batch;
  batch.push_back(infer_ticket({1}, 1));
  std::vector<Response> out;
  EXPECT_THROW(engine.run_batch(*snap_, batch, out, 1), util::InjectedFault);
  util::FaultInjector::instance().clear();
}

// ---------------------------------------------------------------------------
// Concurrent checkpoint publish vs load_latest (the trainer-vs-server
// race the snapshot watcher lives on).
// ---------------------------------------------------------------------------

std::string epoch_payload(int epoch) {
  // Distinct sizes per epoch so a torn/mixed read cannot accidentally
  // look complete.
  return std::string(static_cast<std::size_t>(64 + 37 * epoch),
                     static_cast<char>('a' + (epoch % 26)));
}

TEST(ServeCheckpointRace, LoadLatestNeverSeesAPartialSnapshot) {
  const std::string dir =
      (fs::temp_directory_path() /
       ("gsgcn_race_" +
        std::to_string(::testing::UnitTest::GetInstance()->random_seed())))
          .string();
  fs::remove_all(dir);

  constexpr int kEpochs = 60;
  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    gcn::CheckpointManager mgr(dir, /*keep=*/2);
    for (int e = 1; e <= kEpochs; ++e) {
      mgr.write(e, epoch_payload(e));
    }
    writer_done.store(true);
  });

  // Reader hammers load_latest the whole time the writer publishes. The
  // invariant under test: every successful load yields the COMPLETE
  // payload of the epoch it claims — tmp files and torn content are
  // invisible thanks to write-then-rename + the CRC gate.
  gcn::CheckpointManager reader(dir, /*keep=*/2);
  std::uint64_t loads = 0;
  int last_epoch = 0;
  while (!writer_done.load() || loads == 0) {
    std::string payload;
    int epoch = -1;
    if (!reader.load_latest(payload, &epoch)) continue;
    ++loads;
    ASSERT_GE(epoch, 1);
    ASSERT_LE(epoch, kEpochs);
    ASSERT_EQ(payload, epoch_payload(epoch)) << "epoch " << epoch;
    // Epochs move forward: rename-over-publish never resurrects old data
    // beyond the retention window race.
    EXPECT_GE(epoch, last_epoch);
    last_epoch = epoch;
  }
  writer.join();
  EXPECT_GT(loads, 0u);
  std::string payload;
  int epoch = -1;
  ASSERT_TRUE(reader.load_latest(payload, &epoch));
  EXPECT_EQ(epoch, kEpochs);
  fs::remove_all(dir);
}

TEST(ServeCheckpointRace, TornWritesNeverReachTheReader) {
  const std::string dir =
      (fs::temp_directory_path() /
       ("gsgcn_race_torn_" +
        std::to_string(::testing::UnitTest::GetInstance()->random_seed())))
          .string();
  fs::remove_all(dir);
  util::FaultInjector::instance().clear();
  util::FaultInjector::instance().set_seed(42);
  // Every third write attempt dies mid-payload (deterministic stream).
  util::FaultInjector::instance().arm_probability(
      "ckpt.torn_write", 0.34, util::FaultKind::kReport);

  gcn::CheckpointManager writer(dir, /*keep=*/3);
  gcn::CheckpointManager reader(dir, /*keep=*/3);
  int written = 0;
  for (int e = 1; e <= 40; ++e) {
    try {
      writer.write(e, epoch_payload(e));
      ++written;
    } catch (const util::InjectedFault&) {
      // Simulated crash mid-write; the tmp file may remain. Readers must
      // never surface it.
    }
    std::string payload;
    int epoch = -1;
    if (reader.load_latest(payload, &epoch)) {
      ASSERT_EQ(payload, epoch_payload(epoch)) << "epoch " << epoch;
    }
  }
  util::FaultInjector::instance().clear();
  ASSERT_GT(written, 0);
  std::string payload;
  int epoch = -1;
  ASSERT_TRUE(reader.load_latest(payload, &epoch));
  EXPECT_EQ(payload, epoch_payload(epoch));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace gsgcn::serve
